// dici_node — one cluster serving node as a standalone process.
//
// The coordinator (ClusterEngine with a fork/tcp transport) spawns one
// of these per node slot. Everything the node needs beyond its identity
// and its link arrives over the wire (kNodeConfig), so the argv surface
// is exactly the bootstrap:
//
//   dici_node --id N --fd 3                   fork transport: serve the
//                                             inherited socketpair fd
//   dici_node --id N --connect 127.0.0.1:PORT tcp transport: connect
//                                             back to the coordinator
//
// Exit is driven by the protocol: kShutdown, a closed link (the
// coordinator died or tore the index down), or a breach. As a backstop,
// PR_SET_PDEATHSIG delivers SIGKILL if the parent vanishes without
// closing — a child never outlives its coordinator.

#include <signal.h>
#include <sys/prctl.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/cluster/node.hpp"
#include "src/net/fd_endpoint.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --id N (--fd FD | --connect HOST:PORT)\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  long id = -1;
  long fd = -1;
  std::string connect_to;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--id" && i + 1 < argc) {
      id = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--fd" && i + 1 < argc) {
      fd = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--connect" && i + 1 < argc) {
      connect_to = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (id < 0 || (fd < 0) == connect_to.empty()) return usage(argv[0]);

  // If the coordinator dies without closing our link (SIGKILL'd itself,
  // crashed pre-close), die with it rather than linger as an orphan.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);

  std::unique_ptr<dici::net::Endpoint> link;
  if (fd >= 0) {
    link = std::make_unique<dici::net::FdEndpoint>(static_cast<int>(fd));
  } else {
    const auto colon = connect_to.rfind(':');
    if (colon == std::string::npos) return usage(argv[0]);
    const std::string host = connect_to.substr(0, colon);
    const long port = std::strtol(connect_to.c_str() + colon + 1, nullptr, 10);
    if (port <= 0 || port > 65535) return usage(argv[0]);
    std::string error;
    link = dici::net::tcp_connect(host, static_cast<std::uint16_t>(port),
                                  std::chrono::seconds(10), &error);
    if (link == nullptr) {
      std::fprintf(stderr, "dici_node %ld: %s\n", id, error.c_str());
      return 1;
    }
  }

  dici::cluster::NodeService service(static_cast<std::uint32_t>(id), *link);
  service.run();
  return 0;
}
