#include "src/cluster/node.hpp"

#include <algorithm>
#include <chrono>

#include "src/index/batched_search.hpp"
#include "src/util/assert.hpp"
#include "src/util/timer.hpp"

namespace dici::cluster {

using namespace std::chrono_literals;

namespace {

/// How patiently a node waits for the coordinator during the join
/// handshake and on sends. Generous: a stalled coordinator is a test
/// bug, not a production mode — the node gives up and exits, and the
/// coordinator's own timeout machinery reports it DEAD.
constexpr auto kControlTimeout = 10s;

}  // namespace

NodeService::NodeService(std::uint32_t id, net::Endpoint& link)
    : id_(id), link_(link) {}

void NodeService::run() {
  if (!join()) return;
  if (!await_config()) return;
  serve();
}

bool NodeService::join() {
  // Join handshake: announce, then wait for the ack before anything.
  const net::Frame join = net::encode_join_request(id_, {id_});
  if (link_.send(join, kControlTimeout) != net::Endpoint::SendResult::kOk)
    return false;
  net::Frame frame;
  std::string error;
  if (link_.recv(&frame, kControlTimeout, &error) !=
      net::Endpoint::RecvResult::kFrame)
    return false;
  net::JoinAckMsg ack;
  if (!net::decode_join_ack(frame, &ack, &error) || ack.node_id != id_)
    return false;
  epoch_ = std::max(epoch_, frame.header.epoch);
  return true;
}

bool NodeService::await_config() {
  // The coordinator sends kNodeConfig right after the ack — the wire IS
  // the configuration channel, for exec'd children and in-process nodes
  // alike. Anything else here is a protocol breach.
  for (;;) {
    net::Frame frame;
    std::string error;
    switch (link_.recv(&frame, kControlTimeout, &error)) {
      case net::Endpoint::RecvResult::kFrame:
        break;
      case net::Endpoint::RecvResult::kCorrupt:
        continue;  // wire damage ate one frame; keep waiting
      default:
        return false;
    }
    if (frame.header.msg_type() != net::MsgType::kNodeConfig) return false;
    net::NodeConfigMsg msg;
    if (!net::decode_node_config(frame, &msg, &error)) return false;
    // The wire promised only a byte; the kernel menu decides validity.
    const auto kernel = static_cast<index::SearchKernel>(msg.kernel);
    if (!index::search_kernel_valid(kernel)) return false;
    if (msg.num_nodes == 0) return false;
    epoch_ = std::max(epoch_, frame.header.epoch);
    kernel_ = kernel;
    if (msg.interleave_width >= 1) interleave_width_ = msg.interleave_width;
    heartbeat_interval_ms_ = std::max<std::uint32_t>(1u, msg.heartbeat_interval_ms);
    membership_ = Membership(msg.num_nodes);
    return true;
  }
}

void NodeService::serve() {
  const auto interval = std::chrono::milliseconds(heartbeat_interval_ms_);
  auto last_heartbeat = std::chrono::steady_clock::now() - interval;
  for (;;) {
    if (killed_.load(std::memory_order_acquire)) return;  // silent hang
    const auto now = std::chrono::steady_clock::now();
    if (now - last_heartbeat >= interval) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          now.time_since_epoch())
                          .count();
      net::Frame beat = net::encode_heartbeat(
          id_, {static_cast<std::uint64_t>(ns)});
      beat.header.epoch = epoch_;
      if (link_.send(beat, kControlTimeout) !=
          net::Endpoint::SendResult::kOk)
        return;
      last_heartbeat = now;
    }

    net::Frame frame;
    std::string error;
    switch (link_.recv(&frame, interval, &error)) {
      case net::Endpoint::RecvResult::kTimeout:
        continue;  // loop sends the next heartbeat
      case net::Endpoint::RecvResult::kCorrupt:
        continue;  // wire damage ate one frame; the stream stays framed
      case net::Endpoint::RecvResult::kClosed:
      case net::Endpoint::RecvResult::kError:
        return;
      case net::Endpoint::RecvResult::kFrame:
        break;
    }
    if (killed_.load(std::memory_order_acquire)) return;
    epoch_ = std::max(epoch_, frame.header.epoch);

    switch (frame.header.msg_type()) {
      case net::MsgType::kClusterInfo: {
        net::ClusterInfoMsg info;
        if (net::decode_cluster_info(frame, &info, &error))
          membership_.apply_entries(info.nodes);
        break;
      }
      case net::MsgType::kBuildShard:
        if (!handle_build_shard(frame)) return;
        break;
      case net::MsgType::kQueryBatch:
        if (!handle_query_batch(frame)) return;
        break;
      case net::MsgType::kHeartbeat:
        break;  // coordinator liveness; nothing to do
      case net::MsgType::kShutdown:
        return;
      default:
        // A frame type a serving node never receives mid-serve
        // (kNodeConfig included — bootstrap only): protocol breach —
        // stop answering and let the coordinator's timeout name us dead.
        return;
    }
  }
}

bool NodeService::handle_build_shard(const net::Frame& frame) {
  net::BuildShardMsg msg;
  std::string error;
  if (!net::decode_build_shard(frame, &msg, &error)) return false;
  if (!msg.keys.empty()) {
    // Chunks of one shard arrive in order; the first carries the
    // shard's global offset, the rest append.
    auto [it, inserted] = replicas_.try_emplace(msg.shard);
    Replica& replica = it->second;
    if (inserted) replica.global_offset = msg.global_offset;
    if (msg.chunk < replica.next_chunk) return true;   // duplicate: drop
    if (msg.chunk > replica.next_chunk) return false;  // gap: stream broken
    ++replica.next_chunk;
    replica.keys.insert(replica.keys.end(), msg.keys.begin(), msg.keys.end());
    replica_keys_.fetch_add(msg.keys.size(), std::memory_order_acq_rel);
  }
  if (msg.last) {
    // Finalize: the kernels that probe BFS order need the layout built
    // once per replica, exactly like PlacedShards does for the parallel
    // backend's shard copies.
    if (index::kernel_layout(kernel_) == index::KeyLayout::kEytzinger) {
      for (auto& [shard, replica] : replicas_)
        if (replica.layout == nullptr)
          replica.layout =
              std::make_unique<index::EytzingerLayout>(replica.keys);
    }
    net::BuildAckMsg ack;
    ack.shards_received = static_cast<std::uint32_t>(replicas_.size());
    ack.replica_keys = replica_keys_.load(std::memory_order_acquire);
    net::Frame reply = net::encode_build_ack(id_, ack);
    reply.header.epoch = epoch_;
    if (link_.send(reply, kControlTimeout) != net::Endpoint::SendResult::kOk)
      return false;
  }
  return true;
}

bool NodeService::handle_query_batch(const net::Frame& frame) {
  net::QueryBatchMsg msg;
  std::string error;
  if (!net::decode_query_batch(frame, &msg, &error)) return false;
  const auto it = replicas_.find(msg.shard);
  // A batch for a shard this node never received is a coordinator bug —
  // an in-process invariant, so fail loud rather than silent-drop.
  DICI_CHECK_FMT(it != replicas_.end(),
                 "cluster node %u: query batch for shard %u, but this node "
                 "holds %zu replicas and none by that id",
                 id_, msg.shard, replicas_.size());
  const Replica& replica = it->second;

  WallTimer busy;
  net::RankBatchMsg reply;
  reply.submission = msg.submission;
  reply.shard = msg.shard;
  reply.chunk = msg.chunk;  // the claim ticket: echoes which dispatch
                            // chunk these answers settle
  reply.ids = std::move(msg.ids);
  reply.ranks.resize(msg.keys.size());
  index::resolve_batch(kernel_, replica.keys, replica.layout.get(),
                       msg.keys, reply.ranks.data(), interleave_width_);
  for (rank_t& r : reply.ranks) r += replica.global_offset;
  reply.busy_ns = static_cast<std::uint64_t>(busy.elapsed_ns());

  net::Frame out = net::encode_rank_batch(id_, reply);
  out.header.epoch = epoch_;
  return link_.send(out, kControlTimeout) == net::Endpoint::SendResult::kOk;
}

// --- ClusterNode (the in-process peer) ------------------------------------

ClusterNode::ClusterNode(std::uint32_t id, std::unique_ptr<net::Endpoint> link)
    : id_(id), link_(std::move(link)), service_(id, *link_) {
  DICI_CHECK(link_ != nullptr);
  thread_ = std::thread([this] { service_.run(); });
}

ClusterNode::~ClusterNode() {
  link_->close();
  thread_.join();
}

}  // namespace dici::cluster
