#include "src/cluster/process_node.hpp"

#include <libgen.h>
#include <limits.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "src/util/assert.hpp"

extern char** environ;

namespace dici::cluster {
namespace {

/// How long a destructed ProcessNode waits for the orderly exit the
/// coordinator's link close/kShutdown triggers before escalating to
/// SIGKILL. The child's exit path is "recv returns kClosed → return
/// from main", so this is normally milliseconds.
constexpr auto kReapGrace = std::chrono::seconds(2);

}  // namespace

std::unique_ptr<ProcessNode> ProcessNode::spawn(const std::string& binary,
                                                std::vector<std::string> args,
                                                int dup_fd) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(binary.c_str()));
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  if (dup_fd >= 0) {
    // The dup2 clears FD_CLOEXEC on the child's fd 3; the CLOEXEC
    // original never crosses the exec, so siblings don't leak links
    // into each other.
    posix_spawn_file_actions_adddup2(&actions, dup_fd, 3);
  }
  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, binary.c_str(), &actions, nullptr, argv.data(),
                    environ);
  posix_spawn_file_actions_destroy(&actions);
  DICI_CHECK_FMT(rc == 0, "spawn of node binary \"%s\" failed: errno=%d (%s)",
                 binary.c_str(), rc, std::strerror(rc));

  auto node = std::unique_ptr<ProcessNode>(new ProcessNode());
  node->pid_ = pid;
  return node;
}

std::unique_ptr<ProcessNode> ProcessNode::spawn_fd(const std::string& binary,
                                                   std::uint32_t id,
                                                   int node_fd) {
  auto node = spawn(binary, {"--id", std::to_string(id), "--fd", "3"},
                    node_fd);
  ::close(node_fd);  // the child holds its dup; the parent's copy is done
  return node;
}

std::unique_ptr<ProcessNode> ProcessNode::spawn_connect(
    const std::string& binary, std::uint32_t id, std::uint16_t port) {
  return spawn(binary,
               {"--id", std::to_string(id), "--connect",
                "127.0.0.1:" + std::to_string(port)},
               -1);
}

std::string ProcessNode::default_binary() {
  if (const char* env = std::getenv("DICI_NODE_BIN"); env != nullptr && *env)
    return env;
  char exe[PATH_MAX];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  DICI_CHECK_FMT(n > 0, "readlink(/proc/self/exe) failed: errno=%d (%s)",
                 errno, std::strerror(errno));
  exe[n] = '\0';
  return std::string(::dirname(exe)) + "/dici_node";
}

ProcessNode::~ProcessNode() {
  if (pid_ <= 0) return;
  int status = 0;
  if (!killed_.load(std::memory_order_acquire)) {
    const auto deadline = std::chrono::steady_clock::now() + kReapGrace;
    while (std::chrono::steady_clock::now() < deadline) {
      const pid_t r = ::waitpid(pid_, &status, WNOHANG);
      if (r == pid_ || (r < 0 && errno == ECHILD)) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // The grace expired: the child is wedged (or the coordinator forgot
    // to close its link first). A node death is always survivable by
    // design, so escalate rather than hang the coordinator.
    ::kill(pid_, SIGKILL);
  }
  ::waitpid(pid_, &status, 0);
}

void ProcessNode::kill() {
  bool expected = false;
  if (killed_.compare_exchange_strong(expected, true)) {
    ::kill(pid_, SIGKILL);
    // Reaping waits for the destructor: the coordinator's receiver must
    // first observe the death the way a remote peer would — kClosed on
    // the wire, not a wait status.
  }
}

}  // namespace dici::cluster
