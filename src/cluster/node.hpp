// NodeService — the serving side of the cluster protocol — plus the
// coordinator's two ways of owning one: ClusterNode (a thread in this
// process) and, in process_node.hpp, ProcessNode (a spawned dici_node
// child). PR 8's header promised that forking the nodes into real
// processes "would change the transport kind and not one line of this
// protocol"; this file is where the promise is kept: the SAME
// NodeService::run() serves whether its endpoint is a ring pipe, an
// in-process socketpair, a socketpair inherited across fork/exec, or a
// loopback TCP connection — the service owns a link and NOTHING else
// crosses its boundary.
//
// Bootstrap (both modes, one path): the service sends kJoinRequest,
// waits for kJoinAck, then waits for kNodeConfig — the coordinator's
// wire-carried configuration (kernel, interleave width, heartbeat
// cadence, cluster size). A freshly exec'd process learns everything
// from the coordinator; an in-process node gets the identical frames,
// so there is no second code path to rot.
//
// Service loop (after the bootstrap):
//   recv(heartbeat interval) →
//     kClusterInfo  — mirror the coordinator's membership view
//     kBuildShard   — append the chunk to the shard's replica; on the
//                     last-flagged frame, finalize (build Eytzinger
//                     layouts if the kernel needs them) and kBuildAck
//     kQueryBatch   — resolve_batch over the named replica, add the
//                     shard's global rank offset, reply kRankBatch with
//                     the node's busy time
//     kShutdown / link closed — exit
//   and between frames, send kHeartbeat once per interval.
//
// kill() is the failure-injection hook. In-process it halts the loop
// dead — no reply, no heartbeat, no close; on a ProcessNode it is a
// real SIGKILL. Either way the coordinator sees what a kernel panic
// looks like from the other end of a wire and must recover through its
// own machinery (heartbeat timeout, or kClosed when a dead child's fds
// collapse).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "src/cluster/membership.hpp"
#include "src/index/eytzinger.hpp"
#include "src/index/fast_search.hpp"
#include "src/net/transport.hpp"
#include "src/util/types.hpp"

namespace dici::cluster {

/// The protocol's serving side over one endpoint. Single-threaded:
/// run() blocks on the caller's thread (ClusterNode gives it a thread;
/// dici_node's main() IS the thread).
class NodeService {
 public:
  /// `link` must outlive the service; the service does not own it so
  /// the two owners (ClusterNode, node_main) can manage lifetime their
  /// own way.
  NodeService(std::uint32_t id, net::Endpoint& link);

  NodeService(const NodeService&) = delete;
  NodeService& operator=(const NodeService&) = delete;

  /// Join handshake + config bootstrap + serve loop. Returns when the
  /// link closes, kShutdown arrives, the protocol is breached, or
  /// kill() fires.
  void run();

  /// Failure injection for the in-process mode: the loop halts without
  /// a goodbye — no close, no reply to anything in flight. Idempotent,
  /// any thread.
  void kill() { killed_.store(true, std::memory_order_release); }

  /// Total keys across this node's replicas (test observability; racy
  /// during the build scatter, exact after the build ack).
  std::uint64_t replica_keys() const {
    return replica_keys_.load(std::memory_order_acquire);
  }

 private:
  /// One shard replica: deserialized key copy + its global rank offset
  /// (+ the BFS layout when the kernel probes Eytzinger order).
  struct Replica {
    std::vector<key_t> keys;
    rank_t global_offset = 0;
    std::unique_ptr<index::EytzingerLayout> layout;
    /// Next build chunk this replica expects: an already-appended chunk
    /// (a duplicated frame) is skipped, a skipped-ahead chunk (a
    /// dropped frame) breaks the stream — so a replica can never be
    /// silently assembled from damaged goods.
    std::uint32_t next_chunk = 0;
  };

  bool join();
  bool await_config();
  void serve();
  bool handle_build_shard(const net::Frame& frame);
  bool handle_query_batch(const net::Frame& frame);

  const std::uint32_t id_;
  net::Endpoint& link_;
  /// Highest link epoch seen from the coordinator, echoed on every send
  /// — so after a re-join the node's replies carry the fresh
  /// incarnation and the coordinator's stale-epoch filter passes them.
  /// Service-thread-only.
  std::uint32_t epoch_ = 0;
  std::atomic<bool> killed_{false};
  std::atomic<std::uint64_t> replica_keys_{0};

  // Configuration, all from the kNodeConfig frame (await_config).
  index::SearchKernel kernel_ = index::SearchKernel::kBranchless;
  std::uint32_t interleave_width_ = index::kDefaultInterleave;
  std::uint32_t heartbeat_interval_ms_ = 25;

  Membership membership_{1};  ///< service-thread-only mirror, resized
                              ///< once kNodeConfig names the cluster
  std::map<std::uint32_t, Replica> replicas_;  ///< service-thread-only
};

/// What the coordinator holds per node slot: something it can kill and
/// destroy, whether the serving loop is a thread here or a child
/// process. Destruction must stop the peer and release everything
/// (join the thread / reap the child — no zombies).
class NodePeer {
 public:
  virtual ~NodePeer() = default;
  /// Stop serving with no goodbye (thread halt or SIGKILL). Idempotent.
  virtual void kill() = 0;
  /// The child pid for process peers; -1 for in-process ones.
  virtual int pid() const { return -1; }
};

/// The in-process peer: a thread running NodeService over an owned
/// endpoint (ring/socket transports).
class ClusterNode final : public NodePeer {
 public:
  /// Spawns the service thread; it immediately runs the join handshake.
  ClusterNode(std::uint32_t id, std::unique_ptr<net::Endpoint> link);

  /// Joins the service thread. The coordinator must have closed (or
  /// shut down) the link first, or the loop exits on kShutdown/kClosed.
  ~ClusterNode() override;

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  std::uint32_t id() const { return id_; }
  void kill() override { service_.kill(); }
  std::uint64_t replica_keys() const { return service_.replica_keys(); }

 private:
  const std::uint32_t id_;
  std::unique_ptr<net::Endpoint> link_;
  NodeService service_;
  std::thread thread_;
};

}  // namespace dici::cluster
