// ClusterNode — one serving node of the cluster backend.
//
// A node is a thread plus an Endpoint, and NOTHING else crosses its
// boundary: the coordinator never touches node state, the node never
// touches coordinator state. Its key replicas are deserialized COPIES
// built from kBuildShard frames; its answers leave as kRankBatch
// frames. Forking these objects into real processes would change the
// transport kind (kSocket already carries everything through the
// kernel) and not one line of this protocol — that is the point of the
// first rung.
//
// Service loop (after the join handshake):
//   recv(heartbeat interval) →
//     kClusterInfo  — mirror the coordinator's membership view
//     kBuildShard   — append the chunk to the shard's replica; on the
//                     last-flagged frame, finalize (build Eytzinger
//                     layouts if the kernel needs them) and kBuildAck
//     kQueryBatch   — resolve_batch over the named replica, add the
//                     shard's global rank offset, reply kRankBatch with
//                     the node's busy time
//     kShutdown / link closed — exit
//   and between frames, send kHeartbeat once per interval.
//
// kill() is the failure-injection hook: the service loop stops dead —
// no reply, no heartbeat, no close — exactly what a kernel panic or
// power loss looks like from the other end of a wire. The coordinator
// must detect it by heartbeat timeout alone (the kill-one-node test
// pins that batches then fail fast with this node's id).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "src/cluster/membership.hpp"
#include "src/index/eytzinger.hpp"
#include "src/index/fast_search.hpp"
#include "src/net/transport.hpp"
#include "src/util/types.hpp"

namespace dici::cluster {

struct NodeConfig {
  index::SearchKernel kernel = index::SearchKernel::kBranchless;
  std::uint32_t interleave_width = index::kDefaultInterleave;
  std::uint32_t heartbeat_interval_ms = 25;
  /// Cluster size (for the node's local membership mirror).
  std::uint32_t num_nodes = 1;
};

class ClusterNode {
 public:
  /// Spawns the service thread; it immediately sends kJoinRequest and
  /// waits for the coordinator's kJoinAck.
  ClusterNode(std::uint32_t id, const NodeConfig& config,
              std::unique_ptr<net::Endpoint> link);

  /// Joins the service thread. The coordinator must have closed (or
  /// shut down) the link first, or the loop exits on kShutdown/kClosed.
  ~ClusterNode();

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  std::uint32_t id() const { return id_; }

  /// Failure injection: the service loop halts without a goodbye — no
  /// close, no reply to anything in flight. Idempotent.
  void kill() { killed_.store(true, std::memory_order_release); }

  /// Total keys across this node's replicas (test observability; racy
  /// during the build scatter, exact after the build ack).
  std::uint64_t replica_keys() const {
    return replica_keys_.load(std::memory_order_acquire);
  }

 private:
  /// One shard replica: deserialized key copy + its global rank offset
  /// (+ the BFS layout when the kernel probes Eytzinger order).
  struct Replica {
    std::vector<key_t> keys;
    rank_t global_offset = 0;
    std::unique_ptr<index::EytzingerLayout> layout;
    /// Next build chunk this replica expects: an already-appended chunk
    /// (a duplicated frame) is skipped, a skipped-ahead chunk (a
    /// dropped frame) breaks the stream — so a replica can never be
    /// silently assembled from damaged goods.
    std::uint32_t next_chunk = 0;
  };

  void serve();
  bool handle_build_shard(const net::Frame& frame);
  bool handle_query_batch(const net::Frame& frame);

  const std::uint32_t id_;
  const NodeConfig config_;
  std::unique_ptr<net::Endpoint> link_;
  /// Highest link epoch seen from the coordinator, echoed on every send
  /// — so after a re-join the node's replies carry the fresh
  /// incarnation and the coordinator's stale-epoch filter passes them.
  /// Service-thread-only.
  std::uint32_t epoch_ = 0;
  std::atomic<bool> killed_{false};
  std::atomic<std::uint64_t> replica_keys_{0};
  Membership membership_;  ///< service-thread-only mirror of broadcasts
  std::map<std::uint32_t, Replica> replicas_;  ///< service-thread-only
  std::thread thread_;
};

}  // namespace dici::cluster
