#include "src/cluster/cluster_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/cluster/node.hpp"
#include "src/cluster/process_node.hpp"
#include "src/core/dispatch.hpp"
#include "src/index/delta.hpp"
#include "src/index/partitioner.hpp"
#include "src/net/fd_endpoint.hpp"
#include "src/util/assert.hpp"
#include "src/util/rng.hpp"
#include "src/util/timer.hpp"

namespace dici::cluster {

using core::Backend;
using core::Client;
using core::DispatchBatch;
using core::Index;
using core::Method;
using core::NodeReport;
using core::RunReport;
using core::SubmitOptions;

ClusterEngine::ClusterEngine(const ClusterConfig& config) : config_(config) {
  DICI_CHECK_FMT(config_.num_nodes >= 1,
                 "ClusterConfig::num_nodes = %u: need at least one serving "
                 "node",
                 config_.num_nodes);
  DICI_CHECK_FMT(config_.batch_bytes >= sizeof(key_t),
                 "ClusterConfig::batch_bytes = %llu: a dispatch round must "
                 "hold at least one %zu-byte key",
                 static_cast<unsigned long long>(config_.batch_bytes),
                 sizeof(key_t));
  DICI_CHECK_FMT(index::search_kernel_valid(config_.kernel),
                 "ClusterConfig::kernel = %d: not a SearchKernel value",
                 static_cast<int>(config_.kernel));
  DICI_CHECK_FMT(index::placement_valid(config_.placement),
                 "ClusterConfig::placement = %d: not a Placement value",
                 static_cast<int>(config_.placement));
  DICI_CHECK_FMT(config_.heartbeat_interval_ms >= 1,
                 "ClusterConfig::heartbeat_interval_ms = %u: the failure "
                 "detector needs a nonzero heartbeat cadence",
                 config_.heartbeat_interval_ms);
  DICI_CHECK_FMT(
      config_.heartbeat_timeout_ms >= 2 * config_.heartbeat_interval_ms,
      "ClusterConfig::heartbeat_timeout_ms = %u with "
      "heartbeat_interval_ms = %u: the timeout must be at least twice the "
      "interval, or one delayed beat kills a healthy node",
      config_.heartbeat_timeout_ms, config_.heartbeat_interval_ms);
  DICI_CHECK_FMT(config_.ring_frames >= 1,
                 "ClusterConfig::ring_frames = %zu: a frame pipe needs at "
                 "least one slot",
                 config_.ring_frames);
  DICI_CHECK_FMT(config_.retry_backoff_us >= 1,
                 "ClusterConfig::retry_backoff_us = %u: the retry sweeper "
                 "needs a nonzero base backoff",
                 config_.retry_backoff_us);
}

ClusterConfig cluster_config_from(const core::ExperimentConfig& config) {
  core::validate(config);
  core::check_native_supported(config);
  DICI_CHECK_FMT(config.method == Method::kC3,
                 "ExperimentConfig::method = %s: ClusterEngine ships sorted "
                 "shard arrays to its nodes (Method C-3)",
                 core::method_name(config.method));
  DICI_CHECK_FMT(config.num_masters == 1,
                 "ExperimentConfig::num_masters = %u: ClusterEngine maps "
                 "extra masters to extra Clients, not config knobs — "
                 "connect() one Client per master",
                 config.num_masters);
  ClusterConfig cluster;
  cluster.num_nodes = config.num_slaves();
  cluster.num_shards = config.num_slaves();
  cluster.batch_bytes = config.batch_bytes;
  cluster.transport = config.transport;
  cluster.kernel = config.kernel;
  cluster.placement = config.placement;
  cluster.heartbeat_interval_ms = config.heartbeat_interval_ms;
  cluster.heartbeat_timeout_ms = config.heartbeat_timeout_ms;
  cluster.track_latency = config.track_latency;
  cluster.max_retries = config.max_retries;
  cluster.retry_backoff_us = config.retry_backoff_us;
  cluster.failover = config.failover;
  return cluster;
}

ClusterEngine::ClusterEngine(const core::ExperimentConfig& config)
    : ClusterEngine(cluster_config_from(config)) {}

namespace {

using Clock = std::chrono::steady_clock;
using namespace std::chrono_literals;

/// Build-phase patience (join handshake, build acks): a node that can't
/// answer within this during build is a bug, and build has no error
/// channel — it aborts loudly.
constexpr auto kBuildTimeout = 30s;

/// Re-join patience. Unlike build, a re-join has an error channel (it
/// returns false and the node goes back to DEAD), so it can afford to
/// give up fast — e.g. when the operator re-joins into a still-
/// partitioned link.
constexpr auto kRejoinTimeout = 5s;

/// Keys per kBuildShard chunk. 4 MiB of payload per frame — far under
/// kMaxFramePayloadBytes, large enough that a build is a handful of
/// frames per shard.
constexpr std::size_t kBuildChunkKeys = 1u << 20;

/// failed_node sentinel: no failure recorded / no routable node.
constexpr std::uint32_t kNoFailure = 0xffffffffu;

std::uint32_t clamped_shards(const ClusterConfig& config, std::size_t n) {
  const std::uint32_t want =
      config.num_shards == 0 ? config.num_nodes : config.num_shards;
  return static_cast<std::uint32_t>(
      std::max<std::size_t>(1, std::min<std::size_t>(want, n)));
}

/// Index-lifetime recovery accounting: re-join events and their wall
/// time. Held by shared_ptr so a Completion can harvest (exchange-to-
/// zero) after the index itself is gone; RunReport::merge adds, so
/// events are reported exactly once however many batches a stream runs.
struct RecoveryLedger {
  std::atomic<std::uint64_t> rejoins{0};
  std::atomic<std::uint64_t> recovery_ns{0};
};

/// One tracked dispatch message. The encoded request frame is RETAINED
/// until exactly one reply claims the chunk — that copy is what the
/// retry sweeper re-sends and what failover re-routes, and the chunk id
/// it carries is what dedupes however many answers the fault schedule
/// lets through. All fields are guarded by the owning submission's
/// chunk_mu.
struct Chunk {
  net::Frame frame;           ///< encoded kQueryBatch (epoch re-stamped per send)
  std::uint32_t shard = 0;    ///< kGlobalShard under kReplicate
  std::uint32_t node = 0;     ///< current assignment
  std::uint32_t attempts = 0; ///< sends on the current assignment
  std::uint32_t hops = 0;     ///< failover re-assignments so far
  Clock::time_point next_retry{};
  bool done = false;          ///< claimed by a reply, or written off
};

/// Completion record for one submitted batch. `outstanding` starts at 1
/// (the submitter's hold) plus one per chunk; every chunk finishes
/// EXACTLY once — claimed by the first reply carrying its id, or
/// written off by the failure path when no replica survives — so the
/// countdown is immune to duplicated, delayed, and re-sent frames.
///
/// Locking: chunk_mu guards the chunk table, the per-node stat slots,
/// and the sent-side counters (every send — submitter, sweeper,
/// failover — happens under it, as does every reply claim). Lock order:
/// chunk_mu -> link tx (innermost); subs_mu_ is only ever taken with
/// chunk_mu RELEASED.
struct ClusterSubmission {
  ClusterSubmission(std::uint64_t id_, std::uint32_t num_nodes,
                    bool track_latency_)
      : id(id_), track_latency(track_latency_), node_queries(num_nodes, 0),
        node_busy_ns(num_nodes, 0), node_replies(num_nodes, 0),
        node_reply_bytes(num_nodes, 0), node_sent(num_nodes, 0),
        node_sent_bytes(num_nodes, 0),
        node_latency(track_latency_ ? num_nodes : 0) {}

  const std::uint64_t id;
  rank_t* out = nullptr;
  std::vector<rank_t> sink;  ///< backs `out` when the caller passed none

  bool track_latency = false;
  std::vector<double> queued_ns;  ///< per query id; empty = no prior wait

  /// Coordinator-side delta fold: nodes resolve base ranks only; the
  /// live-set correction is a post-pass in await() over the scattered
  /// results, exactly like NativeClient. query_copy holds the queries
  /// (in id order) because the caller's span dies with submit().
  std::shared_ptr<const index::DeltaSnapshot> delta;
  std::vector<key_t> query_copy;

  // --- Everything below here is guarded by chunk_mu -----------------------
  std::mutex chunk_mu;
  std::deque<Chunk> chunks;  ///< deque: stable addresses, indexed by chunk id

  std::vector<std::uint64_t> node_queries;
  std::vector<std::uint64_t> node_busy_ns;
  std::vector<std::uint64_t> node_replies;
  std::vector<std::uint64_t> node_reply_bytes;
  std::vector<std::uint64_t> node_sent;
  std::vector<std::uint64_t> node_sent_bytes;
  std::vector<Summary> node_latency;

  std::uint64_t messages = 0;    ///< frames actually sent (retries included)
  std::uint64_t wire_bytes = 0;  ///< request-hop serialized bytes
  std::uint64_t retries = 0;     ///< re-sends of unanswered chunks
  std::uint64_t failovers = 0;   ///< chunks re-routed to another replica
  // --- End of chunk_mu protection -----------------------------------------

  /// First node whose unrecoverable death touched this submission
  /// (kNoFailure = none). A recovered fault (retry or failover worked)
  /// never sets this.
  std::atomic<std::uint32_t> failed_node{kNoFailure};

  // Filled by the submitter before it releases its hold.
  std::uint64_t num_queries = 0;
  double dispatch_sec = 0.0;

  WallTimer timer;        ///< started at submit
  double wall_sec = 0.0;  ///< stamped by whoever completes last

  std::atomic<std::uint64_t> outstanding{1};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::atomic<bool> done_flag{false};

  void record_failure(std::uint32_t node) {
    std::uint32_t expected = kNoFailure;
    failed_node.compare_exchange_strong(expected, node,
                                        std::memory_order_acq_rel);
  }

  /// Drop `k` from the countdown; returns true when this call completed
  /// the submission (and has signalled the waiter).
  bool finish(std::uint64_t k) {
    if (outstanding.fetch_sub(k, std::memory_order_acq_rel) != k) return false;
    wall_sec = timer.elapsed_sec();
    {
      std::lock_guard lock(mu);
      done = true;
    }
    done_flag.store(true, std::memory_order_release);
    cv.notify_all();
    return true;
  }

  void await_done() {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return done; });
  }
};

/// One coordinator->node link. `tx` serializes senders; `dead` is set
/// under tx (so a sender is always entirely before the death — its
/// frame is on the wire — or entirely after, seeing `dead` and
/// skipping) but readable lock-free by the routing paths. `epoch` is
/// the link incarnation, bumped when a re-join replaces the endpoint;
/// every frame the coordinator sends is stamped with it, and the
/// receiver ignores rank frames from any other incarnation.
struct Link {
  std::unique_ptr<net::Endpoint> endpoint;
  std::mutex tx;
  std::atomic<bool> dead{false};
  std::atomic<std::uint32_t> epoch{1};
};

class ClusterIndex : public Index {
 public:
  ClusterIndex(const ClusterConfig& config, std::span<const key_t> index_keys)
      : Index(index_keys),
        config_(config),
        partitioner_(keys(), clamped_shards(config, keys().size())),
        membership_(config.num_nodes),
        links_(config.num_nodes),
        ledger_(std::make_shared<RecoveryLedger>()) {
    const std::uint32_t N = config_.num_nodes;
    if (config_.faults.enabled())
      controller_ = std::make_shared<net::FaultController>();  // healed
    nodes_.reserve(N);
    for (std::uint32_t i = 0; i < N; ++i) {
      auto spawned = spawn_node(i, /*epoch=*/1);
      links_[i] = std::make_unique<Link>();
      links_[i]->endpoint = std::move(spawned.endpoint);
      nodes_.push_back(std::move(spawned.peer));
    }
    join_all();
    broadcast_cluster_info();
    scatter_shards();
    await_build_acks();
    broadcast_cluster_info();
    // The build ran on a clean wire; only now do the configured faults
    // start biting (build retries are deliberately not a thing).
    if (controller_ != nullptr && config_.faults.armed) controller_->arm();
    receivers_.resize(N);
    for (std::uint32_t i = 0; i < N; ++i)
      receivers_[i] = std::thread([this, i] { receiver_loop(i); });
    sweeper_ = std::thread([this] { sweeper_loop(); });
  }

  ~ClusterIndex() override {
    // No client outlives the Index, so every submission has completed
    // (drained or failed). Stop the sweeper and receivers, wave the
    // nodes goodbye on a clean wire, and close the links — close
    // unblocks every recv on both ends.
    stop_.store(true, std::memory_order_release);
    if (controller_ != nullptr) controller_->heal();
    sweeper_.join();
    for (std::uint32_t i = 0; i < links_.size(); ++i) {
      std::lock_guard lock(links_[i]->tx);
      if (!links_[i]->dead.load(std::memory_order_acquire)) {
        (void)links_[i]->endpoint->send(
            net::encode_shutdown(net::kCoordinatorId), 10ms);
      }
    }
    for (auto& link : links_) link->endpoint->close();
    for (auto& receiver : receivers_)
      if (receiver.joinable()) receiver.join();
    nodes_.clear();  // joins each service thread / reaps each child
  }

  const char* backend() const override {
    return core::backend_name(Backend::kCluster);
  }

  const ClusterConfig& config() const { return config_; }

  NodeStatus node_status(std::uint32_t node) const {
    std::lock_guard lock(membership_mu_);
    return membership_.status(node);
  }

  std::shared_ptr<net::FaultController> fault_controller() const {
    return controller_;
  }

  /// Test hook: silence node `i` as if its machine lost power.
  void kill_node(std::uint32_t i) const { nodes_[i]->kill(); }

  /// The spawned children's pids (empty for in-process transports).
  std::vector<int> node_pids() const {
    std::vector<int> pids;
    for (const auto& node : nodes_)
      if (node != nullptr && node->pid() > 0) pids.push_back(node->pid());
    return pids;
  }

  bool rejoin_node(std::uint32_t i) const;

  std::unique_ptr<Client::Completion> submit_batch(
      std::span<const key_t> queries, std::vector<rank_t>* out_ranks,
      const SubmitOptions& options) const;

 private:
  class ClusterCompletion;

  std::uint32_t node_of_shard(std::uint32_t shard) const {
    return shard % config_.num_nodes;
  }

  /// The wire-carried node configuration (sent as kNodeConfig right
  /// after each join ack — same frame whether the node is a thread here
  /// or an exec'd dici_node).
  net::NodeConfigMsg node_config_msg() const {
    net::NodeConfigMsg msg;
    msg.kernel = static_cast<std::uint8_t>(config_.kernel);
    msg.interleave_width = config_.interleave_width;
    msg.heartbeat_interval_ms = config_.heartbeat_interval_ms;
    msg.num_nodes = config_.num_nodes;
    return msg;
  }

  std::chrono::milliseconds send_timeout() const {
    return std::chrono::milliseconds(config_.heartbeat_timeout_ms);
  }

  /// Backoff before the (attempts+1)-th send of a chunk: base * 2^k,
  /// exponent capped so a long outage polls, not overflows.
  Clock::duration backoff_after(std::uint32_t attempts) const {
    const std::uint32_t shift = std::min(attempts == 0 ? 0u : attempts - 1, 6u);
    return std::chrono::microseconds(
        static_cast<std::uint64_t>(config_.retry_backoff_us) << shift);
  }

  /// A fresh transport pair for node `i`, fault-decorated when the
  /// config asks for it. The injection seed is salted with node and
  /// epoch, so every link — and every re-join incarnation of a link —
  /// draws its own reproducible schedule from one config seed.
  std::pair<std::unique_ptr<net::Endpoint>, std::unique_ptr<net::Endpoint>>
  make_link(std::uint32_t i, std::uint32_t epoch) const {
    auto [coordinator_end, node_end] =
        net::make_transport_pair(config_.transport, config_.ring_frames);
    if (controller_ == nullptr)
      return {std::move(coordinator_end), std::move(node_end)};
    std::uint64_t state =
        config_.faults.seed ^ (0x9e3779b97f4a7c15ull * (i + 1) + epoch);
    const std::uint64_t to_node_seed = splitmix64(state);
    const std::uint64_t to_coordinator_seed = splitmix64(state);
    auto coordinator = std::make_unique<net::FaultInjectingEndpoint>(
        std::move(coordinator_end), controller_,
        net::FaultInjectingEndpoint::Direction::kToNode,
        config_.faults.to_node, to_node_seed);
    auto node = std::make_unique<net::FaultInjectingEndpoint>(
        std::move(node_end), controller_,
        net::FaultInjectingEndpoint::Direction::kToCoordinator,
        config_.faults.to_coordinator, to_coordinator_seed);
    return {std::move(coordinator), std::move(node)};
  }

  /// Fault decoration for a process link, where only the coordinator's
  /// end of the wire lives in this address space: the node-bound rates
  /// inject on send (as usual), and the coordinator-bound rates inject
  /// at INTAKE (Mode::kRecvSide) on the same endpoint — so the child's
  /// traffic faces the same schedule an in-process node's would,
  /// drawn from the identical node/epoch-salted seeds.
  std::unique_ptr<net::Endpoint> decorate_coordinator_end(
      std::unique_ptr<net::Endpoint> raw, std::uint32_t i,
      std::uint32_t epoch) const {
    if (controller_ == nullptr) return raw;
    std::uint64_t state =
        config_.faults.seed ^ (0x9e3779b97f4a7c15ull * (i + 1) + epoch);
    const std::uint64_t to_node_seed = splitmix64(state);
    const std::uint64_t to_coordinator_seed = splitmix64(state);
    auto intake = std::make_unique<net::FaultInjectingEndpoint>(
        std::move(raw), controller_,
        net::FaultInjectingEndpoint::Direction::kToCoordinator,
        config_.faults.to_coordinator, to_coordinator_seed,
        net::FaultInjectingEndpoint::Mode::kRecvSide);
    return std::make_unique<net::FaultInjectingEndpoint>(
        std::move(intake), controller_,
        net::FaultInjectingEndpoint::Direction::kToNode,
        config_.faults.to_node, to_node_seed);
  }

  /// One node slot, spawned per the configured transport: the
  /// coordinator's (fault-decorated) endpoint plus the peer handle it
  /// can kill and destroy. Shared by the constructor and re-join, so a
  /// re-joined process node is a genuinely fresh child.
  struct SpawnedNode {
    std::unique_ptr<net::Endpoint> endpoint;
    std::unique_ptr<NodePeer> peer;
  };

  SpawnedNode spawn_node(std::uint32_t i, std::uint32_t epoch) const {
    if (net::transport_is_process(config_.transport)) {
      const std::string binary = config_.node_binary.empty()
                                     ? ProcessNode::default_binary()
                                     : config_.node_binary;
      std::unique_ptr<net::Endpoint> raw;
      std::unique_ptr<NodePeer> peer;
      if (config_.transport == net::TransportKind::kFork) {
        int fds[2];
        net::cloexec_socketpair(fds);
        peer = ProcessNode::spawn_fd(binary, i, fds[1]);
        raw = std::make_unique<net::FdEndpoint>(fds[0]);
      } else {
        net::TcpListener listener;
        peer = ProcessNode::spawn_connect(binary, i, listener.port());
        std::string error;
        raw = listener.accept(kBuildTimeout, &error);
        DICI_CHECK_FMT(raw != nullptr,
                       "cluster build: spawned node %u never connected back "
                       "to the coordinator's listener (%s)",
                       i, error.c_str());
      }
      return {decorate_coordinator_end(std::move(raw), i, epoch),
              std::move(peer)};
    }
    auto [coordinator_end, node_end] = make_link(i, epoch);
    return {std::move(coordinator_end),
            std::make_unique<ClusterNode>(i, std::move(node_end))};
  }

  // --- Build phase (constructor, and re-join's re-scatter) ----------------

  /// Receive the next frame from node `i` during build, skipping (but
  /// recording) heartbeats. Aborts on timeout/close — build has no
  /// error channel and a node that dies during build is a bug.
  net::Frame recv_build_frame(std::uint32_t i) {
    for (;;) {
      net::Frame frame;
      std::string error;
      const auto result =
          links_[i]->endpoint->recv(&frame, kBuildTimeout, &error);
      DICI_CHECK_FMT(result == net::Endpoint::RecvResult::kFrame,
                     "cluster build: node %u went silent before completing "
                     "the handshake (recv result %d: %s)",
                     i, static_cast<int>(result), error.c_str());
      if (frame.header.msg_type() == net::MsgType::kHeartbeat) {
        std::lock_guard lock(membership_mu_);
        membership_.record_alive(i, Clock::now());
        continue;
      }
      return frame;
    }
  }

  void send_control(std::uint32_t i, net::Frame frame) {
    frame.header.epoch = links_[i]->epoch.load(std::memory_order_acquire);
    std::lock_guard lock(links_[i]->tx);
    const auto result = links_[i]->endpoint->send(frame, kBuildTimeout);
    DICI_CHECK_FMT(result == net::Endpoint::SendResult::kOk,
                   "cluster build: send to node %u failed (result %d)", i,
                   static_cast<int>(result));
  }

  void join_all() {
    for (std::uint32_t i = 0; i < config_.num_nodes; ++i) {
      const net::Frame frame = recv_build_frame(i);
      net::JoinRequestMsg request;
      std::string error;
      DICI_CHECK_FMT(
          net::decode_join_request(frame, &request, &error) &&
              request.node_id == i,
          "cluster build: node %u sent %s instead of its join request (%s)",
          i, net::msg_type_name(frame.header.msg_type()), error.c_str());
      {
        std::lock_guard lock(membership_mu_);
        membership_.transition(i, NodeStatus::kJoining);
        membership_.record_alive(i, Clock::now());
      }
      send_control(i, net::encode_join_ack(net::kCoordinatorId,
                                           {i, config_.num_nodes}));
      // The wire IS the configuration channel: an exec'd dici_node
      // learns its kernel/cadence/cluster size from this frame, and an
      // in-process node takes the identical path.
      send_control(
          i, net::encode_node_config(net::kCoordinatorId, node_config_msg()));
      std::lock_guard lock(membership_mu_);
      membership_.transition(i, NodeStatus::kAck);
    }
  }

  void broadcast_cluster_info() {
    net::ClusterInfoMsg info;
    {
      std::lock_guard lock(membership_mu_);
      info.nodes = membership_.to_entries();
    }
    const net::Frame frame =
        net::encode_cluster_info(net::kCoordinatorId, info);
    for (std::uint32_t i = 0; i < config_.num_nodes; ++i)
      send_control(i, frame);
  }

  /// Best-effort cluster-info broadcast to the live nodes (used after a
  /// re-join, when other nodes may be dead and the wire may be faulty —
  /// a lost broadcast only stales a node's mirror, never correctness).
  void broadcast_cluster_info_tolerant() const {
    net::ClusterInfoMsg info;
    {
      std::lock_guard lock(membership_mu_);
      info.nodes = membership_.to_entries();
    }
    const net::Frame frame =
        net::encode_cluster_info(net::kCoordinatorId, info);
    for (std::uint32_t i = 0; i < config_.num_nodes; ++i) {
      net::Frame stamped = frame;
      stamped.header.epoch = links_[i]->epoch.load(std::memory_order_acquire);
      std::lock_guard lock(links_[i]->tx);
      if (links_[i]->dead.load(std::memory_order_acquire)) continue;
      (void)links_[i]->endpoint->send(stamped, 100ms);
    }
  }

  /// Split one shard replica into chunk-tagged kBuildShard messages.
  template <typename Emit>
  void emit_shard_chunks(std::uint32_t shard,
                         std::span<const key_t> shard_keys, rank_t offset,
                         bool final_shard_of_node, Emit&& emit) const {
    const std::size_t chunks =
        std::max<std::size_t>(1, (shard_keys.size() + kBuildChunkKeys - 1) /
                                     kBuildChunkKeys);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * kBuildChunkKeys;
      const std::size_t count =
          std::min(kBuildChunkKeys, shard_keys.size() - begin);
      net::BuildShardMsg msg;
      msg.shard = shard;
      msg.global_offset = offset + static_cast<rank_t>(begin);
      msg.chunk = static_cast<std::uint32_t>(c);
      msg.last = final_shard_of_node && c + 1 == chunks;
      msg.keys.assign(shard_keys.begin() + static_cast<std::ptrdiff_t>(begin),
                      shard_keys.begin() +
                          static_cast<std::ptrdiff_t>(begin + count));
      emit(std::move(msg));
    }
  }

  /// Enumerate node `i`'s full build-frame sequence (ship order, the
  /// node's final frame last-flagged); returns the shard-replica count
  /// of the assignment. Shared by the initial scatter and a re-join's
  /// re-scatter, so a re-joined node is bit-identical to its first
  /// incarnation.
  template <typename Emit>
  std::uint32_t for_each_build_shard(std::uint32_t i, Emit&& emit) const {
    const std::uint32_t N = config_.num_nodes;
    if (config_.placement == index::Placement::kReplicate) {
      // The paper's replicated strategy: every node holds the whole
      // array (shipped as real bytes) and answers at offset 0.
      emit_shard_chunks(net::kGlobalShard, keys(), 0,
                        /*final_shard_of_node=*/true, emit);
      return 1;
    }
    // kInterleave / kNodeLocal: shard s lives on node s % N. On a wire
    // these are one assignment — a shipped replica is by construction
    // local to its node — so both placement names hit this path.
    const std::uint32_t S = partitioner_.parts();
    std::vector<std::uint32_t> shards;
    for (std::uint32_t s = i; s < S; s += N) shards.push_back(s);
    if (shards.empty()) {
      // More nodes than shards (tiny index): the node still needs its
      // "build complete" marker to ack. An empty last-flagged frame is
      // exactly that.
      net::BuildShardMsg msg;
      msg.shard = net::kGlobalShard;
      msg.last = true;
      emit(std::move(msg));
      return 0;
    }
    for (std::size_t j = 0; j < shards.size(); ++j) {
      const std::uint32_t s = shards[j];
      emit_shard_chunks(s, partitioner_.keys_of(s), partitioner_.start_of(s),
                        /*final_shard_of_node=*/j + 1 == shards.size(), emit);
    }
    return static_cast<std::uint32_t>(shards.size());
  }

  void scatter_shards() {
    for (std::uint32_t i = 0; i < config_.num_nodes; ++i) {
      const std::uint32_t shards =
          for_each_build_shard(i, [&](net::BuildShardMsg&& msg) {
            send_control(i, net::encode_build_shard(net::kCoordinatorId, msg));
          });
      std::lock_guard lock(membership_mu_);
      membership_.set_shards(i, shards);
    }
  }

  void await_build_acks() {
    for (std::uint32_t i = 0; i < config_.num_nodes; ++i) {
      const net::Frame frame = recv_build_frame(i);
      net::BuildAckMsg ack;
      std::string error;
      DICI_CHECK_FMT(
          net::decode_build_ack(frame, &ack, &error),
          "cluster build: node %u sent %s instead of its build ack (%s)", i,
          net::msg_type_name(frame.header.msg_type()), error.c_str());
      std::lock_guard lock(membership_mu_);
      membership_.transition(i, NodeStatus::kAlive);
      membership_.record_alive(i, Clock::now());
    }
  }

  // --- Routing -------------------------------------------------------------

  /// Pick a live node holding `shard`, preferring anyone but `exclude`
  /// (the current, suspect assignment — pass kNoFailure for none).
  /// Under kReplicate every node holds everything, so the scan round-
  /// robins the survivors; otherwise the shard's sole owner is the only
  /// candidate. Returns kNoFailure when no (other) live holder exists.
  std::uint32_t pick_target(std::uint32_t shard, std::uint32_t exclude) const {
    const std::uint32_t N = config_.num_nodes;
    if (shard == net::kGlobalShard &&
        config_.placement == index::Placement::kReplicate) {
      const std::uint64_t start =
          round_robin_.fetch_add(1, std::memory_order_relaxed);
      std::uint32_t fallback = kNoFailure;
      for (std::uint32_t k = 0; k < N; ++k) {
        const auto n = static_cast<std::uint32_t>((start + k) % N);
        if (links_[n]->dead.load(std::memory_order_acquire)) continue;
        if (n == exclude) {
          fallback = n;  // the suspect may end up the only live holder
          continue;
        }
        return n;
      }
      return fallback;
    }
    const std::uint32_t owner = node_of_shard(shard);
    if (links_[owner]->dead.load(std::memory_order_acquire)) return kNoFailure;
    return owner == exclude ? kNoFailure : owner;
  }

  /// Send `c` to its assigned node (chunk_mu held). A skipped or failed
  /// send leaves the chunk unanswered — the sweeper or the failure path
  /// covers it — so this can afford to be fire-and-forget.
  void send_chunk(ClusterSubmission& sub, Chunk& c) const {
    Link& link = *links_[c.node];
    c.frame.header.epoch = link.epoch.load(std::memory_order_acquire);
    const std::uint64_t frame_bytes =
        net::kFrameHeaderBytes + c.frame.payload.size();
    std::lock_guard lock(link.tx);
    if (link.dead.load(std::memory_order_acquire)) return;  // fail_node re-routes
    if (link.endpoint->send(c.frame, send_timeout()) !=
        net::Endpoint::SendResult::kOk)
      return;
    sub.messages += 1;
    sub.wire_bytes += frame_bytes;
    sub.node_sent[c.node] += 1;
    sub.node_sent_bytes[c.node] += frame_bytes;
  }

  /// Write a chunk off as unrecoverable (chunk_mu held): no surviving
  /// replica holds its shard. The caller owns the finish(1).
  static void fail_chunk(ClusterSubmission& sub, Chunk& c,
                         std::uint32_t blame) {
    c.done = true;
    c.frame = {};
    sub.record_failure(blame);
  }

  // --- Failure path --------------------------------------------------------

  /// Mark node `i` DEAD and re-route (failover on) or write off
  /// (failover off / no surviving replica) its unanswered chunks in
  /// every in-flight submission. Runs on node i's receiver thread.
  void fail_node(std::uint32_t i) const {
    {
      // tx-mutex handshake with senders: after this block, any sender
      // that did not already put its frame on the wire will observe
      // `dead` and skip the send.
      std::lock_guard lock(links_[i]->tx);
      if (links_[i]->dead.exchange(true, std::memory_order_acq_rel))
        return;  // another path got here first
    }
    {
      std::lock_guard lock(membership_mu_);
      membership_.transition(i, NodeStatus::kDead);
    }
    links_[i]->endpoint->close();
    std::vector<std::shared_ptr<ClusterSubmission>> subs;
    {
      std::lock_guard lock(subs_mu_);
      subs.reserve(pending_.size());
      for (auto& [id, sub] : pending_) subs.push_back(sub);
    }
    for (const auto& sub : subs) {
      std::uint64_t finished = 0;
      {
        std::lock_guard lock(sub->chunk_mu);
        for (Chunk& c : sub->chunks) {
          if (c.done || c.node != i) continue;
          const std::uint32_t target =
              config_.failover ? pick_target(c.shard, i) : kNoFailure;
          if (target == kNoFailure || target == i) {
            fail_chunk(*sub, c, i);
            ++finished;
            continue;
          }
          c.node = target;
          c.attempts = 1;
          ++c.hops;
          sub->failovers += 1;
          c.next_retry = Clock::now() + backoff_after(1);
          send_chunk(*sub, c);
        }
      }
      if (finished != 0 && sub->finish(finished)) {
        std::lock_guard lock(subs_mu_);
        pending_.erase(sub->id);
      }
    }
  }

  // --- Serve phase ---------------------------------------------------------

  void handle_rank_batch(std::uint32_t i, const net::Frame& frame) const {
    net::RankBatchMsg msg;
    std::string error;
    if (!net::decode_rank_batch(frame, &msg, &error)) {
      // The checksum passed, so this is a real protocol breach, not
      // wire damage: stop trusting the node.
      fail_node(i);
      return;
    }
    std::shared_ptr<ClusterSubmission> sub;
    {
      std::lock_guard lock(subs_mu_);
      const auto it = pending_.find(msg.submission);
      if (it == pending_.end()) return;  // reply to a completed/failed batch
      sub = it->second;
    }
    bool claimed = false;
    {
      std::lock_guard lock(sub->chunk_mu);
      if (msg.chunk >= sub->chunks.size()) return;
      Chunk& c = sub->chunks[msg.chunk];
      if (c.done) return;  // duplicate / late copy — already claimed
      c.done = true;
      c.frame = {};  // the retained request copy is no longer needed
      claimed = true;
      // The order-preserving merge: scatter by query id. The claim
      // under chunk_mu makes this exactly-once however many duplicated
      // or re-sent copies of the chunk were answered — and whichever
      // node answered, the ranks are global, so a failover reply lands
      // identically.
      for (std::size_t j = 0; j < msg.ids.size(); ++j)
        sub->out[msg.ids[j]] = msg.ranks[j];
      sub->node_queries[i] += msg.ids.size();
      sub->node_busy_ns[i] += msg.busy_ns;
      sub->node_replies[i] += 1;
      sub->node_reply_bytes[i] +=
          net::kFrameHeaderBytes + frame.payload.size();
      if (sub->track_latency) {
        // One arrival stamp for the whole reply (its queries' answers
        // all exist on the coordinator now), read against the submit
        // stamp.
        const double resolved_ns = sub->timer.elapsed_ns();
        if (sub->queued_ns.empty()) {
          sub->node_latency[i].add_n(resolved_ns, msg.ids.size());
        } else {
          for (const std::uint32_t id : msg.ids)
            sub->node_latency[i].add(resolved_ns + sub->queued_ns[id]);
        }
      }
    }
    if (claimed && sub->finish(1)) {
      std::lock_guard lock(subs_mu_);
      pending_.erase(sub->id);
    }
  }

  void receiver_loop(std::uint32_t i) const {
    const auto interval =
        std::chrono::milliseconds(config_.heartbeat_interval_ms);
    const auto timeout =
        std::chrono::milliseconds(config_.heartbeat_timeout_ms);
    auto last_seen = Clock::now();
    while (!stop_.load(std::memory_order_acquire)) {
      net::Frame frame;
      std::string error;
      switch (links_[i]->endpoint->recv(&frame, interval, &error)) {
        case net::Endpoint::RecvResult::kFrame: {
          last_seen = Clock::now();
          {
            std::lock_guard lock(membership_mu_);
            membership_.record_alive(i, last_seen);
          }
          if (frame.header.msg_type() == net::MsgType::kRankBatch &&
              frame.header.epoch ==
                  links_[i]->epoch.load(std::memory_order_acquire)) {
            handle_rank_batch(i, frame);
          }
          // Heartbeats carry only liveness (recorded above); any other
          // type — or a rank frame from a stale incarnation — is
          // ignorable noise.
          continue;
        }
        case net::Endpoint::RecvResult::kCorrupt:
          // A damaged frame still proves the node's transmitter is
          // alive; the frame itself is dropped and the sweeper's
          // retries cover whatever it carried.
          last_seen = Clock::now();
          {
            std::lock_guard lock(membership_mu_);
            membership_.record_alive(i, last_seen);
          }
          continue;
        case net::Endpoint::RecvResult::kTimeout:
          if (Clock::now() - last_seen > timeout) {
            fail_node(i);
            return;
          }
          continue;
        case net::Endpoint::RecvResult::kClosed:
          if (!stop_.load(std::memory_order_acquire)) fail_node(i);
          return;
        case net::Endpoint::RecvResult::kError:
          fail_node(i);
          return;
      }
    }
  }

  /// The retry sweeper: one coordinator thread that re-sends every
  /// unanswered chunk whose backoff deadline passed. Retries cover
  /// dropped/corrupted frames on a live link; exhausted retries
  /// escalate to failover — which is what lets a batch complete BEFORE
  /// the heartbeat verdict when a replica-holding node dies mid-stream.
  void sweeper_loop() const {
    const auto backoff = std::chrono::microseconds(config_.retry_backoff_us);
    const auto tick = std::clamp<Clock::duration>(
        backoff / 2, std::chrono::microseconds(500),
        std::chrono::milliseconds(10));
    while (!stop_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(tick);
      if (stop_.load(std::memory_order_acquire)) return;
      std::vector<std::shared_ptr<ClusterSubmission>> subs;
      {
        std::lock_guard lock(subs_mu_);
        if (pending_.empty()) continue;
        subs.reserve(pending_.size());
        for (auto& [id, sub] : pending_) subs.push_back(sub);
      }
      for (const auto& sub : subs) {
        std::lock_guard lock(sub->chunk_mu);
        const auto now = Clock::now();
        for (Chunk& c : sub->chunks) {
          if (c.done || now < c.next_retry) continue;
          if (c.attempts <= config_.max_retries) {
            // One more nudge at the same assignment.
            ++c.attempts;
            sub->retries += 1;
            c.next_retry = now + backoff_after(c.attempts);
            send_chunk(*sub, c);
            continue;
          }
          // Retries exhausted: the assignment is suspect. Re-route to
          // another live replica holder when one exists (hop-capped so
          // two silent-but-alive nodes can't ping-pong a chunk
          // forever); otherwise keep polling the sole owner at the
          // backoff cap until the heartbeat verdict settles it.
          const std::uint32_t target =
              config_.failover && c.hops < config_.num_nodes
                  ? pick_target(c.shard, c.node)
                  : kNoFailure;
          if (target != kNoFailure && target != c.node) {
            c.node = target;
            c.attempts = 1;
            ++c.hops;
            sub->failovers += 1;
            c.next_retry = now + backoff_after(1);
          } else {
            sub->retries += 1;
            c.next_retry = now + backoff_after(config_.max_retries + 1);
          }
          send_chunk(*sub, c);
        }
      }
    }
  }

  // --- Re-join -------------------------------------------------------------

  /// Tolerant receive for the re-join handshake: skips heartbeats and
  /// corrupt frames, false on timeout/close/breach.
  bool recv_rejoin_frame(std::uint32_t i, net::Frame* frame) const {
    const auto deadline = Clock::now() + kRejoinTimeout;
    for (;;) {
      const auto now = Clock::now();
      if (now >= deadline) return false;
      std::string error;
      switch (links_[i]->endpoint->recv(frame, deadline - now, &error)) {
        case net::Endpoint::RecvResult::kFrame:
          if (frame->header.msg_type() == net::MsgType::kHeartbeat) {
            std::lock_guard lock(membership_mu_);
            membership_.record_alive(i, Clock::now());
            continue;
          }
          return true;
        case net::Endpoint::RecvResult::kCorrupt:
          continue;
        case net::Endpoint::RecvResult::kTimeout:
        case net::Endpoint::RecvResult::kClosed:
        case net::Endpoint::RecvResult::kError:
          return false;
      }
    }
  }

  bool send_rejoin_frame(std::uint32_t i, net::Frame frame,
                         std::uint32_t epoch) const {
    frame.header.epoch = epoch;
    std::lock_guard lock(links_[i]->tx);
    return links_[i]->endpoint->send(frame, kRejoinTimeout) ==
           net::Endpoint::SendResult::kOk;
  }

  /// The DEAD -> JOINING -> ACK -> ALIVE ladder, walked again on the
  /// fresh link: join handshake, shard re-scatter, build ack.
  bool rejoin_handshake(std::uint32_t i, std::uint32_t epoch) const {
    net::Frame frame;
    if (!recv_rejoin_frame(i, &frame)) return false;
    net::JoinRequestMsg request;
    std::string error;
    if (!net::decode_join_request(frame, &request, &error) ||
        request.node_id != i)
      return false;
    {
      std::lock_guard lock(membership_mu_);
      membership_.transition(i, NodeStatus::kJoining);
      membership_.record_alive(i, Clock::now());
    }
    if (!send_rejoin_frame(i,
                           net::encode_join_ack(net::kCoordinatorId,
                                                {i, config_.num_nodes}),
                           epoch))
      return false;
    if (!send_rejoin_frame(i,
                           net::encode_node_config(net::kCoordinatorId,
                                                   node_config_msg()),
                           epoch))
      return false;
    {
      std::lock_guard lock(membership_mu_);
      membership_.transition(i, NodeStatus::kAck);
    }
    // Re-scatter: the node's original shard assignment, re-shipped as
    // the same chunked kBuildShard sequence the first build used.
    bool sent_ok = true;
    const std::uint32_t shards =
        for_each_build_shard(i, [&](net::BuildShardMsg&& msg) {
          sent_ok = sent_ok &&
                    send_rejoin_frame(
                        i, net::encode_build_shard(net::kCoordinatorId, msg),
                        epoch);
        });
    if (!sent_ok) return false;
    if (!recv_rejoin_frame(i, &frame)) return false;
    net::BuildAckMsg ack;
    if (!net::decode_build_ack(frame, &ack, &error)) return false;
    {
      std::lock_guard lock(membership_mu_);
      membership_.transition(i, NodeStatus::kAlive);
      membership_.record_alive(i, Clock::now());
      membership_.set_shards(i, shards);
    }
    return true;
  }

  std::unique_ptr<Client> do_connect(
      std::shared_ptr<const Index> self) const override;

  ClusterConfig config_;
  index::RangePartitioner partitioner_;
  mutable std::mutex membership_mu_;
  mutable Membership membership_;
  mutable std::vector<std::unique_ptr<Link>> links_;
  mutable std::vector<std::unique_ptr<NodePeer>> nodes_;
  std::shared_ptr<net::FaultController> controller_;  ///< null: no faults
  std::shared_ptr<RecoveryLedger> ledger_;
  mutable std::mutex subs_mu_;
  mutable std::unordered_map<std::uint64_t,
                             std::shared_ptr<ClusterSubmission>>
      pending_;
  mutable std::atomic<std::uint64_t> next_sub_id_{1};
  mutable std::atomic<std::uint64_t> round_robin_{0};
  std::atomic<bool> stop_{false};
  mutable std::vector<std::thread> receivers_;
  std::thread sweeper_;
};

bool ClusterIndex::rejoin_node(std::uint32_t i) const {
  {
    std::lock_guard lock(membership_mu_);
    DICI_CHECK_FMT(membership_.status(i) == NodeStatus::kDead,
                   "cluster_rejoin_node: node %u is %s, not DEAD — only a "
                   "dead node can re-join",
                   i, node_status_name(membership_.status(i)));
  }
  WallTimer recovery;
  recovery.start();
  // Retire the old incarnation. The receiver exited right after it ran
  // fail_node (which set the DEAD status gating this call), and the old
  // node object's service thread is parked (killed) or gone — both
  // joins are quick.
  if (receivers_[i].joinable()) receivers_[i].join();
  nodes_[i].reset();

  const std::uint32_t epoch =
      links_[i]->epoch.fetch_add(1, std::memory_order_acq_rel) + 1;

  // The re-scatter runs on a healed wire, like the original build —
  // build frames have no retry layer, deliberately. Re-arm afterwards.
  const bool rearm = controller_ != nullptr && controller_->armed();
  if (controller_ != nullptr) controller_->heal();

  auto spawned = spawn_node(i, epoch);
  {
    // `dead` is still true, so no sender touches the endpoint while it
    // is swapped; the handshake below is the link's only user until the
    // node is ALIVE again.
    std::lock_guard lock(links_[i]->tx);
    links_[i]->endpoint = std::move(spawned.endpoint);
  }
  nodes_[i] = std::move(spawned.peer);

  const bool ok = rejoin_handshake(i, epoch);
  if (rearm) controller_->arm();
  if (!ok) {
    // Back to DEAD (legal from kJoining/kAck/kAlive; no-op from kDead).
    // The fresh node object idles until the next attempt replaces it or
    // the index tears down.
    std::lock_guard lock(membership_mu_);
    membership_.transition(i, NodeStatus::kDead);
    return false;
  }
  {
    std::lock_guard lock(links_[i]->tx);
    links_[i]->dead.store(false, std::memory_order_release);
  }
  receivers_[i] = std::thread([this, i] { receiver_loop(i); });
  broadcast_cluster_info_tolerant();
  ledger_->rejoins.fetch_add(1, std::memory_order_relaxed);
  ledger_->recovery_ns.fetch_add(
      static_cast<std::uint64_t>(recovery.elapsed_ns()),
      std::memory_order_relaxed);
  return true;
}

/// Waits one submission and assembles its RunReport — or throws
/// NodeFailureError when a node died under it with no surviving
/// replica. Self-contained: holds only the submission record and the
/// recovery ledger, safe to await during client teardown.
class ClusterIndex::ClusterCompletion : public Client::Completion {
 public:
  ClusterCompletion(std::shared_ptr<ClusterSubmission> sub,
                    std::shared_ptr<RecoveryLedger> ledger,
                    const ClusterConfig& config)
      : sub_(std::move(sub)), ledger_(std::move(ledger)),
        num_nodes_(config.num_nodes), batch_bytes_(config.batch_bytes) {}

  bool ready() const override {
    return sub_->done_flag.load(std::memory_order_acquire);
  }

  RunReport await() override {
    ClusterSubmission& sub = *sub_;
    sub.await_done();
    const std::uint32_t failed =
        sub.failed_node.load(std::memory_order_acquire);
    if (failed != kNoFailure) {
      throw NodeFailureError(
          failed, "cluster submission " + std::to_string(sub.id) +
                      " failed: node " + std::to_string(failed) +
                      " is DEAD (heartbeat timeout or link failure) and no "
                      "surviving replica holds its shards");
    }
    // Coordinator-side delta fold, after every rank has landed.
    if (sub.delta != nullptr)
      sub.delta->correct(sub.query_copy, sub.out);

    const std::uint32_t N = num_nodes_;
    RunReport report;
    report.method = Method::kC3;
    report.num_queries = sub.num_queries;
    report.num_nodes = N + 1;
    report.batch_bytes = batch_bytes_;
    report.raw_makespan = ns_to_ps(sub.wall_sec * 1e9);
    report.makespan = report.raw_makespan;
    // Frames that actually left the coordinator — retries and failover
    // re-sends included, so under faults messages > chunk count.
    report.messages = sub.messages;
    report.retries = sub.retries;
    report.failovers = sub.failovers;
    // Re-join events are index-lifetime, harvested exactly once by the
    // first successful await after they happen (merge adds them up).
    report.rejoins = ledger_->rejoins.exchange(0, std::memory_order_acq_rel);
    report.recovery_ns =
        ledger_->recovery_ns.exchange(0, std::memory_order_acq_rel);
    // Unlike ParallelNativeEngine (request hop only, to match the
    // simulator), wire_bytes here is MEASURED traffic on both hops —
    // these bytes actually crossed a transport.
    std::uint64_t reply_bytes = 0;
    std::uint64_t replies = 0;
    for (std::uint32_t i = 0; i < N; ++i) {
      reply_bytes += sub.node_reply_bytes[i];
      replies += sub.node_replies[i];
    }
    report.wire_bytes = sub.wire_bytes + reply_bytes;
    report.nodes.resize(N + 1);
    report.nodes[0].queries = sub.num_queries;
    report.nodes[0].busy = ns_to_ps(sub.dispatch_sec * 1e9);
    report.nodes[0].finish = report.raw_makespan;
    report.nodes[0].idle = report.raw_makespan > report.nodes[0].busy
                               ? report.raw_makespan - report.nodes[0].busy
                               : 0;
    report.nodes[0].nic.messages_sent = sub.messages;
    report.nodes[0].nic.bytes_sent = sub.wire_bytes;
    report.nodes[0].nic.messages_received = replies;
    report.nodes[0].nic.bytes_received = reply_bytes;
    double idle_sum = 0.0;
    for (std::uint32_t i = 0; i < N; ++i) {
      NodeReport& node = report.nodes[i + 1];
      node.queries = sub.node_queries[i];
      node.busy = sub.node_busy_ns[i] * 1000;  // ns -> ps
      node.finish = report.raw_makespan;
      node.idle = report.raw_makespan > node.busy
                      ? report.raw_makespan - node.busy
                      : 0;
      node.nic.messages_sent = sub.node_replies[i];
      node.nic.bytes_sent = sub.node_reply_bytes[i];
      node.nic.messages_received = sub.node_sent[i];
      node.nic.bytes_received = sub.node_sent_bytes[i];
      const double busy_sec = static_cast<double>(sub.node_busy_ns[i]) / 1e9;
      if (sub.wall_sec > 0.0)
        idle_sum += std::max(0.0, 1.0 - busy_sec / sub.wall_sec);
    }
    report.slave_idle_fraction = N > 0 ? idle_sum / N : 0.0;
    for (Summary& s : sub.node_latency) report.latency_ns.merge(s);
    return report;
  }

 private:
  std::shared_ptr<ClusterSubmission> sub_;
  std::shared_ptr<RecoveryLedger> ledger_;
  std::uint32_t num_nodes_;
  std::uint64_t batch_bytes_;
};

std::unique_ptr<Client::Completion> ClusterIndex::submit_batch(
    std::span<const key_t> queries, std::vector<rank_t>* out_ranks,
    const SubmitOptions& options) const {
  const std::uint32_t N = config_.num_nodes;
  auto sub = std::make_shared<ClusterSubmission>(
      next_sub_id_.fetch_add(1, std::memory_order_relaxed), N,
      config_.track_latency);
  if (out_ranks != nullptr) {
    out_ranks->assign(queries.size(), 0);
    sub->out = out_ranks->data();
  } else {
    sub->sink.assign(queries.size(), 0);
    sub->out = sub->sink.data();
  }
  sub->num_queries = queries.size();
  if (options.delta != nullptr && !options.delta->empty()) {
    sub->delta = options.delta;
    sub->query_copy.assign(queries.begin(), queries.end());
  }
  if (config_.track_latency && !options.queued_ns.empty())
    sub->queued_ns.assign(options.queued_ns.begin(), options.queued_ns.end());

  // Registered BEFORE any frame leaves, so a node death during the
  // dispatch loop already finds (and re-routes or fails) this
  // submission — and the sweeper starts covering its chunks.
  {
    std::lock_guard lock(subs_mu_);
    pending_.emplace(sub->id, sub);
  }

  const bool replicate = config_.placement == index::Placement::kReplicate;
  const std::uint32_t lanes = replicate ? N : partitioner_.parts();
  std::uint64_t round_robin = 0;

  sub->timer.start();
  WallTimer dispatch_timer;
  dispatch_timer.start();
  core::dispatch_master_rounds(
      queries, config_.batch_bytes, lanes,
      [&](key_t q) -> std::uint32_t {
        // kReplicate balances by turn, not by key range: lanes are just
        // round groupings, the serving node is chosen per-chunk at
        // flush (so the rotation skips dead nodes).
        return replicate ? static_cast<std::uint32_t>(round_robin++ % N)
                         : partitioner_.route(q);
      },
      [&](std::uint32_t lane, DispatchBatch&& batch) {
        net::QueryBatchMsg msg;
        msg.submission = sub->id;
        msg.shard = replicate ? net::kGlobalShard : lane;
        msg.keys = std::move(batch.keys);
        msg.ids = std::move(batch.ids);
        std::lock_guard lock(sub->chunk_mu);
        msg.chunk = static_cast<std::uint32_t>(sub->chunks.size());
        Chunk& c = sub->chunks.emplace_back();
        c.shard = msg.shard;
        c.frame = net::encode_query_batch(net::kCoordinatorId, msg);
        // Hold taken BEFORE the send so the countdown can never hit
        // zero while chunks are still being created; the submitter's
        // own hold keeps a failed first chunk from completing early.
        sub->outstanding.fetch_add(1, std::memory_order_relaxed);
        const std::uint32_t target = pick_target(c.shard, kNoFailure);
        if (target == kNoFailure) {
          // No live holder for this shard: submitting into a grave.
          fail_chunk(*sub, c,
                     replicate ? 0 : node_of_shard(c.shard));
          sub->finish(1);  // cannot complete: the submitter's hold is out
          return;
        }
        c.node = target;
        c.attempts = 1;
        c.next_retry = Clock::now() + backoff_after(1);
        send_chunk(*sub, c);
      });
  sub->dispatch_sec = dispatch_timer.elapsed_sec();
  // Release the submitter's hold; completes immediately on zero work
  // (or when every chunk was written off at submit time).
  if (sub->finish(1)) {
    std::lock_guard lock(subs_mu_);
    pending_.erase(sub->id);
  }
  return std::make_unique<ClusterCompletion>(std::move(sub), ledger_,
                                             config_);
}

/// One master stream into the cluster. All the machinery lives in the
/// ClusterIndex (links are shared and tx-serialized), so the client is
/// just the do_submit forwarder plus the base ledger.
class ClusterClient : public Client {
 public:
  ClusterClient(std::shared_ptr<const Index> index,
                const ClusterIndex* cluster)
      : Client(std::move(index)), cluster_(cluster) {}

  const char* backend() const override {
    return core::backend_name(Backend::kCluster);
  }

 private:
  std::unique_ptr<Completion> do_submit(
      std::span<const key_t> queries, std::vector<rank_t>* out_ranks,
      const SubmitOptions& options) override {
    return cluster_->submit_batch(queries, out_ranks, options);
  }

  const ClusterIndex* cluster_;  // the index the base class keeps alive
};

std::unique_ptr<Client> ClusterIndex::do_connect(
    std::shared_ptr<const Index> self) const {
  return std::make_unique<ClusterClient>(std::move(self), this);
}

const ClusterIndex* as_cluster(const core::Index& index, const char* who) {
  const auto* cluster = dynamic_cast<const ClusterIndex*>(&index);
  DICI_CHECK_FMT(cluster != nullptr,
                 "%s: index backend is %s, not a cluster index", who,
                 index.backend());
  return cluster;
}

void check_node_range(const ClusterIndex& cluster, std::uint32_t node,
                      const char* who) {
  DICI_CHECK_FMT(node < cluster.config().num_nodes,
                 "%s: node %u out of range (cluster has %u nodes)", who, node,
                 cluster.config().num_nodes);
}

}  // namespace

std::shared_ptr<const core::Index> ClusterEngine::build(
    std::span<const key_t> index_keys) const {
  return std::make_shared<const ClusterIndex>(config_, index_keys);
}

void cluster_kill_node_for_test(const core::Index& index, std::uint32_t node) {
  const ClusterIndex* cluster =
      as_cluster(index, "cluster_kill_node_for_test");
  check_node_range(*cluster, node, "cluster_kill_node_for_test");
  cluster->kill_node(node);
}

bool cluster_rejoin_node(const core::Index& index, std::uint32_t node) {
  const ClusterIndex* cluster = as_cluster(index, "cluster_rejoin_node");
  check_node_range(*cluster, node, "cluster_rejoin_node");
  return cluster->rejoin_node(node);
}

NodeStatus cluster_node_status(const core::Index& index, std::uint32_t node) {
  const ClusterIndex* cluster = as_cluster(index, "cluster_node_status");
  check_node_range(*cluster, node, "cluster_node_status");
  return cluster->node_status(node);
}

std::vector<int> cluster_node_pids(const core::Index& index) {
  return as_cluster(index, "cluster_node_pids")->node_pids();
}

std::shared_ptr<net::FaultController> cluster_fault_controller(
    const core::Index& index) {
  return as_cluster(index, "cluster_fault_controller")->fault_controller();
}

}  // namespace dici::cluster
