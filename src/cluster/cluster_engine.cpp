#include "src/cluster/cluster_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/cluster/membership.hpp"
#include "src/cluster/node.hpp"
#include "src/core/dispatch.hpp"
#include "src/index/delta.hpp"
#include "src/index/partitioner.hpp"
#include "src/util/assert.hpp"
#include "src/util/timer.hpp"

namespace dici::cluster {

using core::Backend;
using core::Client;
using core::DispatchBatch;
using core::Index;
using core::Method;
using core::NodeReport;
using core::RunReport;
using core::SubmitOptions;

ClusterEngine::ClusterEngine(const ClusterConfig& config) : config_(config) {
  DICI_CHECK_FMT(config_.num_nodes >= 1,
                 "ClusterConfig::num_nodes = %u: need at least one serving "
                 "node",
                 config_.num_nodes);
  DICI_CHECK_FMT(config_.batch_bytes >= sizeof(key_t),
                 "ClusterConfig::batch_bytes = %llu: a dispatch round must "
                 "hold at least one %zu-byte key",
                 static_cast<unsigned long long>(config_.batch_bytes),
                 sizeof(key_t));
  DICI_CHECK_FMT(index::search_kernel_valid(config_.kernel),
                 "ClusterConfig::kernel = %d: not a SearchKernel value",
                 static_cast<int>(config_.kernel));
  DICI_CHECK_FMT(index::placement_valid(config_.placement),
                 "ClusterConfig::placement = %d: not a Placement value",
                 static_cast<int>(config_.placement));
  DICI_CHECK_FMT(config_.heartbeat_interval_ms >= 1,
                 "ClusterConfig::heartbeat_interval_ms = %u: the failure "
                 "detector needs a nonzero heartbeat cadence",
                 config_.heartbeat_interval_ms);
  DICI_CHECK_FMT(
      config_.heartbeat_timeout_ms >= 2 * config_.heartbeat_interval_ms,
      "ClusterConfig::heartbeat_timeout_ms = %u with "
      "heartbeat_interval_ms = %u: the timeout must be at least twice the "
      "interval, or one delayed beat kills a healthy node",
      config_.heartbeat_timeout_ms, config_.heartbeat_interval_ms);
  DICI_CHECK_FMT(config_.ring_frames >= 1,
                 "ClusterConfig::ring_frames = %zu: a frame pipe needs at "
                 "least one slot",
                 config_.ring_frames);
}

ClusterConfig cluster_config_from(const core::ExperimentConfig& config) {
  core::validate(config);
  core::check_native_supported(config);
  DICI_CHECK_FMT(config.method == Method::kC3,
                 "ExperimentConfig::method = %s: ClusterEngine ships sorted "
                 "shard arrays to its nodes (Method C-3)",
                 core::method_name(config.method));
  DICI_CHECK_FMT(config.num_masters == 1,
                 "ExperimentConfig::num_masters = %u: ClusterEngine maps "
                 "extra masters to extra Clients, not config knobs — "
                 "connect() one Client per master",
                 config.num_masters);
  ClusterConfig cluster;
  cluster.num_nodes = config.num_slaves();
  cluster.num_shards = config.num_slaves();
  cluster.batch_bytes = config.batch_bytes;
  cluster.transport = config.transport;
  cluster.kernel = config.kernel;
  cluster.placement = config.placement;
  cluster.heartbeat_interval_ms = config.heartbeat_interval_ms;
  cluster.heartbeat_timeout_ms = config.heartbeat_timeout_ms;
  cluster.track_latency = config.track_latency;
  return cluster;
}

ClusterEngine::ClusterEngine(const core::ExperimentConfig& config)
    : ClusterEngine(cluster_config_from(config)) {}

namespace {

using Clock = std::chrono::steady_clock;
using namespace std::chrono_literals;

/// Build-phase patience (join handshake, build acks): a node that can't
/// answer within this during build is a bug, and build has no error
/// channel — it aborts loudly.
constexpr auto kBuildTimeout = 30s;

/// Keys per kBuildShard chunk. 4 MiB of payload per frame — far under
/// kMaxFramePayloadBytes, large enough that a build is a handful of
/// frames per shard.
constexpr std::size_t kBuildChunkKeys = 1u << 20;

/// failed_node sentinel: no failure recorded.
constexpr std::uint32_t kNoFailure = 0xffffffffu;

std::uint32_t clamped_shards(const ClusterConfig& config, std::size_t n) {
  const std::uint32_t want =
      config.num_shards == 0 ? config.num_nodes : config.num_shards;
  return static_cast<std::uint32_t>(
      std::max<std::size_t>(1, std::min<std::size_t>(want, n)));
}

/// Completion record for one submitted batch: the cluster twin of
/// ParallelNativeEngine's Submission. `outstanding` starts at 1 (the
/// submitter's hold) and counts un-replied kQueryBatch messages;
/// whoever drops it to zero — the last receiver thread, or the failure
/// path writing off a dead node's share — stamps the wall clock and
/// signals done. Per-node stat slots are written only by that node's
/// receiver thread (and the submitter, for the sent-side counters,
/// before it releases its hold), so no slot is ever shared.
struct ClusterSubmission {
  ClusterSubmission(std::uint64_t id_, std::uint32_t num_nodes,
                    bool track_latency_)
      : id(id_), track_latency(track_latency_), node_queries(num_nodes, 0),
        node_busy_ns(num_nodes, 0), node_replies(num_nodes, 0),
        node_reply_bytes(num_nodes, 0), node_sent(num_nodes, 0),
        node_sent_bytes(num_nodes, 0),
        node_latency(track_latency_ ? num_nodes : 0),
        pending_per_node(num_nodes) {}

  const std::uint64_t id;
  rank_t* out = nullptr;
  std::vector<rank_t> sink;  ///< backs `out` when the caller passed none

  bool track_latency = false;
  std::vector<double> queued_ns;  ///< per query id; empty = no prior wait

  /// Coordinator-side delta fold: nodes resolve base ranks only; the
  /// live-set correction is a post-pass in await() over the scattered
  /// results, exactly like NativeClient. query_copy holds the queries
  /// (in id order) because the caller's span dies with submit().
  std::shared_ptr<const index::DeltaSnapshot> delta;
  std::vector<key_t> query_copy;

  // Per-node stat slots (receiver-thread-owned, except node_sent*
  // which the submitter fills before releasing its hold).
  std::vector<std::uint64_t> node_queries;
  std::vector<std::uint64_t> node_busy_ns;
  std::vector<std::uint64_t> node_replies;
  std::vector<std::uint64_t> node_reply_bytes;
  std::vector<std::uint64_t> node_sent;
  std::vector<std::uint64_t> node_sent_bytes;
  std::vector<Summary> node_latency;

  /// Un-replied messages per node; the failure path exchanges a dead
  /// node's count to zero and writes it off `outstanding` in one step.
  std::vector<std::atomic<std::uint64_t>> pending_per_node;

  /// First node whose death touched this submission (kNoFailure = none).
  std::atomic<std::uint32_t> failed_node{kNoFailure};

  // Filled by the submitter before it releases its hold.
  std::uint64_t num_queries = 0;
  std::uint64_t messages = 0;
  std::uint64_t wire_bytes = 0;  ///< request-hop serialized bytes
  double dispatch_sec = 0.0;

  WallTimer timer;        ///< started at submit
  double wall_sec = 0.0;  ///< stamped by whoever completes last

  std::atomic<std::uint64_t> outstanding{1};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::atomic<bool> done_flag{false};

  void record_failure(std::uint32_t node) {
    std::uint32_t expected = kNoFailure;
    failed_node.compare_exchange_strong(expected, node,
                                        std::memory_order_acq_rel);
  }

  /// Drop `k` from the countdown; returns true when this call completed
  /// the submission (and has signalled the waiter).
  bool finish(std::uint64_t k) {
    if (outstanding.fetch_sub(k, std::memory_order_acq_rel) != k) return false;
    wall_sec = timer.elapsed_sec();
    {
      std::lock_guard lock(mu);
      done = true;
    }
    done_flag.store(true, std::memory_order_release);
    cv.notify_all();
    return true;
  }

  void await_done() {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return done; });
  }
};

/// One coordinator->node link plus its ordering state. `tx` serializes
/// senders (many clients, plus the coordinator's control frames); the
/// failure path takes the same mutex before marking `dead`, so a
/// submitter is always either entirely before the death (its pending
/// increment is visible to the write-off) or entirely after (it sees
/// `dead` and skips the send).
struct Link {
  std::unique_ptr<net::Endpoint> endpoint;
  std::mutex tx;
  bool dead = false;  ///< guarded by tx
};

class ClusterIndex : public Index {
 public:
  ClusterIndex(const ClusterConfig& config, std::span<const key_t> index_keys)
      : Index(index_keys),
        config_(config),
        partitioner_(keys(), clamped_shards(config, keys().size())),
        membership_(config.num_nodes),
        links_(config.num_nodes) {
    const std::uint32_t N = config_.num_nodes;
    NodeConfig node_config;
    node_config.kernel = config_.kernel;
    node_config.interleave_width = config_.interleave_width;
    node_config.heartbeat_interval_ms = config_.heartbeat_interval_ms;
    node_config.num_nodes = N;
    nodes_.reserve(N);
    for (std::uint32_t i = 0; i < N; ++i) {
      auto [coordinator_end, node_end] =
          net::make_transport_pair(config_.transport, config_.ring_frames);
      links_[i] = std::make_unique<Link>();
      links_[i]->endpoint = std::move(coordinator_end);
      nodes_.push_back(
          std::make_unique<ClusterNode>(i, node_config, std::move(node_end)));
    }
    join_all();
    broadcast_cluster_info();
    scatter_shards();
    await_build_acks();
    broadcast_cluster_info();
    receivers_.reserve(N);
    for (std::uint32_t i = 0; i < N; ++i)
      receivers_.emplace_back([this, i] { receiver_loop(i); });
  }

  ~ClusterIndex() override {
    // No client outlives the Index, so every submission has completed
    // (drained or failed). Stop the receivers, wave the nodes goodbye,
    // and close the links — close unblocks every recv on both ends.
    stop_.store(true, std::memory_order_release);
    for (std::uint32_t i = 0; i < links_.size(); ++i) {
      std::lock_guard lock(links_[i]->tx);
      if (!links_[i]->dead) {
        (void)links_[i]->endpoint->send(
            net::encode_shutdown(net::kCoordinatorId), 10ms);
      }
    }
    for (auto& link : links_) link->endpoint->close();
    for (auto& receiver : receivers_) receiver.join();
    nodes_.clear();  // joins each node's service thread
  }

  const char* backend() const override {
    return core::backend_name(Backend::kCluster);
  }

  const ClusterConfig& config() const { return config_; }

  NodeStatus node_status(std::uint32_t node) const {
    std::lock_guard lock(membership_mu_);
    return membership_.status(node);
  }

  /// Test hook: silence node `i` as if its machine lost power.
  void kill_node(std::uint32_t i) const { nodes_[i]->kill(); }

  std::unique_ptr<Client::Completion> submit_batch(
      std::span<const key_t> queries, std::vector<rank_t>* out_ranks,
      const SubmitOptions& options) const;

 private:
  class ClusterCompletion;

  std::uint32_t node_of_shard(std::uint32_t shard) const {
    return shard % config_.num_nodes;
  }

  std::chrono::milliseconds send_timeout() const {
    return std::chrono::milliseconds(config_.heartbeat_timeout_ms);
  }

  // --- Build phase (constructor only) -------------------------------------

  /// Receive the next frame from node `i` during build, skipping (but
  /// recording) heartbeats. Aborts on timeout/close — build has no
  /// error channel and a node that dies during build is a bug.
  net::Frame recv_build_frame(std::uint32_t i) {
    for (;;) {
      net::Frame frame;
      std::string error;
      const auto result =
          links_[i]->endpoint->recv(&frame, kBuildTimeout, &error);
      DICI_CHECK_FMT(result == net::Endpoint::RecvResult::kFrame,
                     "cluster build: node %u went silent before completing "
                     "the handshake (recv result %d: %s)",
                     i, static_cast<int>(result), error.c_str());
      if (frame.header.msg_type() == net::MsgType::kHeartbeat) {
        std::lock_guard lock(membership_mu_);
        membership_.record_alive(i, Clock::now());
        continue;
      }
      return frame;
    }
  }

  void send_control(std::uint32_t i, const net::Frame& frame) {
    std::lock_guard lock(links_[i]->tx);
    const auto result = links_[i]->endpoint->send(frame, kBuildTimeout);
    DICI_CHECK_FMT(result == net::Endpoint::SendResult::kOk,
                   "cluster build: send to node %u failed (result %d)", i,
                   static_cast<int>(result));
  }

  void join_all() {
    for (std::uint32_t i = 0; i < config_.num_nodes; ++i) {
      const net::Frame frame = recv_build_frame(i);
      net::JoinRequestMsg request;
      std::string error;
      DICI_CHECK_FMT(
          net::decode_join_request(frame, &request, &error) &&
              request.node_id == i,
          "cluster build: node %u sent %s instead of its join request (%s)",
          i, net::msg_type_name(frame.header.msg_type()), error.c_str());
      {
        std::lock_guard lock(membership_mu_);
        membership_.transition(i, NodeStatus::kJoining);
        membership_.record_alive(i, Clock::now());
      }
      send_control(i, net::encode_join_ack(net::kCoordinatorId,
                                           {i, config_.num_nodes}));
      std::lock_guard lock(membership_mu_);
      membership_.transition(i, NodeStatus::kAck);
    }
  }

  void broadcast_cluster_info() {
    net::ClusterInfoMsg info;
    {
      std::lock_guard lock(membership_mu_);
      info.nodes = membership_.to_entries();
    }
    const net::Frame frame =
        net::encode_cluster_info(net::kCoordinatorId, info);
    for (std::uint32_t i = 0; i < config_.num_nodes; ++i)
      send_control(i, frame);
  }

  /// Ship one shard replica (or the full array, for kReplicate) to a
  /// node as chunked kBuildShard frames; `last` tags the node's final
  /// build frame so it knows when to finalize and ack.
  void send_shard_chunks(std::uint32_t node, std::uint32_t shard,
                         std::span<const key_t> shard_keys, rank_t offset,
                         bool final_shard_of_node) {
    const std::size_t chunks =
        std::max<std::size_t>(1, (shard_keys.size() + kBuildChunkKeys - 1) /
                                     kBuildChunkKeys);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * kBuildChunkKeys;
      const std::size_t count =
          std::min(kBuildChunkKeys, shard_keys.size() - begin);
      net::BuildShardMsg msg;
      msg.shard = shard;
      msg.global_offset = offset + static_cast<rank_t>(begin);
      msg.last = final_shard_of_node && c + 1 == chunks;
      msg.keys.assign(shard_keys.begin() + static_cast<std::ptrdiff_t>(begin),
                      shard_keys.begin() +
                          static_cast<std::ptrdiff_t>(begin + count));
      send_control(node, net::encode_build_shard(net::kCoordinatorId, msg));
    }
  }

  void scatter_shards() {
    const std::uint32_t N = config_.num_nodes;
    if (config_.placement == index::Placement::kReplicate) {
      // The paper's replicated strategy: every node holds the whole
      // array (shipped once, as real bytes) and answers at offset 0.
      for (std::uint32_t i = 0; i < N; ++i)
        send_shard_chunks(i, net::kGlobalShard, keys(), 0,
                          /*final_shard_of_node=*/true);
      std::lock_guard lock(membership_mu_);
      for (std::uint32_t i = 0; i < N; ++i) membership_.set_shards(i, 1);
      return;
    }
    // kInterleave / kNodeLocal: shard s lives on node s % N. On a wire
    // these are one assignment — a shipped replica is by construction
    // local to its node — so both placement names hit this path.
    const std::uint32_t S = partitioner_.parts();
    for (std::uint32_t i = 0; i < N; ++i) {
      std::vector<std::uint32_t> shards;
      for (std::uint32_t s = i; s < S; s += N) shards.push_back(s);
      if (shards.empty()) {
        // More nodes than shards (tiny index): the node still needs its
        // "build complete" marker to ack. An empty last-flagged frame
        // is exactly that.
        net::BuildShardMsg msg;
        msg.shard = net::kGlobalShard;
        msg.last = true;
        send_control(i, net::encode_build_shard(net::kCoordinatorId, msg));
      } else {
        for (std::size_t j = 0; j < shards.size(); ++j) {
          const std::uint32_t s = shards[j];
          send_shard_chunks(i, s, partitioner_.keys_of(s),
                            partitioner_.start_of(s),
                            /*final_shard_of_node=*/j + 1 == shards.size());
        }
      }
      std::lock_guard lock(membership_mu_);
      membership_.set_shards(i, static_cast<std::uint32_t>(shards.size()));
    }
  }

  void await_build_acks() {
    for (std::uint32_t i = 0; i < config_.num_nodes; ++i) {
      const net::Frame frame = recv_build_frame(i);
      net::BuildAckMsg ack;
      std::string error;
      DICI_CHECK_FMT(
          net::decode_build_ack(frame, &ack, &error),
          "cluster build: node %u sent %s instead of its build ack (%s)", i,
          net::msg_type_name(frame.header.msg_type()), error.c_str());
      std::lock_guard lock(membership_mu_);
      membership_.transition(i, NodeStatus::kAlive);
      membership_.record_alive(i, Clock::now());
    }
  }

  // --- Failure path --------------------------------------------------------

  /// Mark node `i` DEAD and fail its share of every in-flight
  /// submission. Runs on node i's receiver thread (or, for send
  /// failures, on a submitting client thread — the link tx mutex and
  /// the idempotent membership edge make the two orderings safe).
  void fail_node(std::uint32_t i) const {
    {
      // tx-mutex handshake with submitters: after this block, any
      // submitter that did not already increment its pending count for
      // this node will observe `dead` and skip the send.
      std::lock_guard lock(links_[i]->tx);
      if (links_[i]->dead) return;  // another path got here first
      links_[i]->dead = true;
    }
    {
      std::lock_guard lock(membership_mu_);
      membership_.transition(i, NodeStatus::kDead);
    }
    links_[i]->endpoint->close();
    // Write the dead node's un-replied messages off every in-flight
    // submission so their waiters unblock with a diagnosable error
    // instead of hanging. Replies from live nodes keep landing — a
    // failed submission still waits for those (its countdown holds
    // their pending counts), so the caller's out_ranks is never written
    // after wait() returns.
    std::vector<std::shared_ptr<ClusterSubmission>> completed;
    {
      std::lock_guard lock(subs_mu_);
      for (auto& [id, sub] : pending_) {
        const std::uint64_t orphaned =
            sub->pending_per_node[i].exchange(0, std::memory_order_acq_rel);
        if (orphaned == 0) continue;
        sub->record_failure(i);
        if (sub->finish(orphaned)) completed.push_back(sub);
      }
      for (const auto& sub : completed) pending_.erase(sub->id);
    }
  }

  // --- Serve phase ---------------------------------------------------------

  void handle_rank_batch(std::uint32_t i, const net::Frame& frame) const {
    net::RankBatchMsg msg;
    std::string error;
    if (!net::decode_rank_batch(frame, &msg, &error)) {
      fail_node(i);
      return;
    }
    std::shared_ptr<ClusterSubmission> sub;
    {
      std::lock_guard lock(subs_mu_);
      const auto it = pending_.find(msg.submission);
      if (it == pending_.end()) return;  // late reply of a failed batch
      sub = it->second;
    }
    // The order-preserving merge: scatter by query id. Safe against the
    // failure path because THIS node's pending count is still >= 1 until
    // the finish below, so the submission cannot complete mid-scatter.
    for (std::size_t j = 0; j < msg.ids.size(); ++j)
      sub->out[msg.ids[j]] = msg.ranks[j];
    sub->node_queries[i] += msg.ids.size();
    sub->node_busy_ns[i] += msg.busy_ns;
    sub->node_replies[i] += 1;
    sub->node_reply_bytes[i] += net::kFrameHeaderBytes + frame.payload.size();
    if (sub->track_latency) {
      // One arrival stamp for the whole reply (its queries' answers all
      // exist on the coordinator now), read against the submit stamp.
      const double resolved_ns = sub->timer.elapsed_ns();
      if (sub->queued_ns.empty()) {
        sub->node_latency[i].add_n(resolved_ns, msg.ids.size());
      } else {
        for (const std::uint32_t id : msg.ids)
          sub->node_latency[i].add(resolved_ns + sub->queued_ns[id]);
      }
    }
    sub->pending_per_node[i].fetch_sub(1, std::memory_order_acq_rel);
    if (sub->finish(1)) {
      std::lock_guard lock(subs_mu_);
      pending_.erase(sub->id);
    }
  }

  void receiver_loop(std::uint32_t i) const {
    const auto interval =
        std::chrono::milliseconds(config_.heartbeat_interval_ms);
    const auto timeout =
        std::chrono::milliseconds(config_.heartbeat_timeout_ms);
    auto last_seen = Clock::now();
    while (!stop_.load(std::memory_order_acquire)) {
      net::Frame frame;
      std::string error;
      switch (links_[i]->endpoint->recv(&frame, interval, &error)) {
        case net::Endpoint::RecvResult::kFrame: {
          last_seen = Clock::now();
          {
            std::lock_guard lock(membership_mu_);
            membership_.record_alive(i, last_seen);
          }
          if (frame.header.msg_type() == net::MsgType::kRankBatch) {
            handle_rank_batch(i, frame);
          }
          // Heartbeats carry only liveness (recorded above); any other
          // type from a joined node is ignorable noise.
          continue;
        }
        case net::Endpoint::RecvResult::kTimeout:
          if (Clock::now() - last_seen > timeout) {
            fail_node(i);
            return;
          }
          continue;
        case net::Endpoint::RecvResult::kClosed:
          if (!stop_.load(std::memory_order_acquire)) fail_node(i);
          return;
        case net::Endpoint::RecvResult::kError:
          fail_node(i);
          return;
      }
    }
  }

  std::unique_ptr<Client> do_connect(
      std::shared_ptr<const Index> self) const override;

  ClusterConfig config_;
  index::RangePartitioner partitioner_;
  mutable std::mutex membership_mu_;
  mutable Membership membership_;
  mutable std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<ClusterNode>> nodes_;
  mutable std::mutex subs_mu_;
  mutable std::unordered_map<std::uint64_t,
                             std::shared_ptr<ClusterSubmission>>
      pending_;
  mutable std::atomic<std::uint64_t> next_sub_id_{1};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> receivers_;
};

/// Waits one submission and assembles its RunReport — or throws
/// NodeFailureError when a node died under it. Self-contained: holds
/// only the submission record, safe to await during client teardown.
class ClusterIndex::ClusterCompletion : public Client::Completion {
 public:
  ClusterCompletion(std::shared_ptr<ClusterSubmission> sub,
                    const ClusterConfig& config)
      : sub_(std::move(sub)), num_nodes_(config.num_nodes),
        batch_bytes_(config.batch_bytes) {}

  bool ready() const override {
    return sub_->done_flag.load(std::memory_order_acquire);
  }

  RunReport await() override {
    ClusterSubmission& sub = *sub_;
    sub.await_done();
    const std::uint32_t failed =
        sub.failed_node.load(std::memory_order_acquire);
    if (failed != kNoFailure) {
      throw NodeFailureError(
          failed, "cluster submission " + std::to_string(sub.id) +
                      " failed: node " + std::to_string(failed) +
                      " is DEAD (heartbeat timeout or link failure) with "
                      "its replies outstanding");
    }
    // Coordinator-side delta fold, after every rank has landed.
    if (sub.delta != nullptr)
      sub.delta->correct(sub.query_copy, sub.out);

    const std::uint32_t N = num_nodes_;
    RunReport report;
    report.method = Method::kC3;
    report.num_queries = sub.num_queries;
    report.num_nodes = N + 1;
    report.batch_bytes = batch_bytes_;
    report.raw_makespan = ns_to_ps(sub.wall_sec * 1e9);
    report.makespan = report.raw_makespan;
    report.messages = sub.messages;
    // Unlike ParallelNativeEngine (request hop only, to match the
    // simulator), wire_bytes here is MEASURED traffic on both hops —
    // these bytes actually crossed a transport.
    std::uint64_t reply_bytes = 0;
    std::uint64_t replies = 0;
    for (std::uint32_t i = 0; i < N; ++i) {
      reply_bytes += sub.node_reply_bytes[i];
      replies += sub.node_replies[i];
    }
    report.wire_bytes = sub.wire_bytes + reply_bytes;
    report.nodes.resize(N + 1);
    report.nodes[0].queries = sub.num_queries;
    report.nodes[0].busy = ns_to_ps(sub.dispatch_sec * 1e9);
    report.nodes[0].finish = report.raw_makespan;
    report.nodes[0].idle = report.raw_makespan > report.nodes[0].busy
                               ? report.raw_makespan - report.nodes[0].busy
                               : 0;
    report.nodes[0].nic.messages_sent = sub.messages;
    report.nodes[0].nic.bytes_sent = sub.wire_bytes;
    report.nodes[0].nic.messages_received = replies;
    report.nodes[0].nic.bytes_received = reply_bytes;
    double idle_sum = 0.0;
    for (std::uint32_t i = 0; i < N; ++i) {
      NodeReport& node = report.nodes[i + 1];
      node.queries = sub.node_queries[i];
      node.busy = sub.node_busy_ns[i] * 1000;  // ns -> ps
      node.finish = report.raw_makespan;
      node.idle = report.raw_makespan > node.busy
                      ? report.raw_makespan - node.busy
                      : 0;
      node.nic.messages_sent = sub.node_replies[i];
      node.nic.bytes_sent = sub.node_reply_bytes[i];
      node.nic.messages_received = sub.node_sent[i];
      node.nic.bytes_received = sub.node_sent_bytes[i];
      const double busy_sec = static_cast<double>(sub.node_busy_ns[i]) / 1e9;
      if (sub.wall_sec > 0.0)
        idle_sum += std::max(0.0, 1.0 - busy_sec / sub.wall_sec);
    }
    report.slave_idle_fraction = N > 0 ? idle_sum / N : 0.0;
    for (Summary& s : sub.node_latency) report.latency_ns.merge(s);
    return report;
  }

 private:
  std::shared_ptr<ClusterSubmission> sub_;
  std::uint32_t num_nodes_;
  std::uint64_t batch_bytes_;
};

std::unique_ptr<Client::Completion> ClusterIndex::submit_batch(
    std::span<const key_t> queries, std::vector<rank_t>* out_ranks,
    const SubmitOptions& options) const {
  const std::uint32_t N = config_.num_nodes;
  auto sub = std::make_shared<ClusterSubmission>(
      next_sub_id_.fetch_add(1, std::memory_order_relaxed), N,
      config_.track_latency);
  if (out_ranks != nullptr) {
    out_ranks->assign(queries.size(), 0);
    sub->out = out_ranks->data();
  } else {
    sub->sink.assign(queries.size(), 0);
    sub->out = sub->sink.data();
  }
  sub->num_queries = queries.size();
  if (options.delta != nullptr && !options.delta->empty()) {
    sub->delta = options.delta;
    sub->query_copy.assign(queries.begin(), queries.end());
  }
  if (config_.track_latency && !options.queued_ns.empty())
    sub->queued_ns.assign(options.queued_ns.begin(), options.queued_ns.end());

  // Registered BEFORE any frame leaves, so a node death during the
  // dispatch loop already finds (and fails) this submission.
  {
    std::lock_guard lock(subs_mu_);
    pending_.emplace(sub->id, sub);
  }

  const bool replicate = config_.placement == index::Placement::kReplicate;
  const std::uint32_t lanes = replicate ? N : partitioner_.parts();
  std::uint64_t round_robin = 0;

  sub->timer.start();
  WallTimer dispatch_timer;
  sub->messages = core::dispatch_master_rounds(
      queries, config_.batch_bytes, lanes,
      [&](key_t q) -> std::uint32_t {
        // kReplicate balances by turn, not by key range: any node can
        // answer any query on its full copy.
        return replicate ? static_cast<std::uint32_t>(round_robin++ % N)
                         : partitioner_.route(q);
      },
      [&](std::uint32_t lane, DispatchBatch&& batch) {
        const std::uint32_t node = replicate ? lane : node_of_shard(lane);
        net::QueryBatchMsg msg;
        msg.submission = sub->id;
        msg.shard = replicate ? net::kGlobalShard : lane;
        msg.keys = std::move(batch.keys);
        msg.ids = std::move(batch.ids);
        const net::Frame frame =
            net::encode_query_batch(net::kCoordinatorId, msg);
        const std::uint64_t frame_bytes =
            net::kFrameHeaderBytes + frame.payload.size();
        std::lock_guard lock(links_[node]->tx);
        if (links_[node]->dead) {
          // Submitting into a grave: fail this submission immediately
          // (no countdown hold was taken for the message).
          sub->record_failure(node);
          return;
        }
        // Hold taken BEFORE the send so the countdown can never hit
        // zero while messages are still leaving; the failure path's
        // tx-mutex handshake guarantees it sees this increment.
        sub->pending_per_node[node].fetch_add(1, std::memory_order_acq_rel);
        sub->outstanding.fetch_add(1, std::memory_order_relaxed);
        const auto result = links_[node]->endpoint->send(frame, send_timeout());
        if (result != net::Endpoint::SendResult::kOk) {
          // The node's ring/socket is wedged or closed: treat exactly
          // like a death, but only un-count OUR message — the receiver
          // thread owns the full fail_node sweep.
          sub->pending_per_node[node].fetch_sub(1, std::memory_order_acq_rel);
          sub->outstanding.fetch_sub(1, std::memory_order_acq_rel);
          sub->record_failure(node);
          return;
        }
        sub->node_sent[node] += 1;
        sub->node_sent_bytes[node] += frame_bytes;
        sub->wire_bytes += frame_bytes;
      });
  sub->dispatch_sec = dispatch_timer.elapsed_sec();
  // Release the submitter's hold; completes immediately on zero work
  // (or when every message was skipped into a dead node).
  if (sub->finish(1)) {
    std::lock_guard lock(subs_mu_);
    pending_.erase(sub->id);
  }
  return std::make_unique<ClusterCompletion>(std::move(sub), config_);
}

/// One master stream into the cluster. All the machinery lives in the
/// ClusterIndex (links are shared and tx-serialized), so the client is
/// just the do_submit forwarder plus the base ledger.
class ClusterClient : public Client {
 public:
  ClusterClient(std::shared_ptr<const Index> index,
                const ClusterIndex* cluster)
      : Client(std::move(index)), cluster_(cluster) {}

  const char* backend() const override {
    return core::backend_name(Backend::kCluster);
  }

 private:
  std::unique_ptr<Completion> do_submit(
      std::span<const key_t> queries, std::vector<rank_t>* out_ranks,
      const SubmitOptions& options) override {
    return cluster_->submit_batch(queries, out_ranks, options);
  }

  const ClusterIndex* cluster_;  // the index the base class keeps alive
};

std::unique_ptr<Client> ClusterIndex::do_connect(
    std::shared_ptr<const Index> self) const {
  return std::make_unique<ClusterClient>(std::move(self), this);
}

}  // namespace

std::shared_ptr<const core::Index> ClusterEngine::build(
    std::span<const key_t> index_keys) const {
  return std::make_shared<const ClusterIndex>(config_, index_keys);
}

void cluster_kill_node_for_test(const core::Index& index, std::uint32_t node) {
  const auto* cluster = dynamic_cast<const ClusterIndex*>(&index);
  DICI_CHECK_FMT(cluster != nullptr,
                 "cluster_kill_node_for_test: index backend is %s, not a "
                 "cluster index",
                 index.backend());
  DICI_CHECK_FMT(node < cluster->config().num_nodes,
                 "cluster_kill_node_for_test: node %u out of range (cluster "
                 "has %u nodes)",
                 node, cluster->config().num_nodes);
  cluster->kill_node(node);
}

}  // namespace dici::cluster
