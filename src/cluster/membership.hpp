// Cluster membership — the coordinator's node table, modeled on the
// pocv2/Pilevisor cluster ports (SNIPPETS.md): a `cluster_node` array
// with an explicit status ladder, a join handshake, and a broadcast
// cluster-info map every node mirrors.
//
// Status ladder (one node's life):
//
//   kNull ──join request──▶ kJoining ──join ack──▶ kAck
//     kAck ──build ack / first heartbeat──▶ kAlive
//     kJoining | kAck | kAlive ──timeout / link closed──▶ kDead
//     kDead ──new join request──▶ kJoining          (re-join)
//
// Every other edge is invalid and aborts with a diagnostic naming the
// node, the current status, and the attempted one
// (cluster_membership_test death-tests the table). The DEAD edge is the
// one that matters operationally: heartbeat timeouts route through it,
// and ClusterEngine converts it into failing the node's in-flight
// batches with a diagnosable NodeFailureError instead of hanging.
//
// This class is plain data + transition rules: no locks (the owner
// serializes access — the coordinator under its membership mutex, a
// node on its single service thread), no I/O (the wire encoding of the
// broadcast table lives in net/wire.hpp; to_entries/apply_entries
// convert).
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "src/net/wire.hpp"

namespace dici::cluster {

enum class NodeStatus : std::uint8_t {
  kNull = 0,    ///< slot exists, node has not contacted us
  kJoining = 1, ///< join request received, ack not yet sent
  kAck = 2,     ///< join acked; node may receive build traffic
  kAlive = 3,   ///< build acked / heartbeating; serves queries
  kDead = 4,    ///< heartbeat timeout or link failure
};

const char* node_status_name(NodeStatus status);
bool node_status_valid(std::uint8_t raw);

/// Is `from -> to` a legal edge of the status ladder above?
bool can_transition(NodeStatus from, NodeStatus to);

struct NodeInfo {
  std::uint32_t id = 0;
  NodeStatus status = NodeStatus::kNull;
  std::uint32_t shards = 0;  ///< shard replicas assigned to this node
  /// Last proof of life (join, build ack, heartbeat, or query reply),
  /// on the owner's steady clock.
  std::chrono::steady_clock::time_point last_seen{};
};

class Membership {
 public:
  explicit Membership(std::uint32_t num_nodes);

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  NodeStatus status(std::uint32_t node) const;
  const NodeInfo& info(std::uint32_t node) const;

  /// Walk one edge of the status ladder; aborts (with node, from, to in
  /// the diagnostic) on any edge can_transition rejects. Same-status
  /// "transitions" are no-ops so racing failure detectors may both
  /// report a death.
  void transition(std::uint32_t node, NodeStatus to);

  /// Record proof of life at `now` (does not change status).
  void record_alive(std::uint32_t node,
                    std::chrono::steady_clock::time_point now);

  void set_shards(std::uint32_t node, std::uint32_t shards);

  /// Mark every JOINING/ACK/ALIVE node not seen within `timeout` of
  /// `now` as DEAD; returns the newly dead ids. (Heartbeat timers call
  /// this; nodes already dead or never joined are skipped.)
  std::vector<std::uint32_t> expire(std::chrono::steady_clock::time_point now,
                                    std::chrono::milliseconds timeout);

  /// How many nodes currently serve (kAlive).
  std::uint32_t alive_count() const;

  /// The broadcast cluster-info map (wire form).
  std::vector<net::ClusterInfoEntry> to_entries() const;

  /// A node applying a received broadcast: overwrites local statuses
  /// with the coordinator's view. Entries whose id is out of range or
  /// whose status byte is invalid are rejected (returns false, table
  /// untouched).
  bool apply_entries(const std::vector<net::ClusterInfoEntry>& entries);

 private:
  std::vector<NodeInfo> nodes_;
};

}  // namespace dici::cluster
