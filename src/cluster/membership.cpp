#include "src/cluster/membership.hpp"

#include "src/util/assert.hpp"

namespace dici::cluster {

const char* node_status_name(NodeStatus status) {
  switch (status) {
    case NodeStatus::kNull:
      return "NULL";
    case NodeStatus::kJoining:
      return "JOINING";
    case NodeStatus::kAck:
      return "ACK";
    case NodeStatus::kAlive:
      return "ALIVE";
    case NodeStatus::kDead:
      return "DEAD";
  }
  return "?";
}

bool node_status_valid(std::uint8_t raw) {
  return raw <= static_cast<std::uint8_t>(NodeStatus::kDead);
}

bool can_transition(NodeStatus from, NodeStatus to) {
  if (from == to) return true;  // idempotent re-report
  switch (to) {
    case NodeStatus::kNull:
      return false;  // a node never un-exists
    case NodeStatus::kJoining:
      // First contact, or a dead node re-joining.
      return from == NodeStatus::kNull || from == NodeStatus::kDead;
    case NodeStatus::kAck:
      return from == NodeStatus::kJoining;
    case NodeStatus::kAlive:
      return from == NodeStatus::kAck;
    case NodeStatus::kDead:
      // Death is reachable from anywhere past first contact.
      return from != NodeStatus::kNull;
  }
  return false;
}

Membership::Membership(std::uint32_t num_nodes) : nodes_(num_nodes) {
  DICI_CHECK_FMT(num_nodes >= 1,
                 "Membership: num_nodes = %u: a cluster needs at least one "
                 "serving node",
                 num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) nodes_[i].id = i;
}

NodeStatus Membership::status(std::uint32_t node) const {
  DICI_CHECK_FMT(node < nodes_.size(), "Membership: node %u of %zu", node,
                 nodes_.size());
  return nodes_[node].status;
}

const NodeInfo& Membership::info(std::uint32_t node) const {
  DICI_CHECK_FMT(node < nodes_.size(), "Membership: node %u of %zu", node,
                 nodes_.size());
  return nodes_[node];
}

void Membership::transition(std::uint32_t node, NodeStatus to) {
  DICI_CHECK_FMT(node < nodes_.size(), "Membership: node %u of %zu", node,
                 nodes_.size());
  NodeInfo& info = nodes_[node];
  DICI_CHECK_FMT(can_transition(info.status, to),
                 "Membership: node %u: invalid transition %s -> %s", node,
                 node_status_name(info.status), node_status_name(to));
  // A re-join starts a fresh life: whatever replicas the dead
  // incarnation held are gone until a new build scatter lands.
  if (info.status == NodeStatus::kDead && to == NodeStatus::kJoining)
    info.shards = 0;
  info.status = to;
}

void Membership::record_alive(std::uint32_t node,
                              std::chrono::steady_clock::time_point now) {
  DICI_CHECK_FMT(node < nodes_.size(), "Membership: node %u of %zu", node,
                 nodes_.size());
  nodes_[node].last_seen = now;
}

void Membership::set_shards(std::uint32_t node, std::uint32_t shards) {
  DICI_CHECK_FMT(node < nodes_.size(), "Membership: node %u of %zu", node,
                 nodes_.size());
  nodes_[node].shards = shards;
}

std::vector<std::uint32_t> Membership::expire(
    std::chrono::steady_clock::time_point now,
    std::chrono::milliseconds timeout) {
  std::vector<std::uint32_t> newly_dead;
  for (NodeInfo& info : nodes_) {
    if (info.status == NodeStatus::kNull || info.status == NodeStatus::kDead)
      continue;
    if (now - info.last_seen > timeout) {
      info.status = NodeStatus::kDead;
      newly_dead.push_back(info.id);
    }
  }
  return newly_dead;
}

std::uint32_t Membership::alive_count() const {
  std::uint32_t count = 0;
  for (const NodeInfo& info : nodes_)
    if (info.status == NodeStatus::kAlive) ++count;
  return count;
}

std::vector<net::ClusterInfoEntry> Membership::to_entries() const {
  std::vector<net::ClusterInfoEntry> entries;
  entries.reserve(nodes_.size());
  for (const NodeInfo& info : nodes_) {
    entries.push_back({info.id, static_cast<std::uint8_t>(info.status),
                       info.shards});
  }
  return entries;
}

bool Membership::apply_entries(
    const std::vector<net::ClusterInfoEntry>& entries) {
  for (const net::ClusterInfoEntry& entry : entries) {
    if (entry.node_id >= nodes_.size() || !node_status_valid(entry.status))
      return false;
  }
  for (const net::ClusterInfoEntry& entry : entries) {
    NodeInfo& info = nodes_[entry.node_id];
    info.status = static_cast<NodeStatus>(entry.status);
    info.shards = entry.shards;
  }
  return true;
}

}  // namespace dici::cluster
