// ClusterEngine — Method C-3 on N nodes that share no memory.
//
// The backend the ROADMAP's top item asks for: the same master/slave
// architecture ParallelNativeEngine runs over shared-memory rings, but
// with the shared memory removed. build() scatters shard replicas to N
// ClusterNode objects as serialized kBuildShard frames; submit() routes
// a batch with the same dispatch_master_rounds loop every native
// backend uses, but each per-shard message leaves the coordinator as a
// length-prefixed kQueryBatch frame on a net::Endpoint and its answers
// come back as a kRankBatch frame that a per-node receiver thread
// scatters into the caller's out_ranks by query id (the
// order-preserving merge). Four transports plug into the seam — the
// in-process SpscRing pair, a UNIX-domain socketpair, a socketpair
// inherited across fork/exec into a spawned dici_node child (kFork),
// and a loopback TCP connection to a spawned child (kTcp) — and all
// four carry identical wire-v2 bytes, so bench_cluster can put a real
// number on what LinkModel::message_ps simulates, and the SAME test
// suite runs against threads and against real processes.
//
// Placement (reusing the index/placement vocabulary):
//   kInterleave / kNodeLocal — shard s lives on node s % N. On a wire
//       the two are the same assignment (every replica is "local" to
//       exactly the node it was shipped to); both names are accepted so
//       matrix cells sweep the axis uniformly.
//   kReplicate — every node gets the full key array; queries
//       round-robin across nodes and resolve at global offset 0 (the
//       paper's replicated strategy, traded bandwidth for balance).
//
// Failure semantics (the part simulators get for free and real
// clusters must earn): each node heartbeats the coordinator; a per-node
// receiver thread marks a silent node DEAD after heartbeat_timeout_ms.
// Every dispatched message is a tracked CHUNK that the coordinator
// re-sends with capped exponential backoff (max_retries, then failover)
// until exactly one reply claims it — so dropped, delayed, duplicated,
// and corrupted frames (see net/fault.hpp) all converge to a complete
// batch with exact ranks. When a node dies outright:
//   * failover on  + a surviving replica holds the chunk's shard
//     (always true under kReplicate) — the chunk is re-routed to a live
//     holder and the batch completes with zero caller-visible errors;
//   * no surviving replica (kInterleave/kNodeLocal own each shard
//     exactly once), or failover off — wait() throws NodeFailureError
//     naming the node instead of hanging. Replies already scattered
//     from live nodes are unaffected either way.
// A node killed mid-batch (ClusterNode::kill) is indistinguishable from
// a powered-off machine; cluster_rejoin_node re-admits it afterwards:
// DEAD -> JOINING handshake on a FRESH link (epoch bumped, so stale
// incarnations can never be mistaken for current traffic), shards
// re-shipped via chunked kBuildShard, then back into routing rotation.
//
// What stays coordinator-side: SubmitOptions::delta (rank corrections
// are applied as a post-pass over the returned ranks, like
// NativeClient, so the Store write path works unchanged and nodes stay
// delta-oblivious) and per-query wall latency (submit stamp to
// reply-arrival stamp, per-node Summary slots).
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/cluster/membership.hpp"
#include "src/core/engine.hpp"
#include "src/index/fast_search.hpp"
#include "src/net/fault.hpp"
#include "src/net/transport.hpp"
#include "src/util/bytes.hpp"

namespace dici::cluster {

/// Thrown by wait()/drain() when a node died with the submission's
/// messages outstanding. Carries the node id so callers (and tests) can
/// name the culprit without parsing the message.
class NodeFailureError : public std::runtime_error {
 public:
  NodeFailureError(std::uint32_t node, const std::string& what)
      : std::runtime_error(what), node_(node) {}

  std::uint32_t node() const { return node_; }

 private:
  std::uint32_t node_;
};

struct ClusterConfig {
  /// Serving nodes (the coordinator is extra, reported as RunReport
  /// node 0 — so num_nodes here mirrors ExperimentConfig::num_slaves()).
  std::uint32_t num_nodes = 4;
  /// Shard count; 0 = one per node. Shard s lives on node s % num_nodes
  /// (ignored under kReplicate).
  std::uint32_t num_shards = 0;
  /// Query bytes the coordinator ingests per dispatch round.
  std::uint64_t batch_bytes = 64 * KiB;
  net::TransportKind transport = net::TransportKind::kRing;
  index::SearchKernel kernel = index::SearchKernel::kBranchless;
  std::uint32_t interleave_width = index::kDefaultInterleave;
  index::Placement placement = index::Placement::kInterleave;
  /// Node -> coordinator heartbeat cadence.
  std::uint32_t heartbeat_interval_ms = 25;
  /// Silence past this marks a node DEAD and fails its in-flight
  /// batches. Must be at least 2x the interval (validated).
  std::uint32_t heartbeat_timeout_ms = 250;
  /// In-flight frame capacity per direction of a kRing link.
  std::size_t ring_frames = 1024;
  /// The dici_node binary the process transports (kFork/kTcp) spawn.
  /// Empty = the DICI_NODE_BIN env override if set, else "dici_node"
  /// next to the running executable (ProcessNode::default_binary).
  std::string node_binary;
  bool track_latency = false;
  /// Re-sends of an unanswered chunk to the SAME node before the
  /// coordinator gives up on that assignment and considers failover.
  /// 0 disables retries (first silence escalates immediately).
  std::uint32_t max_retries = 3;
  /// Base backoff before the first re-send; doubles per attempt
  /// (capped) — attempt k waits retry_backoff_us * 2^(k-1).
  std::uint32_t retry_backoff_us = 20'000;
  /// Re-route a dead (or retry-exhausted) node's unanswered chunks to a
  /// live replica holder when one exists. Off = the seed's fail-fast
  /// semantics: any death with chunks outstanding throws
  /// NodeFailureError.
  bool failover = true;
  /// Fault injection on every coordinator<->node link (off by default:
  /// FaultConfig::enabled() is false when all rates are zero). The
  /// build phase always runs healed; faults arm once serving starts.
  net::FaultConfig faults;
};

class ClusterEngine : public core::Engine {
 public:
  explicit ClusterEngine(const ClusterConfig& config);
  /// Derive from the shared ExperimentConfig (method must be C-3,
  /// single master; see cluster_config_from).
  explicit ClusterEngine(const core::ExperimentConfig& config);

  std::shared_ptr<const core::Index> build(
      std::span<const key_t> index_keys) const override;
  const char* name() const override {
    return core::backend_name(core::Backend::kCluster);
  }

  const ClusterConfig& config() const { return config_; }

 private:
  ClusterConfig config_;
};

/// The ExperimentConfig -> ClusterConfig mapping used by make_engine.
/// Rejects cluster-incompatible knob combos with field+value
/// diagnostics: method != C-3, num_masters != 1, non-default
/// flush_policy, heartbeat_timeout_ms < 2 * heartbeat_interval_ms.
ClusterConfig cluster_config_from(const core::ExperimentConfig& config);

/// Test hook: silence node `node` of a cluster-built Index as if its
/// machine lost power — the node thread parks without closing its link
/// or saying goodbye, so only the heartbeat timeout can detect it.
/// Aborts (field+value diagnostic) if `index` is not a cluster index
/// or `node` is out of range.
void cluster_kill_node_for_test(const core::Index& index, std::uint32_t node);

/// Re-admit a DEAD node: fresh transport link (epoch bumped), a new
/// node incarnation, the DEAD -> JOINING -> ACK -> ALIVE ladder walked
/// again, and the node's shard assignment re-shipped via chunked
/// kBuildShard — after which it serves queries and (under kReplicate)
/// takes failover traffic again. Returns false, with the node back in
/// DEAD, if the handshake or re-scatter fails (e.g. the link is
/// partitioned); true once the node is ALIVE and routable. Call from
/// one thread at a time per index (tests and operators, not the hot
/// path). Aborts if `index` is not a cluster index, `node` is out of
/// range, or the node is not DEAD.
bool cluster_rejoin_node(const core::Index& index, std::uint32_t node);

/// The coordinator's current membership view of `node` (test
/// observability — e.g. polling for kDead after a kill, or kAlive after
/// a re-join). Aborts on a non-cluster index or out-of-range node.
NodeStatus cluster_node_status(const core::Index& index, std::uint32_t node);

/// The pids of the spawned dici_node children backing a cluster built
/// with a process transport (kFork/kTcp) — empty for the in-process
/// transports. Test observability: after the index is destroyed, every
/// returned pid must be gone (kill(pid, 0) == ESRCH), or the reaper
/// leaked a zombie. Aborts on a non-cluster index.
std::vector<int> cluster_node_pids(const core::Index& index);

/// The live fault switchboard shared by every link of a cluster built
/// with ClusterConfig::faults enabled — arm()/heal()/partition() flip
/// injection at runtime, stats() counts what was done to the traffic.
/// Null when the cluster was built without fault injection.
std::shared_ptr<net::FaultController> cluster_fault_controller(
    const core::Index& index);

}  // namespace dici::cluster
