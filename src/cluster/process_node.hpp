// ProcessNode — the out-of-process peer: a spawned dici_node child.
//
// The coordinator's slot for a node served by a REAL process. Spawning
// uses posix_spawn (not raw fork: the coordinator is heavily threaded
// and sanitized, and posix_spawn sidesteps every fork-in-threaded-
// program hazard) with one of two bootstrap shapes matching the two
// process transports:
//
//   kFork — the node end of a CLOEXEC socketpair is dup2()'d onto fd 3
//           for the child (`dici_node --id N --fd 3`). CLOEXEC on the
//           originals means a child inherits exactly its own link, not
//           every sibling's.
//   kTcp  — the child connects back (`--connect 127.0.0.1:PORT`) to a
//           TcpListener the coordinator opened per node.
//
// kill() is a real SIGKILL: the child's fds collapse, the coordinator's
// receiver sees kClosed, and PR 9's failure machinery (fail_node,
// failover, re-join) runs against an actual process death. Destruction
// reaps: a short grace for the orderly exit the coordinator's
// kShutdown/close triggers, then SIGKILL + blocking waitpid — never a
// zombie (cluster_engine_test pins this with a kill(pid, 0) sweep).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/node.hpp"

namespace dici::cluster {

class ProcessNode final : public NodePeer {
 public:
  /// Spawn `binary` serving node `id` over the socketpair end `node_fd`
  /// (takes ownership: dup2()'d to the child's fd 3, then closed in the
  /// parent). Aborts with a diagnostic if the spawn fails.
  static std::unique_ptr<ProcessNode> spawn_fd(const std::string& binary,
                                               std::uint32_t id, int node_fd);

  /// Spawn `binary` serving node `id`, connecting back to the
  /// coordinator's loopback listener on `port`.
  static std::unique_ptr<ProcessNode> spawn_connect(const std::string& binary,
                                                    std::uint32_t id,
                                                    std::uint16_t port);

  /// The dici_node binary to spawn: the DICI_NODE_BIN env override if
  /// set, else "dici_node" next to the running executable (every CMake
  /// target lands in the same build directory).
  static std::string default_binary();

  ~ProcessNode() override;

  ProcessNode(const ProcessNode&) = delete;
  ProcessNode& operator=(const ProcessNode&) = delete;

  /// SIGKILL — a true process death, no goodbye of any kind.
  void kill() override;
  int pid() const override { return pid_; }

 private:
  ProcessNode() = default;

  /// Shared spawn path: argv assembly + posix_spawn (+ dup2 of the
  /// link fd onto the child's fd 3 when `dup_fd` >= 0).
  static std::unique_ptr<ProcessNode> spawn(const std::string& binary,
                                            std::vector<std::string> args,
                                            int dup_fd);

  int pid_ = -1;
  std::atomic<bool> killed_{false};
};

}  // namespace dici::cluster
