#include "src/workload/open_loop.hpp"

#include <array>
#include <cmath>

#include "src/util/assert.hpp"
#include "src/util/rng.hpp"

namespace dici::workload {
namespace {

/// Exponential draw with the given mean, via inverse-CDF on uniform01.
/// -log1p(-u) instead of -log(u): u in [0, 1) makes log(0) reachable but
/// log1p(-u) never sees its singularity, so no draw is ever infinite.
double exp_draw(Rng& rng, double mean) {
  return -std::log1p(-rng.uniform01()) * mean;
}

std::vector<double> poisson_schedule(const OpenLoopSpec& spec) {
  const double mean_gap_ns = 1e9 / spec.offered_qps;
  Rng rng(spec.seed);
  std::vector<double> arrivals;
  arrivals.reserve(spec.num_queries);
  double t = 0;
  for (std::size_t i = 0; i < spec.num_queries; ++i) {
    t += exp_draw(rng, mean_gap_ns);
    arrivals.push_back(t);
  }
  return arrivals;
}

std::vector<double> bursty_schedule(const OpenLoopSpec& spec) {
  // Two-state MMPP. With k = burst_factor and f = burst_fraction, the
  // long-run rate is quiet_rate * (1 + f*(k-1)); solve for quiet_rate so
  // the average lands exactly on offered_qps, then the burst phase runs
  // k x hotter. Phase lengths are exponential with means chosen so the
  // long-run time fraction in burst is f.
  const double f = spec.burst_fraction;
  const double k = spec.burst_factor;
  const double avg_rate_ns = spec.offered_qps * 1e-9;  // arrivals per ns
  const double quiet_rate = avg_rate_ns / (1.0 + f * (k - 1.0));
  const double burst_rate = k * quiet_rate;
  const double quiet_mean_ns = spec.burst_mean_ns * (1.0 - f) / f;

  Rng rng(spec.seed);
  std::vector<double> arrivals;
  arrivals.reserve(spec.num_queries);
  double t = 0;
  bool in_burst = rng.uniform01() < f;  // start in steady state
  double phase_end = exp_draw(rng, in_burst ? spec.burst_mean_ns
                                            : quiet_mean_ns);
  while (arrivals.size() < spec.num_queries) {
    const double gap =
        exp_draw(rng, 1.0 / (in_burst ? burst_rate : quiet_rate));
    if (t + gap <= phase_end) {
      t += gap;
      arrivals.push_back(t);
    } else {
      // The draw straddles the phase switch: jump to the boundary and
      // redraw at the new rate. Exponentials are memoryless, so
      // discarding the partial gap keeps the process exact.
      t = phase_end;
      in_burst = !in_burst;
      phase_end =
          t + exp_draw(rng, in_burst ? spec.burst_mean_ns : quiet_mean_ns);
    }
  }
  return arrivals;
}

}  // namespace

std::span<const ArrivalProcess> all_arrival_processes() {
  static constexpr std::array<ArrivalProcess, 3> kAll = {
      ArrivalProcess::kClosed, ArrivalProcess::kPoisson,
      ArrivalProcess::kBursty};
  return kAll;
}

const char* arrival_process_name(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kClosed:
      return "closed";
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kBursty:
      return "bursty";
  }
  DICI_CHECK_FMT(false, "arrival process = %d is not a valid enum value",
                 static_cast<int>(process));
  return "";
}

bool parse_arrival_process(const std::string& name, ArrivalProcess* out) {
  for (const ArrivalProcess process : all_arrival_processes()) {
    if (name == arrival_process_name(process)) {
      *out = process;
      return true;
    }
  }
  return false;
}

std::vector<double> make_arrival_schedule_ns(const OpenLoopSpec& spec) {
  DICI_CHECK_MSG(spec.process != ArrivalProcess::kClosed,
                 "process = closed has no arrival schedule "
                 "(closed-loop drives submit/wait directly)");
  DICI_CHECK_FMT(spec.offered_qps > 0, "offered_qps = %.3f must be > 0",
                 spec.offered_qps);
  if (spec.process == ArrivalProcess::kPoisson) return poisson_schedule(spec);
  DICI_CHECK_FMT(spec.burst_factor > 1,
                 "burst_factor = %.3f must be > 1 (1 degenerates to Poisson)",
                 spec.burst_factor);
  DICI_CHECK_FMT(spec.burst_fraction > 0 && spec.burst_fraction < 1,
                 "burst_fraction = %.3f must be in (0, 1)",
                 spec.burst_fraction);
  DICI_CHECK_FMT(spec.burst_mean_ns > 0, "burst_mean_ns = %.3f must be > 0",
                 spec.burst_mean_ns);
  return bursty_schedule(spec);
}

}  // namespace dici::workload
