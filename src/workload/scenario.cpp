#include "src/workload/scenario.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>

#include "src/arch/machine.hpp"
#include "src/core/store.hpp"
#include "src/util/assert.hpp"
#include "src/workload/update_stream.hpp"
#include "src/workload/workload.hpp"

namespace dici::workload {

namespace {

constexpr std::array<Distribution, 5> kAllDistributions = {
    Distribution::kUniform,        Distribution::kZipf,
    Distribution::kHotspot,        Distribution::kSortedAscending,
    Distribution::kAdversarialBoundary,
};

/// Decorrelates the query stream from the index draws sharing one seed.
constexpr std::uint64_t kQueryStreamSalt = 0x9e3779b97f4a7c15ull;

/// Decorrelates the write stream from both of the above.
constexpr std::uint64_t kWriteStreamSalt = 0xda3e39cb94b95bdbull;

constexpr std::uint64_t kKeySpace = 1ull << 32;

}  // namespace

std::span<const Distribution> all_distributions() { return kAllDistributions; }

const char* distribution_name(Distribution d) {
  switch (d) {
    case Distribution::kUniform: return "uniform";
    case Distribution::kZipf: return "zipf";
    case Distribution::kHotspot: return "hotspot";
    case Distribution::kSortedAscending: return "sorted-ascending";
    case Distribution::kAdversarialBoundary: return "adversarial-boundary";
  }
  return "?";
}

bool parse_distribution(const std::string& name, Distribution* out) {
  for (const Distribution d : kAllDistributions) {
    if (name == distribution_name(d)) {
      *out = d;
      return true;
    }
  }
  return false;
}

std::vector<key_t> make_scenario_index(const ScenarioSpec& spec) {
  Rng rng(spec.seed);
  return make_sorted_unique_keys(spec.index_keys, rng);
}

std::vector<key_t> make_scenario_queries(const ScenarioSpec& spec,
                                         std::span<const key_t> index_keys) {
  Rng rng(spec.seed ^ kQueryStreamSalt);
  switch (spec.distribution) {
    case Distribution::kUniform:
      return make_uniform_queries(spec.num_queries, rng);
    case Distribution::kZipf: {
      // Default bucket count = slave count, so skew maps one-to-one onto
      // Method C's load balance (the paper's Sec. 4.1 remark).
      const std::size_t buckets = spec.zipf_buckets != 0
                                      ? spec.zipf_buckets
                                      : std::max<std::size_t>(
                                            1, spec.num_nodes - 1);
      return make_zipf_queries(spec.num_queries, buckets, spec.zipf_s, rng);
    }
    case Distribution::kHotspot:
      return make_hotspot_queries(spec.num_queries, spec.hot_fraction,
                                  spec.hot_width, rng);
    case Distribution::kSortedAscending:
      return make_sorted_ascending_queries(spec.num_queries, rng);
    case Distribution::kAdversarialBoundary:
      return make_adversarial_boundary_queries(spec.num_queries, index_keys,
                                               rng);
  }
  DICI_CHECK_MSG(false, "unknown distribution");
  return {};
}

std::vector<key_t> make_hotspot_queries(std::size_t n, double hot_fraction,
                                        double hot_width, Rng& rng) {
  DICI_CHECK_MSG(hot_fraction >= 0.0 && hot_fraction <= 1.0,
                 "hot_fraction is a probability");
  DICI_CHECK_MSG(hot_width > 0.0 && hot_width <= 1.0,
                 "hot_width is a key-space fraction in (0, 1]");
  const std::uint64_t width = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(hot_width * static_cast<double>(kKeySpace)));
  const std::uint64_t lo = rng.below(kKeySpace - width + 1);
  std::vector<key_t> queries(n);
  for (auto& q : queries) {
    q = rng.uniform01() < hot_fraction
            ? static_cast<key_t>(lo + rng.below(width))
            : static_cast<key_t>(rng.next());
  }
  return queries;
}

std::vector<key_t> make_sorted_ascending_queries(std::size_t n, Rng& rng) {
  std::vector<key_t> queries = make_uniform_queries(n, rng);
  std::sort(queries.begin(), queries.end());
  return queries;
}

std::vector<key_t> make_adversarial_boundary_queries(
    std::size_t n, std::span<const key_t> index_keys, Rng& rng) {
  DICI_CHECK_MSG(!index_keys.empty(),
                 "adversarial-boundary targets an index's keys");
  std::vector<key_t> queries(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 0) {
      queries[i] = 0;  // rank 0 whenever the smallest key is > 0
      continue;
    }
    if (i == 1) {
      queries[i] = static_cast<key_t>(kKeySpace - 1);  // rank n always
      continue;
    }
    const key_t k = index_keys[rng.below(index_keys.size())];
    switch (i % 3) {
      case 0: queries[i] = k == 0 ? k : k - 1; break;
      case 1: queries[i] = k; break;
      default:
        queries[i] = k == static_cast<key_t>(kKeySpace - 1) ? k : k + 1;
        break;
    }
  }
  return queries;
}

void ScenarioRegistry::add(ScenarioSpec spec) {
  DICI_CHECK_MSG(!spec.name.empty(), "scenario needs a name");
  DICI_CHECK_MSG(find(spec.name) == nullptr, "duplicate scenario name");
  DICI_CHECK(spec.stream_batches >= 1);
  DICI_CHECK(spec.index_keys > 0);
  specs_.push_back(std::move(spec));
}

const ScenarioSpec* ScenarioRegistry::find(const std::string& name) const {
  for (const auto& spec : specs_)
    if (spec.name == name) return &spec;
  return nullptr;
}

ScenarioRegistry default_scenarios(std::size_t index_keys,
                                   std::size_t num_queries) {
  ScenarioRegistry registry;
  for (const Distribution d : kAllDistributions) {
    ScenarioSpec spec;
    spec.name = distribution_name(d);
    spec.distribution = d;
    spec.index_keys = index_keys;
    spec.num_queries = num_queries;
    registry.add(std::move(spec));
  }
  return registry;
}

std::vector<ScenarioCell> run_scenario_matrix(const ScenarioRegistry& registry,
                                              const MatrixOptions& options) {
  std::vector<ScenarioCell> cells;
  for (const ScenarioSpec& spec : registry.specs()) {
    const std::vector<key_t> index = make_scenario_index(spec);
    const std::vector<key_t> queries = make_scenario_queries(spec, index);
    std::vector<rank_t> expected;
    if (options.verify) expected = reference_ranks(index, queries);

    core::ExperimentConfig config;
    config.method = spec.method;
    config.machine = arch::pentium3_cluster();
    config.machine.numa_nodes = options.numa_nodes;
    config.num_nodes = spec.num_nodes;
    config.batch_bytes = spec.batch_bytes;
    config.transport = options.transport;

    const std::size_t depth = std::max<std::size_t>(1, options.in_flight);
    auto run_cell = [&](core::Backend backend, core::SearchKernel kernel,
                        core::Placement placement, double write_fraction) {
      config.kernel = kernel;
      config.placement = placement;
      // Size the delta so mixed cells actually cross the rebuild
      // trigger mid-stream — the cell then verifies reads before,
      // during and after generation swaps, not just the buffered path.
      config.max_delta_keys = std::max<std::size_t>(64, spec.index_keys / 64);

      // Read-only cells keep the v2 path (build + connect); mixed cells
      // route the same stream through a Store and interleave writes.
      std::shared_ptr<core::Store> store;
      std::unique_ptr<core::Writer> writer;
      std::unique_ptr<core::Client> client;
      if (write_fraction > 0) {
        store = core::make_store(backend, config, index);
        writer = store->writer();
        client = store->connect();
      } else {
        client = core::make_engine(backend, config)->build(index)->connect();
      }
      LiveSetReference mirror(write_fraction > 0 ? std::span<const key_t>(index)
                                                 : std::span<const key_t>());
      Rng write_rng(spec.seed ^ kWriteStreamSalt);
      const WriteMix mix{.write_fraction = write_fraction, .erase_share = 0.5};

      ScenarioCell cell;
      cell.scenario = spec.name;
      cell.distribution = spec.distribution;
      cell.backend = client->backend();
      cell.kernel = core::search_kernel_name(kernel);
      cell.placement = core::placement_name(placement);
      if (backend == core::Backend::kCluster)
        cell.transport = net::transport_name(options.transport);
      cell.verified = options.verify;
      cell.in_flight = depth;
      cell.write_fraction = write_fraction;

      // Pipeline the stream: keep up to `depth` batches in flight, each
      // with its own rank buffer; settle (wait + verify) the oldest
      // ticket whenever its slot is needed again, and drain the tail.
      // Mixed cells carry per-slot expectations priced from the mirror
      // at submit time (the global `expected` is stale once writes
      // land); in-flight tickets stay correct across generation swaps
      // because each pins the generation current at its submit.
      struct Slot {
        core::Ticket ticket;
        std::vector<rank_t> ranks;
        std::vector<rank_t> expected_live;
        std::size_t begin = 0;
        bool live = false;
      };
      std::vector<Slot> slots(depth);
      auto settle = [&](Slot& slot) {
        if (!slot.live) return;
        client->wait(slot.ticket);
        if (options.verify) {
          for (std::size_t i = 0; i < slot.ranks.size(); ++i) {
            const rank_t want = write_fraction > 0
                                    ? slot.expected_live[i]
                                    : expected[slot.begin + i];
            cell.mismatches += slot.ranks[i] != want;
          }
        }
        slot.live = false;
      };
      const std::size_t B = spec.stream_batches;
      for (std::size_t b = 0; b < B; ++b) {
        const std::size_t begin = b * queries.size() / B;
        const std::size_t end = (b + 1) * queries.size() / B;
        const std::span<const key_t> slice(queries.data() + begin,
                                           end - begin);
        Slot& slot = slots[b % depth];
        settle(slot);
        slot.begin = begin;
        if (write_fraction > 0) {
          const WriteRound round = draw_write_round(
              writes_for_reads(slice.size(), write_fraction), mix, mirror,
              write_rng);
          writer->insert(round.inserts);
          mirror.insert(round.inserts);
          writer->erase(round.erases);
          mirror.erase(round.erases);
          writer->flush();
          cell.writes += round.inserts.size() + round.erases.size();
          if (options.verify) {
            slot.expected_live.resize(slice.size());
            mirror.ranks(slice, slot.expected_live);
          }
        }
        slot.ticket =
            client->submit(slice, options.verify ? &slot.ranks : nullptr);
        slot.live = true;
      }
      for (Slot& slot : slots) settle(slot);

      const core::RunReport& total = client->total();
      cell.stream_batches = client->batches();
      cell.num_queries = total.num_queries;
      cell.ranks_ok = cell.mismatches == 0;
      cell.seconds = total.seconds();
      cell.per_key_ns = total.per_key_ns();
      cell.throughput_qps = total.throughput_qps();
      cell.messages = total.messages;
      cell.wire_bytes = total.wire_bytes;
      cells.push_back(std::move(cell));
    };
    DICI_CHECK_MSG(!options.placements.empty(),
                   "MatrixOptions::placements must name at least one mode");
    DICI_CHECK_MSG(!options.write_fractions.empty(),
                   "MatrixOptions::write_fractions must name at least one mix");
    for (const double wf : options.write_fractions)
      DICI_CHECK_FMT(wf >= 0.0 && wf < 1.0,
                     "MatrixOptions::write_fractions entry %g: must be in "
                     "[0, 1)",
                     wf);
    for (const core::Backend backend : options.backends) {
      const bool sharded = backend == core::Backend::kParallelNative ||
                           backend == core::Backend::kCluster;
      if (sharded && spec.method != core::Method::kC3)
        continue;  // those backends shard sorted arrays only
      // Only the sharded backends lay replicas out per node; sweeping
      // the placement axis on the others would duplicate cells.
      const std::size_t placements = sharded ? options.placements.size() : 1;
      for (const core::SearchKernel kernel : options.kernels)
        for (std::size_t p = 0; p < placements; ++p)
          for (const double wf : options.write_fractions)
            run_cell(backend, kernel, options.placements[p], wf);
    }
  }
  return cells;
}

bool all_cells_ok(std::span<const ScenarioCell> cells) {
  for (const auto& cell : cells)
    if (!cell.ranks_ok) return false;
  return true;
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void append_json_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::string matrix_to_json(std::span<const ScenarioCell> cells) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ScenarioCell& c = cells[i];
    out += "  {\"scenario\": ";
    append_json_string(out, c.scenario);
    out += ", \"distribution\": ";
    append_json_string(out, distribution_name(c.distribution));
    out += ", \"backend\": ";
    append_json_string(out, c.backend);
    out += ", \"kernel\": ";
    append_json_string(out, c.kernel);
    out += ", \"placement\": ";
    append_json_string(out, c.placement);
    out += ", \"transport\": ";
    append_json_string(out, c.transport);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  ", \"stream_batches\": %" PRIu64 ", \"in_flight\": %" PRIu64
                  ", \"queries\": %" PRIu64
                  ", \"verified\": %s, \"ranks_ok\": %s, \"mismatches\": %" PRIu64,
                  c.stream_batches, c.in_flight, c.num_queries,
                  c.verified ? "true" : "false", c.ranks_ok ? "true" : "false",
                  c.mismatches);
    out += buf;
    out += ", \"write_fraction\": ";
    append_json_number(out, c.write_fraction);
    std::snprintf(buf, sizeof(buf), ", \"writes\": %" PRIu64, c.writes);
    out += buf;
    out += ", \"seconds\": ";
    append_json_number(out, c.seconds);
    out += ", \"per_key_ns\": ";
    append_json_number(out, c.per_key_ns);
    out += ", \"throughput_qps\": ";
    append_json_number(out, c.throughput_qps);
    std::snprintf(buf, sizeof(buf),
                  ", \"messages\": %" PRIu64 ", \"wire_bytes\": %" PRIu64 "}",
                  c.messages, c.wire_bytes);
    out += buf;
    out += i + 1 < cells.size() ? ",\n" : "\n";
  }
  out += "]\n";
  return out;
}

}  // namespace dici::workload
