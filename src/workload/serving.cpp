#include "src/workload/serving.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <thread>

#include "src/core/batcher.hpp"
#include "src/util/assert.hpp"
#include "src/util/timer.hpp"
#include "src/workload/scenario.hpp"

namespace dici::workload {
namespace {

/// Sleep until `target_ns` on the replay clock. Coarse sleep for the
/// bulk of the gap, then spin the last stretch: sleep_for routinely
/// overshoots by tens of microseconds, which would smear every arrival
/// late and understate the offered load.
void wait_until(const WallTimer& epoch, double target_ns) {
  constexpr double kSpinWindowNs = 100e3;  // 100 us
  const double gap = target_ns - epoch.elapsed_ns();
  if (gap > kSpinWindowNs) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(static_cast<std::int64_t>(gap - kSpinWindowNs)));
  }
  while (epoch.elapsed_ns() < target_ns) {
    // spin — the window is short and the arrival clock matters
  }
}

/// One submitted round still awaiting its completion stamp.
struct InFlightRound {
  core::Ticket ticket;
  /// Index of the round's first query in arrival order.
  std::size_t first_query = 0;
  /// Scheduled arrival of each query in the round (ns past the epoch).
  std::vector<double> arrivals_ns;
  /// Rank buffer the backend writes asynchronously; heap-allocated so
  /// it stays put while the deque shifts (submit's buffer contract).
  std::unique_ptr<std::vector<rank_t>> ranks;
};

}  // namespace

ServingResult run_open_loop(core::Client& client,
                            std::span<const key_t> queries,
                            const ServingConfig& config) {
  DICI_CHECK_FMT(config.max_in_flight > 0, "max_in_flight = %zu must be > 0",
                 config.max_in_flight);
  OpenLoopSpec spec = config.arrivals;
  spec.num_queries = queries.size();
  const std::vector<double> schedule = make_arrival_schedule_ns(spec);

  ServingResult result;
  result.offered_qps = spec.offered_qps;
  result.num_queries = queries.size();
  if (config.collect_ranks) result.ranks.resize(queries.size());

  core::AdaptiveBatcher batcher(config.batch_max_keys,
                                config.batch_max_delay_ns);
  std::deque<InFlightRound> in_flight;
  std::size_t next_flush_first = 0;  // arrival index of the next round's head

  const WallTimer epoch;  // replay time zero

  // Stamp one completed round: fold its engine report, record each
  // query's caller-observed latency from its scheduled arrival, and
  // copy ranks home. The first report seeds engine_total (a default
  // RunReport carries the default method; merge would reject it).
  std::uint64_t retired = 0;
  const auto retire = [&](InFlightRound& round) {
    core::RunReport report = client.wait(round.ticket);
    if (retired++ == 0)
      result.engine_total = std::move(report);
    else
      result.engine_total.merge(report);
    const double done_ns = epoch.elapsed_ns();
    for (const double arrival : round.arrivals_ns)
      result.observed_latency_ns.add(done_ns - arrival);
    if (round.ranks) {
      std::copy(round.ranks->begin(), round.ranks->end(),
                result.ranks.begin() +
                    static_cast<std::ptrdiff_t>(round.first_query));
    }
  };

  const auto flush = [&](double now_ns) {
    if (batcher.size() >= batcher.max_keys())
      ++result.size_flushes;
    else
      ++result.deadline_flushes;
    core::AdaptiveBatcher::Batch batch = batcher.take(now_ns);
    InFlightRound round;
    round.first_query = next_flush_first;
    next_flush_first += batch.keys.size();
    round.arrivals_ns.reserve(batch.keys.size());
    for (std::size_t i = 0; i < batch.keys.size(); ++i)
      round.arrivals_ns.push_back(now_ns - batch.queued_ns[i]);
    if (config.collect_ranks)
      round.ranks = std::make_unique<std::vector<rank_t>>();
    // Back-pressure BEFORE submitting: the oldest round must finish to
    // free a slot. This wait is wall time the arriving queries keep
    // accruing — open loop, so it lands in the percentiles.
    while (in_flight.size() >= config.max_in_flight) {
      retire(in_flight.front());
      in_flight.pop_front();
    }
    round.ticket = client.submit(batch.keys, round.ranks.get(),
                                 {.queued_ns = batch.queued_ns});
    in_flight.push_back(std::move(round));
  };

  std::size_t next_arrival = 0;
  while (next_arrival < schedule.size() || !batcher.empty()) {
    const double now_ns = epoch.elapsed_ns();

    // Ingest every arrival that is due.
    while (next_arrival < schedule.size() &&
           schedule[next_arrival] <= now_ns) {
      batcher.push(queries[next_arrival], schedule[next_arrival]);
      ++next_arrival;
      if (batcher.size() >= batcher.max_keys()) flush(now_ns);
    }
    if (batcher.should_flush(now_ns)) flush(now_ns);

    // Opportunistically stamp rounds that finished — completion times
    // should not wait for the next arrival gap to elapse.
    while (!in_flight.empty() && client.ready(in_flight.front().ticket)) {
      retire(in_flight.front());
      in_flight.pop_front();
    }

    if (next_arrival >= schedule.size()) {
      // Stream exhausted: force out the tail round.
      if (!batcher.empty()) flush(epoch.elapsed_ns());
      break;
    }

    // Sleep until something can happen: the next arrival, or the
    // pending round's deadline.
    double target_ns = schedule[next_arrival];
    if (!batcher.empty())
      target_ns = std::min(target_ns, batcher.next_deadline_ns());
    wait_until(epoch, target_ns);
  }

  while (!in_flight.empty()) {
    retire(in_flight.front());
    in_flight.pop_front();
  }

  result.batches = result.size_flushes + result.deadline_flushes;
  result.wall_seconds = epoch.elapsed_sec();
  result.achieved_qps =
      result.wall_seconds > 0
          ? static_cast<double>(result.num_queries) / result.wall_seconds
          : 0;
  return result;
}

ServingConfig serving_config_from(const ScenarioSpec& spec) {
  DICI_CHECK_FMT(spec.arrival != ArrivalProcess::kClosed,
                 "scenario '%s' is closed-loop (arrival = closed): no "
                 "serving config to derive",
                 spec.name.c_str());
  ServingConfig config;
  config.arrivals.process = spec.arrival;
  config.arrivals.offered_qps = spec.offered_qps;
  config.arrivals.num_queries = spec.num_queries;
  // Salted so the arrival draws are decorrelated from the spec's index
  // and query streams (which use seed and a query salt of their own).
  config.arrivals.seed = spec.seed ^ 0x9e3779b97f4a7c15ull;
  config.batch_max_keys =
      std::max<std::size_t>(1, spec.batch_bytes / sizeof(key_t));
  return config;
}

}  // namespace dici::workload
