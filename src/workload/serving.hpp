// The open-loop serving loop: replay an arrival schedule against a
// Client and measure what a front end would actually observe.
//
// This is where the three serving pieces meet:
//   - open_loop.hpp draws the arrival instants (Poisson or bursty) at a
//     fixed offered load, independent of how fast the engine answers;
//   - core::AdaptiveBatcher accumulates arrivals into size-or-deadline
//     rounds, reporting each query's accrued wait;
//   - Client::submit(queries, ranks, {.queued_ns = ...}) dispatches each round
//     asynchronously, and Client::ready() lets the loop stamp
//     completions without stalling the arrival clock.
//
// Latency is recorded from the ARRIVAL instant, not the submit instant:
// a query that sat in the batcher (or behind max_in_flight
// back-pressure) is charged that wait. This is the open-loop
// discipline — the schedule never slows down because the engine fell
// behind, so queueing delay shows up in the percentiles instead of
// silently stretching the experiment (no coordinated omission).
//
// Two latency views come back and should agree for wall-clock backends:
//   - observed_latency_ns: caller-side, wait()-return minus scheduled
//     arrival — works on any backend, includes ticket-poll slack;
//   - engine RunReport::latency_ns (when track_latency is on): the
//     engine's own per-query stamps plus the declared queued_ns.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/engine.hpp"
#include "src/core/run_report.hpp"
#include "src/util/stats.hpp"
#include "src/util/types.hpp"
#include "src/workload/open_loop.hpp"

namespace dici::workload {

struct ScenarioSpec;  // scenario.hpp

struct ServingConfig {
  /// Arrival schedule recipe. process must be kPoisson or kBursty;
  /// num_queries is overridden with the query stream's length.
  OpenLoopSpec arrivals;
  /// AdaptiveBatcher size trigger (queries per dispatch round).
  std::size_t batch_max_keys = 1024;
  /// AdaptiveBatcher deadline trigger: max ns a query waits for its
  /// round to fill.
  double batch_max_delay_ns = 200e3;
  /// Submit-ahead depth: rounds in flight before the loop back-pressures
  /// on the oldest ticket (matches the engine-side ring slack).
  std::size_t max_in_flight = 8;
  /// Collect every query's rank (arrival order) into ServingResult::ranks
  /// so tests can verify answers against workload::reference_ranks.
  bool collect_ranks = false;
};

struct ServingResult {
  double offered_qps = 0;   ///< the schedule's long-run target rate
  double achieved_qps = 0;  ///< queries / wall_seconds actually sustained
  double wall_seconds = 0;  ///< first arrival to last completion
  std::uint64_t num_queries = 0;
  std::uint64_t batches = 0;          ///< dispatch rounds submitted
  std::uint64_t size_flushes = 0;     ///< rounds flushed full
  std::uint64_t deadline_flushes = 0; ///< rounds flushed by the deadline
  /// Caller-observed response time per query: wait()-return minus
  /// scheduled arrival (ns). Bounded memory (Summary histogram).
  Summary observed_latency_ns;
  /// Merged engine reports over every round (RunReport::merge), with
  /// RunReport::latency_ns filled when the backend tracks latency.
  core::RunReport engine_total;
  /// Per-query ranks in arrival order (empty unless collect_ranks).
  std::vector<rank_t> ranks;
};

/// Replay `queries` against `client` on the config's arrival schedule.
/// Arrival i is queries[i] at schedule[i] ns past the replay epoch; the
/// loop sleeps out quiet gaps, batches arrivals adaptively, keeps up to
/// max_in_flight rounds submitted, and stamps each round's completion.
/// Runs open loop: if the engine can't keep up, latency grows without
/// bound — that divergence is the signal bench_response_time sweeps for.
ServingResult run_open_loop(core::Client& client,
                            std::span<const key_t> queries,
                            const ServingConfig& config);

/// Derive a ServingConfig from a registry spec (scenario.hpp): the
/// spec's arrival process and offered_qps become the OpenLoopSpec (seed
/// salted away from the index/query draws), batch_max_keys mirrors the
/// spec's batch_bytes in keys. Aborts if the spec is closed-loop.
ServingConfig serving_config_from(const ScenarioSpec& spec);

}  // namespace dici::workload
