#include "src/workload/update_stream.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/assert.hpp"

namespace dici::workload {

LiveSetReference::LiveSetReference(std::span<const key_t> initial)
    : keys_(initial.begin(), initial.end()) {
  DICI_CHECK_MSG(std::is_sorted(keys_.begin(), keys_.end()) &&
                     std::adjacent_find(keys_.begin(), keys_.end()) ==
                         keys_.end(),
                 "LiveSetReference seed keys must be sorted and unique");
}

std::size_t LiveSetReference::insert(std::span<const key_t> keys) {
  std::size_t changed = 0;
  for (const key_t k : keys) {
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), k);
    if (it != keys_.end() && *it == k) continue;
    keys_.insert(it, k);
    ++changed;
  }
  return changed;
}

std::size_t LiveSetReference::erase(std::span<const key_t> keys) {
  std::size_t changed = 0;
  for (const key_t k : keys) {
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), k);
    if (it == keys_.end() || *it != k) continue;
    keys_.erase(it);
    ++changed;
  }
  return changed;
}

rank_t LiveSetReference::rank(key_t query) const {
  return static_cast<rank_t>(
      std::upper_bound(keys_.begin(), keys_.end(), query) - keys_.begin());
}

void LiveSetReference::ranks(std::span<const key_t> queries,
                             std::span<rank_t> out) const {
  DICI_CHECK(queries.size() == out.size());
  for (std::size_t i = 0; i < queries.size(); ++i) out[i] = rank(queries[i]);
}

std::size_t writes_for_reads(std::size_t reads, double write_fraction) {
  DICI_CHECK_FMT(write_fraction >= 0.0 && write_fraction < 1.0,
                 "write_fraction = %g: must be in [0, 1)", write_fraction);
  if (write_fraction == 0.0) return 0;
  return static_cast<std::size_t>(std::llround(
      static_cast<double>(reads) * write_fraction / (1.0 - write_fraction)));
}

WriteRound draw_write_round(std::size_t n, const WriteMix& mix,
                            const LiveSetReference& live, Rng& rng) {
  DICI_CHECK_FMT(mix.erase_share >= 0.0 && mix.erase_share <= 1.0,
                 "WriteMix::erase_share = %g: must be in [0, 1]",
                 mix.erase_share);
  WriteRound round;
  for (std::size_t i = 0; i < n; ++i) {
    const bool is_erase =
        !live.keys().empty() && rng.uniform01() < mix.erase_share;
    if (is_erase) {
      round.erases.push_back(live.keys()[rng.below(live.keys().size())]);
    } else {
      round.inserts.push_back(static_cast<key_t>(
          rng.below(std::numeric_limits<key_t>::max())));
    }
  }
  return round;
}

}  // namespace dici::workload
