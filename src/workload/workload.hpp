// Workload generation (Sec. 4: "Both the search keys and the keys used
// to construct the index structure are randomly generated").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/rng.hpp"
#include "src/util/types.hpp"

namespace dici::workload {

/// `n` distinct uniformly random 32-bit keys, sorted ascending.
std::vector<key_t> make_sorted_unique_keys(std::size_t n, Rng& rng);

/// `n` uniformly random query keys (duplicates allowed, unsorted).
std::vector<key_t> make_uniform_queries(std::size_t n, Rng& rng);

/// Skewed queries: partition the key space into `buckets` equal ranges
/// and draw the bucket from Zipf(s), then a uniform key inside it. With
/// buckets == number of slaves this directly stresses Method C's load
/// balance (the paper's "statistically varying load" remark, Sec. 4.1).
std::vector<key_t> make_zipf_queries(std::size_t n, std::size_t buckets,
                                     double s, Rng& rng);

/// Reference answers: global upper-bound rank of each query.
std::vector<rank_t> reference_ranks(std::span<const key_t> sorted_keys,
                                    std::span<const key_t> queries);

/// Slice `total` queries into batches of `batch_bytes` worth of keys
/// (the last batch may be short). Returns [begin, end) index pairs.
std::vector<std::pair<std::size_t, std::size_t>> batch_ranges(
    std::size_t total, std::uint64_t batch_bytes);

}  // namespace dici::workload
