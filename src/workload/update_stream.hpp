// Write-stream generation and the model-side live-set mirror that the
// mixed read/write scenario cells and bench_updates verify against.
//
// The verification story for a mutable index (core/store.hpp) differs
// from the read-only matrix: there is no single precomputed answer key,
// because the right rank for a query depends on which writes were
// flushed before it was submitted. So the harness keeps a
// LiveSetReference — a plain sorted vector mirroring every
// insert/erase it pushed through the Writer — and prices expected
// ranks from the mirror AT SUBMIT TIME, right after the flush that
// published those writes. That makes the expectation invariant to
// WHEN the store's background rebuild folds the delta, which is
// exactly the property the write path promises.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/rng.hpp"
#include "src/util/types.hpp"

namespace dici::workload {

/// The harness's model of a store's live key set: a sorted unique
/// vector with the same insert/erase/no-op semantics as
/// core::Writer (returns how many keys actually changed state) and
/// exact upper_bound ranks. O(n) per write batch — fine for tests and
/// bench mirrors, not a serving structure.
class LiveSetReference {
 public:
  /// `initial` must be sorted and unique (the store's build input).
  explicit LiveSetReference(std::span<const key_t> initial);

  /// Make keys live; already-live keys are no-ops. Returns #changed.
  std::size_t insert(std::span<const key_t> keys);

  /// Make keys dead; already-dead keys are no-ops. Returns #changed.
  std::size_t erase(std::span<const key_t> keys);

  /// upper_bound rank of `query` over the live set.
  rank_t rank(key_t query) const;

  /// rank() over parallel arrays.
  void ranks(std::span<const key_t> queries, std::span<rank_t> out) const;

  std::span<const key_t> keys() const { return keys_; }
  std::size_t size() const { return keys_.size(); }

 private:
  std::vector<key_t> keys_;
};

/// One point on the read/write-mix axis.
struct WriteMix {
  /// Writes as a fraction of all operations (reads + writes), in
  /// [0, 1). 0 = read-only; 0.05 = the classic 95/5.
  double write_fraction = 0.0;
  /// Share of those writes that are erases (the rest are inserts of
  /// fresh random keys). 0.5 keeps the live set roughly stationary.
  double erase_share = 0.5;
};

/// How many writes accompany `reads` reads at `write_fraction`:
/// round(reads * f / (1 - f)), so writes / (reads + writes) ≈ f.
std::size_t writes_for_reads(std::size_t reads, double write_fraction);

/// One batch of writes, already split by operation.
struct WriteRound {
  std::vector<key_t> inserts;
  std::vector<key_t> erases;
};

/// Draw `n` writes against the CURRENT live set: erases pick uniformly
/// among live keys (so they really erase), inserts draw uniform random
/// keys over the whole key space (collisions with live keys are rare
/// and harmless no-ops on both the store and the mirror). Apply the
/// round to the Writer AND the mirror, flush, then price expectations.
WriteRound draw_write_round(std::size_t n, const WriteMix& mix,
                            const LiveSetReference& live, Rng& rng);

}  // namespace dici::workload
