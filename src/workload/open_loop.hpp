// Open-loop arrival schedules: real traffic arrives on its own clock.
//
// Every bench before this layer was CLOSED-loop — submit a batch, wait,
// submit the next — so the system never queues and tail latency is
// invisible. An open-loop workload fixes the offered load instead: a
// schedule of arrival instants is drawn up front (deterministically,
// from a seed) and replayed against the engine regardless of how fast
// it answers. When the engine falls behind, queries queue and p99
// explodes — exactly the knee the serving layer's latency-vs-load curve
// (bench_response_time) measures.
//
// Two processes cover the classic shapes:
//   - Poisson: independent exponential inter-arrivals at the offered
//     rate; the memoryless baseline of every queueing model.
//   - Bursty: a two-state Markov-modulated Poisson process (MMPP) that
//     alternates exponential-length ON (burst) and OFF (quiet) phases;
//     rates are chosen so the long-run average stays at the offered
//     load while bursts run burst_factor x hotter — the self-similar
//     flash-crowd shape that stresses an adaptive batcher's deadline
//     path far harder than Poisson does.
//
// Schedules are plain sorted offsets (ns since the replay epoch), so
// tests can assert determinism (same spec => byte-identical schedule)
// and shape without any clock in the loop.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dici::workload {

enum class ArrivalProcess {
  kClosed,   ///< no schedule: the classic submit-wait loop (no queueing)
  kPoisson,  ///< exponential inter-arrivals at offered_qps
  kBursty,   ///< two-state MMPP: ON at burst_factor x the base rate
};

std::span<const ArrivalProcess> all_arrival_processes();

const char* arrival_process_name(ArrivalProcess process);

/// Parse "closed" | "poisson" | "bursty"; returns false on anything else.
bool parse_arrival_process(const std::string& name, ArrivalProcess* out);

struct OpenLoopSpec {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  /// Long-run average arrival rate (queries per second of wall time).
  double offered_qps = 100'000.0;
  /// Schedule length (one arrival per query).
  std::size_t num_queries = 1u << 16;
  std::uint64_t seed = 20050502;

  // Bursty (MMPP) knobs, ignored by Poisson.
  /// Burst-phase rate as a multiple of the quiet-phase rate (> 1).
  double burst_factor = 8.0;
  /// Long-run fraction of time spent in the burst phase, in (0, 1).
  double burst_fraction = 0.1;
  /// Mean burst-phase duration in ns (exponential); the quiet phase's
  /// mean follows from burst_fraction.
  double burst_mean_ns = 2e6;
};

/// The schedule: num_queries nondecreasing arrival offsets in ns from
/// the replay epoch. Deterministic for a given spec (same seed =>
/// byte-identical schedule). Aborts (DICI_CHECK) on kClosed, a
/// non-positive rate, or nonsense burst knobs — a closed-loop spec has
/// no schedule to draw.
std::vector<double> make_arrival_schedule_ns(const OpenLoopSpec& spec);

}  // namespace dici::workload
