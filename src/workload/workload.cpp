#include "src/workload/workload.hpp"

#include <algorithm>

#include "src/util/assert.hpp"

namespace dici::workload {

std::vector<key_t> make_sorted_unique_keys(std::size_t n, Rng& rng) {
  DICI_CHECK(n > 0);
  DICI_CHECK_MSG(n <= (1ull << 31),
                 "key count too close to the 32-bit key-space size");
  std::vector<key_t> keys;
  keys.reserve(n + n / 16 + 16);
  // Oversample, dedupe, top up: collisions are rare (n << 2^32) so this
  // converges in one or two rounds.
  while (true) {
    while (keys.size() < n + n / 16 + 16)
      keys.push_back(static_cast<key_t>(rng.next()));
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    if (keys.size() >= n) break;
  }
  // Drop the surplus at evenly spaced positions — truncating the tail
  // would bias the key-space coverage (the largest keys would vanish).
  const std::size_t excess = keys.size() - n;
  if (excess > 0) {
    std::size_t write = 0;
    std::size_t next_drop = 0;
    for (std::size_t read = 0; read < keys.size(); ++read) {
      // Drop index floor(k * size / excess) for k = 0..excess-1.
      if (excess * (read + 1) > next_drop * keys.size()) {
        ++next_drop;  // this position is one of the evenly spaced drops
        continue;
      }
      keys[write++] = keys[read];
    }
    DICI_CHECK(write == n);
    keys.resize(n);
  }
  return keys;
}

std::vector<key_t> make_uniform_queries(std::size_t n, Rng& rng) {
  std::vector<key_t> queries(n);
  for (auto& q : queries) q = static_cast<key_t>(rng.next());
  return queries;
}

std::vector<key_t> make_zipf_queries(std::size_t n, std::size_t buckets,
                                     double s, Rng& rng) {
  // Check here, not just in ZipfSampler: a zero bucket count would also
  // divide the key space by zero below, and a negative exponent would
  // silently invert the skew callers asked for.
  DICI_CHECK_MSG(buckets > 0, "zipf needs at least one bucket");
  DICI_CHECK_MSG(s >= 0.0, "zipf exponent must be non-negative");
  ZipfSampler zipf(buckets, s);
  const std::uint64_t bucket_width = (1ull << 32) / buckets;
  std::vector<key_t> queries(n);
  for (auto& q : queries) {
    const std::uint64_t bucket = zipf(rng);
    const std::uint64_t lo = bucket * bucket_width;
    const std::uint64_t width =
        bucket + 1 == buckets ? (1ull << 32) - lo : bucket_width;
    q = static_cast<key_t>(lo + rng.below(width));
  }
  return queries;
}

std::vector<rank_t> reference_ranks(std::span<const key_t> sorted_keys,
                                    std::span<const key_t> queries) {
  std::vector<rank_t> ranks(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i)
    ranks[i] = static_cast<rank_t>(
        std::upper_bound(sorted_keys.begin(), sorted_keys.end(), queries[i]) -
        sorted_keys.begin());
  return ranks;
}

std::vector<std::pair<std::size_t, std::size_t>> batch_ranges(
    std::size_t total, std::uint64_t batch_bytes) {
  DICI_CHECK(batch_bytes >= sizeof(key_t));
  const std::size_t per_batch =
      static_cast<std::size_t>(batch_bytes / sizeof(key_t));
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ranges.reserve(total / per_batch + 1);
  for (std::size_t begin = 0; begin < total; begin += per_batch)
    ranges.emplace_back(begin, std::min(total, begin + per_batch));
  return ranges;
}

}  // namespace dici::workload
