// Scenario matrix: one instrument, many systematically varied setups.
//
// The merger-survey discipline applied to this system: instead of ad-hoc
// one-off experiments, a ScenarioSpec declares a workload shape
// (distribution, sizes, batching, method) once, a registry collects the
// named specs, and run_scenario_matrix drives the cross product
// scenario x backend through the v2 Engine API — one built index, one
// client pipelining `in_flight` query batches through submit/wait —
// verifying every rank against workload::reference_ranks and emitting
// one machine-readable summary.
// Every future backend (NUMA, remote) and every future workload plugs
// into this matrix and is measured the same way.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"
#include "src/util/types.hpp"
#include "src/workload/open_loop.hpp"

namespace dici::workload {

/// Query stream shapes. Uniform/zipf stress throughput and skewed load
/// balance; hotspot concentrates traffic on a narrow key window (one
/// overloaded slave); sorted-ascending sweeps the key space in order
/// (worst case for range-partition locality churn); adversarial-boundary
/// aims every query at index keys and their neighbours, 0, and the key
/// maximum, pinning the upper_bound edge ranks and the partition
/// delimiter seams.
enum class Distribution {
  kUniform,
  kZipf,
  kHotspot,
  kSortedAscending,
  kAdversarialBoundary,
};

/// All five shapes, in declaration order — the matrix's workload axis.
std::span<const Distribution> all_distributions();

const char* distribution_name(Distribution d);

/// Parse "uniform" | "zipf" | "hotspot" | "sorted-ascending" |
/// "adversarial-boundary"; returns false on anything else.
bool parse_distribution(const std::string& name, Distribution* out);

/// One declarative cell recipe: everything needed to reproduce a
/// workload and run it through a backend, with a stable name for
/// reports.
struct ScenarioSpec {
  std::string name;
  Distribution distribution = Distribution::kUniform;
  std::size_t index_keys = 1u << 15;
  std::size_t num_queries = 1u << 15;
  /// The query stream is sliced into this many Client::submit calls
  /// (the streaming axis; >= 1).
  std::size_t stream_batches = 4;
  /// Dispatcher round size inside the engines (Figure 3's x-axis).
  std::uint64_t batch_bytes = 8 * KiB;
  core::Method method = core::Method::kC3;
  std::uint32_t num_nodes = 5;
  std::uint64_t seed = 20050501;

  // Distribution-specific knobs (ignored by the others).
  double zipf_s = 1.1;
  std::size_t zipf_buckets = 0;  ///< 0 = one bucket per slave
  double hot_fraction = 0.9;     ///< share of queries inside the hot window
  double hot_width = 1.0 / 64;   ///< hot window width as key-space fraction

  // Open-loop serving knobs (open_loop.hpp / serving.hpp). kClosed (the
  // default) is the classic submit-wait matrix; a spec with kPoisson or
  // kBursty declares WHEN its queries arrive too, and is replayed by
  // workload::run_open_loop at offered_qps (serving_config_from turns
  // the spec into a ServingConfig). run_scenario_matrix stays
  // closed-loop either way — the arrival axis belongs to
  // bench_response_time's latency-vs-load sweep.
  ArrivalProcess arrival = ArrivalProcess::kClosed;
  double offered_qps = 0;  ///< long-run arrival rate when open loop
};

/// The spec's index: `index_keys` sorted unique draws from Rng(seed).
std::vector<key_t> make_scenario_index(const ScenarioSpec& spec);

/// Generate the spec's query stream (deterministic for a given spec:
/// same seed => byte-identical stream; the query Rng is salted so the
/// stream is decorrelated from the index draws). `index_keys` is
/// consulted by the adversarial-boundary shape only.
std::vector<key_t> make_scenario_queries(const ScenarioSpec& spec,
                                         std::span<const key_t> index_keys);

// The individual generators behind make_scenario_queries (uniform and
// zipf live in workload.hpp). Tested directly for shape and determinism.

/// `hot_fraction` of the queries fall in a window of `hot_width` *
/// 2^32 keys whose position is drawn from `rng`; the rest are uniform.
std::vector<key_t> make_hotspot_queries(std::size_t n, double hot_fraction,
                                        double hot_width, Rng& rng);

/// Uniform draws sorted ascending — the full key-space sweep.
std::vector<key_t> make_sorted_ascending_queries(std::size_t n, Rng& rng);

/// Every query is an index key or its immediate neighbour (k-1, k, k+1),
/// except queries 0 and 1 which are pinned to key 0 and the key-space
/// maximum — so the stream always exercises both documented edge ranks:
/// 0 (query below the smallest key, when it is > 0) and n (query >= the
/// largest key).
std::vector<key_t> make_adversarial_boundary_queries(
    std::size_t n, std::span<const key_t> index_keys, Rng& rng);

/// Named collection of specs; names are unique (DICI_CHECK).
class ScenarioRegistry {
 public:
  void add(ScenarioSpec spec);
  const std::vector<ScenarioSpec>& specs() const { return specs_; }
  /// nullptr when no spec has that name.
  const ScenarioSpec* find(const std::string& name) const;

 private:
  std::vector<ScenarioSpec> specs_;
};

/// The default matrix: one spec per distribution at the given scale,
/// named after its distribution.
ScenarioRegistry default_scenarios(std::size_t index_keys,
                                   std::size_t num_queries);

/// One scenario x backend x kernel x placement cell of the matrix run.
struct ScenarioCell {
  std::string scenario;
  Distribution distribution{};
  std::string backend;
  /// Search kernel the cell's config carried (search_kernel_name).
  std::string kernel;
  /// Shard placement the cell's config carried (placement_name). The
  /// parallel-native and cluster backends act on it; other backends run
  /// one cell at the first requested placement.
  std::string placement;
  /// How the cell's frames moved (net::transport_name) for cluster
  /// cells; "-" for backends that never serialize a frame.
  std::string transport = "-";
  std::uint64_t stream_batches = 0;
  std::uint64_t in_flight = 1;  ///< submit-ahead depth the cell ran with
  std::uint64_t num_queries = 0;
  /// Write mix the cell ran at (MatrixOptions::write_fractions). 0 =
  /// the classic read-only cell over an immutable Index; > 0 routes
  /// reads through a core::Store with an interleaved write stream.
  double write_fraction = 0;
  std::uint64_t writes = 0;  ///< insert+erase ops interleaved with reads
  bool verified = false;      ///< ranks were checked against the reference
  bool ranks_ok = false;      ///< every rank matched (true when !verified)
  std::uint64_t mismatches = 0;
  /// Summed per-batch makespan (virtual time for sim). At in_flight > 1
  /// batches overlap, so this exceeds elapsed wall time (see
  /// MatrixOptions::in_flight).
  double seconds = 0;
  double per_key_ns = 0;
  double throughput_qps = 0;
  std::uint64_t messages = 0;
  std::uint64_t wire_bytes = 0;
};

struct MatrixOptions {
  std::vector<core::Backend> backends = {
      core::Backend::kSim, core::Backend::kNative,
      core::Backend::kParallelNative, core::Backend::kCluster};
  /// Check every rank of every batch against reference_ranks.
  bool verify = true;
  /// Search kernels swept per backend (the kernel axis). The native
  /// backends switch their C-3 slave code per kernel; the simulator's
  /// cost model abstracts comparator behaviour, so its kernel cells
  /// verify that the answer is invariant, not that timing moves.
  std::vector<core::SearchKernel> kernels = {core::SearchKernel::kBranchless};
  /// Shard placements swept per kernel (the placement axis).
  /// Parallel-native lays shards out per NUMA node and the cluster
  /// backend assigns shard replicas to nodes, so those two sweep the
  /// axis; the other backends run one cell (at the first placement)
  /// instead of duplicating identical runs. Every placement cell is
  /// rank-verified like any other, pinning the "placement moves bytes,
  /// never answers" invariant.
  std::vector<core::Placement> placements = {core::Placement::kInterleave};
  /// Frame transport cluster cells run over (ring | socket | fork |
  /// tcp — the last two spawn real dici_node processes); the other
  /// backends never serialize a frame and ignore it.
  net::TransportKind transport = net::TransportKind::kRing;
  /// Forced NUMA node count for the native engines' topology (0 =
  /// discover the host). CI sets this > 1 so single-node runners still
  /// execute every placement and same-node-first stealing path.
  std::uint32_t numa_nodes = 0;
  /// Read/write mixes swept per placement (the v3 write-path axis).
  /// 0 keeps the classic read-only cell: Engine::build + Index
  /// ::connect, expectations precomputed once. A fraction > 0 runs the
  /// SAME query stream through a core::Store instead: before each
  /// submitted batch the harness draws writes_for_reads() writes,
  /// pushes them through a Writer (and a LiveSetReference mirror),
  /// flushes, and prices that batch's expected ranks from the mirror
  /// at submit time — so verification is exact regardless of when the
  /// store's background rebuild publishes a folded generation.
  std::vector<double> write_fractions = {0.0};
  /// Batches kept in flight per client (clamped to >= 1): each cell
  /// submits up to this many batches ahead before waiting the oldest,
  /// exercising the async pipeline on backends that have one. NOTE on
  /// timing: ScenarioCell::seconds sums per-batch makespans (merge's
  /// sequential semantics); at depth > 1 in-flight batches overlap, so
  /// the sum exceeds elapsed wall time — depth 1 (the default) keeps
  /// the timing honest and comparable across backends, depth > 1 is
  /// for exercising/verifying the pipeline (bench_multiclient is the
  /// wall-clock instrument for pipelined throughput).
  std::size_t in_flight = 1;
};

/// Drive the cross product: for each spec, build the index and query
/// stream once, then for each (backend, kernel, placement) connect one
/// client and pipeline the batches through submit/wait at
/// options.in_flight depth. kParallelNative and kCluster cells are
/// skipped for specs whose method is not C-3 (both shard sorted arrays
/// only); backends without a placement axis run the first placement
/// only. Returns one cell per (spec, backend, kernel, placement)
/// actually run, in spec-major order.
std::vector<ScenarioCell> run_scenario_matrix(const ScenarioRegistry& registry,
                                              const MatrixOptions& options);

/// True iff every verified cell's ranks matched.
bool all_cells_ok(std::span<const ScenarioCell> cells);

/// Machine-readable summary: a JSON array of cell objects, stable field
/// order, newline-terminated — CI uploads this as the run artifact.
std::string matrix_to_json(std::span<const ScenarioCell> cells);

}  // namespace dici::workload
