#include "src/core/sim_engine.hpp"

#include <algorithm>
#include <memory>

#include "src/index/buffered.hpp"
#include "src/index/delta.hpp"
#include "src/index/partitioner.hpp"
#include "src/index/sorted_array.hpp"
#include "src/index/static_tree.hpp"
#include "src/net/link.hpp"
#include "src/net/sim_network.hpp"
#include "src/sim/address_space.hpp"
#include "src/sim/probe.hpp"
#include "src/util/assert.hpp"
#include "src/workload/workload.hpp"

namespace dici::core {

const char* method_name(Method method) {
  switch (method) {
    case Method::kA: return "A";
    case Method::kB: return "B";
    case Method::kC1: return "C-1";
    case Method::kC2: return "C-2";
    case Method::kC3: return "C-3";
  }
  return "?";
}

const char* flush_policy_name(FlushPolicy policy) {
  switch (policy) {
    case FlushPolicy::kMasterRound: return "master-round";
    case FlushPolicy::kPerSlaveThreshold: return "per-slave-threshold";
  }
  return "?";
}

SimCluster::SimCluster(const ExperimentConfig& config) : config_(config) {
  validate(config_);
}

RunReport SimCluster::run_once(std::span<const key_t> index_keys,
                               std::span<const key_t> queries,
                               std::vector<rank_t>* out_ranks) const {
  DICI_CHECK(!index_keys.empty());
  if (out_ranks != nullptr) out_ranks->assign(queries.size(), 0);
  return is_distributed(config_.method)
             ? run_distributed(index_keys, queries, out_ranks)
             : run_replicated(index_keys, queries, out_ranks);
}

namespace {

class SimIndex;

/// The simulator's client: each submission is one full simulated run
/// over the shared key array, resolved synchronously (virtual time, not
/// wall time, is the product — there is nothing to pipeline). run_once
/// is const and self-contained, so many clients may share one SimIndex
/// from different threads.
class SimClient : public Client {
 public:
  SimClient(std::shared_ptr<const Index> index, const SimCluster* cluster)
      : Client(std::move(index)), cluster_(cluster) {}

  const char* backend() const override { return backend_name(Backend::kSim); }

 private:
  std::unique_ptr<Completion> do_submit(
      std::span<const key_t> queries, std::vector<rank_t>* out_ranks,
      const SubmitOptions& options) override {
    // options.queued_ns (real pre-submit wall-clock wait) is ignored:
    // the simulator's latency axis is VIRTUAL time from its cost model,
    // and mixing measured wall nanoseconds into it would corrupt the
    // model.
    RunReport report = cluster_->run_once(index().keys(), queries, out_ranks);
    // Delta merge as a post-pass (rank correction only — the simulated
    // cost model does not yet charge the delta probe's cache lines).
    if (options.delta != nullptr && out_ranks != nullptr)
      options.delta->correct(queries, out_ranks->data());
    return std::make_unique<ImmediateCompletion>(std::move(report));
  }

  const SimCluster* cluster_;  // owned by the SimIndex
};

/// The simulator's index: the shared key array plus a config copy (so
/// the index outlives the engine that built it).
class SimIndex : public Index {
 public:
  SimIndex(const ExperimentConfig& config, std::span<const key_t> index_keys)
      : Index(index_keys), cluster_(config) {}

  const char* backend() const override { return backend_name(Backend::kSim); }

 private:
  std::unique_ptr<Client> do_connect(
      std::shared_ptr<const Index> self) const override {
    return std::make_unique<SimClient>(std::move(self), &cluster_);
  }

  SimCluster cluster_;
};

}  // namespace

std::shared_ptr<const Index> SimCluster::build(
    std::span<const key_t> index_keys) const {
  return std::make_shared<const SimIndex>(config_, index_keys);
}

namespace {

void fill_node_report(NodeReport& report, const sim::MemoryProbe& probe) {
  report.busy = probe.charged();
  report.charges = probe.breakdown();
  report.l1 = probe.l1_stats();
  report.l2 = probe.l2_stats();
  report.tlb = probe.tlb_stats();
}

}  // namespace

// ---------------------------------------------------------------------------
// Methods A and B: the paper measures them on a single node over the whole
// query stream and divides by the cluster size, crediting a zero-overhead
// load balancer (Sec. 4.1). We reproduce that protocol exactly.
// ---------------------------------------------------------------------------
RunReport SimCluster::run_replicated(std::span<const key_t> index_keys,
                                     std::span<const key_t> queries,
                                     std::vector<rank_t>* out_ranks) const {
  sim::AddressSpace space(config_.machine.l2.line_bytes);
  const index::TreeConfig tree_cfg = config_.replicated_tree();
  const index::StaticTree tree(index_keys, tree_cfg, &space);
  sim::MemoryProbe probe(config_.machine, config_.pollute_streams);

  const sim::laddr_t query_base =
      space.allocate(queries.size() * sizeof(key_t));
  const sim::laddr_t result_base =
      space.allocate(queries.size() * sizeof(rank_t));

  Summary latency_ns;
  if (config_.method == Method::kA) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const picos_t read_at = probe.charged();
      probe.stream_read(query_base + i * sizeof(key_t), sizeof(key_t));
      const rank_t rank = tree.lookup(queries[i], probe);
      probe.stream_write(result_base + i * sizeof(rank_t), sizeof(rank_t));
      if (out_ranks != nullptr) (*out_ranks)[i] = rank;
      if (config_.track_latency)
        latency_ns.add(ps_to_ns(probe.charged() - read_at));
    }
  } else {
    DICI_CHECK(config_.method == Method::kB);
    index::BufferedConfig buf_cfg;
    buf_cfg.target_cache_bytes = config_.machine.l2.size_bytes;
    buf_cfg.buffer_fraction = config_.buffer_fraction;
    buf_cfg.scratch_bytes = 2 * config_.batch_bytes;
    buf_cfg.scratch_base = space.allocate(buf_cfg.scratch_bytes);

    index::BufferedResults results;
    std::vector<index::BufferedItem> items;
    for (const auto& [begin, end] :
         workload::batch_ranges(queries.size(), config_.batch_bytes)) {
      items.clear();
      for (std::size_t i = begin; i < end; ++i)
        items.push_back({queries[i], static_cast<std::uint32_t>(i)});
      const picos_t batch_start = probe.charged();
      probe.stream_read(query_base + begin * sizeof(key_t),
                        (end - begin) * sizeof(key_t));
      results.clear();
      index::buffered_lookup(tree, std::span<const index::BufferedItem>(items),
                             buf_cfg, probe, results);
      if (out_ranks != nullptr)
        for (const auto& [id, rank] : results) (*out_ranks)[id] = rank;
      if (config_.track_latency) {
        // Every key in the batch waits from the batch's start until the
        // whole buffered pass completes.
        const double wait = ps_to_ns(probe.charged() - batch_start);
        for (std::size_t i = begin; i < end; ++i) latency_ns.add(wait);
      }
    }
  }

  RunReport report;
  report.method = config_.method;
  report.num_queries = queries.size();
  report.num_nodes = config_.num_nodes;
  report.batch_bytes = config_.batch_bytes;
  report.raw_makespan = probe.charged();
  report.makespan = config_.normalize_replicated
                        ? report.raw_makespan / config_.num_nodes
                        : report.raw_makespan;
  report.nodes.resize(1);
  fill_node_report(report.nodes[0], probe);
  report.nodes[0].finish = report.raw_makespan;
  report.nodes[0].queries = queries.size();
  report.latency_ns = std::move(latency_ns);
  return report;
}

// ---------------------------------------------------------------------------
// Method C: master + slaves over the virtual network.
//
// The master ingests the query stream in rounds of batch_bytes. Within a
// round each key is routed through the delimiter array into the staging
// buffer of its slave; at the end of the round every non-empty staging
// buffer goes out as one message (MPI_Isend — the NIC drains it while the
// master keeps routing). Slaves process messages in arrival order and
// send one result message back per batch; the run completes when the
// master has routed everything and every result message has landed.
// ---------------------------------------------------------------------------
// With multiple masters (Sec. 3.2's overload remedy) the query stream is
// split evenly; each master owns a replica of the delimiter array and its
// own NIC, and slaves serve batches from all masters in arrival order.
RunReport SimCluster::run_distributed(std::span<const key_t> index_keys,
                                      std::span<const key_t> queries,
                                      std::vector<rank_t>* out_ranks) const {
  const std::uint32_t M = config_.num_masters;
  const std::uint32_t S = config_.num_slaves();
  DICI_CHECK(M >= 1);
  DICI_CHECK_MSG(config_.num_nodes > M, "Method C needs at least one slave");
  const arch::MachineSpec& machine = config_.machine;
  const picos_t msg_overhead = ns_to_ps(machine.msg_cpu_overhead_us * 1e3);

  net::SimNetwork network(config_.num_nodes, net::LinkModel(machine));
  std::uint64_t messages = 0;
  std::uint64_t wire_bytes = 0;

  // --- Slave state ----------------------------------------------------------
  // The partitions are defined once; each master replicates only the
  // delimiters. Node ids: masters are 0..M-1, slave s is M+s.
  const index::RangePartitioner partitioner(index_keys, S);
  struct Slave {
    sim::AddressSpace space;
    std::unique_ptr<sim::MemoryProbe> probe;
    std::unique_ptr<index::StaticTree> tree;          // C-1 / C-2
    std::unique_ptr<index::SortedArrayIndex> array;   // C-3
    index::BufferedConfig buf_cfg;                    // C-2
    sim::laddr_t recv_base = 0;
    sim::laddr_t result_base = 0;
    picos_t clock = 0;
    picos_t idle = 0;
    std::uint64_t queries = 0;
    rank_t rank_offset = 0;
  };
  std::vector<Slave> slaves(S);
  for (std::uint32_t s = 0; s < S; ++s) {
    Slave& sl = slaves[s];
    sl.space = sim::AddressSpace(machine.l2.line_bytes);
    sl.probe =
        std::make_unique<sim::MemoryProbe>(machine, config_.pollute_streams);
    sl.rank_offset = partitioner.start_of(s);
    const auto part = partitioner.keys_of(s);
    if (config_.method == Method::kC3) {
      sl.array = std::make_unique<index::SortedArrayIndex>(
          part, sl.space.allocate(part.size() * sizeof(key_t)));
    } else {
      sl.tree = std::make_unique<index::StaticTree>(
          part, config_.slave_tree(config_.method), &sl.space);
      if (config_.method == Method::kC2) {
        sl.buf_cfg.target_cache_bytes = machine.l1.size_bytes;
        sl.buf_cfg.buffer_fraction = config_.buffer_fraction;
        sl.buf_cfg.scratch_bytes = 2 * config_.batch_bytes;
        sl.buf_cfg.scratch_base = sl.space.allocate(sl.buf_cfg.scratch_bytes);
      }
    }
    sl.recv_base = sl.space.allocate(config_.batch_bytes);
    sl.result_base = sl.space.allocate(config_.batch_bytes);
  }

  // --- Masters route their share of the stream -------------------------------
  struct Batch {
    picos_t delivered;
    net::node_id_t src_master;
    std::vector<key_t> keys;
    std::vector<std::uint32_t> ids;  // bookkeeping only, not on the wire
  };
  std::vector<std::vector<Batch>> inbox(S);
  // Front-end arrival time of each query (the master reading it off the
  // stream), for response-time accounting.
  std::vector<picos_t> arrivals(config_.track_latency ? queries.size() : 0);

  struct Master {
    std::unique_ptr<sim::AddressSpace> space;
    std::unique_ptr<index::RangePartitioner> delimiters;
    std::unique_ptr<sim::MemoryProbe> probe;
  };
  std::vector<Master> masters(M);
  const std::size_t keys_per_round =
      static_cast<std::size_t>(config_.batch_bytes / sizeof(key_t));

  for (std::uint32_t m = 0; m < M; ++m) {
    Master& ms = masters[m];
    ms.space = std::make_unique<sim::AddressSpace>(machine.l2.line_bytes);
    ms.delimiters = std::make_unique<index::RangePartitioner>(
        index_keys, S,
        ms.space->allocate(S > 1 ? (S - 1) * sizeof(key_t)
                                 : sizeof(key_t)));
    ms.probe =
        std::make_unique<sim::MemoryProbe>(machine, config_.pollute_streams);
    const std::size_t begin = queries.size() * m / M;
    const std::size_t end = queries.size() * (m + 1) / M;
    const sim::laddr_t query_base =
        ms.space->allocate((end - begin) * sizeof(key_t));
    std::vector<sim::laddr_t> staging_base(S);
    for (auto& base : staging_base)
      base = ms.space->allocate(config_.batch_bytes + machine.l2.line_bytes);

    std::vector<std::vector<key_t>> staging_keys(S);
    std::vector<std::vector<std::uint32_t>> staging_ids(S);
    std::vector<std::size_t> staged_fill(S, 0);
    auto flush_slave = [&](std::uint32_t s) {
      if (staging_keys[s].empty()) return;
      const std::uint64_t payload = staging_keys[s].size() * sizeof(key_t);
      ms.probe->compute(ps_to_ns(msg_overhead));  // MPI/OS send cost
      const picos_t delivered =
          network.send(m, M + s, payload + config_.message_header_bytes,
                       ms.probe->charged());
      messages += 1;
      wire_bytes += payload + config_.message_header_bytes;
      inbox[s].push_back({delivered, m, std::move(staging_keys[s]),
                          std::move(staging_ids[s])});
      staging_keys[s] = {};
      staging_ids[s] = {};
    };

    std::size_t round_fill = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const key_t q = queries[i];
      if (config_.track_latency) arrivals[i] = ms.probe->charged();
      ms.probe->stream_read(query_base + (i - begin) * sizeof(key_t),
                            sizeof(key_t));
      const std::uint32_t s = ms.delimiters->route(q, *ms.probe);
      ms.probe->stream_write(
          staging_base[s] + (staged_fill[s] % keys_per_round) * sizeof(key_t),
          sizeof(key_t));
      ++staged_fill[s];
      staging_keys[s].push_back(q);
      staging_ids[s].push_back(static_cast<std::uint32_t>(i));
      if (config_.flush_policy == FlushPolicy::kPerSlaveThreshold) {
        if (staging_keys[s].size() >= keys_per_round) flush_slave(s);
      } else if (++round_fill == keys_per_round) {
        for (std::uint32_t slave = 0; slave < S; ++slave) flush_slave(slave);
        round_fill = 0;
      }
    }
    for (std::uint32_t slave = 0; slave < S; ++slave) flush_slave(slave);
  }
  picos_t master_finish = 0;
  for (const Master& ms : masters)
    master_finish = std::max(master_finish, ms.probe->charged());

  // Batches from different masters interleave at each slave: serve them
  // in arrival order.
  for (auto& box : inbox)
    std::stable_sort(box.begin(), box.end(),
                     [](const Batch& a, const Batch& b) {
                       return a.delivered < b.delivered;
                     });

  // --- Slave processing + replies --------------------------------------------
  picos_t completion = master_finish;
  struct Reply {
    picos_t ready;
    net::node_id_t src;
    net::node_id_t dst;
    std::uint64_t bytes;
    std::uint32_t slave;
    std::size_t batch_index;  // into inbox[slave], for latency accounting
  };
  std::vector<Reply> replies;
  index::BufferedResults buffered_results;
  std::vector<index::BufferedItem> items;
  for (std::uint32_t s = 0; s < S; ++s) {
    Slave& sl = slaves[s];
    sim::MemoryProbe& probe = *sl.probe;
    for (std::size_t bi = 0; bi < inbox[s].size(); ++bi) {
      const Batch& batch = inbox[s][bi];
      const picos_t start = std::max(sl.clock, batch.delivered);
      sl.idle += start - sl.clock;
      sl.clock = start;
      const picos_t busy_before = probe.charged();
      const std::uint64_t payload = batch.keys.size() * sizeof(key_t);

      probe.compute(ps_to_ns(msg_overhead));  // MPI/OS receive cost
      if (config_.dma_pollution) probe.dma_fill(sl.recv_base, payload);
      probe.stream_read(sl.recv_base, payload);

      switch (config_.method) {
        case Method::kC1:
          for (std::size_t j = 0; j < batch.keys.size(); ++j) {
            const rank_t local = sl.tree->lookup(batch.keys[j], probe);
            if (out_ranks != nullptr)
              (*out_ranks)[batch.ids[j]] = sl.rank_offset + local;
          }
          break;
        case Method::kC2: {
          items.clear();
          for (std::size_t j = 0; j < batch.keys.size(); ++j)
            items.push_back({batch.keys[j], static_cast<std::uint32_t>(j)});
          buffered_results.clear();
          index::buffered_lookup(
              *sl.tree, std::span<const index::BufferedItem>(items),
              sl.buf_cfg, probe, buffered_results);
          if (out_ranks != nullptr)
            for (const auto& [id, rank] : buffered_results)
              (*out_ranks)[batch.ids[id]] = sl.rank_offset + rank;
          break;
        }
        case Method::kC3:
          for (std::size_t j = 0; j < batch.keys.size(); ++j) {
            const rank_t local =
                sl.array->upper_bound_rank(batch.keys[j], probe);
            if (out_ranks != nullptr)
              (*out_ranks)[batch.ids[j]] = sl.rank_offset + local;
          }
          break;
        default:
          DICI_CHECK_MSG(false, "replicated method in distributed engine");
      }
      probe.stream_write(sl.result_base, payload);
      probe.compute(ps_to_ns(msg_overhead));  // MPI/OS send cost
      sl.clock += probe.charged() - busy_before;
      sl.queries += batch.keys.size();

      replies.push_back({sl.clock, static_cast<net::node_id_t>(M + s),
                         batch.src_master,
                         payload + config_.message_header_bytes, s, bi});
    }
  }

  // Replies were generated slave-by-slave, but each master's ingress NIC
  // serves them in *time* order; sort before scheduling so one slave's
  // replies do not spuriously queue behind another's.
  std::sort(replies.begin(), replies.end(),
            [](const Reply& a, const Reply& b) { return a.ready < b.ready; });
  Summary latency_ns;
  for (const Reply& reply : replies) {
    const picos_t delivered =
        network.send(reply.src, reply.dst, reply.bytes, reply.ready);
    messages += 1;
    wire_bytes += reply.bytes;
    completion = std::max(completion, delivered);
    if (config_.track_latency) {
      // Response time of every query in this batch: from the master
      // reading it off the stream to its result landing back.
      for (const auto id : inbox[reply.slave][reply.batch_index].ids)
        latency_ns.add(ps_to_ns(delivered - arrivals[id]));
    }
  }

  // --- Report -----------------------------------------------------------------
  RunReport report;
  report.method = config_.method;
  report.num_queries = queries.size();
  report.num_nodes = config_.num_nodes;
  report.batch_bytes = config_.batch_bytes;
  report.raw_makespan = completion;
  report.makespan = completion;  // no normalization: C uses all nodes as-is
  report.messages = messages;
  report.wire_bytes = wire_bytes;
  report.nodes.resize(config_.num_nodes);

  for (std::uint32_t m = 0; m < M; ++m) {
    NodeReport& node = report.nodes[m];
    fill_node_report(node, *masters[m].probe);
    node.finish = masters[m].probe->charged();
    node.queries = queries.size() * (m + 1) / M - queries.size() * m / M;
    node.nic = network.stats(m);
  }

  double idle_sum = 0.0;
  for (std::uint32_t s = 0; s < S; ++s) {
    NodeReport& node = report.nodes[M + s];
    fill_node_report(node, *slaves[s].probe);
    node.finish = slaves[s].clock;
    node.idle = slaves[s].idle;
    node.queries = slaves[s].queries;
    node.nic = network.stats(M + s);
    idle_sum += 1.0 - static_cast<double>(node.busy) /
                          static_cast<double>(report.raw_makespan);
  }
  report.slave_idle_fraction = idle_sum / S;
  report.latency_ns = std::move(latency_ns);
  return report;
}

}  // namespace dici::core
