// The unified backend seam: every cluster implementation — the
// discrete-event simulator (SimCluster), the threaded native engine
// (NativeEngine over NativeCluster), and the sharded parallel engine
// (ParallelNativeEngine) — answers one contract:
//
//   run(index_keys, queries, out_ranks) -> RunReport
//
// where out_ranks receives the global std::upper_bound rank of every
// query in query order. Correctness tests, benches, and examples program
// against Engine and pick a backend via make_engine(), so future
// backends (NUMA-aware, remote) drop in behind the same seam.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/core/config.hpp"
#include "src/core/run_report.hpp"
#include "src/util/types.hpp"

namespace dici::core {

class Engine {
 public:
  virtual ~Engine() = default;

  /// Run `queries` against the index built over `index_keys` (sorted,
  /// unique). When `out_ranks` is non-null it receives the global
  /// upper-bound rank of every query, in query order.
  ///
  /// The scalar RunReport fields (makespan, messages, ...) are filled by
  /// every backend; RunReport::nodes is backend-dependent detail (the
  /// simulator reports one entry per simulated node — or the single
  /// measured node for Methods A/B — ParallelNativeEngine reports
  /// dispatcher + workers, NativeEngine none), so generic callers must
  /// size-check `nodes` rather than assume num_nodes entries.
  virtual RunReport run(std::span<const key_t> index_keys,
                        std::span<const key_t> queries,
                        std::vector<rank_t>* out_ranks = nullptr) const = 0;

  /// Stable backend identifier ("sim", "native", "parallel-native").
  virtual const char* name() const = 0;
};

/// Shared ExperimentConfig validation. Every backend built from an
/// ExperimentConfig funnels through this, so a nonsense config fails the
/// same loud way (DICI_CHECK abort) regardless of backend.
void validate(const ExperimentConfig& config);

/// Aborts when the config requests knobs only the simulator implements
/// (non-default flush_policy, track_latency) — silently running the
/// default on a native backend would corrupt cross-backend comparisons.
void check_native_supported(const ExperimentConfig& config);

enum class Backend { kSim, kNative, kParallelNative };

const char* backend_name(Backend backend);

/// Factory: the one switch benches and tests go through to pick a
/// backend for a given experiment. kParallelNative requires Method C-3
/// (it shards sorted arrays).
std::unique_ptr<Engine> make_engine(Backend backend,
                                    const ExperimentConfig& config);

}  // namespace dici::core
