// The unified backend seam: every cluster implementation — the
// discrete-event simulator (SimCluster), the threaded native engine
// (NativeEngine over NativeCluster), and the sharded parallel engine
// (ParallelNativeEngine) — answers one two-phase contract:
//
//   open(index_keys) -> Session
//   Session::run_batch(queries, out_ranks) -> RunReport
//
// open() builds the index once; the Session owns it (plus any persistent
// worker state — ParallelNativeEngine keeps its pinned threads, shards,
// and work queues alive across calls) and serves repeated query batches,
// the paper's steady-state master/slave pipeline rather than a cold
// start per call. out_ranks receives the global std::upper_bound rank of
// every query in query order. The classic one-shot
//
//   run(index_keys, queries, out_ranks) -> RunReport
//
// survives as a thin open-then-run_batch wrapper, so code that wants a
// single cold measurement keeps compiling unchanged. Correctness tests,
// benches, and examples program against Engine/Session and pick a
// backend via make_engine(), so future backends (NUMA-aware, remote)
// drop in behind the same seam.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/core/config.hpp"
#include "src/core/run_report.hpp"
#include "src/util/types.hpp"

namespace dici::core {

/// A built index plus whatever steady-state machinery the backend keeps
/// warm between batches. Sessions are self-contained: they copy the
/// config and key array at open(), so the Engine that created one may be
/// destroyed while the session lives on. A session serves one query
/// stream — run_batch is NOT thread-safe; callers wanting concurrent
/// streams open one session per stream.
class Session {
 public:
  virtual ~Session() = default;

  /// Resolve one batch of the query stream against the session's index.
  /// When `out_ranks` is non-null it receives the global upper-bound
  /// rank of every query in this batch, in batch order. Returns the
  /// report for THIS batch only; the running total (merged with
  /// RunReport::merge) is available via total().
  RunReport run_batch(std::span<const key_t> queries,
                      std::vector<rank_t>* out_ranks = nullptr);

  /// Accumulated report over every run_batch so far (default-constructed
  /// before the first batch).
  const RunReport& total() const { return total_; }

  /// Number of run_batch calls served.
  std::uint64_t batches() const { return batches_; }

  /// Stable identifier of the backend that opened this session.
  virtual const char* backend() const = 0;

 private:
  virtual RunReport do_run_batch(std::span<const key_t> queries,
                                 std::vector<rank_t>* out_ranks) = 0;

  RunReport total_;
  std::uint64_t batches_ = 0;
};

class Engine {
 public:
  virtual ~Engine() = default;

  /// Build the index over `index_keys` (sorted, unique, non-empty) and
  /// return a session that serves query batches against it.
  virtual std::unique_ptr<Session> open(
      std::span<const key_t> index_keys) const = 0;

  /// One-shot convenience: open a session, run a single batch, tear it
  /// down. When `out_ranks` is non-null it receives the global
  /// upper-bound rank of every query, in query order.
  ///
  /// Setup cost (the session's key-array copy, and for
  /// ParallelNativeEngine the worker spawn) is paid inside open(),
  /// OUTSIDE the reported makespan: every backend's makespan now means
  /// "serve this batch on a ready index", one-shot or streamed. Callers
  /// who want to charge setup wall-clock time a loop around run()
  /// themselves (bench_parallel_scaling's rebuild-per-call column does
  /// exactly that).
  ///
  /// The scalar RunReport fields (makespan, messages, ...) are filled by
  /// every backend; RunReport::nodes is backend-dependent detail (the
  /// simulator reports one entry per simulated node — or the single
  /// measured node for Methods A/B — ParallelNativeEngine reports
  /// dispatcher + workers, NativeEngine none), so generic callers must
  /// size-check `nodes` rather than assume num_nodes entries.
  RunReport run(std::span<const key_t> index_keys,
                std::span<const key_t> queries,
                std::vector<rank_t>* out_ranks = nullptr) const;

  /// Stable backend identifier ("sim", "native", "parallel-native").
  virtual const char* name() const = 0;
};

/// Shared ExperimentConfig validation. Every backend built from an
/// ExperimentConfig funnels through this, so a nonsense config fails the
/// same loud way (DICI_CHECK abort) regardless of backend.
void validate(const ExperimentConfig& config);

/// Aborts when the config requests knobs only the simulator implements
/// (non-default flush_policy, track_latency) — silently running the
/// default on a native backend would corrupt cross-backend comparisons.
void check_native_supported(const ExperimentConfig& config);

enum class Backend { kSim, kNative, kParallelNative };

const char* backend_name(Backend backend);

/// Factory: the one switch benches and tests go through to pick a
/// backend for a given experiment. kParallelNative requires Method C-3
/// (it shards sorted arrays).
std::unique_ptr<Engine> make_engine(Backend backend,
                                    const ExperimentConfig& config);

}  // namespace dici::core
