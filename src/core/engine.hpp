// The unified backend seam, v2: every cluster implementation — the
// discrete-event simulator (SimCluster), the threaded native engine
// (NativeEngine over NativeCluster), and the sharded parallel engine
// (ParallelNativeEngine) — answers one three-layer contract:
//
//   Engine::build(index_keys) -> std::shared_ptr<const Index>
//   Index::connect()          -> std::unique_ptr<Client>
//   Client::submit(queries, out_ranks) -> Ticket
//   Client::wait(ticket)      -> RunReport        (plus drain())
//
// build() constructs one immutable, shareable index: the key array is
// copied exactly once, into the Index, and every Client serves its query
// stream against that same copy (no per-session duplication). connect()
// may be called many times; Clients are independent query streams and
// are safe to drive from different threads concurrently — this is the
// paper's Sec. 3.2 multi-master remark made literal, many front ends
// sharing one built slave fleet. submit() enqueues a batch and returns
// immediately with a Ticket, so a caller keeps several batches in
// flight; wait() blocks for one batch's RunReport, drain() for all of
// them. ParallelNativeEngine's persistent pinned worker fleet lives in
// its Index and interleaves work items from every connected client
// through the same queues.
//
// v3 adds the write path on top of this contract: core/store.hpp wraps
// a built Index in a Store whose read Clients speak exactly this
// submit/wait surface while a Writer mutates the key set through a
// sorted delta buffer (index/delta.hpp) and a background rebuild
// publishes fresh Index generations via RCU swap. The seam this file
// contributes is SubmitOptions::delta: any submit may carry a frozen
// delta snapshot, and every backend folds its rank corrections into the
// results at resolve time.
//
// The v1 Session surface (Engine::open / Session::run_batch) is GONE —
// removed on the schedule README's migration table promised, two PRs
// after its PR 7 deprecation — and so is PR 6's positional
// submit(queries, out_ranks, queued_ns) overload (deprecated in PR 7;
// pass SubmitOptions instead). Engine::run survives as the one-shot
// convenience (build + connect + submit + wait in one call).
// out_ranks always receives the global std::upper_bound
// rank of every query in query order — the invariant every backend is
// tested against; when a delta rides along, the rank is over
// (base \ erased) ∪ inserted instead.
#pragma once

#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "src/core/config.hpp"
#include "src/core/run_report.hpp"
#include "src/util/types.hpp"

namespace dici::index {
class DeltaSnapshot;
}  // namespace dici::index

namespace dici::core {

class Client;

/// An immutable built index plus whatever steady-state machinery the
/// backend keeps warm (ParallelNativeEngine parks its pinned worker
/// fleet here). The one owner of the key array: clients and sessions
/// reference it, they do not copy it. Always held by shared_ptr — the
/// index stays alive while any Client (or the caller) still references
/// it, so the Engine that built it may be destroyed freely.
///
/// Thread-safety: everything reachable from a const Index is safe to
/// use from many clients on many threads concurrently; the internal
/// work queues of threaded backends are internally synchronized.
class Index : public std::enable_shared_from_this<Index> {
 public:
  virtual ~Index() = default;

  /// Attach one more client stream to this index. Clients are
  /// independent: each has its own tickets and accounting, and distinct
  /// clients may submit/wait concurrently from different threads.
  std::unique_ptr<Client> connect() const;

  /// The built (sorted, unique) key array — the single shared copy.
  std::span<const key_t> keys() const { return keys_; }
  std::size_t size() const { return keys_.size(); }

  /// Stable identifier of the backend that built this index.
  virtual const char* backend() const = 0;

 protected:
  explicit Index(std::span<const key_t> index_keys);

 private:
  virtual std::unique_ptr<Client> do_connect(
      std::shared_ptr<const Index> self) const = 0;

  std::vector<key_t> keys_;
};

/// Handle for one in-flight submission. Cheap to copy; only meaningful
/// with the Client that issued it (wait()ing it on any other client
/// aborts). A default-constructed Ticket belongs to no client.
class Ticket {
 public:
  Ticket() = default;
  std::uint64_t id() const { return id_; }

 private:
  friend class Client;
  Ticket(const Client* owner, std::uint64_t id) : owner_(owner), id_(id) {}

  const Client* owner_ = nullptr;
  std::uint64_t id_ = 0;
};

/// Per-submit knobs, passed by const reference so adding a field never
/// changes the submit() signature again (the lesson of the retired
/// positional queued_ns overload). Aggregate-initialize the fields you
/// need: `client->submit(queries, &ranks, {.queued_ns = waits})`.
struct SubmitOptions {
  /// When non-empty, one entry per query: the wall-clock wait (ns) the
  /// query had ALREADY accrued before this submit — an adaptive
  /// batcher's queue time. Backends that measure wall-clock latency
  /// (native, parallel-native) add it to each query's measured
  /// submit->resolve time so RunReport::latency_ns is the full
  /// arrival->resolve response time; the simulator ignores it (its
  /// arrival process lives in virtual time). Only read during the
  /// submit call itself — the span need not outlive it.
  std::span<const double> queued_ns = {};

  /// Pending writes to merge into this submission's results: every rank
  /// is corrected to upper_bound over (base \ erased) ∪ inserted at
  /// resolve time (see index/delta.hpp for the additive decomposition).
  /// Null means "the base index is the live set". Normally supplied by
  /// a Store's generation-aware clients, not by hand; the snapshot must
  /// be immutable and stays referenced until the ticket completes.
  std::shared_ptr<const index::DeltaSnapshot> delta = nullptr;
};

/// One query stream against a shared Index. submit() enqueues a batch
/// and returns a Ticket without blocking on the result; wait() blocks
/// until that batch completes and returns its RunReport; drain() waits
/// for everything outstanding. Per-client accounting (total(),
/// batches()) accumulates as tickets are waited.
///
/// Threading contract: one Client serves one stream — its methods are
/// NOT thread-safe against each other. Distinct clients of the same
/// Index are fully concurrent. Destroying a client with tickets still
/// in flight is safe: the destructor drains them first (so out_ranks
/// buffers are never written after the caller has moved on).
///
/// Buffer lifetimes: `queries` only needs to live for the submit() call
/// itself (the batch is staged into messages inside submit). A non-null
/// `out_ranks` is resized inside submit() and must then stay alive and
/// un-resized until that ticket is waited (or the client drains /
/// is destroyed) — the backend writes ranks into it asynchronously.
///
/// Each ticket is waited exactly once: wait() hands the batch's report
/// over and retires the ticket (its scalars live on in total()), so the
/// ledger stays O(in-flight) however long the stream runs — a client
/// serving millions of batches retains nothing per batch. Waiting a
/// ticket twice is a programming error and aborts with a diagnostic;
/// capture the RunReport from the first wait if you need it later.
class Client {
 public:
  /// Blocking handle for one submission's result. Backends return one
  /// from do_submit(); synchronous backends use ImmediateCompletion.
  /// Completions must be self-contained (safe to await even while the
  /// derived Client is being destroyed).
  class Completion {
   public:
    virtual ~Completion() = default;
    /// Block until the submission completes; called at most once.
    virtual RunReport await() = 0;
    /// Non-blocking: has the submission completed (await would return
    /// without blocking)? Synchronous backends are always ready; the
    /// open-loop serving layer polls this to stamp completions without
    /// stalling the arrival clock.
    virtual bool ready() const { return true; }
  };

  virtual ~Client();  // drains tickets still in flight

  /// Enqueue one batch of this client's query stream. Returns without
  /// waiting for the batch to complete (on backends with an async
  /// pipeline; synchronous backends resolve it inline).
  Ticket submit(std::span<const key_t> queries,
                std::vector<rank_t>* out_ranks = nullptr);

  /// Same, with per-submit knobs (batcher queue time, delta snapshot —
  /// see SubmitOptions).
  Ticket submit(std::span<const key_t> queries, std::vector<rank_t>* out_ranks,
                const SubmitOptions& options);

  /// Non-blocking: would wait(ticket) return without blocking? Aborts
  /// on foreign or already-waited tickets exactly like wait().
  bool ready(const Ticket& ticket) const;

  /// Block until `ticket`'s batch completes; returns the report for
  /// that batch only, folds it into total(), and retires the ticket
  /// (waiting it again aborts — see the class comment).
  RunReport wait(const Ticket& ticket);

  /// Wait every outstanding ticket (in submission order); returns the
  /// accumulated total().
  const RunReport& drain();

  /// Accumulated report over every waited batch (RunReport::merge).
  const RunReport& total() const { return total_; }

  /// Number of completed (waited) batches.
  std::uint64_t batches() const { return batches_; }

  /// Tickets submitted but not yet waited.
  std::uint64_t in_flight() const { return in_flight_; }

  /// The shared index this client streams against. For a Store's
  /// generation-aware clients this is the CURRENT generation's base
  /// index and moves when a rebuild publishes.
  virtual const Index& index() const { return *index_; }

  /// Stable identifier of the backend serving this client.
  virtual const char* backend() const = 0;

 protected:
  explicit Client(std::shared_ptr<const Index> index);

  /// Swap the pinned index — for generation-swapping clients only. The
  /// previous index must stay reachable (e.g. via in-flight completions)
  /// until every ticket submitted against it has been waited.
  void rebind_index(std::shared_ptr<const Index> index);

 private:
  virtual std::unique_ptr<Completion> do_submit(
      std::span<const key_t> queries, std::vector<rank_t>* out_ranks,
      const SubmitOptions& options) = 0;

  struct Entry {
    std::unique_ptr<Completion> completion;  // null once waited (settled)
  };

  // Destroyed after ~Client's drain, so completions may rely on the
  // index machinery (worker fleet, queues) while being awaited.
  std::shared_ptr<const Index> index_;
  // Ticket id -> entries_[id - base_id_]. Settled entries are retired
  // from the front as the settled prefix grows, so the ledger stays
  // O(in-flight): out-of-order waits leave settled holes that retire
  // once everything before them has settled.
  std::deque<Entry> entries_;
  std::uint64_t base_id_ = 0;   // id of entries_.front()
  std::uint64_t next_id_ = 0;   // id the next submit() gets
  std::uint64_t in_flight_ = 0;
  RunReport total_;
  std::uint64_t batches_ = 0;
};

/// Completion for backends that resolve a submission synchronously
/// inside do_submit (sim, native): the report is ready before submit
/// returns, await just hands it over.
class ImmediateCompletion : public Client::Completion {
 public:
  explicit ImmediateCompletion(RunReport report)
      : report_(std::move(report)) {}
  RunReport await() override { return std::move(report_); }

 private:
  RunReport report_;
};

class Engine {
 public:
  virtual ~Engine() = default;

  /// Build the one immutable index over `index_keys` (sorted, unique,
  /// non-empty). The returned Index is shareable: connect() as many
  /// concurrent clients as you like; the Engine may be destroyed.
  virtual std::shared_ptr<const Index> build(
      std::span<const key_t> index_keys) const = 0;

  /// One-shot convenience: build an index, serve a single batch, tear
  /// it down. When `out_ranks` is non-null it receives the global
  /// upper-bound rank of every query, in query order.
  ///
  /// Setup cost (the index's key-array copy, and for
  /// ParallelNativeEngine the worker spawn) is paid inside build(),
  /// OUTSIDE the reported makespan: every backend's makespan means
  /// "serve this batch on a ready index", one-shot or streamed. Callers
  /// who want to charge setup wall-clock time a loop around run()
  /// themselves (bench_parallel_scaling's rebuild-per-call column does
  /// exactly that).
  ///
  /// The scalar RunReport fields (makespan, messages, ...) are filled by
  /// every backend; RunReport::nodes is backend-dependent detail (the
  /// simulator reports one entry per simulated node — or the single
  /// measured node for Methods A/B — ParallelNativeEngine reports
  /// dispatcher + workers, NativeEngine none), so generic callers must
  /// size-check `nodes` rather than assume num_nodes entries.
  RunReport run(std::span<const key_t> index_keys,
                std::span<const key_t> queries,
                std::vector<rank_t>* out_ranks = nullptr) const;

  /// Stable backend identifier ("sim", "native", "parallel-native").
  virtual const char* name() const = 0;
};

/// Shared ExperimentConfig validation. Every backend built from an
/// ExperimentConfig funnels through this, so a nonsense config fails the
/// same loud way (DICI_CHECK abort naming the offending field and its
/// value) regardless of backend.
void validate(const ExperimentConfig& config);

/// Aborts when the config requests knobs only the simulator implements
/// (currently: non-default flush_policy) — silently running the default
/// on a native backend would corrupt cross-backend comparisons. The
/// diagnostic names the offending field and its value. track_latency is
/// NOT such a knob any more: every backend fills
/// RunReport::latency_ns — the simulator in virtual time, the native
/// backends in measured wall time.
void check_native_supported(const ExperimentConfig& config);

enum class Backend { kSim, kNative, kParallelNative, kCluster };

const char* backend_name(Backend backend);

/// Factory: the one switch benches and tests go through to pick a
/// backend for a given experiment. kParallelNative and kCluster require
/// Method C-3 (they shard sorted arrays); kCluster additionally runs
/// its slaves as message-passing nodes (src/cluster/) whose only link
/// to the coordinator is a serialized frame transport.
std::unique_ptr<Engine> make_engine(Backend backend,
                                    const ExperimentConfig& config);

}  // namespace dici::core
