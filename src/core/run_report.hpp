// Result of one simulated (or native) experiment run.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/config.hpp"
#include "src/net/sim_network.hpp"
#include "src/util/assert.hpp"
#include "src/util/stats.hpp"
#include "src/sim/cache.hpp"
#include "src/sim/probe.hpp"
#include "src/sim/tlb.hpp"
#include "src/util/types.hpp"

namespace dici::core {

/// Per-node accounting. Node 0 is the master for distributed methods;
/// replicated methods report their single measured node.
struct NodeReport {
  picos_t finish = 0;  ///< node-local clock when its last work completed
  picos_t busy = 0;    ///< time charged by the probe (CPU + memory)
  picos_t idle = 0;    ///< waited on message arrivals
  std::uint64_t queries = 0;
  sim::ChargeBreakdown charges;
  sim::CacheStats l1;
  sim::CacheStats l2;
  sim::TlbStats tlb;
  net::NicStats nic;
};

struct RunReport {
  Method method{};
  std::uint64_t num_queries = 0;
  std::uint32_t num_nodes = 1;
  std::uint64_t batch_bytes = 0;

  /// Virtual time until every result was delivered, unnormalized.
  picos_t raw_makespan = 0;
  /// Normalized makespan: raw / num_nodes for replicated methods when
  /// the config asks for it (Sec. 4.1's fairness rule), raw otherwise.
  picos_t makespan = 0;

  double seconds() const { return ps_to_sec(makespan); }
  double per_key_ns() const {
    return num_queries ? ps_to_ns(makespan) / static_cast<double>(num_queries)
                       : 0.0;
  }
  /// Queries per second at the normalized makespan.
  double throughput_qps() const {
    return seconds() > 0 ? static_cast<double>(num_queries) / seconds() : 0.0;
  }

  /// Mean over slaves of (1 - busy/raw_makespan); 0 for A/B.
  double slave_idle_fraction = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t wire_bytes = 0;
  /// Messages resolved by a worker other than the shard's owner —
  /// ParallelNativeEngine's work stealing (0 elsewhere, and 0 there
  /// when stealing is off or the load never skews).
  std::uint64_t stolen_messages = 0;

  // Recovery events (cluster backend; 0 elsewhere and on a healthy
  // run). `messages` above counts actual sends, so under faults
  // messages > the no-fault chunk count by roughly retries + failovers.
  /// Re-sends of unanswered chunks (covers dropped/corrupted/delayed
  /// frames and nudges at suspect nodes).
  std::uint64_t retries = 0;
  /// Chunks re-routed to a surviving replica after their node died or
  /// exhausted its retries.
  std::uint64_t failovers = 0;
  /// DEAD nodes re-admitted (join handshake + shard re-scatter) during
  /// this report's window. Index-lifetime events, attributed to the
  /// first batch waited after they happened.
  std::uint64_t rejoins = 0;
  /// Wall time those re-joins took, end to end.
  std::uint64_t recovery_ns = 0;

  /// Per-query response time in ns (read by the dispatcher -> result
  /// delivered), populated when ExperimentConfig::track_latency is set.
  /// This is what the paper's "response time" axis means: how long a
  /// query waits on batching before its answer exists (Sec. 4.1's
  /// Method-A-responds-fastest observation falls out of it).
  ///
  /// Clock domain is per backend: the simulator records VIRTUAL time
  /// from its cost model; the native backends record measured WALL time
  /// from Client::submit (plus any pre-submit queue wait the caller
  /// declared via submit()'s queued_ns) to the completion stamp of the
  /// message that resolved the query. Memory is bounded regardless of
  /// query count: Summary degrades from exact samples to a log-bucketed
  /// histogram past Summary::kExactCap, so million-query sessions pay
  /// ~48 KB, not O(n).
  Summary latency_ns;

  std::vector<NodeReport> nodes;

  /// Fold a subsequent batch's report into this one with *sequential*
  /// semantics — the stream served batch after batch on the same built
  /// index, so makespans add and counters add. Client::wait uses this
  /// to maintain the client's total().
  ///
  /// Per-node detail: `nodes` layouts are backend-defined (the sim
  /// reports every simulated node, ParallelNativeEngine dispatcher +
  /// workers, NativeEngine none), so element-wise addition is only
  /// meaningful when both reports describe the same node set. The
  /// chosen — and defended — semantics for a size mismatch (e.g.
  /// reports from different backends, or a backend that changed shape
  /// mid-stream): the scalar totals above stay exact, and `nodes` is
  /// emptied rather than concatenated or truncated, because a partial
  /// or mixed per-node sum would silently misattribute work. Callers
  /// needing per-node detail across a merge must keep layouts equal;
  /// an empty `nodes` after merge is the documented "detail dropped"
  /// signal, never UB. Merging across *methods* is a programming error
  /// and aborts.
  void merge(const RunReport& other) {
    DICI_CHECK_FMT(method == other.method,
                   "RunReport::method mismatch: merging %s into %s — totals "
                   "from different methods are not comparable",
                   method_name(other.method), method_name(method));
    const picos_t prev_raw = raw_makespan;
    num_queries += other.num_queries;
    raw_makespan += other.raw_makespan;
    makespan += other.makespan;
    messages += other.messages;
    wire_bytes += other.wire_bytes;
    stolen_messages += other.stolen_messages;
    retries += other.retries;
    failovers += other.failovers;
    rejoins += other.rejoins;
    recovery_ns += other.recovery_ns;
    // Idle fraction is a rate, not a counter: weight each batch's value
    // by the wall (raw) time over which it was observed. When both
    // makespans are zero there is no observation time to reweight over,
    // so the previously accumulated value is PRESERVED — zeroing it
    // would let an empty-batch merge erase real idle measurements.
    if (raw_makespan > 0) {
      slave_idle_fraction =
          (slave_idle_fraction * static_cast<double>(prev_raw) +
           other.slave_idle_fraction *
               static_cast<double>(other.raw_makespan)) /
          static_cast<double>(raw_makespan);
    }
    latency_ns.merge(other.latency_ns);
    // Same layout: element-wise. Mismatch: drop detail (see above).
    if (nodes.size() == other.nodes.size()) {
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        NodeReport& n = nodes[i];
        const NodeReport& o = other.nodes[i];
        n.finish += o.finish;
        n.busy += o.busy;
        n.idle += o.idle;
        n.queries += o.queries;
        n.charges.compute += o.charges.compute;
        n.charges.l2_hit += o.charges.l2_hit;
        n.charges.memory += o.charges.memory;
        n.charges.stream += o.charges.stream;
        n.charges.tlb += o.charges.tlb;
        n.l1.hits += o.l1.hits;
        n.l1.misses += o.l1.misses;
        n.l1.evictions += o.l1.evictions;
        n.l2.hits += o.l2.hits;
        n.l2.misses += o.l2.misses;
        n.l2.evictions += o.l2.evictions;
        n.tlb.hits += o.tlb.hits;
        n.tlb.misses += o.tlb.misses;
        n.nic.messages_sent += o.nic.messages_sent;
        n.nic.bytes_sent += o.nic.bytes_sent;
        n.nic.messages_received += o.nic.messages_received;
        n.nic.bytes_received += o.nic.bytes_received;
        n.nic.egress_busy += o.nic.egress_busy;
        n.nic.ingress_busy += o.nic.ingress_busy;
      }
    } else {
      nodes.clear();
    }
  }
};

}  // namespace dici::core
