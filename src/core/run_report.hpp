// Result of one simulated (or native) experiment run.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/config.hpp"
#include "src/net/sim_network.hpp"
#include "src/util/stats.hpp"
#include "src/sim/cache.hpp"
#include "src/sim/probe.hpp"
#include "src/sim/tlb.hpp"
#include "src/util/types.hpp"

namespace dici::core {

/// Per-node accounting. Node 0 is the master for distributed methods;
/// replicated methods report their single measured node.
struct NodeReport {
  picos_t finish = 0;  ///< node-local clock when its last work completed
  picos_t busy = 0;    ///< time charged by the probe (CPU + memory)
  picos_t idle = 0;    ///< waited on message arrivals
  std::uint64_t queries = 0;
  sim::ChargeBreakdown charges;
  sim::CacheStats l1;
  sim::CacheStats l2;
  sim::TlbStats tlb;
  net::NicStats nic;
};

struct RunReport {
  Method method{};
  std::uint64_t num_queries = 0;
  std::uint32_t num_nodes = 1;
  std::uint64_t batch_bytes = 0;

  /// Virtual time until every result was delivered, unnormalized.
  picos_t raw_makespan = 0;
  /// Normalized makespan: raw / num_nodes for replicated methods when
  /// the config asks for it (Sec. 4.1's fairness rule), raw otherwise.
  picos_t makespan = 0;

  double seconds() const { return ps_to_sec(makespan); }
  double per_key_ns() const {
    return num_queries ? ps_to_ns(makespan) / static_cast<double>(num_queries)
                       : 0.0;
  }
  /// Queries per second at the normalized makespan.
  double throughput_qps() const {
    return seconds() > 0 ? static_cast<double>(num_queries) / seconds() : 0.0;
  }

  /// Mean over slaves of (1 - busy/raw_makespan); 0 for A/B.
  double slave_idle_fraction = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t wire_bytes = 0;

  /// Per-query response time in ns (read by the dispatcher -> result
  /// delivered), populated when ExperimentConfig::track_latency is set.
  /// This is what the paper's "response time" axis means: how long a
  /// query waits on batching before its answer exists (Sec. 4.1's
  /// Method-A-responds-fastest observation falls out of it).
  Summary latency_ns;

  std::vector<NodeReport> nodes;
};

}  // namespace dici::core
