// DistributedInCacheIndex — the library's primary public API.
//
// Owns a sorted, de-duplicated key set, partitions it into cache-sized
// ranges (one per "node"), and answers rank queries either directly, in
// parallel over native threads (Method C-3's shape), or — via
// SimCluster — on the simulated cluster for what-if studies.
//
// Typical use (see examples/quickstart.cpp):
//
//   DistributedInCacheIndex index(std::move(keys), /*partitions=*/8);
//   auto owner = index.route(key);          // which node manages `key`
//   auto rank  = index.lookup(key);         // global upper-bound rank
//   auto ranks = index.lookup_batch(keys);  // parallel batched lookups
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/native_engine.hpp"
#include "src/index/partitioner.hpp"
#include "src/util/types.hpp"

namespace dici {

class DistributedInCacheIndex {
 public:
  /// Takes ownership of `keys`; sorts and de-duplicates them. `partitions`
  /// is the number of slave nodes the index is spread over (the paper's
  /// rule of thumb: enough that each partition fits one L2 cache).
  DistributedInCacheIndex(std::vector<key_t> keys, std::uint32_t partitions);

  /// Suggest a partition count such that every partition fits within
  /// `cache_bytes` (e.g. the slaves' L2 size).
  static std::uint32_t partitions_for_cache(std::size_t num_keys,
                                            std::uint64_t cache_bytes);

  std::size_t size() const { return keys_.size(); }
  std::uint32_t partitions() const { return partitioner_.parts(); }
  std::span<const key_t> keys() const { return keys_; }
  const index::RangePartitioner& partitioner() const { return partitioner_; }

  /// The node responsible for `key` (the master's dispatch decision).
  std::uint32_t route(key_t key) const { return partitioner_.route(key); }

  /// Global upper-bound rank of `key`: the number of index keys <= key.
  rank_t lookup(key_t key) const;

  /// True iff `key` is present in the index.
  bool contains(key_t key) const;

  /// Batched parallel lookup over master+slave threads (Method C-3's
  /// dataflow). `batch_bytes` is the dispatch granularity; 0 picks a
  /// default. Results are in query order.
  std::vector<rank_t> lookup_batch(std::span<const key_t> queries,
                                   std::uint64_t batch_bytes = 0) const;

 private:
  std::vector<key_t> keys_;
  index::RangePartitioner partitioner_;
};

}  // namespace dici
