#include "src/core/store.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/assert.hpp"

namespace dici::core {

// --- Options ---------------------------------------------------------------

void validate(const StoreOptions& options) {
  DICI_CHECK_FMT(options.max_delta_keys >= 1,
                 "StoreOptions::max_delta_keys = %zu: the write path needs "
                 "room for at least one pending delta entry",
                 options.max_delta_keys);
  DICI_CHECK_FMT(options.rebuild_trigger_fraction > 0.0 &&
                     options.rebuild_trigger_fraction <= 1.0,
                 "StoreOptions::rebuild_trigger_fraction = %g: must be in "
                 "(0, 1]",
                 options.rebuild_trigger_fraction);
  DICI_CHECK_FMT(options.writer_threads >= 1 && options.writer_threads <= 256,
                 "StoreOptions::writer_threads = %u: the background fold "
                 "splits across 1..256 threads",
                 options.writer_threads);
}

StoreOptions store_options_from(const ExperimentConfig& config) {
  validate(config);
  StoreOptions options;
  options.max_delta_keys = config.max_delta_keys;
  options.rebuild_trigger_fraction = config.rebuild_trigger_fraction;
  options.writer_threads = config.writer_threads;
  return options;
}

// --- Generation ------------------------------------------------------------

Generation::Generation(std::shared_ptr<const Index> base,
                       std::shared_ptr<const index::DeltaSnapshot> delta,
                       std::uint64_t epoch)
    : base_(std::move(base)), delta_(std::move(delta)), epoch_(epoch) {
  DICI_CHECK(base_ != nullptr);
  DICI_CHECK(delta_ != nullptr);
}

std::size_t Generation::live_keys() const {
  return static_cast<std::size_t>(
      static_cast<std::int64_t>(base_->size()) + delta_->net());
}

// --- Writer ----------------------------------------------------------------

Writer::~Writer() { store_->flush(); }

std::size_t Writer::insert(std::span<const key_t> keys) {
  return store_->apply_insert(keys);
}

std::size_t Writer::erase(std::span<const key_t> keys) {
  return store_->apply_erase(keys);
}

std::uint64_t Writer::flush() { return store_->flush(); }

// --- The generation-aware read client --------------------------------------

namespace {

/// Pins one ticket's generation (base Index + delta snapshot) and the
/// inner backend client that carries it, for as long as the ticket is
/// in flight. When the last completion of a retired generation settles,
/// the shared_ptr chain unwinds and the old base's machinery (worker
/// fleet, rings) tears down — RCU reclamation by refcount.
class GenCompletion : public Client::Completion {
 public:
  GenCompletion(std::shared_ptr<Client> inner,
                std::shared_ptr<const Generation> gen, Ticket ticket)
      : inner_(std::move(inner)), gen_(std::move(gen)), ticket_(ticket) {}

  bool ready() const override { return inner_->ready(ticket_); }
  RunReport await() override { return inner_->wait(ticket_); }

 private:
  std::shared_ptr<Client> inner_;
  std::shared_ptr<const Generation> gen_;
  Ticket ticket_;
};

/// The Client a Store hands out: each submit loads the current
/// generation (lock-free), lazily reconnects its inner backend client
/// when the BASE moved (a flush that only grew the delta reuses the
/// warm connection), and forwards the generation's delta snapshot
/// through SubmitOptions so the backend folds live-set corrections at
/// resolve time. Single-stream like every Client; the inner client is
/// only ever touched from this stream's thread.
class StoreClient final : public Client {
 public:
  StoreClient(std::shared_ptr<const Store> store,
              std::shared_ptr<const Generation> gen)
      : Client(gen->base()),
        store_(std::move(store)),
        gen_(std::move(gen)),
        inner_(gen_->base()->connect()) {}

  const char* backend() const override { return inner_->backend(); }
  const Index& index() const override { return *gen_->base(); }

 private:
  std::unique_ptr<Completion> do_submit(
      std::span<const key_t> queries, std::vector<rank_t>* out_ranks,
      const SubmitOptions& options) override {
    std::shared_ptr<const Generation> gen = store_->current();
    if (gen != gen_) {
      if (gen->base() != gen_->base()) {
        // Generation swap: new submits ride the fresh base; tickets in
        // flight keep the old inner client (and fleet) alive through
        // their GenCompletions until waited.
        inner_ = std::shared_ptr<Client>(gen->base()->connect());
        rebind_index(gen->base());
      }
      gen_ = std::move(gen);
    }
    SubmitOptions forwarded = options;
    forwarded.delta = gen_->delta()->empty() ? nullptr : gen_->delta();
    const Ticket ticket = inner_->submit(queries, out_ranks, forwarded);
    return std::make_unique<GenCompletion>(inner_, gen_, ticket);
  }

  std::shared_ptr<const Store> store_;
  std::shared_ptr<const Generation> gen_;
  std::shared_ptr<Client> inner_;
};

}  // namespace

// --- Store -----------------------------------------------------------------

std::shared_ptr<Store> Store::create(std::unique_ptr<const Engine> engine,
                                     std::span<const key_t> initial_keys,
                                     StoreOptions options) {
  // Not make_shared: the constructor is private (the rebuild thread and
  // enable_shared_from_this demand a heap-owned store).
  return std::shared_ptr<Store>(
      new Store(std::move(engine), initial_keys, options));
}

Store::Store(std::unique_ptr<const Engine> engine,
             std::span<const key_t> initial_keys, StoreOptions options)
    : engine_(std::move(engine)), options_(options) {
  DICI_CHECK(engine_ != nullptr);
  validate(options_);
  trigger_keys_ = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::ceil(static_cast<double>(options_.max_delta_keys) *
                    options_.rebuild_trigger_fraction)),
      1, options_.max_delta_keys);
  base_ = engine_->build(initial_keys);
  publish_locked();  // epoch 1: the initial build, delta empty
  rebuild_thread_ = std::thread([this] { rebuild_loop(); });
}

Store::~Store() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  rebuild_cv_.notify_all();
  fold_cv_.notify_all();
  rebuild_thread_.join();
}

std::unique_ptr<Client> Store::connect() const {
  return std::make_unique<StoreClient>(shared_from_this(), current());
}

std::unique_ptr<Writer> Store::writer() {
  return std::unique_ptr<Writer>(new Writer(shared_from_this()));
}

std::int64_t Store::live_locked() const {
  return static_cast<std::int64_t>(base_->size()) + delta_.net();
}

void Store::publish_locked() {
  ++epoch_;
  current_.store(
      std::make_shared<const Generation>(base_, delta_.snapshot(), epoch_),
      std::memory_order_release);
  dirty_ = false;
}

std::size_t Store::delta_keys() const {
  std::lock_guard lock(mu_);
  return delta_.size();
}

void Store::wait_rebuilds_idle() const {
  std::unique_lock lock(mu_);
  fold_cv_.wait(lock, [&] {
    // An all-erased store (live 0) cannot fold — treat it as idle
    // rather than waiting for an insert that may never come.
    return (delta_.size() < trigger_keys_ || live_locked() <= 0) &&
           !rebuild_active_.load(std::memory_order_acquire);
  });
}

std::size_t Store::apply_insert(std::span<const key_t> keys) {
  std::unique_lock lock(mu_);
  std::size_t changed = 0;
  std::size_t i = 0;
  while (i < keys.size()) {
    // Backpressure: never grow the delta past max_delta_keys — block
    // until the background fold drains it. The live==0 escape keeps an
    // emptied-out store insertable (nothing to fold until a key is
    // live, so waiting would deadlock).
    fold_cv_.wait(lock, [&] {
      return stop_ || delta_.size() < options_.max_delta_keys ||
             live_locked() <= 0;
    });
    if (stop_) break;
    const std::size_t room = delta_.size() < options_.max_delta_keys
                                 ? options_.max_delta_keys - delta_.size()
                                 : keys.size() - i;
    const std::size_t n = std::min(room, keys.size() - i);
    const std::size_t c = delta_.insert(keys.subspan(i, n), base_->keys());
    changed += c;
    if (c > 0) dirty_ = true;
    i += n;
    if (delta_.size() >= trigger_keys_ && live_locked() > 0)
      rebuild_cv_.notify_one();
  }
  return changed;
}

std::size_t Store::apply_erase(std::span<const key_t> keys) {
  std::unique_lock lock(mu_);
  std::size_t changed = 0;
  std::size_t i = 0;
  while (i < keys.size()) {
    fold_cv_.wait(lock, [&] {
      return stop_ || delta_.size() < options_.max_delta_keys ||
             live_locked() <= 0;
    });
    if (stop_) break;
    const std::size_t room = delta_.size() < options_.max_delta_keys
                                 ? options_.max_delta_keys - delta_.size()
                                 : keys.size() - i;
    const std::size_t n = std::min(room, keys.size() - i);
    const std::size_t c = delta_.erase(keys.subspan(i, n), base_->keys());
    changed += c;
    if (c > 0) dirty_ = true;
    i += n;
    if (delta_.size() >= trigger_keys_ && live_locked() > 0)
      rebuild_cv_.notify_one();
  }
  return changed;
}

std::uint64_t Store::flush() {
  std::lock_guard lock(mu_);
  if (dirty_) publish_locked();
  return epoch_;
}

void Store::rebuild_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    rebuild_cv_.wait(lock, [&] {
      return stop_ || (delta_.size() >= trigger_keys_ && live_locked() > 0);
    });
    if (stop_) return;
    rebuild_active_.store(true, std::memory_order_release);
    // Freeze the fold input, then run the heavy part UNLOCKED: writers
    // keep appending to the buffer (validated against the still-current
    // old base) and readers keep resolving against the published
    // generation the whole time.
    const std::shared_ptr<const Index> base = base_;
    const std::shared_ptr<const index::DeltaSnapshot> folded =
        delta_.snapshot();
    lock.unlock();
    const std::vector<key_t> keys =
        index::fold_delta(base->keys(), *folded, options_.writer_threads);
    // The backend's FULL build: for parallel-native that is a fresh
    // partitioner, placement copies first-touched on a fresh pinned
    // fleet, and new dispatch hubs — the new generation is as warm as
    // the first one. live > 0 at snapshot time, so keys is non-empty.
    std::shared_ptr<const Index> fresh = engine_->build(keys);
    lock.lock();
    // Writes that raced the fold survive, re-expressed against the new
    // base (including inverse entries for mid-fold cancellations).
    delta_.rebase(*folded);
    base_ = std::move(fresh);
    publish_locked();
    rebuilds_.fetch_add(1, std::memory_order_acq_rel);
    rebuild_active_.store(false, std::memory_order_release);
    fold_cv_.notify_all();
  }
}

std::shared_ptr<Store> make_store(Backend backend,
                                  const ExperimentConfig& config,
                                  std::span<const key_t> initial_keys) {
  return Store::create(make_engine(backend, config), initial_keys,
                       store_options_from(config));
}

}  // namespace dici::core
