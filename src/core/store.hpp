// Engine API v3: the mutable-index store.
//
// A Store wraps any backend's immutable build/connect/submit machinery
// (core/engine.hpp) in a write path, turning the static lookup table
// into a live serving store:
//
//   store = Store::create(make_engine(backend, config), keys)   — or
//   store = make_store(backend, config, keys)
//   reader = store->connect()     // a plain core::Client — v2 surface
//   writer = store->writer()      // insert(keys) / erase(keys) / flush()
//
// Writes land in a per-store sorted delta buffer (index/delta.hpp) that
// probe paths merge into results: each read submission carries a frozen
// DeltaSnapshot via SubmitOptions::delta, and the backend folds the
// rank correction into the scatter while the batch is cache-hot. A
// background rebuild thread folds the delta into a fresh immutable
// Index generation — re-running the backend's full build, so
// ParallelNativeEngine re-places shards first-touch on a fresh pinned
// fleet — and publishes it by RCU/epoch swap:
//
//   std::atomic<std::shared_ptr<const Generation>>
//
// Readers never block and writers never stall readers: a read submit is
// one lock-free atomic load of the current generation; in-flight
// tickets pin their generation (base Index + snapshot) by shared_ptr
// and finish against it even while a newer generation is published; the
// old generation's fleet is torn down only after its last pinned reader
// drops it. Writers serialize against each other and the rebuild on the
// store's write mutex, and block only when the delta hits
// StoreOptions::max_delta_keys (backpressure until the fold catches
// up).
//
// Visibility: a write becomes reader-visible when a generation carrying
// it is published — Writer::flush() is the explicit barrier ("all my
// writes so far are visible to subsequently submitted reads"), and a
// background rebuild may publish buffered writes earlier. Reads always
// see some published prefix-consistent live set, and every rank is the
// exact std::upper_bound over that generation's (base \ erased) ∪
// inserted.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "src/core/engine.hpp"
#include "src/index/delta.hpp"

namespace dici::core {

/// Knobs of the write path; the ExperimentConfig fields of the same
/// names map onto this (store_options_from).
struct StoreOptions {
  /// Hard bound on pending delta entries; writers block past it until
  /// the background rebuild folds the delta down. >= 1.
  std::size_t max_delta_keys = 4096;
  /// Fraction of max_delta_keys at which the rebuild wakes (in (0, 1]).
  double rebuild_trigger_fraction = 0.5;
  /// Threads index::fold_delta may split the background merge across
  /// (1..256; auto-clamped on small bases).
  std::uint32_t writer_threads = 1;
};

/// Field+value validation, same DICI_CHECK discipline as
/// core::validate().
void validate(const StoreOptions& options);

/// The ExperimentConfig -> StoreOptions mapping used by make_store.
StoreOptions store_options_from(const ExperimentConfig& config);

/// One published epoch of the store: an immutable base Index plus the
/// frozen delta snapshot that was pending when it was published. A
/// generation is what an in-flight ticket resolves against — pinned by
/// shared_ptr, so rebuilds never invalidate it; the base's machinery
/// (e.g. the parallel backend's worker fleet) lives exactly as long as
/// the last pin.
class Generation {
 public:
  Generation(std::shared_ptr<const Index> base,
             std::shared_ptr<const index::DeltaSnapshot> delta,
             std::uint64_t epoch);

  const std::shared_ptr<const Index>& base() const { return base_; }
  /// Never null; empty() when the generation is exactly its base.
  const std::shared_ptr<const index::DeltaSnapshot>& delta() const {
    return delta_;
  }
  /// Monotonic publication counter (1 = the initial build).
  std::uint64_t epoch() const { return epoch_; }
  /// |(base \ erased) ∪ inserted| — the live key count readers answer
  /// against.
  std::size_t live_keys() const;

 private:
  std::shared_ptr<const Index> base_;
  std::shared_ptr<const index::DeltaSnapshot> delta_;
  std::uint64_t epoch_;
};

class Store;

/// One write stream into a Store. insert()/erase() buffer net effects
/// into the store's delta (blocking only on max_delta_keys
/// backpressure); flush() publishes them to readers. Several Writers
/// may exist concurrently — they serialize on the store's write mutex.
/// Destruction flushes. Not thread-safe within one Writer (one stream,
/// like Client).
class Writer {
 public:
  ~Writer();  // flush()es pending writes

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Make `keys` live. Returns how many actually changed state (keys
  /// already live are no-ops). May block on delta backpressure.
  std::size_t insert(std::span<const key_t> keys);

  /// Make `keys` dead. Returns how many actually changed state (keys
  /// not live are no-ops).
  std::size_t erase(std::span<const key_t> keys);

  /// Publish every buffered write: reads submitted after flush()
  /// returns see them. Returns the published epoch (unchanged when
  /// nothing was pending).
  std::uint64_t flush();

 private:
  friend class Store;
  explicit Writer(std::shared_ptr<Store> store) : store_(std::move(store)) {}

  std::shared_ptr<Store> store_;
};

/// The v3 handle: one mutable logical index served by one backend.
/// connect() hands out ordinary core::Clients (the whole v2 read
/// surface — tickets, pipelining, drain — unchanged); writer() hands
/// out the write stream. Thread-safe: any number of readers, writers
/// and the background rebuild may run concurrently.
class Store : public std::enable_shared_from_this<Store> {
 public:
  /// Build the initial generation from `initial_keys` (sorted, unique,
  /// non-empty) and start the background rebuild thread. The store owns
  /// the engine (rebuilds keep calling engine->build()).
  static std::shared_ptr<Store> create(std::unique_ptr<const Engine> engine,
                                       std::span<const key_t> initial_keys,
                                       StoreOptions options = {});

  ~Store();  // stops and joins the rebuild thread

  /// A generation-aware read client: each submit resolves against the
  /// generation current AT SUBMIT (one lock-free atomic load), carrying
  /// its delta snapshot through SubmitOptions::delta; in-flight tickets
  /// keep their generation pinned across any number of swaps. The
  /// caller-facing contract is exactly core::Client's.
  std::unique_ptr<Client> connect() const;

  /// A write stream (see Writer).
  std::unique_ptr<Writer> writer();

  /// The currently published generation (lock-free load; never null).
  std::shared_ptr<const Generation> current() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Monotonic publication counter of current().
  std::uint64_t epoch() const { return current()->epoch(); }
  /// Live key count of current().
  std::size_t live_keys() const { return current()->live_keys(); }
  /// Completed background fold+publish cycles.
  std::uint64_t rebuilds() const {
    return rebuilds_.load(std::memory_order_acquire);
  }
  /// True while the background thread is folding/building a generation
  /// (the window bench_updates buckets read latency by).
  bool rebuild_active() const {
    return rebuild_active_.load(std::memory_order_acquire);
  }
  /// Pending delta entries (published or not).
  std::size_t delta_keys() const;

  /// Test/bench hook: block until the delta is below the rebuild
  /// trigger and no fold is in progress. Only terminates if writers
  /// pause; readers are irrelevant to it.
  void wait_rebuilds_idle() const;

  const StoreOptions& options() const { return options_; }
  const Engine& engine() const { return *engine_; }

 private:
  friend class Writer;

  Store(std::unique_ptr<const Engine> engine,
        std::span<const key_t> initial_keys, StoreOptions options);

  /// Writer entry points (serialized on mu_).
  std::size_t apply_insert(std::span<const key_t> keys);
  std::size_t apply_erase(std::span<const key_t> keys);
  std::uint64_t flush();

  std::int64_t live_locked() const;
  void publish_locked();
  void rebuild_loop();

  std::unique_ptr<const Engine> engine_;
  StoreOptions options_;
  std::size_t trigger_keys_;  ///< ceil(max * fraction), clamped to [1, max]

  mutable std::mutex mu_;  ///< write/rebuild state below
  index::DeltaBuffer delta_;
  std::shared_ptr<const Index> base_;  ///< current() generation's base
  std::uint64_t epoch_ = 0;
  bool dirty_ = false;  ///< buffered writes not yet in current()
  bool stop_ = false;
  std::condition_variable rebuild_cv_;      ///< wakes the rebuild thread
  mutable std::condition_variable fold_cv_;  ///< signals fold completions

  /// The RCU publish point: readers load, the write side stores under
  /// mu_. An in-flight ticket's shared_ptr keeps its generation (and
  /// the base's worker fleet) alive across any number of swaps.
  std::atomic<std::shared_ptr<const Generation>> current_;

  std::atomic<std::uint64_t> rebuilds_{0};
  std::atomic<bool> rebuild_active_{false};
  std::thread rebuild_thread_;
};

/// Factory mirror of make_engine for the v3 surface: backend + config
/// + initial keys -> a running Store (config's max_delta_keys /
/// rebuild_trigger_fraction / writer_threads become the StoreOptions).
std::shared_ptr<Store> make_store(Backend backend,
                                  const ExperimentConfig& config,
                                  std::span<const key_t> initial_keys);

}  // namespace dici::core
