// AdaptiveBatcher — size-or-deadline batching for the serving layer.
//
// examples/db_dispatch.cpp computes batch-fill latency analytically (a
// query waits keys_per_batch / arrival_rate for its round to flush);
// this class is that trade-off promoted to a real mechanism. Arriving
// queries accumulate until EITHER the batch is full (max_keys — the
// throughput side: big rounds amortize dispatch) OR the oldest query
// has waited max_delay_ns (the tail-latency side: under a trickle, no
// query is held hostage to a batch that will never fill). Under load
// the size trigger fires and the deadline is never consulted; under a
// trickle the deadline bounds the batching contribution to response
// time at max_delay_ns, whatever the arrival rate does.
//
// The batcher is a pure data structure: the caller passes `now_ns` into
// every time-dependent call, so tests drive the boundary cases
// (exactly-full vs one-short, deadline-minus-one vs deadline) with a
// synthetic clock and no sleeps. take() returns, alongside the keys,
// each query's already-accrued wait — exactly the queued_ns span
// Client::submit accepts, so end-to-end latency = batcher wait (known
// here) + submit-to-resolve (measured by the engine), with no
// percentile arithmetic on the caller's side.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/assert.hpp"
#include "src/util/types.hpp"

namespace dici::core {

class AdaptiveBatcher {
 public:
  struct Batch {
    std::vector<key_t> keys;
    /// Per-key wait already accrued at flush time (flush now - arrival),
    /// parallel to `keys` — pass straight to Client::submit's queued_ns.
    std::vector<double> queued_ns;
  };

  /// Flush when `max_keys` have accumulated or the oldest pending query
  /// is `max_delay_ns` old, whichever comes first.
  AdaptiveBatcher(std::size_t max_keys, double max_delay_ns)
      : max_keys_(max_keys), max_delay_ns_(max_delay_ns) {
    DICI_CHECK_FMT(max_keys > 0, "max_keys = %zu must be > 0", max_keys);
    DICI_CHECK_FMT(max_delay_ns >= 0, "max_delay_ns = %.3f must be >= 0",
                   max_delay_ns);
  }

  /// Queue one query that arrived at `arrival_ns` (caller's clock;
  /// nondecreasing across calls).
  void push(key_t key, double arrival_ns) {
    pending_.keys.push_back(key);
    arrivals_.push_back(arrival_ns);
  }

  std::size_t size() const { return pending_.keys.size(); }
  bool empty() const { return pending_.keys.empty(); }

  /// True when the pending batch should be submitted: full, or the
  /// oldest query's age has reached the deadline. An empty batcher
  /// never flushes.
  bool should_flush(double now_ns) const {
    if (pending_.keys.empty()) return false;
    if (pending_.keys.size() >= max_keys_) return true;
    return now_ns - arrivals_.front() >= max_delay_ns_;
  }

  /// When the batcher is non-empty and the size trigger has not fired,
  /// the time at which the deadline trigger will: poll loops sleep
  /// until min(next arrival, next_deadline_ns()).
  double next_deadline_ns() const {
    DICI_CHECK(!arrivals_.empty());
    return arrivals_.front() + max_delay_ns_;
  }

  /// Flush: return the pending keys with each query's accrued wait
  /// (now - arrival) and reset. Callable whether or not should_flush
  /// says so (the serving loop force-flushes at end of stream).
  Batch take(double now_ns) {
    pending_.queued_ns.reserve(arrivals_.size());
    for (const double arrival : arrivals_)
      pending_.queued_ns.push_back(now_ns - arrival);
    arrivals_.clear();
    return std::exchange(pending_, Batch{});
  }

  std::size_t max_keys() const { return max_keys_; }
  double max_delay_ns() const { return max_delay_ns_; }

 private:
  std::size_t max_keys_;
  double max_delay_ns_;
  Batch pending_;
  std::vector<double> arrivals_;
};

}  // namespace dici::core
