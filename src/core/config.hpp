// Experiment configuration shared by the simulated and native engines.
#pragma once

#include <cstdint>

#include "src/arch/machine.hpp"
#include "src/index/fast_search.hpp"
#include "src/index/geometry.hpp"
#include "src/index/placement.hpp"
#include "src/net/transport.hpp"
#include "src/util/bytes.hpp"

namespace dici::core {

// The search-kernel vocabulary lives with the kernels (index layer);
// re-exported here because ExperimentConfig carries the choice and every
// backend seam speaks core::SearchKernel.
using index::KeyLayout;
using index::SearchKernel;
using index::all_search_kernels;
using index::kernel_layout;
using index::key_layout_name;
using index::parse_search_kernel;
using index::search_kernel_name;
using index::search_kernel_valid;

// Likewise the shard-placement vocabulary (index layer): where each
// shard's key copies live relative to the NUMA node of the workers that
// probe them.
using index::Placement;
using index::all_placements;
using index::parse_placement;
using index::placement_name;
using index::placement_valid;

/// The five strategies of Sections 1/3.
enum class Method {
  kA,   ///< replicated n-ary tree, one-by-one lookups
  kB,   ///< replicated n-ary tree, Zhou-Ross buffered batches (L2)
  kC1,  ///< distributed in-cache: CSB+ tree per slave
  kC2,  ///< distributed in-cache: buffered tree per slave (L1)
  kC3,  ///< distributed in-cache: sorted array per slave
};

const char* method_name(Method method);

/// When does the master flush a slave's staging buffer? (Sec. 4.1 leaves
/// this implicit; both readings are implemented.)
enum class FlushPolicy {
  /// The master ingests batch_bytes of the query stream, then sends every
  /// non-empty staging buffer (message size ~ batch/slaves). Keeps the
  /// pipeline full at any batch size; the default and the semantics that
  /// reproduces Figure 3.
  kMasterRound,
  /// A slave's buffer is sent only once it holds batch_bytes itself
  /// (message size = batch). Fewer, larger messages — but at large
  /// batches slaves starve until the very end of the stream (quantified
  /// in bench_ablation_flush_policy).
  kPerSlaveThreshold,
};

const char* flush_policy_name(FlushPolicy policy);

/// True for the partitioned (master/slave) methods.
constexpr bool is_distributed(Method m) {
  return m == Method::kC1 || m == Method::kC2 || m == Method::kC3;
}

struct ExperimentConfig {
  Method method = Method::kC3;
  arch::MachineSpec machine;
  /// Cluster size. For Methods A/B this is the replication degree used
  /// for normalization; for Method C it is num_masters masters +
  /// (num_nodes - num_masters) slaves (the paper's 11-node setup is one
  /// master + ten slaves, Sec. 4.1).
  std::uint32_t num_nodes = 11;
  /// Method C master count. The paper's Sec. 3.2 remark: "if there is a
  /// heavy load of incoming queries, a single master node could become
  /// overloaded. This is easily remedied by setting up multiple master
  /// nodes, with replicates of the top level data structure." Each
  /// master routes an equal share of the query stream.
  std::uint32_t num_masters = 1;
  /// Batch of query bytes the master ingests per dispatch round (x-axis
  /// of Figure 3). Method B uses the same value as its buffered-pass
  /// batch; Method A ignores it.
  std::uint64_t batch_bytes = 128 * KiB;
  /// Divide Methods A/B's single-node time by num_nodes, crediting them
  /// a free, perfectly balanced dispatcher (the paper's protocol).
  bool normalize_replicated = true;
  /// Whether streamed buffers occupy simulated cache lines (Sec. 4.1
  /// contention). Off isolates pure bandwidth behaviour.
  bool pollute_streams = true;
  /// Whether incoming messages (DMA) occupy the receiving slave's cache.
  bool dma_pollution = true;
  /// Fraction of the buffered methods' target cache reserved for buffers.
  double buffer_fraction = 0.5;
  /// Wire framing per message (MPI envelope + GM header).
  std::uint64_t message_header_bytes = 64;
  /// Master flush semantics for Method C (see FlushPolicy).
  FlushPolicy flush_policy = FlushPolicy::kMasterRound;
  /// Exact upper_bound kernel the NATIVE backends' C-3 slaves probe
  /// with (see index/fast_search.hpp for the menu). Never changes a
  /// result, only native wall time; the simulator's cost model already
  /// abstracts comparator behaviour, so its reports ignore it.
  SearchKernel kernel = SearchKernel::kBranchless;
  /// Where ParallelNativeEngine lays each shard's key copies relative
  /// to the NUMA node of the workers probing them (index/placement.hpp
  /// for the menu; machine.numa_nodes picks real vs simulated
  /// topology). Like `kernel`, it never changes a result — only native
  /// wall time — and the other backends ignore it.
  Placement placement = Placement::kInterleave;
  /// Record per-query response times (arrival at the front end to result
  /// delivery) into RunReport::latency_ns. Costs memory per query.
  bool track_latency = false;

  // --- v3 write path (core/store.hpp) -------------------------------------
  // Knobs for the mutable-index Store built over any backend: writes
  // land in a sorted delta buffer (index/delta.hpp) merged into probe
  // results; a background rebuild folds the delta into a fresh Index
  // generation. Backends without a Store in front ignore all three.

  /// Hard bound on pending delta entries. A Writer whose write would
  /// grow the delta past this blocks until the background rebuild folds
  /// it down — backpressure on writers, never on readers. Must be >= 1.
  std::size_t max_delta_keys = 4096;
  /// Fraction of max_delta_keys at which the background rebuild wakes
  /// and starts folding (in (0, 1]): below 1 the fold runs while
  /// writers still have headroom, so they rarely hit the hard bound.
  double rebuild_trigger_fraction = 0.5;
  /// Threads the background fold (index::fold_delta) may split the
  /// base ∪ delta merge across. In [1, 256]; the fold auto-clamps on
  /// small bases where spawn cost would dominate.
  std::uint32_t writer_threads = 1;

  // --- Cluster backend (src/cluster/cluster_engine.hpp) -------------------
  // Knobs for Backend::kCluster, where the slaves are message-passing
  // nodes behind a net::Transport. The other backends ignore all three.

  /// How frames physically move between coordinator and nodes: the
  /// in-process SpscRing pair, a UNIX-domain socketpair, a socketpair
  /// inherited across fork/exec by a spawned dici_node process (kFork),
  /// or a loopback TCP connection to a spawned process (kTcp). Same
  /// wire-v2 bytes in all four — the ring is not allowed to pass
  /// pointers, so crossing a process boundary changes nothing above
  /// the transport.
  net::TransportKind transport = net::TransportKind::kRing;
  /// Node -> coordinator heartbeat cadence. Must be >= 1 (validated).
  std::uint32_t heartbeat_interval_ms = 25;
  /// Silence past this marks a node DEAD and fails its in-flight
  /// batches with a NodeFailureError naming the node. Must be at least
  /// 2 * heartbeat_interval_ms (validated), so one delayed beat never
  /// kills a healthy node.
  std::uint32_t heartbeat_timeout_ms = 250;
  /// Re-sends of an unanswered cluster chunk to the same node before
  /// the coordinator escalates to failover. 0 disables retries. Must be
  /// <= 1000 (validated) — beyond that the backoff cap makes extra
  /// attempts indistinguishable from polling.
  std::uint32_t max_retries = 3;
  /// Base retry backoff in microseconds; attempt k waits
  /// retry_backoff_us * 2^(k-1), exponent capped. In [100, 10'000'000]
  /// (validated): below 100us the sweeper would outpace any real
  /// transport, above 10s a retry could outlive the heartbeat verdict.
  std::uint32_t retry_backoff_us = 20'000;
  /// Re-route a dead node's unanswered chunks to a surviving replica
  /// holder (always possible under Placement::kReplicate). Off = fail
  /// fast: any death with chunks in flight throws NodeFailureError.
  bool failover = true;

  /// Node layout used by the replicated tree (Methods A/B): a classic
  /// B+-tree whose leaves hold (key, record-pointer) pairs — this is what
  /// makes the paper's Table 1 index 3.2 MB for 327 K keys.
  index::TreeConfig replicated_tree() const {
    return {machine.l2.line_bytes, index::TreeLayout::kExplicitPointers,
            /*leaf_entry_bytes=*/8};
  }
  /// Node layout used by Method C-1/C-2 slave trees. C-1 uses the CSB
  /// layout (Sec. 3.2) with packed key-only leaves (Rao & Ross bulk
  /// load); C-2 buffers over the same compact tree.
  index::TreeConfig slave_tree(Method m) const {
    return {machine.l1.line_bytes,
            m == Method::kC1 ? index::TreeLayout::kCsbFirstChild
                             : index::TreeLayout::kExplicitPointers,
            /*leaf_entry_bytes=*/4};
  }

  std::uint32_t num_slaves() const { return num_nodes - num_masters; }
};

}  // namespace dici::core
