// The discrete-event cluster engine: runs any of the five methods over
// the simulated Pentium III/Myrinet cluster (or any MachineSpec) and
// reports virtual-time results. This is the experimental apparatus for
// every table and figure in Section 4.
#pragma once

#include <span>
#include <vector>

#include "src/core/config.hpp"
#include "src/core/engine.hpp"
#include "src/core/run_report.hpp"
#include "src/util/types.hpp"

namespace dici::core {

class SimCluster : public Engine {
 public:
  explicit SimCluster(const ExperimentConfig& config);

  /// Build the shared index over `index_keys` (sorted, unique). The
  /// simulator rebuilds its virtual data structures per submission
  /// (simulated time, not wall time, is the product), so the index's
  /// job is owning the one shared key array; clients resolve each
  /// batch synchronously and determinism is preserved batch by batch.
  std::shared_ptr<const Index> build(
      std::span<const key_t> index_keys) const override;
  const char* name() const override { return backend_name(Backend::kSim); }

  /// One full simulated run (build + dispatch + drain). When `out_ranks`
  /// is non-null it receives the global upper-bound rank of every query,
  /// in query order — the hook the correctness tests use to compare
  /// every method against std::upper_bound. This is the body behind the
  /// one-shot Engine::run wrapper and every SimClient submit.
  RunReport run_once(std::span<const key_t> index_keys,
                     std::span<const key_t> queries,
                     std::vector<rank_t>* out_ranks = nullptr) const;

  const ExperimentConfig& config() const { return config_; }

 private:
  RunReport run_replicated(std::span<const key_t> index_keys,
                           std::span<const key_t> queries,
                           std::vector<rank_t>* out_ranks) const;
  RunReport run_distributed(std::span<const key_t> index_keys,
                            std::span<const key_t> queries,
                            std::vector<rank_t>* out_ranks) const;

  ExperimentConfig config_;
};

}  // namespace dici::core
