// The discrete-event cluster engine: runs any of the five methods over
// the simulated Pentium III/Myrinet cluster (or any MachineSpec) and
// reports virtual-time results. This is the experimental apparatus for
// every table and figure in Section 4.
#pragma once

#include <span>
#include <vector>

#include "src/core/config.hpp"
#include "src/core/engine.hpp"
#include "src/core/run_report.hpp"
#include "src/util/types.hpp"

namespace dici::core {

class SimCluster : public Engine {
 public:
  explicit SimCluster(const ExperimentConfig& config);

  /// Run `queries` against the index built over `index_keys` (sorted,
  /// unique). When `out_ranks` is non-null it receives the global
  /// upper-bound rank of every query, in query order — the hook the
  /// correctness tests use to compare every method against
  /// std::upper_bound.
  RunReport run(std::span<const key_t> index_keys,
                std::span<const key_t> queries,
                std::vector<rank_t>* out_ranks = nullptr) const override;
  const char* name() const override { return backend_name(Backend::kSim); }

  const ExperimentConfig& config() const { return config_; }

 private:
  RunReport run_replicated(std::span<const key_t> index_keys,
                           std::span<const key_t> queries,
                           std::vector<rank_t>* out_ranks) const;
  RunReport run_distributed(std::span<const key_t> index_keys,
                            std::span<const key_t> queries,
                            std::vector<rank_t>* out_ranks) const;

  ExperimentConfig config_;
};

}  // namespace dici::core
