#include "src/core/engine.hpp"

#include "src/core/native_engine.hpp"
#include "src/core/parallel_engine.hpp"
#include "src/core/sim_engine.hpp"
#include "src/util/assert.hpp"

namespace dici::core {

RunReport Session::run_batch(std::span<const key_t> queries,
                             std::vector<rank_t>* out_ranks) {
  RunReport report = do_run_batch(queries, out_ranks);
  if (batches_ == 0) {
    total_ = report;
  } else {
    total_.merge(report);
  }
  ++batches_;
  return report;
}

RunReport Engine::run(std::span<const key_t> index_keys,
                      std::span<const key_t> queries,
                      std::vector<rank_t>* out_ranks) const {
  return open(index_keys)->run_batch(queries, out_ranks);
}

void validate(const ExperimentConfig& config) {
  config.machine.validate();
  DICI_CHECK_MSG(config.num_nodes >= 2, "a cluster needs at least two nodes");
  DICI_CHECK(config.batch_bytes >= sizeof(key_t));
  DICI_CHECK(config.buffer_fraction > 0.0 && config.buffer_fraction <= 1.0);
  if (is_distributed(config.method)) {
    DICI_CHECK(config.num_masters >= 1);
    DICI_CHECK_MSG(config.num_nodes > config.num_masters,
                   "Method C needs at least one slave");
  }
}

void check_native_supported(const ExperimentConfig& config) {
  DICI_CHECK_MSG(config.flush_policy == FlushPolicy::kMasterRound,
                 "native backends implement master-round flushing only");
  DICI_CHECK_MSG(!config.track_latency,
                 "per-query latency tracking is simulator-only for now");
}

NativeConfig native_config_from(const ExperimentConfig& config) {
  validate(config);
  check_native_supported(config);
  DICI_CHECK_MSG(!is_distributed(config.method) || config.num_masters == 1,
                 "native backends implement a single master; multi-master "
                 "is simulator-only for now");
  NativeConfig native;
  native.method = config.method;
  native.num_nodes = config.num_nodes;
  native.batch_bytes = config.batch_bytes;
  native.buffer_fraction = config.buffer_fraction;
  return native;
}

namespace {

/// NativeCluster's session: owns a copy of the key array; every batch
/// re-runs the cluster's thread fleet over it. (NativeCluster builds its
/// per-method structures inside run(), so there is no index state to
/// keep warm — ParallelNativeEngine is the backend with a true
/// steady-state session.)
class NativeSession : public Session {
 public:
  NativeSession(const NativeConfig& config, std::span<const key_t> index_keys)
      : cluster_(config), keys_(index_keys.begin(), index_keys.end()) {}

  const char* backend() const override {
    return backend_name(Backend::kNative);
  }

 private:
  RunReport do_run_batch(std::span<const key_t> queries,
                         std::vector<rank_t>* out_ranks) override {
    const NativeReport native = cluster_.run(keys_, queries, out_ranks);
    RunReport report;
    report.method = native.method;
    report.num_queries = native.num_queries;
    report.num_nodes = native.num_nodes;
    report.batch_bytes = cluster_.config().batch_bytes;
    // No normalize_replicated division here: the simulator measures A/B
    // on ONE node and credits a free dispatcher by dividing, whereas the
    // native engine runs num_nodes real worker threads — its wall time
    // already IS the whole-cluster makespan.
    report.raw_makespan = ns_to_ps(native.seconds * 1e9);
    report.makespan = report.raw_makespan;
    report.messages = native.messages;
    return report;
  }

  NativeCluster cluster_;
  std::vector<key_t> keys_;
};

}  // namespace

std::unique_ptr<Session> NativeEngine::open(
    std::span<const key_t> index_keys) const {
  DICI_CHECK(!index_keys.empty());
  return std::make_unique<NativeSession>(cluster_.config(), index_keys);
}

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kSim: return "sim";
    case Backend::kNative: return "native";
    case Backend::kParallelNative: return "parallel-native";
  }
  return "?";
}

std::unique_ptr<Engine> make_engine(Backend backend,
                                    const ExperimentConfig& config) {
  switch (backend) {
    case Backend::kSim: return std::make_unique<SimCluster>(config);
    case Backend::kNative: return std::make_unique<NativeEngine>(config);
    case Backend::kParallelNative:
      return std::make_unique<ParallelNativeEngine>(config);
  }
  DICI_CHECK_MSG(false, "unknown backend");
  return nullptr;
}

}  // namespace dici::core
