#include "src/core/engine.hpp"

#include "src/cluster/cluster_engine.hpp"
#include "src/core/native_engine.hpp"
#include "src/core/parallel_engine.hpp"
#include "src/core/sim_engine.hpp"
#include "src/index/delta.hpp"
#include "src/util/assert.hpp"

namespace dici::core {

// --- Index ----------------------------------------------------------------

Index::Index(std::span<const key_t> index_keys)
    : keys_(index_keys.begin(), index_keys.end()) {
  DICI_CHECK_MSG(!keys_.empty(), "an index needs at least one key");
}

std::unique_ptr<Client> Index::connect() const {
  // shared_from_this() also enforces the ownership contract: an Index
  // not held by shared_ptr (never possible via Engine::build) throws.
  return do_connect(shared_from_this());
}

// --- Client ---------------------------------------------------------------

Client::Client(std::shared_ptr<const Index> index)
    : index_(std::move(index)) {
  DICI_CHECK(index_ != nullptr);
}

void Client::rebind_index(std::shared_ptr<const Index> index) {
  DICI_CHECK(index != nullptr);
  index_ = std::move(index);
}

Client::~Client() {
  // Drain-on-destroy: tickets still in flight reference caller buffers
  // (out_ranks) and shared machinery, so block until they complete.
  // Completions are self-contained, safe to await from the base dtor.
  // A completion may THROW (the cluster backend's NodeFailureError) —
  // during this destructor-context drain the failure is swallowed: the
  // await still returned, so the buffers are safe, and the caller who
  // wanted the error should have wait()ed or drain()ed before dropping
  // the client.
  for (Entry& entry : entries_) {
    if (!entry.completion) continue;
    try {
      entry.completion->await();
    } catch (...) {
    }
  }
}

Ticket Client::submit(std::span<const key_t> queries,
                      std::vector<rank_t>* out_ranks) {
  return submit(queries, out_ranks, SubmitOptions{});
}

Ticket Client::submit(std::span<const key_t> queries,
                      std::vector<rank_t>* out_ranks,
                      const SubmitOptions& options) {
  DICI_CHECK_FMT(
      options.queued_ns.empty() || options.queued_ns.size() == queries.size(),
      "submit(): queued_ns has %zu entries for %zu queries — pass "
      "one pre-submit wait per query, or none",
      options.queued_ns.size(), queries.size());
  Entry entry;
  entry.completion = do_submit(queries, out_ranks, options);
  entries_.push_back(std::move(entry));
  ++in_flight_;
  return Ticket(this, next_id_++);
}

bool Client::ready(const Ticket& ticket) const {
  DICI_CHECK_MSG(ticket.owner_ == this,
                 "Ticket belongs to a different Client (or was "
                 "default-constructed, never submit()ed)");
  DICI_CHECK(ticket.id_ < next_id_);
  DICI_CHECK_FMT(
      ticket.id_ >= base_id_ &&
          entries_[ticket.id_ - base_id_].completion != nullptr,
      "Ticket %llu was already waited — each ticket is waited exactly "
      "once; capture the RunReport from the first wait",
      static_cast<unsigned long long>(ticket.id_));
  return entries_[ticket.id_ - base_id_].completion->ready();
}

RunReport Client::wait(const Ticket& ticket) {
  DICI_CHECK_MSG(ticket.owner_ == this,
                 "Ticket belongs to a different Client (or was "
                 "default-constructed, never submit()ed)");
  DICI_CHECK(ticket.id_ < next_id_);
  DICI_CHECK_FMT(
      ticket.id_ >= base_id_ &&
          entries_[ticket.id_ - base_id_].completion != nullptr,
      "Ticket %llu was already waited — each ticket is waited exactly "
      "once; capture the RunReport from the first wait",
      static_cast<unsigned long long>(ticket.id_));
  Entry& entry = entries_[ticket.id_ - base_id_];
  RunReport report = entry.completion->await();
  entry.completion.reset();
  --in_flight_;
  // Retire the settled prefix so the ledger stays O(in-flight).
  while (!entries_.empty() && entries_.front().completion == nullptr) {
    entries_.pop_front();
    ++base_id_;
  }
  // First batch assigns (merge DICI_CHECKs method agreement, which a
  // default-constructed total_ cannot satisfy).
  if (batches_ == 0) {
    total_ = report;
  } else {
    total_.merge(report);
  }
  ++batches_;
  return report;
}

const RunReport& Client::drain() {
  // The front entry is always unsettled while anything is in flight
  // (settled entries are retired from the front), so draining is just
  // waiting the front until the ledger empties.
  while (in_flight_ > 0) wait(Ticket(this, base_id_));
  return total_;
}

RunReport Engine::run(std::span<const key_t> index_keys,
                      std::span<const key_t> queries,
                      std::vector<rank_t>* out_ranks) const {
  // v2 directly (not via the deprecated open()): one index, one client,
  // one waited ticket.
  const auto client = build(index_keys)->connect();
  return client->wait(client->submit(queries, out_ranks));
}

// --- Config validation ----------------------------------------------------

void validate(const ExperimentConfig& config) {
  config.machine.validate();
  DICI_CHECK_FMT(config.num_nodes >= 2,
                 "ExperimentConfig::num_nodes = %u: a cluster needs at least "
                 "two nodes",
                 config.num_nodes);
  DICI_CHECK_FMT(config.batch_bytes >= sizeof(key_t),
                 "ExperimentConfig::batch_bytes = %llu: a dispatch round must "
                 "hold at least one %zu-byte key",
                 static_cast<unsigned long long>(config.batch_bytes),
                 sizeof(key_t));
  DICI_CHECK_FMT(
      config.buffer_fraction > 0.0 && config.buffer_fraction <= 1.0,
      "ExperimentConfig::buffer_fraction = %g: must be in (0, 1]",
      config.buffer_fraction);
  DICI_CHECK_FMT(search_kernel_valid(config.kernel),
                 "ExperimentConfig::kernel = %d: not a SearchKernel value",
                 static_cast<int>(config.kernel));
  DICI_CHECK_FMT(placement_valid(config.placement),
                 "ExperimentConfig::placement = %d: not a Placement value",
                 static_cast<int>(config.placement));
  DICI_CHECK_FMT(config.max_delta_keys >= 1,
                 "ExperimentConfig::max_delta_keys = %zu: the write path "
                 "needs room for at least one pending delta entry",
                 config.max_delta_keys);
  DICI_CHECK_FMT(config.rebuild_trigger_fraction > 0.0 &&
                     config.rebuild_trigger_fraction <= 1.0,
                 "ExperimentConfig::rebuild_trigger_fraction = %g: must be "
                 "in (0, 1]",
                 config.rebuild_trigger_fraction);
  DICI_CHECK_FMT(config.writer_threads >= 1 && config.writer_threads <= 256,
                 "ExperimentConfig::writer_threads = %u: the background fold "
                 "splits across 1..256 threads",
                 config.writer_threads);
  DICI_CHECK_FMT(config.heartbeat_interval_ms >= 1,
                 "ExperimentConfig::heartbeat_interval_ms = %u: the cluster "
                 "failure detector needs a nonzero heartbeat cadence",
                 config.heartbeat_interval_ms);
  DICI_CHECK_FMT(
      config.heartbeat_timeout_ms >= 2 * config.heartbeat_interval_ms,
      "ExperimentConfig::heartbeat_timeout_ms = %u with "
      "heartbeat_interval_ms = %u: the timeout must be at least twice the "
      "interval, or one delayed beat kills a healthy node",
      config.heartbeat_timeout_ms, config.heartbeat_interval_ms);
  DICI_CHECK_FMT(config.max_retries <= 1000,
                 "ExperimentConfig::max_retries = %u: beyond 1000 attempts "
                 "the capped backoff makes retries pure polling — raise "
                 "retry_backoff_us instead",
                 config.max_retries);
  DICI_CHECK_FMT(
      config.retry_backoff_us >= 100 && config.retry_backoff_us <= 10'000'000,
      "ExperimentConfig::retry_backoff_us = %u: must be in [100, 10'000'000] "
      "— below 100us the retry sweeper outpaces any real transport, above "
      "10s a retry outlives the heartbeat verdict",
      config.retry_backoff_us);
  if (is_distributed(config.method)) {
    DICI_CHECK_FMT(config.num_masters >= 1,
                   "ExperimentConfig::num_masters = %u: Method C needs at "
                   "least one master",
                   config.num_masters);
    DICI_CHECK_FMT(config.num_nodes > config.num_masters,
                   "ExperimentConfig::num_nodes = %u with num_masters = %u: "
                   "Method C needs at least one slave",
                   config.num_nodes, config.num_masters);
  }
}

void check_native_supported(const ExperimentConfig& config) {
  DICI_CHECK_FMT(config.flush_policy == FlushPolicy::kMasterRound,
                 "ExperimentConfig::flush_policy = %s: native backends "
                 "implement master-round flushing only",
                 flush_policy_name(config.flush_policy));
}

NativeConfig native_config_from(const ExperimentConfig& config) {
  validate(config);
  check_native_supported(config);
  DICI_CHECK_FMT(!is_distributed(config.method) || config.num_masters == 1,
                 "ExperimentConfig::num_masters = %u: native backends "
                 "implement a single master; multi-master is simulator-only "
                 "for now",
                 config.num_masters);
  NativeConfig native;
  native.method = config.method;
  native.num_nodes = config.num_nodes;
  native.batch_bytes = config.batch_bytes;
  native.buffer_fraction = config.buffer_fraction;
  native.kernel = config.kernel;
  native.track_latency = config.track_latency;
  return native;
}

// --- NativeEngine's v2 adapter --------------------------------------------

namespace {

class NativeIndex;

/// NativeCluster resolves each submission synchronously on its own
/// thread fleet (it builds per-method structures inside run(), so there
/// is no warm state to pipeline through — ParallelNativeEngine is the
/// backend with a true async pipeline). Many clients may still share
/// one NativeIndex: NativeCluster::run is const and self-contained.
class NativeClient : public Client {
 public:
  NativeClient(std::shared_ptr<const Index> index, const NativeCluster* cluster)
      : Client(std::move(index)), cluster_(cluster) {}

  const char* backend() const override {
    return backend_name(Backend::kNative);
  }

 private:
  std::unique_ptr<Completion> do_submit(
      std::span<const key_t> queries, std::vector<rank_t>* out_ranks,
      const SubmitOptions& options) override {
    const std::span<const double> queued_ns = options.queued_ns;
    const NativeReport native =
        cluster_->run(index().keys(), queries, out_ranks);
    // Delta merge: NativeCluster resolves against the base only, so the
    // live-set correction is a post-pass over the (already in-cache)
    // result array — the delta itself is small enough to stay L1/L2
    // resident across the batch.
    if (options.delta != nullptr && out_ranks != nullptr)
      options.delta->correct(queries, out_ranks->data());
    RunReport report;
    report.method = native.method;
    report.num_queries = native.num_queries;
    report.num_nodes = native.num_nodes;
    report.batch_bytes = cluster_->config().batch_bytes;
    // No normalize_replicated division here: the simulator measures A/B
    // on ONE node and credits a free dispatcher by dividing, whereas the
    // native engine runs num_nodes real worker threads — its wall time
    // already IS the whole-cluster makespan.
    report.raw_makespan = ns_to_ps(native.seconds * 1e9);
    report.makespan = report.raw_makespan;
    report.messages = native.messages;
    if (cluster_->config().track_latency) {
      // NativeCluster resolves the whole submission synchronously, so
      // the finest wall-clock granularity it has is the batch: every
      // query is charged the full submit->return wall time (the Method
      // B reading — a batch's queries wait for the whole pass), plus
      // whatever wait it brought along from the caller's batcher queue.
      // ParallelNativeEngine is the backend with true per-message
      // completion stamps.
      const double batch_ns = native.seconds * 1e9;
      if (queued_ns.empty()) {
        report.latency_ns.add_n(batch_ns, native.num_queries);
      } else {
        for (const double q : queued_ns) report.latency_ns.add(batch_ns + q);
      }
    }
    return std::make_unique<ImmediateCompletion>(std::move(report));
  }

  const NativeCluster* cluster_;  // owned by the NativeIndex
};

class NativeIndex : public Index {
 public:
  NativeIndex(const NativeConfig& config, std::span<const key_t> index_keys)
      : Index(index_keys), cluster_(config) {}

  const char* backend() const override {
    return backend_name(Backend::kNative);
  }

 private:
  std::unique_ptr<Client> do_connect(
      std::shared_ptr<const Index> self) const override {
    return std::make_unique<NativeClient>(std::move(self), &cluster_);
  }

  NativeCluster cluster_;
};

}  // namespace

std::shared_ptr<const Index> NativeEngine::build(
    std::span<const key_t> index_keys) const {
  return std::make_shared<const NativeIndex>(cluster_.config(), index_keys);
}

// --- Factory --------------------------------------------------------------

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kSim: return "sim";
    case Backend::kNative: return "native";
    case Backend::kParallelNative: return "parallel-native";
    case Backend::kCluster: return "cluster";
  }
  return "?";
}

std::unique_ptr<Engine> make_engine(Backend backend,
                                    const ExperimentConfig& config) {
  switch (backend) {
    case Backend::kSim: return std::make_unique<SimCluster>(config);
    case Backend::kNative: return std::make_unique<NativeEngine>(config);
    case Backend::kParallelNative:
      return std::make_unique<ParallelNativeEngine>(config);
    case Backend::kCluster:
      return std::make_unique<cluster::ClusterEngine>(config);
  }
  DICI_CHECK_MSG(false, "unknown backend");
  return nullptr;
}

}  // namespace dici::core
