// Native (real-thread) engines: the same five methods executed on the
// host machine, with threads playing the cluster nodes and blocking
// queues playing MPI. Used by examples, the microbenchmarks (AB5), and
// the integration tests; cluster-scale *measurements* come from the
// simulator (see DESIGN.md's substitution note).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/config.hpp"
#include "src/core/engine.hpp"
#include "src/util/types.hpp"

namespace dici::core {

struct NativeConfig {
  Method method = Method::kC3;
  /// Thread count: 1 master + (num_nodes-1) slaves for Method C;
  /// num_nodes parallel workers for Methods A/B.
  std::uint32_t num_nodes = 4;
  std::uint64_t batch_bytes = 64 * KiB;
  /// Pin each node thread to a CPU (best-effort; harmless when the box
  /// has fewer cores than nodes).
  bool pin_threads = true;
  /// Node size for tree methods; 64 B matches current hardware lines.
  std::uint32_t tree_node_bytes = 64;
  /// Cache budget for buffered methods (B: L2-ish, C-2: L1-ish).
  std::uint64_t buffered_target_bytes = 256 * KiB;
  double buffer_fraction = 0.5;
  /// Exact upper_bound kernel the C-3 slaves resolve batches with (the
  /// tree methods ignore it). Eytzinger kernels lay out each slave's
  /// partition in BFS order before the stream starts.
  SearchKernel kernel = SearchKernel::kBranchless;
  /// Fill RunReport::latency_ns with measured wall-clock response times.
  /// This backend resolves a submission synchronously, so every query in
  /// it is charged the whole batch's wall time (batch granularity); see
  /// the v2 adapter in engine.cpp.
  bool track_latency = false;
};

struct NativeReport {
  Method method{};
  std::uint64_t num_queries = 0;
  std::uint32_t num_nodes = 0;
  double seconds = 0;
  double per_key_ns() const {
    return num_queries ? seconds * 1e9 / static_cast<double>(num_queries)
                       : 0.0;
  }
  double throughput_qps() const {
    return seconds > 0 ? static_cast<double>(num_queries) / seconds : 0.0;
  }
  std::uint64_t messages = 0;
};

class NativeCluster {
 public:
  explicit NativeCluster(const NativeConfig& config);

  /// Run all queries; fills `out_ranks` (query order) when non-null.
  NativeReport run(std::span<const key_t> index_keys,
                   std::span<const key_t> queries,
                   std::vector<rank_t>* out_ranks = nullptr) const;

  const NativeConfig& config() const { return config_; }

 private:
  NativeReport run_replicated(std::span<const key_t> index_keys,
                              std::span<const key_t> queries,
                              std::vector<rank_t>* out_ranks) const;
  NativeReport run_distributed(std::span<const key_t> index_keys,
                               std::span<const key_t> queries,
                               std::vector<rank_t>* out_ranks) const;

  NativeConfig config_;
};

/// Translate the simulator-centric ExperimentConfig into the native
/// engine's knobs. Thread count mirrors node count; the real-hardware
/// knobs (tree node size, cache budget) keep their native defaults — the
/// MachineSpec describes the paper's 2005 cluster, not this host.
NativeConfig native_config_from(const ExperimentConfig& config);

/// Engine adapter over NativeCluster: the same five methods on real
/// threads, reported as a RunReport whose makespan is measured wall time.
class NativeEngine : public Engine {
 public:
  explicit NativeEngine(const NativeConfig& config) : cluster_(config) {}
  explicit NativeEngine(const ExperimentConfig& config)
      : NativeEngine(native_config_from(config)) {}

  std::shared_ptr<const Index> build(
      std::span<const key_t> index_keys) const override;
  const char* name() const override { return backend_name(Backend::kNative); }

 private:
  NativeCluster cluster_;
};

}  // namespace dici::core
