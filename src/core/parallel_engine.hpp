// ParallelNativeEngine — the multithreaded native backend.
//
// Method C-3's architecture mapped onto one multicore host: the sorted
// key space is sharded with index::RangePartitioner, each worker thread
// (pinned via util/affinity) owns the shards congruent to its id, and
// query batches fan out over per-(client, worker) lock-free SPSC rings
// (net::SpscRingHub — one ring pair per master/slave stream, like NIC
// queue pairs; the condvar appears only when a worker parks empty).
// Slaves resolve whole batches through index::resolve_batch — the
// scalar branchless/prefetch kernels, the Eytzinger-layout kernels, or
// the interleaved batch kernels that keep W cache misses in flight per
// round — and scatter-merge results by query id, so the output array is
// in query order without a sort; each id is written exactly once by
// exactly one worker. When an eytzinger kernel is configured, build()
// lays out each shard's BFS copy once, alongside the shared sorted copy.
//
// build() is where this backend earns its keep: the partitioner and the
// pinned worker fleet live in the immutable shared Index, built once
// and parked on their queues (the paper's steady-state master/slave
// pipeline). Every connected Client plays a master: submit() routes the
// batch into per-shard messages on the calling thread and enqueues them
// tagged with a per-submission completion record, so the one worker
// fleet interleaves work from many clients and many in-flight batches.
// End-of-batch is an atomic countdown of the submission's outstanding
// work items — no barrier across clients, each ticket completes the
// moment its own last item is resolved. This is the paper's Sec. 3.2
// multi-master remark made literal: N clients = N masters sharing one
// slave fleet.
//
// bench_parallel_scaling measures this engine's 1->N-thread speedup
// curve the same way the paper measures its cluster scaling;
// bench_multiclient measures the clients x in-flight-depth surface the
// v2 API opens up.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/engine.hpp"
#include "src/util/bytes.hpp"
#include "src/util/types.hpp"

namespace dici::core {

// SearchKernel (and its name/parse helpers) lives in
// index/fast_search.hpp and is re-exported by core/config.hpp: the
// kernels belong to the index layer, the choice is a config knob.

struct ParallelConfig {
  /// Worker thread count. The submitting client plays the dispatcher
  /// and is reported as node 0 (the master), so RunReport::num_nodes is
  /// num_threads + 1 — master-inclusive like every other backend.
  std::uint32_t num_threads = 4;
  /// Shard count; 0 means one shard per thread. Shard s is owned by
  /// worker s % num_threads, so more shards than threads trades dispatch
  /// fan-out for finer-grained load balance under skew. Clamped to the
  /// index size for degenerate tiny indexes.
  std::uint32_t num_shards = 0;
  /// Query bytes a client ingests per flush round (the mirror of
  /// ExperimentConfig::batch_bytes and Figure 3's x-axis).
  std::uint64_t batch_bytes = 64 * KiB;
  /// Pin worker w to CPU w (best-effort, modulo available cores).
  bool pin_threads = true;
  SearchKernel kernel = SearchKernel::kBranchless;
  /// Queries the interleaved (batched-*) kernels advance in lockstep —
  /// the number of cache misses kept in flight per worker. Ignored by
  /// the scalar kernels; must be in [2, index::kMaxInterleave].
  std::uint32_t interleave_width = index::kDefaultInterleave;
  /// Capacity (work items, rounded up to a power of two) of each
  /// (client, worker) SPSC dispatch ring. A full ring back-pressures
  /// that client's submit with a spin-yield, so deeper rings buy more
  /// submit-ahead slack per client at ~64 B a slot.
  std::size_t ring_slots = 256;
  /// Per-message framing charged to RunReport::wire_bytes so the field
  /// is comparable with the simulator's (request hop only: results are
  /// scattered directly in shared memory, so there is no reply hop).
  std::uint64_t message_header_bytes = 64;
};

class ParallelNativeEngine : public Engine {
 public:
  explicit ParallelNativeEngine(const ParallelConfig& config);
  /// Derive from the shared ExperimentConfig: threads and shards mirror
  /// the slave count, batch_bytes carries over. Method must be C-3.
  explicit ParallelNativeEngine(const ExperimentConfig& config);

  std::shared_ptr<const Index> build(
      std::span<const key_t> index_keys) const override;
  const char* name() const override {
    return backend_name(Backend::kParallelNative);
  }

  const ParallelConfig& config() const { return config_; }

 private:
  ParallelConfig config_;
};

/// The ExperimentConfig -> ParallelConfig mapping used by make_engine.
ParallelConfig parallel_config_from(const ExperimentConfig& config);

}  // namespace dici::core
