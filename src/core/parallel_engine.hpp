// ParallelNativeEngine — the multithreaded native backend.
//
// Method C-3's architecture mapped onto one multicore host: the sorted
// key space is sharded with index::RangePartitioner, each worker thread
// (pinned to a core of its NUMA node — arch::Topology, real or
// simulated via numa_nodes) owns the shards congruent to its id, and
// query batches fan out over per-(client, worker) lock-free SPSC rings
// (net::SpscRingHub — one ring pair per master/slave stream, like NIC
// queue pairs; the condvar appears only when a worker parks empty).
// Shard key copies are placed per ParallelConfig::placement
// (index::PlacedShards): first-touched on the owner's node, or fully
// replicated per node so every probe is local. Idle workers steal whole
// batches — same-node victims first, cross-node only past
// steal_threshold backlog — so skewed streams don't serialize on the
// hot shard's worker.
// Slaves resolve whole batches through index::resolve_batch — the
// scalar branchless/prefetch kernels, the Eytzinger-layout kernels, or
// the interleaved batch kernels that keep W cache misses in flight per
// round — and scatter-merge results by query id, so the output array is
// in query order without a sort; each id is written exactly once by
// exactly one worker. When an eytzinger kernel is configured, build()
// lays out each shard's BFS copy once, alongside the shared sorted copy.
//
// build() is where this backend earns its keep: the partitioner and the
// pinned worker fleet live in the immutable shared Index, built once
// and parked on their queues (the paper's steady-state master/slave
// pipeline). Every connected Client plays a master: submit() routes the
// batch into per-shard messages on the calling thread and enqueues them
// tagged with a per-submission completion record, so the one worker
// fleet interleaves work from many clients and many in-flight batches.
// End-of-batch is an atomic countdown of the submission's outstanding
// work items — no barrier across clients, each ticket completes the
// moment its own last item is resolved. This is the paper's Sec. 3.2
// multi-master remark made literal: N clients = N masters sharing one
// slave fleet.
//
// bench_parallel_scaling measures this engine's 1->N-thread speedup
// curve the same way the paper measures its cluster scaling;
// bench_multiclient measures the clients x in-flight-depth surface the
// v2 API opens up.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/engine.hpp"
#include "src/util/bytes.hpp"
#include "src/util/types.hpp"

namespace dici::core {

// SearchKernel (and its name/parse helpers) lives in
// index/fast_search.hpp and is re-exported by core/config.hpp: the
// kernels belong to the index layer, the choice is a config knob.

struct ParallelConfig {
  /// Worker thread count. The submitting client plays the dispatcher
  /// and is reported as node 0 (the master), so RunReport::num_nodes is
  /// num_threads + 1 — master-inclusive like every other backend.
  std::uint32_t num_threads = 4;
  /// Shard count; 0 means one shard per thread. Shard s is owned by
  /// worker s % num_threads, so more shards than threads trades dispatch
  /// fan-out for finer-grained load balance under skew. Clamped to the
  /// index size for degenerate tiny indexes.
  std::uint32_t num_shards = 0;
  /// Query bytes a client ingests per flush round (the mirror of
  /// ExperimentConfig::batch_bytes and Figure 3's x-axis).
  std::uint64_t batch_bytes = 64 * KiB;
  /// Pin worker w to a core of its NUMA node (best-effort; targets come
  /// from the allowed cpuset, never the raw online count).
  bool pin_threads = true;
  SearchKernel kernel = SearchKernel::kBranchless;
  /// Queries the interleaved (batched-*) kernels advance in lockstep —
  /// the number of cache misses kept in flight per worker. Ignored by
  /// the scalar kernels; must be in [2, index::kMaxInterleave].
  std::uint32_t interleave_width = index::kDefaultInterleave;
  /// Capacity (work items, rounded up to a power of two) of each
  /// (client, worker) SPSC dispatch ring. A full ring back-pressures
  /// that client's submit with a spin-yield, so deeper rings buy more
  /// submit-ahead slack per client at ~64 B a slot.
  std::size_t ring_slots = 256;
  /// Per-message framing charged to RunReport::wire_bytes so the field
  /// is comparable with the simulator's (request hop only: results are
  /// scattered directly in shared memory, so there is no reply hop).
  std::uint64_t message_header_bytes = 64;
  /// Where shard key copies live relative to the NUMA nodes of the
  /// workers probing them (index/placement.hpp). kInterleave is the
  /// pre-placement baseline; kNodeLocal first-touches each shard on its
  /// owner's node; kReplicate keeps a full per-node copy so even stolen
  /// batches probe local memory.
  Placement placement = Placement::kInterleave;
  /// NUMA node map: 0 discovers the host topology, N > 0 forces a
  /// simulated N-node split of the allowed CPUs (how single-node
  /// machines and CI exercise every placement path for real).
  std::uint32_t numa_nodes = 0;
  /// Bounded work stealing: a worker whose own rings are empty takes
  /// whole dispatch batches from same-node victims first, cross-node
  /// only from victims with at least steal_threshold batches pending —
  /// so skewed streams stop serializing on the hot shard's worker, but
  /// an almost-balanced fleet doesn't churn batches across sockets.
  bool work_stealing = true;
  /// Minimum victim backlog (pending batches) before a CROSS-NODE steal
  /// is worth the remote-memory price; same-node steals ignore it.
  std::uint32_t steal_threshold = 2;
  /// Record measured wall-clock response times into
  /// RunReport::latency_ns: the submitting client stamps steady_clock
  /// at submit, the worker that resolves each dispatched message stamps
  /// its completion, and every query in the message is charged the
  /// difference (plus any pre-submit batcher wait the caller declared
  /// via submit()'s queued_ns). Per-worker Summary slots in the
  /// submission's countdown record keep the hot path contention-free;
  /// memory stays bounded however many queries stream (log-bucketed
  /// histogram past Summary::kExactCap).
  bool track_latency = false;
};

class ParallelNativeEngine : public Engine {
 public:
  explicit ParallelNativeEngine(const ParallelConfig& config);
  /// Derive from the shared ExperimentConfig: threads and shards mirror
  /// the slave count, batch_bytes carries over. Method must be C-3.
  explicit ParallelNativeEngine(const ExperimentConfig& config);

  std::shared_ptr<const Index> build(
      std::span<const key_t> index_keys) const override;
  const char* name() const override {
    return backend_name(Backend::kParallelNative);
  }

  const ParallelConfig& config() const { return config_; }

 private:
  ParallelConfig config_;
};

/// The ExperimentConfig -> ParallelConfig mapping used by make_engine.
ParallelConfig parallel_config_from(const ExperimentConfig& config);

}  // namespace dici::core
