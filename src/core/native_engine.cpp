#include "src/core/native_engine.hpp"

#include <thread>

#include "src/core/dispatch.hpp"

#include "src/index/batched_search.hpp"
#include "src/index/buffered.hpp"
#include "src/index/eytzinger.hpp"
#include "src/index/partitioner.hpp"
#include "src/index/static_tree.hpp"
#include "src/net/blocking_queue.hpp"
#include "src/util/affinity.hpp"
#include "src/util/assert.hpp"
#include "src/util/timer.hpp"
#include "src/workload/workload.hpp"

namespace dici::core {

NativeCluster::NativeCluster(const NativeConfig& config) : config_(config) {
  DICI_CHECK(config_.num_nodes >= 1);
  DICI_CHECK(config_.batch_bytes >= sizeof(key_t));
}

NativeReport NativeCluster::run(std::span<const key_t> index_keys,
                                std::span<const key_t> queries,
                                std::vector<rank_t>* out_ranks) const {
  DICI_CHECK(!index_keys.empty());
  if (out_ranks != nullptr) out_ranks->assign(queries.size(), 0);
  return is_distributed(config_.method)
             ? run_distributed(index_keys, queries, out_ranks)
             : run_replicated(index_keys, queries, out_ranks);
}

// Methods A/B natively: N workers share the (replicated-in-spirit,
// physically shared read-only) tree, each owning a contiguous slice of
// the query stream — the zero-overhead load balancer the paper credits.
NativeReport NativeCluster::run_replicated(std::span<const key_t> index_keys,
                                           std::span<const key_t> queries,
                                           std::vector<rank_t>* out_ranks)
    const {
  const index::TreeConfig tree_cfg{config_.tree_node_bytes,
                                   index::TreeLayout::kExplicitPointers};
  const index::StaticTree tree(index_keys, tree_cfg);
  const std::uint32_t workers = config_.num_nodes;
  std::vector<rank_t> sink(out_ranks == nullptr ? queries.size() : 0);
  rank_t* out = out_ranks != nullptr ? out_ranks->data() : sink.data();

  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      if (config_.pin_threads) pin_current_thread(static_cast<int>(w));
      const std::size_t begin = queries.size() * w / workers;
      const std::size_t end = queries.size() * (w + 1) / workers;
      if (config_.method == Method::kA) {
        for (std::size_t i = begin; i < end; ++i)
          out[i] = tree.lookup(queries[i]);
      } else {
        sim::NullProbe probe;
        index::BufferedConfig buf_cfg;
        buf_cfg.target_cache_bytes = config_.buffered_target_bytes;
        buf_cfg.buffer_fraction = config_.buffer_fraction;
        index::BufferedResults results;
        std::vector<index::BufferedItem> items;
        for (const auto& [b, e] :
             workload::batch_ranges(end - begin, config_.batch_bytes)) {
          items.clear();
          for (std::size_t i = begin + b; i < begin + e; ++i)
            items.push_back({queries[i], static_cast<std::uint32_t>(i)});
          results.clear();
          index::buffered_lookup(
              tree, std::span<const index::BufferedItem>(items), buf_cfg,
              probe, results);
          for (const auto& [id, rank] : results) out[id] = rank;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  NativeReport report;
  report.method = config_.method;
  report.num_queries = queries.size();
  report.num_nodes = workers;
  report.seconds = timer.elapsed_sec();
  return report;
}

// Method C natively: a master thread routes batches into per-slave
// queues; slave threads resolve them against their cache-sized partition
// and scatter results straight into the output array (the "dispatch to
// the target" step — no reply hop needed in shared memory).
NativeReport NativeCluster::run_distributed(std::span<const key_t> index_keys,
                                            std::span<const key_t> queries,
                                            std::vector<rank_t>* out_ranks)
    const {
  DICI_CHECK_MSG(config_.num_nodes >= 2,
                 "Method C needs a master and at least one slave");
  const std::uint32_t S = config_.num_nodes - 1;
  const index::RangePartitioner partitioner(index_keys, S);

  std::vector<net::BlockingQueue<DispatchBatch>> queues(S);
  std::vector<rank_t> sink(out_ranks == nullptr ? queries.size() : 0);
  rank_t* out = out_ranks != nullptr ? out_ranks->data() : sink.data();
  std::uint64_t messages = 0;

  WallTimer timer;
  std::vector<std::thread> slaves;
  slaves.reserve(S);
  for (std::uint32_t s = 0; s < S; ++s) {
    slaves.emplace_back([&, s] {
      if (config_.pin_threads) pin_current_thread(static_cast<int>(s + 1));
      const auto part = partitioner.keys_of(s);
      const rank_t offset = partitioner.start_of(s);
      // C-3 resolves whole batches through the configured search kernel;
      // the BFS copy is laid out once, before the stream starts, when an
      // eytzinger kernel asks for it.
      std::unique_ptr<index::EytzingerLayout> layout;
      if (config_.method == Method::kC3 &&
          kernel_layout(config_.kernel) == KeyLayout::kEytzinger)
        layout = std::make_unique<index::EytzingerLayout>(part);
      std::vector<rank_t> local;
      // C-1/C-2 build a tree over the partition instead.
      std::unique_ptr<index::StaticTree> tree;
      index::BufferedConfig buf_cfg;
      if (config_.method != Method::kC3) {
        const index::TreeConfig tree_cfg{
            config_.tree_node_bytes,
            config_.method == Method::kC1
                ? index::TreeLayout::kCsbFirstChild
                : index::TreeLayout::kExplicitPointers};
        tree = std::make_unique<index::StaticTree>(part, tree_cfg);
        buf_cfg.target_cache_bytes = config_.buffered_target_bytes;
        buf_cfg.buffer_fraction = config_.buffer_fraction;
      }
      sim::NullProbe probe;
      index::BufferedResults results;
      std::vector<index::BufferedItem> items;
      while (auto batch = queues[s].pop()) {
        switch (config_.method) {
          case Method::kC1:
            for (std::size_t j = 0; j < batch->keys.size(); ++j)
              out[batch->ids[j]] = offset + tree->lookup(batch->keys[j]);
            break;
          case Method::kC2: {
            items.clear();
            for (std::size_t j = 0; j < batch->keys.size(); ++j)
              items.push_back(
                  {batch->keys[j], static_cast<std::uint32_t>(j)});
            results.clear();
            index::buffered_lookup(
                *tree, std::span<const index::BufferedItem>(items), buf_cfg,
                probe, results);
            for (const auto& [id, rank] : results)
              out[batch->ids[id]] = offset + rank;
            break;
          }
          default:
            // One kernel call per message (the interleaved kernels keep
            // several misses in flight), then the id scatter.
            local.resize(batch->keys.size());
            index::resolve_batch(config_.kernel, part, layout.get(),
                                 batch->keys, local.data());
            for (std::size_t j = 0; j < batch->keys.size(); ++j)
              out[batch->ids[j]] = offset + local[j];
            break;
        }
      }
    });
  }

  // Master: route in rounds of batch_bytes, flushing per-slave batches.
  {
    if (config_.pin_threads) pin_current_thread(0);
    messages = dispatch_master_rounds(
        queries, config_.batch_bytes, S,
        [&](key_t q) { return partitioner.route(q); },
        [&](std::uint32_t s, DispatchBatch&& batch) {
          queues[s].push(std::move(batch));
        });
    for (auto& q : queues) q.close();
  }
  for (auto& t : slaves) t.join();

  NativeReport report;
  report.method = config_.method;
  report.num_queries = queries.size();
  report.num_nodes = config_.num_nodes;
  report.seconds = timer.elapsed_sec();
  report.messages = messages;
  return report;
}

}  // namespace dici::core
