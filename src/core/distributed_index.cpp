#include "src/core/distributed_index.hpp"

#include <algorithm>

#include "src/index/sorted_array.hpp"
#include "src/util/assert.hpp"
#include "src/util/bytes.hpp"

namespace dici {

namespace {

std::vector<key_t> sorted_unique(std::vector<key_t> keys) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  DICI_CHECK_MSG(!keys.empty(), "index requires at least one key");
  return keys;
}

}  // namespace

DistributedInCacheIndex::DistributedInCacheIndex(std::vector<key_t> keys,
                                                 std::uint32_t partitions)
    : keys_(sorted_unique(std::move(keys))),
      partitioner_(keys_, partitions) {}

std::uint32_t DistributedInCacheIndex::partitions_for_cache(
    std::size_t num_keys, std::uint64_t cache_bytes) {
  DICI_CHECK(cache_bytes >= sizeof(key_t));
  const std::uint64_t bytes = num_keys * sizeof(key_t);
  return static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, (bytes + cache_bytes - 1) / cache_bytes));
}

rank_t DistributedInCacheIndex::lookup(key_t key) const {
  const std::uint32_t p = partitioner_.route(key);
  const index::SortedArrayIndex part(partitioner_.keys_of(p));
  return partitioner_.start_of(p) + part.upper_bound_rank(key);
}

bool DistributedInCacheIndex::contains(key_t key) const {
  const rank_t rank = lookup(key);
  return rank > 0 && keys_[rank - 1] == key;
}

std::vector<rank_t> DistributedInCacheIndex::lookup_batch(
    std::span<const key_t> queries, std::uint64_t batch_bytes) const {
  core::NativeConfig config;
  config.method = core::Method::kC3;
  config.num_nodes = partitions() + 1;
  config.batch_bytes = batch_bytes ? batch_bytes : 64 * KiB;
  std::vector<rank_t> ranks;
  core::NativeCluster(config).run(keys_, queries, &ranks);
  return ranks;
}

}  // namespace dici
