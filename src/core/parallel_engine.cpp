#include "src/core/parallel_engine.hpp"

#include <algorithm>
#include <thread>

#include "src/core/dispatch.hpp"
#include "src/index/fast_search.hpp"
#include "src/index/partitioner.hpp"
#include "src/net/blocking_queue.hpp"
#include "src/util/affinity.hpp"
#include "src/util/assert.hpp"
#include "src/util/timer.hpp"

namespace dici::core {

const char* search_kernel_name(SearchKernel kernel) {
  switch (kernel) {
    case SearchKernel::kStdUpperBound: return "std-upper-bound";
    case SearchKernel::kBranchless: return "branchless";
    case SearchKernel::kPrefetch: return "prefetch";
  }
  return "?";
}

ParallelNativeEngine::ParallelNativeEngine(const ParallelConfig& config)
    : config_(config) {
  DICI_CHECK(config_.num_threads >= 1);
  DICI_CHECK(config_.batch_bytes >= sizeof(key_t));
}

ParallelConfig parallel_config_from(const ExperimentConfig& config) {
  validate(config);
  check_native_supported(config);
  DICI_CHECK_MSG(config.method == Method::kC3,
                 "ParallelNativeEngine shards sorted arrays (Method C-3)");
  DICI_CHECK_MSG(config.num_masters == 1,
                 "ParallelNativeEngine has one dispatcher; multi-master is "
                 "simulator-only for now");
  ParallelConfig parallel;
  parallel.num_threads = config.num_slaves();
  parallel.num_shards = config.num_slaves();
  parallel.batch_bytes = config.batch_bytes;
  parallel.message_header_bytes = config.message_header_bytes;
  return parallel;
}

ParallelNativeEngine::ParallelNativeEngine(const ExperimentConfig& config)
    : ParallelNativeEngine(parallel_config_from(config)) {}

namespace {

rank_t run_kernel(SearchKernel kernel, std::span<const key_t> keys, key_t q) {
  switch (kernel) {
    case SearchKernel::kBranchless:
      return index::branchless_upper_bound(keys, q);
    case SearchKernel::kPrefetch:
      return index::prefetch_upper_bound(keys, q);
    default:
      return static_cast<rank_t>(
          std::upper_bound(keys.begin(), keys.end(), q) - keys.begin());
  }
}

/// A dispatched message tagged with the shard it must be resolved on
/// (a worker owns several shards when num_shards > num_threads).
struct ShardBatch {
  std::uint32_t shard = 0;
  DispatchBatch batch;
};

}  // namespace

RunReport ParallelNativeEngine::run(std::span<const key_t> index_keys,
                                    std::span<const key_t> queries,
                                    std::vector<rank_t>* out_ranks) const {
  DICI_CHECK(!index_keys.empty());
  const std::uint32_t T = config_.num_threads;
  const std::uint32_t shards = static_cast<std::uint32_t>(std::min<std::size_t>(
      config_.num_shards == 0 ? T : config_.num_shards, index_keys.size()));
  const index::RangePartitioner partitioner(index_keys, shards);

  if (out_ranks != nullptr) out_ranks->assign(queries.size(), 0);
  std::vector<rank_t> sink(out_ranks == nullptr ? queries.size() : 0);
  rank_t* out = out_ranks != nullptr ? out_ranks->data() : sink.data();

  // One work queue per worker; shard s belongs to worker s % T. Workers
  // scatter by query id, so "merge" is implicit and order-preserving:
  // ids across batches are disjoint and each is written exactly once.
  std::vector<net::BlockingQueue<ShardBatch>> queues(T);
  std::vector<std::uint64_t> worker_queries(T, 0);
  std::vector<double> worker_busy_sec(T, 0.0);

  WallTimer timer;
  std::vector<std::thread> workers;
  workers.reserve(T);
  for (std::uint32_t w = 0; w < T; ++w) {
    workers.emplace_back([&, w] {
      if (config_.pin_threads) pin_current_thread(static_cast<int>(w));
      std::uint64_t processed = 0;
      double busy = 0.0;
      while (auto item = queues[w].pop()) {
        WallTimer batch_timer;
        const auto part = partitioner.keys_of(item->shard);
        const rank_t offset = partitioner.start_of(item->shard);
        const DispatchBatch& batch = item->batch;
        for (std::size_t j = 0; j < batch.keys.size(); ++j)
          out[batch.ids[j]] =
              offset + run_kernel(config_.kernel, part, batch.keys[j]);
        processed += batch.keys.size();
        busy += batch_timer.elapsed_sec();
      }
      worker_queries[w] = processed;
      worker_busy_sec[w] = busy;
    });
  }

  // Dispatcher (this thread plays the master): the shared kMasterRound
  // loop routes by delimiter search with one staging lane per shard.
  // wire_bytes matches the simulator's request-hop accounting exactly:
  // key payload + per-message header. The ids are bookkeeping for the
  // shared-memory scatter (a real cluster's reply hop would carry the
  // ranks instead), so they are not charged as wire traffic.
  std::uint64_t wire_bytes = 0;
  WallTimer dispatch_timer;
  std::uint64_t messages = dispatch_master_rounds(
      queries, config_.batch_bytes, shards,
      [&](key_t q) { return partitioner.route(q); },
      [&](std::uint32_t s, DispatchBatch&& batch) {
        wire_bytes += config_.message_header_bytes +
                      batch.keys.size() * sizeof(key_t);
        queues[s % T].push(ShardBatch{s, std::move(batch)});
      });
  for (auto& queue : queues) queue.close();
  const double dispatch_sec = dispatch_timer.elapsed_sec();
  for (auto& worker : workers) worker.join();
  const double wall_sec = timer.elapsed_sec();

  // The dispatcher is node 0 (the master), workers are nodes 1..T — the
  // same master-inclusive accounting as the other backends, so
  // num_nodes is comparable across the Engine seam.
  RunReport report;
  report.method = Method::kC3;
  report.num_queries = queries.size();
  report.num_nodes = T + 1;
  report.batch_bytes = config_.batch_bytes;
  report.raw_makespan = ns_to_ps(wall_sec * 1e9);
  report.makespan = report.raw_makespan;
  report.messages = messages;
  report.wire_bytes = wire_bytes;
  report.nodes.resize(T + 1);
  report.nodes[0].queries = queries.size();
  report.nodes[0].busy = ns_to_ps(dispatch_sec * 1e9);
  report.nodes[0].finish = report.raw_makespan;
  report.nodes[0].idle = report.raw_makespan > report.nodes[0].busy
                             ? report.raw_makespan - report.nodes[0].busy
                             : 0;
  double idle_sum = 0.0;
  for (std::uint32_t w = 0; w < T; ++w) {
    NodeReport& node = report.nodes[w + 1];
    node.queries = worker_queries[w];
    node.busy = ns_to_ps(worker_busy_sec[w] * 1e9);
    node.finish = report.raw_makespan;
    node.idle =
        report.raw_makespan > node.busy ? report.raw_makespan - node.busy : 0;
    if (wall_sec > 0.0)
      idle_sum += std::max(0.0, 1.0 - worker_busy_sec[w] / wall_sec);
  }
  report.slave_idle_fraction = idle_sum / T;
  return report;
}

}  // namespace dici::core
