#include "src/core/parallel_engine.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/core/dispatch.hpp"
#include "src/index/fast_search.hpp"
#include "src/index/partitioner.hpp"
#include "src/net/blocking_queue.hpp"
#include "src/util/affinity.hpp"
#include "src/util/assert.hpp"
#include "src/util/timer.hpp"

namespace dici::core {

const char* search_kernel_name(SearchKernel kernel) {
  switch (kernel) {
    case SearchKernel::kStdUpperBound: return "std-upper-bound";
    case SearchKernel::kBranchless: return "branchless";
    case SearchKernel::kPrefetch: return "prefetch";
  }
  return "?";
}

ParallelNativeEngine::ParallelNativeEngine(const ParallelConfig& config)
    : config_(config) {
  DICI_CHECK(config_.num_threads >= 1);
  DICI_CHECK(config_.batch_bytes >= sizeof(key_t));
}

ParallelConfig parallel_config_from(const ExperimentConfig& config) {
  validate(config);
  check_native_supported(config);
  DICI_CHECK_MSG(config.method == Method::kC3,
                 "ParallelNativeEngine shards sorted arrays (Method C-3)");
  DICI_CHECK_MSG(config.num_masters == 1,
                 "ParallelNativeEngine has one dispatcher; multi-master is "
                 "simulator-only for now");
  ParallelConfig parallel;
  parallel.num_threads = config.num_slaves();
  parallel.num_shards = config.num_slaves();
  parallel.batch_bytes = config.batch_bytes;
  parallel.message_header_bytes = config.message_header_bytes;
  return parallel;
}

ParallelNativeEngine::ParallelNativeEngine(const ExperimentConfig& config)
    : ParallelNativeEngine(parallel_config_from(config)) {}

namespace {

rank_t run_kernel(SearchKernel kernel, std::span<const key_t> keys, key_t q) {
  switch (kernel) {
    case SearchKernel::kBranchless:
      return index::branchless_upper_bound(keys, q);
    case SearchKernel::kPrefetch:
      return index::prefetch_upper_bound(keys, q);
    default:
      return static_cast<rank_t>(
          std::upper_bound(keys.begin(), keys.end(), q) - keys.begin());
  }
}

std::uint32_t clamped_shards(const ParallelConfig& config, std::size_t n) {
  const std::uint32_t want =
      config.num_shards == 0 ? config.num_threads : config.num_shards;
  return static_cast<std::uint32_t>(std::min<std::size_t>(want, n));
}

/// The steady-state session behind ParallelNativeEngine::open. Owns a
/// copy of the key array, the range partitioner over it, and the pinned
/// worker fleet; all of it persists across run_batch calls.
class ParallelSession : public Session {
 public:
  ParallelSession(const ParallelConfig& config,
                  std::span<const key_t> index_keys);
  ~ParallelSession() override;

  const char* backend() const override {
    return backend_name(Backend::kParallelNative);
  }

 private:
  /// A dispatched message tagged with the shard it must be resolved on
  /// (a worker owns several shards when num_shards > num_threads).
  /// `drain` marks the end-of-batch barrier token instead of work.
  struct WorkItem {
    std::uint32_t shard = 0;
    DispatchBatch batch;
    bool drain = false;
  };

  RunReport do_run_batch(std::span<const key_t> queries,
                         std::vector<rank_t>* out_ranks) override;
  void worker_loop(std::uint32_t w);

  ParallelConfig config_;
  std::vector<key_t> keys_;
  index::RangePartitioner partitioner_;

  // Per-batch state. The dispatcher writes these before pushing any work
  // (queue mutexes publish them to workers) and reads the per-worker
  // stats only after the drain barrier (done_mu_ publishes them back).
  rank_t* out_ = nullptr;
  std::vector<std::uint64_t> worker_queries_;
  std::vector<double> worker_busy_sec_;

  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::uint32_t drained_ = 0;

  std::vector<net::BlockingQueue<WorkItem>> queues_;
  std::vector<std::thread> workers_;
};

ParallelSession::ParallelSession(const ParallelConfig& config,
                                 std::span<const key_t> index_keys)
    : config_(config),
      keys_(index_keys.begin(), index_keys.end()),
      partitioner_(keys_, clamped_shards(config, keys_.size())),
      worker_queries_(config.num_threads, 0),
      worker_busy_sec_(config.num_threads, 0.0),
      queues_(config.num_threads) {
  workers_.reserve(config_.num_threads);
  for (std::uint32_t w = 0; w < config_.num_threads; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ParallelSession::~ParallelSession() {
  for (auto& queue : queues_) queue.close();
  for (auto& worker : workers_) worker.join();
}

void ParallelSession::worker_loop(std::uint32_t w) {
  if (config_.pin_threads) pin_current_thread(static_cast<int>(w));
  while (auto item = queues_[w].pop()) {
    if (item->drain) {
      // All of this batch's work on this worker precedes the marker
      // (per-queue FIFO), so acknowledging it is the batch barrier.
      {
        std::lock_guard lock(done_mu_);
        ++drained_;
      }
      done_cv_.notify_one();
      continue;
    }
    WallTimer batch_timer;
    const auto part = partitioner_.keys_of(item->shard);
    const rank_t offset = partitioner_.start_of(item->shard);
    const DispatchBatch& batch = item->batch;
    for (std::size_t j = 0; j < batch.keys.size(); ++j)
      out_[batch.ids[j]] =
          offset + run_kernel(config_.kernel, part, batch.keys[j]);
    worker_queries_[w] += batch.keys.size();
    worker_busy_sec_[w] += batch_timer.elapsed_sec();
  }
}

RunReport ParallelSession::do_run_batch(std::span<const key_t> queries,
                                        std::vector<rank_t>* out_ranks) {
  const std::uint32_t T = config_.num_threads;
  const std::uint32_t shards = partitioner_.parts();

  if (out_ranks != nullptr) out_ranks->assign(queries.size(), 0);
  std::vector<rank_t> sink(out_ranks == nullptr ? queries.size() : 0);
  out_ = out_ranks != nullptr ? out_ranks->data() : sink.data();
  std::fill(worker_queries_.begin(), worker_queries_.end(), 0);
  std::fill(worker_busy_sec_.begin(), worker_busy_sec_.end(), 0.0);
  {
    std::lock_guard lock(done_mu_);
    drained_ = 0;
  }

  // Dispatcher (this thread plays the master): the shared kMasterRound
  // loop routes by delimiter search with one staging lane per shard.
  // wire_bytes matches the simulator's request-hop accounting exactly:
  // key payload + per-message header. The ids are bookkeeping for the
  // shared-memory scatter (a real cluster's reply hop would carry the
  // ranks instead), so they are not charged as wire traffic.
  std::uint64_t wire_bytes = 0;
  WallTimer timer;
  WallTimer dispatch_timer;
  std::uint64_t messages = dispatch_master_rounds(
      queries, config_.batch_bytes, shards,
      [&](key_t q) { return partitioner_.route(q); },
      [&](std::uint32_t s, DispatchBatch&& batch) {
        wire_bytes += config_.message_header_bytes +
                      batch.keys.size() * sizeof(key_t);
        queues_[s % T].push(WorkItem{s, std::move(batch), /*drain=*/false});
      });
  for (auto& queue : queues_) queue.push(WorkItem{0, {}, /*drain=*/true});
  const double dispatch_sec = dispatch_timer.elapsed_sec();
  {
    std::unique_lock lock(done_mu_);
    done_cv_.wait(lock, [&] { return drained_ == T; });
  }
  const double wall_sec = timer.elapsed_sec();
  out_ = nullptr;

  // The dispatcher is node 0 (the master), workers are nodes 1..T — the
  // same master-inclusive accounting as the other backends, so
  // num_nodes is comparable across the Engine seam.
  RunReport report;
  report.method = Method::kC3;
  report.num_queries = queries.size();
  report.num_nodes = T + 1;
  report.batch_bytes = config_.batch_bytes;
  report.raw_makespan = ns_to_ps(wall_sec * 1e9);
  report.makespan = report.raw_makespan;
  report.messages = messages;
  report.wire_bytes = wire_bytes;
  report.nodes.resize(T + 1);
  report.nodes[0].queries = queries.size();
  report.nodes[0].busy = ns_to_ps(dispatch_sec * 1e9);
  report.nodes[0].finish = report.raw_makespan;
  report.nodes[0].idle = report.raw_makespan > report.nodes[0].busy
                             ? report.raw_makespan - report.nodes[0].busy
                             : 0;
  double idle_sum = 0.0;
  for (std::uint32_t w = 0; w < T; ++w) {
    NodeReport& node = report.nodes[w + 1];
    node.queries = worker_queries_[w];
    node.busy = ns_to_ps(worker_busy_sec_[w] * 1e9);
    node.finish = report.raw_makespan;
    node.idle =
        report.raw_makespan > node.busy ? report.raw_makespan - node.busy : 0;
    if (wall_sec > 0.0)
      idle_sum += std::max(0.0, 1.0 - worker_busy_sec_[w] / wall_sec);
  }
  report.slave_idle_fraction = idle_sum / T;
  return report;
}

}  // namespace

std::unique_ptr<Session> ParallelNativeEngine::open(
    std::span<const key_t> index_keys) const {
  DICI_CHECK(!index_keys.empty());
  return std::make_unique<ParallelSession>(config_, index_keys);
}

}  // namespace dici::core
