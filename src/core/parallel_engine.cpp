#include "src/core/parallel_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <latch>
#include <memory>
#include <mutex>
#include <thread>

#include "src/arch/topology.hpp"
#include "src/core/dispatch.hpp"
#include "src/index/batched_search.hpp"
#include "src/index/delta.hpp"
#include "src/index/eytzinger.hpp"
#include "src/index/partitioner.hpp"
#include "src/index/placement.hpp"
#include "src/net/spsc_ring.hpp"
#include "src/util/affinity.hpp"
#include "src/util/assert.hpp"
#include "src/util/timer.hpp"

namespace dici::core {

ParallelNativeEngine::ParallelNativeEngine(const ParallelConfig& config)
    : config_(config) {
  DICI_CHECK_FMT(config_.num_threads >= 1,
                 "ParallelConfig::num_threads = %u: need at least one worker",
                 config_.num_threads);
  DICI_CHECK_FMT(config_.batch_bytes >= sizeof(key_t),
                 "ParallelConfig::batch_bytes = %llu: a dispatch round must "
                 "hold at least one %zu-byte key",
                 static_cast<unsigned long long>(config_.batch_bytes),
                 sizeof(key_t));
  DICI_CHECK_FMT(search_kernel_valid(config_.kernel),
                 "ParallelConfig::kernel = %d: not a SearchKernel value",
                 static_cast<int>(config_.kernel));
  DICI_CHECK_FMT(config_.interleave_width >= 2 &&
                     config_.interleave_width <= index::kMaxInterleave,
                 "ParallelConfig::interleave_width = %u: the lockstep kernels "
                 "interleave 2..%u queries",
                 config_.interleave_width, index::kMaxInterleave);
  DICI_CHECK_FMT(config_.ring_slots >= 1,
                 "ParallelConfig::ring_slots = %zu: a dispatch ring needs at "
                 "least one slot",
                 config_.ring_slots);
  DICI_CHECK_FMT(placement_valid(config_.placement),
                 "ParallelConfig::placement = %d: not a Placement value",
                 static_cast<int>(config_.placement));
  DICI_CHECK_FMT(config_.numa_nodes <= 1024,
                 "ParallelConfig::numa_nodes = %u: 0 discovers the host, "
                 "1..1024 simulate",
                 config_.numa_nodes);
  DICI_CHECK_FMT(config_.steal_threshold >= 1,
                 "ParallelConfig::steal_threshold = %u: a cross-node steal "
                 "needs a backlog of at least one batch",
                 config_.steal_threshold);
}

ParallelConfig parallel_config_from(const ExperimentConfig& config) {
  validate(config);
  check_native_supported(config);
  DICI_CHECK_FMT(config.method == Method::kC3,
                 "ExperimentConfig::method = %s: ParallelNativeEngine shards "
                 "sorted arrays (Method C-3)",
                 method_name(config.method));
  DICI_CHECK_FMT(config.num_masters == 1,
                 "ExperimentConfig::num_masters = %u: ParallelNativeEngine "
                 "maps extra masters to extra Clients, not config knobs — "
                 "connect() one Client per master",
                 config.num_masters);
  ParallelConfig parallel;
  parallel.num_threads = config.num_slaves();
  parallel.num_shards = config.num_slaves();
  parallel.batch_bytes = config.batch_bytes;
  parallel.message_header_bytes = config.message_header_bytes;
  parallel.kernel = config.kernel;
  parallel.placement = config.placement;
  parallel.numa_nodes = config.machine.numa_nodes;
  parallel.track_latency = config.track_latency;
  return parallel;
}

ParallelNativeEngine::ParallelNativeEngine(const ExperimentConfig& config)
    : ParallelNativeEngine(parallel_config_from(config)) {}

namespace {

std::uint32_t clamped_shards(const ParallelConfig& config, std::size_t n) {
  const std::uint32_t want =
      config.num_shards == 0 ? config.num_threads : config.num_shards;
  return static_cast<std::uint32_t>(std::min<std::size_t>(want, n));
}

/// How long an idle worker parks before re-checking its steal targets.
/// Producers only wake a worker's OWN hub, so a stealing-enabled worker
/// naps instead of sleeping. The nap starts short — a backlog on the
/// hot shard's worker is noticed within a dispatch round — and doubles
/// per fruitless sweep up to the cap, so a built-but-idle fleet decays
/// to a handful of wakeups per second per worker instead of spinning at
/// 2 kHz forever; any popped or stolen item resets it.
constexpr std::chrono::microseconds kStealRecheckNap{500};
constexpr std::chrono::microseconds kStealRecheckNapCap{32 * 1024};

/// Completion record for one submitted batch, shared between the
/// submitting client, every work item the batch fanned out into, and
/// the waiter. `outstanding` starts at 1 (the submitter's hold) and is
/// incremented per enqueued item; whoever drops it to zero — the last
/// worker, or the submitter itself for an empty batch — stamps the wall
/// clock and signals done. Per-worker stat slots are written only by
/// the worker that RESOLVED the item (owner or thief); the acq_rel
/// countdown plus the done-flag mutex publish every slot to the waiter.
struct Submission {
  explicit Submission(std::uint32_t num_workers, bool track_latency_)
      : track_latency(track_latency_),
        worker_queries(num_workers, 0),
        worker_busy_sec(num_workers, 0.0),
        worker_latency(track_latency_ ? num_workers : 0) {}

  rank_t* out = nullptr;
  std::vector<rank_t> sink;  ///< backs `out` when the caller passed none

  /// Wall-clock per-query latency collection for this submission. The
  /// submit stamp is `timer` below; each resolving worker stamps its
  /// message's completion and folds (completion - submit + queued_ns)
  /// into ITS slot of worker_latency — owner or thief, the slot is the
  /// resolver's, so no two threads ever share one Summary. queued_ns is
  /// copied before the first push and read-only afterwards.
  bool track_latency = false;
  std::vector<double> queued_ns;  ///< per query id; empty = no prior wait

  /// Frozen pending-writes snapshot for this submission (null = base
  /// index is the live set). Set before the first push, read-only
  /// afterwards; each resolving worker folds its rank corrections into
  /// the scatter, so the kernels stay base-only and hot.
  std::shared_ptr<const index::DeltaSnapshot> delta;

  std::vector<std::uint64_t> worker_queries;
  std::vector<double> worker_busy_sec;
  std::vector<Summary> worker_latency;
  /// Items resolved by a worker other than the shard's owner.
  std::atomic<std::uint64_t> stolen{0};

  // Filled by the submitter before it releases its hold.
  std::uint64_t num_queries = 0;
  std::uint64_t messages = 0;
  std::uint64_t wire_bytes = 0;
  double dispatch_sec = 0.0;

  WallTimer timer;           ///< started at submit
  double wall_sec = 0.0;     ///< stamped by whoever completes last

  std::atomic<std::uint64_t> outstanding{1};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;

  void finish_one() {
    if (outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      wall_sec = timer.elapsed_sec();
      {
        std::lock_guard lock(mu);
        done = true;
      }
      done_flag.store(true, std::memory_order_release);
      cv.notify_all();
    }
  }

  void await_done() {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return done; });
  }

  /// Lock-free poll for Completion::ready(): true only after wall_sec
  /// and every per-worker stat slot are published (release above pairs
  /// with the poller's acquire).
  std::atomic<bool> done_flag{false};
};

/// The steady-state machinery behind ParallelNativeEngine::build: the
/// one shared key copy (in the Index base), the range partitioner over
/// it, the placement-mode key copies (index::PlacedShards — per-shard
/// node-local copies or per-node replicas, first-touched by the pinned
/// workers that probe them), and the worker fleet itself, laid out over
/// the NUMA topology (arch::make_topology — the host map, or the
/// simulated split MachineSpec::numa_nodes forces). Worker w runs on
/// node w % nodes and owns the shards congruent to its id, so
/// consecutive shards alternate nodes the same way consecutive workers
/// do.
///
/// Each worker consumes one SpscRingHub whose channels are the
/// connected clients; a worker whose own rings run dry STEALS whole
/// work items — same-node victims first, cross-node only from victims
/// whose backlog clears the configured threshold — so a skewed stream
/// no longer serializes on the hot shard's owner. Immutable after the
/// build barrier except for the rings, so any number of clients may
/// submit concurrently.
class ParallelIndex : public Index {
 public:
  ParallelIndex(const ParallelConfig& config,
                std::span<const key_t> index_keys)
      : Index(index_keys),
        config_(config),
        topology_(arch::make_topology(config.numa_nodes)),
        partitioner_(keys(), clamped_shards(config, keys().size())),
        placed_(config.placement,
                kernel_layout(config.kernel) == KeyLayout::kEytzinger,
                partitioner_, topology_.nodes()),
        hubs_(config.num_threads),
        built_(config.num_threads) {
    const std::uint32_t T = config_.num_threads;
    const std::uint32_t N = topology_.nodes();
    worker_node_.resize(T);
    worker_rank_on_node_.resize(T);
    std::vector<std::uint32_t> per_node(N, 0);
    for (std::uint32_t w = 0; w < T; ++w) {
      worker_node_[w] = w % N;
      worker_rank_on_node_[w] = per_node[w % N]++;
    }
    workers_on_node_ = std::move(per_node);
    // Replica storage is reserved up front (touches no data pages — the
    // workers' first-touch copies place them) so build_share needs no
    // cross-worker ordering. Nodes without a worker are skipped: no
    // thread will ever probe their replica (workers read only their own
    // node's), so allocating one would be pure rent.
    for (std::uint32_t node = 0; node < N; ++node)
      if (workers_on_node_[node] > 0) placed_.allocate_replica(node);
    workers_.reserve(T);
    for (std::uint32_t w = 0; w < T; ++w)
      workers_.emplace_back([this, w] { worker_loop(w); });
    // The build barrier: build() returns a fully placed, ready index,
    // and every worker's copies are published to every other worker
    // (and to submitting clients) through this join point.
    built_.wait();
  }

  ~ParallelIndex() override {
    // No client outlives the Index (each holds a shared_ptr to it), so
    // every channel is already closed and drained; close() just lets
    // the workers run their final empty scan and exit.
    for (auto& hub : hubs_) hub.close();
    for (auto& worker : workers_) worker.join();
  }

  const char* backend() const override {
    return backend_name(Backend::kParallelNative);
  }

  const ParallelConfig& config() const { return config_; }
  const arch::Topology& topology() const { return topology_; }

  /// A dispatched message tagged with the shard it must be resolved on
  /// (a worker owns several shards when num_shards > num_threads) and
  /// the submission it belongs to.
  struct WorkItem {
    std::uint32_t shard = 0;
    DispatchBatch batch;
    std::shared_ptr<Submission> sub;
  };

  using WorkHub = net::SpscRingHub<WorkItem>;
  using WorkChannel = WorkHub::Channel;

  /// One dispatch channel per worker for a freshly connected client.
  /// Const because the hubs are internally synchronized.
  std::vector<std::shared_ptr<WorkChannel>> open_channels() const {
    std::vector<std::shared_ptr<WorkChannel>> channels;
    channels.reserve(config_.num_threads);
    for (auto& hub : hubs_) channels.push_back(hub.open(config_.ring_slots));
    return channels;
  }

  /// The submit path, run on the CLIENT's thread (each client plays a
  /// master): route the batch into per-shard messages with the shared
  /// kMasterRound loop and push them into the client's own rings.
  /// Returns the completion the base Client waits on.
  std::unique_ptr<Client::Completion> submit_batch(
      std::span<const key_t> queries, std::vector<rank_t>* out_ranks,
      const SubmitOptions& options,
      std::span<const std::shared_ptr<WorkChannel>> channels) const;

 private:
  class ParallelCompletion;

  void pin_worker(std::uint32_t w) {
    const std::uint32_t node = worker_node_[w];
    const auto& cpus = topology_.cpus_of(node);
    // One specific core of the worker's node, spreading the node's
    // workers across its cores; fall back to node-scoped, then to the
    // plain allowed-mask pin — pinning stays best-effort everywhere.
    const int cpu = cpus[worker_rank_on_node_[w] % cpus.size()];
    if (pin_current_thread_to_os_cpu(cpu)) return;
    if (arch::pin_current_thread_to_node(topology_, node)) return;
    pin_current_thread(static_cast<int>(w));
  }

  void resolve(std::uint32_t w, std::uint32_t node, WorkItem& item) {
    WallTimer batch_timer;
    const auto part = placed_.sorted_of(node, item.shard);
    const index::EytzingerLayout* layout = placed_.layout_of(node, item.shard);
    const rank_t offset = partitioner_.start_of(item.shard);
    const DispatchBatch& batch = item.batch;
    Submission& sub = *item.sub;
    // Resolve the whole message in one kernel call (the interleaved
    // kernels overlap the lanes' cache misses), then scatter by id.
    scratch_.resize(batch.keys.size());
    index::resolve_batch(config_.kernel, part, layout, batch.keys,
                         scratch_.data(), config_.interleave_width);
    if (sub.delta == nullptr) {
      for (std::size_t j = 0; j < batch.keys.size(); ++j)
        sub.out[batch.ids[j]] = offset + scratch_[j];
    } else {
      // Delta merge in the scatter: the kernel above resolved base
      // ranks; fold the live-set correction (global, so applied after
      // the shard offset — a shard-local rank could transiently
      // underflow) while the batch is still in cache. The snapshot is
      // immutable and tiny, so concurrent workers share it read-only.
      const index::DeltaSnapshot& delta = *sub.delta;
      for (std::size_t j = 0; j < batch.keys.size(); ++j)
        sub.out[batch.ids[j]] = static_cast<rank_t>(
            static_cast<std::int64_t>(offset + scratch_[j]) +
            delta.correction(batch.keys[j]));
    }
    sub.worker_queries[w] += batch.keys.size();
    sub.worker_busy_sec[w] += batch_timer.elapsed_sec();
    if (sub.track_latency) {
      // One completion stamp for the whole resolved message (its
      // queries' answers all exist now), read against the submit stamp.
      const double resolved_ns = sub.timer.elapsed_ns();
      if (sub.queued_ns.empty()) {
        sub.worker_latency[w].add_n(resolved_ns, batch.keys.size());
      } else {
        for (const std::uint32_t id : batch.ids)
          sub.worker_latency[w].add(resolved_ns + sub.queued_ns[id]);
      }
    }
    if (item.shard % config_.num_threads != w)
      sub.stolen.fetch_add(1, std::memory_order_relaxed);
    sub.finish_one();
    item = WorkItem{};  // drop the submission reference before parking
  }

  /// One pass over the other workers' hubs: same-node victims first
  /// (their shard copies are local under kNodeLocal), then cross-node
  /// victims whose backlog clears the imbalance threshold — a remote
  /// steal must be worth the remote-DRAM probes it will cause.
  bool steal_work(std::uint32_t w, std::uint32_t node, WorkItem& item) {
    const std::uint32_t T = config_.num_threads;
    for (std::uint32_t offset = 1; offset < T; ++offset) {
      const std::uint32_t v = (w + offset) % T;
      if (worker_node_[v] != node) continue;
      // pending() pre-filter: don't take (and contend on) an idle
      // victim's consumer lock for an empty scan — a stale-low read is
      // self-healed by the next sweep.
      if (hubs_[v].pending() == 0) continue;
      if (hubs_[v].try_steal(item)) return true;
    }
    for (std::uint32_t offset = 1; offset < T; ++offset) {
      const std::uint32_t v = (w + offset) % T;
      if (worker_node_[v] == node) continue;
      if (hubs_[v].pending() < config_.steal_threshold) continue;
      if (hubs_[v].try_steal(item)) return true;
    }
    return false;
  }

  void worker_loop(std::uint32_t w) {
    const std::uint32_t node = worker_node_[w];
    if (config_.pin_threads) pin_worker(w);
    // First-touch build of this worker's share of the placement copies,
    // ON the pinned thread — this is what puts a shard's pages on its
    // owner's node. The latch then publishes every share fleet-wide.
    placed_.build_share(node, w, config_.num_threads,
                        worker_rank_on_node_[w],
                        workers_on_node_[node]);
    built_.count_down();
    WorkItem item;
    std::chrono::microseconds nap = kStealRecheckNap;
    for (;;) {
      if (hubs_[w].try_pop(item)) {
        resolve(w, node, item);
        nap = kStealRecheckNap;
        continue;
      }
      if (config_.work_stealing && steal_work(w, node, item)) {
        resolve(w, node, item);
        nap = kStealRecheckNap;
        continue;
      }
      // Park on the own hub. With stealing on, nap-and-recheck instead
      // of sleeping: pushes to a VICTIM's hub don't wake this worker,
      // so the nap bounds how long a backlog can sit unstolen — backing
      // off while every sweep comes up empty.
      const auto result = hubs_[w].wait_pop(
          item, config_.work_stealing ? std::chrono::nanoseconds(nap)
                                      : WorkHub::kWaitForever);
      if (result == WorkHub::PopResult::kClosed) return;
      if (result == WorkHub::PopResult::kItem) {
        resolve(w, node, item);
        nap = kStealRecheckNap;
        continue;
      }
      // kTimeout: loop around to the steal pass, napping longer.
      nap = std::min(nap * 2, kStealRecheckNapCap);
    }
  }

  std::unique_ptr<Client> do_connect(
      std::shared_ptr<const Index> self) const override;

  ParallelConfig config_;
  arch::Topology topology_;
  index::RangePartitioner partitioner_;
  index::PlacedShards placed_;
  std::vector<std::uint32_t> worker_node_;          ///< worker -> node
  std::vector<std::uint32_t> worker_rank_on_node_;  ///< rank among node peers
  std::vector<std::uint32_t> workers_on_node_;      ///< node -> worker count
  // Mutable: opening channels and pushing work are logically const (the
  // hubs synchronize internally); everything else is truly immutable.
  mutable std::vector<WorkHub> hubs_;
  std::latch built_;
  std::vector<std::thread> workers_;
  /// Per-worker scratch for one message's local ranks before the
  /// scatter. thread_local so thieves and owners never share it.
  static thread_local std::vector<rank_t> scratch_;
};

thread_local std::vector<rank_t> ParallelIndex::scratch_;

/// Waits one submission and assembles its RunReport. Self-contained (no
/// back-pointer to client or index): safe to await during client
/// destruction. The worker fleet outlives the wait because the base
/// Client still holds the Index while draining.
class ParallelIndex::ParallelCompletion : public Client::Completion {
 public:
  ParallelCompletion(std::shared_ptr<Submission> sub,
                     const ParallelConfig& config)
      : sub_(std::move(sub)), num_threads_(config.num_threads),
        batch_bytes_(config.batch_bytes) {}

  bool ready() const override {
    return sub_->done_flag.load(std::memory_order_acquire);
  }

  RunReport await() override {
    Submission& sub = *sub_;
    sub.await_done();
    const std::uint32_t T = num_threads_;

    // The submitting client is node 0 (the master), workers are nodes
    // 1..T — the same master-inclusive accounting as the other
    // backends, so num_nodes is comparable across the Engine seam.
    RunReport report;
    report.method = Method::kC3;
    report.num_queries = sub.num_queries;
    report.num_nodes = T + 1;
    report.batch_bytes = batch_bytes_;
    report.raw_makespan = ns_to_ps(sub.wall_sec * 1e9);
    report.makespan = report.raw_makespan;
    report.messages = sub.messages;
    report.wire_bytes = sub.wire_bytes;
    report.stolen_messages = sub.stolen.load(std::memory_order_relaxed);
    report.nodes.resize(T + 1);
    report.nodes[0].queries = sub.num_queries;
    report.nodes[0].busy = ns_to_ps(sub.dispatch_sec * 1e9);
    report.nodes[0].finish = report.raw_makespan;
    report.nodes[0].idle = report.raw_makespan > report.nodes[0].busy
                               ? report.raw_makespan - report.nodes[0].busy
                               : 0;
    double idle_sum = 0.0;
    for (std::uint32_t w = 0; w < T; ++w) {
      NodeReport& node = report.nodes[w + 1];
      node.queries = sub.worker_queries[w];
      node.busy = ns_to_ps(sub.worker_busy_sec[w] * 1e9);
      node.finish = report.raw_makespan;
      node.idle = report.raw_makespan > node.busy
                      ? report.raw_makespan - node.busy
                      : 0;
      if (sub.wall_sec > 0.0)
        idle_sum += std::max(0.0, 1.0 - sub.worker_busy_sec[w] / sub.wall_sec);
    }
    report.slave_idle_fraction = idle_sum / T;
    // Per-worker latency slots fold into the one per-batch histogram;
    // Client::wait's RunReport::merge then folds batches into the
    // client's running total — bounded memory at every level.
    for (Summary& s : sub.worker_latency) report.latency_ns.merge(s);
    return report;
  }

 private:
  std::shared_ptr<Submission> sub_;
  std::uint32_t num_threads_;
  std::uint64_t batch_bytes_;
};

std::unique_ptr<Client::Completion> ParallelIndex::submit_batch(
    std::span<const key_t> queries, std::vector<rank_t>* out_ranks,
    const SubmitOptions& options,
    std::span<const std::shared_ptr<WorkChannel>> channels) const {
  const std::uint32_t T = config_.num_threads;
  auto sub = std::make_shared<Submission>(T, config_.track_latency);
  if (out_ranks != nullptr) {
    out_ranks->assign(queries.size(), 0);
    sub->out = out_ranks->data();
  } else {
    sub->sink.assign(queries.size(), 0);
    sub->out = sub->sink.data();
  }
  sub->num_queries = queries.size();
  // Pinned by the submission (not the caller): workers read it until the
  // last item of this batch resolves, however long the ticket is in
  // flight and whatever generation the store publishes meanwhile.
  if (options.delta != nullptr && !options.delta->empty())
    sub->delta = options.delta;
  // Copied BEFORE the first push: workers index it by query id the
  // moment an item lands, and the caller's span dies with submit().
  if (config_.track_latency && !options.queued_ns.empty())
    sub->queued_ns.assign(options.queued_ns.begin(), options.queued_ns.end());

  // wire_bytes matches the simulator's request-hop accounting exactly:
  // key payload + per-message header. The ids are bookkeeping for the
  // shared-memory scatter (a real cluster's reply hop would carry the
  // ranks instead), so they are not charged as wire traffic. Each
  // item's hold is added BEFORE its push, so the countdown can never
  // hit zero while messages are still being enqueued.
  sub->timer.start();
  WallTimer dispatch_timer;
  sub->messages = dispatch_master_rounds(
      queries, config_.batch_bytes, partitioner_.parts(),
      [&](key_t q) { return partitioner_.route(q); },
      [&](std::uint32_t s, DispatchBatch&& batch) {
        sub->wire_bytes += config_.message_header_bytes +
                           batch.keys.size() * sizeof(key_t);
        sub->outstanding.fetch_add(1, std::memory_order_relaxed);
        channels[s % T]->push(WorkItem{s, std::move(batch), sub});
      });
  sub->dispatch_sec = dispatch_timer.elapsed_sec();
  // Release the submitter's hold; completes immediately on zero work.
  sub->finish_one();
  return std::make_unique<ParallelCompletion>(std::move(sub), config_);
}

/// One master stream into the shared fleet: the client owns one SPSC
/// channel per worker, so its pushes never contend with other clients.
/// All other state lives in the base Client and the ParallelIndex.
class ParallelClient : public Client {
 public:
  ParallelClient(std::shared_ptr<const Index> index,
                 const ParallelIndex* parallel)
      : Client(std::move(index)), parallel_(parallel),
        channels_(parallel->open_channels()) {}

  ~ParallelClient() override {
    // Drain BEFORE closing the channels: in-flight items live in the
    // rings until a worker pops them, and a closed channel is pruned
    // from the worker's scan once empty. The base dtor's drain would
    // run too late (after our members are gone). Note the hubs' own
    // guarantee: a pruned channel stays alive (shared_ptr) until every
    // scanning worker drops its snapshot, so destroying this client
    // while OTHER clients keep the fleet busy never frees a ring a
    // worker is mid-pop on.
    drain();
    for (auto& channel : channels_) channel->close();
  }

  const char* backend() const override {
    return backend_name(Backend::kParallelNative);
  }

 private:
  std::unique_ptr<Completion> do_submit(
      std::span<const key_t> queries, std::vector<rank_t>* out_ranks,
      const SubmitOptions& options) override {
    return parallel_->submit_batch(queries, out_ranks, options, channels_);
  }

  const ParallelIndex* parallel_;  // the index the base class keeps alive
  std::vector<std::shared_ptr<ParallelIndex::WorkChannel>> channels_;
};

std::unique_ptr<Client> ParallelIndex::do_connect(
    std::shared_ptr<const Index> self) const {
  return std::make_unique<ParallelClient>(std::move(self), this);
}

}  // namespace

std::shared_ptr<const Index> ParallelNativeEngine::build(
    std::span<const key_t> index_keys) const {
  return std::make_shared<const ParallelIndex>(config_, index_keys);
}

}  // namespace dici::core
