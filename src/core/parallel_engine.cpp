#include "src/core/parallel_engine.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "src/core/dispatch.hpp"
#include "src/index/fast_search.hpp"
#include "src/index/partitioner.hpp"
#include "src/net/blocking_queue.hpp"
#include "src/util/affinity.hpp"
#include "src/util/assert.hpp"
#include "src/util/timer.hpp"

namespace dici::core {

const char* search_kernel_name(SearchKernel kernel) {
  switch (kernel) {
    case SearchKernel::kStdUpperBound: return "std-upper-bound";
    case SearchKernel::kBranchless: return "branchless";
    case SearchKernel::kPrefetch: return "prefetch";
  }
  return "?";
}

ParallelNativeEngine::ParallelNativeEngine(const ParallelConfig& config)
    : config_(config) {
  DICI_CHECK_FMT(config_.num_threads >= 1,
                 "ParallelConfig::num_threads = %u: need at least one worker",
                 config_.num_threads);
  DICI_CHECK_FMT(config_.batch_bytes >= sizeof(key_t),
                 "ParallelConfig::batch_bytes = %llu: a dispatch round must "
                 "hold at least one %zu-byte key",
                 static_cast<unsigned long long>(config_.batch_bytes),
                 sizeof(key_t));
}

ParallelConfig parallel_config_from(const ExperimentConfig& config) {
  validate(config);
  check_native_supported(config);
  DICI_CHECK_FMT(config.method == Method::kC3,
                 "ExperimentConfig::method = %s: ParallelNativeEngine shards "
                 "sorted arrays (Method C-3)",
                 method_name(config.method));
  DICI_CHECK_FMT(config.num_masters == 1,
                 "ExperimentConfig::num_masters = %u: ParallelNativeEngine "
                 "maps extra masters to extra Clients, not config knobs — "
                 "connect() one Client per master",
                 config.num_masters);
  ParallelConfig parallel;
  parallel.num_threads = config.num_slaves();
  parallel.num_shards = config.num_slaves();
  parallel.batch_bytes = config.batch_bytes;
  parallel.message_header_bytes = config.message_header_bytes;
  return parallel;
}

ParallelNativeEngine::ParallelNativeEngine(const ExperimentConfig& config)
    : ParallelNativeEngine(parallel_config_from(config)) {}

namespace {

rank_t run_kernel(SearchKernel kernel, std::span<const key_t> keys, key_t q) {
  switch (kernel) {
    case SearchKernel::kBranchless:
      return index::branchless_upper_bound(keys, q);
    case SearchKernel::kPrefetch:
      return index::prefetch_upper_bound(keys, q);
    default:
      return static_cast<rank_t>(
          std::upper_bound(keys.begin(), keys.end(), q) - keys.begin());
  }
}

std::uint32_t clamped_shards(const ParallelConfig& config, std::size_t n) {
  const std::uint32_t want =
      config.num_shards == 0 ? config.num_threads : config.num_shards;
  return static_cast<std::uint32_t>(std::min<std::size_t>(want, n));
}

/// Completion record for one submitted batch, shared between the
/// submitting client, every work item the batch fanned out into, and
/// the waiter. `outstanding` starts at 1 (the submitter's hold) and is
/// incremented per enqueued item; whoever drops it to zero — the last
/// worker, or the submitter itself for an empty batch — stamps the wall
/// clock and signals done. Per-worker stat slots are written only by
/// their owning worker; the acq_rel countdown plus the done-flag mutex
/// publish every slot to the waiter.
struct Submission {
  explicit Submission(std::uint32_t num_workers)
      : worker_queries(num_workers, 0), worker_busy_sec(num_workers, 0.0) {}

  rank_t* out = nullptr;
  std::vector<rank_t> sink;  ///< backs `out` when the caller passed none

  std::vector<std::uint64_t> worker_queries;
  std::vector<double> worker_busy_sec;

  // Filled by the submitter before it releases its hold.
  std::uint64_t num_queries = 0;
  std::uint64_t messages = 0;
  std::uint64_t wire_bytes = 0;
  double dispatch_sec = 0.0;

  WallTimer timer;           ///< started at submit
  double wall_sec = 0.0;     ///< stamped by whoever completes last

  std::atomic<std::uint64_t> outstanding{1};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;

  void finish_one() {
    if (outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      wall_sec = timer.elapsed_sec();
      {
        std::lock_guard lock(mu);
        done = true;
      }
      cv.notify_all();
    }
  }

  void await_done() {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return done; });
  }
};

/// The steady-state machinery behind ParallelNativeEngine::build: the
/// one shared key copy (in the Index base), the range partitioner over
/// it, and the pinned worker fleet. Immutable after construction except
/// for the internally-synchronized queues, so any number of clients may
/// submit concurrently; work items from different clients and different
/// in-flight batches interleave freely on the same queues.
class ParallelIndex : public Index {
 public:
  ParallelIndex(const ParallelConfig& config,
                std::span<const key_t> index_keys)
      : Index(index_keys),
        config_(config),
        partitioner_(keys(), clamped_shards(config, keys().size())),
        queues_(config.num_threads) {
    workers_.reserve(config_.num_threads);
    for (std::uint32_t w = 0; w < config_.num_threads; ++w)
      workers_.emplace_back([this, w] { worker_loop(w); });
  }

  ~ParallelIndex() override {
    // close() lets workers drain queued items before exiting, so even a
    // shutdown racing in-flight work resolves every submission.
    for (auto& queue : queues_) queue.close();
    for (auto& worker : workers_) worker.join();
  }

  const char* backend() const override {
    return backend_name(Backend::kParallelNative);
  }

  const ParallelConfig& config() const { return config_; }

  /// The submit path, run on the CLIENT's thread (each client plays a
  /// master): route the batch into per-shard messages with the shared
  /// kMasterRound loop and enqueue them. Returns the completion the
  /// base Client waits on. Const because the queues are internally
  /// synchronized — submitting mutates no index state.
  std::unique_ptr<Client::Completion> submit_batch(
      std::span<const key_t> queries, std::vector<rank_t>* out_ranks) const;

 private:
  /// A dispatched message tagged with the shard it must be resolved on
  /// (a worker owns several shards when num_shards > num_threads) and
  /// the submission it belongs to.
  struct WorkItem {
    std::uint32_t shard = 0;
    DispatchBatch batch;
    std::shared_ptr<Submission> sub;
  };

  class ParallelCompletion;

  void worker_loop(std::uint32_t w) {
    if (config_.pin_threads) pin_current_thread(static_cast<int>(w));
    while (auto item = queues_[w].pop()) {
      WallTimer batch_timer;
      const auto part = partitioner_.keys_of(item->shard);
      const rank_t offset = partitioner_.start_of(item->shard);
      const DispatchBatch& batch = item->batch;
      Submission& sub = *item->sub;
      for (std::size_t j = 0; j < batch.keys.size(); ++j)
        sub.out[batch.ids[j]] =
            offset + run_kernel(config_.kernel, part, batch.keys[j]);
      sub.worker_queries[w] += batch.keys.size();
      sub.worker_busy_sec[w] += batch_timer.elapsed_sec();
      sub.finish_one();
    }
  }

  std::unique_ptr<Client> do_connect(
      std::shared_ptr<const Index> self) const override;

  ParallelConfig config_;
  index::RangePartitioner partitioner_;
  // Mutable: pushing work is logically const (the queues synchronize
  // internally); everything else about the index is truly immutable.
  mutable std::vector<net::BlockingQueue<WorkItem>> queues_;
  std::vector<std::thread> workers_;
};

/// Waits one submission and assembles its RunReport. Self-contained (no
/// back-pointer to client or index): safe to await during client
/// destruction. The worker fleet outlives the wait because the base
/// Client still holds the Index while draining.
class ParallelIndex::ParallelCompletion : public Client::Completion {
 public:
  ParallelCompletion(std::shared_ptr<Submission> sub,
                     const ParallelConfig& config)
      : sub_(std::move(sub)), num_threads_(config.num_threads),
        batch_bytes_(config.batch_bytes) {}

  RunReport await() override {
    Submission& sub = *sub_;
    sub.await_done();
    const std::uint32_t T = num_threads_;

    // The submitting client is node 0 (the master), workers are nodes
    // 1..T — the same master-inclusive accounting as the other
    // backends, so num_nodes is comparable across the Engine seam.
    RunReport report;
    report.method = Method::kC3;
    report.num_queries = sub.num_queries;
    report.num_nodes = T + 1;
    report.batch_bytes = batch_bytes_;
    report.raw_makespan = ns_to_ps(sub.wall_sec * 1e9);
    report.makespan = report.raw_makespan;
    report.messages = sub.messages;
    report.wire_bytes = sub.wire_bytes;
    report.nodes.resize(T + 1);
    report.nodes[0].queries = sub.num_queries;
    report.nodes[0].busy = ns_to_ps(sub.dispatch_sec * 1e9);
    report.nodes[0].finish = report.raw_makespan;
    report.nodes[0].idle = report.raw_makespan > report.nodes[0].busy
                               ? report.raw_makespan - report.nodes[0].busy
                               : 0;
    double idle_sum = 0.0;
    for (std::uint32_t w = 0; w < T; ++w) {
      NodeReport& node = report.nodes[w + 1];
      node.queries = sub.worker_queries[w];
      node.busy = ns_to_ps(sub.worker_busy_sec[w] * 1e9);
      node.finish = report.raw_makespan;
      node.idle = report.raw_makespan > node.busy
                      ? report.raw_makespan - node.busy
                      : 0;
      if (sub.wall_sec > 0.0)
        idle_sum += std::max(0.0, 1.0 - sub.worker_busy_sec[w] / sub.wall_sec);
    }
    report.slave_idle_fraction = idle_sum / T;
    return report;
  }

 private:
  std::shared_ptr<Submission> sub_;
  std::uint32_t num_threads_;
  std::uint64_t batch_bytes_;
};

std::unique_ptr<Client::Completion> ParallelIndex::submit_batch(
    std::span<const key_t> queries, std::vector<rank_t>* out_ranks) const {
  const std::uint32_t T = config_.num_threads;
  auto sub = std::make_shared<Submission>(T);
  if (out_ranks != nullptr) {
    out_ranks->assign(queries.size(), 0);
    sub->out = out_ranks->data();
  } else {
    sub->sink.assign(queries.size(), 0);
    sub->out = sub->sink.data();
  }
  sub->num_queries = queries.size();

  // wire_bytes matches the simulator's request-hop accounting exactly:
  // key payload + per-message header. The ids are bookkeeping for the
  // shared-memory scatter (a real cluster's reply hop would carry the
  // ranks instead), so they are not charged as wire traffic. Each
  // item's hold is added BEFORE its push, so the countdown can never
  // hit zero while messages are still being enqueued.
  sub->timer.start();
  WallTimer dispatch_timer;
  sub->messages = dispatch_master_rounds(
      queries, config_.batch_bytes, partitioner_.parts(),
      [&](key_t q) { return partitioner_.route(q); },
      [&](std::uint32_t s, DispatchBatch&& batch) {
        sub->wire_bytes += config_.message_header_bytes +
                           batch.keys.size() * sizeof(key_t);
        sub->outstanding.fetch_add(1, std::memory_order_relaxed);
        queues_[s % T].push(WorkItem{s, std::move(batch), sub});
      });
  sub->dispatch_sec = dispatch_timer.elapsed_sec();
  // Release the submitter's hold; completes immediately on zero work.
  sub->finish_one();
  return std::make_unique<ParallelCompletion>(std::move(sub), config_);
}

/// One master stream into the shared fleet. All interesting state lives
/// in the base Client and the ParallelIndex; this just forwards.
class ParallelClient : public Client {
 public:
  ParallelClient(std::shared_ptr<const Index> index,
                 const ParallelIndex* parallel)
      : Client(std::move(index)), parallel_(parallel) {}

  const char* backend() const override {
    return backend_name(Backend::kParallelNative);
  }

 private:
  std::unique_ptr<Completion> do_submit(
      std::span<const key_t> queries,
      std::vector<rank_t>* out_ranks) override {
    return parallel_->submit_batch(queries, out_ranks);
  }

  const ParallelIndex* parallel_;  // the index the base class keeps alive
};

std::unique_ptr<Client> ParallelIndex::do_connect(
    std::shared_ptr<const Index> self) const {
  return std::make_unique<ParallelClient>(std::move(self), this);
}

}  // namespace

std::shared_ptr<const Index> ParallelNativeEngine::build(
    std::span<const key_t> index_keys) const {
  return std::make_shared<const ParallelIndex>(config_, index_keys);
}

}  // namespace dici::core
