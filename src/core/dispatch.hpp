// The master's dispatch loop, shared by the threaded native engines.
//
// kMasterRound semantics (the simulator's default): route each query to
// a lane, stage it, and flush every non-empty staging buffer once
// batch_bytes of the query stream has been ingested — plus a final
// flush at end of stream. Keeping this in one place means NativeCluster
// and ParallelNativeEngine cannot drift apart on batching behaviour.
//
// Scope note, post batch-kernel migration: this file is the ROUTING
// side of dispatch and it is per-query by nature — each query's shard
// is its own upper_bound over the delimiters, there is no batch shape
// to exploit before routing has created the batches. The RESOLUTION
// side (what a slave does with a flushed DispatchBatch) lives in
// index/batched_search.hpp's resolve_batch, which both engines call on
// whole messages; the old per-query run_kernel helpers died with it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "src/util/assert.hpp"
#include "src/util/types.hpp"

namespace dici::core {

/// One staged message: a lane's slice of the current dispatch round.
struct DispatchBatch {
  std::vector<key_t> keys;
  std::vector<std::uint32_t> ids;  ///< query indexes, for the order-preserving scatter
};

/// Route `queries` into `lanes` staging buffers and deliver them with
/// `send(lane, DispatchBatch&&)` in rounds of `batch_bytes`. Returns the
/// number of messages sent.
template <typename RouteFn, typename SendFn>
std::uint64_t dispatch_master_rounds(std::span<const key_t> queries,
                                     std::uint64_t batch_bytes,
                                     std::uint32_t lanes, RouteFn&& route,
                                     SendFn&& send) {
  DICI_CHECK_MSG(queries.size() <= std::numeric_limits<std::uint32_t>::max(),
                 "query ids are 32-bit; split the stream into <4G chunks");
  std::vector<DispatchBatch> staging(lanes);
  const std::size_t keys_per_round = static_cast<std::size_t>(
      std::max<std::uint64_t>(1, batch_bytes / sizeof(key_t)));
  std::uint64_t messages = 0;
  auto flush = [&](std::uint32_t lane) {
    if (staging[lane].keys.empty()) return;
    ++messages;
    send(lane, std::move(staging[lane]));
    staging[lane] = {};
  };
  std::size_t round_fill = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const std::uint32_t lane = route(queries[i]);
    staging[lane].keys.push_back(queries[i]);
    staging[lane].ids.push_back(static_cast<std::uint32_t>(i));
    if (++round_fill == keys_per_round) {
      for (std::uint32_t l = 0; l < lanes; ++l) flush(l);
      round_fill = 0;
    }
  }
  for (std::uint32_t l = 0; l < lanes; ++l) flush(l);
  return messages;
}

}  // namespace dici::core
