#include "src/util/affinity.hpp"

#include <algorithm>

#if defined(__linux__)
#include <cerrno>
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace dici {

#if defined(__linux__)
namespace {

/// Dynamically sized CPU mask: hosts can expose more possible CPUs than
/// CPU_SETSIZE (1024), where the fixed-size sched_getaffinity call
/// fails with EINVAL — exactly the big-NUMA hardware placement targets,
/// so the mask grows until the kernel accepts it.
class CpuMask {
 public:
  CpuMask() = default;
  CpuMask(const CpuMask&) = delete;
  CpuMask& operator=(const CpuMask&) = delete;
  ~CpuMask() {
    if (set_ != nullptr) CPU_FREE(set_);
  }

  bool alloc(int bits) {
    if (set_ != nullptr) CPU_FREE(set_);
    bits_ = std::max(bits, 1);
    set_ = CPU_ALLOC(static_cast<std::size_t>(bits_));
    if (set_ == nullptr) return false;
    bytes_ = CPU_ALLOC_SIZE(static_cast<std::size_t>(bits_));
    CPU_ZERO_S(bytes_, set_);
    return true;
  }

  /// Fill with the calling thread's allowed mask, growing on EINVAL.
  bool read_allowed() {
    for (int bits = CPU_SETSIZE; bits <= (1 << 20); bits <<= 1) {
      if (!alloc(bits)) return false;
      if (sched_getaffinity(0, bytes_, set_) == 0) return true;
      if (errno != EINVAL) return false;
    }
    return false;
  }

  bool test(int cpu) const {
    return cpu >= 0 && cpu < bits_ && CPU_ISSET_S(cpu, bytes_, set_);
  }
  void set(int cpu) {
    if (cpu >= 0 && cpu < bits_) CPU_SET_S(cpu, bytes_, set_);
  }
  int bits() const { return bits_; }

  bool apply() const {
    return pthread_setaffinity_np(pthread_self(), bytes_, set_) == 0;
  }

 private:
  cpu_set_t* set_ = nullptr;
  std::size_t bytes_ = 0;
  int bits_ = 0;
};

}  // namespace
#endif  // __linux__

std::vector<int> allowed_cpus() {
#if defined(__linux__)
  // The calling thread's allowed mask. For a freshly started thread this
  // is the process mask (taskset / cgroup cpuset restrictions included),
  // which is exactly the set of legal pin targets.
  CpuMask mask;
  if (mask.read_allowed()) {
    std::vector<int> cpus;
    for (int cpu = 0; cpu < mask.bits(); ++cpu)
      if (mask.test(cpu)) cpus.push_back(cpu);
    if (!cpus.empty()) return cpus;
  }
  // Query failed: fall back to the online count so callers still get a
  // plausible target list (ids 0..n-1).
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  std::vector<int> cpus;
  for (int cpu = 0; cpu < std::max(1L, n); ++cpu) cpus.push_back(cpu);
  return cpus;
#else
  return {0};
#endif
}

int available_cpus() {
  return static_cast<int>(allowed_cpus().size());
}

int pin_target(std::span<const int> allowed, int slot) {
  if (allowed.empty()) return -1;
  const std::size_t idx =
      static_cast<std::size_t>(slot < 0 ? -(slot + 1) : slot) % allowed.size();
  return allowed[idx];
}

bool pin_current_thread(int cpu) {
  const std::vector<int> allowed = allowed_cpus();
  return pin_current_thread_to_os_cpu(pin_target(allowed, cpu));
}

bool pin_current_thread_to_os_cpu(int os_cpu) {
#if defined(__linux__)
  if (os_cpu < 0) return false;
  // setaffinity REPLACES the mask, and the kernel only checks the
  // cgroup cpuset — so without this guard a stale target would silently
  // WIDEN a taskset-style restriction instead of failing.
  CpuMask allowed;
  if (!allowed.read_allowed()) return false;
  if (!allowed.test(os_cpu)) return false;
  CpuMask one;
  if (!one.alloc(std::max(os_cpu + 1, CPU_SETSIZE))) return false;
  one.set(os_cpu);
  return one.apply();
#else
  (void)os_cpu;
  return false;
#endif
}

bool pin_current_thread_to_cpus(std::span<const int> os_cpus) {
#if defined(__linux__)
  // Intersect with the allowed mask so a stale topology (CPUs since
  // removed from the cpuset) degrades instead of failing or widening.
  CpuMask allowed;
  if (!allowed.read_allowed()) return false;
  CpuMask target;
  if (!target.alloc(allowed.bits())) return false;
  int kept = 0;
  for (const int cpu : os_cpus) {
    if (!allowed.test(cpu)) continue;
    target.set(cpu);
    ++kept;
  }
  if (kept == 0) return false;
  return target.apply();
#else
  (void)os_cpus;
  return false;
#endif
}

}  // namespace dici
