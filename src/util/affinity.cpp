#include "src/util/affinity.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace dici {

int available_cpus() {
#if defined(__linux__)
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 1;
#else
  return 1;
#endif
}

bool pin_current_thread(int cpu) {
#if defined(__linux__)
  const int ncpu = available_cpus();
  if (ncpu <= 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu % ncpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace dici
