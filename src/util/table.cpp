#include "src/util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "src/util/assert.hpp"

namespace dici {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DICI_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  DICI_CHECK_MSG(cells.size() == headers_.size(),
                 "row width does not match header count");
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_values(const std::vector<double>& values,
                               int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::to_string(int indent) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out += pad;
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size())
        out += std::string(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };
  emit_row(headers_);
  out += pad;
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out += std::string(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string TextTable::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void TextTable::print(int indent) const {
  std::fputs(to_string(indent).c_str(), stdout);
}

}  // namespace dici
