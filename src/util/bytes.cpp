#include "src/util/bytes.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "src/util/assert.hpp"

namespace dici {

std::string format_bytes(std::uint64_t bytes) {
  const struct {
    std::uint64_t unit;
    const char* suffix;
  } scales[] = {{GiB, "GB"}, {MiB, "MB"}, {KiB, "KB"}};
  char buf[32];
  for (const auto& s : scales) {
    if (bytes >= s.unit) {
      if (bytes % s.unit == 0) {
        std::snprintf(buf, sizeof buf, "%llu %s",
                      static_cast<unsigned long long>(bytes / s.unit),
                      s.suffix);
      } else {
        std::snprintf(buf, sizeof buf, "%.1f %s",
                      static_cast<double>(bytes) / static_cast<double>(s.unit),
                      s.suffix);
      }
      return buf;
    }
  }
  std::snprintf(buf, sizeof buf, "%llu B",
                static_cast<unsigned long long>(bytes));
  return buf;
}

std::uint64_t parse_bytes(std::string_view text) {
  std::size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
    ++i;
  std::size_t start = i;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.'))
    ++i;
  DICI_CHECK_MSG(i > start, "parse_bytes: no leading number");
  const double value = std::stod(std::string(text.substr(start, i - start)));
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
    ++i;
  std::uint64_t unit = 1;
  if (i < text.size()) {
    switch (std::tolower(static_cast<unsigned char>(text[i]))) {
      case 'k': unit = KiB; break;
      case 'm': unit = MiB; break;
      case 'g': unit = GiB; break;
      case 'b': unit = 1; break;
      default: DICI_CHECK_MSG(false, "parse_bytes: unknown unit");
    }
  }
  const double bytes = value * static_cast<double>(unit);
  DICI_CHECK_MSG(bytes >= 0 && std::floor(bytes) == bytes,
                 "parse_bytes: fractional byte count");
  return static_cast<std::uint64_t>(bytes);
}

}  // namespace dici
