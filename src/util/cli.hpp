// Minimal command-line flag parser for bench and example binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--flag`.
// Unknown flags abort with a usage dump so a typo never silently runs
// the default experiment.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dici {

class Cli {
 public:
  Cli(std::string program_summary);

  /// Register flags before parse(). `help` appears in usage output.
  void add_flag(const std::string& name, const std::string& help,
                bool default_value);
  void add_int(const std::string& name, const std::string& help,
               std::int64_t default_value);
  void add_double(const std::string& name, const std::string& help,
                  double default_value);
  void add_string(const std::string& name, const std::string& help,
                  const std::string& default_value);
  /// Byte-size flag; accepts "128KB", "4 MB", plain integers.
  void add_bytes(const std::string& name, const std::string& help,
                 std::uint64_t default_value);

  /// Parse argv. On `--help` prints usage and returns false (caller should
  /// exit 0); aborts on malformed input.
  bool parse(int argc, char** argv);

  bool get_flag(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  std::uint64_t get_bytes(const std::string& name) const;

  std::string usage() const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString, kBytes };
  struct Option {
    Kind kind;
    std::string help;
    std::string value;  // canonical textual value
  };
  const Option& find(const std::string& name, Kind kind) const;
  std::string summary_;
  std::string program_;
  std::map<std::string, Option> options_;
};

}  // namespace dici
