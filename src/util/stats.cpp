#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/assert.hpp"

namespace dici {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::add_n(double x, std::uint64_t n) {
  if (n == 0) return;
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  // Chan's combine of (n_, mean_, m2_) with n identical samples (whose
  // own m2 is zero).
  const double delta = x - mean_;
  const double total = static_cast<double>(n_) + static_cast<double>(n);
  m2_ += delta * delta * static_cast<double>(n_) * static_cast<double>(n) /
         total;
  mean_ += delta * static_cast<double>(n) / total;
  sum_ += x * static_cast<double>(n);
  n_ += n;
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  const double delta = other.mean_ - mean_;
  const double total = static_cast<double>(n_) + static_cast<double>(other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  sum_ += other.sum_;
  n_ += other.n_;
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

// --- Summary ---------------------------------------------------------------

std::size_t Summary::bucket_of(double x) {
  if (!(x > 0.0)) return 0;  // <= 0 (and NaN) clamp into the lowest bucket
  int exp = 0;
  const double frac = std::frexp(x, &exp);  // frac in [0.5, 1)
  if (exp < kMinExp) return 0;
  if (exp > kMaxExp) return kBuckets - 1;
  const int sub = std::min(
      kSubBuckets - 1,
      static_cast<int>((frac - 0.5) * 2.0 * static_cast<double>(kSubBuckets)));
  return (static_cast<std::size_t>(exp - kMinExp) << kSubBits) |
         static_cast<std::size_t>(sub);
}

double Summary::bucket_lo(std::size_t bucket) {
  const int exp = kMinExp + static_cast<int>(bucket >> kSubBits);
  const double frac =
      0.5 + static_cast<double>(bucket & (kSubBuckets - 1)) /
                static_cast<double>(2 * kSubBuckets);
  return std::ldexp(frac, exp);
}

void Summary::spill() {
  hist_.assign(kBuckets, 0);
  for (const double x : samples_) ++hist_[bucket_of(x)];
  samples_.clear();
  samples_.shrink_to_fit();
  sorted_ = false;
}

void Summary::bump(double x, std::uint64_t n) { hist_[bucket_of(x)] += n; }

void Summary::add(double x) {
  moments_.add(x);
  if (exact()) {
    if (samples_.size() < kExactCap) {
      samples_.push_back(x);
      sorted_ = false;
      return;
    }
    spill();
  }
  bump(x, 1);
}

void Summary::add_n(double x, std::uint64_t n) {
  if (n == 0) return;
  moments_.add_n(x, n);
  if (exact()) {
    if (samples_.size() + n <= kExactCap) {
      samples_.insert(samples_.end(), static_cast<std::size_t>(n), x);
      sorted_ = false;
      return;
    }
    spill();
  }
  bump(x, n);
}

void Summary::add_all(const std::vector<double>& xs) {
  for (const double x : xs) add(x);
}

void Summary::merge(const Summary& other) {
  if (other.count() == 0) return;
  moments_.merge(other.moments_);
  if (exact() && other.exact() &&
      samples_.size() + other.samples_.size() <= kExactCap) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
    return;
  }
  if (exact()) spill();
  if (other.exact()) {
    for (const double x : other.samples_) bump(x, 1);
  } else {
    for (std::size_t b = 0; b < kBuckets; ++b) hist_[b] += other.hist_[b];
  }
}

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::percentile(double p) const {
  DICI_CHECK(p >= 0.0 && p <= 100.0);
  const std::uint64_t n = moments_.count();
  if (n == 0) return 0.0;
  if (exact()) {
    // The original sorted-vector interpolation, bit-for-bit.
    ensure_sorted();
    if (samples_.size() == 1) return samples_[0];
    const double pos = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= samples_.size()) return samples_.back();
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
  }
  // Histogram estimate: walk the cumulative counts to the bucket holding
  // the target rank, interpolate linearly inside it, and clamp into the
  // exact [min, max] envelope so the tails never overshoot reality.
  const double rank = p / 100.0 * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t c = hist_[b];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= rank) {
      const double within =
          std::clamp((rank - static_cast<double>(cum)) / static_cast<double>(c),
                     0.0, 1.0);
      const double lo = bucket_lo(b);
      const double hi = bucket_lo(b + 1);
      return std::clamp(lo + (hi - lo) * within, moments_.min(),
                        moments_.max());
    }
    cum += c;
  }
  return moments_.max();
}

}  // namespace dici
