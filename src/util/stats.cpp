#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/assert.hpp"

namespace dici {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Summary::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void Summary::merge(const Summary& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  const std::size_t n = samples_.size();
  if (n < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(n - 1));
}

double Summary::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Summary::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double Summary::percentile(double p) const {
  DICI_CHECK(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double pos = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

}  // namespace dici
