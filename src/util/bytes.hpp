// Human-readable byte sizes ("128 KB", "4 MB") <-> integers.
//
// The paper's batch-size axis (Figure 3) is labeled this way; bench output
// uses the same labels so rows can be compared to the paper at a glance.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dici {

inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;

/// Format a byte count compactly: 512 -> "512 B", 131072 -> "128 KB",
/// 4194304 -> "4 MB". Non-integral multiples keep one decimal.
std::string format_bytes(std::uint64_t bytes);

/// Parse "8KB", "8 KB", "8kib", "4M", "123" (plain bytes). Returns the
/// byte count; aborts on malformed input (configuration error).
std::uint64_t parse_bytes(std::string_view text);

}  // namespace dici
