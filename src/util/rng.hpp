// Seeded, reproducible pseudo-random number generation.
//
// We avoid std::mt19937 for speed and cross-platform bit-exactness of the
// *sequence composition* helpers; xoshiro256** passes BigCrush and is the
// de-facto standard for simulation workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/assert.hpp"

namespace dici {

/// splitmix64: used to seed xoshiro from a single 64-bit value.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation, re-expressed). Deterministic for a given seed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x0123456789abcdefull) { reseed(seed); }

  /// Re-initialize the full 256-bit state from a 64-bit seed.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) word = splitmix64(seed);
  }

  /// Next raw 64-bit output.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound). Lemire's multiply-shift rejection
  /// method: unbiased and far faster than modulo.
  std::uint64_t below(std::uint64_t bound) {
    DICI_CHECK(bound > 0);
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    DICI_CHECK(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Zipf(s) sampler over {0, .., n-1} via inverse-CDF on a precomputed
/// table. Exact (not the approximate rejection sampler) because our n is
/// modest (number of slaves or key-space buckets).
class ZipfSampler {
 public:
  /// `n` outcomes, exponent `s` >= 0. s = 0 degenerates to uniform.
  ZipfSampler(std::size_t n, double s);

  /// Sample an outcome index in [0, n).
  std::size_t operator()(Rng& rng) const;

  /// Probability mass of outcome `i` (for tests).
  double pmf(std::size_t i) const;

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(outcome <= i)
};

}  // namespace dici
