// Checked assertions that stay on in release builds.
//
// Simulation code is full of invariants whose violation silently corrupts
// virtual-time accounting, so we keep checks enabled in all build types and
// make failures loud (message + abort) rather than UB.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dici {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "DICI_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::abort();
}

}  // namespace dici

// Abort with a diagnostic if `expr` is false. Always enabled.
#define DICI_CHECK(expr)                                            \
  do {                                                              \
    if (!(expr)) ::dici::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

// Like DICI_CHECK but with an explanatory message.
#define DICI_CHECK_MSG(expr, msg)                                 \
  do {                                                            \
    if (!(expr)) ::dici::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)
