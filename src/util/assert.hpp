// Checked assertions that stay on in release builds.
//
// Simulation code is full of invariants whose violation silently corrupts
// virtual-time accounting, so we keep checks enabled in all build types and
// make failures loud (message + abort) rather than UB.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace dici {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "DICI_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::abort();
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 4, 5)))
#endif
[[noreturn]] inline void
check_failed_fmt(const char* expr, const char* file, int line, const char* fmt,
                 ...) {
  char msg[512];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, args);
  va_end(args);
  check_failed(expr, file, line, msg);
}

}  // namespace dici

// Abort with a diagnostic if `expr` is false. Always enabled.
#define DICI_CHECK(expr)                                            \
  do {                                                              \
    if (!(expr)) ::dici::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

// Like DICI_CHECK but with an explanatory message.
#define DICI_CHECK_MSG(expr, msg)                                 \
  do {                                                            \
    if (!(expr)) ::dici::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

// Like DICI_CHECK_MSG but the message is a printf format string, so the
// diagnostic can name the offending field AND its runtime value (config
// validation relies on this: "num_nodes = 1: ..." beats a bare
// expression). The format arguments are only evaluated on failure.
#define DICI_CHECK_FMT(expr, ...)                                          \
  do {                                                                     \
    if (!(expr))                                                           \
      ::dici::check_failed_fmt(#expr, __FILE__, __LINE__, __VA_ARGS__);    \
  } while (0)
