// CPU affinity helpers for the native (threaded) engines.
//
// The paper's Method C keeps each partition resident in one CPU's cache;
// on a real multicore box that requires pinning the owning thread. On a
// machine with fewer cores than nodes the call degrades gracefully
// (pin to core id modulo available cores).
#pragma once

namespace dici {

/// Number of CPUs available to this process.
int available_cpus();

/// Pin the calling thread to `cpu % available_cpus()`. Returns true on
/// success; false (without aborting) on platforms/configurations where
/// affinity cannot be set — callers treat pinning as best-effort.
bool pin_current_thread(int cpu);

}  // namespace dici
