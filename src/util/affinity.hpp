// CPU affinity helpers for the native (threaded) engines.
//
// The paper's Method C keeps each partition resident in one CPU's cache;
// on a real multicore box that requires pinning the owning thread. All
// pin targets come from the *allowed* mask (sched_getaffinity) rather
// than the online-CPU count: under taskset, a container cpuset, or an
// already-restricted parent the process may only run on a subset of the
// machine, and pinning to a CPU outside that subset either fails or —
// worse — silently widens the mask. On a machine with fewer allowed
// CPUs than workers the calls degrade gracefully (pin to the allowed
// CPU at index `cpu % allowed`).
#pragma once

#include <span>
#include <vector>

namespace dici {

/// Number of CPUs this process is allowed to run on (the allowed mask's
/// population count, not the machine's online count). Always >= 1.
int available_cpus();

/// The allowed mask as a sorted list of OS CPU ids — the only valid pin
/// targets. Falls back to {0} on platforms without affinity queries.
std::vector<int> allowed_cpus();

/// The pin target `slot` maps to: the allowed CPU at index
/// `slot % allowed.size()`. Pure (injectable mask) so the wrap-around /
/// restricted-cpuset policy is unit-testable without changing the
/// process's own mask. Returns -1 for an empty mask.
int pin_target(std::span<const int> allowed, int slot);

/// Pin the calling thread to the allowed CPU at index
/// `cpu % available_cpus()`. Returns true on success; false (without
/// aborting) on platforms/configurations where affinity cannot be set —
/// callers treat pinning as best-effort.
bool pin_current_thread(int cpu);

/// Pin the calling thread to one specific OS CPU id (no wrap-around).
/// Best-effort like pin_current_thread; returns false when the id is
/// not in the allowed mask.
bool pin_current_thread_to_os_cpu(int os_cpu);

/// Restrict the calling thread to a set of OS CPU ids (node-scoped
/// pinning: any core of one NUMA node). Ids outside the allowed mask
/// are dropped; returns false when none remain or the platform cannot
/// set affinity.
bool pin_current_thread_to_cpus(std::span<const int> os_cpus);

}  // namespace dici
