#include "src/util/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "src/util/assert.hpp"
#include "src/util/bytes.hpp"

namespace dici {

Cli::Cli(std::string program_summary) : summary_(std::move(program_summary)) {}

void Cli::add_flag(const std::string& name, const std::string& help,
                   bool default_value) {
  options_[name] = {Kind::kFlag, help, default_value ? "true" : "false"};
}

void Cli::add_int(const std::string& name, const std::string& help,
                  std::int64_t default_value) {
  options_[name] = {Kind::kInt, help, std::to_string(default_value)};
}

void Cli::add_double(const std::string& name, const std::string& help,
                     double default_value) {
  options_[name] = {Kind::kDouble, help, std::to_string(default_value)};
}

void Cli::add_string(const std::string& name, const std::string& help,
                     const std::string& default_value) {
  options_[name] = {Kind::kString, help, default_value};
}

void Cli::add_bytes(const std::string& name, const std::string& help,
                    std::uint64_t default_value) {
  options_[name] = {Kind::kBytes, help, std::to_string(default_value)};
}

bool Cli::parse(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "prog";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    DICI_CHECK_MSG(arg.rfind("--", 0) == 0, "flags must start with --");
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(arg);
    if (it == options_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", arg.c_str(),
                   usage().c_str());
      std::exit(2);
    }
    if (it->second.kind == Kind::kFlag) {
      it->second.value = has_value ? value : "true";
      continue;
    }
    if (!has_value) {
      DICI_CHECK_MSG(i + 1 < argc, "flag is missing its value");
      value = argv[++i];
    }
    // Validate eagerly so errors point at the offending flag.
    switch (it->second.kind) {
      case Kind::kInt: (void)std::stoll(value); break;
      case Kind::kDouble: (void)std::stod(value); break;
      case Kind::kBytes: value = std::to_string(parse_bytes(value)); break;
      default: break;
    }
    it->second.value = value;
  }
  return true;
}

const Cli::Option& Cli::find(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  DICI_CHECK_MSG(it != options_.end(), "flag was never registered");
  DICI_CHECK_MSG(it->second.kind == kind, "flag accessed with wrong type");
  return it->second;
}

bool Cli::get_flag(const std::string& name) const {
  return find(name, Kind::kFlag).value == "true";
}

std::int64_t Cli::get_int(const std::string& name) const {
  return std::stoll(find(name, Kind::kInt).value);
}

double Cli::get_double(const std::string& name) const {
  return std::stod(find(name, Kind::kDouble).value);
}

const std::string& Cli::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

std::uint64_t Cli::get_bytes(const std::string& name) const {
  return std::stoull(find(name, Kind::kBytes).value);
}

std::string Cli::usage() const {
  std::string out = summary_ + "\n\nFlags:\n";
  for (const auto& [name, opt] : options_) {
    out += "  --" + name;
    if (opt.kind != Kind::kFlag) out += " <value>";
    out += "\n      " + opt.help + " (default: " + opt.value + ")\n";
  }
  return out;
}

}  // namespace dici
