// Project-wide scalar type aliases.
#pragma once

#include <cstdint>

namespace dici {

/// A search key. The paper uses 4-byte keys throughout (Table 1).
using key_t = std::uint32_t;

/// A lookup result: the global rank of the key in the sorted index,
/// i.e. the index of the first element strictly greater than the key
/// (std::upper_bound position). Every method must agree on this value,
/// which is what the correctness tests assert.
using rank_t = std::uint32_t;

/// Virtual time, in picoseconds. Integer to keep the discrete-event
/// simulation exactly reproducible; 1 ns = 1000 ps.
using picos_t = std::uint64_t;

/// Convert nanoseconds (possibly fractional, e.g. the Pentium III
/// B1 miss penalty of 16.25 ns) to picoseconds.
constexpr picos_t ns_to_ps(double ns) {
  return static_cast<picos_t>(ns * 1e3 + 0.5);
}

/// Convert picoseconds back to (fractional) nanoseconds.
constexpr double ps_to_ns(picos_t ps) { return static_cast<double>(ps) / 1e3; }

/// Convert picoseconds to seconds.
constexpr double ps_to_sec(picos_t ps) {
  return static_cast<double>(ps) / 1e12;
}

}  // namespace dici
