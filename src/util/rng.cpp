#include "src/util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace dici {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  DICI_CHECK(n > 0);
  DICI_CHECK(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::operator()(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t i) const {
  DICI_CHECK(i < cdf_.size());
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace dici
