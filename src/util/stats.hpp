// Descriptive statistics over samples, used by run reports and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dici {

/// One-pass (Welford) accumulator for mean and variance; O(1) memory.
class OnlineStats {
 public:
  void add(double x);
  /// Add `n` copies of `x` in O(1) (Chan's parallel-combine formula).
  void add_n(double x, std::uint64_t n);
  /// Fold another accumulator in (exact parallel Welford combine).
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Sample summary supporting percentiles in BOUNDED memory.
///
/// Small sample sets (up to kExactCap) are stored verbatim and every
/// statistic — including percentile() — is exact, bit-for-bit what the
/// old sorted-vector implementation returned. Past the cap the samples
/// spill into a log-bucketed histogram (64 sub-buckets per power of
/// two, HDR-histogram style) and stay there: memory is then a fixed
/// ~48 KB however many samples arrive, and percentile() is approximate
/// with relative error bounded by kRelativeError (~1.6%). count, mean,
/// stddev, min, max remain exact in both modes (Welford accumulators).
///
/// This is what lets RunReport::latency_ns hold per-query response
/// times for sessions serving millions — or billions — of queries:
/// long-lived native Clients merge a batch histogram per wait() without
/// the old store-every-sample O(n) growth.
///
/// Histogram mode assumes non-negative samples (it holds latencies);
/// values <= 0 clamp into the lowest bucket, and every percentile is
/// clamped into the exact [min, max] envelope.
class Summary {
 public:
  /// Samples at or below this count are kept exact (32 KB worst case).
  static constexpr std::size_t kExactCap = 4096;
  /// Upper bound on percentile() relative error once spilled: one part
  /// in kSubBuckets at the low edge of an octave.
  static constexpr double kRelativeError = 1.0 / 64;

  void add(double x);
  /// Add `n` copies of `x` (Method B charges a whole batch the same
  /// wait; the parallel engine charges a whole resolved message one
  /// completion stamp). O(1) once spilled.
  void add_n(double x, std::uint64_t n);
  void add_all(const std::vector<double>& xs);
  /// Fold another summary's samples into this one (RunReport::merge uses
  /// this to accumulate per-batch latency distributions across a
  /// session, and per-worker distributions across a submission). Two
  /// exact summaries that fit under the cap merge exactly; anything
  /// larger merges histogram-to-histogram without resampling.
  void merge(const Summary& other);

  std::size_t count() const { return moments_.count(); }
  double mean() const { return moments_.mean(); }
  double stddev() const { return moments_.stddev(); }
  double min() const { return moments_.min(); }
  double max() const { return moments_.max(); }
  /// Linear-interpolated percentile, p in [0,100]. Exact below
  /// kExactCap samples; within kRelativeError after the spill.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// True while every sample is stored verbatim (percentile() exact).
  bool exact() const { return hist_.empty(); }

 private:
  // Log-bucket geometry: 64 linear sub-buckets per power of two over
  // exponents [kMinExp, kMaxExp] — for ns-scale latencies that spans
  // 2^-32 ns to 2^63 ns, far beyond anything a run can produce.
  static constexpr int kSubBits = 6;
  static constexpr int kSubBuckets = 1 << kSubBits;
  static constexpr int kMinExp = -32;
  static constexpr int kMaxExp = 63;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp + 1) << kSubBits;

  static std::size_t bucket_of(double x);
  static double bucket_lo(std::size_t bucket);

  void spill();  // move samples_ into hist_ and switch modes
  void bump(double x, std::uint64_t n);

  OnlineStats moments_;  // exact count/mean/stddev/min/max in both modes
  // Exact mode: the samples, sorted lazily on demand.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  // Histogram mode: per-bucket counts; non-empty iff spilled.
  std::vector<std::uint64_t> hist_;
  void ensure_sorted() const;
};

}  // namespace dici
