// Descriptive statistics over samples, used by run reports and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace dici {

/// One-pass (Welford) accumulator for mean and variance; O(1) memory.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Full-sample summary supporting percentiles (stores its input).
class Summary {
 public:
  void add(double x) { samples_.push_back(x); }
  void add_all(const std::vector<double>& xs);
  /// Fold another summary's samples into this one (RunReport::merge uses
  /// this to accumulate per-batch latency distributions across a session).
  void merge(const Summary& other);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, p in [0,100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

 private:
  // Sorted lazily on demand.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

}  // namespace dici
