// Column-aligned text tables for bench output.
//
// Every bench binary reproduces one paper table/figure; emitting aligned
// rows (plus an optional CSV mirror) keeps the output diff-able against
// EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace dici {

class TextTable {
 public:
  /// Create a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles/ints into a row.
  void add_row_values(const std::vector<double>& values, int precision = 4);

  /// Render with padded columns, a header underline, and `indent` leading
  /// spaces per line.
  std::string to_string(int indent = 2) const;

  /// Render as comma-separated values (headers first).
  std::string to_csv() const;

  /// Print `to_string()` to stdout.
  void print(int indent = 2) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `precision` significant decimals, trimming wide
/// exponents ("0.3200", "1.25e+09" style never appears in bench tables).
std::string format_double(double v, int precision = 4);

}  // namespace dici
