// Wall-clock timing for native (real-hardware) measurements.
#pragma once

#include <chrono>

namespace dici {

/// Steady-clock stopwatch. start() resets; elapsed_*() reads without
/// stopping.
class WallTimer {
 public:
  WallTimer() { start(); }

  void start() { t0_ = std::chrono::steady_clock::now(); }

  double elapsed_sec() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

  double elapsed_ns() const { return elapsed_sec() * 1e9; }

 private:
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace dici
