// Architectural parameter sets (the paper's Table 2) and technology
// trend scaling (Section 4.2).
//
// A MachineSpec fully determines both the analytical model's inputs and
// the discrete-event simulator's cost constants, so a single struct is
// threaded through everything: change the machine, and the model, the
// simulator, and the future-trend extrapolation all move together.
#pragma once

#include <cstdint>
#include <string>

#include "src/arch/cache_geometry.hpp"

namespace dici::arch {

/// All architectural constants for one node of the (simulated) cluster.
/// Field names follow Table 2/Table 4 of the paper.
struct MachineSpec {
  std::string name;

  CacheGeometry l1;  ///< L1 data cache; miss_penalty_ns is B1 (L2 -> L1).
  CacheGeometry l2;  ///< L2 cache; miss_penalty_ns is B2 (RAM -> L2).

  std::uint32_t tlb_entries = 0;   ///< data TLB entries (fully associative).
  std::uint32_t page_bytes = 4096; ///< virtual memory page size.
  /// NUMA nodes the NATIVE backends should lay memory out for: 0 (the
  /// default) discovers the host's real node map, N > 0 forces a
  /// simulated N-node topology (arch/topology.hpp) so placement and
  /// same-node-first stealing run — and are tested — on single-node
  /// machines. The simulator's cost model ignores it (its cluster nodes
  /// are whole machines, not sockets).
  std::uint32_t numa_nodes = 0;
  double tlb_miss_penalty_ns = 0;  ///< page-walk cost on TLB miss.

  double comp_cost_node_ns = 0;    ///< compare/branch cost per line-sized
                                   ///< tree node visited (Table 2).
  double hot_compare_ns = 0;       ///< one comparison on cache-hot data
                                   ///< (binary-search step; a few cycles).
  double msg_cpu_overhead_us = 0;  ///< CPU cost per message send/receive
                                   ///< (MPI + OS, Sec. 4.1's idle-time
                                   ///< explanation); not in Table 2.
  double mem_seq_bw_mbs = 0;       ///< W1: sequential memory bandwidth, MB/s.
  double mem_rand_bw_mbs = 0;      ///< random 4-byte-access bandwidth, MB/s
                                   ///< (reported for Table 2; derived costs
                                   ///< come from B2 misses, not this).
  double net_bw_mbs = 0;           ///< W2: one-way network bandwidth, MB/s.
  double net_latency_us = 0;       ///< per-message one-way latency, us.

  /// Bytes per nanosecond helpers (simulator units).
  double mem_seq_bytes_per_ns() const { return mem_seq_bw_mbs * 1e6 / 1e9; }
  double net_bytes_per_ns() const { return net_bw_mbs * 1e6 / 1e9; }

  void validate() const;
};

/// The paper's experimental platform (Table 2): 1.3 GHz Pentium III,
/// 16 KB L1 / 512 KB L2, 32 B lines, DDR-266, Myrinet (1.1 Gb/s measured).
MachineSpec pentium3_cluster();

/// The Pentium 4 variant the paper repeatedly references in the text:
/// 128 B L2 lines and ~150 ns L2 miss penalty.
MachineSpec pentium4_cluster();

/// A present-day commodity core + 100 GbE-class fabric, for the
/// "does the conclusion still hold" extension studies.
MachineSpec modern_cluster();

/// Technology growth-rate assumptions from Section 4.2 of the paper.
/// Rates are expressed as per-year multipliers.
struct TechTrends {
  double cpu_speed_per_year = 1.5874;   ///< 2x every 18 months.
  double net_bw_per_year = 1.2599;      ///< 2x every 3 years.
  double mem_bw_per_year = 1.20;        ///< +20% per year (per processor).
  double mem_latency_per_year = 1.0;    ///< memory latency does not improve.
};

/// Project `base` forward by (possibly fractional) `years` under `trends`.
///
/// Applies the paper's assumptions: compute cost shrinks with CPU speed,
/// W2 grows with network speed, W1 grows with memory bandwidth, and the
/// *latency-bound* portions of the miss penalties stay fixed while their
/// bandwidth-bound portions shrink with W1. Cache geometry is held
/// constant (the paper models the same binary on faster parts).
MachineSpec scale_years(const MachineSpec& base, double years,
                        const TechTrends& trends = TechTrends{});

}  // namespace dici::arch
