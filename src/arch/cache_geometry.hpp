// Geometry of one cache level.
#pragma once

#include <cstdint>

#include "src/util/assert.hpp"

namespace dici::arch {

/// Size/line/associativity of a single cache level plus the penalty for
/// missing it (the cost of loading one line from the level below).
struct CacheGeometry {
  std::uint64_t size_bytes = 0;
  std::uint32_t line_bytes = 0;
  std::uint32_t associativity = 0;  // ways per set
  double miss_penalty_ns = 0.0;

  std::uint64_t num_lines() const { return size_bytes / line_bytes; }
  std::uint64_t num_sets() const { return num_lines() / associativity; }

  /// Validate internal consistency (power-of-two line size, divisible
  /// capacity). Called by MachineSpec::validate().
  void validate() const {
    DICI_CHECK(size_bytes > 0 && line_bytes > 0 && associativity > 0);
    DICI_CHECK_MSG((line_bytes & (line_bytes - 1)) == 0,
                   "cache line size must be a power of two");
    DICI_CHECK_MSG(size_bytes % line_bytes == 0,
                   "cache size must be a whole number of lines");
    DICI_CHECK_MSG(num_lines() % associativity == 0,
                   "cache lines must divide evenly into sets");
    DICI_CHECK(miss_penalty_ns >= 0.0);
  }
};

}  // namespace dici::arch
