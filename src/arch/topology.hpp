// NUMA topology — the node <-> core map the placement-aware backends
// plan against.
//
// The paper prices every probe by where the data lives relative to the
// CPU that touches it (Table 2 / Sec. 4.1); on a multi-socket host the
// same distinction reappears INSIDE one box as local vs remote DRAM.
// A Topology answers the two questions placement needs: which memory
// node does each worker run on, and which cores share that node — so
// ParallelNativeEngine can first-touch a shard's key copies on the node
// of the workers that own it and prefer same-node victims when
// stealing.
//
// Two sources, one shape:
//  * discover_topology() reads the host map (Linux sysfs), intersected
//    with the *allowed* CPU mask (util/affinity) so a taskset/cgroup
//    restriction shrinks the map instead of inventing unpinnable cores.
//  * simulated_topology(nodes) splits the allowed CPUs into `nodes`
//    groups. This is how MachineSpec::numa_nodes forces a multi-node
//    layout on a single-node box: placement, per-node builds, and the
//    same-node-first steal policy all execute for real — only the
//    remote-DRAM penalty is missing — so single-node CI covers every
//    placement path.
#pragma once

#include <cstdint>
#include <vector>

namespace dici::arch {

/// The node <-> core map. Node ids are dense 0..nodes()-1; each node
/// lists the allowed OS CPU ids that belong to it. Every node holds at
/// least one CPU (on hosts with fewer allowed CPUs than simulated
/// nodes, nodes share CPUs — the map stays usable, only the parallelism
/// is fictional).
struct Topology {
  std::vector<std::vector<int>> node_cpus;
  bool simulated = false;  ///< true when not read from the OS

  std::uint32_t nodes() const {
    return static_cast<std::uint32_t>(node_cpus.size());
  }

  /// The cores of one node — the pin set for node-scoped pinning.
  const std::vector<int>& cpus_of(std::uint32_t node) const {
    return node_cpus[node];
  }

  /// Node that owns `os_cpu`; 0 when the CPU is not in the map (a
  /// conservative default, never out of range).
  std::uint32_t node_of_cpu(int os_cpu) const;

  /// Total mapped CPUs (sum over nodes; counts a shared CPU once per
  /// node it appears in).
  std::size_t total_cpus() const;

  void validate() const;
};

/// Read the host's node map (Linux: /sys/devices/system/node), keeping
/// only CPUs in the allowed mask. Hosts without NUMA information (or
/// non-Linux platforms) yield one node holding every allowed CPU.
Topology discover_topology();

/// Deterministically split the allowed CPUs into `nodes` groups
/// (round-robin, so consecutive workers land on different nodes the
/// same way consecutive shards do). `nodes` >= 1.
Topology simulated_topology(std::uint32_t nodes);

/// The one entry point configs use: 0 = discover the host, N > 0 =
/// simulate N nodes.
Topology make_topology(std::uint32_t numa_nodes);

/// Node-scoped pinning: restrict the calling thread to any core of
/// `node`. Best-effort like every affinity call; false when the node's
/// cores are all outside the allowed mask or the platform cannot pin.
bool pin_current_thread_to_node(const Topology& topology, std::uint32_t node);

}  // namespace dici::arch
