#include "src/arch/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "src/util/affinity.hpp"
#include "src/util/assert.hpp"

namespace dici::arch {

std::uint32_t Topology::node_of_cpu(int os_cpu) const {
  for (std::size_t node = 0; node < node_cpus.size(); ++node)
    for (const int cpu : node_cpus[node])
      if (cpu == os_cpu) return static_cast<std::uint32_t>(node);
  return 0;
}

std::size_t Topology::total_cpus() const {
  std::size_t total = 0;
  for (const auto& cpus : node_cpus) total += cpus.size();
  return total;
}

void Topology::validate() const {
  DICI_CHECK_MSG(!node_cpus.empty(), "a topology needs at least one node");
  for (const auto& cpus : node_cpus)
    DICI_CHECK_MSG(!cpus.empty(), "every topology node needs at least one CPU");
}

namespace {

/// Parse a sysfs cpulist ("0-3,8,10-11") into CPU ids. Returns false on
/// anything unparseable, so a malformed file degrades to the one-node
/// fallback instead of a half-read map.
bool parse_cpulist(const std::string& text, std::vector<int>* out) {
  out->clear();
  const char* p = text.c_str();
  while (*p != '\0' && *p != '\n') {
    char* end = nullptr;
    const long lo = std::strtol(p, &end, 10);
    if (end == p || lo < 0) return false;
    long hi = lo;
    p = end;
    if (*p == '-') {
      ++p;
      hi = std::strtol(p, &end, 10);
      if (end == p || hi < lo) return false;
      p = end;
    }
    for (long cpu = lo; cpu <= hi; ++cpu) out->push_back(static_cast<int>(cpu));
    if (*p == ',') ++p;
  }
  return !out->empty();
}

bool read_small_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char buf[4096];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  *out = buf;
  return n > 0;
}

Topology single_node_fallback(const std::vector<int>& allowed) {
  Topology topo;
  topo.node_cpus.push_back(allowed);
  if (topo.node_cpus[0].empty()) topo.node_cpus[0].push_back(0);
  return topo;
}

}  // namespace

Topology discover_topology() {
  const std::vector<int> allowed = allowed_cpus();
#if defined(__linux__)
  Topology topo;
  const std::set<int> allowed_set(allowed.begin(), allowed.end());
  // Dense re-numbering: sysfs node ids can have holes (offlined nodes),
  // and a node whose every CPU is outside the allowed mask contributes
  // nothing this process could use, so both are skipped. A run of
  // missing ids is tolerated (ids need not be contiguous); a long miss
  // streak ends the scan.
  int miss_streak = 0;
  for (int sys_node = 0; sys_node < 1024 && miss_streak < 64; ++sys_node) {
    std::string text;
    const std::string path = "/sys/devices/system/node/node" +
                             std::to_string(sys_node) + "/cpulist";
    if (!read_small_file(path, &text)) {
      ++miss_streak;
      continue;
    }
    miss_streak = 0;
    std::vector<int> cpus;
    if (!parse_cpulist(text, &cpus)) continue;
    std::vector<int> kept;
    for (const int cpu : cpus)
      if (allowed_set.count(cpu)) kept.push_back(cpu);
    if (!kept.empty()) topo.node_cpus.push_back(std::move(kept));
  }
  if (topo.node_cpus.empty()) return single_node_fallback(allowed);
  topo.validate();
  return topo;
#else
  return single_node_fallback(allowed);
#endif
}

Topology simulated_topology(std::uint32_t nodes) {
  DICI_CHECK_MSG(nodes >= 1, "a simulated topology needs at least one node");
  std::vector<int> allowed = allowed_cpus();
  if (allowed.empty()) allowed.push_back(0);
  Topology topo;
  topo.simulated = true;
  topo.node_cpus.resize(nodes);
  for (std::size_t i = 0; i < allowed.size(); ++i)
    topo.node_cpus[i % nodes].push_back(allowed[i]);
  // Fewer allowed CPUs than nodes: the tail nodes share CPUs round-robin
  // so every node stays pinnable (the map is about placement structure,
  // not extra parallelism).
  for (std::size_t node = 0; node < topo.node_cpus.size(); ++node)
    if (topo.node_cpus[node].empty())
      topo.node_cpus[node].push_back(allowed[node % allowed.size()]);
  topo.validate();
  return topo;
}

Topology make_topology(std::uint32_t numa_nodes) {
  return numa_nodes == 0 ? discover_topology() : simulated_topology(numa_nodes);
}

bool pin_current_thread_to_node(const Topology& topology, std::uint32_t node) {
  if (node >= topology.nodes()) return false;
  return pin_current_thread_to_cpus(topology.cpus_of(node));
}

}  // namespace dici::arch
