#include "src/arch/machine.hpp"

#include <cmath>

#include "src/util/bytes.hpp"

namespace dici::arch {

void MachineSpec::validate() const {
  l1.validate();
  l2.validate();
  DICI_CHECK(l1.size_bytes <= l2.size_bytes);
  DICI_CHECK(tlb_entries > 0);
  DICI_CHECK((page_bytes & (page_bytes - 1)) == 0);
  // 0 = discover; a simulated node count past any real machine is a
  // config typo, not a topology.
  DICI_CHECK(numa_nodes <= 1024);
  DICI_CHECK(comp_cost_node_ns >= 0.0);
  DICI_CHECK(mem_seq_bw_mbs > 0.0);
  DICI_CHECK(net_bw_mbs > 0.0);
  DICI_CHECK(net_latency_us >= 0.0);
}

MachineSpec pentium3_cluster() {
  MachineSpec m;
  m.name = "PentiumIII-Myrinet (paper Table 2)";
  // 16 KB 4-way L1, 512 KB 8-way L2, both with 32-byte lines.
  m.l1 = {16 * KiB, 32, 4, /*B1 miss penalty*/ 16.25};
  m.l2 = {512 * KiB, 32, 8, /*B2 miss penalty*/ 110.0};
  m.tlb_entries = 64;
  m.page_bytes = 4096;
  // The paper excludes TLB misses from its model ("gives a lower bound");
  // we default to 0 to match, and tests/ablations can raise it.
  m.tlb_miss_penalty_ns = 0.0;
  m.comp_cost_node_ns = 30.0;
  m.hot_compare_ns = 5.0;        // ~6 cycles at 1.3 GHz
  m.msg_cpu_overhead_us = 5.0;   // MPICH 1.2.5 over GM send/recv CPU cost
  m.mem_seq_bw_mbs = 647.0;
  m.mem_rand_bw_mbs = 48.0;
  m.net_bw_mbs = 138.0;   // measured one-way Myrinet: 1.1 Gb/s
  m.net_latency_us = 7.0;
  m.validate();
  return m;
}

MachineSpec pentium4_cluster() {
  MachineSpec m = pentium3_cluster();
  m.name = "Pentium4 (paper Section 1/2 parameters)";
  // 8 KB 4-way L1 with 64 B lines; 512 KB 8-way L2 with 128 B lines.
  m.l1 = {8 * KiB, 64, 4, 18.0};
  m.l2 = {512 * KiB, 128, 8, 150.0};
  m.comp_cost_node_ns = 15.0;          // ~2x the P3 clock
  m.hot_compare_ns = 2.5;
  m.msg_cpu_overhead_us = 3.0;
  m.mem_seq_bw_mbs = 2100.0;           // DDR-266 dual channel, Sec. 2.2
  m.mem_rand_bw_mbs = 33.0;            // 4 B per 128 B line at ~150 ns
  m.validate();
  return m;
}

MachineSpec modern_cluster() {
  MachineSpec m;
  m.name = "Modern core + 100GbE RDMA fabric";
  m.l1 = {48 * KiB, 64, 12, 6.0};
  m.l2 = {2 * MiB, 64, 16, 80.0};
  m.tlb_entries = 1536;
  m.page_bytes = 4096;
  m.tlb_miss_penalty_ns = 0.0;
  m.comp_cost_node_ns = 1.5;
  m.hot_compare_ns = 0.3;
  m.msg_cpu_overhead_us = 0.5;   // kernel-bypass RDMA
  m.mem_seq_bw_mbs = 30000.0;
  m.mem_rand_bw_mbs = 1500.0;
  m.net_bw_mbs = 12000.0;   // ~100 Gb/s one-way
  m.net_latency_us = 2.0;
  m.validate();
  return m;
}

MachineSpec scale_years(const MachineSpec& base, double years,
                        const TechTrends& trends) {
  MachineSpec m = base;
  m.name = base.name + " +" + std::to_string(years) + "y";
  const double cpu = std::pow(trends.cpu_speed_per_year, years);
  const double net = std::pow(trends.net_bw_per_year, years);
  const double mem = std::pow(trends.mem_bw_per_year, years);
  const double lat = std::pow(trends.mem_latency_per_year, years);

  m.comp_cost_node_ns = base.comp_cost_node_ns / cpu;
  m.hot_compare_ns = base.hot_compare_ns / cpu;
  m.msg_cpu_overhead_us = base.msg_cpu_overhead_us / cpu;
  m.net_bw_mbs = base.net_bw_mbs * net;
  m.mem_seq_bw_mbs = base.mem_seq_bw_mbs * mem;
  m.mem_rand_bw_mbs = base.mem_rand_bw_mbs * mem;

  // A miss penalty = fixed latency + line transfer time. The transfer
  // component scales with memory bandwidth; the latency component follows
  // the (non-)improvement of memory latency. We attribute the line
  // transfer at the *base* sequential bandwidth and treat the remainder
  // as latency, matching the paper's "memory latency is assumed not to
  // change" while bandwidth grows.
  auto scale_penalty = [&](double penalty_ns, double line_bytes) {
    const double xfer_ns = line_bytes / base.mem_seq_bytes_per_ns();
    const double latency_ns = penalty_ns > xfer_ns ? penalty_ns - xfer_ns : 0.0;
    return latency_ns * lat + xfer_ns / mem;
  };
  m.l2.miss_penalty_ns =
      scale_penalty(base.l2.miss_penalty_ns, base.l2.line_bytes);
  // B1 (L2 -> L1) is on-chip: it tracks CPU speed.
  m.l1.miss_penalty_ns = base.l1.miss_penalty_ns / cpu;

  m.validate();
  return m;
}

}  // namespace dici::arch
