#include "src/index/placement.hpp"

#include <algorithm>

#include "src/util/assert.hpp"

namespace dici::index {

bool parse_placement(const std::string& name, Placement* out) {
  for (const Placement placement : kAllPlacements) {
    if (name == placement_name(placement)) {
      *out = placement;
      return true;
    }
  }
  return false;
}

namespace {

PlacedShards::AlignedKeys aligned_keys(std::size_t n) {
  void* p = ::operator new[](std::max<std::size_t>(1, n) * sizeof(key_t),
                             std::align_val_t{64});
  return PlacedShards::AlignedKeys(static_cast<key_t*>(p));
}

}  // namespace

PlacedShards::PlacedShards(Placement placement, bool build_eytzinger,
                           const RangePartitioner& partitioner,
                           std::uint32_t nodes)
    : placement_(placement),
      build_eytzinger_(build_eytzinger),
      partitioner_(partitioner),
      nodes_(nodes),
      shards_(partitioner.parts()) {
  DICI_CHECK_MSG(placement_valid(placement), "not a Placement value");
  DICI_CHECK(nodes_ >= 1);
  // Slot vectors are sized here (only the slot headers land on the
  // constructing thread's node); the key pages themselves are placed by
  // whichever worker first writes them in build_share.
  switch (placement_) {
    case Placement::kInterleave:
      if (build_eytzinger_) layouts_.resize(shards_);
      break;
    case Placement::kNodeLocal:
      local_keys_.resize(shards_);
      if (build_eytzinger_) layouts_.resize(shards_);
      break;
    case Placement::kReplicate:
      replicas_.resize(nodes_);
      if (build_eytzinger_)
        layouts_.resize(static_cast<std::size_t>(nodes_) * shards_);
      break;
  }
}

void PlacedShards::allocate_replica(std::uint32_t node) {
  if (placement_ != Placement::kReplicate) return;
  replicas_[node] = aligned_keys(partitioner_.end_of(shards_ - 1));
}

void PlacedShards::build_shard_local(std::uint32_t shard) {
  const std::span<const key_t> part = partitioner_.keys_of(shard);
  local_keys_[shard] = aligned_keys(part.size());
  std::copy(part.begin(), part.end(), local_keys_[shard].get());
  if (build_eytzinger_)
    layouts_[shard] = EytzingerLayout(
        std::span<const key_t>(local_keys_[shard].get(), part.size()));
}

void PlacedShards::build_share(std::uint32_t node, std::uint32_t worker,
                               std::uint32_t total_workers,
                               std::uint32_t worker_on_node,
                               std::uint32_t workers_on_node) {
  DICI_CHECK(total_workers >= 1 && workers_on_node >= 1);
  switch (placement_) {
    case Placement::kInterleave:
      // One shared copy; the first worker overall builds the (shared)
      // layouts — same pages as before placement existed.
      if (build_eytzinger_ && worker == 0)
        for (std::uint32_t s = 0; s < shards_; ++s)
          layouts_[s] = EytzingerLayout(partitioner_.keys_of(s));
      return;
    case Placement::kNodeLocal:
      for (std::uint32_t s = worker; s < shards_; s += total_workers)
        build_shard_local(s);
      return;
    case Placement::kReplicate: {
      DICI_CHECK_MSG(replicas_[node] != nullptr,
                     "allocate_replica(node) must run before build_share");
      // Each worker copies AND lays out the shards of its share, so no
      // range is written twice and a layout never reads another
      // worker's in-progress copy.
      key_t* replica = replicas_[node].get();
      for (std::uint32_t s = worker_on_node; s < shards_;
           s += workers_on_node) {
        const std::span<const key_t> part = partitioner_.keys_of(s);
        std::copy(part.begin(), part.end(),
                  replica + partitioner_.start_of(s));
        if (build_eytzinger_)
          layouts_[static_cast<std::size_t>(node) * shards_ + s] =
              EytzingerLayout(std::span<const key_t>(
                  replica + partitioner_.start_of(s), part.size()));
      }
      return;
    }
  }
}

void PlacedShards::build_all() {
  if (placement_ == Placement::kReplicate) {
    for (std::uint32_t node = 0; node < nodes_; ++node) {
      allocate_replica(node);
      build_share(node, /*worker=*/0, /*total_workers=*/1,
                  /*worker_on_node=*/0, /*workers_on_node=*/1);
    }
    return;
  }
  build_share(/*node=*/0, /*worker=*/0, /*total_workers=*/1,
              /*worker_on_node=*/0, /*workers_on_node=*/1);
}

std::span<const key_t> PlacedShards::sorted_of(std::uint32_t node,
                                               std::uint32_t shard) const {
  switch (placement_) {
    case Placement::kInterleave:
      return partitioner_.keys_of(shard);
    case Placement::kNodeLocal:
      return {local_keys_[shard].get(), partitioner_.size_of(shard)};
    case Placement::kReplicate:
      return {replicas_[node].get() + partitioner_.start_of(shard),
              partitioner_.size_of(shard)};
  }
  return {};
}

const EytzingerLayout* PlacedShards::layout_of(std::uint32_t node,
                                               std::uint32_t shard) const {
  if (!build_eytzinger_) return nullptr;
  const std::size_t i =
      placement_ == Placement::kReplicate
          ? static_cast<std::size_t>(node) * shards_ + shard
          : shard;
  return &layouts_[i];
}

std::uint64_t PlacedShards::placed_key_bytes() const {
  const std::uint64_t n = partitioner_.end_of(shards_ - 1);
  switch (placement_) {
    case Placement::kInterleave:
      return 0;
    case Placement::kNodeLocal:
      return n * sizeof(key_t);
    case Placement::kReplicate: {
      // Count replicas actually reserved — the engine skips nodes that
      // own no worker, whose replica would never be probed.
      std::uint64_t allocated = 0;
      for (const AlignedKeys& replica : replicas_)
        allocated += replica != nullptr;
      return allocated * n * sizeof(key_t);
    }
  }
  return 0;
}

}  // namespace dici::index
