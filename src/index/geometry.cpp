#include "src/index/geometry.hpp"

#include <algorithm>

#include "src/util/assert.hpp"

namespace dici::index {

const char* layout_name(TreeLayout layout) {
  switch (layout) {
    case TreeLayout::kExplicitPointers: return "explicit-pointers";
    case TreeLayout::kCsbFirstChild: return "csb-first-child";
  }
  return "?";
}

std::uint64_t TreeGeometry::internal_nodes() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) total += lines[i];
  return total;
}

std::uint64_t TreeGeometry::total_lines() const {
  std::uint64_t total = 0;
  for (auto l : lines) total += l;
  return total;
}

TreeGeometry compute_geometry(std::uint64_t num_keys, const TreeConfig& cfg) {
  DICI_CHECK(cfg.node_bytes >= 2 * sizeof(key_t));
  DICI_CHECK(cfg.branching() >= 2);
  TreeGeometry g;
  g.num_keys = num_keys;
  g.config = cfg;

  const std::uint64_t leaf_blocks =
      std::max<std::uint64_t>(1, (num_keys + cfg.leaf_keys() - 1) /
                                     cfg.leaf_keys());
  // Build bottom-up, then reverse so the root comes first.
  std::vector<std::uint64_t> up{leaf_blocks};
  while (up.back() > 1)
    up.push_back((up.back() + cfg.branching() - 1) / cfg.branching());
  // A tree with a single leaf block still gets a root over it only if
  // there are internal nodes; for one block the "tree" is the block.
  std::reverse(up.begin(), up.end());
  g.lines = std::move(up);
  return g;
}

}  // namespace dici::index
