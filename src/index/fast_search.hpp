// Optimized native search kernels for the sorted array (Method C-3's
// slave structure on real hardware).
//
// The classic binary search mispredicts ~every probe; on a cache-resident
// partition the branch misses, not the memory, dominate. Once the
// partition outgrows L2 the memory system takes over instead: every
// probe is a dependent cache miss, and the only way to go faster is to
// overlap misses (memory-level parallelism). The kernel menu below
// covers both regimes; all entries are exact drop-in replacements for
// std::upper_bound:
//
//  * branchless_upper_bound — conditional-move "halving" search; the
//    compiler emits cmov, the pipeline never flushes.
//  * prefetch_upper_bound  — branchless + software prefetch of both
//    possible next probe lines; helps once the partition outgrows L2
//    (the regime Method A lives in and C-3 avoids).
//  * eytzinger kernels (eytzinger.hpp) — the BFS layout puts a node's
//    children adjacent, so one prefetch grabs four levels of descent.
//  * interleaved batch kernels (batched_search.hpp) — advance W
//    independent searches in lockstep so W cache misses are in flight
//    at once instead of serializing.
//
// These are native-only (no probe instrumentation): the simulator charges
// comparisons via the machine's hot_compare constant, which already
// abstracts the branch behaviour — which is also why kernel choice never
// changes a simulated report, only native wall time.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>

#include "src/util/types.hpp"

namespace dici::index {

/// Which exact upper_bound kernel a native slave runs on its shard. All
/// of them return identical ranks for identical inputs; they differ only
/// in speed. The kStd/kBranchless/kPrefetch trio works a sorted array
/// one query at a time; the kEytzinger pair works the BFS-reordered copy
/// (eytzinger.hpp); the kBatched pair interleaves W queries in lockstep
/// over the respective layout (batched_search.hpp).
enum class SearchKernel {
  kStdUpperBound,
  kBranchless,
  kPrefetch,
  kEytzinger,
  kEytzingerPrefetch,
  kBatchedBranchless,
  kBatchedEytzinger,
};

/// The physical key order a kernel probes. Every index keeps the sorted
/// copy (routing, merging, the kSorted kernels); the Eytzinger copy is
/// built alongside it when an eytzinger kernel is configured.
enum class KeyLayout { kSorted, kEytzinger };

inline constexpr std::array<SearchKernel, 7> kAllSearchKernels = {
    SearchKernel::kStdUpperBound,     SearchKernel::kBranchless,
    SearchKernel::kPrefetch,          SearchKernel::kEytzinger,
    SearchKernel::kEytzingerPrefetch, SearchKernel::kBatchedBranchless,
    SearchKernel::kBatchedEytzinger,
};

inline std::span<const SearchKernel> all_search_kernels() {
  return kAllSearchKernels;
}

/// True for the in-range enum values; config validation gates on this so
/// a miscast integer dies naming the field instead of hitting a default
/// arm deep in a worker loop.
constexpr bool search_kernel_valid(SearchKernel kernel) {
  switch (kernel) {
    case SearchKernel::kStdUpperBound:
    case SearchKernel::kBranchless:
    case SearchKernel::kPrefetch:
    case SearchKernel::kEytzinger:
    case SearchKernel::kEytzingerPrefetch:
    case SearchKernel::kBatchedBranchless:
    case SearchKernel::kBatchedEytzinger:
      return true;
  }
  return false;
}

constexpr const char* search_kernel_name(SearchKernel kernel) {
  switch (kernel) {
    case SearchKernel::kStdUpperBound: return "std-upper-bound";
    case SearchKernel::kBranchless: return "branchless";
    case SearchKernel::kPrefetch: return "prefetch";
    case SearchKernel::kEytzinger: return "eytzinger";
    case SearchKernel::kEytzingerPrefetch: return "eytzinger-prefetch";
    case SearchKernel::kBatchedBranchless: return "batched-branchless";
    case SearchKernel::kBatchedEytzinger: return "batched-eytzinger";
  }
  return "?";
}

constexpr KeyLayout kernel_layout(SearchKernel kernel) {
  switch (kernel) {
    case SearchKernel::kEytzinger:
    case SearchKernel::kEytzingerPrefetch:
    case SearchKernel::kBatchedEytzinger:
      return KeyLayout::kEytzinger;
    default:
      return KeyLayout::kSorted;
  }
}

constexpr const char* key_layout_name(KeyLayout layout) {
  switch (layout) {
    case KeyLayout::kSorted: return "sorted";
    case KeyLayout::kEytzinger: return "eytzinger";
  }
  return "?";
}

/// True for the kernels that advance several queries in lockstep (and
/// therefore only pay off on whole batches, not single probes).
constexpr bool kernel_is_batched(SearchKernel kernel) {
  return kernel == SearchKernel::kBatchedBranchless ||
         kernel == SearchKernel::kBatchedEytzinger;
}

/// Hard cap on the interleave width of the batched kernels: past ~16
/// the core's miss queue is full and extra lanes only spill registers.
inline constexpr std::uint32_t kMaxInterleave = 32;

/// Default W. 16 in-flight lines matches the L1 miss-queue depth of
/// current x86 cores; 8 loses little, 32 gains nothing.
inline constexpr std::uint32_t kDefaultInterleave = 16;

/// Parse the search_kernel_name spelling; returns false on anything else.
inline bool parse_search_kernel(const std::string& name, SearchKernel* out) {
  for (const SearchKernel kernel : kAllSearchKernels) {
    if (name == search_kernel_name(kernel)) {
      *out = kernel;
      return true;
    }
  }
  return false;
}

/// Index of the first element > q, computed without data-dependent
/// branches. Exactly std::upper_bound's answer on sorted input.
inline rank_t branchless_upper_bound(std::span<const key_t> keys, key_t q) {
  const key_t* base = keys.data();
  std::size_t n = keys.size();
  while (n > 1) {
    const std::size_t half = n / 2;
    // cmov: advance past the lower half iff its boundary element is <= q.
    base = (base[half - 1] <= q) ? base + half : base;
    n -= half;
  }
  // One element left; account for it, and for the empty-input case.
  const std::size_t pos =
      static_cast<std::size_t>(base - keys.data()) +
      (n == 1 && *base <= q ? 1 : 0);
  return static_cast<rank_t>(pos);
}

/// Branchless search with software prefetch two levels ahead. Identical
/// results; faster when the array misses in cache.
inline rank_t prefetch_upper_bound(std::span<const key_t> keys, key_t q) {
  const key_t* base = keys.data();
  std::size_t n = keys.size();
  while (n > 1) {
    const std::size_t half = n / 2;
#if defined(__GNUC__) || defined(__clang__)
    // Both candidate midpoints of the *next* iteration.
    __builtin_prefetch(base + half / 2, 0, 1);
    __builtin_prefetch(base + half + (n - half) / 2, 0, 1);
#endif
    base = (base[half - 1] <= q) ? base + half : base;
    n -= half;
  }
  const std::size_t pos =
      static_cast<std::size_t>(base - keys.data()) +
      (n == 1 && *base <= q ? 1 : 0);
  return static_cast<rank_t>(pos);
}

}  // namespace dici::index
