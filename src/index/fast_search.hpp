// Optimized native search kernels for the sorted array (Method C-3's
// slave structure on real hardware).
//
// The classic binary search mispredicts ~every probe; on a cache-resident
// partition the branch misses, not the memory, dominate. Two standard
// remedies, both exact drop-in replacements for upper_bound:
//
//  * branchless_upper_bound — conditional-move "halving" search; the
//    compiler emits cmov, the pipeline never flushes.
//  * prefetch_upper_bound  — branchless + software prefetch of both
//    possible next probe lines; helps once the partition outgrows L2
//    (the regime Method A lives in and C-3 avoids).
//
// These are native-only (no probe instrumentation): the simulator charges
// comparisons via the machine's hot_compare constant, which already
// abstracts the branch behaviour.
#pragma once

#include <cstddef>
#include <span>

#include "src/util/types.hpp"

namespace dici::index {

/// Index of the first element > q, computed without data-dependent
/// branches. Exactly std::upper_bound's answer on sorted input.
inline rank_t branchless_upper_bound(std::span<const key_t> keys, key_t q) {
  const key_t* base = keys.data();
  std::size_t n = keys.size();
  while (n > 1) {
    const std::size_t half = n / 2;
    // cmov: advance past the lower half iff its boundary element is <= q.
    base = (base[half - 1] <= q) ? base + half : base;
    n -= half;
  }
  // One element left; account for it, and for the empty-input case.
  const std::size_t pos =
      static_cast<std::size_t>(base - keys.data()) +
      (n == 1 && *base <= q ? 1 : 0);
  return static_cast<rank_t>(pos);
}

/// Branchless search with software prefetch two levels ahead. Identical
/// results; faster when the array misses in cache.
inline rank_t prefetch_upper_bound(std::span<const key_t> keys, key_t q) {
  const key_t* base = keys.data();
  std::size_t n = keys.size();
  while (n > 1) {
    const std::size_t half = n / 2;
#if defined(__GNUC__) || defined(__clang__)
    // Both candidate midpoints of the *next* iteration.
    __builtin_prefetch(base + half / 2, 0, 1);
    __builtin_prefetch(base + half + (n - half) / 2, 0, 1);
#endif
    base = (base[half - 1] <= q) ? base + half : base;
    n -= half;
  }
  const std::size_t pos =
      static_cast<std::size_t>(base - keys.data()) +
      (n == 1 && *base <= q ? 1 : 0);
  return static_cast<rank_t>(pos);
}

}  // namespace dici::index
