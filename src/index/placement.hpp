// Shard placement — which memory node holds each shard's key copies.
//
// The paper prices a probe by where the data lives relative to the CPU
// that touches it. Inside one multi-socket box the distinction is local
// vs remote DRAM: a shard whose pages sit on the wrong node pays the
// remote penalty on exactly the out-of-L2 partitions the batch kernels
// were built to accelerate. PlacedShards owns the per-mode key copies
// and hands every (node, shard) pair the right view:
//
//  * kInterleave — the pre-placement baseline: one shared sorted copy
//    (the Index's), Eytzinger copies built by one thread. Pages land
//    wherever that thread happened to run; remote for most workers.
//  * kNodeLocal — each shard's sorted + Eytzinger copies are built BY
//    the worker that owns the shard, on its pinned thread: first touch
//    places the pages on the owner's node. Same-node probes for owned
//    work; a stolen batch pays the remote price (the steal trade-off).
//  * kReplicate — one read-only copy of the whole key array per node,
//    each slice first-touched by that node's own workers, plus
//    per-(node, shard) Eytzinger copies. Every probe — owned or stolen
//    — reads node-local memory, for nodes x keys bytes of DRAM.
//
// Build protocol: the engine constructs PlacedShards and calls
// allocate_replica for every node (allocation touches no data pages),
// then every pinned worker calls build_share(...) exactly once before
// the engine's build barrier opens. Shares are disjoint (a worker
// copies and lays out only its own shards' ranges), so the build needs
// no locks; the barrier publishes every copy to every worker. All three modes return bit-identical
// ranks — placement moves bytes, never answers — which is what the
// scenario matrix's placement axis verifies.
//
// Placement is a BUILD-time property: when the v3 write path
// (core/store.hpp) folds its delta into a fresh Index generation, the
// whole protocol above re-runs on a fresh pinned fleet, so the new
// generation's pages are first-touch placed exactly like the first
// build's — rebuilds never degrade locality.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "src/index/eytzinger.hpp"
#include "src/index/partitioner.hpp"
#include "src/util/types.hpp"

namespace dici::index {

/// Where shard key copies live relative to the workers that probe them.
enum class Placement { kInterleave, kNodeLocal, kReplicate };

inline constexpr std::array<Placement, 3> kAllPlacements = {
    Placement::kInterleave, Placement::kNodeLocal, Placement::kReplicate};

inline std::span<const Placement> all_placements() { return kAllPlacements; }

constexpr bool placement_valid(Placement placement) {
  switch (placement) {
    case Placement::kInterleave:
    case Placement::kNodeLocal:
    case Placement::kReplicate:
      return true;
  }
  return false;
}

constexpr const char* placement_name(Placement placement) {
  switch (placement) {
    case Placement::kInterleave: return "interleave";
    case Placement::kNodeLocal: return "node-local";
    case Placement::kReplicate: return "replicate";
  }
  return "?";
}

/// Parse the placement_name spelling; returns false on anything else.
bool parse_placement(const std::string& name, Placement* out);

/// The per-(node, shard) key views behind one placement mode. Immutable
/// once every share is built (the engine's build barrier); safe to read
/// from any thread afterwards.
class PlacedShards {
 public:
  /// `partitioner` must outlive this object (its spans are the shared
  /// copy kInterleave serves and the source every copy is made from).
  /// `build_eytzinger` mirrors kernel_layout(config.kernel): the BFS
  /// copies are only built when a kernel will probe them.
  PlacedShards(Placement placement, bool build_eytzinger,
               const RangePartitioner& partitioner, std::uint32_t nodes);

  /// kReplicate only (no-op otherwise): reserve node `node`'s replica
  /// storage WITHOUT touching its data pages, so the copying workers'
  /// first touch decides where they land — which is why it may run on
  /// any thread (the engine calls it for every node before spawning the
  /// fleet). Call once per node, before any build_share on the node.
  void allocate_replica(std::uint32_t node);

  /// Build the calling worker's share of the copies — on the worker's
  /// pinned thread, so first touch places the pages. Called exactly
  /// once per worker, before any sorted_of/layout_of read (the engine's
  /// build barrier enforces the ordering).
  ///
  /// `worker` (of `total_workers`) owns shards s with
  /// s % total_workers == worker (kNodeLocal's share);
  /// `worker_on_node` (of `workers_on_node`) is its rank among the
  /// workers sharing `node`, which kReplicate uses to split the node
  /// replica's shards.
  void build_share(std::uint32_t node, std::uint32_t worker,
                   std::uint32_t total_workers, std::uint32_t worker_on_node,
                   std::uint32_t workers_on_node);

  /// Single-threaded build of every share (tests, and any path without
  /// a worker fleet).
  void build_all();

  /// The sorted keys worker threads on `node` should probe for `shard`.
  std::span<const key_t> sorted_of(std::uint32_t node,
                                   std::uint32_t shard) const;

  /// The Eytzinger copy for (node, shard); nullptr when the mode/kernel
  /// combination never probes one.
  const EytzingerLayout* layout_of(std::uint32_t node,
                                   std::uint32_t shard) const;

  Placement placement() const { return placement_; }
  std::uint32_t nodes() const { return nodes_; }

  /// Bytes of sorted-key copies this placement added on top of the
  /// shared array (the replicate mode's rent; Eytzinger copies are
  /// charged to the kernel choice, not the placement).
  std::uint64_t placed_key_bytes() const;

  /// 64-byte-aligned uninitialized key storage whose allocation touches
  /// no data pages (first write places them). Exposed for the deleter.
  struct AlignedDelete {
    void operator()(key_t* p) const {
      ::operator delete[](p, std::align_val_t{64});
    }
  };
  using AlignedKeys = std::unique_ptr<key_t[], AlignedDelete>;

 private:
  void build_shard_local(std::uint32_t shard);

  Placement placement_;
  bool build_eytzinger_;
  const RangePartitioner& partitioner_;
  std::uint32_t nodes_;
  std::uint32_t shards_;

  /// kNodeLocal: per-shard sorted copies (64-byte aligned, first-touched
  /// by the owner). Sized up front; slots written only by their owner.
  std::vector<AlignedKeys> local_keys_;
  /// kReplicate: one full sorted copy per node, slices first-touched by
  /// that node's workers.
  std::vector<AlignedKeys> replicas_;
  /// kInterleave/kNodeLocal: one layout per shard. kReplicate: one per
  /// (node, shard), indexed node * shards_ + shard. Empty when
  /// !build_eytzinger_.
  std::vector<EytzingerLayout> layouts_;
};

}  // namespace dici::index
