#include "src/index/partitioner.hpp"

#include <algorithm>

namespace dici::index {

RangePartitioner::RangePartitioner(std::span<const key_t> sorted_keys,
                                   std::uint32_t parts,
                                   sim::laddr_t logical_base)
    : keys_(sorted_keys), lbase_(logical_base) {
  DICI_CHECK(parts >= 1);
  DICI_CHECK_MSG(!sorted_keys.empty(), "cannot partition an empty key set");
  DICI_CHECK_MSG(std::is_sorted(keys_.begin(), keys_.end()),
                 "RangePartitioner requires sorted input");
  DICI_CHECK_MSG(parts <= sorted_keys.size(),
                 "more partitions than keys");
  const std::size_t n = keys_.size();
  starts_.resize(parts + 1);
  for (std::uint32_t p = 0; p <= parts; ++p)
    starts_[p] = static_cast<rank_t>(n * static_cast<std::uint64_t>(p) /
                                     parts);
  delimiters_.reserve(parts - 1);
  for (std::uint32_t p = 1; p < parts; ++p)
    delimiters_.push_back(keys_[starts_[p]]);
}

}  // namespace dici::index
