#include "src/index/static_tree.hpp"

#include <limits>

namespace dici::index {

namespace {
constexpr std::uint32_t kPad = std::numeric_limits<std::uint32_t>::max();
}

StaticTree::StaticTree(std::span<const key_t> keys, const TreeConfig& config,
                       sim::AddressSpace* space)
    : keys_(keys), config_(config) {
  DICI_CHECK_MSG(!keys.empty(), "cannot index an empty key set");
  DICI_CHECK_MSG(std::is_sorted(keys_.begin(), keys_.end()),
                 "StaticTree requires sorted input");
  DICI_CHECK(config_.node_bytes % sizeof(std::uint32_t) == 0);
  DICI_CHECK(config_.branching() >= 2);
  geometry_ = compute_geometry(keys.size(), config_);
  node_words_ = config_.node_bytes / sizeof(std::uint32_t);
  build();
  if (space != nullptr) {
    arena_lbase_ = space->allocate(geometry_.arena_bytes());
    keys_lbase_ = space->allocate(geometry_.leaf_bytes());
  }
}

void StaticTree::build() {
  const std::uint32_t t_int = internal_levels();
  level_offset_.assign(t_int, 0);
  std::uint64_t total_nodes = 0;
  for (std::uint32_t l = 0; l < t_int; ++l) {
    level_offset_[l] = total_nodes;
    total_nodes += geometry_.lines[l];
  }
  arena_.assign(total_nodes * node_words_, kPad);

  const std::uint32_t b = branching();
  const std::uint32_t seps = b - 1;
  const std::uint64_t leaf_blocks = geometry_.leaf_blocks();

  // cover[l] = leaf blocks spanned by one node at level l+1 (the level a
  // child of level l lives at); cover for the leaf level is 1.
  // A child c of node (l, i) therefore begins at leaf block
  // (i*b + c) * cover, and its subtree's minimum key is the first key of
  // that block — which is exactly the separator between child c-1 and c.
  for (std::uint32_t l = 0; l < t_int; ++l) {
    std::uint64_t cover = 1;
    for (std::uint32_t below = l + 1; below < t_int; ++below) cover *= b;
    const std::uint64_t level_nodes = geometry_.lines[l];
    const std::uint64_t next_size =
        l + 1 < t_int ? geometry_.lines[l + 1] : leaf_blocks;
    for (std::uint64_t i = 0; i < level_nodes; ++i) {
      std::uint32_t* node = &arena_[(level_offset_[l] + i) * node_words_];
      for (std::uint32_t c = 1; c < b; ++c) {
        const std::uint64_t first_block = (i * b + c) * cover;
        node[c - 1] = first_block < leaf_blocks
                          ? keys_[first_block * config_.leaf_keys()]
                          : kPad;
      }
      if (config_.layout == TreeLayout::kExplicitPointers) {
        for (std::uint32_t c = 0; c < b; ++c) {
          const std::uint64_t child = i * b + c;
          node[seps + c] = static_cast<std::uint32_t>(
              child < next_size ? child : next_size - 1);
        }
      } else {
        node[seps] = static_cast<std::uint32_t>(i * b);
      }
    }
  }
}

}  // namespace dici::index
