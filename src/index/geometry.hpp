// Tree shape math shared by the builder, the analytical model, and the
// Table 1 bench. Kept separate from StaticTree so the model can reason
// about trees (e.g. the paper's 2^23-key tree) without building them.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/types.hpp"

namespace dici::index {

/// How internal nodes are laid out within one cache-line-sized node.
enum class TreeLayout {
  /// "Standard" n-ary tree (Methods A/B): each node stores its separator
  /// keys and an explicit child pointer per child. A 32-byte node holds
  /// 3 separators + 4 child pointers => branching factor 4.
  kExplicitPointers,
  /// CSB+-style node (Method C-1, after Rao & Ross): children are stored
  /// contiguously so a single first-child pointer suffices. A 32-byte
  /// node holds 7 separators + 1 pointer => branching factor 8.
  kCsbFirstChild,
};

const char* layout_name(TreeLayout layout);

struct TreeConfig {
  std::uint32_t node_bytes = 32;  ///< one cache line (Table 1)
  TreeLayout layout = TreeLayout::kExplicitPointers;
  /// Bytes per leaf entry. 4 = packed keys only (the compact layout the
  /// Method C slaves use — "a sorted array", Sec. 3.2). 8 = B+-style
  /// (key, record-pointer) pairs, which is what makes the paper's
  /// replicated index 3.2 MB for 327 K keys (Table 1) and is the "more
  /// pressure on the cache" Method A/B pay for.
  std::uint32_t leaf_entry_bytes = 4;

  /// Children per internal node implied by the layout.
  std::uint32_t branching() const {
    return layout == TreeLayout::kExplicitPointers
               ? node_bytes / (2 * sizeof(std::uint32_t))
               : node_bytes / sizeof(std::uint32_t);
  }
  /// Keys per leaf block (a leaf block is one node-sized line).
  std::uint32_t leaf_keys() const { return node_bytes / leaf_entry_bytes; }
};

/// Level-by-level shape of a bulk-loaded static tree. Level 0 is the
/// root; the last level is the leaf level (blocks of the sorted array).
/// `lines[i]` is the paper's lambda_i: the number of cache lines at
/// level i (every node/leaf block is exactly one line).
struct TreeGeometry {
  std::vector<std::uint64_t> lines;  ///< node count per level, root first
  std::uint64_t num_keys = 0;
  TreeConfig config;

  std::uint32_t levels() const {
    return static_cast<std::uint32_t>(lines.size());  // includes leaf level
  }
  std::uint32_t internal_levels() const { return levels() - 1; }
  std::uint64_t leaf_blocks() const { return lines.back(); }
  std::uint64_t internal_nodes() const;
  /// Arena bytes (internal nodes only).
  std::uint64_t arena_bytes() const {
    return internal_nodes() * config.node_bytes;
  }
  /// Bytes of the leaf level (each leaf block occupies one node line).
  std::uint64_t leaf_bytes() const {
    return leaf_blocks() * config.node_bytes;
  }
  /// Total index footprint: internal nodes + leaf level.
  std::uint64_t total_bytes() const { return arena_bytes() + leaf_bytes(); }
  std::uint64_t total_lines() const;
};

/// Compute the shape of the tree `StaticTree` would build over `num_keys`
/// keys, without building it.
TreeGeometry compute_geometry(std::uint64_t num_keys, const TreeConfig& cfg);

}  // namespace dici::index
