#include "src/index/buffered.hpp"

namespace dici::index {

std::uint32_t levels_per_group(const StaticTree& tree,
                               const BufferedConfig& cfg) {
  const double tree_budget =
      static_cast<double>(cfg.target_cache_bytes) *
      (1.0 - cfg.buffer_fraction);
  const std::uint64_t b = tree.branching();
  const std::uint64_t node_bytes = tree.config().node_bytes;
  std::uint32_t g = 1;
  std::uint64_t nodes = 1;      // nodes in a subtree of g levels
  std::uint64_t level_width = 1;
  while (g < tree.internal_levels()) {
    level_width *= b;
    const std::uint64_t next_nodes = nodes + level_width;
    if (static_cast<double>(next_nodes * node_bytes) > tree_budget) break;
    nodes = next_nodes;
    ++g;
  }
  return g;
}

std::vector<rank_t> unpermute(const BufferedResults& results) {
  std::vector<rank_t> ranks(results.size());
  for (const auto& [id, rank] : results) {
    DICI_CHECK(id < ranks.size());
    ranks[id] = rank;
  }
  return ranks;
}

}  // namespace dici::index
