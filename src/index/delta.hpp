// The write-side sibling of the Zhou-Ross read buffering in
// index/buffered.hpp: a small sorted delta of pending inserts/erases
// kept NEXT TO an immutable base index, merged into probe results at
// resolve time instead of mutating the base in place.
//
// The live key set a reader must answer against is
//
//   live = (base \ erased) ∪ inserted
//
// and because ranks are upper_bound positions, the live rank of a query
// decomposes additively:
//
//   rank_live(q) = rank_base(q) + |{i ∈ inserted : i <= q}|
//                               - |{e ∈ erased   : e <= q}|
//
// so a reader needs exactly one extra lookup — a binary search over the
// delta's sorted keys into a signed prefix-count array — on top of
// whatever kernel resolved rank_base. The delta stays small (the store
// folds it into a fresh base generation in the background), so that
// lookup runs against L1/L2-resident data: batch kernels stay hot and
// the correction is O(log delta) per query.
//
// Two types split the writer/reader roles:
//   DeltaBuffer   — mutable, writer-side; owned by the store behind its
//                   write mutex. Entries are NET effects vs the base
//                   (insert-then-erase cancels out), validated against
//                   the base key array on every apply.
//   DeltaSnapshot — immutable, reader-side; published by shared_ptr and
//                   consulted lock-free by any number of probe threads.
//
// fold_delta() is the background rebuild's merge: base ∪ delta into a
// fresh sorted key array, optionally split across threads.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/util/types.hpp"

namespace dici::index {

/// What a delta entry does to the live set, relative to the base.
enum class DeltaOp : std::uint8_t {
  kInsert,  ///< key is NOT in the base and is live
  kErase,   ///< key IS in the base and is dead
};

class DeltaSnapshot;

/// Writer-side pending-writes buffer: sorted unique (key, op) entries,
/// each the NET effect of all writes to that key since the base was
/// built. Applying an insert of a base key (or an erase of a missing
/// key) is a no-op by construction, and insert-after-erase of the same
/// key cancels the entry — so size() is exactly the number of keys whose
/// live state differs from the base. Not thread-safe: the store mutates
/// it under its writer mutex only.
class DeltaBuffer {
 public:
  struct Entry {
    key_t key = 0;
    DeltaOp op = DeltaOp::kInsert;
  };

  /// Record `keys` as live. Keys already live (in the base and not
  /// erased, or already inserted) are no-ops; keys pending erase are
  /// resurrected by dropping the erase entry. `base` is the sorted base
  /// key array the buffer is relative to. Returns how many keys went
  /// from dead to live.
  std::size_t insert(std::span<const key_t> keys, std::span<const key_t> base);

  /// Record `keys` as dead. Keys already dead (absent everywhere, or
  /// already erased) are no-ops; pending inserts are cancelled by
  /// dropping the insert entry. Returns how many keys went from live to
  /// dead.
  std::size_t erase(std::span<const key_t> keys, std::span<const key_t> base);

  /// Re-express the buffer against the new base produced by folding
  /// `folded` into the old base. Three cases per key, resolved by one
  /// sorted merge of the buffer against the folded snapshot:
  ///   - key in the buffer only: a write that raced the fold, touching a
  ///     key the fold never saw — old and new base agree on it, so the
  ///     entry survives verbatim.
  ///   - key in both: the buffer still wants what the fold already
  ///     committed (same op by construction), so the entry is dropped.
  ///   - key in the snapshot only: a racing write CANCELLED the entry
  ///     mid-fold (erase of a snapshotted insert, or re-insert of a
  ///     snapshotted erase), reverting the key to its old-base state —
  ///     which the new base now contradicts, so the INVERSE entry is
  ///     synthesized (folded insert -> kErase, folded erase -> kInsert).
  void rebase(const DeltaSnapshot& folded);

  /// Immutable copy for publication to readers.
  std::shared_ptr<const DeltaSnapshot> snapshot() const;

  /// Number of keys whose live state differs from the base.
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// (#inserted - #erased): live set size minus base size.
  std::int64_t net() const { return net_; }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;  ///< sorted by key, unique
  std::int64_t net_ = 0;
};

/// Reader-side frozen delta: the buffer's sorted keys plus an inclusive
/// signed prefix-count array, so correction() is one upper_bound. Safe
/// to share across any number of probe threads (immutable after
/// construction; published by shared_ptr).
class DeltaSnapshot {
 public:
  /// The empty delta (correction 0 everywhere).
  DeltaSnapshot() = default;

  explicit DeltaSnapshot(std::span<const DeltaBuffer::Entry> entries);

  /// rank_live(q) - rank_base(q): the number of inserted keys <= q minus
  /// the number of erased keys <= q. Never drives a valid base rank
  /// negative (every erased key counted is itself a base key <= q).
  std::int64_t correction(key_t query) const {
    // Branch-free-ish upper_bound over the (small, cache-resident) keys.
    std::size_t lo = 0, hi = keys_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (keys_[mid] <= query) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo == 0 ? 0 : prefix_[lo - 1];
  }

  /// Fold corrections into `ranks` (parallel arrays, `n` entries) — the
  /// post-pass synchronous backends run after their base resolve.
  void correct(std::span<const key_t> queries, rank_t* ranks) const;

  std::size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }

  /// (#inserted - #erased) over the whole snapshot.
  std::int64_t net() const { return keys_.empty() ? 0 : prefix_.back(); }

  std::span<const key_t> keys() const { return keys_; }
  DeltaOp op(std::size_t i) const { return ops_[i]; }

 private:
  std::vector<key_t> keys_;          ///< sorted unique delta keys
  std::vector<std::int64_t> prefix_; ///< inclusive signed counts (+1/-1)
  std::vector<DeltaOp> ops_;         ///< per-key op, for fold_delta
};

/// The rebuild's merge: (base \ erased) ∪ inserted as a fresh sorted
/// unique key array. `threads` > 1 splits the base at shard boundaries
/// and folds the pieces concurrently (each piece's output offset is
/// computed exactly from the snapshot's prefix counts, so the pieces
/// write disjoint ranges of the one result array).
std::vector<key_t> fold_delta(std::span<const key_t> base,
                              const DeltaSnapshot& delta,
                              std::uint32_t threads = 1);

}  // namespace dici::index
