// The Zhou–Ross buffering access method (Sec. 3.1, Figure 1).
//
// The tree is logically decomposed into groups of levels such that one
// subtree (a node and its descendants down the group) fits in a chosen
// cache level. A batch of keys makes a single pass per group: every key
// is pushed `g` levels down and appended to the buffer of the subtree it
// reaches; buffers are then drained recursively. Tree nodes are touched
// on demand (they fit in cache, so they hit); buffer traffic is streaming
// and is charged at memory bandwidth.
//
// Method B uses this with subtrees sized to the L2 cache; Method C-2 on a
// slave uses it with subtrees sized to the L1 cache (Sec. 3.2).
//
// This is the READ-side buffering story; its write-side sibling is
// index/delta.hpp, which buffers pending inserts/erases next to the
// immutable base the same way these buffers queue probes next to the
// subtree — both trade a small cache-resident side structure for
// leaving the big immutable array untouched.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/index/static_tree.hpp"
#include "src/sim/probe.hpp"
#include "src/util/types.hpp"

namespace dici::index {

/// A query travelling through the buffers: its key and its position in
/// the original batch (results come back permuted, tagged by id).
struct BufferedItem {
  key_t key;
  std::uint32_t id;
};
static_assert(sizeof(BufferedItem) == 8);

struct BufferedConfig {
  /// Cache level the subtrees must fit in (L2 size for Method B, L1 size
  /// for Method C-2).
  std::uint64_t target_cache_bytes = 512 * 1024;
  /// Fraction of the target reserved for the buffers sharing the cache
  /// with the subtree; the subtree gets the rest.
  double buffer_fraction = 0.5;
  /// Logical address/extent of the buffer scratch region, so the cache
  /// simulator sees buffer pollution. 0 bytes = charge bandwidth only.
  sim::laddr_t scratch_base = 0;
  std::uint64_t scratch_bytes = 0;
};

/// Levels per group: the deepest subtree whose nodes fit in the
/// non-buffer share of the target cache. Always at least 1.
std::uint32_t levels_per_group(const StaticTree& tree,
                               const BufferedConfig& cfg);

/// (id, rank) pairs; order is permuted by the buffers.
using BufferedResults = std::vector<std::pair<std::uint32_t, rank_t>>;

namespace detail {

/// Rolling cursor over the scratch region: models the buffers' cache
/// footprint without tracking every bucket's exact bytes.
template <sim::ProbeLike P>
class StreamCursor {
 public:
  StreamCursor(const BufferedConfig& cfg, P& probe)
      : base_(cfg.scratch_base), bytes_(cfg.scratch_bytes), probe_(probe) {}

  void write(std::size_t n) {
    if (bytes_ == 0) {
      probe_.charge_stream(n);
    } else {
      probe_.stream_write(base_ + offset_, n);
      offset_ = (offset_ + n) % bytes_;
    }
  }
  void read(std::size_t n) {
    if (bytes_ == 0) {
      probe_.charge_stream(n);
    } else {
      probe_.stream_read(base_ + offset_, n);
      offset_ = (offset_ + n) % bytes_;
    }
  }

 private:
  sim::laddr_t base_;
  std::uint64_t bytes_;
  std::uint64_t offset_ = 0;
  P& probe_;
};

template <sim::ProbeLike P>
void process_subtree(const StaticTree& tree, std::uint32_t level,
                     std::uint32_t node, std::span<const BufferedItem> items,
                     std::uint32_t group_levels, StreamCursor<P>& cursor,
                     bool charge_input_read, P& probe, BufferedResults& out) {
  const std::uint32_t t_int = tree.internal_levels();
  // Buffer traffic is charged at 4 bytes per item per hop: the paper
  // stores the search key and its result in the same memory location
  // ("to lessen the cache contention", Sec. 4), so one word travels.
  if (level == t_int) {
    // `node` is a leaf block: resolve every buffered key.
    for (const auto& item : items) {
      if (charge_input_read) cursor.read(sizeof(key_t));
      out.emplace_back(item.id, tree.leaf_rank(node, item.key, probe));
      cursor.write(sizeof(rank_t));  // result overwrites the key in place
    }
    return;
  }
  const std::uint32_t steps = std::min(group_levels, t_int - level);
  const std::uint32_t next_level = level + steps;
  const std::uint32_t next_size = next_level == t_int
                                      ? tree.num_leaf_blocks()
                                      : tree.level_size(next_level);
  // Children of this subtree form a contiguous index range at next_level.
  std::uint64_t span = 1;
  for (std::uint32_t s = 0; s < steps; ++s) span *= tree.branching();
  const std::uint64_t first = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(node) * span, next_size - 1);
  const std::uint64_t last = std::min<std::uint64_t>(
      (static_cast<std::uint64_t>(node) + 1) * span, next_size);

  std::vector<std::vector<BufferedItem>> buckets(last - first);
  for (const auto& item : items) {
    if (charge_input_read) cursor.read(sizeof(key_t));
    const std::uint32_t child =
        tree.descend(level, node, item.key, steps, probe);
    DICI_CHECK(child >= first && child < last);
    buckets[child - first].push_back(item);
    cursor.write(sizeof(key_t));
  }
  for (std::uint64_t c = 0; c < buckets.size(); ++c) {
    if (buckets[c].empty()) continue;
    process_subtree(tree, next_level, static_cast<std::uint32_t>(first + c),
                    std::span<const BufferedItem>(buckets[c]), group_levels,
                    cursor, /*charge_input_read=*/true, probe, out);
  }
}

}  // namespace detail

/// Batched lookup of `batch` over `tree` using the buffering access
/// method. Appends (id, rank) pairs to `out` in buffer (permuted) order.
/// The initial read of `batch` itself is *not* charged here — the caller
/// owns that buffer (message payload or query stream) and charges it.
template <sim::ProbeLike P>
void buffered_lookup(const StaticTree& tree,
                     std::span<const BufferedItem> batch,
                     const BufferedConfig& cfg, P& probe,
                     BufferedResults& out) {
  out.reserve(out.size() + batch.size());
  detail::StreamCursor<P> cursor(cfg, probe);
  const std::uint32_t g = levels_per_group(tree, cfg);
  detail::process_subtree(tree, 0, 0, batch, g, cursor,
                          /*charge_input_read=*/false, probe, out);
}

/// Scatter permuted results back into batch order (utility for callers
/// that need in-order ranks; not charged — tests/examples only).
std::vector<rank_t> unpermute(const BufferedResults& results);

}  // namespace dici::index
