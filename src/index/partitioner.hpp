// Range partitioner — the master node's data structure in Method C.
//
// The sorted key array is cut into near-equal contiguous partitions, one
// per slave. The master holds only the partition delimiters ("a sorted
// array of partition delimiters on the master node", Sec. 3.2, Figure 2)
// and routes each query with a binary search over them.
#pragma once

#include <span>
#include <vector>

#include "src/sim/address_space.hpp"
#include "src/sim/probe.hpp"
#include "src/util/assert.hpp"
#include "src/util/types.hpp"

namespace dici::index {

class RangePartitioner {
 public:
  /// Split `sorted_keys` into `parts` contiguous ranges. `logical_base`
  /// places the delimiter array in the master's simulated memory.
  RangePartitioner(std::span<const key_t> sorted_keys, std::uint32_t parts,
                   sim::laddr_t logical_base = 0);

  std::uint32_t parts() const {
    return static_cast<std::uint32_t>(starts_.size() - 1);
  }

  /// Global rank range [start, end) owned by partition `p`.
  rank_t start_of(std::uint32_t p) const { return starts_[p]; }
  rank_t end_of(std::uint32_t p) const { return starts_[p + 1]; }
  std::size_t size_of(std::uint32_t p) const {
    return end_of(p) - start_of(p);
  }

  /// The slice of the key array owned by partition `p`.
  std::span<const key_t> keys_of(std::uint32_t p) const {
    return keys_.subspan(start_of(p), size_of(p));
  }

  std::uint64_t delimiter_bytes() const {
    return delimiters_.size() * sizeof(key_t);
  }

  /// Route a query to the partition whose key range contains it.
  /// A query's global upper-bound rank always falls inside the returned
  /// partition's [start, end] — the invariant the correctness tests pin.
  template <sim::ProbeLike P>
  std::uint32_t route(key_t q, P& probe) const {
    // upper_bound over delimiters; delimiters_[i] is the first key of
    // partition i+1, so "first delimiter > q" names q's partition.
    std::size_t lo = 0;
    std::size_t hi = delimiters_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      probe.touch(lbase_ + mid * sizeof(key_t), sizeof(key_t));
      probe.key_compare();
      if (delimiters_[mid] <= q) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<std::uint32_t>(lo);
  }

  std::uint32_t route(key_t q) const {
    sim::NullProbe probe;
    return route(q, probe);
  }

 private:
  std::span<const key_t> keys_;
  std::vector<key_t> delimiters_;  // first key of partitions 1..P-1
  std::vector<rank_t> starts_;     // P+1 entries; starts_[P] == n
  sim::laddr_t lbase_;
};

}  // namespace dici::index
