// Eytzinger (BFS) key layout — the cache- and prefetch-friendly twin of
// the sorted array.
//
// The sorted array's binary search walks a *virtual* tree whose nodes
// are scattered across the array: every level of the descent lands a
// power-of-two stride away, so once the partition outgrows L2 each probe
// is its own dependent cache miss and the line it pulled in is 15/16
// wasted. The Eytzinger order stores that same tree breadth-first in a
// flat array (root at slot 1, children of k at 2k and 2k+1):
//
//  * the hot top levels pack into a few contiguous lines that stay
//    cache-resident across queries, and
//  * the 16 great-great-grandchildren of node k occupy slots
//    [16k, 16k+15] — exactly one 64-byte line of 4-byte keys when the
//    array is 64-byte aligned — so a single prefetch issued at node k
//    covers the next FOUR levels of the descent.
//
// The descent itself is branch-free: k = 2k + (e[k] <= q) per level,
// then the trailing-one cancellation recovers the last left turn, which
// is the upper_bound element. A parallel rank table maps the final slot
// back to the sorted position, so every kernel here returns exactly
// std::upper_bound's answer (duplicates included — the proof only needs
// the inorder labeling to be sorted, not unique).
//
// Native-only, like fast_search.hpp: the simulator's cost model already
// abstracts comparator behaviour, so it never builds this layout.
#pragma once

#include <bit>
#include <cstddef>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include "src/util/types.hpp"

namespace dici::index {

/// One partition's keys rearranged in BFS order, built once alongside
/// the sorted copy and immutable afterwards. Slot 0 is unused by the
/// tree; its rank entry stores n so the "every element <= q" descent
/// resolves to the past-the-end rank without a branch.
class EytzingerLayout {
 public:
  /// Levels of descent needed before every search has fallen off the
  /// tree (bit_width(n)); the lockstep batch kernel runs exactly this
  /// many rounds per query group.
  static constexpr std::uint32_t levels_for(std::size_t n) {
    return static_cast<std::uint32_t>(std::bit_width(n));
  }

  EytzingerLayout() = default;
  /// Build from sorted (not necessarily unique) keys.
  explicit EytzingerLayout(std::span<const key_t> sorted_keys);

  std::size_t size() const { return n_; }
  std::uint32_t levels() const { return levels_for(n_); }

  /// The BFS key array, 1-indexed: slots()[1] is the root, slots()[0]
  /// is never read by a descent. 64-byte aligned so the 4-level-ahead
  /// prefetch of slots [16k, 16k+15] is exactly one cache line.
  const key_t* slots() const { return slots_.get(); }

  /// Sorted position of the key in slot k; rank_of_slot(0) == size().
  rank_t rank_of_slot(std::size_t k) const { return ranks_[k]; }

 private:
  struct AlignedDelete {
    void operator()(key_t* p) const {
      ::operator delete[](p, std::align_val_t{64});
    }
  };

  std::size_t n_ = 0;
  std::unique_ptr<key_t[], AlignedDelete> slots_;
  // One zero entry even when default-constructed, so rank_of_slot(0) —
  // which every descent over an empty layout resolves to — is in
  // bounds and correctly answers n (= 0).
  std::vector<rank_t> ranks_{0};
};

/// How many levels ahead the eytzinger kernels prefetch: 16 descendants
/// of slot k live in slots [k<<4, (k<<4)+15] — one aligned line.
inline constexpr unsigned kEytzingerPrefetchLevels = 4;

/// First sorted position whose key is > q — exactly std::upper_bound's
/// answer — via the branch-free BFS descent.
inline rank_t eytzinger_upper_bound(const EytzingerLayout& layout, key_t q) {
  const key_t* e = layout.slots();
  const std::size_t n = layout.size();
  std::size_t k = 1;
  while (k <= n) k = 2 * k + (e[k] <= q);
  // Cancel the trailing right turns: what remains is the slot of the
  // last left turn (the smallest element > q), or 0 when there was none
  // (every element <= q; rank_of_slot(0) holds n).
  k >>= std::countr_one(k) + 1;
  return layout.rank_of_slot(k);
}

/// Same descent, prefetching the one line holding all descendants four
/// levels down. The deep levels of an out-of-L2 partition are always
/// misses; issuing the line fetch four rounds early hides most of it.
inline rank_t eytzinger_prefetch_upper_bound(const EytzingerLayout& layout,
                                             key_t q) {
  const key_t* e = layout.slots();
  const std::size_t n = layout.size();
  std::size_t k = 1;
  while (k <= n) {
#if defined(__GNUC__) || defined(__clang__)
    // Past-the-end addresses are fine: prefetch is a hint, never a fault.
    __builtin_prefetch(e + (k << kEytzingerPrefetchLevels), 0, 1);
#endif
    k = 2 * k + (e[k] <= q);
  }
  k >>= std::countr_one(k) + 1;
  return layout.rank_of_slot(k);
}

}  // namespace dici::index
