// Bulk-loaded static search tree with cache-line-sized nodes.
//
// This is the paper's "sorted n-ary tree": internal nodes are exactly one
// cache line; the leaf level is the sorted key array itself, viewed as
// line-sized blocks. Two node layouts (Sec. 3 / Table 1):
//
//   kExplicitPointers — separators + one stored pointer per child
//                       (Methods A and B; branching 4 at 32-byte lines)
//   kCsbFirstChild    — separators + a single first-child pointer, with
//                       children stored contiguously (Rao & Ross CSB+;
//                       Method C-1; branching 8 at 32-byte lines)
//
// Internal nodes live in a flat arena in level order, so the whole tree
// is two contiguous allocations (arena + keys) — which is also what lets
// the cache simulator see a stable, deterministic address layout.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "src/index/geometry.hpp"
#include "src/sim/address_space.hpp"
#include "src/sim/probe.hpp"
#include "src/util/assert.hpp"
#include "src/util/types.hpp"

namespace dici::index {

class StaticTree {
 public:
  /// Build over `keys` (must stay alive, sorted, and duplicate-free for
  /// the tree's lifetime). `arena_base`/`keys_base` are the logical
  /// addresses of the node arena and the key array in the owning node's
  /// simulated memory; pass a live AddressSpace to have them assigned.
  StaticTree(std::span<const key_t> keys, const TreeConfig& config,
             sim::AddressSpace* space = nullptr);

  const TreeConfig& config() const { return config_; }
  const TreeGeometry& geometry() const { return geometry_; }
  std::uint32_t branching() const { return config_.branching(); }
  std::uint32_t leaf_keys() const { return config_.leaf_keys(); }
  /// Internal levels; the leaf level is one below the last internal one.
  std::uint32_t internal_levels() const { return geometry_.internal_levels(); }
  std::uint32_t num_leaf_blocks() const {
    return static_cast<std::uint32_t>(geometry_.leaf_blocks());
  }
  std::uint64_t arena_bytes() const { return geometry_.arena_bytes(); }
  std::uint64_t total_bytes() const { return geometry_.total_bytes(); }
  std::size_t num_keys() const { return keys_.size(); }

  /// Node count of internal level `level` (0 = root).
  std::uint32_t level_size(std::uint32_t level) const {
    DICI_CHECK(level < internal_levels());
    return static_cast<std::uint32_t>(geometry_.lines[level]);
  }

  /// Full lookup: returns the upper-bound rank of `q` within `keys`.
  template <sim::ProbeLike P>
  rank_t lookup(key_t q, P& probe) const {
    std::uint32_t node = 0;
    if (internal_levels() > 0)
      node = descend(0, 0, q, internal_levels(), probe);
    return leaf_rank(node, q, probe);
  }

  /// Uninstrumented fast path.
  rank_t lookup(key_t q) const {
    sim::NullProbe probe;
    return lookup(q, probe);
  }

  /// Walk `steps` levels starting from node `node_idx` of internal level
  /// `level`. Returns the node index at `level + steps`; when that equals
  /// internal_levels() the result is a *leaf block* index. Reports one
  /// line touch and one node comparison per level.
  template <sim::ProbeLike P>
  std::uint32_t descend(std::uint32_t level, std::uint32_t node_idx, key_t q,
                        std::uint32_t steps, P& probe) const {
    DICI_CHECK(level + steps <= internal_levels());
    const std::uint32_t b = branching();
    const std::uint32_t seps = b - 1;
    for (std::uint32_t s = 0; s < steps; ++s, ++level) {
      const std::uint64_t arena_idx = level_offset_[level] + node_idx;
      const std::uint32_t* node = &arena_[arena_idx * node_words_];
      probe.touch(arena_lbase_ + arena_idx * config_.node_bytes,
                  config_.node_bytes);
      probe.node_compare();
      // Slot = number of separators <= q. Separators are sorted and
      // padded with key-max, so a plain scan is correct for tail nodes.
      std::uint32_t slot = 0;
      while (slot < seps && node[slot] <= q) ++slot;
      std::uint32_t child;
      if (config_.layout == TreeLayout::kExplicitPointers) {
        child = node[seps + slot];  // stored child pointer
      } else {
        child = node[seps] + slot;  // CSB: first child + slot
      }
      const std::uint32_t next_size =
          level + 1 < internal_levels()
              ? level_size(level + 1)
              : num_leaf_blocks();
      node_idx = std::min(child, next_size - 1);
    }
    return node_idx;
  }

  /// Resolve the rank inside leaf block `block`. Reports the block touch
  /// (one node-sized line — leaf entries may carry a record pointer per
  /// key, see TreeConfig::leaf_entry_bytes) and one node comparison.
  template <sim::ProbeLike P>
  rank_t leaf_rank(std::uint32_t block, key_t q, P& probe) const {
    const std::size_t base =
        static_cast<std::size_t>(block) * config_.leaf_keys();
    DICI_CHECK(base < keys_.size() || keys_.empty());
    const std::size_t len =
        std::min<std::size_t>(config_.leaf_keys(), keys_.size() - base);
    probe.touch(keys_lbase_ +
                    static_cast<sim::laddr_t>(block) * config_.node_bytes,
                config_.node_bytes);
    probe.node_compare();
    const auto* first = keys_.data() + base;
    return static_cast<rank_t>(
        base + (std::upper_bound(first, first + len, q) - first));
  }

  sim::laddr_t arena_logical_base() const { return arena_lbase_; }
  sim::laddr_t keys_logical_base() const { return keys_lbase_; }

 private:
  void build();

  std::span<const key_t> keys_;
  TreeConfig config_;
  TreeGeometry geometry_;
  std::uint32_t node_words_;
  std::vector<std::uint32_t> arena_;        // level-order internal nodes
  std::vector<std::uint64_t> level_offset_; // first arena node per level
  sim::laddr_t arena_lbase_ = 0;
  sim::laddr_t keys_lbase_ = 0;
};

}  // namespace dici::index
