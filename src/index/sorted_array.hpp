// Sorted-array index with binary search — Method C-3's slave structure
// ("Method C-3 employs a simple sorted array. It employs binary search
// for key lookup", Sec. 3.2). Also the reference structure every other
// method is tested against.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "src/sim/address_space.hpp"
#include "src/sim/probe.hpp"
#include "src/util/assert.hpp"
#include "src/util/types.hpp"

namespace dici::index {

/// Non-owning view over a sorted run of keys with a logical base address
/// for the cache simulator. Lookups return the *local* upper-bound rank
/// (index of the first element > q within this run).
class SortedArrayIndex {
 public:
  /// `keys` must stay alive and sorted for the index's lifetime.
  /// `logical_base` is where this run lives in the node's simulated
  /// memory (0 is fine for native runs).
  explicit SortedArrayIndex(std::span<const key_t> keys,
                            sim::laddr_t logical_base = 0)
      : keys_(keys), lbase_(logical_base) {
    DICI_CHECK_MSG(std::is_sorted(keys_.begin(), keys_.end()),
                   "SortedArrayIndex requires sorted input");
  }

  std::size_t size() const { return keys_.size(); }
  std::uint64_t bytes() const { return keys_.size() * sizeof(key_t); }
  sim::laddr_t logical_base() const { return lbase_; }
  std::span<const key_t> keys() const { return keys_; }

  /// Binary search for the first element > q; each probe step reports its
  /// memory access and one key comparison.
  template <sim::ProbeLike P>
  rank_t upper_bound_rank(key_t q, P& probe) const {
    std::size_t lo = 0;
    std::size_t hi = keys_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      probe.touch(lbase_ + mid * sizeof(key_t), sizeof(key_t));
      probe.key_compare();
      if (keys_[mid] <= q) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<rank_t>(lo);
  }

  /// Uninstrumented fast path for native callers.
  rank_t upper_bound_rank(key_t q) const {
    return static_cast<rank_t>(
        std::upper_bound(keys_.begin(), keys_.end(), q) - keys_.begin());
  }

 private:
  std::span<const key_t> keys_;
  sim::laddr_t lbase_;
};

}  // namespace dici::index
