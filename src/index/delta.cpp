#include "src/index/delta.hpp"

#include <algorithm>
#include <thread>

#include "src/util/assert.hpp"

namespace dici::index {

namespace {

bool in_base(std::span<const key_t> base, key_t key) {
  return std::binary_search(base.begin(), base.end(), key);
}

}  // namespace

// --- DeltaBuffer -----------------------------------------------------------

std::size_t DeltaBuffer::insert(std::span<const key_t> keys,
                                std::span<const key_t> base) {
  std::size_t changed = 0;
  for (const key_t k : keys) {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), k,
        [](const Entry& e, key_t key) { return e.key < key; });
    if (it != entries_.end() && it->key == k) {
      if (it->op == DeltaOp::kErase) {
        entries_.erase(it);  // resurrect the base key
        ++net_;
        ++changed;
      }
      continue;  // already pending-inserted: no-op
    }
    if (in_base(base, k)) continue;  // already live in the base
    entries_.insert(it, Entry{k, DeltaOp::kInsert});
    ++net_;
    ++changed;
  }
  return changed;
}

std::size_t DeltaBuffer::erase(std::span<const key_t> keys,
                               std::span<const key_t> base) {
  std::size_t changed = 0;
  for (const key_t k : keys) {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), k,
        [](const Entry& e, key_t key) { return e.key < key; });
    if (it != entries_.end() && it->key == k) {
      if (it->op == DeltaOp::kInsert) {
        entries_.erase(it);  // cancel the pending insert
        --net_;
        ++changed;
      }
      continue;  // already pending-erased: no-op
    }
    if (!in_base(base, k)) continue;  // never was live
    entries_.insert(it, Entry{k, DeltaOp::kErase});
    --net_;
    ++changed;
  }
  return changed;
}

void DeltaBuffer::rebase(const DeltaSnapshot& folded) {
  std::vector<Entry> rebased;
  rebased.reserve(entries_.size());
  const std::span<const key_t> fkeys = folded.keys();
  std::size_t i = 0, j = 0;
  net_ = 0;
  const auto keep = [&](const Entry& e) {
    rebased.push_back(e);
    net_ += e.op == DeltaOp::kInsert ? 1 : -1;
  };
  while (i < entries_.size() || j < fkeys.size()) {
    if (j == fkeys.size() ||
        (i < entries_.size() && entries_[i].key < fkeys[j])) {
      keep(entries_[i++]);  // raced the fold, untouched by it
    } else if (i == entries_.size() || fkeys[j] < entries_[i].key) {
      // Cancelled mid-fold: the new base committed an op the buffer no
      // longer wants — synthesize the inverse.
      keep(Entry{fkeys[j], folded.op(j) == DeltaOp::kInsert
                               ? DeltaOp::kErase
                               : DeltaOp::kInsert});
      ++j;
    } else {
      // In both: the fold already committed this entry (same op by
      // construction — a base key can only carry kErase, a non-base key
      // only kInsert, before and after the snapshot).
      ++i;
      ++j;
    }
  }
  entries_ = std::move(rebased);
}

std::shared_ptr<const DeltaSnapshot> DeltaBuffer::snapshot() const {
  return std::make_shared<const DeltaSnapshot>(entries_);
}

// --- DeltaSnapshot ---------------------------------------------------------

DeltaSnapshot::DeltaSnapshot(std::span<const DeltaBuffer::Entry> entries) {
  keys_.reserve(entries.size());
  prefix_.reserve(entries.size());
  ops_.reserve(entries.size());
  std::int64_t running = 0;
  for (const DeltaBuffer::Entry& e : entries) {
    DICI_CHECK_MSG(keys_.empty() || keys_.back() < e.key,
                   "delta entries must be sorted and unique");
    running += e.op == DeltaOp::kInsert ? 1 : -1;
    keys_.push_back(e.key);
    prefix_.push_back(running);
    ops_.push_back(e.op);
  }
}

void DeltaSnapshot::correct(std::span<const key_t> queries,
                            rank_t* ranks) const {
  if (empty()) return;
  for (std::size_t i = 0; i < queries.size(); ++i)
    ranks[i] = static_cast<rank_t>(static_cast<std::int64_t>(ranks[i]) +
                                   correction(queries[i]));
}

// --- fold_delta ------------------------------------------------------------

namespace {

/// Serial two-pointer merge of one base slice with its delta slice into
/// `out`. Returns one past the last element written.
key_t* fold_range(std::span<const key_t> base,
                  std::span<const key_t> delta_keys,
                  const DeltaSnapshot& delta, std::size_t delta_begin,
                  key_t* out) {
  std::size_t i = 0, j = 0;
  while (i < base.size() && j < delta_keys.size()) {
    const key_t b = base[i];
    const key_t d = delta_keys[j];
    if (d < b) {
      // An erase key is always a base key, so a delta key strictly below
      // the next base key can only be an insert.
      *out++ = d;
      ++j;
    } else if (d == b) {
      // kErase drops the base key; a same-key insert cannot happen (the
      // buffer never inserts base keys) but emitting once is the safe
      // degenerate reading.
      if (delta.op(delta_begin + j) == DeltaOp::kInsert) *out++ = b;
      ++i;
      ++j;
    } else {
      *out++ = b;
      ++i;
    }
  }
  while (i < base.size()) *out++ = base[i++];
  for (; j < delta_keys.size(); ++j) {
    DICI_CHECK_MSG(delta.op(delta_begin + j) == DeltaOp::kInsert,
                   "erase key missing from its base slice");
    *out++ = delta_keys[j];
  }
  return out;
}

}  // namespace

std::vector<key_t> fold_delta(std::span<const key_t> base,
                              const DeltaSnapshot& delta,
                              std::uint32_t threads) {
  const std::int64_t live =
      static_cast<std::int64_t>(base.size()) + delta.net();
  DICI_CHECK_MSG(live >= 0, "delta erases more keys than the base holds");
  std::vector<key_t> out(static_cast<std::size_t>(live));
  const std::span<const key_t> dkeys = delta.keys();

  std::uint32_t T = std::max<std::uint32_t>(1, threads);
  // Below ~64K base keys the merge is memcpy-speed; thread spawn would
  // dominate. One slice per 64K keys, at most `threads`.
  T = std::min<std::uint64_t>(T, std::max<std::uint64_t>(1, base.size() >> 16));
  if (T == 1) {
    key_t* end = fold_range(base, dkeys, delta, 0, out.data());
    DICI_CHECK(end == out.data() + out.size());
    return out;
  }

  // Key-space slices cut at base positions: slice t owns base indices
  // [lo, hi) and every delta key in [base[lo], base[hi]) — insert keys
  // are never base keys, so a boundary key can only collide with an
  // erase entry, which lower_bound assigns to the slice that owns that
  // base index. Exact per-slice output sizes come from the signed op
  // sums, so the slices write disjoint ranges of one allocation.
  struct Slice {
    std::size_t b_lo, b_hi;  ///< base index range
    std::size_t d_lo, d_hi;  ///< delta index range
    std::size_t out_off;
  };
  std::vector<Slice> slices(T);
  std::size_t out_off = 0;
  for (std::uint32_t t = 0; t < T; ++t) {
    Slice& s = slices[t];
    s.b_lo = base.size() * t / T;
    s.b_hi = base.size() * (t + 1) / T;
    s.d_lo = t == 0 ? 0
                    : std::lower_bound(dkeys.begin(), dkeys.end(),
                                       base[s.b_lo]) -
                          dkeys.begin();
    s.d_hi = t + 1 == T ? dkeys.size()
                        : std::lower_bound(dkeys.begin(), dkeys.end(),
                                           base[s.b_hi]) -
                              dkeys.begin();
    std::int64_t span_net = 0;
    for (std::size_t j = s.d_lo; j < s.d_hi; ++j)
      span_net += delta.op(j) == DeltaOp::kInsert ? 1 : -1;
    s.out_off = out_off;
    out_off += static_cast<std::size_t>(
        static_cast<std::int64_t>(s.b_hi - s.b_lo) + span_net);
  }
  DICI_CHECK(out_off == out.size());

  std::vector<std::thread> pool;
  pool.reserve(T);
  for (std::uint32_t t = 0; t < T; ++t) {
    pool.emplace_back([&, t] {
      const Slice& s = slices[t];
      key_t* end = fold_range(base.subspan(s.b_lo, s.b_hi - s.b_lo),
                              dkeys.subspan(s.d_lo, s.d_hi - s.d_lo), delta,
                              s.d_lo, out.data() + s.out_off);
      const std::size_t expect =
          t + 1 < T ? slices[t + 1].out_off : out.size();
      DICI_CHECK(end == out.data() + expect);
    });
  }
  for (std::thread& th : pool) th.join();
  return out;
}

}  // namespace dici::index
