// Interleaved batch kernels — memory-level parallelism for the slave
// probe.
//
// A single binary search is one chain of dependent cache misses: probe,
// stall, probe, stall. No amount of cleverness inside ONE search can
// overlap those misses, because each address depends on the previous
// load. But a slave never resolves one query — it resolves a message
// full of them, and distinct queries' descents are independent. The
// kernels here advance W ("interleave width") searches in lockstep, one
// tree level per round, issuing every lane's next probe as a prefetch
// before any lane blocks on its load. The result: up to W misses in
// flight per round instead of one, so DRAM latency amortizes across the
// batch. This is the same trick the paper plays at cluster scale —
// batching queries so communication latency overlaps — applied to the
// memory bus.
//
// Lockstep works because every lane searches the SAME partition: the
// halving sequence (sorted layout) and the level count (eytzinger
// layout) depend only on n, so all lanes walk the same number of
// rounds and no lane waits on another.
//
// resolve_batch() is the one entry point the engines use: it maps a
// SearchKernel onto the scalar kernels (fast_search.hpp,
// eytzinger.hpp) or the interleaved ones below, so every backend
// resolves whole messages through identical code.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <span>

#include "src/index/eytzinger.hpp"
#include "src/index/fast_search.hpp"
#include "src/util/assert.hpp"
#include "src/util/types.hpp"

namespace dici::index {

// kMaxInterleave / kDefaultInterleave (the W bounds) live in
// fast_search.hpp with the rest of the kernel vocabulary.

/// Interleaved branchless upper_bound over the SORTED layout: W lanes
/// halve in lockstep, each round prefetching every lane's boundary
/// element before any lane's cmov consumes it.
inline void batched_branchless_upper_bound(std::span<const key_t> keys,
                                           std::span<const key_t> queries,
                                           rank_t* out, std::uint32_t width) {
  width = std::clamp<std::uint32_t>(width, 1, kMaxInterleave);
  const key_t* data = keys.data();
  const std::size_t total = queries.size();
  for (std::size_t g = 0; g < total; g += width) {
    const std::uint32_t m =
        static_cast<std::uint32_t>(std::min<std::size_t>(width, total - g));
    const key_t* base[kMaxInterleave];
    for (std::uint32_t i = 0; i < m; ++i) base[i] = data;
    std::size_t n = keys.size();
    while (n > 1) {
      const std::size_t half = n / 2;
#if defined(__GNUC__) || defined(__clang__)
      for (std::uint32_t i = 0; i < m; ++i)
        __builtin_prefetch(base[i] + half - 1, 0, 1);
#endif
      for (std::uint32_t i = 0; i < m; ++i)
        base[i] = (base[i][half - 1] <= queries[g + i]) ? base[i] + half
                                                        : base[i];
      n -= half;
    }
    for (std::uint32_t i = 0; i < m; ++i)
      out[g + i] = static_cast<rank_t>(
          static_cast<std::size_t>(base[i] - data) +
          (n == 1 && *base[i] <= queries[g + i] ? 1 : 0));
  }
}

/// Interleaved upper_bound over the EYTZINGER layout: W lockstep BFS
/// descents, each round prefetching the line that holds every lane's
/// subtree four levels down. Lanes that fall off the (ragged) bottom
/// level park via cmov until the round count runs out, so the loop body
/// stays branch-free and uniform.
inline void batched_eytzinger_upper_bound(const EytzingerLayout& layout,
                                          std::span<const key_t> queries,
                                          rank_t* out, std::uint32_t width) {
  width = std::clamp<std::uint32_t>(width, 1, kMaxInterleave);
  const key_t* e = layout.slots();
  const std::size_t n = layout.size();
  const std::uint32_t levels = layout.levels();
  const std::size_t total = queries.size();
  for (std::size_t g = 0; g < total; g += width) {
    const std::uint32_t m =
        static_cast<std::uint32_t>(std::min<std::size_t>(width, total - g));
    std::size_t k[kMaxInterleave];
    for (std::uint32_t i = 0; i < m; ++i) k[i] = 1;
    for (std::uint32_t level = 0; level < levels; ++level) {
#if defined(__GNUC__) || defined(__clang__)
      for (std::uint32_t i = 0; i < m; ++i)
        __builtin_prefetch(e + (k[i] << kEytzingerPrefetchLevels), 0, 1);
#endif
      for (std::uint32_t i = 0; i < m; ++i) {
        const std::size_t ki = k[i];
        // Parked lanes (ki > n) load slot 1 harmlessly and keep ki: two
        // cmovs instead of a mispredictable ragged-bottom branch.
        const std::size_t probe = ki <= n ? ki : 1;
        const std::size_t next = 2 * ki + (e[probe] <= queries[g + i]);
        k[i] = ki <= n ? next : ki;
      }
    }
    for (std::uint32_t i = 0; i < m; ++i) {
      const std::size_t slot = k[i] >> (std::countr_one(k[i]) + 1);
      out[g + i] = layout.rank_of_slot(slot);
    }
  }
}

/// Resolve one whole message against one partition with the configured
/// kernel: the single probe seam shared by the parallel engine's worker
/// loop and the native cluster's C-3 slaves. `layout` is required (and
/// only consulted) for the eytzinger-layout kernels; `sorted_keys` is
/// required for the sorted-layout ones. Ranks land in `out` in query
/// order, exactly std::upper_bound's answers.
inline void resolve_batch(SearchKernel kernel,
                          std::span<const key_t> sorted_keys,
                          const EytzingerLayout* layout,
                          std::span<const key_t> queries, rank_t* out,
                          std::uint32_t width = kDefaultInterleave) {
  if (kernel_layout(kernel) == KeyLayout::kEytzinger) {
    DICI_CHECK_MSG(layout != nullptr,
                   "eytzinger kernels need the Eytzinger layout built "
                   "alongside the sorted copy");
  }
  switch (kernel) {
    case SearchKernel::kStdUpperBound:
      for (std::size_t j = 0; j < queries.size(); ++j)
        out[j] = static_cast<rank_t>(
            std::upper_bound(sorted_keys.begin(), sorted_keys.end(),
                             queries[j]) -
            sorted_keys.begin());
      return;
    case SearchKernel::kBranchless:
      for (std::size_t j = 0; j < queries.size(); ++j)
        out[j] = branchless_upper_bound(sorted_keys, queries[j]);
      return;
    case SearchKernel::kPrefetch:
      for (std::size_t j = 0; j < queries.size(); ++j)
        out[j] = prefetch_upper_bound(sorted_keys, queries[j]);
      return;
    case SearchKernel::kEytzinger:
      for (std::size_t j = 0; j < queries.size(); ++j)
        out[j] = eytzinger_upper_bound(*layout, queries[j]);
      return;
    case SearchKernel::kEytzingerPrefetch:
      for (std::size_t j = 0; j < queries.size(); ++j)
        out[j] = eytzinger_prefetch_upper_bound(*layout, queries[j]);
      return;
    case SearchKernel::kBatchedBranchless:
      batched_branchless_upper_bound(sorted_keys, queries, out, width);
      return;
    case SearchKernel::kBatchedEytzinger:
      batched_eytzinger_upper_bound(*layout, queries, out, width);
      return;
  }
  DICI_CHECK_MSG(false, "unknown SearchKernel");
}

}  // namespace dici::index
