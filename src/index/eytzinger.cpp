#include "src/index/eytzinger.hpp"

#include "src/util/assert.hpp"

namespace dici::index {

namespace {

/// Inorder walk of the implicit tree: slot k receives the next sorted
/// element after its whole left subtree (rooted at 2k) has been filled.
/// Recursion depth is the tree height (<= 32 for 32-bit ranks).
void fill(std::span<const key_t> sorted, key_t* slots, rank_t* ranks,
          std::size_t n, std::size_t k, std::size_t& next) {
  if (k > n) return;
  fill(sorted, slots, ranks, n, 2 * k, next);
  slots[k] = sorted[next];
  ranks[k] = static_cast<rank_t>(next);
  ++next;
  fill(sorted, slots, ranks, n, 2 * k + 1, next);
}

}  // namespace

EytzingerLayout::EytzingerLayout(std::span<const key_t> sorted_keys)
    : n_(sorted_keys.size()) {
  slots_.reset(new (std::align_val_t{64}) key_t[n_ + 1]);
  ranks_.resize(n_ + 1);
  slots_[0] = 0;  // never probed; keep deterministic for tooling
  ranks_[0] = static_cast<rank_t>(n_);  // the "all keys <= q" answer
  std::size_t next = 0;
  fill(sorted_keys, slots_.get(), ranks_.data(), n_, 1, next);
  DICI_CHECK_MSG(next == n_, "eytzinger fill must place every key");
}

}  // namespace dici::index
