// Memory-access probes.
//
// Every index structure executes its real algorithm over real memory and
// reports each *logical* memory access to a probe. Two implementations:
//
//  * NullProbe   — all no-ops; compiles away entirely. Used by the native
//                  (real-hardware) engines and benchmarks.
//  * MemoryProbe — drives the L1/L2/TLB simulation and charges virtual
//                  time per the machine's Table 2 constants. Used by the
//                  discrete-event cluster simulator.
//
// Lookup kernels are templated on the probe type, so the native build pays
// zero overhead while the simulated build sees every access.
#pragma once

#include <concepts>
#include <cstddef>

#include "src/arch/machine.hpp"
#include "src/sim/address_space.hpp"
#include "src/sim/cache.hpp"
#include "src/sim/tlb.hpp"
#include "src/util/types.hpp"

namespace dici::sim {

/// What index kernels require of a probe.
template <typename P>
concept ProbeLike = requires(P p, laddr_t addr, std::size_t n, double ns) {
  { p.touch(addr, n) };
  { p.stream_read(addr, n) };
  { p.stream_write(addr, n) };
  { p.charge_stream(n) };
  { p.compute(ns) };
  { p.node_compare() };
  { p.key_compare() };
};

/// No-op probe for native execution. All calls vanish under optimization.
struct NullProbe {
  void touch(laddr_t, std::size_t) {}
  void stream_read(laddr_t, std::size_t) {}
  void stream_write(laddr_t, std::size_t) {}
  void charge_stream(std::size_t) {}
  void compute(double) {}
  void node_compare() {}
  void key_compare() {}
};
static_assert(ProbeLike<NullProbe>);

/// Time charged by a MemoryProbe, broken down by cause (all picoseconds).
struct ChargeBreakdown {
  picos_t compute = 0;   ///< comparison / traversal CPU work
  picos_t l2_hit = 0;    ///< B1 penalties (line moved L2 -> L1)
  picos_t memory = 0;    ///< B2 penalties (line loaded from RAM)
  picos_t stream = 0;    ///< sequential buffer traffic at W1
  picos_t tlb = 0;       ///< page-walk cost (0 unless enabled)

  picos_t total() const { return compute + l2_hit + memory + stream + tlb; }
};

/// Cache/TLB/bandwidth simulation for one node's CPU.
class MemoryProbe {
 public:
  /// `pollute_streams`: whether streamed buffers occupy cache lines
  /// (true reproduces the paper's Sec. 4.1 cache-contention dip; the
  /// contention ablation switches it off to isolate the effect).
  explicit MemoryProbe(const arch::MachineSpec& machine,
                       bool pollute_streams = true);

  /// Demand access (pointer chase): walks each line in [addr, addr+bytes),
  /// charging B1 on L2 hits and B2 on memory loads.
  void touch(laddr_t addr, std::size_t bytes);

  /// Sequential read of a buffer: charged at W1; fills cache lines
  /// (hardware prefetch hides latency but the data still lands in cache).
  void stream_read(laddr_t addr, std::size_t bytes);

  /// Sequential (write-allocate) write of a buffer: charged at W1.
  void stream_write(laddr_t addr, std::size_t bytes);

  /// Bandwidth charge only, for buffers whose placement is not modeled.
  void charge_stream(std::size_t bytes);

  /// Charge CPU work in nanoseconds (e.g. comp_cost_node per level).
  void compute(double ns);

  /// Charge one tree-node visit: Table 2's "Comp Cost Node" — the
  /// comparison cost of searching within one line-sized node.
  void node_compare() { compute(machine_.comp_cost_node_ns); }

  /// Charge a single key comparison (binary-search step). Derived from
  /// comp_cost_node: a line of k keys takes ~log2(k) comparisons, so one
  /// comparison costs comp_cost_node / log2(keys_per_line).
  void key_compare() { compute(key_compare_ns_); }

  /// Model an incoming NIC transfer landing in this node's cache
  /// (cache-allocating DMA). Costs no CPU time; evicts what it evicts.
  void dma_fill(laddr_t addr, std::size_t bytes);

  /// Total virtual time charged so far.
  picos_t charged() const { return charges_.total(); }
  const ChargeBreakdown& breakdown() const { return charges_; }

  const CacheStats& l1_stats() const { return l1_.stats(); }
  const CacheStats& l2_stats() const { return l2_.stats(); }
  const TlbStats& tlb_stats() const { return tlb_.stats(); }
  std::uint64_t streamed_bytes() const { return streamed_bytes_; }

  /// Drop cache/TLB contents and zero all charges and statistics.
  void reset();

  const arch::MachineSpec& machine() const { return machine_; }

 private:
  void walk_lines(laddr_t addr, std::size_t bytes, bool demand);

  arch::MachineSpec machine_;
  Cache l1_;
  Cache l2_;
  Tlb tlb_;
  bool pollute_streams_;

  picos_t b1_ps_;
  picos_t b2_ps_;
  picos_t tlb_ps_;
  double stream_ps_per_byte_;
  double key_compare_ns_;

  ChargeBreakdown charges_;
  std::uint64_t streamed_bytes_ = 0;
};
static_assert(ProbeLike<MemoryProbe>);

}  // namespace dici::sim
