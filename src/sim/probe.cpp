#include "src/sim/probe.hpp"

namespace dici::sim {

MemoryProbe::MemoryProbe(const arch::MachineSpec& machine,
                         bool pollute_streams)
    : machine_(machine),
      l1_(machine.l1),
      l2_(machine.l2),
      tlb_(machine.tlb_entries, machine.page_bytes),
      pollute_streams_(pollute_streams),
      b1_ps_(ns_to_ps(machine.l1.miss_penalty_ns)),
      b2_ps_(ns_to_ps(machine.l2.miss_penalty_ns)),
      tlb_ps_(ns_to_ps(machine.tlb_miss_penalty_ns)),
      stream_ps_per_byte_(1e3 / machine.mem_seq_bytes_per_ns()),
      key_compare_ns_(machine.hot_compare_ns) {}

void MemoryProbe::walk_lines(laddr_t addr, std::size_t bytes, bool demand) {
  const std::uint64_t line = machine_.l2.line_bytes;  // L1 line == L2 line
  const laddr_t first = addr & ~(line - 1);
  const laddr_t last = (addr + (bytes ? bytes : 1) - 1) & ~(line - 1);
  for (laddr_t a = first; a <= last; a += line) {
    if (demand) {
      if (!tlb_.access(a)) charges_.tlb += tlb_ps_;
      if (l1_.access(a)) continue;         // L1 hit: free (paper neglects)
      if (l2_.access(a)) {
        charges_.l2_hit += b1_ps_;         // line moves L2 -> L1
      } else {
        charges_.memory += b2_ps_;         // line loaded from RAM
      }
      l1_.fill(a);
    } else {
      // Streaming / DMA fill: occupy the lines, charge nothing here.
      tlb_.access(a);
      l2_.fill(a);
      l1_.fill(a);
    }
  }
}

void MemoryProbe::touch(laddr_t addr, std::size_t bytes) {
  walk_lines(addr, bytes, /*demand=*/true);
}

void MemoryProbe::stream_read(laddr_t addr, std::size_t bytes) {
  charge_stream(bytes);
  if (pollute_streams_) walk_lines(addr, bytes, /*demand=*/false);
}

void MemoryProbe::stream_write(laddr_t addr, std::size_t bytes) {
  charge_stream(bytes);
  if (pollute_streams_) walk_lines(addr, bytes, /*demand=*/false);
}

void MemoryProbe::charge_stream(std::size_t bytes) {
  charges_.stream +=
      static_cast<picos_t>(stream_ps_per_byte_ * static_cast<double>(bytes));
  streamed_bytes_ += bytes;
}

void MemoryProbe::compute(double ns) { charges_.compute += ns_to_ps(ns); }

void MemoryProbe::dma_fill(laddr_t addr, std::size_t bytes) {
  walk_lines(addr, bytes, /*demand=*/false);
}

void MemoryProbe::reset() {
  l1_.clear();
  l1_.reset_stats();
  l2_.clear();
  l2_.reset_stats();
  tlb_.clear();
  tlb_.reset_stats();
  charges_ = {};
  streamed_bytes_ = 0;
}

}  // namespace dici::sim
