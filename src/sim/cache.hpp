// Set-associative cache with true-LRU replacement, operating on logical
// addresses. This is the mechanism behind the paper's miss-penalty
// accounting: Method A's per-level misses and Method C's all-hits
// behaviour both *emerge* from this model rather than being assumed.
#pragma once

#include <cstdint>
#include <vector>

#include "src/arch/cache_geometry.hpp"
#include "src/sim/address_space.hpp"

namespace dici::sim {

/// Hit/miss counters for one cache level.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  std::uint64_t accesses() const { return hits + misses; }
  double miss_rate() const {
    return accesses() ? static_cast<double>(misses) /
                            static_cast<double>(accesses())
                      : 0.0;
  }
};

class Cache {
 public:
  explicit Cache(const arch::CacheGeometry& geometry);

  /// Access the line containing `addr`. Returns true on hit. On miss the
  /// line is inserted, evicting the set's LRU line if the set is full.
  bool access(laddr_t addr);

  /// Insert the line containing `addr` without counting a demand access
  /// (used for streaming/DMA fills that pollute the cache but whose cost
  /// is charged as bandwidth, not as a miss). Returns true if the line
  /// was already present.
  bool fill(laddr_t addr);

  /// True if the line containing `addr` is currently resident (no state
  /// change, no stats). For tests.
  bool contains(laddr_t addr) const;

  /// Drop all contents (cold restart); statistics are kept.
  void clear();

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  const arch::CacheGeometry& geometry() const { return geom_; }

 private:
  // One slot per way; `tags` of kEmpty are free. `lru` holds way indices
  // most-recent-first; both are small fixed-stride segments of flat
  // vectors to stay cache-friendly in the *host* machine.
  static constexpr std::uint64_t kEmpty = ~0ull;

  std::uint64_t line_of(laddr_t addr) const { return addr >> line_shift_; }
  std::uint64_t set_of(std::uint64_t line) const { return line & set_mask_; }

  // Returns way index of the tag within the set, or -1.
  int find_way(std::uint64_t set, std::uint64_t tag) const;
  void touch_lru(std::uint64_t set, std::uint8_t way);
  std::uint8_t lru_way(std::uint64_t set) const;
  bool insert(laddr_t addr, bool count_demand);

  arch::CacheGeometry geom_;
  std::uint32_t line_shift_;
  std::uint64_t set_mask_;
  std::uint32_t ways_;
  std::vector<std::uint64_t> tags_;  // sets * ways
  std::vector<std::uint8_t> lru_;    // sets * ways, most recent first
  CacheStats stats_;
};

}  // namespace dici::sim
