// Fully-associative LRU TLB model.
//
// The paper's model deliberately excludes TLB misses ("gives a lower
// bound") but argues qualitatively that Methods A/B suffer them while
// Method C, working on a small contiguous dataset, does not. We model the
// TLB so that claim is *measurable*: miss counts always accumulate; a
// miss only costs time when the MachineSpec sets tlb_miss_penalty_ns > 0
// (the tlb ablation does).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/sim/address_space.hpp"

namespace dici::sim {

struct TlbStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

class Tlb {
 public:
  Tlb(std::uint32_t entries, std::uint32_t page_bytes);

  /// Access the page containing `addr`; returns true on hit.
  bool access(laddr_t addr);

  void clear();
  void reset_stats() { stats_ = {}; }
  const TlbStats& stats() const { return stats_; }

 private:
  std::uint32_t entries_;
  std::uint32_t page_shift_;
  // LRU list of pages, most recent at the front, plus an index into it.
  std::list<std::uint64_t> order_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
  TlbStats stats_;
};

}  // namespace dici::sim
