#include "src/sim/tlb.hpp"

#include <bit>

#include "src/util/assert.hpp"

namespace dici::sim {

Tlb::Tlb(std::uint32_t entries, std::uint32_t page_bytes) : entries_(entries) {
  DICI_CHECK(entries > 0);
  DICI_CHECK((page_bytes & (page_bytes - 1)) == 0 && page_bytes > 0);
  page_shift_ = static_cast<std::uint32_t>(
      std::countr_zero(static_cast<std::uint64_t>(page_bytes)));
  map_.reserve(entries * 2);
}

bool Tlb::access(laddr_t addr) {
  const std::uint64_t page = addr >> page_shift_;
  auto it = map_.find(page);
  if (it != map_.end()) {
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }
  ++stats_.misses;
  if (map_.size() == entries_) {
    map_.erase(order_.back());
    order_.pop_back();
  }
  order_.push_front(page);
  map_[page] = order_.begin();
  return false;
}

void Tlb::clear() {
  order_.clear();
  map_.clear();
}

}  // namespace dici::sim
