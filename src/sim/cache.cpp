#include "src/sim/cache.hpp"

#include <bit>

namespace dici::sim {

Cache::Cache(const arch::CacheGeometry& geometry) : geom_(geometry) {
  geom_.validate();
  line_shift_ = static_cast<std::uint32_t>(
      std::countr_zero(static_cast<std::uint64_t>(geom_.line_bytes)));
  const std::uint64_t sets = geom_.num_sets();
  DICI_CHECK_MSG((sets & (sets - 1)) == 0,
                 "number of sets must be a power of two");
  set_mask_ = sets - 1;
  ways_ = geom_.associativity;
  tags_.assign(sets * ways_, kEmpty);
  lru_.resize(sets * ways_);
  clear();
}

void Cache::clear() {
  std::fill(tags_.begin(), tags_.end(), kEmpty);
  for (std::uint64_t s = 0; s <= set_mask_; ++s)
    for (std::uint32_t w = 0; w < ways_; ++w)
      lru_[s * ways_ + w] = static_cast<std::uint8_t>(w);
}

int Cache::find_way(std::uint64_t set, std::uint64_t tag) const {
  const std::uint64_t* base = &tags_[set * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w)
    if (base[w] == tag) return static_cast<int>(w);
  return -1;
}

void Cache::touch_lru(std::uint64_t set, std::uint8_t way) {
  std::uint8_t* order = &lru_[set * ways_];
  // Move `way` to the front, shifting the more recent entries down.
  std::uint32_t pos = 0;
  while (order[pos] != way) ++pos;
  for (; pos > 0; --pos) order[pos] = order[pos - 1];
  order[0] = way;
}

std::uint8_t Cache::lru_way(std::uint64_t set) const {
  return lru_[set * ways_ + ways_ - 1];
}

bool Cache::insert(laddr_t addr, bool count_demand) {
  const std::uint64_t line = line_of(addr);
  const std::uint64_t set = set_of(line);
  const int way = find_way(set, line);
  if (way >= 0) {
    if (count_demand) ++stats_.hits;
    touch_lru(set, static_cast<std::uint8_t>(way));
    return true;
  }
  if (count_demand) ++stats_.misses;
  const std::uint8_t victim = lru_way(set);
  if (tags_[set * ways_ + victim] != kEmpty) ++stats_.evictions;
  tags_[set * ways_ + victim] = line;
  touch_lru(set, victim);
  return false;
}

bool Cache::access(laddr_t addr) { return insert(addr, /*count_demand=*/true); }

bool Cache::fill(laddr_t addr) { return insert(addr, /*count_demand=*/false); }

bool Cache::contains(laddr_t addr) const {
  const std::uint64_t line = line_of(addr);
  return find_way(set_of(line), line) >= 0;
}

}  // namespace dici::sim
