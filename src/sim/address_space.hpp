// Deterministic logical address space for the cache simulator.
//
// Index structures execute over real heap memory, but report *logical*
// addresses to the probe. Logical bases come from this bump allocator, so
// set-index/tag behaviour is bit-identical across runs regardless of where
// the OS placed the heap (ASLR would otherwise make conflict misses — and
// therefore simulated times — drift run to run).
#pragma once

#include <cstdint>

#include "src/util/assert.hpp"

namespace dici::sim {

/// Logical byte address inside one node's simulated memory.
using laddr_t = std::uint64_t;

/// Bump allocator handing out line-aligned logical regions.
class AddressSpace {
 public:
  /// `alignment` must be a power of two (defaults to a typical line).
  explicit AddressSpace(std::uint64_t alignment = 64)
      : alignment_(alignment) {
    DICI_CHECK((alignment & (alignment - 1)) == 0 && alignment > 0);
  }

  /// Reserve `bytes` and return the region's base logical address.
  laddr_t allocate(std::uint64_t bytes) {
    const laddr_t base = next_;
    next_ += round_up(bytes);
    return base;
  }

  /// Total bytes reserved so far.
  std::uint64_t used() const { return next_ - kBase; }

 private:
  std::uint64_t round_up(std::uint64_t v) const {
    return (v + alignment_ - 1) & ~(alignment_ - 1);
  }

  // Start away from 0 so "address 0" never aliases a valid region.
  static constexpr laddr_t kBase = 1 << 20;
  std::uint64_t alignment_;
  laddr_t next_ = kBase;
};

}  // namespace dici::sim
