// Point-to-point link timing (Section 2.2 of the paper).
//
// transfer time = bytes / W2;  a message additionally pays one `latency`
// regardless of size — which is why batching matters: at 8 KB on Myrinet
// the 7 us latency is already dominated by the 58 us transfer.
#pragma once

#include <cstdint>

#include "src/arch/machine.hpp"
#include "src/util/types.hpp"

namespace dici::net {

class LinkModel {
 public:
  explicit LinkModel(const arch::MachineSpec& machine)
      : ps_per_byte_(1e3 / machine.net_bytes_per_ns()),
        latency_ps_(ns_to_ps(machine.net_latency_us * 1e3)) {}

  /// Wire occupancy of `bytes` on one NIC (no latency).
  picos_t transfer_ps(std::uint64_t bytes) const {
    return static_cast<picos_t>(ps_per_byte_ * static_cast<double>(bytes));
  }

  /// One-way per-message latency.
  picos_t latency_ps() const { return latency_ps_; }

  /// End-to-end time for a single uncontended message.
  picos_t message_ps(std::uint64_t bytes) const {
    return transfer_ps(bytes) + latency_ps_;
  }

 private:
  double ps_per_byte_;
  picos_t latency_ps_;
};

}  // namespace dici::net
