// The transport seam: how serialized frames physically move between a
// cluster coordinator and a node.
//
// An Endpoint is one side of a bidirectional, ordered, reliable link
// that carries whole wire.hpp Frames. Two implementations, chosen by
// TransportKind:
//
//  * kRing   — an in-process pair of SpscRing<byte-buffer> pipes with
//              the hub's eventcount park/wake protocol. The fast path
//              is lock-free; a blocked side parks on a condvar. This is
//              the "first rung" of ISSUE 8: node objects live in the
//              coordinator's process but their states share NOTHING —
//              only serialized bytes cross the pipe. ~100ns/message.
//  * kSocket — a UNIX-domain socketpair (SOCK_STREAM): the kernel
//              carries the bytes, so the two ends could be forked into
//              separate processes without changing a line above the
//              seam. 1-2µs/message syscall overhead; bench_cluster
//              measures the gap against LinkModel::message_ps.
//
// Both transports move the SAME encode_frame() bytes and feed the same
// bounds-checked decoders — the ring doesn't get to cheat by passing
// pointers. Failure semantics are explicit results, never exceptions:
// a send to a full/dead peer times out or reports closed, which the
// membership layer converts into a DEAD node and a failed batch instead
// of a hang.
//
// Threading contract: one sender thread and one receiver thread per
// endpoint side at a time (the cluster serializes multi-client sends
// with a per-node mutex above this seam). close() may race anything.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <utility>

#include "src/net/wire.hpp"

namespace dici::net {

enum class TransportKind : std::uint8_t {
  kRing,    ///< in-process SpscRing byte pipes
  kSocket,  ///< UNIX-domain socketpair
};

const char* transport_name(TransportKind kind);
/// Parse "ring" / "socket"; false on anything else.
bool transport_parse(const std::string& text, TransportKind* kind);

struct SendStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;  ///< serialized bytes incl. frame headers
};

/// One side of a frame link.
class Endpoint {
 public:
  enum class SendResult { kOk, kTimeout, kClosed };
  enum class RecvResult { kFrame, kTimeout, kClosed, kError, kCorrupt };

  virtual ~Endpoint() = default;

  /// Serialize and enqueue/write one frame. Stamps the endpoint's
  /// monotonic sequence number into the header (the caller's seq is
  /// overwritten). kTimeout after `timeout` of sustained backpressure;
  /// kClosed once either side closed the link. Never blocks forever.
  virtual SendResult send(const Frame& frame,
                          std::chrono::nanoseconds timeout) = 0;

  /// Receive the next frame. kTimeout after `timeout` with no frame;
  /// kClosed when the peer closed and everything buffered is drained;
  /// kError (with the diagnostic in *error) when the byte stream fails
  /// to decode — a protocol breach, not a transient. kCorrupt when the
  /// frame was intact enough to stay framed (valid header) but its
  /// payload fails the header's checksum: the stream is still usable,
  /// the caller should drop this frame and keep receiving (the sender's
  /// retry layer covers the loss).
  virtual RecvResult recv(Frame* frame, std::chrono::nanoseconds timeout,
                          std::string* error) = 0;

  /// Close this side: unblocks both directions on both ends. Idempotent,
  /// callable from any thread.
  virtual void close() = 0;

  /// Cumulative frames/bytes sent from this side (relaxed reads; exact
  /// once the sender thread is quiescent).
  virtual SendStats send_stats() const = 0;
};

/// A connected pair of endpoints: `first` is the coordinator side,
/// `second` the node side. `ring_frames` bounds the in-flight frame
/// count per direction for kRing (ignored by kSocket, where the kernel
/// socket buffer is the bound).
std::pair<std::unique_ptr<Endpoint>, std::unique_ptr<Endpoint>>
make_transport_pair(TransportKind kind, std::size_t ring_frames = 1024);

}  // namespace dici::net
