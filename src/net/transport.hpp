// The transport seam: how serialized frames physically move between a
// cluster coordinator and a node.
//
// An Endpoint is one side of a bidirectional, ordered, reliable link
// that carries whole wire.hpp Frames. Four implementations, chosen by
// TransportKind:
//
//  * kRing   — an in-process pair of SpscRing<byte-buffer> pipes with
//              the hub's eventcount park/wake protocol. The fast path
//              is lock-free; a blocked side parks on a condvar. This is
//              the "first rung" of ISSUE 8: node objects live in the
//              coordinator's process but their states share NOTHING —
//              only serialized bytes cross the pipe. ~100ns/message.
//  * kSocket — a UNIX-domain socketpair (SOCK_STREAM): the kernel
//              carries the bytes between two in-process ends.
//              1-2µs/message syscall overhead; bench_cluster measures
//              the gap against LinkModel::message_ps.
//  * kFork   — the same socketpair, but the node end is inherited
//              across fork/exec by a spawned dici_node process
//              (src/cluster/process_node.hpp). Identical bytes and
//              syscall cost to kSocket; what changes is that the peer
//              can now REALLY die (SIGKILL closes its fds, the
//              coordinator sees kClosed).
//  * kTcp    — loopback TCP: the coordinator listens on 127.0.0.1:0,
//              spawns the child with `--connect host:port`, and accepts
//              with a deadline (fd_endpoint.hpp's TcpListener). The
//              rung below multi-host: same connector code would reach a
//              remote address.
//
// All four transports move the SAME encode_frame() bytes and feed the same
// bounds-checked decoders — the ring doesn't get to cheat by passing
// pointers. Failure semantics are explicit results, never exceptions:
// a send to a full/dead peer times out or reports closed, which the
// membership layer converts into a DEAD node and a failed batch instead
// of a hang.
//
// Threading contract: one sender thread and one receiver thread per
// endpoint side at a time (the cluster serializes multi-client sends
// with a per-node mutex above this seam). close() may race anything.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <utility>

#include "src/net/wire.hpp"

namespace dici::net {

enum class TransportKind : std::uint8_t {
  kRing,    ///< in-process SpscRing byte pipes
  kSocket,  ///< UNIX-domain socketpair, both ends in-process
  kFork,    ///< socketpair inherited by a fork/exec'd dici_node child
  kTcp,     ///< loopback TCP listener/connector to a dici_node child
};

const char* transport_name(TransportKind kind);
/// Parse "ring" / "socket" / "fork" / "tcp"; false on anything else.
bool transport_parse(const std::string& text, TransportKind* kind);
/// The valid spellings, for diagnostics and CLI help.
inline constexpr const char* kTransportChoices = "ring|socket|fork|tcp";
/// Parse or abort with a field+value diagnostic enumerating the valid
/// set (the DICI_CHECK_FMT house style) — for config/CLI surfaces where
/// an unknown transport is a caller bug, not a recoverable condition.
TransportKind transport_from_flag(const std::string& text, const char* field);

/// Do the two ends of this transport live in different processes (the
/// node end served by a spawned dici_node child)?
constexpr bool transport_is_process(TransportKind kind) {
  return kind == TransportKind::kFork || kind == TransportKind::kTcp;
}

struct SendStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;  ///< serialized bytes incl. frame headers
};

/// One side of a frame link.
class Endpoint {
 public:
  enum class SendResult { kOk, kTimeout, kClosed };
  enum class RecvResult { kFrame, kTimeout, kClosed, kError, kCorrupt };

  virtual ~Endpoint() = default;

  /// Serialize and enqueue/write one frame. Stamps the endpoint's
  /// monotonic sequence number into the header (the caller's seq is
  /// overwritten). kTimeout after `timeout` of sustained backpressure;
  /// kClosed once either side closed the link. Never blocks forever.
  virtual SendResult send(const Frame& frame,
                          std::chrono::nanoseconds timeout) = 0;

  /// Receive the next frame. kTimeout after `timeout` with no frame;
  /// kClosed when the peer closed and everything buffered is drained;
  /// kError (with the diagnostic in *error) when the byte stream fails
  /// to decode — a protocol breach, not a transient. kCorrupt when the
  /// frame was intact enough to stay framed (valid header) but its
  /// payload fails the header's checksum: the stream is still usable,
  /// the caller should drop this frame and keep receiving (the sender's
  /// retry layer covers the loss).
  virtual RecvResult recv(Frame* frame, std::chrono::nanoseconds timeout,
                          std::string* error) = 0;

  /// Close this side: unblocks both directions on both ends. Idempotent,
  /// callable from any thread.
  virtual void close() = 0;

  /// Cumulative frames/bytes sent from this side (relaxed reads; exact
  /// once the sender thread is quiescent).
  virtual SendStats send_stats() const = 0;
};

/// A connected pair of endpoints: `first` is the coordinator side,
/// `second` the node side. `ring_frames` bounds the in-flight frame
/// count per direction for kRing (ignored by the fd transports, where
/// the kernel socket buffer is the bound). For kFork/kTcp this builds
/// the IN-PROCESS analogue of the link (the same fds/sockets, nobody
/// spawned) — the mechanism bench_cluster's ping-pong uses to price a
/// transport without paying process-scheduling noise; the cluster layer
/// does the actual spawning (src/cluster/process_node.hpp).
std::pair<std::unique_ptr<Endpoint>, std::unique_ptr<Endpoint>>
make_transport_pair(TransportKind kind, std::size_t ring_frames = 1024);

}  // namespace dici::net
