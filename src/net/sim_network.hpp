// Virtual-time cluster fabric.
//
// Models a full-duplex switched network (Myrinet in the paper): each node
// has an egress NIC and an ingress NIC, each serializing its messages at
// the one-way bandwidth W2; the fabric core is non-blocking ("aggregate
// network bandwidth is unlimited", paper assumption A.2.3-1). Transfers
// are cut-through: the head of a message arrives `latency` after the
// sender starts pushing bytes, and the tail arrives one transfer-time
// later, subject to receiver-side ingress availability.
//
// Communication/computation overlap (MPI_Isend in the paper) falls out of
// the model: send() only needs the sender's CPU-ready timestamp, and the
// NIC drains the message on its own timeline.
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/link.hpp"
#include "src/util/assert.hpp"
#include "src/util/types.hpp"

namespace dici::net {

using node_id_t = std::uint32_t;

/// Per-node traffic counters.
struct NicStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  picos_t egress_busy = 0;   ///< total wire time on the send side
  picos_t ingress_busy = 0;  ///< total wire time on the receive side
};

class SimNetwork {
 public:
  SimNetwork(std::uint32_t num_nodes, const LinkModel& link)
      : link_(link), egress_free_(num_nodes, 0), ingress_free_(num_nodes, 0),
        stats_(num_nodes) {}

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(egress_free_.size());
  }

  /// Schedule a message of `bytes` from `src` to `dst`, handed to the NIC
  /// at sender time `ready`. Returns the virtual time at which the last
  /// byte is available at the receiver.
  picos_t send(node_id_t src, node_id_t dst, std::uint64_t bytes,
               picos_t ready);

  const NicStats& stats(node_id_t node) const {
    DICI_CHECK(node < stats_.size());
    return stats_[node];
  }

  const LinkModel& link() const { return link_; }

 private:
  LinkModel link_;
  std::vector<picos_t> egress_free_;   // when each egress NIC is next idle
  std::vector<picos_t> ingress_free_;  // when each ingress NIC is next idle
  std::vector<NicStats> stats_;
};

}  // namespace dici::net
