#include "src/net/fault.hpp"

#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/assert.hpp"
#include "src/util/rng.hpp"

namespace dici::net {
namespace {

using Clock = std::chrono::steady_clock;
using namespace std::chrono_literals;

/// Patience for a delayed/duplicated frame's actual send: if the inner
/// link is wedged past this, the frame is simply lost — which is a
/// legal outcome of a faulty link anyway.
constexpr auto kInjectedSendTimeout = 100ms;

}  // namespace

FaultStats FaultController::stats() const {
  FaultStats total;
  for (const DirectionCounters* dir : {&to_node_, &to_coordinator_}) {
    total.forwarded += dir->forwarded.load(std::memory_order_relaxed);
    total.dropped += dir->dropped.load(std::memory_order_relaxed);
    total.delayed += dir->delayed.load(std::memory_order_relaxed);
    total.duplicated += dir->duplicated.load(std::memory_order_relaxed);
    total.corrupted += dir->corrupted.load(std::memory_order_relaxed);
  }
  return total;
}

struct FaultInjectingEndpoint::Impl {
  std::unique_ptr<Endpoint> inner;
  std::shared_ptr<FaultController> controller;
  FaultController::DirectionCounters* counters = nullptr;
  FaultRates rates;

  /// Serializes senders into `inner` (the caller's thread and the delay
  /// thread) and guards the decision stream — one rng, one schedule.
  std::mutex mu;
  Rng rng{0};

  // Delayed-delivery queue, ordered by due time. Only populated when
  // rates.delay > 0 (the thread is started lazily with the endpoint).
  std::mutex delay_mu;
  std::condition_variable delay_cv;
  std::multimap<Clock::time_point, Frame> delayed;
  bool stop = false;
  std::thread delayer;

  void deliver_loop() {
    std::unique_lock lock(delay_mu);
    while (!stop) {
      if (delayed.empty()) {
        delay_cv.wait(lock);
        continue;
      }
      const auto due = delayed.begin()->first;
      if (delay_cv.wait_until(lock, due, [&] { return stop; })) break;
      const auto now = Clock::now();
      while (!stop && !delayed.empty() && delayed.begin()->first <= now) {
        Frame frame = std::move(delayed.begin()->second);
        delayed.erase(delayed.begin());
        lock.unlock();
        {
          std::lock_guard send_lock(mu);
          (void)inner->send(frame, kInjectedSendTimeout);
        }
        lock.lock();
      }
    }
  }

  void enqueue_delayed(Frame frame, Clock::time_point due) {
    {
      std::lock_guard lock(delay_mu);
      delayed.emplace(due, std::move(frame));
    }
    delay_cv.notify_one();
  }
};

FaultInjectingEndpoint::FaultInjectingEndpoint(
    std::unique_ptr<Endpoint> inner,
    std::shared_ptr<FaultController> controller, Direction direction,
    const FaultRates& rates, std::uint64_t seed)
    : impl_(std::make_unique<Impl>()) {
  DICI_CHECK(inner != nullptr && controller != nullptr);
  DICI_CHECK_FMT(rates.delay == 0.0 || rates.delay_ns >= 1,
                 "FaultRates::delay_ns = %llu with a nonzero delay rate: a "
                 "delayed frame needs a positive lateness bound",
                 static_cast<unsigned long long>(rates.delay_ns));
  impl_->inner = std::move(inner);
  impl_->counters = direction == Direction::kToNode
                        ? &controller->to_node_
                        : &controller->to_coordinator_;
  impl_->controller = std::move(controller);
  impl_->rates = rates;
  impl_->rng.reseed(seed);
  if (rates.delay > 0.0)
    impl_->delayer = std::thread([impl = impl_.get()] { impl->deliver_loop(); });
}

FaultInjectingEndpoint::~FaultInjectingEndpoint() {
  if (impl_->delayer.joinable()) {
    {
      std::lock_guard lock(impl_->delay_mu);
      impl_->stop = true;
    }
    impl_->delay_cv.notify_all();
    impl_->delayer.join();
  }
}

Endpoint::SendResult FaultInjectingEndpoint::send(
    const Frame& frame, std::chrono::nanoseconds timeout) {
  Impl& im = *impl_;
  if (im.controller->partitioned()) {
    // The wire is cut: the frame vanishes and the sender is none the
    // wiser — partition is indistinguishable from very aggressive drop.
    im.counters->dropped.fetch_add(1, std::memory_order_relaxed);
    return SendResult::kOk;
  }
  std::lock_guard lock(im.mu);
  if (!im.controller->armed() || !im.rates.any())
    return im.inner->send(frame, timeout);

  // Four independent draws per frame, always in this order, so the
  // decision schedule is a pure function of (seed, frame index) — the
  // rates only decide which decisions fire, never how many bits the
  // stream consumes.
  const double u_drop = im.rng.uniform01();
  const double u_corrupt = im.rng.uniform01();
  const double u_duplicate = im.rng.uniform01();
  const double u_delay = im.rng.uniform01();

  if (u_drop < im.rates.drop) {
    im.counters->dropped.fetch_add(1, std::memory_order_relaxed);
    return SendResult::kOk;
  }
  const bool corrupt =
      u_corrupt < im.rates.corrupt && !frame.payload.empty();
  const bool duplicate = u_duplicate < im.rates.duplicate;
  const bool delay = u_delay < im.rates.delay;

  Frame damaged;
  const Frame* outgoing = &frame;
  if (corrupt) {
    // Flip 1-4 payload bytes AFTER the checksum was sealed; the header
    // stays intact so the receiver's stream stays framed and reports
    // kCorrupt for exactly this frame.
    damaged = frame;
    const std::uint64_t flips = im.rng.between(1, 4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      const std::size_t pos =
          static_cast<std::size_t>(im.rng.below(damaged.payload.size()));
      damaged.payload[pos] ^=
          static_cast<std::uint8_t>(im.rng.between(1, 255));
    }
    outgoing = &damaged;
    im.counters->corrupted.fetch_add(1, std::memory_order_relaxed);
  }
  if (duplicate)
    im.counters->duplicated.fetch_add(1, std::memory_order_relaxed);

  if (delay) {
    const auto lateness =
        std::chrono::nanoseconds(im.rng.between(1, im.rates.delay_ns));
    const auto due = Clock::now() + lateness;
    im.enqueue_delayed(*outgoing, due);
    if (duplicate) im.enqueue_delayed(*outgoing, due + lateness);
    im.counters->delayed.fetch_add(1, std::memory_order_relaxed);
    return SendResult::kOk;
  }

  const SendResult result = im.inner->send(*outgoing, timeout);
  if (duplicate && result == SendResult::kOk)
    (void)im.inner->send(*outgoing, kInjectedSendTimeout);
  if (!corrupt && !duplicate)
    im.counters->forwarded.fetch_add(1, std::memory_order_relaxed);
  return result;
}

Endpoint::RecvResult FaultInjectingEndpoint::recv(
    Frame* frame, std::chrono::nanoseconds timeout, std::string* error) {
  // All injection happens sender-side (decorate both ends of a pair to
  // cover both directions), so receive is a pass-through.
  return impl_->inner->recv(frame, timeout, error);
}

void FaultInjectingEndpoint::close() { impl_->inner->close(); }

SendStats FaultInjectingEndpoint::send_stats() const {
  // Inner stats: what actually crossed the wire (duplicates and late
  // deliveries included, dropped frames not).
  return impl_->inner->send_stats();
}

FaultyPair make_faulty_transport_pair(TransportKind kind,
                                      const FaultConfig& config,
                                      std::size_t ring_frames) {
  auto [coordinator_end, node_end] = make_transport_pair(kind, ring_frames);
  auto controller = std::make_shared<FaultController>();
  if (config.armed) controller->arm();
  std::uint64_t state = config.seed;
  const std::uint64_t to_node_seed = splitmix64(state);
  const std::uint64_t to_coordinator_seed = splitmix64(state);
  FaultyPair pair;
  pair.coordinator = std::make_unique<FaultInjectingEndpoint>(
      std::move(coordinator_end), controller,
      FaultInjectingEndpoint::Direction::kToNode, config.to_node,
      to_node_seed);
  pair.node = std::make_unique<FaultInjectingEndpoint>(
      std::move(node_end), controller,
      FaultInjectingEndpoint::Direction::kToCoordinator,
      config.to_coordinator, to_coordinator_seed);
  pair.controller = std::move(controller);
  return pair;
}

}  // namespace dici::net
