#include "src/net/fault.hpp"

#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/assert.hpp"
#include "src/util/rng.hpp"

namespace dici::net {
namespace {

using Clock = std::chrono::steady_clock;
using namespace std::chrono_literals;

/// Patience for a delayed/duplicated frame's actual send: if the inner
/// link is wedged past this, the frame is simply lost — which is a
/// legal outcome of a faulty link anyway.
constexpr auto kInjectedSendTimeout = 100ms;

/// The diagnostic a kRecvSide corruption carries — same shape as the
/// transports' checksum message, because the frame really would fail
/// frame_checksum_ok after the flips.
std::string recv_corrupt_error(const FrameHeader& header) {
  return std::string("fault: payload checksum mismatch injected on ") +
         msg_type_name(header.msg_type()) + " seq " +
         std::to_string(header.seq) + " from src " +
         std::to_string(header.src) + " — frame dropped";
}

}  // namespace

FaultStats FaultController::stats() const {
  FaultStats total;
  for (const DirectionCounters* dir : {&to_node_, &to_coordinator_}) {
    total.forwarded += dir->forwarded.load(std::memory_order_relaxed);
    total.dropped += dir->dropped.load(std::memory_order_relaxed);
    total.delayed += dir->delayed.load(std::memory_order_relaxed);
    total.duplicated += dir->duplicated.load(std::memory_order_relaxed);
    total.corrupted += dir->corrupted.load(std::memory_order_relaxed);
  }
  return total;
}

struct FaultInjectingEndpoint::Impl {
  std::unique_ptr<Endpoint> inner;
  std::shared_ptr<FaultController> controller;
  FaultController::DirectionCounters* counters = nullptr;
  FaultRates rates;
  Mode mode = Mode::kSendSide;

  /// Serializes senders into `inner` (the caller's thread and the delay
  /// thread) and guards the decision stream — one rng, one schedule.
  std::mutex mu;
  Rng rng{0};

  // Delayed-delivery queue, ordered by due time. Only populated when
  // rates.delay > 0 (the thread is started lazily with the endpoint).
  std::mutex delay_mu;
  std::condition_variable delay_cv;
  std::multimap<Clock::time_point, Frame> delayed;
  bool stop = false;
  std::thread delayer;

  void deliver_loop() {
    std::unique_lock lock(delay_mu);
    while (!stop) {
      if (delayed.empty()) {
        delay_cv.wait(lock);
        continue;
      }
      const auto due = delayed.begin()->first;
      if (delay_cv.wait_until(lock, due, [&] { return stop; })) break;
      const auto now = Clock::now();
      while (!stop && !delayed.empty() && delayed.begin()->first <= now) {
        Frame frame = std::move(delayed.begin()->second);
        delayed.erase(delayed.begin());
        lock.unlock();
        {
          std::lock_guard send_lock(mu);
          (void)inner->send(frame, kInjectedSendTimeout);
        }
        lock.lock();
      }
    }
  }

  void enqueue_delayed(Frame frame, Clock::time_point due) {
    {
      std::lock_guard lock(delay_mu);
      delayed.emplace(due, std::move(frame));
    }
    delay_cv.notify_one();
  }

  // --- kRecvSide intake ----------------------------------------------------
  // The stash of frames held back at intake (delayed) or to be handed
  // out twice (duplicated), ordered by delivery due time. Touched only
  // on the receiver thread (one per endpoint, per the Endpoint
  // contract), so the only lock taken is `mu` for the decision stream.

  struct Held {
    Frame frame;
    bool corrupt = false;  ///< deliver as kCorrupt when due
  };
  std::multimap<Clock::time_point, Held> pending;

  enum class Intake { kDeliver, kSwallowed, kCorrupted };

  /// Apply the four-draw schedule to a frame that just arrived. May
  /// mutate *frame (corruption), stash copies (duplicate/delay), or
  /// swallow it (drop, or delay — it re-emerges from the stash).
  Intake apply_intake(Frame* frame, std::string* error) {
    std::lock_guard lock(mu);
    if (!controller->armed() || !rates.any()) return Intake::kDeliver;
    const double u_drop = rng.uniform01();
    const double u_corrupt = rng.uniform01();
    const double u_duplicate = rng.uniform01();
    const double u_delay = rng.uniform01();
    if (u_drop < rates.drop) {
      counters->dropped.fetch_add(1, std::memory_order_relaxed);
      return Intake::kSwallowed;
    }
    const bool corrupt = u_corrupt < rates.corrupt && !frame->payload.empty();
    const bool duplicate = u_duplicate < rates.duplicate;
    const bool delay = u_delay < rates.delay;
    if (corrupt) {
      const std::uint64_t flips = rng.between(1, 4);
      for (std::uint64_t f = 0; f < flips; ++f) {
        const std::size_t pos =
            static_cast<std::size_t>(rng.below(frame->payload.size()));
        frame->payload[pos] ^= static_cast<std::uint8_t>(rng.between(1, 255));
      }
      counters->corrupted.fetch_add(1, std::memory_order_relaxed);
    }
    if (duplicate) {
      pending.emplace(Clock::now(), Held{*frame, corrupt});
      counters->duplicated.fetch_add(1, std::memory_order_relaxed);
    }
    if (delay) {
      const auto lateness =
          std::chrono::nanoseconds(rng.between(1, rates.delay_ns));
      pending.emplace(Clock::now() + lateness, Held{std::move(*frame), corrupt});
      counters->delayed.fetch_add(1, std::memory_order_relaxed);
      return Intake::kSwallowed;
    }
    if (corrupt) {
      *error = recv_corrupt_error(frame->header);
      return Intake::kCorrupted;
    }
    if (!duplicate)
      counters->forwarded.fetch_add(1, std::memory_order_relaxed);
    return Intake::kDeliver;
  }

  RecvResult recv_injected(Frame* frame, std::chrono::nanoseconds timeout,
                           std::string* error) {
    const auto deadline = Clock::now() + timeout;
    for (;;) {
      const auto now = Clock::now();
      // Stashed frames (duplicates, delayed originals) due by now go
      // out first, in due order.
      if (!pending.empty() && pending.begin()->first <= now) {
        Held held = std::move(pending.begin()->second);
        pending.erase(pending.begin());
        *frame = std::move(held.frame);
        if (held.corrupt) {
          *error = recv_corrupt_error(frame->header);
          return RecvResult::kCorrupt;
        }
        return RecvResult::kFrame;
      }
      if (now >= deadline) return RecvResult::kTimeout;
      // Bound the inner wait by the next stash due time so a delayed
      // frame is never starved behind a quiet wire.
      auto wait_until = deadline;
      if (!pending.empty() && pending.begin()->first < wait_until)
        wait_until = pending.begin()->first;
      const auto r = inner->recv(frame, wait_until - now, error);
      if (r == RecvResult::kTimeout) continue;  // a stash entry may be due
      if (r != RecvResult::kFrame) return r;    // real kClosed/kError/kCorrupt
      if (controller->partitioned()) {
        // The wire is cut: the arrival vanishes, exactly as a sender-
        // side partition would have eaten it before the syscall.
        counters->dropped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      switch (apply_intake(frame, error)) {
        case Intake::kDeliver:
          return RecvResult::kFrame;
        case Intake::kCorrupted:
          return RecvResult::kCorrupt;
        case Intake::kSwallowed:
          break;  // keep receiving within the deadline
      }
    }
  }
};

FaultInjectingEndpoint::FaultInjectingEndpoint(
    std::unique_ptr<Endpoint> inner,
    std::shared_ptr<FaultController> controller, Direction direction,
    const FaultRates& rates, std::uint64_t seed, Mode mode)
    : impl_(std::make_unique<Impl>()) {
  DICI_CHECK(inner != nullptr && controller != nullptr);
  DICI_CHECK_FMT(rates.delay == 0.0 || rates.delay_ns >= 1,
                 "FaultRates::delay_ns = %llu with a nonzero delay rate: a "
                 "delayed frame needs a positive lateness bound",
                 static_cast<unsigned long long>(rates.delay_ns));
  impl_->inner = std::move(inner);
  impl_->counters = direction == Direction::kToNode
                        ? &controller->to_node_
                        : &controller->to_coordinator_;
  impl_->controller = std::move(controller);
  impl_->rates = rates;
  impl_->mode = mode;
  impl_->rng.reseed(seed);
  // kRecvSide delays re-emerge from the intake stash on the receiver's
  // own thread — only the send side needs the delivery thread.
  if (rates.delay > 0.0 && mode == Mode::kSendSide)
    impl_->delayer = std::thread([impl = impl_.get()] { impl->deliver_loop(); });
}

FaultInjectingEndpoint::~FaultInjectingEndpoint() {
  if (impl_->delayer.joinable()) {
    {
      std::lock_guard lock(impl_->delay_mu);
      impl_->stop = true;
    }
    impl_->delay_cv.notify_all();
    impl_->delayer.join();
  }
}

Endpoint::SendResult FaultInjectingEndpoint::send(
    const Frame& frame, std::chrono::nanoseconds timeout) {
  Impl& im = *impl_;
  if (im.mode == Mode::kRecvSide) {
    // Intake-side injectors perturb arrivals only; the matching outer
    // kSendSide decorator (or nothing) owns the outgoing direction.
    return im.inner->send(frame, timeout);
  }
  if (im.controller->partitioned()) {
    // The wire is cut: the frame vanishes and the sender is none the
    // wiser — partition is indistinguishable from very aggressive drop.
    im.counters->dropped.fetch_add(1, std::memory_order_relaxed);
    return SendResult::kOk;
  }
  std::lock_guard lock(im.mu);
  if (!im.controller->armed() || !im.rates.any())
    return im.inner->send(frame, timeout);

  // Four independent draws per frame, always in this order, so the
  // decision schedule is a pure function of (seed, frame index) — the
  // rates only decide which decisions fire, never how many bits the
  // stream consumes.
  const double u_drop = im.rng.uniform01();
  const double u_corrupt = im.rng.uniform01();
  const double u_duplicate = im.rng.uniform01();
  const double u_delay = im.rng.uniform01();

  if (u_drop < im.rates.drop) {
    im.counters->dropped.fetch_add(1, std::memory_order_relaxed);
    return SendResult::kOk;
  }
  const bool corrupt =
      u_corrupt < im.rates.corrupt && !frame.payload.empty();
  const bool duplicate = u_duplicate < im.rates.duplicate;
  const bool delay = u_delay < im.rates.delay;

  Frame damaged;
  const Frame* outgoing = &frame;
  if (corrupt) {
    // Flip 1-4 payload bytes AFTER the checksum was sealed; the header
    // stays intact so the receiver's stream stays framed and reports
    // kCorrupt for exactly this frame.
    damaged = frame;
    const std::uint64_t flips = im.rng.between(1, 4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      const std::size_t pos =
          static_cast<std::size_t>(im.rng.below(damaged.payload.size()));
      damaged.payload[pos] ^=
          static_cast<std::uint8_t>(im.rng.between(1, 255));
    }
    outgoing = &damaged;
    im.counters->corrupted.fetch_add(1, std::memory_order_relaxed);
  }
  if (duplicate)
    im.counters->duplicated.fetch_add(1, std::memory_order_relaxed);

  if (delay) {
    const auto lateness =
        std::chrono::nanoseconds(im.rng.between(1, im.rates.delay_ns));
    const auto due = Clock::now() + lateness;
    im.enqueue_delayed(*outgoing, due);
    if (duplicate) im.enqueue_delayed(*outgoing, due + lateness);
    im.counters->delayed.fetch_add(1, std::memory_order_relaxed);
    return SendResult::kOk;
  }

  const SendResult result = im.inner->send(*outgoing, timeout);
  if (duplicate && result == SendResult::kOk)
    (void)im.inner->send(*outgoing, kInjectedSendTimeout);
  if (!corrupt && !duplicate)
    im.counters->forwarded.fetch_add(1, std::memory_order_relaxed);
  return result;
}

Endpoint::RecvResult FaultInjectingEndpoint::recv(
    Frame* frame, std::chrono::nanoseconds timeout, std::string* error) {
  // kSendSide injects on the way out (decorate both ends of a pair to
  // cover both directions), so its receive is a pass-through. kRecvSide
  // plays the far direction of a process link at intake.
  if (impl_->mode == Mode::kSendSide)
    return impl_->inner->recv(frame, timeout, error);
  return impl_->recv_injected(frame, timeout, error);
}

void FaultInjectingEndpoint::close() { impl_->inner->close(); }

SendStats FaultInjectingEndpoint::send_stats() const {
  // Inner stats: what actually crossed the wire (duplicates and late
  // deliveries included, dropped frames not).
  return impl_->inner->send_stats();
}

FaultyPair make_faulty_transport_pair(TransportKind kind,
                                      const FaultConfig& config,
                                      std::size_t ring_frames) {
  auto [coordinator_end, node_end] = make_transport_pair(kind, ring_frames);
  auto controller = std::make_shared<FaultController>();
  if (config.armed) controller->arm();
  std::uint64_t state = config.seed;
  const std::uint64_t to_node_seed = splitmix64(state);
  const std::uint64_t to_coordinator_seed = splitmix64(state);
  FaultyPair pair;
  pair.coordinator = std::make_unique<FaultInjectingEndpoint>(
      std::move(coordinator_end), controller,
      FaultInjectingEndpoint::Direction::kToNode, config.to_node,
      to_node_seed);
  pair.node = std::make_unique<FaultInjectingEndpoint>(
      std::move(node_end), controller,
      FaultInjectingEndpoint::Direction::kToCoordinator,
      config.to_coordinator, to_coordinator_seed);
  pair.controller = std::move(controller);
  return pair;
}

}  // namespace dici::net
