// The cluster wire format: versioned, length-prefixed, bounds-checked.
//
// Everything two cluster nodes say to each other travels as one Frame —
// a fixed 32-byte header followed by `payload_bytes` of message payload,
// byte-serialized explicitly (little-endian, no struct memcpy) so the
// format is stable across compilers and, later, across machines. This
// is the point where net/link.hpp's LinkModel stops being a model:
// every byte counted here actually crosses a transport
// (net/transport.hpp), whether that transport is an in-process ring
// pair or a UNIX-domain socket.
//
// Decode discipline: a frame arrives from outside the receiver's trust
// domain, so every decoder is TOTAL — truncated payloads, oversized
// counts, garbage magic, and future versions are all rejected with a
// diagnostic string, never an out-of-bounds read or an abort
// (net_wire_test pins each rejection). Encoders are in-process and
// DICI_CHECK their own invariants instead.
//
// v2 (the fault-tolerance PR) adds two header fields:
//   checksum — FNV-1a over the payload, sealed by make_frame at encode
//              time and verified by every transport recv. A frame whose
//              bytes were damaged in flight keeps a VALID header (the
//              stream stays framed) but fails the checksum, so the
//              receiver can drop exactly that frame and keep serving —
//              the retry layer re-sends it. Header fields themselves
//              (seq, epoch) are stamped after sealing and are
//              deliberately outside the sum.
//   epoch    — the link's incarnation number. The coordinator bumps it
//              when a DEAD node re-joins on a fresh link and stamps it
//              into everything it sends; a node echoes the newest epoch
//              it has seen, so a reply from a pre-death incarnation can
//              never be mistaken for current traffic.
//
// Message vocabulary (the pocv2/Pilevisor cluster-port pattern):
//   control  — kJoinRequest/kJoinAck (the join handshake),
//              kNodeConfig (the coordinator's bootstrap config: a
//              freshly exec'd dici_node process learns its kernel,
//              interleave width, heartbeat cadence, and cluster size
//              from this frame rather than from argv or a shared
//              struct — in-process nodes get the identical frame so
//              both modes run one bootstrap path),
//              kClusterInfo (the broadcast node table),
//              kHeartbeat, kShutdown
//   build    — kBuildShard (a shard replica's keys scattered to its
//              node, chunked + last-flagged), kBuildAck
//   serve    — kQueryBatch (one dispatched message: submission id,
//              shard, keys + query ids), kRankBatch (the reply: ids +
//              global ranks + the node's busy time)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/util/types.hpp"

namespace dici::net {

inline constexpr std::uint32_t kWireMagic = 0x44494349;  // "DICI"
inline constexpr std::uint16_t kWireVersion = 2;

/// Hard cap a decoder accepts for one frame's payload. Large enough for
/// any build chunk or dispatch batch this system sends (encoders chunk
/// below it), small enough that a garbage length field can never make a
/// receiver allocate gigabytes.
inline constexpr std::uint32_t kMaxFramePayloadBytes = 16u << 20;

/// The sender id carried in FrameHeader::src for the coordinator (the
/// master process); serving nodes use their 0-based node id.
inline constexpr std::uint32_t kCoordinatorId = 0xffffffffu;

/// QueryBatchMsg::shard value meaning "resolve on your full replica"
/// (Placement::kReplicate ships whole-array copies, so a node answers
/// any query with a global upper_bound at offset 0).
inline constexpr std::uint32_t kGlobalShard = 0xffffffffu;

enum class MsgType : std::uint16_t {
  kJoinRequest = 1,
  kJoinAck = 2,
  kClusterInfo = 3,
  kHeartbeat = 4,
  kBuildShard = 5,
  kBuildAck = 6,
  kQueryBatch = 7,
  kRankBatch = 8,
  kShutdown = 9,
  kNodeConfig = 10,
};

const char* msg_type_name(MsgType type);

/// The fixed preamble of every frame. `payload_bytes` is the length
/// prefix a receiver trusts only after bounds-checking; `seq` is the
/// sender's monotonic frame counter (assigned by Endpoint::send), for
/// ordering diagnostics in error messages; `epoch` is the link
/// incarnation (see the header comment); `checksum` seals the payload.
struct FrameHeader {
  std::uint32_t magic = kWireMagic;
  std::uint16_t version = kWireVersion;
  std::uint16_t type = 0;
  std::uint32_t src = kCoordinatorId;
  std::uint32_t payload_bytes = 0;
  std::uint64_t seq = 0;
  std::uint32_t epoch = 0;
  std::uint32_t checksum = 0;

  MsgType msg_type() const { return static_cast<MsgType>(type); }
};

inline constexpr std::size_t kFrameHeaderBytes = 32;

/// FNV-1a over a payload — the integrity seal carried in
/// FrameHeader::checksum. Not cryptographic: the threat model is flipped
/// bits on a link (or the fault injector imitating them), not an
/// adversary forging frames.
std::uint32_t wire_checksum(std::span<const std::uint8_t> payload);

/// One decoded (or to-be-encoded) message: header + raw payload bytes.
struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

// --- Header codec (the length prefix every transport reads first) ---------

/// Serialize `header` into exactly kFrameHeaderBytes at `out`.
void encode_frame_header(const FrameHeader& header, std::uint8_t* out);

/// Total decode of a header: false (with a diagnostic in *error) on
/// short input, wrong magic, version mismatch, unknown message type, or
/// a payload length past kMaxFramePayloadBytes.
bool decode_frame_header(std::span<const std::uint8_t> bytes,
                         FrameHeader* header, std::string* error);

/// Serialize header + payload into one contiguous buffer (what a socket
/// transport writes, and what a ring transport's slots carry — both
/// links move the same bytes).
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Total decode of a whole buffered frame (header checks above, plus
/// "buffer holds exactly header + payload_bytes"). Framing only — the
/// checksum is verified separately (frame_checksum_ok) so a transport
/// can distinguish "stream poisoned" (kError) from "this one frame was
/// damaged, drop it and keep reading" (kCorrupt).
bool decode_frame(std::span<const std::uint8_t> bytes, Frame* frame,
                  std::string* error);

/// Does the frame's payload match the checksum its header carries?
bool frame_checksum_ok(const Frame& frame);

// --- Control messages -----------------------------------------------------

struct JoinRequestMsg {
  std::uint32_t node_id = 0;
};

struct JoinAckMsg {
  std::uint32_t node_id = 0;
  std::uint32_t num_nodes = 0;  ///< cluster size the node is joining
};

/// One row of the broadcast cluster-info table. Status values are
/// cluster::NodeStatus, carried as a byte (membership.hpp owns the
/// enum; the wire only promises a byte it range-checks on decode).
struct ClusterInfoEntry {
  std::uint32_t node_id = 0;
  std::uint8_t status = 0;
  std::uint32_t shards = 0;  ///< shard replicas assigned to the node
};

struct ClusterInfoMsg {
  std::vector<ClusterInfoEntry> nodes;
};

struct HeartbeatMsg {
  std::uint64_t send_ns = 0;  ///< sender steady-clock, diagnostics only
};

/// The coordinator's bootstrap configuration, sent right after kJoinAck
/// (join and re-join alike). `kernel` is core::SearchKernel carried as a
/// byte — like ClusterInfoEntry::status the wire promises only a byte;
/// the node validates it against the kernel menu before building.
struct NodeConfigMsg {
  std::uint8_t kernel = 0;
  std::uint32_t interleave_width = 0;
  std::uint32_t heartbeat_interval_ms = 0;
  std::uint32_t num_nodes = 0;
};

// --- Build messages (the shard scatter) -----------------------------------

struct BuildShardMsg {
  std::uint32_t shard = 0;
  rank_t global_offset = 0;  ///< rank of the shard's first key
  std::uint32_t chunk = 0;   ///< 0-based chunk index within the shard —
                             ///< lets a node drop duplicated chunks and
                             ///< detect gaps during a faulty re-scatter
  bool last = false;         ///< final build frame for this node
  std::vector<key_t> keys;
};

struct BuildAckMsg {
  std::uint32_t shards_received = 0;
  std::uint64_t replica_keys = 0;  ///< total keys the node now holds
};

// --- Serving messages (the scatter-gather hot path) -----------------------

struct QueryBatchMsg {
  std::uint64_t submission = 0;  ///< coordinator's submission id
  std::uint32_t shard = 0;       ///< kGlobalShard = full-replica resolve
  std::uint32_t chunk = 0;       ///< chunk index within the submission —
                                 ///< echoed in the reply so the retry
                                 ///< layer can claim each chunk exactly
                                 ///< once however many copies answer
  std::vector<key_t> keys;
  std::vector<std::uint32_t> ids;  ///< query indexes within the submission
};

struct RankBatchMsg {
  std::uint64_t submission = 0;
  std::uint32_t shard = 0;
  std::uint32_t chunk = 0;    ///< echo of QueryBatchMsg::chunk
  std::uint64_t busy_ns = 0;  ///< node-side resolve time for this batch
  std::vector<std::uint32_t> ids;
  std::vector<rank_t> ranks;  ///< global ranks (shard offset applied)
};

// Encoders fill a Frame with the right type and payload, and seal the
// payload checksum; `src` is the sender id stamped into the header. seq
// is left 0 (Endpoint::send assigns it) and epoch is left 0 (the
// membership layer stamps the link incarnation) — both are outside the
// checksum, so stamping them does not break the seal.
Frame encode_join_request(std::uint32_t src, const JoinRequestMsg& msg);
Frame encode_join_ack(std::uint32_t src, const JoinAckMsg& msg);
Frame encode_cluster_info(std::uint32_t src, const ClusterInfoMsg& msg);
Frame encode_heartbeat(std::uint32_t src, const HeartbeatMsg& msg);
Frame encode_node_config(std::uint32_t src, const NodeConfigMsg& msg);
Frame encode_build_shard(std::uint32_t src, const BuildShardMsg& msg);
Frame encode_build_ack(std::uint32_t src, const BuildAckMsg& msg);
Frame encode_query_batch(std::uint32_t src, const QueryBatchMsg& msg);
Frame encode_rank_batch(std::uint32_t src, const RankBatchMsg& msg);
Frame encode_shutdown(std::uint32_t src);

// Total decoders: type check, then bounds-checked payload parse. false
// fills *error with a message naming what was malformed.
bool decode_join_request(const Frame& frame, JoinRequestMsg* msg,
                         std::string* error);
bool decode_join_ack(const Frame& frame, JoinAckMsg* msg, std::string* error);
bool decode_cluster_info(const Frame& frame, ClusterInfoMsg* msg,
                         std::string* error);
bool decode_heartbeat(const Frame& frame, HeartbeatMsg* msg,
                      std::string* error);
bool decode_node_config(const Frame& frame, NodeConfigMsg* msg,
                        std::string* error);
bool decode_build_shard(const Frame& frame, BuildShardMsg* msg,
                        std::string* error);
bool decode_build_ack(const Frame& frame, BuildAckMsg* msg,
                      std::string* error);
bool decode_query_batch(const Frame& frame, QueryBatchMsg* msg,
                        std::string* error);
bool decode_rank_batch(const Frame& frame, RankBatchMsg* msg,
                       std::string* error);

}  // namespace dici::net
