// Bounded lock-free SPSC ring + the per-worker hub that replaces the
// mutex BlockingQueue on ParallelNativeEngine's submit path.
//
// The v2 API's steady state is many clients firing small batches at one
// pinned worker fleet. With the mutex queue every work item costs a
// lock/unlock on the client thread and a lock/unlock + condvar wake on
// the worker — per ITEM, in the regime where items are deliberately
// small. The classic fix is the NIC design: one single-producer/
// single-consumer ring per (client, worker) pair, so the hot path is
// two relaxed/acquire-release index updates and zero syscalls.
//
//  * SpscRing<T>    — the primitive: Lamport ring with cached indices
//                     (producer and consumer each mirror the other's
//                     position locally, so steady-state push/pop touch
//                     one shared cache line, not two).
//  * SpscRingHub<T> — one consumer (a worker) over many rings (its
//                     clients). Producers stay lock-free; the condvar
//                     appears ONLY on the blocking edges — a worker with
//                     nothing to do parks, a closing hub drains — via a
//                     two-phase announce-then-rescan sleep so no wakeup
//                     is ever lost.
//
// BlockingQueue survives for NativeCluster's one-shot runs, where a
// whole run's items flow through the queue once and dispatch overhead
// is noise; the hub is for the persistent fleet.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/assert.hpp"

namespace dici::net {

/// Bounded single-producer/single-consumer ring. Exactly one thread may
/// call try_push and exactly one may call try_pop (they may be the same
/// thread). T must be default-constructible and move-assignable; popped
/// slots are reset to T{} so the ring never retains references.
template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two, minimum 2.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer: false when full (the consumer has fallen behind by a
  /// whole ring); the item is untouched and may be retried.
  bool try_push(T& item) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - cached_head_ == capacity()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (t - cached_head_ == capacity()) return false;
    }
    slots_[t & mask_] = std::move(item);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: false when empty.
  bool try_pop(T& out) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (h == cached_tail_) return false;
    }
    out = std::move(slots_[h & mask_]);
    slots_[h & mask_] = T{};  // drop any owned references promptly
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Racy snapshot; exact only from the consumer side.
  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Producer and consumer indices on their own cache lines, with each
  // side's cached mirror of the other so the fast path reads one line.
  alignas(64) std::atomic<std::size_t> head_{0};   // next pop
  alignas(64) std::atomic<std::size_t> tail_{0};   // next push
  alignas(64) std::size_t cached_head_ = 0;        // producer-local
  alignas(64) std::size_t cached_tail_ = 0;        // consumer-local
};

/// One consumer over many SPSC channels. Producers open a Channel each
/// and push lock-free; the consumer round-robins the channels and only
/// touches the mutex/condvar when every channel is empty (park) or the
/// hub is closing (drain). Channel registration and teardown are the
/// rare path and take the mutex.
template <typename T>
class SpscRingHub {
 public:
  class Channel {
   public:
    Channel(SpscRingHub* hub, std::size_t capacity)
        : ring_(capacity), hub_(hub) {}

    /// Producer: push one item, spinning (with yields) while the ring
    /// is full — a full ring is never empty, so the consumer either is
    /// awake and draining or has announced a park that after_push()'s
    /// fence+flag check (no mutex unless it really parked) will cancel.
    void push(T item) {
      while (!ring_.try_push(item)) {
        hub_->after_push();
        std::this_thread::yield();
      }
      hub_->after_push();
    }

    /// Producer: no more pushes ever; the consumer prunes the channel
    /// once it has drained. Idempotent.
    void close() {
      closed_.store(true, std::memory_order_release);
      hub_->channel_event();
    }

   private:
    friend class SpscRingHub;
    SpscRing<T> ring_;
    SpscRingHub* hub_;
    std::atomic<bool> closed_{false};
  };

  /// Register a new producer channel (any thread).
  std::shared_ptr<Channel> open(std::size_t capacity) {
    auto channel = std::make_shared<Channel>(this, capacity);
    {
      std::lock_guard lock(mu_);
      channels_.push_back(channel);
    }
    channel_event();
    return channel;
  }

  /// Consumer: pop the next item from any channel (round-robin across
  /// channels, FIFO within one). Blocks while everything is empty;
  /// returns false only after close() once every channel is drained.
  bool pop(T& out) {
    for (;;) {
      if (version_.load(std::memory_order_acquire) != snapshot_version_)
        refresh_snapshot();
      if (scan(out)) return true;
      // Two-phase sleep: announce, then rescan. Pairs with the seq_cst
      // fence in after_push() — whichever fence lands second sees the
      // other side's write, so either the producer sees waiting_ and
      // wakes us, or our rescan sees the pushed item.
      waiting_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (version_.load(std::memory_order_acquire) != snapshot_version_) {
        waiting_.store(false, std::memory_order_relaxed);
        continue;
      }
      if (scan(out)) {
        waiting_.store(false, std::memory_order_relaxed);
        return true;
      }
      std::unique_lock lock(mu_);
      if (closed_) {
        waiting_.store(false, std::memory_order_relaxed);
        lock.unlock();
        refresh_snapshot();
        return scan(out);  // final drain; false ends the consumer
      }
      cv_.wait(lock, [&] { return wake_pending_ || closed_; });
      wake_pending_ = false;
      lock.unlock();
      waiting_.store(false, std::memory_order_relaxed);
    }
  }

  /// Shut the hub down: pop() drains what remains, then returns false.
  /// Call only once producers have stopped pushing.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  void after_push() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiting_.load(std::memory_order_relaxed)) wake_consumer();
  }

  void wake_consumer() {
    {
      std::lock_guard lock(mu_);
      wake_pending_ = true;
    }
    cv_.notify_one();
  }

  /// A channel opened or closed: invalidate the consumer's snapshot and
  /// wake it so closed channels are pruned promptly.
  void channel_event() {
    version_.fetch_add(1, std::memory_order_release);
    wake_consumer();
  }

  // --- Consumer-only state and helpers ------------------------------------

  bool scan(T& out) {
    const std::size_t count = snapshot_.size();
    for (std::size_t step = 0; step < count; ++step) {
      cursor_ = cursor_ + 1 < count ? cursor_ + 1 : 0;
      if (snapshot_[cursor_]->ring_.try_pop(out)) return true;
    }
    return false;
  }

  void refresh_snapshot() {
    std::lock_guard lock(mu_);
    snapshot_version_ = version_.load(std::memory_order_acquire);
    // Prune channels whose producer is done and whose ring is drained;
    // the ring emptiness check is exact here (we are the consumer).
    std::erase_if(channels_, [](const std::shared_ptr<Channel>& ch) {
      return ch->closed_.load(std::memory_order_acquire) && ch->ring_.empty();
    });
    snapshot_ = channels_;
    cursor_ = 0;
  }

  std::mutex mu_;
  std::condition_variable cv_;
  bool wake_pending_ = false;
  bool closed_ = false;
  std::vector<std::shared_ptr<Channel>> channels_;  // guarded by mu_
  std::atomic<std::uint64_t> version_{0};
  std::atomic<bool> waiting_{false};

  std::vector<std::shared_ptr<Channel>> snapshot_;  // consumer-only
  std::uint64_t snapshot_version_ = ~0ull;          // force first refresh
  std::size_t cursor_ = 0;
};

}  // namespace dici::net
