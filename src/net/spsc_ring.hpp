// Bounded lock-free SPSC ring + the per-worker hub that replaces the
// mutex BlockingQueue on ParallelNativeEngine's submit path.
//
// The v2 API's steady state is many clients firing small batches at one
// pinned worker fleet. With the mutex queue every work item costs a
// lock/unlock on the client thread and a lock/unlock + condvar wake on
// the worker — per ITEM, in the regime where items are deliberately
// small. The classic fix is the NIC design: one single-producer/
// single-consumer ring per (client, worker) pair, so the hot path is
// two relaxed/acquire-release index updates and zero syscalls.
//
//  * SpscRing<T>    — the primitive: Lamport ring with cached indices
//                     (producer and consumer each mirror the other's
//                     position locally, so steady-state push/pop touch
//                     one shared cache line, not two).
//  * SpscRingHub<T> — one OWNING consumer (a worker) over many rings
//                     (its clients), plus a cold-path THIEF entry
//                     (try_steal) other workers use to take whole items
//                     when their own hubs run dry. Producers stay
//                     lock-free; the condvar appears ONLY on the
//                     blocking edges — a worker with nothing to do
//                     parks, a closing hub drains.
//
// Park/wake correctness: the hub uses an EVENTCOUNT — producers bump a
// generation counter (under the park mutex) whenever they wake, and a
// parking consumer captures the generation BEFORE its final empty
// re-scan, then sleeps on "generation changed". A wake that lands
// anywhere between the capture and the wait flips the generation, so
// the wait predicate is already true and the sleep is skipped. The
// previous protocol parked on a single wake_pending flag armed only
// while `waiting_` was visibly set; a producer whose fence-and-flag
// check raced the consumer between its final empty re-scan and the
// wait could conclude "not waiting" while the consumer concluded
// "nothing pushed" — each side passing its check before the other's
// write landed — and the push then sat in the ring until the next
// unrelated wake. The generation ticket closes that window by
// construction (net_spsc_ring_test races both protocols' shapes).
//
// Stealing and the single-consumer contract: a ring still has exactly
// one consumer AT A TIME. All consumer-side state (ring read cursors,
// the channel snapshot) is guarded by a spinlock the owner takes
// uncontended on its fast path and a thief only try-acquires — a busy
// owner means there is nothing worth stealing anyway. Thieves never
// park and never consume wakes.
//
// BlockingQueue survives for NativeCluster's one-shot runs, where a
// whole run's items flow through the queue once and dispatch overhead
// is noise; the hub is for the persistent fleet.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/assert.hpp"

namespace dici::net {

/// Bounded single-producer/single-consumer ring. Exactly one thread may
/// call try_push and — at any moment — exactly one may call try_pop
/// (the hub serializes owner and thief). T must be
/// default-constructible and move-assignable; popped slots are reset to
/// T{} so the ring never retains references.
template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two, minimum 2.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer: false when full (the consumer has fallen behind by a
  /// whole ring); the item is untouched and may be retried.
  bool try_push(T& item) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - cached_head_ == capacity()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (t - cached_head_ == capacity()) return false;
    }
    slots_[t & mask_] = std::move(item);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: false when empty.
  bool try_pop(T& out) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (h == cached_tail_) return false;
    }
    out = std::move(slots_[h & mask_]);
    slots_[h & mask_] = T{};  // drop any owned references promptly
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Racy snapshot; exact only from the consumer side.
  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Producer and consumer indices on their own cache lines, with each
  // side's cached mirror of the other so the fast path reads one line.
  alignas(64) std::atomic<std::size_t> head_{0};   // next pop
  alignas(64) std::atomic<std::size_t> tail_{0};   // next push
  alignas(64) std::size_t cached_head_ = 0;        // producer-local
  alignas(64) std::size_t cached_tail_ = 0;        // consumer-local
};

/// One owning consumer (plus opportunistic thieves) over many SPSC
/// channels. Producers open a Channel each and push lock-free; the
/// owner round-robins the channels and parks on the eventcount only
/// when everything is empty. Channel registration and teardown are the
/// rare path and take the mutex.
template <typename T>
class SpscRingHub {
 public:
  class Channel {
   public:
    Channel(SpscRingHub* hub, std::size_t capacity)
        : ring_(capacity), hub_(hub) {}

    /// Producer: push one item, spinning (with yields) while the ring
    /// is full — a full ring is never empty, so the consumer either is
    /// awake and draining or is about to re-scan before parking.
    void push(T item) {
      while (!ring_.try_push(item)) {
        hub_->after_push();
        std::this_thread::yield();
      }
      hub_->pending_.fetch_add(1, std::memory_order_relaxed);
      hub_->after_push();
    }

    /// Producer: no more pushes ever; the consumer prunes the channel
    /// once it has drained. Idempotent.
    void close() {
      closed_.store(true, std::memory_order_release);
      hub_->channel_event();
    }

   private:
    friend class SpscRingHub;
    SpscRing<T> ring_;
    SpscRingHub* hub_;
    std::atomic<bool> closed_{false};
  };

  /// Block (timeout) outcomes of wait_pop.
  enum class PopResult { kItem, kTimeout, kClosed };

  /// wait_pop's "no timeout" sentinel.
  static constexpr std::chrono::nanoseconds kWaitForever{-1};

  /// Register a new producer channel (any thread).
  std::shared_ptr<Channel> open(std::size_t capacity) {
    auto channel = std::make_shared<Channel>(this, capacity);
    {
      std::lock_guard lock(mu_);
      channels_.push_back(channel);
    }
    channel_event();
    return channel;
  }

  /// Owner: pop the next item from any channel (round-robin across
  /// channels, FIFO within one) without blocking.
  bool try_pop(T& out) {
    lock_consumer();
    const bool got = locked_scan(out);
    unlock_consumer();
    return got;
  }

  /// Thief (any non-owner thread): try to take one item. Gives up
  /// immediately when the consumer side is busy — a draining owner
  /// means there is nothing worth stealing. Never blocks, never parks.
  bool try_steal(T& out) {
    if (consumer_lock_.exchange(true, std::memory_order_acquire))
      return false;
    const bool got = locked_scan(out);
    unlock_consumer();
    return got;
  }

  /// Owner: pop, parking on the eventcount while every channel is
  /// empty. kTimeout is only possible with a non-negative timeout;
  /// kClosed means close() was called and everything is drained.
  PopResult wait_pop(T& out,
                     std::chrono::nanoseconds timeout = kWaitForever) {
    for (;;) {
      if (try_pop(out)) return PopResult::kItem;
      // Eventcount protocol: capture the generation ticket, announce,
      // then make the FINAL empty re-scan. Any producer wake after the
      // capture bumps the generation, so the wait predicate below is
      // already satisfied and we never sleep across a push — whichever
      // side's seq_cst fence lands second sees the other's write, and
      // the ticket covers the remaining announce-to-wait window.
      const std::uint64_t ticket = epoch_.load(std::memory_order_acquire);
      waiting_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (try_pop(out)) {
        waiting_.store(false, std::memory_order_relaxed);
        return PopResult::kItem;
      }
      std::unique_lock lock(mu_);
      if (closed_) {
        waiting_.store(false, std::memory_order_relaxed);
        lock.unlock();
        // Final drain: anything still buffered comes out, then the hub
        // stays ended.
        return try_pop(out) ? PopResult::kItem : PopResult::kClosed;
      }
      const auto pred = [&] {
        return epoch_.load(std::memory_order_relaxed) != ticket || closed_;
      };
      bool woke = true;
      if (timeout < std::chrono::nanoseconds::zero()) {
        cv_.wait(lock, pred);
      } else {
        woke = cv_.wait_for(lock, timeout, pred);
      }
      lock.unlock();
      waiting_.store(false, std::memory_order_relaxed);
      if (!woke) return PopResult::kTimeout;
    }
  }

  /// Owner: blocking pop. Returns false only after close() once every
  /// channel is drained.
  bool pop(T& out) { return wait_pop(out) == PopResult::kItem; }

  /// Approximate items buffered across all channels (pushed, not yet
  /// popped or stolen). Relaxed counter — a pop can even be counted
  /// before its push lands, so the value is clamped at 0; momentary
  /// staleness is fine for its consumers (steal-imbalance checks,
  /// stats).
  std::size_t pending() const {
    const std::ptrdiff_t n = pending_.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<std::size_t>(n) : 0;
  }

  /// Shut the hub down: pop()/wait_pop() drain what remains, then
  /// return ended. Call only once producers have stopped pushing.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
      epoch_.fetch_add(1, std::memory_order_relaxed);
    }
    cv_.notify_all();
  }

 private:
  void after_push() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiting_.load(std::memory_order_relaxed)) wake_consumer();
  }

  void wake_consumer() {
    // The generation bump happens under the park mutex, so a parking
    // consumer either sees the new generation in its predicate or is
    // not yet inside wait() — either way the wake cannot be lost.
    {
      std::lock_guard lock(mu_);
      epoch_.fetch_add(1, std::memory_order_relaxed);
    }
    cv_.notify_one();
  }

  /// A channel opened or closed: invalidate the consumer's snapshot and
  /// wake it so closed channels are pruned promptly.
  void channel_event() {
    version_.fetch_add(1, std::memory_order_release);
    wake_consumer();
  }

  // --- Consumer-side state and helpers (owner or one thief at a time,
  // --- serialized by consumer_lock_) --------------------------------------

  void lock_consumer() {
    // Uncontended on the owner's fast path; a thief holds it only for
    // one scan, so spinning with yields is cheaper than a futex.
    while (consumer_lock_.exchange(true, std::memory_order_acquire))
      std::this_thread::yield();
  }

  void unlock_consumer() {
    consumer_lock_.store(false, std::memory_order_release);
  }

  bool locked_scan(T& out) {
    if (version_.load(std::memory_order_acquire) != snapshot_version_)
      refresh_snapshot();
    const std::size_t count = snapshot_.size();
    for (std::size_t step = 0; step < count; ++step) {
      cursor_ = cursor_ + 1 < count ? cursor_ + 1 : 0;
      if (snapshot_[cursor_]->ring_.try_pop(out)) {
        pending_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  void refresh_snapshot() {
    std::lock_guard lock(mu_);
    snapshot_version_ = version_.load(std::memory_order_acquire);
    // Prune channels whose producer is done and whose ring is drained;
    // the ring emptiness check is exact here (we hold the consumer
    // lock). snapshot_ keeps a shared_ptr to every channel it scans, so
    // a producer destroying its handle mid-scan never frees a ring
    // under us.
    std::erase_if(channels_, [](const std::shared_ptr<Channel>& ch) {
      return ch->closed_.load(std::memory_order_acquire) && ch->ring_.empty();
    });
    snapshot_ = channels_;
    cursor_ = 0;
  }

  std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  std::vector<std::shared_ptr<Channel>> channels_;  // guarded by mu_
  std::atomic<std::uint64_t> version_{0};
  /// Eventcount generation: bumped (under mu_) by every wake.
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> waiting_{false};
  std::atomic<std::ptrdiff_t> pending_{0};

  /// Serializes the consumer side between the owner and thieves.
  std::atomic<bool> consumer_lock_{false};
  std::vector<std::shared_ptr<Channel>> snapshot_;  // consumer-lock guarded
  std::uint64_t snapshot_version_ = ~0ull;          // force first refresh
  std::size_t cursor_ = 0;
};

}  // namespace dici::net
