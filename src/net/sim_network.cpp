#include "src/net/sim_network.hpp"

#include <algorithm>

namespace dici::net {

picos_t SimNetwork::send(node_id_t src, node_id_t dst, std::uint64_t bytes,
                         picos_t ready) {
  DICI_CHECK(src < num_nodes() && dst < num_nodes());
  DICI_CHECK_MSG(src != dst, "loopback messages are free; do not send them");
  const picos_t xfer = link_.transfer_ps(bytes);

  // Sender egress serializes this node's outgoing messages.
  const picos_t egress_start = std::max(ready, egress_free_[src]);
  egress_free_[src] = egress_start + xfer;

  // Cut-through: the head reaches the receiver's link after the wire
  // latency; the receiver's ingress NIC then needs `xfer` of its own wire
  // time, delayed further if it is still draining another message.
  const picos_t head_arrival = egress_start + link_.latency_ps();
  const picos_t ingress_start = std::max(head_arrival, ingress_free_[dst]);
  const picos_t delivered = ingress_start + xfer;
  ingress_free_[dst] = delivered;

  auto& s = stats_[src];
  s.messages_sent += 1;
  s.bytes_sent += bytes;
  s.egress_busy += xfer;
  auto& r = stats_[dst];
  r.messages_received += 1;
  r.bytes_received += bytes;
  r.ingress_busy += xfer;
  return delivered;
}

}  // namespace dici::net
