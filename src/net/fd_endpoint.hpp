// The fd-based half of the transport layer, factored out of
// transport.cpp so every descriptor-backed link — UNIX-domain
// socketpair (kSocket), a socketpair inherited across fork/exec
// (kFork), and loopback TCP (kTcp) — shares ONE implementation of the
// hard parts: poll-bounded timeouts, partial-read/-write framing, and
// EINTR-safe syscall wrappers.
//
// FdEndpoint is exactly the wire contract of net::Endpoint over any
// SOCK_STREAM descriptor: it writes encode_frame() bytes with
// MSG_NOSIGNAL (a dead peer is EPIPE → kClosed, never SIGPIPE),
// reassembles partial frames in a buffer, and verifies the payload
// checksum per frame (kCorrupt drops one frame, the stream stays
// framed). The fd is owned: closed in the destructor, shutdown() on
// close() so blocked poll()s on either end return promptly.
//
// The EINTR discipline (the kSocket audit): every ::send/::recv retries
// EINTR immediately instead of falling through to poll, and
// poll_fd_until() loops on EINTR re-checking the caller's deadline — a
// signal landing mid-wait can never surface as a spurious timeout or a
// spurious close.
//
// TcpListener/tcp_connect are the kTcp bootstrap: a listener bound to
// 127.0.0.1:0 (the kernel picks the port; port() reports it so the
// coordinator can pass it to a spawned child on argv), an accept with a
// poll deadline, and a non-blocking connect with a connect timeout.
// Both ends get TCP_NODELAY — frames are small and latency-bound.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/net/transport.hpp"

namespace dici::net {

// --- EINTR-safe syscall wrappers ------------------------------------------
// Shared by FdEndpoint and the TCP bootstrap below. Each retries EINTR
// internally; any other outcome is the caller's to classify.

/// Wait for `events` (POLLIN/POLLOUT) on `fd` until `deadline`. True
/// when the fd is ready (or has an error condition the next syscall
/// will surface); false only on a genuine deadline expiry. EINTR and
/// sliced waits loop, re-checking the deadline.
bool poll_fd_until(int fd, short events,
                   std::chrono::steady_clock::time_point deadline);

/// ::send with MSG_NOSIGNAL | MSG_DONTWAIT, retrying EINTR. Returns the
/// byte count (> 0), or -1 with errno set to the non-EINTR failure
/// (EAGAIN means "poll and retry", EPIPE/ECONNRESET mean peer gone).
ssize_t send_some(int fd, const std::uint8_t* data, std::size_t len);

/// ::recv with MSG_DONTWAIT, retrying EINTR. Returns bytes read (> 0),
/// 0 on orderly peer shutdown, or -1 with errno set (EAGAIN = "poll and
/// retry").
ssize_t recv_some(int fd, std::uint8_t* data, std::size_t len);

/// socketpair(AF_UNIX, SOCK_STREAM) with CLOEXEC on both ends, aborting
/// with errno on failure. CLOEXEC matters for the fork transport: a
/// child must inherit exactly the one fd the spawner dup2()s for it,
/// not every sibling's link.
void cloexec_socketpair(int fds[2]);

// --- The shared fd endpoint -----------------------------------------------

/// One side of any SOCK_STREAM frame link. Threading contract as
/// Endpoint: one sender + one receiver thread; close() may race both.
class FdEndpoint final : public Endpoint {
 public:
  /// Takes ownership of `fd` (closed in the destructor).
  explicit FdEndpoint(int fd);
  ~FdEndpoint() override;

  SendResult send(const Frame& frame, std::chrono::nanoseconds timeout) override;
  RecvResult recv(Frame* frame, std::chrono::nanoseconds timeout,
                  std::string* error) override;
  void close() override;
  SendStats send_stats() const override;

 private:
  RecvResult fill(std::chrono::steady_clock::time_point deadline);

  int fd_;
  std::atomic<bool> closed_{false};
  std::vector<std::uint8_t> buffer_;  // partial-frame reassembly
  std::uint64_t seq_ = 0;
  std::atomic<std::uint64_t> stats_messages_{0};
  std::atomic<std::uint64_t> stats_bytes_{0};
};

// --- TCP bootstrap (the kTcp transport) -----------------------------------

/// A loopback listener for one-shot accepts: bind 127.0.0.1:0, report
/// the kernel-chosen port, accept with a deadline. The coordinator
/// opens one per node, spawns the child with `--connect 127.0.0.1:PORT`,
/// and accepts; in-process pairs (bench ping-pong) connect themselves.
class TcpListener {
 public:
  /// Binds + listens on 127.0.0.1:0; aborts with errno on failure.
  TcpListener();
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Accept one connection as an endpoint; nullptr on timeout (with a
  /// diagnostic in *error). TCP_NODELAY is set on the accepted socket.
  std::unique_ptr<Endpoint> accept(std::chrono::nanoseconds timeout,
                                   std::string* error);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Non-blocking connect to host:port bounded by `timeout`; nullptr on
/// timeout or refusal (diagnostic in *error). TCP_NODELAY set.
std::unique_ptr<Endpoint> tcp_connect(const std::string& host,
                                      std::uint16_t port,
                                      std::chrono::nanoseconds timeout,
                                      std::string* error);

}  // namespace dici::net
