#include "src/net/fd_endpoint.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/util/assert.hpp"

namespace dici::net {
namespace {

using Clock = std::chrono::steady_clock;

std::string checksum_error(const FrameHeader& header) {
  return std::string("transport: payload checksum mismatch on ") +
         msg_type_name(header.msg_type()) + " seq " +
         std::to_string(header.seq) + " from src " +
         std::to_string(header.src) + " — frame dropped";
}

std::string errno_string(const char* what) {
  return std::string(what) + ": errno=" + std::to_string(errno) + " (" +
         std::strerror(errno) + ")";
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

bool poll_fd_until(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    const auto now = Clock::now();
    if (now >= deadline) return false;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    struct pollfd pfd = {fd, events, 0};
    // Slice long waits so a racing close() (which shutdown()s the fd and
    // makes it readable) is picked up even against a far deadline.
    const int ms = static_cast<int>(std::min<std::int64_t>(
        std::max<std::int64_t>(left.count(), 1), 60'000));
    const int rc = ::poll(&pfd, 1, ms);
    if (rc > 0) return true;
    if (rc < 0 && errno != EINTR && errno != EAGAIN) return true;
    // timeout slice or EINTR: loop re-checks the deadline — a signal
    // mid-wait never turns into a spurious timeout.
  }
}

ssize_t send_some(int fd, const std::uint8_t* data, std::size_t len) {
  for (;;) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n >= 0 || errno != EINTR) return n;
  }
}

ssize_t recv_some(int fd, std::uint8_t* data, std::size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd, data, len, MSG_DONTWAIT);
    if (n >= 0 || errno != EINTR) return n;
  }
}

void cloexec_socketpair(int fds[2]) {
  const int rc =
      ::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds);
  DICI_CHECK_FMT(rc == 0, "socketpair failed: errno=%d (%s)", errno,
                 std::strerror(errno));
}

// --- FdEndpoint -----------------------------------------------------------

FdEndpoint::FdEndpoint(int fd) : fd_(fd) {}

FdEndpoint::~FdEndpoint() {
  close();
  ::close(fd_);  // fd released only here, so a racing send/recv can
                 // never hit a recycled descriptor
}

Endpoint::SendResult FdEndpoint::send(const Frame& frame,
                                      std::chrono::nanoseconds timeout) {
  FrameHeader header = frame.header;
  header.seq = seq_++;
  std::vector<std::uint8_t> bytes(kFrameHeaderBytes + frame.payload.size());
  encode_frame_header(header, bytes.data());
  if (!frame.payload.empty()) {
    std::memcpy(bytes.data() + kFrameHeaderBytes, frame.payload.data(),
                frame.payload.size());
  }

  const auto deadline = Clock::now() + timeout;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    if (closed_.load(std::memory_order_acquire)) return SendResult::kClosed;
    const ssize_t n = send_some(fd_, bytes.data() + sent, bytes.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET || errno == EBADF))
      return SendResult::kClosed;
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)
      return SendResult::kClosed;
    if (!poll_fd_until(fd_, POLLOUT, deadline)) return SendResult::kTimeout;
  }
  stats_messages_.fetch_add(1, std::memory_order_relaxed);
  stats_bytes_.fetch_add(bytes.size(), std::memory_order_relaxed);
  return SendResult::kOk;
}

Endpoint::RecvResult FdEndpoint::recv(Frame* frame,
                                      std::chrono::nanoseconds timeout,
                                      std::string* error) {
  const auto deadline = Clock::now() + timeout;
  // Phase 1: a full header. Phase 2: the payload it promises. A header
  // that fails the bounds checks poisons the stream (we can no longer
  // find frame boundaries), so it is kError, not a skip.
  while (buffer_.size() < kFrameHeaderBytes) {
    const auto r = fill(deadline);
    if (r != RecvResult::kFrame) return r;
  }
  FrameHeader header;
  if (!decode_frame_header(buffer_, &header, error)) return RecvResult::kError;
  const std::size_t total = kFrameHeaderBytes + header.payload_bytes;
  while (buffer_.size() < total) {
    const auto r = fill(deadline);
    if (r != RecvResult::kFrame) return r;
  }
  frame->header = header;
  frame->payload.assign(buffer_.begin() + kFrameHeaderBytes,
                        buffer_.begin() + static_cast<std::ptrdiff_t>(total));
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(total));
  if (!frame_checksum_ok(*frame)) {
    // The header was valid, so the frame boundary is trustworthy: the
    // damaged frame is already consumed from the buffer and the next
    // recv starts clean at the following header.
    *error = checksum_error(frame->header);
    return RecvResult::kCorrupt;
  }
  return RecvResult::kFrame;
}

void FdEndpoint::close() {
  bool expected = false;
  if (closed_.compare_exchange_strong(expected, true)) {
    // Shut down both directions so blocked poll()s on either end return
    // promptly. The fd itself is released in the destructor.
    ::shutdown(fd_, SHUT_RDWR);
  }
}

SendStats FdEndpoint::send_stats() const {
  return {stats_messages_.load(std::memory_order_relaxed),
          stats_bytes_.load(std::memory_order_relaxed)};
}

Endpoint::RecvResult FdEndpoint::fill(Clock::time_point deadline) {
  if (closed_.load(std::memory_order_acquire)) return RecvResult::kClosed;
  std::uint8_t chunk[64 << 10];
  const ssize_t n = recv_some(fd_, chunk, sizeof(chunk));
  if (n > 0) {
    buffer_.insert(buffer_.end(), chunk, chunk + n);
    return RecvResult::kFrame;
  }
  if (n == 0) return RecvResult::kClosed;  // orderly peer shutdown
  if (errno == ECONNRESET || errno == EBADF) return RecvResult::kClosed;
  if (errno != EAGAIN && errno != EWOULDBLOCK) return RecvResult::kClosed;
  if (!poll_fd_until(fd_, POLLIN, deadline)) return RecvResult::kTimeout;
  return RecvResult::kFrame;  // readable (or racing close) — loop retries
}

// --- TCP bootstrap --------------------------------------------------------

TcpListener::TcpListener() {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  DICI_CHECK_FMT(fd_ >= 0, "tcp listener socket failed: errno=%d (%s)", errno,
                 std::strerror(errno));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel picks a free port
  int rc = ::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
  DICI_CHECK_FMT(rc == 0, "tcp listener bind failed: errno=%d (%s)", errno,
                 std::strerror(errno));
  rc = ::listen(fd_, 8);
  DICI_CHECK_FMT(rc == 0, "tcp listen failed: errno=%d (%s)", errno,
                 std::strerror(errno));
  socklen_t len = sizeof(addr);
  rc = ::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
  DICI_CHECK_FMT(rc == 0, "tcp getsockname failed: errno=%d (%s)", errno,
                 std::strerror(errno));
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Endpoint> TcpListener::accept(std::chrono::nanoseconds timeout,
                                              std::string* error) {
  const auto deadline = Clock::now() + timeout;
  for (;;) {
    const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      set_nodelay(fd);
      return std::make_unique<FdEndpoint>(fd);
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      *error = errno_string("tcp accept failed");
      return nullptr;
    }
    if (!poll_fd_until(fd_, POLLIN, deadline)) {
      *error = "tcp accept timed out on 127.0.0.1:" + std::to_string(port_);
      return nullptr;
    }
  }
}

std::unique_ptr<Endpoint> tcp_connect(const std::string& host,
                                      std::uint16_t port,
                                      std::chrono::nanoseconds timeout,
                                      std::string* error) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    *error = errno_string("tcp socket failed");
    return nullptr;
  }
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "tcp connect: bad address '" + host + "'";
    ::close(fd);
    return nullptr;
  }
  const auto deadline = Clock::now() + timeout;
  for (;;) {
    const int rc =
        ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
    if (rc == 0) break;
    if (errno == EINTR) continue;
    if (errno == EISCONN) break;
    if (errno != EINPROGRESS && errno != EALREADY) {
      *error = errno_string("tcp connect failed");
      ::close(fd);
      return nullptr;
    }
    if (!poll_fd_until(fd, POLLOUT, deadline)) {
      *error = "tcp connect to " + host + ":" + std::to_string(port) +
               " timed out";
      ::close(fd);
      return nullptr;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      errno = so_error;
      *error = errno_string("tcp connect failed");
      ::close(fd);
      return nullptr;
    }
    break;
  }
  set_nodelay(fd);
  return std::make_unique<FdEndpoint>(fd);
}

}  // namespace dici::net
