#include "src/net/transport.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/spsc_ring.hpp"
#include "src/util/assert.hpp"

namespace dici::net {
namespace {

using Clock = std::chrono::steady_clock;

std::string checksum_error(const FrameHeader& header) {
  return std::string("transport: payload checksum mismatch on ") +
         msg_type_name(header.msg_type()) + " seq " +
         std::to_string(header.seq) + " from src " +
         std::to_string(header.src) + " — frame dropped";
}

// --- Ring transport -------------------------------------------------------

/// One direction of the ring link: an SPSC ring of fully serialized
/// frames plus the eventcount park/wake protocol from SpscRingHub (see
/// spsc_ring.hpp for why the generation ticket can't lose a wake).
/// Sender and receiver live in different "nodes", so the pipe is the
/// only memory they share — and it carries bytes, not objects.
struct FramePipe {
  explicit FramePipe(std::size_t min_frames) : ring(min_frames) {}

  SpscRing<std::vector<std::uint8_t>> ring;
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<bool> waiting{false};
  std::atomic<bool> closed{false};

  void wake() {
    {
      std::lock_guard lock(mu);
      epoch.fetch_add(1, std::memory_order_relaxed);
    }
    cv.notify_all();
  }

  void after_event() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiting.load(std::memory_order_relaxed)) wake();
  }

  void close() {
    closed.store(true, std::memory_order_release);
    wake();
  }
};

struct RingLink {
  RingLink(std::size_t frames) : to_node(frames), to_coordinator(frames) {}
  FramePipe to_node;
  FramePipe to_coordinator;
};

class RingEndpoint final : public Endpoint {
 public:
  RingEndpoint(std::shared_ptr<RingLink> link, FramePipe* out, FramePipe* in)
      : link_(std::move(link)), out_(out), in_(in) {}

  ~RingEndpoint() override { close(); }

  SendResult send(const Frame& frame, std::chrono::nanoseconds timeout) override {
    if (closed_by_either()) return SendResult::kClosed;
    FrameHeader header = frame.header;
    header.seq = seq_++;
    std::vector<std::uint8_t> bytes(kFrameHeaderBytes + frame.payload.size());
    encode_frame_header(header, bytes.data());
    if (!frame.payload.empty()) {
      std::memcpy(bytes.data() + kFrameHeaderBytes, frame.payload.data(),
                  frame.payload.size());
    }
    const std::uint64_t size = bytes.size();

    // A full ring means the receiver is awake and draining (or dead) —
    // it can't be parked on empty — so spinning with yields until a
    // slot frees is correct; the deadline bounds a dead receiver.
    const auto deadline = Clock::now() + timeout;
    while (!out_->ring.try_push(bytes)) {
      if (closed_by_either()) return SendResult::kClosed;
      if (Clock::now() >= deadline) return SendResult::kTimeout;
      std::this_thread::yield();
    }
    out_->after_event();  // wake a receiver parked on empty
    stats_messages_.fetch_add(1, std::memory_order_relaxed);
    stats_bytes_.fetch_add(size, std::memory_order_relaxed);
    return SendResult::kOk;
  }

  RecvResult recv(Frame* frame, std::chrono::nanoseconds timeout,
                  std::string* error) override {
    std::vector<std::uint8_t> bytes;
    const auto outcome = wait_pop(bytes, timeout);
    if (outcome != RecvResult::kFrame) return outcome;
    if (!decode_frame(bytes, frame, error)) return RecvResult::kError;
    if (!frame_checksum_ok(*frame)) {
      *error = checksum_error(frame->header);
      return RecvResult::kCorrupt;
    }
    return RecvResult::kFrame;
  }

  void close() override {
    // Close both pipes: a ring endpoint closing must unblock its peer's
    // sender (which pushes into in_) as well as its receiver.
    out_->close();
    in_->close();
  }

  SendStats send_stats() const override {
    return {stats_messages_.load(std::memory_order_relaxed),
            stats_bytes_.load(std::memory_order_relaxed)};
  }

 private:
  bool closed_by_either() const {
    return out_->closed.load(std::memory_order_acquire) ||
           in_->closed.load(std::memory_order_acquire);
  }

  RecvResult wait_pop(std::vector<std::uint8_t>& bytes,
                      std::chrono::nanoseconds timeout) {
    const auto deadline = Clock::now() + timeout;
    for (;;) {
      if (in_->ring.try_pop(bytes)) return RecvResult::kFrame;
      // Eventcount park (the SpscRingHub protocol): ticket, announce,
      // final re-scan, then sleep on "generation changed or closed".
      const std::uint64_t ticket = in_->epoch.load(std::memory_order_acquire);
      in_->waiting.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (in_->ring.try_pop(bytes)) {
        in_->waiting.store(false, std::memory_order_relaxed);
        return RecvResult::kFrame;
      }
      if (in_->closed.load(std::memory_order_acquire)) {
        in_->waiting.store(false, std::memory_order_relaxed);
        // Final drain: frames pushed before the close still come out.
        return in_->ring.try_pop(bytes) ? RecvResult::kFrame
                                        : RecvResult::kClosed;
      }
      bool woke;
      {
        std::unique_lock lock(in_->mu);
        woke = in_->cv.wait_until(lock, deadline, [&] {
          return in_->epoch.load(std::memory_order_relaxed) != ticket ||
                 in_->closed.load(std::memory_order_relaxed);
        });
      }
      in_->waiting.store(false, std::memory_order_relaxed);
      if (!woke) {
        // Deadline hit. One last pop covers a push that raced the wait.
        if (in_->ring.try_pop(bytes)) return RecvResult::kFrame;
        if (in_->closed.load(std::memory_order_acquire))
          return RecvResult::kClosed;
        return RecvResult::kTimeout;
      }
    }
  }

  std::shared_ptr<RingLink> link_;  // keeps both pipes alive
  FramePipe* out_;
  FramePipe* in_;
  std::uint64_t seq_ = 0;
  std::atomic<std::uint64_t> stats_messages_{0};
  std::atomic<std::uint64_t> stats_bytes_{0};
};

// --- Socket transport -----------------------------------------------------

/// One side of a UNIX-domain SOCK_STREAM socketpair. The fd is kept
/// blocking-off so poll() bounds every wait; writes use MSG_NOSIGNAL so
/// a dead peer surfaces as EPIPE (→ kClosed), never SIGPIPE.
class SocketEndpoint final : public Endpoint {
 public:
  explicit SocketEndpoint(int fd) : fd_(fd) {}

  ~SocketEndpoint() override {
    close();
    ::close(fd_);  // fd released only here, so a racing send/recv can
                   // never hit a recycled descriptor
  }

  SendResult send(const Frame& frame, std::chrono::nanoseconds timeout) override {
    FrameHeader header = frame.header;
    header.seq = seq_++;
    std::vector<std::uint8_t> bytes(kFrameHeaderBytes + frame.payload.size());
    encode_frame_header(header, bytes.data());
    if (!frame.payload.empty()) {
      std::memcpy(bytes.data() + kFrameHeaderBytes, frame.payload.data(),
                  frame.payload.size());
    }

    const auto deadline = Clock::now() + timeout;
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      if (closed_.load(std::memory_order_acquire)) return SendResult::kClosed;
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EPIPE || errno == ECONNRESET || errno == EBADF))
        return SendResult::kClosed;
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
        return SendResult::kClosed;
      if (!poll_for(POLLOUT, deadline)) return SendResult::kTimeout;
    }
    stats_messages_.fetch_add(1, std::memory_order_relaxed);
    stats_bytes_.fetch_add(bytes.size(), std::memory_order_relaxed);
    return SendResult::kOk;
  }

  RecvResult recv(Frame* frame, std::chrono::nanoseconds timeout,
                  std::string* error) override {
    const auto deadline = Clock::now() + timeout;
    // Phase 1: a full header. Phase 2: the payload it promises. A
    // header that fails the bounds checks poisons the stream (we can no
    // longer find frame boundaries), so it is kError, not a skip.
    while (buffer_.size() < kFrameHeaderBytes) {
      const auto r = fill(deadline);
      if (r != RecvResult::kFrame) return r;
    }
    FrameHeader header;
    if (!decode_frame_header(buffer_, &header, error)) return RecvResult::kError;
    const std::size_t total = kFrameHeaderBytes + header.payload_bytes;
    while (buffer_.size() < total) {
      const auto r = fill(deadline);
      if (r != RecvResult::kFrame) return r;
    }
    frame->header = header;
    frame->payload.assign(buffer_.begin() + kFrameHeaderBytes,
                          buffer_.begin() + static_cast<std::ptrdiff_t>(total));
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(total));
    if (!frame_checksum_ok(*frame)) {
      // The header was valid, so the frame boundary is trustworthy: the
      // damaged frame is already consumed from the buffer and the next
      // recv starts clean at the following header.
      *error = checksum_error(frame->header);
      return RecvResult::kCorrupt;
    }
    return RecvResult::kFrame;
  }

  void close() override {
    bool expected = false;
    if (closed_.compare_exchange_strong(expected, true)) {
      // Shut down both directions so blocked poll()s on either end
      // return promptly. The fd itself is released in the destructor.
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  SendStats send_stats() const override {
    return {stats_messages_.load(std::memory_order_relaxed),
            stats_bytes_.load(std::memory_order_relaxed)};
  }

 private:
  /// Pull more bytes into buffer_, waiting (bounded) for readability.
  /// Returns kFrame when progress was made.
  RecvResult fill(Clock::time_point deadline) {
    if (closed_.load(std::memory_order_acquire)) return RecvResult::kClosed;
    std::uint8_t chunk[64 << 10];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) {
      buffer_.insert(buffer_.end(), chunk, chunk + n);
      return RecvResult::kFrame;
    }
    if (n == 0) return RecvResult::kClosed;  // orderly peer shutdown
    if (errno == ECONNRESET || errno == EBADF) return RecvResult::kClosed;
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
      return RecvResult::kClosed;
    if (!poll_for(POLLIN, deadline)) return RecvResult::kTimeout;
    return RecvResult::kFrame;  // readable (or racing close) — loop retries
  }

  /// Wait for `events` on fd_ until `deadline`; false on timeout.
  bool poll_for(short events, Clock::time_point deadline) {
    for (;;) {
      const auto now = Clock::now();
      if (now >= deadline) return false;
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
      struct pollfd pfd = {fd_, events, 0};
      const int ms = static_cast<int>(std::min<std::int64_t>(
          std::max<std::int64_t>(left.count(), 1), 60'000));
      const int rc = ::poll(&pfd, 1, ms);
      if (rc > 0) return true;
      if (rc < 0 && errno != EINTR && errno != EAGAIN) return true;
      // timeout slice or EINTR: loop re-checks the deadline
    }
  }

  int fd_;
  std::atomic<bool> closed_{false};
  std::vector<std::uint8_t> buffer_;  // partial-frame reassembly
  std::uint64_t seq_ = 0;
  std::atomic<std::uint64_t> stats_messages_{0};
  std::atomic<std::uint64_t> stats_bytes_{0};
};

}  // namespace

const char* transport_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kRing:
      return "ring";
    case TransportKind::kSocket:
      return "socket";
  }
  return "unknown";
}

bool transport_parse(const std::string& text, TransportKind* kind) {
  if (text == "ring") {
    *kind = TransportKind::kRing;
    return true;
  }
  if (text == "socket") {
    *kind = TransportKind::kSocket;
    return true;
  }
  return false;
}

std::pair<std::unique_ptr<Endpoint>, std::unique_ptr<Endpoint>>
make_transport_pair(TransportKind kind, std::size_t ring_frames) {
  switch (kind) {
    case TransportKind::kRing: {
      auto link = std::make_shared<RingLink>(ring_frames);
      auto coordinator = std::make_unique<RingEndpoint>(
          link, &link->to_node, &link->to_coordinator);
      auto node = std::make_unique<RingEndpoint>(link, &link->to_coordinator,
                                                 &link->to_node);
      return {std::move(coordinator), std::move(node)};
    }
    case TransportKind::kSocket: {
      int fds[2] = {-1, -1};
      const int rc = ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds);
      DICI_CHECK_FMT(rc == 0, "socketpair failed: errno=%d (%s)", errno,
                     std::strerror(errno));
      return {std::make_unique<SocketEndpoint>(fds[0]),
              std::make_unique<SocketEndpoint>(fds[1])};
    }
  }
  DICI_CHECK(false);
  return {};
}

}  // namespace dici::net
