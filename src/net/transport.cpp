#include "src/net/transport.hpp"

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/fd_endpoint.hpp"
#include "src/net/spsc_ring.hpp"
#include "src/util/assert.hpp"

namespace dici::net {
namespace {

using Clock = std::chrono::steady_clock;

std::string checksum_error(const FrameHeader& header) {
  return std::string("transport: payload checksum mismatch on ") +
         msg_type_name(header.msg_type()) + " seq " +
         std::to_string(header.seq) + " from src " +
         std::to_string(header.src) + " — frame dropped";
}

// --- Ring transport -------------------------------------------------------

/// One direction of the ring link: an SPSC ring of fully serialized
/// frames plus the eventcount park/wake protocol from SpscRingHub (see
/// spsc_ring.hpp for why the generation ticket can't lose a wake).
/// Sender and receiver live in different "nodes", so the pipe is the
/// only memory they share — and it carries bytes, not objects.
struct FramePipe {
  explicit FramePipe(std::size_t min_frames) : ring(min_frames) {}

  SpscRing<std::vector<std::uint8_t>> ring;
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<bool> waiting{false};
  std::atomic<bool> closed{false};

  void wake() {
    {
      std::lock_guard lock(mu);
      epoch.fetch_add(1, std::memory_order_relaxed);
    }
    cv.notify_all();
  }

  void after_event() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiting.load(std::memory_order_relaxed)) wake();
  }

  void close() {
    closed.store(true, std::memory_order_release);
    wake();
  }
};

struct RingLink {
  RingLink(std::size_t frames) : to_node(frames), to_coordinator(frames) {}
  FramePipe to_node;
  FramePipe to_coordinator;
};

class RingEndpoint final : public Endpoint {
 public:
  RingEndpoint(std::shared_ptr<RingLink> link, FramePipe* out, FramePipe* in)
      : link_(std::move(link)), out_(out), in_(in) {}

  ~RingEndpoint() override { close(); }

  SendResult send(const Frame& frame, std::chrono::nanoseconds timeout) override {
    if (closed_by_either()) return SendResult::kClosed;
    FrameHeader header = frame.header;
    header.seq = seq_++;
    std::vector<std::uint8_t> bytes(kFrameHeaderBytes + frame.payload.size());
    encode_frame_header(header, bytes.data());
    if (!frame.payload.empty()) {
      std::memcpy(bytes.data() + kFrameHeaderBytes, frame.payload.data(),
                  frame.payload.size());
    }
    const std::uint64_t size = bytes.size();

    // A full ring means the receiver is awake and draining (or dead) —
    // it can't be parked on empty — so spinning with yields until a
    // slot frees is correct; the deadline bounds a dead receiver.
    const auto deadline = Clock::now() + timeout;
    while (!out_->ring.try_push(bytes)) {
      if (closed_by_either()) return SendResult::kClosed;
      if (Clock::now() >= deadline) return SendResult::kTimeout;
      std::this_thread::yield();
    }
    out_->after_event();  // wake a receiver parked on empty
    stats_messages_.fetch_add(1, std::memory_order_relaxed);
    stats_bytes_.fetch_add(size, std::memory_order_relaxed);
    return SendResult::kOk;
  }

  RecvResult recv(Frame* frame, std::chrono::nanoseconds timeout,
                  std::string* error) override {
    std::vector<std::uint8_t> bytes;
    const auto outcome = wait_pop(bytes, timeout);
    if (outcome != RecvResult::kFrame) return outcome;
    if (!decode_frame(bytes, frame, error)) return RecvResult::kError;
    if (!frame_checksum_ok(*frame)) {
      *error = checksum_error(frame->header);
      return RecvResult::kCorrupt;
    }
    return RecvResult::kFrame;
  }

  void close() override {
    // Close both pipes: a ring endpoint closing must unblock its peer's
    // sender (which pushes into in_) as well as its receiver.
    out_->close();
    in_->close();
  }

  SendStats send_stats() const override {
    return {stats_messages_.load(std::memory_order_relaxed),
            stats_bytes_.load(std::memory_order_relaxed)};
  }

 private:
  bool closed_by_either() const {
    return out_->closed.load(std::memory_order_acquire) ||
           in_->closed.load(std::memory_order_acquire);
  }

  RecvResult wait_pop(std::vector<std::uint8_t>& bytes,
                      std::chrono::nanoseconds timeout) {
    const auto deadline = Clock::now() + timeout;
    for (;;) {
      if (in_->ring.try_pop(bytes)) return RecvResult::kFrame;
      // Eventcount park (the SpscRingHub protocol): ticket, announce,
      // final re-scan, then sleep on "generation changed or closed".
      const std::uint64_t ticket = in_->epoch.load(std::memory_order_acquire);
      in_->waiting.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (in_->ring.try_pop(bytes)) {
        in_->waiting.store(false, std::memory_order_relaxed);
        return RecvResult::kFrame;
      }
      if (in_->closed.load(std::memory_order_acquire)) {
        in_->waiting.store(false, std::memory_order_relaxed);
        // Final drain: frames pushed before the close still come out.
        return in_->ring.try_pop(bytes) ? RecvResult::kFrame
                                        : RecvResult::kClosed;
      }
      bool woke;
      {
        std::unique_lock lock(in_->mu);
        woke = in_->cv.wait_until(lock, deadline, [&] {
          return in_->epoch.load(std::memory_order_relaxed) != ticket ||
                 in_->closed.load(std::memory_order_relaxed);
        });
      }
      in_->waiting.store(false, std::memory_order_relaxed);
      if (!woke) {
        // Deadline hit. One last pop covers a push that raced the wait.
        if (in_->ring.try_pop(bytes)) return RecvResult::kFrame;
        if (in_->closed.load(std::memory_order_acquire))
          return RecvResult::kClosed;
        return RecvResult::kTimeout;
      }
    }
  }

  std::shared_ptr<RingLink> link_;  // keeps both pipes alive
  FramePipe* out_;
  FramePipe* in_;
  std::uint64_t seq_ = 0;
  std::atomic<std::uint64_t> stats_messages_{0};
  std::atomic<std::uint64_t> stats_bytes_{0};
};

}  // namespace

// The fd-backed endpoint (the socket/fork/tcp transports) lives in
// fd_endpoint.{hpp,cpp} — one implementation of poll timeouts, partial
// I/O framing, and EINTR retry shared by every descriptor transport.

const char* transport_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kRing:
      return "ring";
    case TransportKind::kSocket:
      return "socket";
    case TransportKind::kFork:
      return "fork";
    case TransportKind::kTcp:
      return "tcp";
  }
  return "unknown";
}

bool transport_parse(const std::string& text, TransportKind* kind) {
  if (text == "ring") {
    *kind = TransportKind::kRing;
    return true;
  }
  if (text == "socket") {
    *kind = TransportKind::kSocket;
    return true;
  }
  if (text == "fork") {
    *kind = TransportKind::kFork;
    return true;
  }
  if (text == "tcp") {
    *kind = TransportKind::kTcp;
    return true;
  }
  return false;
}

TransportKind transport_from_flag(const std::string& text, const char* field) {
  TransportKind kind = TransportKind::kRing;
  DICI_CHECK_FMT(transport_parse(text, &kind),
                 "%s = \"%s\" is not a transport (want %s)", field,
                 text.c_str(), kTransportChoices);
  return kind;
}

std::pair<std::unique_ptr<Endpoint>, std::unique_ptr<Endpoint>>
make_transport_pair(TransportKind kind, std::size_t ring_frames) {
  switch (kind) {
    case TransportKind::kRing: {
      auto link = std::make_shared<RingLink>(ring_frames);
      auto coordinator = std::make_unique<RingEndpoint>(
          link, &link->to_node, &link->to_coordinator);
      auto node = std::make_unique<RingEndpoint>(link, &link->to_coordinator,
                                                 &link->to_node);
      return {std::move(coordinator), std::move(node)};
    }
    case TransportKind::kSocket:
    case TransportKind::kFork: {
      // Mechanically the same link: a CLOEXEC socketpair. kFork's node
      // end is normally inherited by a spawned child (cluster layer);
      // in-process it prices identically to kSocket.
      int fds[2] = {-1, -1};
      cloexec_socketpair(fds);
      return {std::make_unique<FdEndpoint>(fds[0]),
              std::make_unique<FdEndpoint>(fds[1])};
    }
    case TransportKind::kTcp: {
      // Loopback listener + connector in one thread: the connect lands
      // in the listener's backlog, so accept() after connect() is safe
      // without concurrency.
      TcpListener listener;
      std::string error;
      auto node = tcp_connect("127.0.0.1", listener.port(),
                              std::chrono::seconds(10), &error);
      DICI_CHECK_FMT(node != nullptr, "tcp pair connect failed: %s",
                     error.c_str());
      auto coordinator = listener.accept(std::chrono::seconds(10), &error);
      DICI_CHECK_FMT(coordinator != nullptr, "tcp pair accept failed: %s",
                     error.c_str());
      return {std::move(coordinator), std::move(node)};
    }
  }
  DICI_CHECK(false);
  return {};
}

}  // namespace dici::net
