#include "src/net/wire.hpp"

#include <cstring>

#include "src/util/assert.hpp"

namespace dici::net {
namespace {

// Explicit little-endian primitives. memcpy of the integer would be
// fine on every machine we run today, but the wire format is the one
// place byte order is a contract, so spell it out once here.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u32_array(std::vector<std::uint8_t>& out,
                   std::span<const std::uint32_t> values) {
  put_u32(out, static_cast<std::uint32_t>(values.size()));
  for (std::uint32_t v : values) put_u32(out, v);
}

/// Sequential bounds-checked reader over a frame payload. Every read_*
/// returns false once the payload is exhausted; callers chain them and
/// report one diagnostic at the end.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool read_u8(std::uint8_t* v) {
    if (pos_ + 1 > bytes_.size()) return fail();
    *v = bytes_[pos_++];
    return true;
  }

  bool read_u16(std::uint16_t* v) {
    if (pos_ + 2 > bytes_.size()) return fail();
    *v = static_cast<std::uint16_t>(bytes_[pos_] |
                                    (std::uint16_t{bytes_[pos_ + 1]} << 8));
    pos_ += 2;
    return true;
  }

  bool read_u32(std::uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return fail();
    std::uint32_t r = 0;
    for (int i = 0; i < 4; ++i) r |= std::uint32_t{bytes_[pos_ + i]} << (8 * i);
    pos_ += 4;
    *v = r;
    return true;
  }

  bool read_u64(std::uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) return fail();
    std::uint64_t r = 0;
    for (int i = 0; i < 8; ++i) r |= std::uint64_t{bytes_[pos_ + i]} << (8 * i);
    pos_ += 8;
    *v = r;
    return true;
  }

  /// Length-prefixed u32 array. The count is checked against the bytes
  /// actually remaining BEFORE the vector is sized, so a garbage count
  /// can't drive a huge allocation.
  bool read_u32_array(std::vector<std::uint32_t>* out) {
    std::uint32_t count = 0;
    if (!read_u32(&count)) return false;
    if (remaining() / 4 < count) return fail();
    out->resize(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t v = 0;
      read_u32(&v);
      (*out)[i] = v;
    }
    return true;
  }

  bool exhausted() const { return ok_ && pos_ == bytes_.size(); }
  bool ok() const { return ok_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  bool fail() {
    ok_ = false;
    return false;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

bool known_type(std::uint16_t type) {
  return type >= static_cast<std::uint16_t>(MsgType::kJoinRequest) &&
         type <= static_cast<std::uint16_t>(MsgType::kNodeConfig);
}

Frame make_frame(std::uint32_t src, MsgType type,
                 std::vector<std::uint8_t> payload) {
  DICI_CHECK_FMT(payload.size() <= kMaxFramePayloadBytes,
                 "wire: payload_bytes=%zu exceeds frame cap %u (type=%s)",
                 payload.size(), kMaxFramePayloadBytes, msg_type_name(type));
  Frame frame;
  frame.header.type = static_cast<std::uint16_t>(type);
  frame.header.src = src;
  frame.header.payload_bytes = static_cast<std::uint32_t>(payload.size());
  frame.payload = std::move(payload);
  frame.header.checksum = wire_checksum(frame.payload);
  return frame;
}

/// Shared prologue of every message decoder: type check + payload/header
/// length agreement, so payload parsers can trust frame.payload.
bool check_frame(const Frame& frame, MsgType want, std::string* error) {
  if (frame.header.msg_type() != want) {
    *error = std::string("wire: expected ") + msg_type_name(want) + ", got " +
             msg_type_name(frame.header.msg_type());
    return false;
  }
  if (frame.payload.size() != frame.header.payload_bytes) {
    *error = std::string("wire: ") + msg_type_name(want) +
             " payload length mismatch: header says " +
             std::to_string(frame.header.payload_bytes) + ", buffer holds " +
             std::to_string(frame.payload.size());
    return false;
  }
  return true;
}

bool finish(const Reader& reader, MsgType type, std::string* error) {
  if (!reader.ok()) {
    *error = std::string("wire: truncated ") + msg_type_name(type) + " payload";
    return false;
  }
  if (!reader.exhausted()) {
    *error = std::string("wire: ") + msg_type_name(type) + " payload has " +
             std::to_string(reader.remaining()) + " trailing bytes";
    return false;
  }
  return true;
}

}  // namespace

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kJoinRequest:
      return "join_request";
    case MsgType::kJoinAck:
      return "join_ack";
    case MsgType::kClusterInfo:
      return "cluster_info";
    case MsgType::kHeartbeat:
      return "heartbeat";
    case MsgType::kBuildShard:
      return "build_shard";
    case MsgType::kBuildAck:
      return "build_ack";
    case MsgType::kQueryBatch:
      return "query_batch";
    case MsgType::kRankBatch:
      return "rank_batch";
    case MsgType::kShutdown:
      return "shutdown";
    case MsgType::kNodeConfig:
      return "node_config";
  }
  return "unknown";
}

std::uint32_t wire_checksum(std::span<const std::uint8_t> payload) {
  // FNV-1a 32-bit: tiny, endian-free, and plenty to catch the flipped
  // bytes a link (or the fault injector) produces.
  std::uint32_t h = 0x811c9dc5u;
  for (const std::uint8_t b : payload) {
    h ^= b;
    h *= 0x01000193u;
  }
  return h;
}

void encode_frame_header(const FrameHeader& header, std::uint8_t* out) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kFrameHeaderBytes);
  put_u32(bytes, header.magic);
  put_u16(bytes, header.version);
  put_u16(bytes, header.type);
  put_u32(bytes, header.src);
  put_u32(bytes, header.payload_bytes);
  put_u64(bytes, header.seq);
  put_u32(bytes, header.epoch);
  put_u32(bytes, header.checksum);
  DICI_CHECK(bytes.size() == kFrameHeaderBytes);
  std::memcpy(out, bytes.data(), kFrameHeaderBytes);
}

bool decode_frame_header(std::span<const std::uint8_t> bytes,
                         FrameHeader* header, std::string* error) {
  if (bytes.size() < kFrameHeaderBytes) {
    *error = "wire: short frame header: " + std::to_string(bytes.size()) +
             " of " + std::to_string(kFrameHeaderBytes) + " bytes";
    return false;
  }
  Reader reader(bytes.subspan(0, kFrameHeaderBytes));
  FrameHeader h;
  reader.read_u32(&h.magic);
  reader.read_u16(&h.version);
  reader.read_u16(&h.type);
  reader.read_u32(&h.src);
  reader.read_u32(&h.payload_bytes);
  reader.read_u64(&h.seq);
  reader.read_u32(&h.epoch);
  reader.read_u32(&h.checksum);
  DICI_CHECK(reader.exhausted());
  if (h.magic != kWireMagic) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "wire: bad magic 0x%08x", h.magic);
    *error = buf;
    return false;
  }
  if (h.version != kWireVersion) {
    *error = "wire: version mismatch: peer speaks v" +
             std::to_string(h.version) + ", we speak v" +
             std::to_string(kWireVersion);
    return false;
  }
  if (!known_type(h.type)) {
    *error = "wire: unknown message type " + std::to_string(h.type);
    return false;
  }
  if (h.payload_bytes > kMaxFramePayloadBytes) {
    *error = "wire: oversized frame: payload_bytes=" +
             std::to_string(h.payload_bytes) + " exceeds cap " +
             std::to_string(kMaxFramePayloadBytes);
    return false;
  }
  *header = h;
  return true;
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  DICI_CHECK(frame.payload.size() == frame.header.payload_bytes);
  std::vector<std::uint8_t> bytes(kFrameHeaderBytes + frame.payload.size());
  encode_frame_header(frame.header, bytes.data());
  if (!frame.payload.empty()) {
    std::memcpy(bytes.data() + kFrameHeaderBytes, frame.payload.data(),
                frame.payload.size());
  }
  return bytes;
}

bool decode_frame(std::span<const std::uint8_t> bytes, Frame* frame,
                  std::string* error) {
  FrameHeader header;
  if (!decode_frame_header(bytes, &header, error)) return false;
  const std::size_t want = kFrameHeaderBytes + header.payload_bytes;
  if (bytes.size() != want) {
    *error = "wire: frame length mismatch: header promises " +
             std::to_string(want) + " bytes, buffer holds " +
             std::to_string(bytes.size());
    return false;
  }
  frame->header = header;
  frame->payload.assign(bytes.begin() + kFrameHeaderBytes, bytes.end());
  return true;
}

bool frame_checksum_ok(const Frame& frame) {
  return wire_checksum(frame.payload) == frame.header.checksum;
}

// --- Control messages -----------------------------------------------------

Frame encode_join_request(std::uint32_t src, const JoinRequestMsg& msg) {
  std::vector<std::uint8_t> payload;
  put_u32(payload, msg.node_id);
  return make_frame(src, MsgType::kJoinRequest, std::move(payload));
}

bool decode_join_request(const Frame& frame, JoinRequestMsg* msg,
                         std::string* error) {
  if (!check_frame(frame, MsgType::kJoinRequest, error)) return false;
  Reader reader(frame.payload);
  reader.read_u32(&msg->node_id);
  return finish(reader, MsgType::kJoinRequest, error);
}

Frame encode_join_ack(std::uint32_t src, const JoinAckMsg& msg) {
  std::vector<std::uint8_t> payload;
  put_u32(payload, msg.node_id);
  put_u32(payload, msg.num_nodes);
  return make_frame(src, MsgType::kJoinAck, std::move(payload));
}

bool decode_join_ack(const Frame& frame, JoinAckMsg* msg, std::string* error) {
  if (!check_frame(frame, MsgType::kJoinAck, error)) return false;
  Reader reader(frame.payload);
  reader.read_u32(&msg->node_id);
  reader.read_u32(&msg->num_nodes);
  return finish(reader, MsgType::kJoinAck, error);
}

Frame encode_cluster_info(std::uint32_t src, const ClusterInfoMsg& msg) {
  std::vector<std::uint8_t> payload;
  put_u32(payload, static_cast<std::uint32_t>(msg.nodes.size()));
  for (const ClusterInfoEntry& entry : msg.nodes) {
    put_u32(payload, entry.node_id);
    payload.push_back(entry.status);
    put_u32(payload, entry.shards);
  }
  return make_frame(src, MsgType::kClusterInfo, std::move(payload));
}

bool decode_cluster_info(const Frame& frame, ClusterInfoMsg* msg,
                         std::string* error) {
  if (!check_frame(frame, MsgType::kClusterInfo, error)) return false;
  Reader reader(frame.payload);
  std::uint32_t count = 0;
  if (!reader.read_u32(&count) || reader.remaining() / 9 < count) {
    *error = "wire: truncated cluster_info payload";
    return false;
  }
  msg->nodes.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    reader.read_u32(&msg->nodes[i].node_id);
    reader.read_u8(&msg->nodes[i].status);
    reader.read_u32(&msg->nodes[i].shards);
  }
  return finish(reader, MsgType::kClusterInfo, error);
}

Frame encode_heartbeat(std::uint32_t src, const HeartbeatMsg& msg) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, msg.send_ns);
  return make_frame(src, MsgType::kHeartbeat, std::move(payload));
}

bool decode_heartbeat(const Frame& frame, HeartbeatMsg* msg,
                      std::string* error) {
  if (!check_frame(frame, MsgType::kHeartbeat, error)) return false;
  Reader reader(frame.payload);
  reader.read_u64(&msg->send_ns);
  return finish(reader, MsgType::kHeartbeat, error);
}

Frame encode_node_config(std::uint32_t src, const NodeConfigMsg& msg) {
  std::vector<std::uint8_t> payload;
  payload.push_back(msg.kernel);
  put_u32(payload, msg.interleave_width);
  put_u32(payload, msg.heartbeat_interval_ms);
  put_u32(payload, msg.num_nodes);
  return make_frame(src, MsgType::kNodeConfig, std::move(payload));
}

bool decode_node_config(const Frame& frame, NodeConfigMsg* msg,
                        std::string* error) {
  if (!check_frame(frame, MsgType::kNodeConfig, error)) return false;
  Reader reader(frame.payload);
  reader.read_u8(&msg->kernel);
  reader.read_u32(&msg->interleave_width);
  reader.read_u32(&msg->heartbeat_interval_ms);
  reader.read_u32(&msg->num_nodes);
  return finish(reader, MsgType::kNodeConfig, error);
}

// --- Build messages -------------------------------------------------------

Frame encode_build_shard(std::uint32_t src, const BuildShardMsg& msg) {
  std::vector<std::uint8_t> payload;
  payload.reserve(17 + 4 * msg.keys.size());
  put_u32(payload, msg.shard);
  put_u32(payload, msg.global_offset);
  put_u32(payload, msg.chunk);
  payload.push_back(msg.last ? 1 : 0);
  put_u32_array(payload, msg.keys);
  return make_frame(src, MsgType::kBuildShard, std::move(payload));
}

bool decode_build_shard(const Frame& frame, BuildShardMsg* msg,
                        std::string* error) {
  if (!check_frame(frame, MsgType::kBuildShard, error)) return false;
  Reader reader(frame.payload);
  std::uint8_t last = 0;
  reader.read_u32(&msg->shard);
  reader.read_u32(&msg->global_offset);
  reader.read_u32(&msg->chunk);
  reader.read_u8(&last);
  msg->last = last != 0;
  reader.read_u32_array(&msg->keys);
  return finish(reader, MsgType::kBuildShard, error);
}

Frame encode_build_ack(std::uint32_t src, const BuildAckMsg& msg) {
  std::vector<std::uint8_t> payload;
  put_u32(payload, msg.shards_received);
  put_u64(payload, msg.replica_keys);
  return make_frame(src, MsgType::kBuildAck, std::move(payload));
}

bool decode_build_ack(const Frame& frame, BuildAckMsg* msg,
                      std::string* error) {
  if (!check_frame(frame, MsgType::kBuildAck, error)) return false;
  Reader reader(frame.payload);
  reader.read_u32(&msg->shards_received);
  reader.read_u64(&msg->replica_keys);
  return finish(reader, MsgType::kBuildAck, error);
}

// --- Serving messages -----------------------------------------------------

Frame encode_query_batch(std::uint32_t src, const QueryBatchMsg& msg) {
  DICI_CHECK(msg.keys.size() == msg.ids.size());
  std::vector<std::uint8_t> payload;
  payload.reserve(24 + 8 * msg.keys.size());
  put_u64(payload, msg.submission);
  put_u32(payload, msg.shard);
  put_u32(payload, msg.chunk);
  put_u32_array(payload, msg.keys);
  put_u32_array(payload, msg.ids);
  return make_frame(src, MsgType::kQueryBatch, std::move(payload));
}

bool decode_query_batch(const Frame& frame, QueryBatchMsg* msg,
                        std::string* error) {
  if (!check_frame(frame, MsgType::kQueryBatch, error)) return false;
  Reader reader(frame.payload);
  reader.read_u64(&msg->submission);
  reader.read_u32(&msg->shard);
  reader.read_u32(&msg->chunk);
  reader.read_u32_array(&msg->keys);
  reader.read_u32_array(&msg->ids);
  if (!finish(reader, MsgType::kQueryBatch, error)) return false;
  if (msg->keys.size() != msg->ids.size()) {
    *error = "wire: query_batch keys/ids length mismatch: " +
             std::to_string(msg->keys.size()) + " vs " +
             std::to_string(msg->ids.size());
    return false;
  }
  return true;
}

Frame encode_rank_batch(std::uint32_t src, const RankBatchMsg& msg) {
  DICI_CHECK(msg.ids.size() == msg.ranks.size());
  std::vector<std::uint8_t> payload;
  payload.reserve(32 + 8 * msg.ids.size());
  put_u64(payload, msg.submission);
  put_u32(payload, msg.shard);
  put_u32(payload, msg.chunk);
  put_u64(payload, msg.busy_ns);
  put_u32_array(payload, msg.ids);
  put_u32_array(payload, msg.ranks);
  return make_frame(src, MsgType::kRankBatch, std::move(payload));
}

bool decode_rank_batch(const Frame& frame, RankBatchMsg* msg,
                       std::string* error) {
  if (!check_frame(frame, MsgType::kRankBatch, error)) return false;
  Reader reader(frame.payload);
  reader.read_u64(&msg->submission);
  reader.read_u32(&msg->shard);
  reader.read_u32(&msg->chunk);
  reader.read_u64(&msg->busy_ns);
  reader.read_u32_array(&msg->ids);
  reader.read_u32_array(&msg->ranks);
  if (!finish(reader, MsgType::kRankBatch, error)) return false;
  if (msg->ids.size() != msg->ranks.size()) {
    *error = "wire: rank_batch ids/ranks length mismatch: " +
             std::to_string(msg->ids.size()) + " vs " +
             std::to_string(msg->ranks.size());
    return false;
  }
  return true;
}

Frame encode_shutdown(std::uint32_t src) {
  return make_frame(src, MsgType::kShutdown, {});
}

}  // namespace dici::net
