// Deterministic fault injection over any net::Endpoint.
//
// FaultInjectingEndpoint decorates an Endpoint and perturbs one side of
// the traffic, chosen by Mode:
//
//  * kSendSide (the default) — every outgoing frame is independently
//    dropped, delayed, duplicated, and/or payload-corrupted according
//    to per-direction rates drawn from a seeded xoshiro stream — the
//    same seed always produces the same schedule of decisions, so every
//    failure a test or bench observes is reproducible. Decorate both
//    ends of an in-process pair and you cover both directions.
//  * kRecvSide — the same four decisions applied to frames as they
//    ARRIVE (send is a pass-through). This exists for the process
//    transports (fork/tcp), where the node end of the link lives in a
//    spawned child and cannot be decorated: the coordinator's endpoint
//    is double-decorated instead — an inner kRecvSide injector playing
//    the node→coordinator direction at intake, wrapped by an outer
//    kSendSide injector playing coordinator→node on the way out. The
//    decision schedule is a pure function of (seed, arrival index), so
//    runs are reproducible per-receive-order rather than per-send-order
//    — the soak tests assert convergence, not schedule equality.
//
// Failure modes and how the system above survives them:
//   drop      — frame vanishes (returns kOk to the caller, like a
//               switch eating a packet). The coordinator's retry layer
//               re-sends unanswered chunks.
//   delay     — frame is queued and delivered late by a background
//               thread (still in seq order relative to nothing — late
//               frames reorder past punctual ones, exactly like a
//               congested path). Retries may race the late original;
//               chunk ids dedupe the answers.
//   duplicate — frame delivered twice. Same dedupe.
//   corrupt   — 1-4 payload bytes flipped AFTER the checksum was
//               sealed, so the receiver's transport reports kCorrupt
//               and drops exactly that frame; headers are never
//               touched, so the stream stays framed (a real link's
//               CRC-failed frame, not a poisoned stream).
//   partition — FaultController::partition(true) black-holes EVERY
//               frame in both decorated directions until switched off
//               or heal()ed, regardless of rates: the wire is cut, the
//               endpoints don't know it.
//
// The shared FaultController is the live switchboard: arm() starts
// injection, heal() stops it (and lifts a partition); stats() counts
// what was done to the traffic. ClusterConfig carries a FaultConfig and
// the cluster build phase always runs healed — faults arm only once the
// index is serving, because build retries are (deliberately) not a
// thing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/net/transport.hpp"

namespace dici::net {

/// Per-direction injection rates, each a probability in [0, 1] drawn
/// independently per frame.
struct FaultRates {
  double drop = 0.0;
  double delay = 0.0;
  double duplicate = 0.0;
  double corrupt = 0.0;
  /// How late a delayed frame is delivered: uniform in (0, delay_ns].
  std::uint64_t delay_ns = 2'000'000;  // 2ms

  bool any() const {
    return drop > 0.0 || delay > 0.0 || duplicate > 0.0 || corrupt > 0.0;
  }
};

struct FaultConfig {
  /// Seed of the per-direction decision streams (direction-salted, so
  /// the two sides of a pair draw different but equally reproducible
  /// schedules).
  std::uint64_t seed = 0x5eed;
  /// Arm injection as soon as the controller exists (for a cluster:
  /// as soon as the build phase completes). When false, faults start
  /// only on an explicit FaultController::arm().
  bool armed = true;
  FaultRates to_node;         ///< coordinator -> node direction
  FaultRates to_coordinator;  ///< node -> coordinator direction

  bool enabled() const { return to_node.any() || to_coordinator.any(); }
};

/// What the injector did to the traffic (both directions summed).
/// `forwarded` counts frames passed through untouched while armed.
struct FaultStats {
  std::uint64_t forwarded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
};

/// The live switchboard shared by the two decorated endpoints of a
/// link. All methods are thread-safe.
class FaultController {
 public:
  void arm() { armed_.store(true, std::memory_order_release); }
  /// Stop injecting and lift any partition. Frames already queued for
  /// delayed delivery still arrive (they are "in flight on the wire").
  void heal() {
    armed_.store(false, std::memory_order_release);
    partitioned_.store(false, std::memory_order_release);
  }
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Cut (or restore) the wire: while partitioned, every frame in both
  /// decorated directions is silently dropped, independent of rates and
  /// of armed().
  void partition(bool on) {
    partitioned_.store(on, std::memory_order_release);
  }
  bool partitioned() const {
    return partitioned_.load(std::memory_order_acquire);
  }

  FaultStats stats() const;

 private:
  friend class FaultInjectingEndpoint;

  struct DirectionCounters {
    std::atomic<std::uint64_t> forwarded{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> delayed{0};
    std::atomic<std::uint64_t> duplicated{0};
    std::atomic<std::uint64_t> corrupted{0};
  };

  std::atomic<bool> armed_{false};
  std::atomic<bool> partitioned_{false};
  DirectionCounters to_node_;
  DirectionCounters to_coordinator_;
};

/// The decorator. Wraps one side of a link; `counters` selects which of
/// the controller's direction slots this side's injections land in.
class FaultInjectingEndpoint final : public Endpoint {
 public:
  enum class Direction { kToNode, kToCoordinator };
  /// Which side of the traffic the four decisions apply to (see the
  /// header comment; kRecvSide is for links whose far end is a spawned
  /// process).
  enum class Mode { kSendSide, kRecvSide };

  FaultInjectingEndpoint(std::unique_ptr<Endpoint> inner,
                         std::shared_ptr<FaultController> controller,
                         Direction direction, const FaultRates& rates,
                         std::uint64_t seed, Mode mode = Mode::kSendSide);
  ~FaultInjectingEndpoint() override;

  SendResult send(const Frame& frame,
                  std::chrono::nanoseconds timeout) override;
  RecvResult recv(Frame* frame, std::chrono::nanoseconds timeout,
                  std::string* error) override;
  void close() override;
  SendStats send_stats() const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// A transport pair with both directions decorated and wired to one
/// controller. The controller starts healed unless `config.armed`.
struct FaultyPair {
  std::unique_ptr<Endpoint> coordinator;
  std::unique_ptr<Endpoint> node;
  std::shared_ptr<FaultController> controller;
};

FaultyPair make_faulty_transport_pair(TransportKind kind,
                                      const FaultConfig& config,
                                      std::size_t ring_frames = 1024);

}  // namespace dici::net
