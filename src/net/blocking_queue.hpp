// Bounded-optional MPMC blocking queue for the native (threaded) engines.
//
// Plays the role MPICH played on the paper's cluster: a slave blocks in
// pop() until a batch arrives; close() is the end-of-stream marker that
// replaces the paper's implicit "8 million keys then stop".
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace dici::net {

template <typename T>
class BlockingQueue {
 public:
  /// Push one item; wakes one waiting consumer. Pushing after close()
  /// is a programming error and the item is dropped in release terms —
  /// we assert instead.
  void push(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return;  // benign in shutdown races; nothing waits on it
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Block until an item or close(). Empty optional means closed+drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Signal end-of-stream; wakes all consumers. Idempotent.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace dici::net
