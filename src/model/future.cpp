#include "src/model/future.hpp"

namespace dici::model {

std::vector<FuturePoint> future_series(const FutureConfig& config,
                                       std::uint32_t years) {
  const auto geometry = index::compute_geometry(config.index_keys,
                                                config.tree);
  const std::uint32_t slaves = config.num_nodes - 1;
  std::vector<FuturePoint> series;
  series.reserve(years + 1);
  for (std::uint32_t y = 0; y <= years; ++y) {
    const auto machine =
        arch::scale_years(config.base, static_cast<double>(y),
                          config.trends);
    FuturePoint pt;
    pt.year = y;
    // Methods A/B run replicated on all nodes: normalize by cluster size.
    pt.method_a_ns = method_a_per_key(machine, geometry).total_ns() /
                     config.num_nodes;
    pt.method_b_ns = method_b_per_key(machine, geometry, config.batch_keys,
                                      config.subtree_levels)
                         .total_ns() /
                     config.num_nodes;
    const auto c_params = c_params_for_sorted_array(
        config.index_keys / slaves, machine, slaves);
    pt.method_c3_ns = method_c_per_key_ns(machine, c_params);

    const double keys = static_cast<double>(config.total_keys);
    pt.method_a_sec = pt.method_a_ns * keys * 1e-9;
    pt.method_b_sec = pt.method_b_ns * keys * 1e-9;
    pt.method_c3_sec = pt.method_c3_ns * keys * 1e-9;
    series.push_back(pt);
  }
  return series;
}

}  // namespace dici::model
