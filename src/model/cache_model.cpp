#include "src/model/cache_model.hpp"

#include <cmath>
#include <limits>

#include "src/util/assert.hpp"

namespace dici::model {

double xd(double lambda, double q) {
  DICI_CHECK(lambda >= 1.0);
  DICI_CHECK(q >= 0.0);
  // lambda * (1 - (1-1/lambda)^q), computed stably: for large lambda,
  // (1-1/lambda)^q = exp(q * log1p(-1/lambda)).
  const double log_keep = std::log1p(-1.0 / lambda);
  return lambda * -std::expm1(q * log_keep);
}

double expected_distinct_lines(const index::TreeGeometry& geometry,
                               double q) {
  double total = 0.0;
  for (const auto lines : geometry.lines)
    total += xd(static_cast<double>(lines), q);
  return total;
}

double cold_misses_per_lookup(const index::TreeGeometry& geometry, double q) {
  DICI_CHECK(q > 0.0);
  return expected_distinct_lines(geometry, q) / q;
}

double solve_q0(const index::TreeGeometry& geometry, double cache_lines) {
  DICI_CHECK(cache_lines > 0.0);
  const double tree_lines = static_cast<double>(geometry.total_lines());
  if (tree_lines <= cache_lines)
    return std::numeric_limits<double>::infinity();
  // expected_distinct_lines is monotone increasing in q from 0 to
  // tree_lines; bisect until the bracket is tight.
  double lo = 0.0;
  double hi = 1.0;
  while (expected_distinct_lines(geometry, hi) < cache_lines) hi *= 2.0;
  for (int iter = 0; iter < 200 && hi - lo > 1e-9 * (1.0 + hi); ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (expected_distinct_lines(geometry, mid) < cache_lines) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double steady_state_misses_per_lookup(const index::TreeGeometry& geometry,
                                      double cache_lines) {
  const double q0 = solve_q0(geometry, cache_lines);
  if (!std::isfinite(q0)) return 0.0;
  // Eq. 4: sum_i XD(lambda_i, q0+1) - sum_i XD(lambda_i, q0); the second
  // term equals cache_lines by construction of q0 (Eq. 5).
  return expected_distinct_lines(geometry, q0 + 1.0) -
         expected_distinct_lines(geometry, q0);
}

}  // namespace dici::model
