#include "src/model/method_costs.hpp"

#include <algorithm>
#include <cmath>

#include "src/model/cache_model.hpp"
#include "src/util/assert.hpp"

namespace dici::model {

namespace {

double w1_ns_per_byte(const arch::MachineSpec& m) {
  return 1.0 / m.mem_seq_bytes_per_ns();
}

double w2_ns_per_byte(const arch::MachineSpec& m) {
  return 1.0 / m.net_bytes_per_ns();
}

}  // namespace

CostBreakdown method_a_per_key(const arch::MachineSpec& machine,
                               const index::TreeGeometry& geometry) {
  CostBreakdown c;
  const double T = geometry.levels();
  c.compute_ns = T * machine.comp_cost_node_ns;
  // Read the key from the input buffer, write the result to the output
  // buffer: 4 bytes each, sequential.
  c.buffer_ns = 8.0 * w1_ns_per_byte(machine);
  const double cache_lines = static_cast<double>(machine.l2.size_bytes) /
                             machine.l2.line_bytes;
  c.tree_ns = steady_state_misses_per_lookup(geometry, cache_lines) *
              machine.l2.miss_penalty_ns;
  return c;
}

CostBreakdown method_b_per_key(const arch::MachineSpec& machine,
                               const index::TreeGeometry& geometry,
                               double batch_keys, double subtree_levels) {
  DICI_CHECK(batch_keys >= 1.0);
  DICI_CHECK(subtree_levels >= 1.0);
  CostBreakdown c;
  const double T = geometry.levels();
  const double stages = T / subtree_levels;  // T/L as written in the paper
  c.compute_ns = T * machine.comp_cost_node_ns;

  // theta1 (Eq. 6): amortized cost of streaming each subtree's lines
  // into L2 once per batch pass.
  const double theta1 = cold_misses_per_lookup(geometry, batch_keys) *
                        machine.l2.miss_penalty_ns;
  // theta2 (Eq. 7): the remaining per-level accesses hit in L2 and pay
  // the L2->L1 penalty.
  const double theta2 =
      (T - cold_misses_per_lookup(geometry, batch_keys)) *
      machine.l1.miss_penalty_ns;
  c.tree_ns = theta1 + theta2;

  // Buffer reads: one sequential 4-byte read per stage.
  c.buffer_ns = 4.0 * w1_ns_per_byte(machine) * stages;
  // Buffer writes: one 4-byte write to a *randomly selected* buffer per
  // stage transition; charged as a fraction 4/B2 of a full line miss.
  c.buffer_ns += machine.l2.miss_penalty_ns *
                 (4.0 / machine.l2.line_bytes) * (stages - 1.0);
  return c;
}

MethodCParams c_params_for_tree(std::uint32_t slave_levels,
                                std::uint32_t num_slaves) {
  MethodCParams p;
  p.num_slaves = num_slaves;
  p.slave_touch_levels = slave_levels;
  p.slave_comp_node_equivalents = slave_levels;
  return p;
}

MethodCParams c_params_for_sorted_array(std::uint64_t partition_keys,
                                        const arch::MachineSpec& machine,
                                        std::uint32_t num_slaves) {
  MethodCParams p;
  p.num_slaves = num_slaves;
  const double probes = std::log2(static_cast<double>(partition_keys));
  const double keys_per_line =
      static_cast<double>(machine.l2.line_bytes) / sizeof(std::uint32_t);
  // Binary search touches ~log2(n) lines until the range narrows to one
  // line, whose last log2(keys_per_line) probes stay within it.
  p.slave_touch_levels = std::max(1.0, probes - std::log2(keys_per_line));
  // Comparisons: log2(n) of them, log2(keys_per_line) per node-equivalent.
  p.slave_comp_node_equivalents = probes / std::log2(keys_per_line);
  return p;
}

CostBreakdown method_c_master_per_key(const arch::MachineSpec& machine,
                                      const MethodCParams& params) {
  CostBreakdown c;
  c.compute_ns = params.dispatch_ns;
  // Read the key from the query stream, append it to a message buffer.
  c.buffer_ns = 8.0 * w1_ns_per_byte(machine);
  if (params.master_pays_network)
    c.network_ns = 4.0 * w2_ns_per_byte(machine);
  const double inv = 1.0 / params.num_masters;
  c.compute_ns *= inv;
  c.buffer_ns *= inv;
  c.network_ns *= inv;
  return c;
}

CostBreakdown method_c_slave_per_key(const arch::MachineSpec& machine,
                                     const MethodCParams& params) {
  CostBreakdown c;
  c.compute_ns =
      params.slave_comp_node_equivalents * machine.comp_cost_node_ns;
  // Partition fits L2 but not L1: every touched level is an L1 miss.
  c.tree_ns = params.slave_touch_levels * machine.l1.miss_penalty_ns;
  // Read key from the incoming message, write result to the outgoing one.
  c.buffer_ns = 8.0 * w1_ns_per_byte(machine);
  // Send the result to the target.
  c.network_ns = 4.0 * w2_ns_per_byte(machine);
  const double inv = 1.0 / params.num_slaves;
  c.compute_ns *= inv;
  c.tree_ns *= inv;
  c.buffer_ns *= inv;
  c.network_ns *= inv;
  return c;
}

double method_c_per_key_ns(const arch::MachineSpec& machine,
                           const MethodCParams& params) {
  return std::max(method_c_master_per_key(machine, params).total_ns(),
                  method_c_slave_per_key(machine, params).total_ns());
}

}  // namespace dici::model
