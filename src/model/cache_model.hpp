// The cache-performance model of Appendix A (following Hankins & Patel):
// level-dependent access probabilities for tree traversal.
//
//   X_D(lambda_i, q) = lambda_i * (1 - (1 - 1/lambda_i)^q)        (Eq. 2)
//
// is the expected number of *distinct* cache lines touched at a tree
// level holding lambda_i lines after q independent lookups. Summed over
// levels and compared against cache capacity it yields q0, the number of
// lookups that exactly fills the cache (Eq. 3), and from there the
// steady-state misses per lookup (Eqs. 4/5).
#pragma once

#include <cstdint>
#include <vector>

#include "src/index/geometry.hpp"

namespace dici::model {

/// Eq. 2. `lambda` = lines at the level, `q` = number of lookups so far.
/// Continuous in q (the q0 solver bisects over real q).
double xd(double lambda, double q);

/// Sum of Eq. 2 over all levels of `geometry` (lambda_i = lines[i]).
double expected_distinct_lines(const index::TreeGeometry& geometry, double q);

/// Eq. 1 divided by q: expected cache misses per lookup while the tree
/// streams through a cold cache of unbounded size (used for Method B's
/// per-batch subtree loads, Eq. 6).
double cold_misses_per_lookup(const index::TreeGeometry& geometry, double q);

/// Eq. 3: the q0 with expected_distinct_lines(q0) == cache_lines.
/// Returns +infinity when the whole tree fits in the cache (no q fills
/// it) — steady_state_misses_per_lookup is then 0.
double solve_q0(const index::TreeGeometry& geometry, double cache_lines);

/// Eqs. 4/5: expected misses for one more lookup once the cache is full.
double steady_state_misses_per_lookup(const index::TreeGeometry& geometry,
                                      double cache_lines);

}  // namespace dici::model
