// Section 4.2: "Predicting the Future" — the model re-evaluated on
// technology-scaled machines (Figure 4).
#pragma once

#include <cstdint>
#include <vector>

#include "src/arch/machine.hpp"
#include "src/index/geometry.hpp"
#include "src/model/method_costs.hpp"

namespace dici::model {

struct FuturePoint {
  double year = 0;
  double method_a_ns = 0;   ///< per-key ns, normalized over the cluster
  double method_b_ns = 0;
  double method_c3_ns = 0;
  /// Normalized total seconds for `total_keys` lookups (the Figure 4 /
  /// Table 3 presentation).
  double method_a_sec = 0;
  double method_b_sec = 0;
  double method_c3_sec = 0;
};

struct FutureConfig {
  arch::MachineSpec base;               ///< year-0 machine
  arch::TechTrends trends;              ///< growth assumptions (Sec. 4.2)
  /// Replicated-tree layout for A/B: B+-style leaves (key + record ptr).
  index::TreeConfig tree{32, index::TreeLayout::kExplicitPointers, 8};
  std::uint64_t index_keys = 327'680;   ///< Table 1
  std::uint64_t total_keys = 1ull << 23;
  double batch_keys = (128.0 * 1024) / 4;  ///< 128 KB batches (Table 3)
  std::uint32_t num_nodes = 11;         ///< A/B normalization & C cluster
  double subtree_levels = 6;            ///< L for Method B
};

/// Evaluate the three modeled methods at integer years [0, years].
std::vector<FuturePoint> future_series(const FutureConfig& config,
                                       std::uint32_t years);

}  // namespace dici::model
