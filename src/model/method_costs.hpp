// Per-key cost equations for Methods A, B and C (Appendix A.2).
//
// All results are nanoseconds per search key on the *owning* node;
// normalization across replicated nodes (dividing Methods A/B by the
// cluster size, Sec. 4.1) is the caller's choice, mirroring the paper.
#pragma once

#include <cstdint>

#include "src/arch/machine.hpp"
#include "src/index/geometry.hpp"

namespace dici::model {

/// Additive cost components; total() is the per-key time.
struct CostBreakdown {
  double compute_ns = 0;  ///< key comparisons / node traversal
  double buffer_ns = 0;   ///< sequential buffer reads/writes at W1
  double tree_ns = 0;     ///< index access (cache miss penalties)
  double network_ns = 0;  ///< wire transfer at W2 (latency amortized away)

  double total_ns() const {
    return compute_ns + buffer_ns + tree_ns + network_ns;
  }
};

/// Method A (Sec. A.2.1): per-key cost of one-by-one lookups over a
/// replicated tree that overflows the L2 cache:
///   T*comp + 8/W1 + steady_state_misses * B2_penalty.
CostBreakdown method_a_per_key(const arch::MachineSpec& machine,
                               const index::TreeGeometry& geometry);

/// Method B (Sec. A.2.2): buffered batch lookups, subtrees of L levels:
///   T*comp + theta1 + theta2 + (4/W1)*(T/L) + B2pen*(4/B2)*(T/L - 1)
/// with theta1/theta2 from Eqs. 6/7 at `batch_keys` keys per batch.
CostBreakdown method_b_per_key(const arch::MachineSpec& machine,
                               const index::TreeGeometry& geometry,
                               double batch_keys, double subtree_levels);

/// Inputs for Eq. 8 (Method C). The slave structure is abstracted as
/// "touch_levels" line accesses (each an L1 miss: the partition lives in
/// L2 but not L1) and "comp_node_equivalents" units of Comp_Cost_Node.
struct MethodCParams {
  std::uint32_t num_masters = 1;
  std::uint32_t num_slaves = 10;
  double slave_touch_levels = 6;
  double slave_comp_node_equivalents = 6;
  /// Master-side routing cost per key. The paper's Table 3 numbers are
  /// reproduced with 0 (dispatch cost neglected / overlapped).
  double dispatch_ns = 0.0;
  /// Whether the master's 4/W2 send term competes with computation.
  /// The paper notes communication overlaps computation and its Table 3
  /// prediction matches the slave-side bound, so default off.
  bool master_pays_network = false;
};

/// Slave structure descriptors.
MethodCParams c_params_for_tree(std::uint32_t slave_levels,
                                std::uint32_t num_slaves);
MethodCParams c_params_for_sorted_array(std::uint64_t partition_keys,
                                        const arch::MachineSpec& machine,
                                        std::uint32_t num_slaves);

/// Master-side per-key cost (first arm of Eq. 8), divided by num_masters.
CostBreakdown method_c_master_per_key(const arch::MachineSpec& machine,
                                      const MethodCParams& params);

/// Slave-side per-key cost (second arm of Eq. 8), divided by num_slaves.
CostBreakdown method_c_slave_per_key(const arch::MachineSpec& machine,
                                     const MethodCParams& params);

/// Eq. 8: max of the two arms (master and slaves run in parallel).
double method_c_per_key_ns(const arch::MachineSpec& machine,
                           const MethodCParams& params);

}  // namespace dici::model
