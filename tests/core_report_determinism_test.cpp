// Determinism regression: the same Rng seed must yield a byte-identical
// RunReport from SimCluster across two independent runs — the guard that
// lets refactors (like the Engine seam) prove they didn't perturb the
// discrete-event accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "src/core/sim_engine.hpp"
#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"
#include "src/workload/workload.hpp"

namespace dici::core {
namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_double(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Flatten every field of a RunReport (including all per-node stats) into
/// a canonical byte string so "byte-identical" is a single EXPECT_EQ.
std::vector<std::uint8_t> serialize(const RunReport& r) {
  std::vector<std::uint8_t> out;
  put_u64(out, static_cast<std::uint64_t>(r.method));
  put_u64(out, r.num_queries);
  put_u64(out, r.num_nodes);
  put_u64(out, r.batch_bytes);
  put_u64(out, r.raw_makespan);
  put_u64(out, r.makespan);
  put_double(out, r.slave_idle_fraction);
  put_u64(out, r.messages);
  put_u64(out, r.wire_bytes);
  put_u64(out, r.latency_ns.count());
  if (r.latency_ns.count() > 0) {
    put_double(out, r.latency_ns.mean());
    put_double(out, r.latency_ns.min());
    put_double(out, r.latency_ns.max());
    put_double(out, r.latency_ns.percentile(50.0));
    put_double(out, r.latency_ns.percentile(99.0));
  }
  put_u64(out, r.nodes.size());
  for (const NodeReport& n : r.nodes) {
    put_u64(out, n.finish);
    put_u64(out, n.busy);
    put_u64(out, n.idle);
    put_u64(out, n.queries);
    put_u64(out, n.charges.compute);
    put_u64(out, n.charges.l2_hit);
    put_u64(out, n.charges.memory);
    put_u64(out, n.charges.stream);
    put_u64(out, n.charges.tlb);
    put_u64(out, n.l1.hits);
    put_u64(out, n.l1.misses);
    put_u64(out, n.l1.evictions);
    put_u64(out, n.l2.hits);
    put_u64(out, n.l2.misses);
    put_u64(out, n.l2.evictions);
    put_u64(out, n.tlb.hits);
    put_u64(out, n.tlb.misses);
    put_u64(out, n.nic.messages_sent);
    put_u64(out, n.nic.bytes_sent);
    put_u64(out, n.nic.messages_received);
    put_u64(out, n.nic.bytes_received);
    put_u64(out, n.nic.egress_busy);
    put_u64(out, n.nic.ingress_busy);
  }
  return out;
}

struct RunOutput {
  std::vector<std::uint8_t> report_bytes;
  std::vector<rank_t> ranks;
};

RunOutput run_once(Method method, std::uint64_t seed) {
  // Regenerate the workload from the seed inside each run: determinism
  // must hold end to end (generation + simulation), not just for a
  // shared in-memory workload.
  Rng rng(seed);
  const auto keys = workload::make_sorted_unique_keys(20000, rng);
  const auto queries = workload::make_uniform_queries(30000, rng);
  ExperimentConfig cfg;
  cfg.method = method;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 5;
  cfg.batch_bytes = 32 * KiB;
  cfg.track_latency = true;
  RunOutput out;
  const RunReport report = SimCluster(cfg).run(keys, queries, &out.ranks);
  out.report_bytes = serialize(report);
  return out;
}

class DeterminismPerMethod : public ::testing::TestWithParam<Method> {};

TEST_P(DeterminismPerMethod, SameSeedSameReportBytes) {
  const RunOutput first = run_once(GetParam(), 987654321);
  const RunOutput second = run_once(GetParam(), 987654321);
  EXPECT_EQ(first.report_bytes, second.report_bytes);
  EXPECT_EQ(first.ranks, second.ranks);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, DeterminismPerMethod,
                         ::testing::Values(Method::kA, Method::kB,
                                           Method::kC1, Method::kC2,
                                           Method::kC3),
                         [](const auto& info) {
                           std::string n = method_name(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST(Determinism, DifferentSeedsDiffer) {
  // Sanity that the serializer actually discriminates: a different
  // workload must not collide byte-for-byte.
  const RunOutput a = run_once(Method::kC3, 1);
  const RunOutput b = run_once(Method::kC3, 2);
  EXPECT_NE(a.report_bytes, b.report_bytes);
}

TEST(Determinism, WorkloadGenerationIsReproducible) {
  Rng rng_a(777);
  Rng rng_b(777);
  EXPECT_EQ(workload::make_sorted_unique_keys(5000, rng_a),
            workload::make_sorted_unique_keys(5000, rng_b));
  EXPECT_EQ(workload::make_uniform_queries(5000, rng_a),
            workload::make_uniform_queries(5000, rng_b));
}

}  // namespace
}  // namespace dici::core
