#include "src/index/fast_search.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/util/rng.hpp"
#include "src/workload/workload.hpp"

namespace dici::index {
namespace {

rank_t reference(std::span<const key_t> keys, key_t q) {
  return static_cast<rank_t>(
      std::upper_bound(keys.begin(), keys.end(), q) - keys.begin());
}

TEST(FastSearch, EmptyArray) {
  const std::span<const key_t> empty;
  EXPECT_EQ(branchless_upper_bound(empty, 5), 0u);
  EXPECT_EQ(prefetch_upper_bound(empty, 5), 0u);
}

TEST(FastSearch, SingleElement) {
  const std::vector<key_t> keys{10};
  for (const key_t q : {0u, 9u, 10u, 11u, 0xFFFFFFFFu}) {
    EXPECT_EQ(branchless_upper_bound(keys, q), reference(keys, q)) << q;
    EXPECT_EQ(prefetch_upper_bound(keys, q), reference(keys, q)) << q;
  }
}

TEST(FastSearch, ExhaustiveSmall) {
  const std::vector<key_t> keys{2, 4, 4 + 2, 8, 16, 32, 33};
  for (key_t q = 0; q < 40; ++q) {
    ASSERT_EQ(branchless_upper_bound(keys, q), reference(keys, q)) << q;
    ASSERT_EQ(prefetch_upper_bound(keys, q), reference(keys, q)) << q;
  }
}

class FastSearchSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FastSearchSizes, MatchesStdUpperBound) {
  Rng rng(GetParam() * 13 + 5);
  const auto keys = workload::make_sorted_unique_keys(GetParam(), rng);
  for (int i = 0; i < 5000; ++i) {
    const key_t q = static_cast<key_t>(rng.next());
    const rank_t expected = reference(keys, q);
    ASSERT_EQ(branchless_upper_bound(keys, q), expected);
    ASSERT_EQ(prefetch_upper_bound(keys, q), expected);
  }
  // Boundary probes at the stored keys.
  for (std::size_t i = 0; i < keys.size(); i += keys.size() / 64 + 1) {
    ASSERT_EQ(branchless_upper_bound(keys, keys[i]), reference(keys, keys[i]));
    ASSERT_EQ(prefetch_upper_bound(keys, keys[i]), reference(keys, keys[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FastSearchSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 100, 4096,
                                           65536, 500000));

TEST(FastSearch, ExtremeValues) {
  const std::vector<key_t> keys{0, 1, 0xFFFFFFFEu, 0xFFFFFFFFu};
  for (const key_t q : {0u, 1u, 2u, 0xFFFFFFFEu, 0xFFFFFFFFu}) {
    EXPECT_EQ(branchless_upper_bound(keys, q), reference(keys, q)) << q;
    EXPECT_EQ(prefetch_upper_bound(keys, q), reference(keys, q)) << q;
  }
}

}  // namespace
}  // namespace dici::index
