#include "src/index/partitioner.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/index/sorted_array.hpp"
#include "src/util/rng.hpp"
#include "src/workload/workload.hpp"

namespace dici::index {
namespace {

TEST(Partitioner, SinglePartitionOwnsEverything) {
  const std::vector<key_t> keys{1, 2, 3, 4, 5};
  const RangePartitioner part(keys, 1);
  EXPECT_EQ(part.parts(), 1u);
  EXPECT_EQ(part.start_of(0), 0u);
  EXPECT_EQ(part.end_of(0), 5u);
  EXPECT_EQ(part.route(0), 0u);
  EXPECT_EQ(part.route(0xFFFFFFFFu), 0u);
}

TEST(Partitioner, NearEqualSizes) {
  Rng rng(1);
  const auto keys = workload::make_sorted_unique_keys(100003, rng);
  const RangePartitioner part(keys, 10);
  for (std::uint32_t p = 0; p < 10; ++p) {
    EXPECT_NEAR(static_cast<double>(part.size_of(p)), 10000.3, 1.0);
  }
}

TEST(Partitioner, PartitionsCoverArrayExactly) {
  Rng rng(2);
  const auto keys = workload::make_sorted_unique_keys(1000, rng);
  const RangePartitioner part(keys, 7);
  rank_t expected_start = 0;
  for (std::uint32_t p = 0; p < 7; ++p) {
    EXPECT_EQ(part.start_of(p), expected_start);
    expected_start = part.end_of(p);
    const auto slice = part.keys_of(p);
    EXPECT_TRUE(std::equal(slice.begin(), slice.end(),
                           keys.begin() + part.start_of(p)));
  }
  EXPECT_EQ(expected_start, keys.size());
}

TEST(Partitioner, RouteInvariantHoldsForRandomQueries) {
  // The central correctness property (Sec. 3.2): a query's global
  // upper-bound rank always lies within its routed partition's range, so
  // slave-local rank + partition start is exact.
  Rng rng(3);
  const auto keys = workload::make_sorted_unique_keys(50000, rng);
  const RangePartitioner part(keys, 9);
  for (int i = 0; i < 20000; ++i) {
    const key_t q = static_cast<key_t>(rng.next());
    const std::uint32_t p = part.route(q);
    const auto global = static_cast<rank_t>(
        std::upper_bound(keys.begin(), keys.end(), q) - keys.begin());
    ASSERT_GE(global, part.start_of(p)) << "q=" << q;
    ASSERT_LE(global, part.end_of(p)) << "q=" << q;
    // And composing with the slave-side structure is exact:
    const SortedArrayIndex slave(part.keys_of(p));
    ASSERT_EQ(part.start_of(p) + slave.upper_bound_rank(q), global);
  }
}

TEST(Partitioner, RouteBoundaryKeys) {
  Rng rng(4);
  const auto keys = workload::make_sorted_unique_keys(10000, rng);
  const RangePartitioner part(keys, 8);
  for (std::uint32_t p = 1; p < 8; ++p) {
    const key_t first = keys[part.start_of(p)];
    // The first key of partition p routes to p; one less routes to p-1.
    EXPECT_EQ(part.route(first), p);
    EXPECT_EQ(part.route(first - 1), p - 1);
  }
}

TEST(Partitioner, AsManyPartitionsAsKeys) {
  const std::vector<key_t> keys{10, 20, 30, 40};
  const RangePartitioner part(keys, 4);
  for (std::uint32_t p = 0; p < 4; ++p) EXPECT_EQ(part.size_of(p), 1u);
  EXPECT_EQ(part.route(15), 0u);
  EXPECT_EQ(part.route(20), 1u);
  EXPECT_EQ(part.route(45), 3u);
}

TEST(PartitionerDeath, RejectsBadInputs) {
  const std::vector<key_t> keys{1, 2, 3};
  EXPECT_DEATH(RangePartitioner(keys, 5), "more partitions than keys");
  const std::vector<key_t> empty;
  EXPECT_DEATH(RangePartitioner(empty, 1), "empty");
  const std::vector<key_t> unsorted{3, 1, 2};
  EXPECT_DEATH(RangePartitioner(unsorted, 1), "sorted");
}

class PartitionCounts : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PartitionCounts, CompositionIsAlwaysExact) {
  Rng rng(GetParam());
  const auto keys = workload::make_sorted_unique_keys(20011, rng);
  const RangePartitioner part(keys, GetParam());
  const auto queries = workload::make_uniform_queries(5000, rng);
  const auto expected = workload::reference_ranks(keys, queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const std::uint32_t p = part.route(queries[i]);
    const SortedArrayIndex slave(part.keys_of(p));
    ASSERT_EQ(part.start_of(p) + slave.upper_bound_rank(queries[i]),
              expected[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, PartitionCounts,
                         ::testing::Values(1, 2, 3, 5, 10, 16, 100, 1024));

}  // namespace
}  // namespace dici::index
