// The v2 Engine seam: shared immutable indexes, multi-client sessions,
// and the async submit/wait pipeline. The concurrency cases here are
// what the TSan CI job races: many clients on one shared Index,
// interleaved in-flight batches, every rank checked against
// std::upper_bound. Plus the edge cases the contract documents:
// zero-batch clients, empty query batches, wait-twice on a ticket, and
// destroying a client with tickets still in flight.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/core/engine.hpp"
#include "src/core/parallel_engine.hpp"
#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"
#include "src/workload/workload.hpp"

namespace dici::core {
namespace {

struct Fixture {
  std::vector<key_t> keys;
  std::vector<key_t> queries;
  std::vector<rank_t> expected;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    Rng rng(20260730);
    fx.keys = workload::make_sorted_unique_keys(20000, rng);
    fx.queries = workload::make_uniform_queries(40000, rng);
    fx.expected = workload::reference_ranks(fx.keys, fx.queries);
    return fx;
  }();
  return f;
}

std::shared_ptr<const Index> parallel_index(
    std::uint32_t threads, std::uint32_t shards = 0,
    SearchKernel kernel = SearchKernel::kBranchless) {
  ParallelConfig cfg;
  cfg.num_threads = threads;
  cfg.num_shards = shards;
  cfg.batch_bytes = 4 * KiB;
  cfg.kernel = kernel;
  return ParallelNativeEngine(cfg).build(fixture().keys);
}

// --- The build -> connect -> submit/wait shape ---------------------------

TEST(EngineV2, BuildConnectSubmitWait) {
  const auto& fx = fixture();
  const auto index = parallel_index(4);
  EXPECT_STREQ(index->backend(), "parallel-native");
  EXPECT_EQ(index->size(), fx.keys.size());
  const auto client = index->connect();
  std::vector<rank_t> ranks;
  const Ticket t = client->submit(fx.queries, &ranks);
  EXPECT_EQ(client->in_flight(), 1u);
  const RunReport report = client->wait(t);
  EXPECT_EQ(client->in_flight(), 0u);
  EXPECT_EQ(report.num_queries, fx.queries.size());
  ASSERT_EQ(ranks.size(), fx.expected.size());
  for (std::size_t i = 0; i < ranks.size(); ++i)
    ASSERT_EQ(ranks[i], fx.expected[i]) << "query " << i;
  EXPECT_EQ(client->batches(), 1u);
  EXPECT_EQ(client->total().num_queries, fx.queries.size());
}

TEST(EngineV2, IndexSharesOneKeyCopy) {
  const auto index = parallel_index(2);
  const key_t* stored = index->keys().data();
  // Every client streams against the same stored array — connect() does
  // not copy keys.
  const auto a = index->connect();
  const auto b = index->connect();
  EXPECT_EQ(a->index().keys().data(), stored);
  EXPECT_EQ(b->index().keys().data(), stored);
}

TEST(EngineV2, IndexOutlivesEngineAndEngineOutlivesNothing) {
  const auto& fx = fixture();
  std::shared_ptr<const Index> index;
  {
    ParallelConfig cfg;
    cfg.num_threads = 2;
    index = ParallelNativeEngine(cfg).build(fx.keys);
  }  // engine destroyed; the index owns keys, partitioner, workers
  const auto client = index->connect();
  std::vector<rank_t> ranks;
  client->wait(client->submit(std::span(fx.queries.data(), 1000), &ranks));
  for (std::size_t i = 0; i < 1000; ++i)
    ASSERT_EQ(ranks[i], fx.expected[i]);
}

TEST(EngineV2, EveryBackendSpeaksV2) {
  const auto& fx = fixture();
  ExperimentConfig cfg;
  cfg.method = Method::kC3;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 4;
  cfg.batch_bytes = 8 * KiB;
  const std::span<const key_t> queries(fx.queries.data(), 6000);
  for (const Backend backend :
       {Backend::kSim, Backend::kNative, Backend::kParallelNative}) {
    const auto engine = make_engine(backend, cfg);
    const auto index = engine->build(fx.keys);
    EXPECT_STREQ(index->backend(), backend_name(backend));
    const auto client = index->connect();
    EXPECT_STREQ(client->backend(), backend_name(backend));
    std::vector<rank_t> a, b;
    const Ticket ta = client->submit(queries.subspan(0, 3000), &a);
    const Ticket tb = client->submit(queries.subspan(3000, 3000), &b);
    client->wait(ta);
    client->wait(tb);
    for (std::size_t i = 0; i < 3000; ++i) {
      ASSERT_EQ(a[i], fx.expected[i]) << backend_name(backend);
      ASSERT_EQ(b[i], fx.expected[3000 + i]) << backend_name(backend);
    }
    EXPECT_EQ(client->batches(), 2u);
    EXPECT_EQ(client->total().num_queries, queries.size());
    EXPECT_GT(client->total().makespan, 0u);
  }
}

// --- Pipelining: many tickets in flight on one client ---------------------

TEST(EngineV2, DeepPipelineRanksExact) {
  const auto& fx = fixture();
  const auto index = parallel_index(4, 7);
  const auto client = index->connect();
  const std::size_t B = 12;  // all 12 in flight before the first wait
  std::vector<std::vector<rank_t>> ranks(B);
  std::vector<Ticket> tickets(B);
  for (std::size_t b = 0; b < B; ++b) {
    const std::size_t begin = b * fx.queries.size() / B;
    const std::size_t end = (b + 1) * fx.queries.size() / B;
    tickets[b] = client->submit(
        std::span(fx.queries.data() + begin, end - begin), &ranks[b]);
  }
  EXPECT_EQ(client->in_flight(), B);
  // Wait out of submission order on purpose.
  for (std::size_t b = B; b-- > 0;) client->wait(tickets[b]);
  EXPECT_EQ(client->in_flight(), 0u);
  EXPECT_EQ(client->batches(), B);
  for (std::size_t b = 0; b < B; ++b) {
    const std::size_t begin = b * fx.queries.size() / B;
    for (std::size_t i = 0; i < ranks[b].size(); ++i)
      ASSERT_EQ(ranks[b][i], fx.expected[begin + i]) << "batch " << b;
  }
  EXPECT_EQ(client->total().num_queries, fx.queries.size());
}

TEST(EngineV2, DrainWaitsEverything) {
  const auto& fx = fixture();
  const auto index = parallel_index(3);
  const auto client = index->connect();
  std::vector<std::vector<rank_t>> ranks(5);
  for (std::size_t b = 0; b < 5; ++b)
    client->submit(std::span(fx.queries.data() + 100 * b, 100), &ranks[b]);
  const RunReport& total = client->drain();
  EXPECT_EQ(client->in_flight(), 0u);
  EXPECT_EQ(client->batches(), 5u);
  EXPECT_EQ(total.num_queries, 500u);
  for (std::size_t b = 0; b < 5; ++b)
    for (std::size_t i = 0; i < 100; ++i)
      ASSERT_EQ(ranks[b][i], fx.expected[100 * b + i]);
}

// --- The multi-client concurrency surface (TSan's main course) ------------

TEST(EngineV2, FourClientsOneIndexInterleavedBatches) {
  const auto& fx = fixture();
  const auto index = parallel_index(4, 5);
  constexpr int kClients = 4;
  constexpr std::size_t kBatches = 8;
  constexpr std::size_t kDepth = 3;
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> streams;
  streams.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    streams.emplace_back([&, c] {
      const auto client = index->connect();
      // Stagger each client's slicing so batch boundaries interleave
      // differently per client.
      const std::size_t n = fx.queries.size() - static_cast<std::size_t>(c);
      std::vector<std::vector<rank_t>> ranks(kBatches);
      std::vector<Ticket> tickets(kBatches);
      std::vector<std::size_t> begins(kBatches);
      auto settle = [&](std::size_t b) {
        client->wait(tickets[b]);
        for (std::size_t i = 0; i < ranks[b].size(); ++i)
          if (ranks[b][i] != fx.expected[begins[b] + i])
            mismatches.fetch_add(1, std::memory_order_relaxed);
      };
      for (std::size_t b = 0; b < kBatches; ++b) {
        if (b >= kDepth) settle(b - kDepth);
        begins[b] = b * n / kBatches;
        const std::size_t end = (b + 1) * n / kBatches;
        tickets[b] = client->submit(
            std::span(fx.queries.data() + begins[b], end - begins[b]),
            &ranks[b]);
      }
      for (std::size_t b = kBatches - kDepth; b < kBatches; ++b) settle(b);
      EXPECT_EQ(client->batches(), kBatches);
      EXPECT_EQ(client->total().num_queries, n);
    });
  }
  for (auto& s : streams) s.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(EngineV2, EveryKernelMultiClientExact) {
  // The ring-backed dispatch and the batch kernels under concurrent
  // clients: for each kernel, 3 clients pipeline staggered batches at
  // depth 2 against one shared index and every rank must stay exact.
  const auto& fx = fixture();
  for (const SearchKernel kernel : all_search_kernels()) {
    const auto index = parallel_index(4, 5, kernel);
    std::atomic<std::uint64_t> mismatches{0};
    std::vector<std::thread> streams;
    for (int c = 0; c < 3; ++c) {
      streams.emplace_back([&, c] {
        const auto client = index->connect();
        const std::size_t n = 12000 - static_cast<std::size_t>(c) * 7;
        constexpr std::size_t kBatches = 6;
        std::vector<std::vector<rank_t>> ranks(kBatches);
        std::vector<Ticket> tickets(kBatches);
        std::vector<std::size_t> begins(kBatches);
        auto settle = [&](std::size_t b) {
          client->wait(tickets[b]);
          for (std::size_t i = 0; i < ranks[b].size(); ++i)
            if (ranks[b][i] != fx.expected[begins[b] + i])
              mismatches.fetch_add(1, std::memory_order_relaxed);
        };
        for (std::size_t b = 0; b < kBatches; ++b) {
          if (b >= 2) settle(b - 2);
          begins[b] = b * n / kBatches;
          const std::size_t end = (b + 1) * n / kBatches;
          tickets[b] = client->submit(
              std::span(fx.queries.data() + begins[b], end - begins[b]),
              &ranks[b]);
        }
        for (std::size_t b = kBatches - 2; b < kBatches; ++b) settle(b);
      });
    }
    for (auto& s : streams) s.join();
    EXPECT_EQ(mismatches.load(), 0u) << search_kernel_name(kernel);
  }
}

TEST(EngineV2, ClientChurnOnRingDispatch) {
  // Connect/destroy clients repeatedly against one live index while a
  // long-lived client keeps streaming: exercises the dispatch hub's
  // channel registration, close, and prune paths (the dynamic-client
  // surface the per-worker rings have to survive).
  const auto& fx = fixture();
  const auto index = parallel_index(3, 4, SearchKernel::kBatchedEytzinger);
  std::atomic<std::uint64_t> mismatches{0};
  auto verify = [&](std::span<const rank_t> ranks, std::size_t begin) {
    for (std::size_t i = 0; i < ranks.size(); ++i)
      if (ranks[i] != fx.expected[begin + i])
        mismatches.fetch_add(1, std::memory_order_relaxed);
  };
  std::thread churner([&] {
    for (int g = 0; g < 25; ++g) {
      const auto client = index->connect();
      std::vector<rank_t> a, b;
      const std::size_t begin = static_cast<std::size_t>(g) * 31;
      const Ticket ta =
          client->submit(std::span(fx.queries.data() + begin, 700), &a);
      const Ticket tb =
          client->submit(std::span(fx.queries.data() + begin + 700, 700), &b);
      client->wait(ta);
      client->wait(tb);
      verify(a, begin);
      verify(b, begin + 700);
    }  // client destroyed with its channels closed each generation
  });
  {
    const auto steady = index->connect();
    for (int b = 0; b < 50; ++b) {
      std::vector<rank_t> ranks;
      const std::size_t begin = static_cast<std::size_t>(b) * 101;
      steady->wait(
          steady->submit(std::span(fx.queries.data() + begin, 500), &ranks));
      verify(ranks, begin);
    }
  }
  churner.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(EngineV2, DestroyClientsUnderLoadWhileOthersStream) {
  // The drain-then-close teardown raced against live traffic: churner
  // threads destroy clients WITH tickets still in flight (the dtor must
  // drain them) while other clients keep every worker's scan loop hot —
  // so channel close and prune happen exactly while workers are
  // mid-pop on sibling channels, and (with stealing on) while thieves
  // scan the victim hubs. A channel freed under a worker's scan is a
  // use-after-free this test exists to catch (ASan/TSan jobs race it).
  const auto& fx = fixture();
  const auto index = parallel_index(4, 6, SearchKernel::kBatchedEytzinger);
  std::atomic<std::uint64_t> mismatches{0};
  auto verify = [&](std::span<const rank_t> ranks, std::size_t begin) {
    for (std::size_t i = 0; i < ranks.size(); ++i)
      if (ranks[i] != fx.expected[begin + i])
        mismatches.fetch_add(1, std::memory_order_relaxed);
  };
  std::vector<std::thread> churners;
  for (int t = 0; t < 3; ++t) {
    churners.emplace_back([&, t] {
      for (int g = 0; g < 15; ++g) {
        const std::size_t begin =
            static_cast<std::size_t>(t) * 997 + static_cast<std::size_t>(g) * 13;
        std::vector<std::vector<rank_t>> ranks(4);
        {
          const auto client = index->connect();
          for (std::size_t b = 0; b < ranks.size(); ++b)
            client->submit(
                std::span(fx.queries.data() + begin + b * 400, 400),
                &ranks[b]);
          // NO wait: destruction drains the in-flight tickets, then
          // closes channels a worker may be scanning right now.
        }
        for (std::size_t b = 0; b < ranks.size(); ++b)
          verify(ranks[b], begin + b * 400);
      }
    });
  }
  {
    const auto steady = index->connect();
    std::vector<rank_t> ranks;
    for (int b = 0; b < 120; ++b) {
      const std::size_t begin = static_cast<std::size_t>(b) * 211;
      steady->wait(
          steady->submit(std::span(fx.queries.data() + begin, 600), &ranks));
      verify(ranks, begin);
    }
  }
  for (auto& t : churners) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(EngineV2, ConcurrentClientsOnSyncBackendsToo) {
  const auto& fx = fixture();
  ExperimentConfig cfg;
  cfg.method = Method::kC3;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 4;
  for (const Backend backend : {Backend::kSim, Backend::kNative}) {
    const auto index = make_engine(backend, cfg)->build(fx.keys);
    std::atomic<std::uint64_t> mismatches{0};
    std::vector<std::thread> streams;
    for (int c = 0; c < 3; ++c)
      streams.emplace_back([&] {
        const auto client = index->connect();
        std::vector<rank_t> ranks;
        client->wait(
            client->submit(std::span(fx.queries.data(), 2000), &ranks));
        for (std::size_t i = 0; i < 2000; ++i)
          if (ranks[i] != fx.expected[i])
            mismatches.fetch_add(1, std::memory_order_relaxed);
      });
    for (auto& s : streams) s.join();
    EXPECT_EQ(mismatches.load(), 0u) << backend_name(backend);
  }
}

// --- Edge cases the contract documents ------------------------------------

TEST(EngineV2, ZeroBatchClient) {
  const auto index = parallel_index(2);
  const auto client = index->connect();
  EXPECT_EQ(client->batches(), 0u);
  EXPECT_EQ(client->in_flight(), 0u);
  EXPECT_EQ(client->total().num_queries, 0u);
}  // destroyed without ever submitting — must not hang or leak

TEST(EngineV2, EmptyQueryBatch) {
  const auto& fx = fixture();
  const auto index = parallel_index(3);
  const auto client = index->connect();
  std::vector<rank_t> ranks(7, 123);  // stale contents must be cleared
  const RunReport report =
      client->wait(client->submit(std::span<const key_t>{}, &ranks));
  EXPECT_TRUE(ranks.empty());
  EXPECT_EQ(report.num_queries, 0u);
  EXPECT_EQ(report.messages, 0u);
  // The stream keeps working after an empty batch.
  client->wait(client->submit(std::span(fx.queries.data(), 100), &ranks));
  for (std::size_t i = 0; i < 100; ++i)
    ASSERT_EQ(ranks[i], fx.expected[i]);
  EXPECT_EQ(client->batches(), 2u);
  EXPECT_EQ(client->total().num_queries, 100u);
}

TEST(EngineV2Death, WaitTwiceAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto& fx = fixture();
  const auto index = parallel_index(2);
  const auto client = index->connect();
  std::vector<rank_t> ranks;
  const Ticket t =
      client->submit(std::span(fx.queries.data(), 500), &ranks);
  const RunReport first = client->wait(t);
  EXPECT_EQ(first.num_queries, 500u);
  EXPECT_EQ(client->batches(), 1u);
  EXPECT_EQ(client->total().num_queries, 500u);
  // A ticket is waited exactly once — its report is handed over, the
  // ledger retires it (O(in-flight) memory for any stream length), and
  // a second wait is a loud programming error, not a silent re-merge.
  EXPECT_DEATH(client->wait(t), "already waited");
  // The stream itself is still healthy after retirement.
  client->wait(client->submit(std::span(fx.queries.data(), 100), &ranks));
  EXPECT_EQ(client->batches(), 2u);
}

TEST(EngineV2, DestroyClientWithTicketsInFlight) {
  const auto& fx = fixture();
  const auto index = parallel_index(4);
  std::vector<std::vector<rank_t>> ranks(6);
  {
    const auto client = index->connect();
    for (std::size_t b = 0; b < 6; ++b)
      client->submit(std::span(fx.queries.data() + 500 * b, 500), &ranks[b]);
    // No wait: the destructor must drain, so every rank buffer below is
    // fully written before we read it.
  }
  for (std::size_t b = 0; b < 6; ++b) {
    ASSERT_EQ(ranks[b].size(), 500u);
    for (std::size_t i = 0; i < 500; ++i)
      ASSERT_EQ(ranks[b][i], fx.expected[500 * b + i]) << "batch " << b;
  }
}

TEST(EngineV2Death, ForeignTicketAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto& fx = fixture();
  const auto index = parallel_index(2);
  const auto a = index->connect();
  const auto b = index->connect();
  const Ticket t = a->submit(std::span(fx.queries.data(), 10));
  EXPECT_DEATH(b->wait(t), "different Client");
  EXPECT_DEATH(a->wait(Ticket{}), "different Client");
  a->drain();
}

// --- The surviving convenience wrapper stays faithful ---------------------
//
// The v1 Session surface (open()/run_batch()) was deleted on schedule;
// Engine::run is the one remaining wrapper and must keep matching the
// explicit build + connect + submit + wait path bit-for-bit.

TEST(EngineV2, RunWrapperMatchesClientRanks) {
  const auto& fx = fixture();
  ParallelConfig cfg;
  cfg.num_threads = 3;
  const ParallelNativeEngine engine(cfg);
  const std::span<const key_t> queries(fx.queries.data(), 4000);
  std::vector<rank_t> via_client;
  const auto client = engine.build(fx.keys)->connect();
  client->wait(client->submit(queries, &via_client));
  std::vector<rank_t> via_run;
  engine.run(fx.keys, queries, &via_run);
  EXPECT_EQ(via_client, via_run);
  for (std::size_t i = 0; i < queries.size(); ++i)
    ASSERT_EQ(via_run[i], fx.expected[i]) << "query " << i;
}

// --- RunReport::merge defense (documented mismatch semantics) -------------

TEST(RunReportMergeDefense, MismatchedNodeLayoutsDropDetailKeepScalars) {
  RunReport a;
  a.method = Method::kC3;
  a.num_queries = 10;
  a.raw_makespan = 100;
  a.makespan = 100;
  a.messages = 4;
  a.wire_bytes = 256;
  a.nodes.resize(3);
  a.nodes[1].queries = 10;
  RunReport b = a;
  b.num_queries = 20;
  b.nodes.resize(5);  // a different backend's layout
  a.merge(b);
  // Scalars stay exact...
  EXPECT_EQ(a.num_queries, 30u);
  EXPECT_EQ(a.makespan, 200);
  EXPECT_EQ(a.messages, 8u);
  EXPECT_EQ(a.wire_bytes, 512u);
  // ...and per-node detail is dropped, not concatenated or truncated.
  EXPECT_TRUE(a.nodes.empty());
  // Once dropped it stays dropped, even against an empty layout.
  RunReport c;
  c.method = Method::kC3;
  c.num_queries = 5;
  a.merge(c);
  EXPECT_EQ(a.num_queries, 35u);
  EXPECT_TRUE(a.nodes.empty());
}

TEST(RunReportMergeDefense, EmptyVsNonEmptyAlsoDrops) {
  RunReport native;  // NativeEngine reports no per-node detail
  native.method = Method::kC3;
  native.num_queries = 7;
  RunReport parallel;
  parallel.method = Method::kC3;
  parallel.num_queries = 9;
  parallel.nodes.resize(4);
  native.merge(parallel);
  EXPECT_EQ(native.num_queries, 16u);
  EXPECT_TRUE(native.nodes.empty());
}

TEST(RunReportMergeDefenseDeath, CrossMethodMergeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RunReport a;
  a.method = Method::kC3;
  RunReport b;
  b.method = Method::kA;
  EXPECT_DEATH(a.merge(b), "method mismatch");
}

}  // namespace
}  // namespace dici::core
