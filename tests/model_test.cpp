#include <gtest/gtest.h>

#include <cmath>

#include "src/model/cache_model.hpp"
#include "src/model/future.hpp"
#include "src/model/method_costs.hpp"
#include "src/util/bytes.hpp"

namespace dici::model {
namespace {

index::TreeGeometry paper_tree() {
  // The replicated A/B index: explicit pointers, B+-style leaves with a
  // record pointer per key — ~3.5 MB for 327 K keys, matching Table 1's
  // 3.2 MB "Index Tree Size" (see DESIGN.md §8).
  return index::compute_geometry(
      327680, {32, index::TreeLayout::kExplicitPointers, 8});
}

TEST(Xd, ZeroLookupsTouchNothing) { EXPECT_DOUBLE_EQ(xd(100.0, 0.0), 0.0); }

TEST(Xd, OneLookupTouchesOneLine) { EXPECT_NEAR(xd(100.0, 1.0), 1.0, 1e-9); }

TEST(Xd, SaturatesAtLambda) {
  EXPECT_NEAR(xd(50.0, 1e9), 50.0, 1e-6);
}

TEST(Xd, MonotoneInQ) {
  double prev = 0.0;
  for (double q = 0; q <= 1000; q += 50) {
    const double v = xd(200.0, q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Xd, NeverExceedsQorLambda) {
  // Distinct lines touched can exceed neither the level's size nor the
  // number of lookups (for whole lookups, q >= 1).
  for (double lambda : {1.0, 10.0, 1000.0}) {
    for (double q : {1.0, 2.0, 7.0, 500.0}) {
      const double v = xd(lambda, q);
      EXPECT_LE(v, lambda + 1e-9);
      EXPECT_LE(v, q + 1e-9);
    }
  }
}

TEST(Xd, SingleLineLevelIsTouchedImmediately) {
  // The root (lambda = 1) is touched by the first lookup.
  EXPECT_NEAR(xd(1.0, 1.0), 1.0, 1e-9);
  EXPECT_NEAR(xd(1.0, 100.0), 1.0, 1e-9);
}

TEST(SolveQ0, SatisfiesEquation3) {
  const auto g = paper_tree();
  const double cache_lines = 512.0 * KiB / 32;
  const double q0 = solve_q0(g, cache_lines);
  ASSERT_TRUE(std::isfinite(q0));
  EXPECT_NEAR(expected_distinct_lines(g, q0), cache_lines,
              cache_lines * 1e-6);
}

TEST(SolveQ0, InfiniteWhenTreeFits) {
  const auto g = index::compute_geometry(
      1000, {32, index::TreeLayout::kExplicitPointers});
  EXPECT_TRUE(std::isinf(solve_q0(g, 1e9)));
}

TEST(SteadyStateMisses, ZeroWhenTreeFits) {
  const auto g = index::compute_geometry(
      1000, {32, index::TreeLayout::kExplicitPointers});
  EXPECT_DOUBLE_EQ(steady_state_misses_per_lookup(g, 1e9), 0.0);
}

TEST(SteadyStateMisses, BoundedByLevels) {
  const auto g = paper_tree();
  const double m = steady_state_misses_per_lookup(g, 512.0 * KiB / 32);
  EXPECT_GT(m, 0.0);
  EXPECT_LE(m, static_cast<double>(g.levels()));
}

TEST(SteadyStateMisses, ShrinksWithBiggerCache) {
  const auto g = paper_tree();
  const double small = steady_state_misses_per_lookup(g, 256.0 * KiB / 32);
  const double large = steady_state_misses_per_lookup(g, 1024.0 * KiB / 32);
  EXPECT_GT(small, large);
}

TEST(MethodA, BreakdownIsPositiveAndDominatedByMisses) {
  const auto machine = arch::pentium3_cluster();
  const auto c = method_a_per_key(machine, paper_tree());
  EXPECT_GT(c.compute_ns, 0.0);
  EXPECT_GT(c.tree_ns, 0.0);
  EXPECT_GT(c.buffer_ns, 0.0);
  EXPECT_EQ(c.network_ns, 0.0);
  // Cache misses are the story of the paper: they must be a large share.
  EXPECT_GT(c.tree_ns, 0.3 * c.total_ns());
}

TEST(MethodA, Table3Ballpark) {
  // Paper Table 3: Method A predicted 0.45 s for 2^23 keys over 11 nodes.
  // Our tree geometry differs from the (internally inconsistent) Table 1
  // (see DESIGN.md), so allow a generous band.
  const auto machine = arch::pentium3_cluster();
  const double sec = method_a_per_key(machine, paper_tree()).total_ns() *
                     std::pow(2.0, 23) / 11 * 1e-9;
  EXPECT_GT(sec, 0.25);
  EXPECT_LT(sec, 0.65);
}

TEST(MethodB, ImprovesWithBatchSize) {
  const auto machine = arch::pentium3_cluster();
  const auto g = paper_tree();
  const double small = method_b_per_key(machine, g, 2048, 6).total_ns();
  const double large = method_b_per_key(machine, g, 1 << 20, 6).total_ns();
  EXPECT_GT(small, large);
}

TEST(MethodB, BeatsMethodAAtLargeBatches) {
  const auto machine = arch::pentium3_cluster();
  const auto g = paper_tree();
  // At Figure 3's right edge (4 MB batches = 2^20 keys) the subtree
  // loads amortize enough for B to undercut A despite its extra L1
  // traffic (theta2).
  EXPECT_LT(method_b_per_key(machine, g, 1 << 20, 6).total_ns(),
            method_a_per_key(machine, g).total_ns());
}

TEST(MethodB, BufferingReducesMemoryStalls) {
  // The mechanism of Zhou-Ross: at large batches the subtree loads
  // amortize, so B's index-access time undercuts A's per-lookup misses.
  const auto machine = arch::pentium3_cluster();
  const auto g = paper_tree();
  EXPECT_LT(method_b_per_key(machine, g, 1 << 20, 6).tree_ns +
                method_b_per_key(machine, g, 1 << 20, 6).buffer_ns,
            method_a_per_key(machine, g).tree_ns +
                method_a_per_key(machine, g).buffer_ns);
}

TEST(MethodC, SlaveArmScalesWithSlaves) {
  const auto machine = arch::pentium3_cluster();
  auto p = c_params_for_tree(6, 10);
  const double ten = method_c_slave_per_key(machine, p).total_ns();
  p.num_slaves = 20;
  const double twenty = method_c_slave_per_key(machine, p).total_ns();
  EXPECT_NEAR(twenty, ten / 2, 1e-9);
}

TEST(MethodC, Eq8TakesTheMax) {
  const auto machine = arch::pentium3_cluster();
  auto p = c_params_for_tree(6, 10);
  p.master_pays_network = true;
  p.dispatch_ns = 1000.0;  // force the master to dominate
  EXPECT_NEAR(method_c_per_key_ns(machine, p),
              method_c_master_per_key(machine, p).total_ns(), 1e-9);
  p.dispatch_ns = 0.0;
  p.num_slaves = 1;        // force the slave side to dominate
  EXPECT_NEAR(method_c_per_key_ns(machine, p),
              method_c_slave_per_key(machine, p).total_ns(), 1e-9);
}

TEST(MethodC, Table3Ballpark) {
  // Paper Table 3: Method C-3 predicted 0.28 s for 2^23 keys, 10 slaves.
  const auto machine = arch::pentium3_cluster();
  const auto p = c_params_for_sorted_array(327680 / 10, machine, 10);
  const double sec =
      method_c_per_key_ns(machine, p) * std::pow(2.0, 23) * 1e-9;
  EXPECT_GT(sec, 0.15);
  EXPECT_LT(sec, 0.45);
}

TEST(MethodC, BeatsAandBOnThePaperConfig) {
  const auto machine = arch::pentium3_cluster();
  const auto g = paper_tree();
  const double a = method_a_per_key(machine, g).total_ns() / 11;
  const double b = method_b_per_key(machine, g, 32768, 6).total_ns() / 11;
  const double c = method_c_per_key_ns(
      machine, c_params_for_sorted_array(327680 / 10, machine, 10));
  EXPECT_LT(c, a);
  EXPECT_LT(c, b);
}

TEST(Future, SeriesHasRequestedLength) {
  FutureConfig cfg;
  cfg.base = arch::pentium3_cluster();
  const auto series = future_series(cfg, 5);
  ASSERT_EQ(series.size(), 6u);
  EXPECT_EQ(series.front().year, 0);
  EXPECT_EQ(series.back().year, 5);
}

TEST(Future, AllMethodsGetFasterEveryYear) {
  FutureConfig cfg;
  cfg.base = arch::pentium3_cluster();
  const auto series = future_series(cfg, 5);
  for (std::size_t y = 1; y < series.size(); ++y) {
    EXPECT_LT(series[y].method_a_ns, series[y - 1].method_a_ns);
    EXPECT_LT(series[y].method_b_ns, series[y - 1].method_b_ns);
    EXPECT_LT(series[y].method_c3_ns, series[y - 1].method_c3_ns);
  }
}

TEST(Future, C3AdvantageOverBGrows) {
  // The paper's headline trend (Figure 4): B/C-3 grows from ~2x toward
  // ~10x over five years.
  FutureConfig cfg;
  cfg.base = arch::pentium3_cluster();
  const auto series = future_series(cfg, 5);
  const double ratio0 = series[0].method_b_ns / series[0].method_c3_ns;
  const double ratio5 = series[5].method_b_ns / series[5].method_c3_ns;
  EXPECT_GT(ratio5, 1.5 * ratio0);
  EXPECT_GT(ratio5, 2.0);
}

TEST(Future, C3AdvantageOverAGrows) {
  FutureConfig cfg;
  cfg.base = arch::pentium3_cluster();
  const auto series = future_series(cfg, 5);
  const double ratio0 = series[0].method_a_ns / series[0].method_c3_ns;
  const double ratio5 = series[5].method_a_ns / series[5].method_c3_ns;
  EXPECT_GT(ratio5, ratio0);
}

TEST(Future, SecondsConsistentWithPerKey) {
  FutureConfig cfg;
  cfg.base = arch::pentium3_cluster();
  const auto series = future_series(cfg, 0);
  EXPECT_NEAR(series[0].method_a_sec,
              series[0].method_a_ns * std::pow(2.0, 23) * 1e-9, 1e-9);
}

}  // namespace
}  // namespace dici::model
