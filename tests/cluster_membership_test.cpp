// The membership state machine in isolation: the full can_transition
// table (legal ladder edges, every illegal edge death-tested), the
// join -> ack -> alive ordering, heartbeat expiry to DEAD, re-join from
// DEAD, and the wire round trip of the broadcast cluster-info table.
#include "src/cluster/membership.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace dici::cluster {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

constexpr NodeStatus kAll[] = {NodeStatus::kNull, NodeStatus::kJoining,
                               NodeStatus::kAck, NodeStatus::kAlive,
                               NodeStatus::kDead};

// --- The transition table, exhaustively -----------------------------------

TEST(Membership, TransitionTableExactlyMatchesTheLadder) {
  auto legal = [](NodeStatus from, NodeStatus to) {
    if (from == to) return true;  // no-op self edges always allowed
    switch (to) {
      case NodeStatus::kNull: return false;  // nothing returns to null
      case NodeStatus::kJoining:
        // First contact, or a re-join after death.
        return from == NodeStatus::kNull || from == NodeStatus::kDead;
      case NodeStatus::kAck: return from == NodeStatus::kJoining;
      case NodeStatus::kAlive: return from == NodeStatus::kAck;
      case NodeStatus::kDead: return from != NodeStatus::kNull;
    }
    return false;
  };
  for (const NodeStatus from : kAll)
    for (const NodeStatus to : kAll)
      EXPECT_EQ(can_transition(from, to), legal(from, to))
          << node_status_name(from) << " -> " << node_status_name(to);
}

TEST(MembershipDeath, IllegalEdgesAbortNamingNodeAndStatuses) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  {
    Membership m(3);
    // Straight to ALIVE without joining: the diagnostic names the node
    // and both statuses.
    EXPECT_DEATH(m.transition(2, NodeStatus::kAlive), "node 2");
  }
  {
    Membership m(3);
    m.transition(0, NodeStatus::kJoining);
    EXPECT_DEATH(m.transition(0, NodeStatus::kAlive), "JOINING -> ALIVE");
  }
  {
    // A dead node cannot be resurrected without a fresh join handshake.
    Membership m(2);
    m.transition(1, NodeStatus::kJoining);
    m.transition(1, NodeStatus::kDead);
    EXPECT_DEATH(m.transition(1, NodeStatus::kAlive), "DEAD -> ALIVE");
  }
}

// --- Join / ack ordering --------------------------------------------------

TEST(Membership, JoinAckAliveLadderAndAliveCount) {
  Membership m(3);
  EXPECT_EQ(m.alive_count(), 0u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(m.status(i), NodeStatus::kNull);
    m.transition(i, NodeStatus::kJoining);
    m.transition(i, NodeStatus::kAck);
  }
  EXPECT_EQ(m.alive_count(), 0u);  // acked but not yet serving
  m.transition(0, NodeStatus::kAlive);
  m.transition(2, NodeStatus::kAlive);
  EXPECT_EQ(m.alive_count(), 2u);
  EXPECT_EQ(m.status(1), NodeStatus::kAck);
  m.set_shards(0, 4);
  EXPECT_EQ(m.info(0).shards, 4u);
}

TEST(Membership, SameStatusTransitionIsNoOp) {
  // Two failure detectors may both report one death; the second report
  // must be harmless.
  Membership m(1);
  m.transition(0, NodeStatus::kJoining);
  m.transition(0, NodeStatus::kDead);
  m.transition(0, NodeStatus::kDead);
  EXPECT_EQ(m.status(0), NodeStatus::kDead);
}

// --- Expiry (the failure detector's edge) ---------------------------------

TEST(Membership, ExpireMarksOnlySilentJoinedNodesDead) {
  Membership m(4);
  const auto t0 = Clock::now();
  // Node 0: alive and recently seen. Node 1: alive but silent. Node 2:
  // still null (never contacted — expiry must not touch it). Node 3:
  // acked then silent.
  for (const std::uint32_t i : {0u, 1u, 3u}) {
    m.transition(i, NodeStatus::kJoining);
    m.transition(i, NodeStatus::kAck);
    m.record_alive(i, t0);
  }
  m.transition(0, NodeStatus::kAlive);
  m.transition(1, NodeStatus::kAlive);
  m.record_alive(0, t0 + 300ms);

  const auto dead = m.expire(t0 + 400ms, 250ms);
  ASSERT_EQ(dead.size(), 2u);
  EXPECT_EQ(dead[0], 1u);
  EXPECT_EQ(dead[1], 3u);
  EXPECT_EQ(m.status(0), NodeStatus::kAlive);
  EXPECT_EQ(m.status(1), NodeStatus::kDead);
  EXPECT_EQ(m.status(2), NodeStatus::kNull);
  EXPECT_EQ(m.status(3), NodeStatus::kDead);
  // A second sweep reports nothing new: the dead stay dead (never
  // re-reported) and node 0 is still inside its timeout window.
  EXPECT_TRUE(m.expire(t0 + 500ms, 250ms).empty());
}

TEST(Membership, ReJoinAfterDeathResetsShards) {
  Membership m(2);
  m.transition(0, NodeStatus::kJoining);
  m.transition(0, NodeStatus::kAck);
  m.transition(0, NodeStatus::kAlive);
  m.set_shards(0, 3);
  m.transition(0, NodeStatus::kDead);
  // The re-join edge: a dead node's fresh join request starts a clean
  // life — its old shard assignment is gone.
  m.transition(0, NodeStatus::kJoining);
  EXPECT_EQ(m.status(0), NodeStatus::kJoining);
  EXPECT_EQ(m.info(0).shards, 0u);
  m.transition(0, NodeStatus::kAck);
  m.transition(0, NodeStatus::kAlive);
  EXPECT_EQ(m.alive_count(), 1u);
}

// --- The broadcast table round trip ---------------------------------------

TEST(Membership, ToEntriesApplyEntriesRoundTrip) {
  Membership coordinator(3);
  coordinator.transition(0, NodeStatus::kJoining);
  coordinator.transition(0, NodeStatus::kAck);
  coordinator.transition(0, NodeStatus::kAlive);
  coordinator.set_shards(0, 2);
  coordinator.transition(1, NodeStatus::kJoining);
  coordinator.transition(2, NodeStatus::kJoining);
  coordinator.transition(2, NodeStatus::kDead);

  // A node mirrors the coordinator's view from the broadcast.
  Membership node(3);
  ASSERT_TRUE(node.apply_entries(coordinator.to_entries()));
  EXPECT_EQ(node.status(0), NodeStatus::kAlive);
  EXPECT_EQ(node.info(0).shards, 2u);
  EXPECT_EQ(node.status(1), NodeStatus::kJoining);
  EXPECT_EQ(node.status(2), NodeStatus::kDead);
}

TEST(Membership, ApplyEntriesRejectsCorruptTableAllOrNothing) {
  Membership m(2);
  {
    // Out-of-range node id.
    std::vector<net::ClusterInfoEntry> entries = {
        {0, static_cast<std::uint8_t>(NodeStatus::kAlive), 1},
        {7, static_cast<std::uint8_t>(NodeStatus::kAlive), 1}};
    EXPECT_FALSE(m.apply_entries(entries));
  }
  {
    // Invalid status byte.
    std::vector<net::ClusterInfoEntry> entries = {
        {0, static_cast<std::uint8_t>(NodeStatus::kAlive), 1}, {1, 99, 0}};
    EXPECT_FALSE(m.apply_entries(entries));
  }
  // Both rejections were all-or-nothing: the valid first row was NOT
  // applied either.
  EXPECT_EQ(m.status(0), NodeStatus::kNull);
  EXPECT_EQ(m.status(1), NodeStatus::kNull);
}

TEST(Membership, StatusNamesAndValidity) {
  EXPECT_STREQ(node_status_name(NodeStatus::kJoining), "JOINING");
  EXPECT_STREQ(node_status_name(NodeStatus::kDead), "DEAD");
  EXPECT_TRUE(node_status_valid(0));
  EXPECT_TRUE(node_status_valid(4));
  EXPECT_FALSE(node_status_valid(5));
  EXPECT_FALSE(node_status_valid(255));
}

}  // namespace
}  // namespace dici::cluster
