// ClusterEngine end-to-end: N node objects sharing no memory with the
// coordinator, every byte crossing a net::Endpoint as a serialized
// frame. The cases that matter: rank agreement with the shared-memory
// backends on every placement x transport cell, the v3 delta path
// (Store over a cluster), multi-client pipelining, and — the part a
// simulator never exercises — the fault-tolerance story: a node killed
// mid-stream either fails its in-flight batches with a NodeFailureError
// that NAMES the node (sole-owner placements, or failover=false), or is
// papered over entirely by query failover to a surviving replica; a
// DEAD node re-joins and gets its shards re-scattered in the same run;
// and a seeded drop/delay/duplicate/corrupt storm on every link still
// converges every batch to exact ranks.
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "src/cluster/cluster_engine.hpp"
#include "src/core/engine.hpp"
#include "src/core/store.hpp"
#include "src/net/fault.hpp"
#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"
#include "src/workload/workload.hpp"

namespace dici::cluster {
namespace {

using core::Backend;
using core::ExperimentConfig;
using core::Method;
using core::RunReport;
using core::Ticket;

struct Fixture {
  std::vector<key_t> keys;
  std::vector<key_t> queries;
  std::vector<rank_t> expected;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    Rng rng(20260808);
    fx.keys = workload::make_sorted_unique_keys(20000, rng);
    fx.queries = workload::make_uniform_queries(30000, rng);
    fx.expected = workload::reference_ranks(fx.keys, fx.queries);
    return fx;
  }();
  return f;
}

ClusterConfig quick_config(std::uint32_t nodes,
                           net::TransportKind transport =
                               net::TransportKind::kRing) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.batch_bytes = 4 * KiB;
  cfg.transport = transport;
  // Fast failure detection so the kill tests finish in milliseconds.
  cfg.heartbeat_interval_ms = 5;
  cfg.heartbeat_timeout_ms = 60;
  return cfg;
}

void expect_exact(const std::vector<rank_t>& ranks, const char* tag) {
  const auto& fx = fixture();
  ASSERT_EQ(ranks.size(), fx.expected.size()) << tag;
  for (std::size_t i = 0; i < ranks.size(); ++i)
    ASSERT_EQ(ranks[i], fx.expected[i]) << tag << " query " << i;
}

// --- Rank agreement across the placement x transport matrix ---------------

TEST(ClusterEngine, RanksExactEveryPlacementAndTransport) {
  const auto& fx = fixture();
  // The in-process transports AND the process ones: fork and tcp cells
  // spawn three real dici_node children each, and must agree bit-exactly
  // with the thread-backed cells on every placement.
  for (const net::TransportKind transport :
       {net::TransportKind::kRing, net::TransportKind::kSocket,
        net::TransportKind::kFork, net::TransportKind::kTcp}) {
    for (const index::Placement placement :
         {index::Placement::kInterleave, index::Placement::kNodeLocal,
          index::Placement::kReplicate}) {
      ClusterConfig cfg = quick_config(3, transport);
      cfg.placement = placement;
      const auto index = ClusterEngine(cfg).build(fx.keys);
      EXPECT_STREQ(index->backend(), "cluster");
      const auto client = index->connect();
      std::vector<rank_t> ranks;
      const RunReport report = client->wait(client->submit(fx.queries, &ranks));
      expect_exact(ranks, net::transport_name(transport));
      EXPECT_EQ(report.num_queries, fx.queries.size());
      EXPECT_EQ(report.num_nodes, 4u);  // coordinator + 3 serving nodes
      EXPECT_GT(report.messages, 0u);
      EXPECT_GT(report.wire_bytes, 0u);
      EXPECT_GT(report.makespan, 0u);
    }
  }
}

TEST(ClusterEngine, MoreShardsThanNodesAndMoreNodesThanKeys) {
  const auto& fx = fixture();
  {
    ClusterConfig cfg = quick_config(2);
    cfg.num_shards = 7;  // shard s -> node s % 2
    const auto client = ClusterEngine(cfg).build(fx.keys)->connect();
    std::vector<rank_t> ranks;
    client->wait(client->submit(fx.queries, &ranks));
    expect_exact(ranks, "7 shards on 2 nodes");
  }
  {
    // More nodes than keys: some nodes hold nothing and only heartbeat.
    const std::vector<key_t> tiny(fx.keys.begin(), fx.keys.begin() + 2);
    const auto client = ClusterEngine(quick_config(4)).build(tiny)->connect();
    const std::vector<key_t> qs = {tiny[0], tiny[1], tiny[1] + 1, 0};
    std::vector<rank_t> ranks;
    client->wait(client->submit(qs, &ranks));
    const std::vector<rank_t> want = {1, 2, 2, 0};
    EXPECT_EQ(ranks, want);
  }
}

TEST(ClusterEngine, MatchesMakeEngineFactoryAndExperimentConfig) {
  const auto& fx = fixture();
  ExperimentConfig cfg;
  cfg.method = Method::kC3;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 4;  // 1 master + 3 serving nodes
  cfg.batch_bytes = 8 * KiB;
  const auto engine = core::make_engine(Backend::kCluster, cfg);
  EXPECT_STREQ(engine->name(), "cluster");
  const auto index = engine->build(fx.keys);
  const auto client = index->connect();
  std::vector<rank_t> ranks;
  const RunReport report = client->wait(client->submit(fx.queries, &ranks));
  expect_exact(ranks, "factory");
  EXPECT_EQ(report.method, Method::kC3);
  EXPECT_EQ(report.num_nodes, 4u);
}

// --- Pipelining and multi-client ------------------------------------------

TEST(ClusterEngine, DeepPipelineAndTwoClients) {
  const auto& fx = fixture();
  const auto index = ClusterEngine(quick_config(3)).build(fx.keys);
  const auto a = index->connect();
  const auto b = index->connect();
  const std::size_t B = 6;
  std::vector<std::vector<rank_t>> ra(B), rb(B);
  std::vector<Ticket> ta(B), tb(B);
  for (std::size_t i = 0; i < B; ++i) {
    const std::size_t begin = i * fx.queries.size() / B;
    const std::size_t end = (i + 1) * fx.queries.size() / B;
    const std::span<const key_t> slice(fx.queries.data() + begin,
                                       end - begin);
    ta[i] = a->submit(slice, &ra[i]);
    tb[i] = b->submit(slice, &rb[i]);
  }
  for (std::size_t i = 0; i < B; ++i) {
    a->wait(ta[i]);
    b->wait(tb[i]);
    const std::size_t begin = i * fx.queries.size() / B;
    for (std::size_t j = 0; j < ra[i].size(); ++j) {
      ASSERT_EQ(ra[i][j], fx.expected[begin + j]) << "client a batch " << i;
      ASSERT_EQ(rb[i][j], fx.expected[begin + j]) << "client b batch " << i;
    }
  }
  EXPECT_EQ(a->batches(), B);
  EXPECT_EQ(b->batches(), B);
}

TEST(ClusterEngine, LatencyTrackingPopulatesSummary) {
  const auto& fx = fixture();
  ClusterConfig cfg = quick_config(2);
  cfg.track_latency = true;
  const auto client = ClusterEngine(cfg).build(fx.keys)->connect();
  std::vector<rank_t> ranks;
  const RunReport report = client->wait(client->submit(fx.queries, &ranks));
  expect_exact(ranks, "latency");
  EXPECT_EQ(report.latency_ns.count(), fx.queries.size());
  EXPECT_GT(report.latency_ns.max(), 0.0);
}

// --- The v3 write path: a Store over the cluster backend ------------------

TEST(ClusterEngine, StoreWithLiveWritesStaysExact) {
  Rng rng(77);
  const auto keys = workload::make_sorted_unique_keys(4000, rng);
  ExperimentConfig cfg;
  cfg.method = Method::kC3;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 3;
  cfg.batch_bytes = 4 * KiB;
  const auto store = core::make_store(Backend::kCluster, cfg, keys);
  const auto writer = store->writer();
  // Interleave inserts with reads; every flushed write must be visible
  // to the next read (the delta fold runs coordinator-side, nodes stay
  // oblivious — they keep answering base ranks).
  std::vector<key_t> live = keys;
  for (int round = 0; round < 8; ++round) {
    std::vector<key_t> inserts;
    for (int i = 0; i < 40; ++i)
      inserts.push_back(static_cast<key_t>(rng.next()));
    writer->insert(inserts);
    writer->flush();
    live.insert(live.end(), inserts.begin(), inserts.end());
    std::sort(live.begin(), live.end());
    live.erase(std::unique(live.begin(), live.end()), live.end());
    const auto queries = workload::make_uniform_queries(2000, rng);
    const auto expected = workload::reference_ranks(live, queries);
    const auto client = store->connect();
    std::vector<rank_t> ranks;
    client->wait(client->submit(queries, &ranks));
    for (std::size_t i = 0; i < queries.size(); ++i)
      ASSERT_EQ(ranks[i], expected[i]) << "round " << round << " query " << i;
  }
}

// --- Failure semantics: a killed node fails fast and is named -------------

TEST(ClusterEngine, KilledNodeFailsInFlightBatchWithItsName) {
  const auto& fx = fixture();
  ClusterConfig cfg = quick_config(3);
  const auto engine = ClusterEngine(cfg);
  const auto index = engine.build(fx.keys);
  const auto* cluster = index.get();
  const auto client = index->connect();
  // Warm batch proves the cluster serves before the kill.
  std::vector<rank_t> warm;
  client->wait(client->submit(fx.queries, &warm));
  expect_exact(warm, "pre-kill");

  cluster_kill_node_for_test(*cluster, 1);
  // Keep submitting until a batch lands on the silenced node after its
  // death is detected; wait() must throw (never hang) and the error
  // must name node 1.
  bool failed = false;
  for (int attempt = 0; attempt < 200 && !failed; ++attempt) {
    std::vector<rank_t> ranks;
    const Ticket t = client->submit(fx.queries, &ranks);
    try {
      client->wait(t);
    } catch (const NodeFailureError& e) {
      failed = true;
      EXPECT_EQ(e.node(), 1u);
      EXPECT_NE(std::string(e.what()).find("node 1"), std::string::npos)
          << e.what();
    }
  }
  EXPECT_TRUE(failed) << "killed node never failed a batch";
  // The failure is sticky: the dead node stays dead, and further
  // submissions routed at it keep failing fast rather than hanging.
  std::vector<rank_t> ranks;
  EXPECT_THROW(client->wait(client->submit(fx.queries, &ranks)),
               NodeFailureError);
}

TEST(ClusterEngine, DrainOnDestroySurvivesNodeFailure) {
  // A client destroyed with a doomed ticket still in flight must not
  // terminate (Client::~Client swallows the NodeFailureError; callers
  // who care wait() first).
  const auto& fx = fixture();
  const auto index = ClusterEngine(quick_config(2)).build(fx.keys);
  {
    std::vector<rank_t> ranks;  // outlives the client, per the contract
    const auto client = index->connect();
    (void)client->submit(fx.queries, &ranks);
    cluster_kill_node_for_test(*index, 0);
  }  // dtor drains; must neither hang nor throw
  SUCCEED();
}

// --- Failover: a death under kReplicate is invisible to callers -----------

TEST(ClusterEngine, FailoverCompletesBatchesWhenNodeDiesUnderReplicate) {
  // The acceptance bar: kill one node mid-stream under kReplicate and
  // every in-flight batch still completes with exact ranks — zero
  // NodeFailureError reaches the caller, because every chunk the dead
  // node left unanswered is re-routed to a surviving replica holder.
  const auto& fx = fixture();
  ClusterConfig cfg = quick_config(3);
  cfg.placement = index::Placement::kReplicate;
  cfg.retry_backoff_us = 2'000;  // exhaust retries in ~1 heartbeat
  const auto index = ClusterEngine(cfg).build(fx.keys);
  const auto client = index->connect();
  std::vector<rank_t> warm;
  client->wait(client->submit(fx.queries, &warm));
  expect_exact(warm, "pre-kill");

  constexpr std::size_t kBatches = 12;
  std::vector<std::vector<rank_t>> ranks(kBatches);
  std::vector<Ticket> tickets(kBatches);
  std::uint64_t failovers = 0;
  for (std::size_t i = 0; i < kBatches; ++i) {
    tickets[i] = client->submit(fx.queries, &ranks[i]);
    if (i == 3) cluster_kill_node_for_test(*index, 1);
  }
  for (std::size_t i = 0; i < kBatches; ++i) {
    const RunReport report = client->wait(tickets[i]);  // must not throw
    expect_exact(ranks[i], "failover batch");
    failovers += report.failovers;
  }
  EXPECT_GT(failovers, 0u) << "node 1 died mid-stream; some chunk must "
                              "have been re-routed";
  EXPECT_EQ(cluster_node_status(*index, 1), NodeStatus::kDead);
  // The survivors keep serving.
  std::vector<rank_t> after;
  client->wait(client->submit(fx.queries, &after));
  expect_exact(after, "post-kill");
}

TEST(ClusterEngine, NoFailoverConfigStillFailsFast) {
  // failover = false restores the seed's fail-fast contract even under
  // kReplicate: a death with chunks in flight surfaces as
  // NodeFailureError naming the node, never a hang.
  const auto& fx = fixture();
  ClusterConfig cfg = quick_config(2);
  cfg.placement = index::Placement::kReplicate;
  cfg.failover = false;
  const auto index = ClusterEngine(cfg).build(fx.keys);
  const auto client = index->connect();
  std::vector<rank_t> warm;
  client->wait(client->submit(fx.queries, &warm));
  expect_exact(warm, "pre-kill");

  cluster_kill_node_for_test(*index, 0);
  bool failed = false;
  for (int attempt = 0; attempt < 200 && !failed; ++attempt) {
    std::vector<rank_t> ranks;
    const Ticket t = client->submit(fx.queries, &ranks);
    try {
      client->wait(t);
    } catch (const NodeFailureError& e) {
      failed = true;
      EXPECT_EQ(e.node(), 0u);
    }
  }
  EXPECT_TRUE(failed) << "failover=false must keep fail-fast semantics";
}

// --- Re-join: DEAD -> JOINING -> ALIVE with shards re-scattered -----------

bool wait_for_status(const core::Index& index, std::uint32_t node,
                     NodeStatus want) {
  for (int i = 0; i < 800; ++i) {
    if (cluster_node_status(index, node) == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

TEST(ClusterEngine, KillRejoinRescatterServeLifecycle) {
  // The full recovery story on the placement with NO surviving replica:
  // kill a node (its shards become unservable), watch the detector mark
  // it DEAD, re-admit it via cluster_rejoin_node (fresh link, join
  // handshake, chunked shard re-scatter), then serve rank-verified
  // queries through it again — all in one index lifetime.
  const auto& fx = fixture();
  const auto index = ClusterEngine(quick_config(3)).build(fx.keys);
  const auto client = index->connect();
  std::vector<rank_t> warm;
  client->wait(client->submit(fx.queries, &warm));
  expect_exact(warm, "pre-kill");

  cluster_kill_node_for_test(*index, 1);
  ASSERT_TRUE(wait_for_status(*index, 1, NodeStatus::kDead))
      << "heartbeat timeout never fired";
  // Its shards are gone: a batch routed at them fails fast.
  {
    std::vector<rank_t> ranks;
    EXPECT_THROW(client->wait(client->submit(fx.queries, &ranks)),
                 NodeFailureError);
  }

  ASSERT_TRUE(cluster_rejoin_node(*index, 1));
  EXPECT_EQ(cluster_node_status(*index, 1), NodeStatus::kAlive);

  // Back in rotation: exact ranks through the re-scattered replicas,
  // and the report carries the recovery events.
  std::vector<rank_t> after;
  const RunReport report = client->wait(client->submit(fx.queries, &after));
  expect_exact(after, "post-rejoin");
  EXPECT_EQ(report.rejoins, 1u);
  EXPECT_GT(report.recovery_ns, 0u);

  // Events are harvested exactly once.
  std::vector<rank_t> again;
  const RunReport next = client->wait(client->submit(fx.queries, &again));
  expect_exact(again, "post-rejoin steady state");
  EXPECT_EQ(next.rejoins, 0u);
}

TEST(ClusterEngine, RejoinAfterFailoverRestoresFullRotation) {
  // Under kReplicate the death was invisible; the re-join still brings
  // the node back as a failover target and routing peer.
  const auto& fx = fixture();
  ClusterConfig cfg = quick_config(2);
  cfg.placement = index::Placement::kReplicate;
  cfg.retry_backoff_us = 2'000;
  const auto index = ClusterEngine(cfg).build(fx.keys);
  const auto client = index->connect();

  cluster_kill_node_for_test(*index, 0);
  ASSERT_TRUE(wait_for_status(*index, 0, NodeStatus::kDead));
  std::vector<rank_t> degraded;
  client->wait(client->submit(fx.queries, &degraded));
  expect_exact(degraded, "one-replica degraded serving");

  ASSERT_TRUE(cluster_rejoin_node(*index, 0));
  std::vector<rank_t> restored;
  const RunReport report = client->wait(client->submit(fx.queries, &restored));
  expect_exact(restored, "restored rotation");
  EXPECT_EQ(report.rejoins, 1u);
}

// --- Fault soak: drop + delay + duplicate + corrupt under load ------------

std::uint64_t fault_seed() {
  if (const char* s = std::getenv("DICI_FAULT_SEED"))
    return std::strtoull(s, nullptr, 0);
  return 0x5eed;
}

/// CI's chaos matrix also soaks the process transports: the env picks
/// the wire the storm rides on (default ring). On fork/tcp the faults
/// bite via the coordinator end's recv-side intake decoration.
net::TransportKind fault_transport() {
  if (const char* s = std::getenv("DICI_FAULT_TRANSPORT"))
    return net::transport_from_flag(s, "DICI_FAULT_TRANSPORT");
  return net::TransportKind::kRing;
}

TEST(ClusterEngine, FaultSoakDropDelayCorruptEveryRankExact) {
  // A seeded storm on every link — frames dropped, delivered late,
  // delivered twice, and payload-corrupted in BOTH directions — while
  // batches stream through. The retry/dedup machinery must converge
  // every batch to exact ranks; the report must show the recovery work.
  const auto& fx = fixture();
  ClusterConfig cfg = quick_config(3, fault_transport());
  cfg.placement = index::Placement::kReplicate;
  cfg.retry_backoff_us = 2'000;
  cfg.faults.seed = fault_seed();
  cfg.faults.to_node = {.drop = 0.05, .delay = 0.03, .duplicate = 0.05,
                        .corrupt = 0.05};
  cfg.faults.to_coordinator = {.drop = 0.05, .delay = 0.03, .duplicate = 0.05,
                               .corrupt = 0.05};
  const auto index = ClusterEngine(cfg).build(fx.keys);
  const auto client = index->connect();

  std::uint64_t retries = 0;
  for (int batch = 0; batch < 8; ++batch) {
    std::vector<rank_t> ranks;
    const RunReport report = client->wait(client->submit(fx.queries, &ranks));
    expect_exact(ranks, "fault soak");
    retries += report.retries;
  }
  EXPECT_GT(retries, 0u) << "a 5% drop rate must have cost some retries "
                            "(seed " << cfg.faults.seed << ")";

  const auto controller = cluster_fault_controller(*index);
  ASSERT_NE(controller, nullptr);
  const net::FaultStats stats = controller->stats();
  EXPECT_GT(stats.dropped + stats.corrupted + stats.delayed +
                stats.duplicated,
            0u);

  // Heal and confirm the cluster serves a clean batch afterwards.
  controller->heal();
  std::vector<rank_t> clean;
  client->wait(client->submit(fx.queries, &clean));
  expect_exact(clean, "post-heal");
}

TEST(ClusterEngine, FaultPartitionHealsBeforeTimeoutAndBatchCompletes) {
  // A short full partition (shorter than the heartbeat timeout): every
  // frame in both directions black-holed, then the wire restored. The
  // in-flight batch must complete exactly via retries — no death, no
  // error, just a latency bubble.
  const auto& fx = fixture();
  ClusterConfig cfg = quick_config(2);
  cfg.placement = index::Placement::kReplicate;
  cfg.heartbeat_timeout_ms = 500;  // outlives the bubble below
  cfg.retry_backoff_us = 2'000;
  cfg.faults.armed = false;  // no random faults; the partition is manual
  cfg.faults.to_node.drop = 1.0;  // rates only bite while armed
  const auto index = ClusterEngine(cfg).build(fx.keys);
  const auto controller = cluster_fault_controller(*index);
  ASSERT_NE(controller, nullptr);
  const auto client = index->connect();

  controller->partition(true);
  std::vector<rank_t> ranks;
  const Ticket t = client->submit(fx.queries, &ranks);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  controller->partition(false);
  client->wait(t);
  expect_exact(ranks, "post-partition");
  EXPECT_EQ(cluster_node_status(*index, 0), NodeStatus::kAlive);
  EXPECT_EQ(cluster_node_status(*index, 1), NodeStatus::kAlive);
}

TEST(ClusterEngine, FaultControllerNullWithoutFaultConfig) {
  const auto& fx = fixture();
  const auto index = ClusterEngine(quick_config(2)).build(fx.keys);
  EXPECT_EQ(cluster_fault_controller(*index), nullptr);
}

// --- Real processes: SIGKILL a spawned dici_node child --------------------

/// Both process transports — every suite below runs the same story over
/// a socketpair inherited across fork/exec and a loopback TCP link.
constexpr net::TransportKind kProcessTransports[] = {
    net::TransportKind::kFork, net::TransportKind::kTcp};

TEST(ClusterProcess, SpawnsRealChildrenAndRanksStayExact) {
  const auto& fx = fixture();
  for (const net::TransportKind transport : kProcessTransports) {
    const auto index =
        ClusterEngine(quick_config(3, transport)).build(fx.keys);
    // Three real children, all alive (kill(pid, 0) probes existence).
    const std::vector<int> pids = cluster_node_pids(*index);
    ASSERT_EQ(pids.size(), 3u) << net::transport_name(transport);
    for (const int pid : pids) {
      EXPECT_GT(pid, 0);
      EXPECT_NE(pid, ::getpid());
      EXPECT_EQ(::kill(pid, 0), 0)
          << net::transport_name(transport) << " child " << pid << " gone";
    }
    const auto client = index->connect();
    std::vector<rank_t> ranks;
    client->wait(client->submit(fx.queries, &ranks));
    expect_exact(ranks, net::transport_name(transport));
  }
}

TEST(ClusterProcess, SigkilledChildFailoverCompletesEveryInFlightBatch) {
  // The acceptance bar with nothing faked: SIGKILL a real child process
  // mid-stream under kReplicate. The coordinator sees its fds collapse
  // (kClosed), fails the node, and re-routes every chunk the corpse
  // left unanswered — all in-flight batches complete with exact ranks
  // and zero caller-visible errors.
  const auto& fx = fixture();
  for (const net::TransportKind transport : kProcessTransports) {
    ClusterConfig cfg = quick_config(3, transport);
    cfg.placement = index::Placement::kReplicate;
    cfg.retry_backoff_us = 2'000;
    const auto index = ClusterEngine(cfg).build(fx.keys);
    const auto client = index->connect();
    std::vector<rank_t> warm;
    client->wait(client->submit(fx.queries, &warm));
    expect_exact(warm, "pre-kill");

    const std::vector<int> pids = cluster_node_pids(*index);
    ASSERT_EQ(pids.size(), 3u);

    constexpr std::size_t kBatches = 12;
    std::vector<std::vector<rank_t>> ranks(kBatches);
    std::vector<Ticket> tickets(kBatches);
    for (std::size_t i = 0; i < kBatches; ++i) {
      tickets[i] = client->submit(fx.queries, &ranks[i]);
      if (i == 3) cluster_kill_node_for_test(*index, 1);  // real SIGKILL
    }
    std::uint64_t failovers = 0;
    for (std::size_t i = 0; i < kBatches; ++i) {
      const RunReport report = client->wait(tickets[i]);  // must not throw
      expect_exact(ranks[i], "failover batch");
      failovers += report.failovers;
    }
    EXPECT_GT(failovers, 0u)
        << net::transport_name(transport)
        << ": child SIGKILLed mid-stream; some chunk must have re-routed";
    EXPECT_TRUE(wait_for_status(*index, 1, NodeStatus::kDead));
    // The corpse is really dead (not our child to probe once reaped —
    // but a SIGKILLed pid must at minimum no longer serve: survivors
    // answer without it).
    std::vector<rank_t> after;
    client->wait(client->submit(fx.queries, &after));
    expect_exact(after, "post-kill");
  }
}

TEST(ClusterProcess, SigkilledChildRejoinSpawnsFreshProcess) {
  // Re-join over a process transport is a genuinely fresh child: new
  // pid, new link, shards re-shipped over the wire (kNodeConfig and
  // all), then rank-exact serving through the respawned process.
  const auto& fx = fixture();
  for (const net::TransportKind transport : kProcessTransports) {
    ClusterConfig cfg = quick_config(3, transport);
    cfg.placement = index::Placement::kReplicate;
    cfg.retry_backoff_us = 2'000;
    const auto index = ClusterEngine(cfg).build(fx.keys);
    const auto client = index->connect();
    const std::vector<int> before = cluster_node_pids(*index);
    ASSERT_EQ(before.size(), 3u);

    cluster_kill_node_for_test(*index, 1);
    ASSERT_TRUE(wait_for_status(*index, 1, NodeStatus::kDead))
        << net::transport_name(transport);
    std::vector<rank_t> degraded;
    client->wait(client->submit(fx.queries, &degraded));
    expect_exact(degraded, "degraded");

    ASSERT_TRUE(cluster_rejoin_node(*index, 1))
        << net::transport_name(transport);
    EXPECT_EQ(cluster_node_status(*index, 1), NodeStatus::kAlive);
    const std::vector<int> after = cluster_node_pids(*index);
    ASSERT_EQ(after.size(), 3u);
    EXPECT_NE(after[1], before[1])
        << net::transport_name(transport)
        << ": a re-join must spawn a fresh child, not resurrect the pid";
    // The SIGKILLed incarnation was reaped when its slot was replaced.
    EXPECT_EQ(::kill(before[1], 0), -1);
    EXPECT_EQ(errno, ESRCH) << "old child " << before[1] << " still exists";

    std::vector<rank_t> restored;
    const RunReport report =
        client->wait(client->submit(fx.queries, &restored));
    expect_exact(restored, "post-rejoin");
    EXPECT_EQ(report.rejoins, 1u);
  }
}

TEST(ClusterProcess, TeardownReapsEveryChildNoZombies) {
  // Destroying the index must leave NOTHING behind: every spawned child
  // reaped (a zombie would still answer kill(pid, 0) with 0). Runs the
  // whole lifecycle — serve, SIGKILL one child, destroy with the corpse
  // unreaped — to pin the destructor's grace-then-reap path too.
  const auto& fx = fixture();
  for (const net::TransportKind transport : kProcessTransports) {
    std::vector<int> pids;
    {
      const auto index =
          ClusterEngine(quick_config(3, transport)).build(fx.keys);
      pids = cluster_node_pids(*index);
      ASSERT_EQ(pids.size(), 3u);
      const auto client = index->connect();
      std::vector<rank_t> ranks;
      client->wait(client->submit(fx.queries, &ranks));
      expect_exact(ranks, net::transport_name(transport));
      cluster_kill_node_for_test(*index, 2);  // corpse left for teardown
    }
    for (const int pid : pids) {
      EXPECT_EQ(::kill(pid, 0), -1)
          << net::transport_name(transport) << " pid " << pid
          << " survived teardown";
      EXPECT_EQ(errno, ESRCH);
    }
  }
}

TEST(ClusterProcess, InProcessTransportsReportNoPids) {
  const auto& fx = fixture();
  const auto index = ClusterEngine(quick_config(2)).build(fx.keys);
  EXPECT_TRUE(cluster_node_pids(*index).empty());
}

// --- Config guard rails ---------------------------------------------------

TEST(ClusterEngineDeath, RejectsClusterIncompatibleConfigs) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  {
    ClusterConfig cfg;
    cfg.num_nodes = 0;
    EXPECT_DEATH(ClusterEngine{cfg}, "num_nodes");
  }
  {
    ClusterConfig cfg;
    cfg.heartbeat_timeout_ms = cfg.heartbeat_interval_ms;  // < 2x interval
    EXPECT_DEATH(ClusterEngine{cfg}, "twice");
  }
  {
    ClusterConfig cfg;
    cfg.retry_backoff_us = 0;  // the sweeper would spin
    EXPECT_DEATH(ClusterEngine{cfg}, "retry_backoff_us");
  }
  {
    ExperimentConfig cfg;
    cfg.machine = arch::pentium3_cluster();
    cfg.method = Method::kA;  // replicated tree: not a cluster method
    EXPECT_DEATH(cluster_config_from(cfg), "C-3");
  }
  {
    ExperimentConfig cfg;
    cfg.machine = arch::pentium3_cluster();
    cfg.num_masters = 2;
    EXPECT_DEATH(cluster_config_from(cfg), "master");
  }
}

}  // namespace
}  // namespace dici::cluster
