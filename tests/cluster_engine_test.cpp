// ClusterEngine end-to-end: N node objects sharing no memory with the
// coordinator, every byte crossing a net::Endpoint as a serialized
// frame. The cases that matter: rank agreement with the shared-memory
// backends on every placement x transport cell, the v3 delta path
// (Store over a cluster), multi-client pipelining, and — the part a
// simulator never exercises — a node killed mid-stream failing its
// in-flight batches with a NodeFailureError that NAMES the node,
// instead of hanging the waiter.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/cluster/cluster_engine.hpp"
#include "src/core/engine.hpp"
#include "src/core/store.hpp"
#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"
#include "src/workload/workload.hpp"

namespace dici::cluster {
namespace {

using core::Backend;
using core::ExperimentConfig;
using core::Method;
using core::RunReport;
using core::Ticket;

struct Fixture {
  std::vector<key_t> keys;
  std::vector<key_t> queries;
  std::vector<rank_t> expected;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    Rng rng(20260808);
    fx.keys = workload::make_sorted_unique_keys(20000, rng);
    fx.queries = workload::make_uniform_queries(30000, rng);
    fx.expected = workload::reference_ranks(fx.keys, fx.queries);
    return fx;
  }();
  return f;
}

ClusterConfig quick_config(std::uint32_t nodes,
                           net::TransportKind transport =
                               net::TransportKind::kRing) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.batch_bytes = 4 * KiB;
  cfg.transport = transport;
  // Fast failure detection so the kill tests finish in milliseconds.
  cfg.heartbeat_interval_ms = 5;
  cfg.heartbeat_timeout_ms = 60;
  return cfg;
}

void expect_exact(const std::vector<rank_t>& ranks, const char* tag) {
  const auto& fx = fixture();
  ASSERT_EQ(ranks.size(), fx.expected.size()) << tag;
  for (std::size_t i = 0; i < ranks.size(); ++i)
    ASSERT_EQ(ranks[i], fx.expected[i]) << tag << " query " << i;
}

// --- Rank agreement across the placement x transport matrix ---------------

TEST(ClusterEngine, RanksExactEveryPlacementAndTransport) {
  const auto& fx = fixture();
  for (const net::TransportKind transport :
       {net::TransportKind::kRing, net::TransportKind::kSocket}) {
    for (const index::Placement placement :
         {index::Placement::kInterleave, index::Placement::kNodeLocal,
          index::Placement::kReplicate}) {
      ClusterConfig cfg = quick_config(3, transport);
      cfg.placement = placement;
      const auto index = ClusterEngine(cfg).build(fx.keys);
      EXPECT_STREQ(index->backend(), "cluster");
      const auto client = index->connect();
      std::vector<rank_t> ranks;
      const RunReport report = client->wait(client->submit(fx.queries, &ranks));
      expect_exact(ranks, net::transport_name(transport));
      EXPECT_EQ(report.num_queries, fx.queries.size());
      EXPECT_EQ(report.num_nodes, 4u);  // coordinator + 3 serving nodes
      EXPECT_GT(report.messages, 0u);
      EXPECT_GT(report.wire_bytes, 0u);
      EXPECT_GT(report.makespan, 0u);
    }
  }
}

TEST(ClusterEngine, MoreShardsThanNodesAndMoreNodesThanKeys) {
  const auto& fx = fixture();
  {
    ClusterConfig cfg = quick_config(2);
    cfg.num_shards = 7;  // shard s -> node s % 2
    const auto client = ClusterEngine(cfg).build(fx.keys)->connect();
    std::vector<rank_t> ranks;
    client->wait(client->submit(fx.queries, &ranks));
    expect_exact(ranks, "7 shards on 2 nodes");
  }
  {
    // More nodes than keys: some nodes hold nothing and only heartbeat.
    const std::vector<key_t> tiny(fx.keys.begin(), fx.keys.begin() + 2);
    const auto client = ClusterEngine(quick_config(4)).build(tiny)->connect();
    const std::vector<key_t> qs = {tiny[0], tiny[1], tiny[1] + 1, 0};
    std::vector<rank_t> ranks;
    client->wait(client->submit(qs, &ranks));
    const std::vector<rank_t> want = {1, 2, 2, 0};
    EXPECT_EQ(ranks, want);
  }
}

TEST(ClusterEngine, MatchesMakeEngineFactoryAndExperimentConfig) {
  const auto& fx = fixture();
  ExperimentConfig cfg;
  cfg.method = Method::kC3;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 4;  // 1 master + 3 serving nodes
  cfg.batch_bytes = 8 * KiB;
  const auto engine = core::make_engine(Backend::kCluster, cfg);
  EXPECT_STREQ(engine->name(), "cluster");
  const auto index = engine->build(fx.keys);
  const auto client = index->connect();
  std::vector<rank_t> ranks;
  const RunReport report = client->wait(client->submit(fx.queries, &ranks));
  expect_exact(ranks, "factory");
  EXPECT_EQ(report.method, Method::kC3);
  EXPECT_EQ(report.num_nodes, 4u);
}

// --- Pipelining and multi-client ------------------------------------------

TEST(ClusterEngine, DeepPipelineAndTwoClients) {
  const auto& fx = fixture();
  const auto index = ClusterEngine(quick_config(3)).build(fx.keys);
  const auto a = index->connect();
  const auto b = index->connect();
  const std::size_t B = 6;
  std::vector<std::vector<rank_t>> ra(B), rb(B);
  std::vector<Ticket> ta(B), tb(B);
  for (std::size_t i = 0; i < B; ++i) {
    const std::size_t begin = i * fx.queries.size() / B;
    const std::size_t end = (i + 1) * fx.queries.size() / B;
    const std::span<const key_t> slice(fx.queries.data() + begin,
                                       end - begin);
    ta[i] = a->submit(slice, &ra[i]);
    tb[i] = b->submit(slice, &rb[i]);
  }
  for (std::size_t i = 0; i < B; ++i) {
    a->wait(ta[i]);
    b->wait(tb[i]);
    const std::size_t begin = i * fx.queries.size() / B;
    for (std::size_t j = 0; j < ra[i].size(); ++j) {
      ASSERT_EQ(ra[i][j], fx.expected[begin + j]) << "client a batch " << i;
      ASSERT_EQ(rb[i][j], fx.expected[begin + j]) << "client b batch " << i;
    }
  }
  EXPECT_EQ(a->batches(), B);
  EXPECT_EQ(b->batches(), B);
}

TEST(ClusterEngine, LatencyTrackingPopulatesSummary) {
  const auto& fx = fixture();
  ClusterConfig cfg = quick_config(2);
  cfg.track_latency = true;
  const auto client = ClusterEngine(cfg).build(fx.keys)->connect();
  std::vector<rank_t> ranks;
  const RunReport report = client->wait(client->submit(fx.queries, &ranks));
  expect_exact(ranks, "latency");
  EXPECT_EQ(report.latency_ns.count(), fx.queries.size());
  EXPECT_GT(report.latency_ns.max(), 0.0);
}

// --- The v3 write path: a Store over the cluster backend ------------------

TEST(ClusterEngine, StoreWithLiveWritesStaysExact) {
  Rng rng(77);
  const auto keys = workload::make_sorted_unique_keys(4000, rng);
  ExperimentConfig cfg;
  cfg.method = Method::kC3;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 3;
  cfg.batch_bytes = 4 * KiB;
  const auto store = core::make_store(Backend::kCluster, cfg, keys);
  const auto writer = store->writer();
  // Interleave inserts with reads; every flushed write must be visible
  // to the next read (the delta fold runs coordinator-side, nodes stay
  // oblivious — they keep answering base ranks).
  std::vector<key_t> live = keys;
  for (int round = 0; round < 8; ++round) {
    std::vector<key_t> inserts;
    for (int i = 0; i < 40; ++i)
      inserts.push_back(static_cast<key_t>(rng.next()));
    writer->insert(inserts);
    writer->flush();
    live.insert(live.end(), inserts.begin(), inserts.end());
    std::sort(live.begin(), live.end());
    live.erase(std::unique(live.begin(), live.end()), live.end());
    const auto queries = workload::make_uniform_queries(2000, rng);
    const auto expected = workload::reference_ranks(live, queries);
    const auto client = store->connect();
    std::vector<rank_t> ranks;
    client->wait(client->submit(queries, &ranks));
    for (std::size_t i = 0; i < queries.size(); ++i)
      ASSERT_EQ(ranks[i], expected[i]) << "round " << round << " query " << i;
  }
}

// --- Failure semantics: a killed node fails fast and is named -------------

TEST(ClusterEngine, KilledNodeFailsInFlightBatchWithItsName) {
  const auto& fx = fixture();
  ClusterConfig cfg = quick_config(3);
  const auto engine = ClusterEngine(cfg);
  const auto index = engine.build(fx.keys);
  const auto* cluster = index.get();
  const auto client = index->connect();
  // Warm batch proves the cluster serves before the kill.
  std::vector<rank_t> warm;
  client->wait(client->submit(fx.queries, &warm));
  expect_exact(warm, "pre-kill");

  cluster_kill_node_for_test(*cluster, 1);
  // Keep submitting until a batch lands on the silenced node after its
  // death is detected; wait() must throw (never hang) and the error
  // must name node 1.
  bool failed = false;
  for (int attempt = 0; attempt < 200 && !failed; ++attempt) {
    std::vector<rank_t> ranks;
    const Ticket t = client->submit(fx.queries, &ranks);
    try {
      client->wait(t);
    } catch (const NodeFailureError& e) {
      failed = true;
      EXPECT_EQ(e.node(), 1u);
      EXPECT_NE(std::string(e.what()).find("node 1"), std::string::npos)
          << e.what();
    }
  }
  EXPECT_TRUE(failed) << "killed node never failed a batch";
  // The failure is sticky: the dead node stays dead, and further
  // submissions routed at it keep failing fast rather than hanging.
  std::vector<rank_t> ranks;
  EXPECT_THROW(client->wait(client->submit(fx.queries, &ranks)),
               NodeFailureError);
}

TEST(ClusterEngine, DrainOnDestroySurvivesNodeFailure) {
  // A client destroyed with a doomed ticket still in flight must not
  // terminate (Client::~Client swallows the NodeFailureError; callers
  // who care wait() first).
  const auto& fx = fixture();
  const auto index = ClusterEngine(quick_config(2)).build(fx.keys);
  {
    std::vector<rank_t> ranks;  // outlives the client, per the contract
    const auto client = index->connect();
    (void)client->submit(fx.queries, &ranks);
    cluster_kill_node_for_test(*index, 0);
  }  // dtor drains; must neither hang nor throw
  SUCCEED();
}

// --- Config guard rails ---------------------------------------------------

TEST(ClusterEngineDeath, RejectsClusterIncompatibleConfigs) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  {
    ClusterConfig cfg;
    cfg.num_nodes = 0;
    EXPECT_DEATH(ClusterEngine{cfg}, "num_nodes");
  }
  {
    ClusterConfig cfg;
    cfg.heartbeat_timeout_ms = cfg.heartbeat_interval_ms;  // < 2x interval
    EXPECT_DEATH(ClusterEngine{cfg}, "twice");
  }
  {
    ExperimentConfig cfg;
    cfg.machine = arch::pentium3_cluster();
    cfg.method = Method::kA;  // replicated tree: not a cluster method
    EXPECT_DEATH(cluster_config_from(cfg), "C-3");
  }
  {
    ExperimentConfig cfg;
    cfg.machine = arch::pentium3_cluster();
    cfg.num_masters = 2;
    EXPECT_DEATH(cluster_config_from(cfg), "master");
  }
}

}  // namespace
}  // namespace dici::cluster
