#include "src/workload/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/util/bytes.hpp"

namespace dici::workload {
namespace {

TEST(MakeKeys, SortedUniqueAndSized) {
  Rng rng(1);
  const auto keys = make_sorted_unique_keys(100000, rng);
  EXPECT_EQ(keys.size(), 100000u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(MakeKeys, DeterministicForSeed) {
  Rng a(9), b(9);
  EXPECT_EQ(make_sorted_unique_keys(5000, a), make_sorted_unique_keys(5000, b));
}

TEST(MakeKeys, SmallCounts) {
  Rng rng(2);
  EXPECT_EQ(make_sorted_unique_keys(1, rng).size(), 1u);
  EXPECT_EQ(make_sorted_unique_keys(2, rng).size(), 2u);
}

TEST(MakeKeys, SpansTheKeySpace) {
  Rng rng(3);
  const auto keys = make_sorted_unique_keys(100000, rng);
  // Uniform draws from 2^32: min near 0, max near 2^32.
  EXPECT_LT(keys.front(), 1u << 20);
  EXPECT_GT(keys.back(), 0xFFFFFFFFu - (1u << 20));
}

TEST(MakeQueries, UniformCoversSpace) {
  Rng rng(4);
  const auto queries = make_uniform_queries(100000, rng);
  EXPECT_EQ(queries.size(), 100000u);
  std::size_t low_half = 0;
  for (const auto q : queries) low_half += q < 0x80000000u;
  EXPECT_NEAR(static_cast<double>(low_half), 50000.0, 1000.0);
}

TEST(MakeZipfQueries, SkewsTowardFirstBucket) {
  Rng rng(5);
  const std::size_t buckets = 10;
  const auto queries = make_zipf_queries(50000, buckets, 1.2, rng);
  const std::uint64_t width = (1ull << 32) / buckets;
  std::vector<int> counts(buckets, 0);
  for (const auto q : queries) ++counts[q / width];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
  EXPECT_GT(counts[0], 3 * counts[9]);
}

TEST(MakeZipfQueries, ZeroSkewIsRoughlyUniform) {
  Rng rng(6);
  const auto queries = make_zipf_queries(40000, 8, 0.0, rng);
  const std::uint64_t width = (1ull << 32) / 8;
  std::vector<int> counts(8, 0);
  for (const auto q : queries) ++counts[q / width];
  for (int c : counts) EXPECT_NEAR(c, 5000, 500);
}

TEST(MakeZipfQueries, RejectsZeroBuckets) {
  Rng rng(7);
  EXPECT_DEATH(make_zipf_queries(10, 0, 1.0, rng), "at least one bucket");
}

TEST(MakeZipfQueries, RejectsNegativeExponent) {
  Rng rng(8);
  EXPECT_DEATH(make_zipf_queries(10, 4, -0.5, rng), "non-negative");
}

TEST(ReferenceRanks, MatchesUpperBound) {
  const std::vector<key_t> keys{10, 20, 30};
  const std::vector<key_t> queries{5, 10, 15, 30, 35};
  EXPECT_EQ(reference_ranks(keys, queries),
            (std::vector<rank_t>{0, 1, 1, 3, 3}));
}

TEST(BatchRanges, ExactCover) {
  const auto ranges = batch_ranges(10, 3 * sizeof(key_t));
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges[0], (std::pair<std::size_t, std::size_t>{0, 3}));
  EXPECT_EQ(ranges[3], (std::pair<std::size_t, std::size_t>{9, 10}));
  std::size_t covered = 0;
  for (const auto& [b, e] : ranges) {
    EXPECT_EQ(b, covered);
    covered = e;
  }
  EXPECT_EQ(covered, 10u);
}

TEST(BatchRanges, SingleBatchWhenLarger) {
  const auto ranges = batch_ranges(5, MiB);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (std::pair<std::size_t, std::size_t>{0, 5}));
}

TEST(BatchRanges, EmptyInput) {
  EXPECT_TRUE(batch_ranges(0, KiB).empty());
}

TEST(BatchRanges, PaperMessageCount) {
  // Sec. 4.1: "for a batch size of 8 KB, there are 1,000 messages" —
  // order of magnitude for 8 M keys (2^23 x 4 B / 8 KB = 4096 rounds).
  const auto ranges = batch_ranges(1ull << 23, 8 * KiB);
  EXPECT_EQ(ranges.size(), 4096u);
}

}  // namespace
}  // namespace dici::workload
