// Scenario matrix correctness: every cell of distribution x backend
// agrees with std::upper_bound through streaming sessions, the
// distribution generators are deterministic and have the documented
// shapes, and the registry enforces its invariants.
#include "src/workload/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/workload/workload.hpp"

namespace dici::workload {
namespace {

// --- The matrix itself: the cross-backend agreement gate ---------------

TEST(ScenarioMatrix, EveryCellAgreesAcrossAllBackends) {
  // Small but non-trivial sizes: multiple dispatch rounds per stream
  // batch, shards smaller than the index.
  const ScenarioRegistry registry = default_scenarios(4096, 6000);
  ASSERT_EQ(registry.specs().size(), all_distributions().size());
  MatrixOptions options;  // all four backends, verify on
  const auto cells = run_scenario_matrix(registry, options);
  // 5 distributions x {sim, native, parallel-native, cluster}.
  ASSERT_EQ(cells.size(), all_distributions().size() * 4);
  for (const auto& cell : cells) {
    EXPECT_TRUE(cell.verified);
    EXPECT_TRUE(cell.ranks_ok)
        << cell.scenario << " x " << cell.backend << ": " << cell.mismatches
        << " mismatching ranks";
    EXPECT_EQ(cell.mismatches, 0u);
    EXPECT_EQ(cell.num_queries, 6000u);
    EXPECT_EQ(cell.stream_batches, 4u);  // ScenarioSpec default
  }
  EXPECT_TRUE(all_cells_ok(cells));
}

TEST(ScenarioMatrix, KernelAxisEveryCellRankExact) {
  // The full distribution x backend x kernel cross product: the native
  // backends actually switch their C-3 probe code per kernel (sorted
  // scalar, eytzinger, interleaved batch), the sim verifies invariance.
  const ScenarioRegistry registry = default_scenarios(1024, 2000);
  MatrixOptions options;
  options.kernels.assign(core::all_search_kernels().begin(),
                         core::all_search_kernels().end());
  const auto cells = run_scenario_matrix(registry, options);
  ASSERT_EQ(cells.size(),
            all_distributions().size() * 4 * core::all_search_kernels().size());
  std::set<std::string> kernels_seen;
  for (const auto& cell : cells) {
    EXPECT_TRUE(cell.ranks_ok)
        << cell.scenario << " x " << cell.backend << " x " << cell.kernel
        << ": " << cell.mismatches << " mismatching ranks";
    kernels_seen.insert(cell.kernel);
  }
  EXPECT_EQ(kernels_seen.size(), core::all_search_kernels().size());
  EXPECT_TRUE(all_cells_ok(cells));
}

TEST(ScenarioMatrix, PlacementAxisEveryCellRankExact) {
  // The placement axis on a simulated 2-node topology: parallel-native
  // sweeps all three modes (interleave / node-local / replicate), the
  // other backends run one cell each — and every cell's ranks must be
  // bit-identical to the reference whatever the placement, which is the
  // matrix smoke's placement-invariance gate.
  const ScenarioRegistry registry = default_scenarios(2048, 4000);
  MatrixOptions options;
  options.placements.assign(core::all_placements().begin(),
                            core::all_placements().end());
  options.numa_nodes = 2;
  const auto cells = run_scenario_matrix(registry, options);
  // 5 distributions x (sim + native + 3 parallel-native placements
  // + 3 cluster placements).
  ASSERT_EQ(cells.size(), all_distributions().size() * 8);
  std::set<std::string> parallel_placements;
  std::set<std::string> cluster_placements;
  for (const auto& cell : cells) {
    EXPECT_TRUE(cell.ranks_ok)
        << cell.scenario << " x " << cell.backend << " x " << cell.placement
        << ": " << cell.mismatches << " mismatching ranks";
    EXPECT_FALSE(cell.placement.empty());
    if (cell.backend == "parallel-native")
      parallel_placements.insert(cell.placement);
    if (cell.backend == "cluster") cluster_placements.insert(cell.placement);
  }
  EXPECT_EQ(parallel_placements.size(), core::all_placements().size());
  EXPECT_EQ(cluster_placements.size(), core::all_placements().size());
  const std::string json = matrix_to_json(cells);
  EXPECT_NE(json.find("\"placement\": \"node-local\""), std::string::npos);
  EXPECT_NE(json.find("\"placement\": \"replicate\""), std::string::npos);
}

TEST(ScenarioMatrix, DefaultPlacementAxisIsInterleave) {
  ScenarioRegistry registry;
  ScenarioSpec spec;
  spec.name = "tiny";
  spec.index_keys = 128;
  spec.num_queries = 200;
  spec.stream_batches = 2;
  registry.add(spec);
  MatrixOptions options;
  options.backends = {core::Backend::kParallelNative};
  const auto cells = run_scenario_matrix(registry, options);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].placement, "interleave");
}

TEST(ScenarioMatrix, DefaultKernelAxisIsBranchless) {
  ScenarioRegistry registry;
  ScenarioSpec spec;
  spec.name = "tiny";
  spec.index_keys = 128;
  spec.num_queries = 200;
  spec.stream_batches = 2;
  registry.add(spec);
  MatrixOptions options;
  options.backends = {core::Backend::kParallelNative};
  const auto cells = run_scenario_matrix(registry, options);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].kernel, "branchless");
  const std::string json = matrix_to_json(cells);
  EXPECT_NE(json.find("\"kernel\": \"branchless\""), std::string::npos);
}

TEST(ScenarioMatrix, PipelinedCellsStayRankExact) {
  // Depth > 1 drives the async submit-ahead path of every backend
  // through the matrix; ranks (and the batch count) must not care.
  const ScenarioRegistry registry = default_scenarios(2048, 4000);
  MatrixOptions options;
  options.in_flight = 3;
  const auto cells = run_scenario_matrix(registry, options);
  ASSERT_EQ(cells.size(), all_distributions().size() * 4);
  for (const auto& cell : cells) {
    EXPECT_TRUE(cell.ranks_ok)
        << cell.scenario << " x " << cell.backend << " at depth 3: "
        << cell.mismatches << " mismatching ranks";
    EXPECT_EQ(cell.in_flight, 3u);
    EXPECT_EQ(cell.stream_batches, 4u);
    EXPECT_EQ(cell.num_queries, 4000u);
  }
}

TEST(ScenarioMatrix, JsonHasOneObjectPerCell) {
  ScenarioRegistry registry;
  ScenarioSpec spec;
  spec.name = "tiny";
  spec.index_keys = 256;
  spec.num_queries = 300;
  spec.stream_batches = 2;
  registry.add(spec);
  MatrixOptions options;
  options.backends = {core::Backend::kParallelNative};
  const auto cells = run_scenario_matrix(registry, options);
  ASSERT_EQ(cells.size(), 1u);
  const std::string json = matrix_to_json(cells);
  EXPECT_NE(json.find("\"scenario\": \"tiny\""), std::string::npos);
  EXPECT_NE(json.find("\"ranks_ok\": true"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 1);
}

TEST(ScenarioMatrix, NonC3SpecSkipsParallelBackend) {
  ScenarioRegistry registry;
  ScenarioSpec spec;
  spec.name = "method-a";
  spec.method = core::Method::kA;
  spec.index_keys = 512;
  spec.num_queries = 400;
  registry.add(spec);
  MatrixOptions options;  // all four backends requested
  const auto cells = run_scenario_matrix(registry, options);
  ASSERT_EQ(cells.size(), 2u);  // parallel-native AND cluster skipped
  for (const auto& cell : cells) {
    EXPECT_NE(cell.backend, "parallel-native");
    EXPECT_NE(cell.backend, "cluster");
    EXPECT_TRUE(cell.ranks_ok);
  }
}

TEST(ScenarioMatrix, ClusterCellsCarryTheirTransport) {
  // Cluster cells run over a real frame transport and record which one;
  // backends that never serialize a frame record "-". Both transports
  // must stay rank-exact through the matrix.
  ScenarioRegistry registry;
  ScenarioSpec spec;
  spec.name = "tiny";
  spec.index_keys = 1024;
  spec.num_queries = 1500;
  spec.stream_batches = 3;
  registry.add(spec);
  for (const net::TransportKind transport :
       {net::TransportKind::kRing, net::TransportKind::kSocket}) {
    MatrixOptions options;
    options.backends = {core::Backend::kCluster, core::Backend::kSim};
    options.transport = transport;
    const auto cells = run_scenario_matrix(registry, options);
    ASSERT_EQ(cells.size(), 2u);
    for (const auto& cell : cells) {
      EXPECT_TRUE(cell.ranks_ok)
          << cell.backend << " over " << net::transport_name(transport);
      if (cell.backend == "cluster") {
        EXPECT_EQ(cell.transport, net::transport_name(transport));
      } else {
        EXPECT_EQ(cell.transport, "-");
      }
    }
    const std::string json = matrix_to_json(cells);
    EXPECT_NE(json.find(std::string("\"transport\": \"") +
                        net::transport_name(transport) + "\""),
              std::string::npos);
  }
}

// --- Registry invariants ----------------------------------------------

TEST(ScenarioRegistry, FindByName) {
  const ScenarioRegistry registry = default_scenarios(1024, 1024);
  ASSERT_NE(registry.find("zipf"), nullptr);
  EXPECT_EQ(registry.find("zipf")->distribution, Distribution::kZipf);
  EXPECT_EQ(registry.find("no-such-scenario"), nullptr);
}

TEST(ScenarioRegistry, RejectsDuplicateNames) {
  ScenarioRegistry registry;
  ScenarioSpec spec;
  spec.name = "dup";
  registry.add(spec);
  EXPECT_DEATH(registry.add(spec), "duplicate scenario name");
}

TEST(ScenarioRegistry, RejectsZeroStreamBatches) {
  ScenarioRegistry registry;
  ScenarioSpec spec;
  spec.name = "zero-batches";
  spec.stream_batches = 0;
  EXPECT_DEATH(registry.add(spec), "stream_batches");
}

TEST(DistributionNames, RoundTrip) {
  for (const Distribution d : all_distributions()) {
    Distribution parsed{};
    ASSERT_TRUE(parse_distribution(distribution_name(d), &parsed));
    EXPECT_EQ(parsed, d);
  }
  Distribution parsed{};
  EXPECT_FALSE(parse_distribution("pareto", &parsed));
}

// --- Determinism: same seed => byte-identical stream -------------------

TEST(ScenarioQueries, DeterministicForSeed) {
  for (const Distribution d : all_distributions()) {
    ScenarioSpec spec;
    spec.name = distribution_name(d);
    spec.distribution = d;
    spec.index_keys = 2048;
    spec.num_queries = 4096;
    const auto index_a = make_scenario_index(spec);
    const auto index_b = make_scenario_index(spec);
    EXPECT_EQ(index_a, index_b) << spec.name;
    EXPECT_EQ(make_scenario_queries(spec, index_a),
              make_scenario_queries(spec, index_a))
        << spec.name;
  }
}

TEST(ScenarioQueries, SeedChangesTheStream) {
  ScenarioSpec a;
  a.name = "a";
  a.num_queries = 1024;
  ScenarioSpec b = a;
  b.seed = a.seed + 1;
  const auto index = make_scenario_index(a);
  EXPECT_NE(make_scenario_queries(a, index), make_scenario_queries(b, index));
}

// --- Shape sanity ------------------------------------------------------

TEST(ScenarioQueries, ZipfBucketZeroMassExceedsUniformShare) {
  ScenarioSpec spec;
  spec.name = "zipf";
  spec.distribution = Distribution::kZipf;
  spec.num_queries = 40000;
  spec.num_nodes = 9;  // 8 slaves => 8 buckets
  spec.zipf_s = 1.1;
  const auto index = make_scenario_index(spec);
  const auto queries = make_scenario_queries(spec, index);
  const std::uint64_t width = (1ull << 32) / 8;
  std::size_t bucket0 = 0;
  for (const auto q : queries) bucket0 += q / width == 0;
  // Uniform share would be n/8 = 5000; Zipf(1.1) concentrates far more.
  EXPECT_GT(bucket0, 2 * queries.size() / 8);
}

TEST(ScenarioQueries, HotspotConcentratesMass) {
  Rng rng(42);
  const auto queries = make_hotspot_queries(20000, 0.9, 1.0 / 64, rng);
  // The hot window is 1/64 of the key space; find the densest 1/64
  // window on a 64-bin histogram and check it holds ~90% of the mass.
  std::vector<std::size_t> bins(64, 0);
  for (const auto q : queries) ++bins[static_cast<std::uint64_t>(q) >> 26];
  // The window may straddle two bins; take the best adjacent pair.
  std::size_t best = 0;
  for (std::size_t i = 0; i < 63; ++i)
    best = std::max(best, bins[i] + bins[i + 1]);
  EXPECT_GT(best, queries.size() * 85 / 100);
}

TEST(ScenarioQueries, SortedAscendingIsSortedAndCoversSpace) {
  Rng rng(43);
  const auto queries = make_sorted_ascending_queries(30000, rng);
  EXPECT_TRUE(std::is_sorted(queries.begin(), queries.end()));
  EXPECT_LT(queries.front(), 1u << 22);
  EXPECT_GT(queries.back(), 0xFFFFFFFFu - (1u << 22));
}

TEST(ScenarioQueries, AdversarialBoundaryHitsEdgeRanks) {
  // An index whose smallest key is > 0 and largest < max, so both edge
  // ranks are reachable and distinguishable.
  std::vector<key_t> index{100, 200, 300, 400, 500};
  Rng rng(44);
  const auto queries = make_adversarial_boundary_queries(2000, index, rng);
  const auto ranks = reference_ranks(index, queries);
  const std::set<rank_t> seen(ranks.begin(), ranks.end());
  // The documented edge ranks: 0 (below the smallest key) and n (at or
  // above the largest), plus every interior boundary rank — queries sit
  // on keys and their neighbours, so each key's rank occurs.
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(static_cast<rank_t>(index.size())));
  for (rank_t r = 0; r <= index.size(); ++r)
    EXPECT_TRUE(seen.count(r)) << "missing rank " << r;
  // And every query is within +-1 of an index key or an edge pin.
  for (const auto q : queries) {
    const bool near_key =
        std::any_of(index.begin(), index.end(), [&](key_t k) {
          return q + 1 == k || q == k || q == k + 1;
        });
    EXPECT_TRUE(near_key || q == 0 || q == 0xFFFFFFFFu) << q;
  }
}

TEST(ScenarioQueries, HotspotRejectsBadParameters) {
  Rng rng(45);
  EXPECT_DEATH(make_hotspot_queries(10, 1.5, 0.1, rng), "probability");
  EXPECT_DEATH(make_hotspot_queries(10, 0.5, 0.0, rng), "key-space fraction");
}

}  // namespace
}  // namespace dici::workload
