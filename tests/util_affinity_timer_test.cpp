#include <gtest/gtest.h>

#include <thread>

#include "src/util/affinity.hpp"
#include "src/util/timer.hpp"

namespace dici {
namespace {

TEST(Affinity, ReportsAtLeastOneCpu) { EXPECT_GE(available_cpus(), 1); }

TEST(Affinity, PinningIsBestEffortAndWrapsAround) {
  // Pinning must succeed (Linux) or degrade gracefully; out-of-range ids
  // wrap modulo the CPU count rather than failing.
  std::thread t([] {
    const bool ok0 = pin_current_thread(0);
    const bool okBig = pin_current_thread(1 << 20);
#if defined(__linux__)
    EXPECT_TRUE(ok0);
    EXPECT_TRUE(okBig);
#else
    (void)ok0;
    (void)okBig;
#endif
  });
  t.join();
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double sec = timer.elapsed_sec();
  EXPECT_GE(sec, 0.015);
  EXPECT_LT(sec, 5.0);
  EXPECT_NEAR(timer.elapsed_ns(), timer.elapsed_sec() * 1e9,
              timer.elapsed_sec() * 1e9 * 0.5);
}

TEST(WallTimer, StartResets) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  timer.start();
  EXPECT_LT(timer.elapsed_sec(), 0.01);
}

}  // namespace
}  // namespace dici
