#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

#include "src/util/affinity.hpp"
#include "src/util/timer.hpp"

namespace dici {
namespace {

TEST(Affinity, ReportsAtLeastOneCpu) { EXPECT_GE(available_cpus(), 1); }

TEST(Affinity, AllowedCpusAreSortedUniqueAndCountMatches) {
  const std::vector<int> cpus = allowed_cpus();
  ASSERT_FALSE(cpus.empty());
  EXPECT_TRUE(std::is_sorted(cpus.begin(), cpus.end()));
  EXPECT_EQ(std::adjacent_find(cpus.begin(), cpus.end()), cpus.end());
  // available_cpus IS the allowed count — the restricted-cpuset bug was
  // precisely reporting the online count instead.
  EXPECT_EQ(available_cpus(), static_cast<int>(cpus.size()));
}

TEST(Affinity, PinTargetWrapsWithinTheGivenMask) {
  // The pure policy: targets come from the allowed list, wrap modulo
  // its size, and never invent ids outside it — exactly what a
  // taskset/container cpuset requires.
  const std::vector<int> mask{3, 5, 9};
  EXPECT_EQ(pin_target(mask, 0), 3);
  EXPECT_EQ(pin_target(mask, 1), 5);
  EXPECT_EQ(pin_target(mask, 2), 9);
  EXPECT_EQ(pin_target(mask, 3), 3);   // wrap
  EXPECT_EQ(pin_target(mask, 302), 9); // large ids stay inside the mask
  EXPECT_EQ(pin_target({}, 7), -1);    // empty mask fails cleanly
}

#if defined(__linux__)
TEST(Affinity, RestrictedThreadPinsInsideItsOwnMask) {
  // Simulate a taskset/cgroup restriction: confine one thread to the
  // first allowed CPU, then ask for pin targets far past it. Every
  // target must resolve inside the restricted mask — on an unrestricted
  // multi-CPU host the old hardware_concurrency-based code would have
  // aimed at CPU (big % online) instead.
  const int only = allowed_cpus().front();
  std::thread t([&] {
    cpu_set_t one;
    CPU_ZERO(&one);
    CPU_SET(static_cast<unsigned>(only), &one);
    ASSERT_EQ(sched_setaffinity(0, sizeof one, &one), 0);
    const std::vector<int> restricted = allowed_cpus();
    ASSERT_EQ(restricted, std::vector<int>{only});
    EXPECT_EQ(available_cpus(), 1);
    // Any slot — including ones past the machine's CPU count — pins to
    // the one allowed CPU and succeeds.
    EXPECT_TRUE(pin_current_thread(0));
    EXPECT_TRUE(pin_current_thread(1 << 20));
    cpu_set_t now;
    CPU_ZERO(&now);
    ASSERT_EQ(sched_getaffinity(0, sizeof now, &now), 0);
    EXPECT_TRUE(CPU_ISSET(static_cast<unsigned>(only), &now));
    EXPECT_EQ(CPU_COUNT(&now), 1);
    // Pinning to a CPU outside the restricted mask fails instead of
    // silently widening it.
    bool widened = false;
    for (const int cpu : {only + 1, only + 7})
      widened = widened || pin_current_thread_to_os_cpu(cpu);
    EXPECT_FALSE(widened);
  });
  t.join();
}
#endif

TEST(Affinity, PinningIsBestEffortAndWrapsAround) {
  // Pinning must succeed (Linux) or degrade gracefully; out-of-range ids
  // wrap modulo the CPU count rather than failing.
  std::thread t([] {
    const bool ok0 = pin_current_thread(0);
    const bool okBig = pin_current_thread(1 << 20);
#if defined(__linux__)
    EXPECT_TRUE(ok0);
    EXPECT_TRUE(okBig);
#else
    (void)ok0;
    (void)okBig;
#endif
  });
  t.join();
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double sec = timer.elapsed_sec();
  EXPECT_GE(sec, 0.015);
  EXPECT_LT(sec, 5.0);
  EXPECT_NEAR(timer.elapsed_ns(), timer.elapsed_sec() * 1e9,
              timer.elapsed_sec() * 1e9 * 0.5);
}

TEST(WallTimer, StartResets) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  timer.start();
  EXPECT_LT(timer.elapsed_sec(), 0.01);
}

}  // namespace
}  // namespace dici
