#include "src/sim/address_space.hpp"

#include <gtest/gtest.h>

namespace dici::sim {
namespace {

TEST(AddressSpace, AllocationsAreDisjointAndAligned) {
  AddressSpace space(64);
  const laddr_t a = space.allocate(100);
  const laddr_t b = space.allocate(1);
  const laddr_t c = space.allocate(64);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_EQ(c % 64, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_GE(c, b + 1);
}

TEST(AddressSpace, DeterministicLayout) {
  AddressSpace s1(32), s2(32);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(s1.allocate(100 + i), s2.allocate(100 + i));
}

TEST(AddressSpace, NeverHandsOutZero) {
  AddressSpace space(32);
  EXPECT_GT(space.allocate(4), 0u);
}

TEST(AddressSpace, UsedTracksRoundedBytes) {
  AddressSpace space(32);
  space.allocate(1);   // rounds to 32
  space.allocate(33);  // rounds to 64
  EXPECT_EQ(space.used(), 96u);
}

TEST(AddressSpaceDeath, RejectsNonPowerOfTwoAlignment) {
  EXPECT_DEATH(AddressSpace space(48), "");
}

}  // namespace
}  // namespace dici::sim
