// ParallelNativeEngine correctness: exact agreement with
// std::upper_bound across thread counts, shard counts, and kernels, plus
// degenerate inputs and cross-backend agreement through the Engine seam.
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/engine.hpp"
#include "src/core/parallel_engine.hpp"
#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"
#include "src/workload/workload.hpp"

namespace dici::core {
namespace {

struct Fixture {
  std::vector<key_t> keys;
  std::vector<key_t> queries;
  std::vector<rank_t> expected;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    Rng rng(20050411);
    fx.keys = workload::make_sorted_unique_keys(30000, rng);
    fx.queries = workload::make_uniform_queries(50000, rng);
    fx.expected = workload::reference_ranks(fx.keys, fx.queries);
    return fx;
  }();
  return f;
}

using Combo = std::tuple<std::uint32_t, std::uint32_t, SearchKernel>;

class ParallelCombos : public ::testing::TestWithParam<Combo> {};

TEST_P(ParallelCombos, ExactRanks) {
  const auto& [threads, shards, kernel] = GetParam();
  const auto& fx = fixture();
  ParallelConfig cfg;
  cfg.num_threads = threads;
  cfg.num_shards = shards;
  cfg.kernel = kernel;
  cfg.batch_bytes = 8 * KiB;
  std::vector<rank_t> ranks;
  const RunReport report =
      ParallelNativeEngine(cfg).run(fx.keys, fx.queries, &ranks);
  ASSERT_EQ(ranks.size(), fx.expected.size());
  for (std::size_t i = 0; i < ranks.size(); ++i)
    ASSERT_EQ(ranks[i], fx.expected[i]) << "query index " << i;
  EXPECT_EQ(report.method, Method::kC3);
  EXPECT_EQ(report.num_queries, fx.queries.size());
  // Node 0 is the dispatcher (master); workers are nodes 1..threads.
  EXPECT_EQ(report.num_nodes, threads + 1);
  EXPECT_GT(report.messages, 0u);
  ASSERT_EQ(report.nodes.size(), threads + 1);
  EXPECT_EQ(report.nodes[0].queries, fx.queries.size());
  // Every query is processed by exactly one worker.
  const std::uint64_t processed = std::accumulate(
      report.nodes.begin() + 1, report.nodes.end(), std::uint64_t{0},
      [](std::uint64_t acc, const NodeReport& n) { return acc + n.queries; });
  EXPECT_EQ(processed, fx.queries.size());
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsShardsKernels, ParallelCombos,
    ::testing::Combine(
        ::testing::Values(1u, 2u, 8u),          // thread counts (issue spec)
        ::testing::Values(0u, 1u, 3u, 16u),     // shard counts; 0 = threads
        ::testing::Values(SearchKernel::kStdUpperBound,
                          SearchKernel::kBranchless,
                          SearchKernel::kPrefetch)),
    [](const auto& info) {
      std::string name = "t" + std::to_string(std::get<0>(info.param)) +
                         "_s" + std::to_string(std::get<1>(info.param)) + "_";
      for (const char* c = search_kernel_name(std::get<2>(info.param));
           *c != '\0'; ++c)
        if (*c != '-') name += *c;
      return name;
    });

// --- Placement x topology x stealing: the NUMA surface --------------------

using PlacementCombo = std::tuple<Placement, SearchKernel, bool, std::uint32_t>;

class PlacementCombos : public ::testing::TestWithParam<PlacementCombo> {};

TEST_P(PlacementCombos, SkewedStreamStaysRankExact) {
  // A heavily skewed stream (90% of queries inside one shard's range)
  // on a simulated multi-node topology: placement moves the copies,
  // stealing moves the work, and neither may move a single rank.
  const auto& [placement, kernel, stealing, numa_nodes] = GetParam();
  const auto& fx = fixture();
  std::vector<key_t> queries(fx.queries.begin(), fx.queries.begin() + 30000);
  const key_t hot = fx.keys[fx.keys.size() / 3];
  for (std::size_t i = 0; i < queries.size(); ++i)
    if (i % 10 != 0) queries[i] = hot + static_cast<key_t>(i % 64);
  const auto expected = workload::reference_ranks(fx.keys, queries);

  ParallelConfig cfg;
  cfg.num_threads = 4;
  cfg.num_shards = 6;
  cfg.batch_bytes = 4 * KiB;
  cfg.kernel = kernel;
  cfg.placement = placement;
  cfg.numa_nodes = numa_nodes;
  cfg.work_stealing = stealing;
  std::vector<rank_t> ranks;
  const RunReport report =
      ParallelNativeEngine(cfg).run(fx.keys, queries, &ranks);
  ASSERT_EQ(ranks.size(), expected.size());
  for (std::size_t i = 0; i < ranks.size(); ++i)
    ASSERT_EQ(ranks[i], expected[i]) << "query index " << i;
  // Work conservation holds whoever resolved each message.
  const std::uint64_t processed = std::accumulate(
      report.nodes.begin() + 1, report.nodes.end(), std::uint64_t{0},
      [](std::uint64_t acc, const NodeReport& n) { return acc + n.queries; });
  EXPECT_EQ(processed, queries.size());
  // Stealing off is a hard guarantee of zero steals; on, it is
  // opportunistic (scheduling-dependent), so only the off side asserts.
  if (!stealing) EXPECT_EQ(report.stolen_messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PlacementTopologySteal, PlacementCombos,
    ::testing::Combine(::testing::Values(Placement::kInterleave,
                                         Placement::kNodeLocal,
                                         Placement::kReplicate),
                       ::testing::Values(SearchKernel::kBranchless,
                                         SearchKernel::kBatchedEytzinger),
                       ::testing::Bool(),       // work stealing
                       ::testing::Values(1u, 3u)),  // simulated node count
    [](const auto& info) {
      std::string name;
      for (const char* c = placement_name(std::get<0>(info.param));
           *c != '\0'; ++c)
        if (*c != '-') name += *c;
      name += std::get<1>(info.param) == SearchKernel::kBranchless
                  ? "_branchless"
                  : "_beytz";
      name += std::get<2>(info.param) ? "_steal" : "_nosteal";
      name += "_n" + std::to_string(std::get<3>(info.param));
      return name;
    });

TEST(ParallelPlacement, DiscoveredTopologyAlsoWorks) {
  // numa_nodes = 0 takes the host-discovery path (whatever this machine
  // is); placement must stay rank-exact on it too.
  const auto& fx = fixture();
  for (const Placement placement : all_placements()) {
    ParallelConfig cfg;
    cfg.num_threads = 3;
    cfg.placement = placement;
    cfg.numa_nodes = 0;
    cfg.kernel = SearchKernel::kBatchedEytzinger;
    std::vector<rank_t> ranks;
    ParallelNativeEngine(cfg).run(
        fx.keys, std::span(fx.queries.data(), 8000), &ranks);
    for (std::size_t i = 0; i < ranks.size(); ++i)
      ASSERT_EQ(ranks[i], fx.expected[i]) << placement_name(placement);
  }
}

TEST(ParallelPlacement, MoreSimulatedNodesThanThreads) {
  // Degenerate map: 8 simulated nodes, 2 workers — most nodes own no
  // worker; replicas for them are never probed and never built wrong.
  const auto& fx = fixture();
  ParallelConfig cfg;
  cfg.num_threads = 2;
  cfg.numa_nodes = 8;
  cfg.placement = Placement::kReplicate;
  std::vector<rank_t> ranks;
  ParallelNativeEngine(cfg).run(fx.keys,
                                std::span(fx.queries.data(), 5000), &ranks);
  for (std::size_t i = 0; i < 5000; ++i)
    ASSERT_EQ(ranks[i], fx.expected[i]);
}

TEST(ParallelNativeEngine, EmptyQuerySet) {
  const auto& fx = fixture();
  ParallelConfig cfg;
  cfg.num_threads = 4;
  std::vector<rank_t> ranks(7, 123);  // stale contents must be cleared
  const RunReport report = ParallelNativeEngine(cfg).run(
      fx.keys, std::span<const key_t>{}, &ranks);
  EXPECT_TRUE(ranks.empty());
  EXPECT_EQ(report.num_queries, 0u);
  EXPECT_EQ(report.messages, 0u);
}

TEST(ParallelNativeEngine, SingleKeyIndex) {
  const std::vector<key_t> keys{42};
  const std::vector<key_t> queries{0, 41, 42, 43, 0xffffffffu};
  ParallelConfig cfg;
  cfg.num_threads = 8;
  cfg.num_shards = 16;  // clamped to the index size
  std::vector<rank_t> ranks;
  ParallelNativeEngine(cfg).run(keys, queries, &ranks);
  EXPECT_EQ(ranks, (std::vector<rank_t>{0, 0, 1, 1, 1}));
}

TEST(ParallelNativeEngine, DuplicateHeavyQueries) {
  const auto& fx = fixture();
  std::vector<key_t> queries(5000, fx.keys[fx.keys.size() / 2]);
  const auto expected = workload::reference_ranks(fx.keys, queries);
  ParallelConfig cfg;
  cfg.num_threads = 3;
  cfg.num_shards = 5;
  std::vector<rank_t> ranks;
  ParallelNativeEngine(cfg).run(fx.keys, queries, &ranks);
  EXPECT_EQ(ranks, expected);
}

TEST(ParallelNativeEngine, OneKeyPerBatch) {
  const auto& fx = fixture();
  ParallelConfig cfg;
  cfg.num_threads = 2;
  cfg.batch_bytes = sizeof(key_t);  // flush after every single query
  std::vector<rank_t> ranks;
  const auto report = ParallelNativeEngine(cfg).run(
      fx.keys, std::span(fx.queries.data(), 400), &ranks);
  for (std::size_t i = 0; i < 400; ++i)
    ASSERT_EQ(ranks[i], fx.expected[i]);
  EXPECT_EQ(report.messages, 400u);
}

TEST(ParallelNativeEngine, NullOutRanksStillRuns) {
  const auto& fx = fixture();
  ParallelConfig cfg;
  cfg.num_threads = 2;
  const auto report = ParallelNativeEngine(cfg).run(
      fx.keys, std::span(fx.queries.data(), 1000), nullptr);
  EXPECT_EQ(report.num_queries, 1000u);
}

// --- Streaming clients (the v2 surface these sessions migrated to) -----

TEST(ParallelClientStream, ManyBatchesOnOneClient) {
  const auto& fx = fixture();
  ParallelConfig cfg;
  cfg.num_threads = 4;
  cfg.num_shards = 7;
  cfg.batch_bytes = 4 * KiB;
  const auto client = ParallelNativeEngine(cfg).build(fx.keys)->connect();
  const std::size_t B = 5;
  std::vector<rank_t> ranks;
  for (std::size_t b = 0; b < B; ++b) {
    const std::size_t begin = b * fx.queries.size() / B;
    const std::size_t end = (b + 1) * fx.queries.size() / B;
    const auto report = client->wait(
        client->submit(std::span(fx.queries.data() + begin, end - begin),
                       &ranks));
    ASSERT_EQ(ranks.size(), end - begin);
    for (std::size_t i = 0; i < ranks.size(); ++i)
      ASSERT_EQ(ranks[i], fx.expected[begin + i]) << "batch " << b;
    EXPECT_EQ(report.num_queries, end - begin);
  }
  EXPECT_EQ(client->batches(), B);
  // total() is the RunReport::merge accumulation over all batches.
  const RunReport& total = client->total();
  EXPECT_EQ(total.num_queries, fx.queries.size());
  EXPECT_EQ(total.num_nodes, cfg.num_threads + 1);
  EXPECT_GT(total.messages, 0u);
  ASSERT_EQ(total.nodes.size(), cfg.num_threads + 1);
  const std::uint64_t processed = std::accumulate(
      total.nodes.begin() + 1, total.nodes.end(), std::uint64_t{0},
      [](std::uint64_t acc, const NodeReport& n) { return acc + n.queries; });
  EXPECT_EQ(processed, fx.queries.size());
}

TEST(ParallelClientStream, EmptyBatchIsHarmless) {
  const auto& fx = fixture();
  ParallelConfig cfg;
  cfg.num_threads = 3;
  const auto client = ParallelNativeEngine(cfg).build(fx.keys)->connect();
  std::vector<rank_t> ranks(4, 99);
  client->wait(client->submit(std::span<const key_t>{}, &ranks));
  EXPECT_TRUE(ranks.empty());
  client->wait(client->submit(std::span(fx.queries.data(), 100), &ranks));
  for (std::size_t i = 0; i < 100; ++i)
    ASSERT_EQ(ranks[i], fx.expected[i]);
  EXPECT_EQ(client->batches(), 2u);
  EXPECT_EQ(client->total().num_queries, 100u);
}

TEST(ParallelClientStream, OutlivesItsEngine) {
  const auto& fx = fixture();
  std::unique_ptr<Client> client;
  {
    ParallelConfig cfg;
    cfg.num_threads = 2;
    client = ParallelNativeEngine(cfg).build(fx.keys)->connect();
  }  // engine destroyed; the index owns keys, partitioner, workers
  std::vector<rank_t> ranks;
  client->wait(client->submit(std::span(fx.queries.data(), 1000), &ranks));
  for (std::size_t i = 0; i < 1000; ++i)
    ASSERT_EQ(ranks[i], fx.expected[i]);
}

TEST(ClientSeam, EveryBackendStreamsCorrectly) {
  const auto& fx = fixture();
  ExperimentConfig cfg;
  cfg.method = Method::kC3;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 4;
  cfg.batch_bytes = 8 * KiB;
  const std::span<const key_t> queries(fx.queries.data(), 6000);
  for (const Backend backend :
       {Backend::kSim, Backend::kNative, Backend::kParallelNative}) {
    const auto engine = make_engine(backend, cfg);
    const auto client = engine->build(fx.keys)->connect();
    EXPECT_STREQ(client->backend(), backend_name(backend));
    std::vector<rank_t> ranks;
    for (const std::size_t begin : {std::size_t{0}, std::size_t{3000}}) {
      client->wait(client->submit(queries.subspan(begin, 3000), &ranks));
      for (std::size_t i = 0; i < 3000; ++i)
        ASSERT_EQ(ranks[i], fx.expected[begin + i])
            << backend_name(backend) << " query " << begin + i;
    }
    EXPECT_EQ(client->batches(), 2u);
    EXPECT_EQ(client->total().num_queries, queries.size());
    EXPECT_GT(client->total().makespan, 0u);
  }
}

TEST(ClientSeam, OneShotRunMatchesStreamedRanks) {
  const auto& fx = fixture();
  ExperimentConfig cfg;
  cfg.method = Method::kC3;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 5;
  const auto engine = make_engine(Backend::kParallelNative, cfg);
  const std::span<const key_t> queries(fx.queries.data(), 5000);
  std::vector<rank_t> one_shot;
  engine->run(fx.keys, queries, &one_shot);
  std::vector<rank_t> streamed;
  const auto client = engine->build(fx.keys)->connect();
  client->wait(client->submit(queries, &streamed));
  EXPECT_EQ(one_shot, streamed);
}

TEST(RunReportMerge, AddsCountersAndNodes) {
  RunReport a;
  a.method = Method::kC3;
  a.num_queries = 10;
  a.raw_makespan = 100;
  a.makespan = 100;
  a.messages = 3;
  a.wire_bytes = 64;
  a.slave_idle_fraction = 0.5;
  a.nodes.resize(2);
  a.nodes[1].queries = 10;
  RunReport b = a;
  b.num_queries = 30;
  b.raw_makespan = 300;
  b.makespan = 300;
  b.slave_idle_fraction = 0.1;
  b.nodes[1].queries = 30;
  a.merge(b);
  EXPECT_EQ(a.num_queries, 40u);
  EXPECT_EQ(a.makespan, 400);
  EXPECT_EQ(a.messages, 6u);
  EXPECT_EQ(a.wire_bytes, 128u);
  // Time-weighted: (0.5*100 + 0.1*300) / 400 = 0.2.
  EXPECT_NEAR(a.slave_idle_fraction, 0.2, 1e-12);
  ASSERT_EQ(a.nodes.size(), 2u);
  EXPECT_EQ(a.nodes[1].queries, 40u);
  // Mismatched node sets have no meaningful element-wise sum.
  RunReport c = b;
  c.nodes.resize(5);
  a.merge(c);
  EXPECT_TRUE(a.nodes.empty());
}

// The seam itself: all three backends, built from the same
// ExperimentConfig through make_engine, agree on every rank.
TEST(EngineSeam, BackendsAgreeOnRanks) {
  const auto& fx = fixture();
  ExperimentConfig cfg;
  cfg.method = Method::kC3;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 5;
  cfg.batch_bytes = 16 * KiB;
  const std::span<const key_t> queries(fx.queries.data(), 20000);
  const auto expected = workload::reference_ranks(fx.keys, queries);
  for (const Backend backend :
       {Backend::kSim, Backend::kNative, Backend::kParallelNative}) {
    const auto engine = make_engine(backend, cfg);
    std::vector<rank_t> ranks;
    const RunReport report = engine->run(fx.keys, queries, &ranks);
    EXPECT_EQ(ranks, expected) << backend_name(backend);
    EXPECT_EQ(report.num_queries, queries.size()) << backend_name(backend);
    EXPECT_GT(report.makespan, 0u) << backend_name(backend);
  }
}

TEST(EngineSeam, BackendNamesAreStable) {
  ExperimentConfig cfg;
  cfg.method = Method::kC3;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 3;
  EXPECT_STREQ(make_engine(Backend::kSim, cfg)->name(), "sim");
  EXPECT_STREQ(make_engine(Backend::kNative, cfg)->name(), "native");
  EXPECT_STREQ(make_engine(Backend::kParallelNative, cfg)->name(),
               "parallel-native");
}

TEST(EngineSeam, ParallelConfigMapsSlaves) {
  ExperimentConfig cfg;
  cfg.method = Method::kC3;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 11;
  cfg.num_masters = 1;
  cfg.placement = Placement::kReplicate;
  cfg.machine.numa_nodes = 2;
  const ParallelConfig parallel = parallel_config_from(cfg);
  EXPECT_EQ(parallel.num_threads, 10u);
  EXPECT_EQ(parallel.num_shards, 10u);
  EXPECT_EQ(parallel.batch_bytes, cfg.batch_bytes);
  EXPECT_EQ(parallel.placement, Placement::kReplicate);
  EXPECT_EQ(parallel.numa_nodes, 2u);
}

}  // namespace
}  // namespace dici::core
