// ParallelNativeEngine correctness: exact agreement with
// std::upper_bound across thread counts, shard counts, and kernels, plus
// degenerate inputs and cross-backend agreement through the Engine seam.
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/engine.hpp"
#include "src/core/parallel_engine.hpp"
#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"
#include "src/workload/workload.hpp"

namespace dici::core {
namespace {

struct Fixture {
  std::vector<key_t> keys;
  std::vector<key_t> queries;
  std::vector<rank_t> expected;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    Rng rng(20050411);
    fx.keys = workload::make_sorted_unique_keys(30000, rng);
    fx.queries = workload::make_uniform_queries(50000, rng);
    fx.expected = workload::reference_ranks(fx.keys, fx.queries);
    return fx;
  }();
  return f;
}

using Combo = std::tuple<std::uint32_t, std::uint32_t, SearchKernel>;

class ParallelCombos : public ::testing::TestWithParam<Combo> {};

TEST_P(ParallelCombos, ExactRanks) {
  const auto& [threads, shards, kernel] = GetParam();
  const auto& fx = fixture();
  ParallelConfig cfg;
  cfg.num_threads = threads;
  cfg.num_shards = shards;
  cfg.kernel = kernel;
  cfg.batch_bytes = 8 * KiB;
  std::vector<rank_t> ranks;
  const RunReport report =
      ParallelNativeEngine(cfg).run(fx.keys, fx.queries, &ranks);
  ASSERT_EQ(ranks.size(), fx.expected.size());
  for (std::size_t i = 0; i < ranks.size(); ++i)
    ASSERT_EQ(ranks[i], fx.expected[i]) << "query index " << i;
  EXPECT_EQ(report.method, Method::kC3);
  EXPECT_EQ(report.num_queries, fx.queries.size());
  // Node 0 is the dispatcher (master); workers are nodes 1..threads.
  EXPECT_EQ(report.num_nodes, threads + 1);
  EXPECT_GT(report.messages, 0u);
  ASSERT_EQ(report.nodes.size(), threads + 1);
  EXPECT_EQ(report.nodes[0].queries, fx.queries.size());
  // Every query is processed by exactly one worker.
  const std::uint64_t processed = std::accumulate(
      report.nodes.begin() + 1, report.nodes.end(), std::uint64_t{0},
      [](std::uint64_t acc, const NodeReport& n) { return acc + n.queries; });
  EXPECT_EQ(processed, fx.queries.size());
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsShardsKernels, ParallelCombos,
    ::testing::Combine(
        ::testing::Values(1u, 2u, 8u),          // thread counts (issue spec)
        ::testing::Values(0u, 1u, 3u, 16u),     // shard counts; 0 = threads
        ::testing::Values(SearchKernel::kStdUpperBound,
                          SearchKernel::kBranchless,
                          SearchKernel::kPrefetch)),
    [](const auto& info) {
      std::string name = "t" + std::to_string(std::get<0>(info.param)) +
                         "_s" + std::to_string(std::get<1>(info.param)) + "_";
      for (const char* c = search_kernel_name(std::get<2>(info.param));
           *c != '\0'; ++c)
        if (*c != '-') name += *c;
      return name;
    });

TEST(ParallelNativeEngine, EmptyQuerySet) {
  const auto& fx = fixture();
  ParallelConfig cfg;
  cfg.num_threads = 4;
  std::vector<rank_t> ranks(7, 123);  // stale contents must be cleared
  const RunReport report = ParallelNativeEngine(cfg).run(
      fx.keys, std::span<const key_t>{}, &ranks);
  EXPECT_TRUE(ranks.empty());
  EXPECT_EQ(report.num_queries, 0u);
  EXPECT_EQ(report.messages, 0u);
}

TEST(ParallelNativeEngine, SingleKeyIndex) {
  const std::vector<key_t> keys{42};
  const std::vector<key_t> queries{0, 41, 42, 43, 0xffffffffu};
  ParallelConfig cfg;
  cfg.num_threads = 8;
  cfg.num_shards = 16;  // clamped to the index size
  std::vector<rank_t> ranks;
  ParallelNativeEngine(cfg).run(keys, queries, &ranks);
  EXPECT_EQ(ranks, (std::vector<rank_t>{0, 0, 1, 1, 1}));
}

TEST(ParallelNativeEngine, DuplicateHeavyQueries) {
  const auto& fx = fixture();
  std::vector<key_t> queries(5000, fx.keys[fx.keys.size() / 2]);
  const auto expected = workload::reference_ranks(fx.keys, queries);
  ParallelConfig cfg;
  cfg.num_threads = 3;
  cfg.num_shards = 5;
  std::vector<rank_t> ranks;
  ParallelNativeEngine(cfg).run(fx.keys, queries, &ranks);
  EXPECT_EQ(ranks, expected);
}

TEST(ParallelNativeEngine, OneKeyPerBatch) {
  const auto& fx = fixture();
  ParallelConfig cfg;
  cfg.num_threads = 2;
  cfg.batch_bytes = sizeof(key_t);  // flush after every single query
  std::vector<rank_t> ranks;
  const auto report = ParallelNativeEngine(cfg).run(
      fx.keys, std::span(fx.queries.data(), 400), &ranks);
  for (std::size_t i = 0; i < 400; ++i)
    ASSERT_EQ(ranks[i], fx.expected[i]);
  EXPECT_EQ(report.messages, 400u);
}

TEST(ParallelNativeEngine, NullOutRanksStillRuns) {
  const auto& fx = fixture();
  ParallelConfig cfg;
  cfg.num_threads = 2;
  const auto report = ParallelNativeEngine(cfg).run(
      fx.keys, std::span(fx.queries.data(), 1000), nullptr);
  EXPECT_EQ(report.num_queries, 1000u);
}

// The seam itself: all three backends, built from the same
// ExperimentConfig through make_engine, agree on every rank.
TEST(EngineSeam, BackendsAgreeOnRanks) {
  const auto& fx = fixture();
  ExperimentConfig cfg;
  cfg.method = Method::kC3;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 5;
  cfg.batch_bytes = 16 * KiB;
  const std::span<const key_t> queries(fx.queries.data(), 20000);
  const auto expected = workload::reference_ranks(fx.keys, queries);
  for (const Backend backend :
       {Backend::kSim, Backend::kNative, Backend::kParallelNative}) {
    const auto engine = make_engine(backend, cfg);
    std::vector<rank_t> ranks;
    const RunReport report = engine->run(fx.keys, queries, &ranks);
    EXPECT_EQ(ranks, expected) << backend_name(backend);
    EXPECT_EQ(report.num_queries, queries.size()) << backend_name(backend);
    EXPECT_GT(report.makespan, 0u) << backend_name(backend);
  }
}

TEST(EngineSeam, BackendNamesAreStable) {
  ExperimentConfig cfg;
  cfg.method = Method::kC3;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 3;
  EXPECT_STREQ(make_engine(Backend::kSim, cfg)->name(), "sim");
  EXPECT_STREQ(make_engine(Backend::kNative, cfg)->name(), "native");
  EXPECT_STREQ(make_engine(Backend::kParallelNative, cfg)->name(),
               "parallel-native");
}

TEST(EngineSeam, ParallelConfigMapsSlaves) {
  ExperimentConfig cfg;
  cfg.method = Method::kC3;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 11;
  cfg.num_masters = 1;
  const ParallelConfig parallel = parallel_config_from(cfg);
  EXPECT_EQ(parallel.num_threads, 10u);
  EXPECT_EQ(parallel.num_shards, 10u);
  EXPECT_EQ(parallel.batch_bytes, cfg.batch_bytes);
}

}  // namespace
}  // namespace dici::core
