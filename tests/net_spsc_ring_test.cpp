// The lock-free dispatch primitives under the parallel engine's submit
// path: SpscRing ordering/capacity/ownership semantics, and the
// SpscRingHub's registration, round-robin draining, park/wake edge, and
// close-with-drain contract. The threaded stress cases are what the
// TSan CI job races.
#include "src/net/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace dici::net {
namespace {

// --- SpscRing basics ------------------------------------------------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(256).capacity(), 256u);
  EXPECT_EQ(SpscRing<int>(257).capacity(), 512u);
}

TEST(SpscRing, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 1; i <= 3; ++i) {
    int v = i;
    ASSERT_TRUE(ring.try_push(v));
  }
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, FullPushFailsAndLeavesItemIntact) {
  SpscRing<std::string> ring(2);
  std::string a = "a", b = "b", c = "c";
  ASSERT_TRUE(ring.try_push(a));
  ASSERT_TRUE(ring.try_push(b));
  ASSERT_FALSE(ring.try_push(c));
  EXPECT_EQ(c, "c");  // a failed push must not consume the item
  std::string out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, "a");
  ASSERT_TRUE(ring.try_push(c));  // slot freed, retry succeeds
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<int> ring(4);
  int out = 0;
  for (int i = 0; i < 1000; ++i) {
    int v = i;
    ASSERT_TRUE(ring.try_push(v));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PoppedSlotsDropTheirPayload) {
  // The ring resets popped slots to T{}, so it never pins references.
  auto payload = std::make_shared<int>(42);
  SpscRing<std::shared_ptr<int>> ring(4);
  auto item = payload;
  ASSERT_TRUE(ring.try_push(item));
  std::shared_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  out.reset();
  EXPECT_EQ(payload.use_count(), 1);  // only our own reference remains
}

TEST(SpscRing, CrossThreadStressKeepsOrder) {
  SpscRing<int> ring(64);
  constexpr int kItems = 200000;
  std::thread consumer([&] {
    int expected = 0;
    int out = 0;
    while (expected < kItems) {
      if (ring.try_pop(out)) {
        ASSERT_EQ(out, expected);
        ++expected;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kItems; ++i) {
    int v = i;
    while (!ring.try_push(v)) std::this_thread::yield();
  }
  consumer.join();
}

// --- SpscRingHub ----------------------------------------------------------

TEST(SpscRingHub, SingleChannelFifo) {
  SpscRingHub<int> hub;
  auto channel = hub.open(8);
  channel->push(1);
  channel->push(2);
  int out = 0;
  ASSERT_TRUE(hub.pop(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(hub.pop(out));
  EXPECT_EQ(out, 2);
  channel->close();
  hub.close();
  EXPECT_FALSE(hub.pop(out));
}

TEST(SpscRingHub, CloseDrainsBeforeEnding) {
  SpscRingHub<int> hub;
  auto channel = hub.open(8);
  channel->push(7);
  channel->push(8);
  channel->close();
  hub.close();  // items pushed before close must still come out
  int out = 0;
  ASSERT_TRUE(hub.pop(out));
  EXPECT_EQ(out, 7);
  ASSERT_TRUE(hub.pop(out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(hub.pop(out));
  EXPECT_FALSE(hub.pop(out));  // stays ended
}

TEST(SpscRingHub, BlockedConsumerWakesOnPush) {
  SpscRingHub<int> hub;
  auto channel = hub.open(4);
  std::atomic<int> got{-1};
  std::thread consumer([&] {
    int out = 0;
    ASSERT_TRUE(hub.pop(out));  // parks: nothing pushed yet
    got.store(out, std::memory_order_release);
  });
  // Give the consumer a chance to reach the parked state, then push.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  channel->push(99);
  consumer.join();
  EXPECT_EQ(got.load(), 99);
}

struct Tagged {
  int producer = -1;
  int seq = -1;
};

TEST(SpscRingHub, ManyProducersEachStayFifo) {
  constexpr int kProducers = 4;
  constexpr int kItems = 50000;
  SpscRingHub<Tagged> hub;
  std::vector<std::shared_ptr<SpscRingHub<Tagged>::Channel>> channels;
  for (int p = 0; p < kProducers; ++p) channels.push_back(hub.open(64));

  std::thread consumer([&] {
    std::vector<int> next(kProducers, 0);
    Tagged item;
    long total = 0;
    while (total < static_cast<long>(kProducers) * kItems) {
      if (!hub.pop(item)) break;
      ASSERT_EQ(item.seq, next[item.producer])
          << "producer " << item.producer;
      ++next[item.producer];
      ++total;
    }
    EXPECT_EQ(total, static_cast<long>(kProducers) * kItems);
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < kItems; ++i) channels[p]->push({p, i});
    });
  for (auto& t : producers) t.join();
  for (auto& channel : channels) channel->close();
  consumer.join();
  hub.close();
}

TEST(SpscRingHub, ChannelChurnPrunesAndKeepsDelivering) {
  // Producers that open, stream, and close channels repeatedly — the
  // registration/prune path the engine hits on client connect/destroy.
  SpscRingHub<int> hub;
  constexpr int kGenerations = 60;
  constexpr int kPerGeneration = 200;
  std::thread consumer([&] {
    long sum = 0;
    int out = 0;
    while (hub.pop(out)) sum += out;
    EXPECT_EQ(sum, static_cast<long>(kGenerations) * kPerGeneration);
  });
  std::thread churner([&] {
    for (int g = 0; g < kGenerations; ++g) {
      auto channel = hub.open(16);
      for (int i = 0; i < kPerGeneration; ++i) channel->push(1);
      channel->close();
    }
  });
  churner.join();
  hub.close();
  consumer.join();
}

TEST(SpscRingHub, ParkWakePingPongNeverLosesAWakeup) {
  // The lost-wakeup repro for the eventcount protocol: every iteration
  // forces a full park/wake cycle — the producer refuses to push item
  // i+1 until the consumer proves it popped item i, so the consumer is
  // parked (or inside the announce/rescan/wait window) for every single
  // push. Under the old flag-based protocol a push racing the window
  // between the consumer's final empty re-scan and its wait() could
  // leave the item in the ring with no wake pending — this test then
  // hangs (and trips the ctest timeout); with the generation ticket it
  // must complete. TSan races the fence pairing.
  SpscRingHub<int> hub;
  auto channel = hub.open(4);
  constexpr int kRounds = 20000;
  std::atomic<int> popped{0};
  std::thread consumer([&] {
    int out = 0;
    for (int i = 0; i < kRounds; ++i) {
      ASSERT_TRUE(hub.pop(out));
      ASSERT_EQ(out, i);
      popped.store(i + 1, std::memory_order_release);
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    channel->push(i);
    while (popped.load(std::memory_order_acquire) <= i)
      std::this_thread::yield();
  }
  consumer.join();
  channel->close();
  hub.close();
}

TEST(SpscRingHub, WaitPopTimesOutThenDelivers) {
  SpscRingHub<int> hub;
  auto channel = hub.open(4);
  int out = 0;
  using Result = SpscRingHub<int>::PopResult;
  // Nothing pushed: the timed park expires instead of blocking forever
  // (the nap-and-recheck edge the stealing workers rely on).
  EXPECT_EQ(hub.wait_pop(out, std::chrono::milliseconds(5)),
            Result::kTimeout);
  channel->push(42);
  EXPECT_EQ(hub.wait_pop(out, std::chrono::milliseconds(100)),
            Result::kItem);
  EXPECT_EQ(out, 42);
  channel->push(43);  // buffered before close: drained, then ended
  channel->close();
  hub.close();
  EXPECT_EQ(hub.wait_pop(out, std::chrono::milliseconds(100)),
            Result::kItem);
  EXPECT_EQ(out, 43);
  EXPECT_EQ(hub.wait_pop(out, std::chrono::milliseconds(5)),
            Result::kClosed);
}

TEST(SpscRingHub, PendingTracksBufferedItems) {
  SpscRingHub<int> hub;
  auto channel = hub.open(8);
  EXPECT_EQ(hub.pending(), 0u);
  channel->push(1);
  channel->push(2);
  channel->push(3);
  EXPECT_EQ(hub.pending(), 3u);
  int out = 0;
  ASSERT_TRUE(hub.try_pop(out));
  EXPECT_EQ(hub.pending(), 2u);
  ASSERT_TRUE(hub.try_steal(out));
  EXPECT_EQ(hub.pending(), 1u);
  channel->close();
  hub.close();
  ASSERT_TRUE(hub.pop(out));
  EXPECT_EQ(hub.pending(), 0u);
}

TEST(SpscRingHub, StealTakesFifoAndInterleavesWithOwner) {
  SpscRingHub<int> hub;
  auto channel = hub.open(16);
  for (int i = 0; i < 6; ++i) channel->push(i);
  // Owner pops and a thief steals from the same channel: both consume
  // from the head (one consumer AT A TIME), so the combined sequence is
  // still the push order with nothing lost or duplicated.
  int out = 0;
  for (int i = 0; i < 6; ++i) {
    if (i % 2 == 0) {
      ASSERT_TRUE(hub.try_pop(out));
    } else {
      ASSERT_TRUE(hub.try_steal(out));
    }
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(hub.try_steal(out));  // empty: steal fails cleanly
  channel->close();
  hub.close();
}

TEST(SpscRingHub, ConcurrentOwnerAndThievesConserveItems) {
  // The stealing surface the engine's idle workers exercise: one owner
  // draining normally, two thieves grabbing what they can, several
  // producers. Every item must be consumed exactly ONCE — no loss, no
  // duplication — whoever wins it. (Per-producer FIFO of the combined
  // consumption sequence is pinned by the single-threaded interleave
  // test above; here consumers record their takes after releasing the
  // consumer lock, so arrival order is not checkable.)
  constexpr int kProducers = 3;
  constexpr int kItems = 30000;
  SpscRingHub<Tagged> hub;
  std::vector<std::shared_ptr<SpscRingHub<Tagged>::Channel>> channels;
  for (int p = 0; p < kProducers; ++p) channels.push_back(hub.open(32));

  std::atomic<long> consumed{0};
  std::vector<std::atomic<char>> seen(
      static_cast<std::size_t>(kProducers) * kItems);
  auto take = [&](const Tagged& item) {
    const std::size_t slot =
        static_cast<std::size_t>(item.producer) * kItems + item.seq;
    ASSERT_EQ(seen[slot].exchange(1), 0)
        << "item consumed twice: producer " << item.producer << " seq "
        << item.seq;
    consumed.fetch_add(1, std::memory_order_relaxed);
  };

  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  for (int t = 0; t < 2; ++t)
    thieves.emplace_back([&] {
      Tagged item;
      while (!done.load(std::memory_order_acquire)) {
        if (hub.try_steal(item)) take(item);
        else std::this_thread::yield();
      }
    });
  std::thread owner([&] {
    Tagged item;
    while (hub.pop(item)) take(item);
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < kItems; ++i) channels[p]->push({p, i});
    });
  for (auto& t : producers) t.join();
  while (consumed.load(std::memory_order_relaxed) <
         static_cast<long>(kProducers) * kItems)
    std::this_thread::yield();
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  for (auto& channel : channels) channel->close();
  hub.close();
  owner.join();
  EXPECT_EQ(consumed.load(), static_cast<long>(kProducers) * kItems);
}

TEST(SpscRingHub, FullRingBackpressuresWithoutLoss) {
  // A 2-slot ring forces the producer through the spin-retry path while
  // the consumer drains slowly; every item must still arrive in order.
  SpscRingHub<int> hub;
  auto channel = hub.open(1);  // rounds up to 2 slots
  constexpr int kItems = 5000;
  std::thread consumer([&] {
    int out = 0;
    for (int expected = 0; expected < kItems; ++expected) {
      ASSERT_TRUE(hub.pop(out));
      ASSERT_EQ(out, expected);
    }
  });
  for (int i = 0; i < kItems; ++i) channel->push(i);
  consumer.join();
  channel->close();
  hub.close();
}

}  // namespace
}  // namespace dici::net
