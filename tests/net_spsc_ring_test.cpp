// The lock-free dispatch primitives under the parallel engine's submit
// path: SpscRing ordering/capacity/ownership semantics, and the
// SpscRingHub's registration, round-robin draining, park/wake edge, and
// close-with-drain contract. The threaded stress cases are what the
// TSan CI job races.
#include "src/net/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace dici::net {
namespace {

// --- SpscRing basics ------------------------------------------------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(256).capacity(), 256u);
  EXPECT_EQ(SpscRing<int>(257).capacity(), 512u);
}

TEST(SpscRing, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 1; i <= 3; ++i) {
    int v = i;
    ASSERT_TRUE(ring.try_push(v));
  }
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, FullPushFailsAndLeavesItemIntact) {
  SpscRing<std::string> ring(2);
  std::string a = "a", b = "b", c = "c";
  ASSERT_TRUE(ring.try_push(a));
  ASSERT_TRUE(ring.try_push(b));
  ASSERT_FALSE(ring.try_push(c));
  EXPECT_EQ(c, "c");  // a failed push must not consume the item
  std::string out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, "a");
  ASSERT_TRUE(ring.try_push(c));  // slot freed, retry succeeds
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<int> ring(4);
  int out = 0;
  for (int i = 0; i < 1000; ++i) {
    int v = i;
    ASSERT_TRUE(ring.try_push(v));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PoppedSlotsDropTheirPayload) {
  // The ring resets popped slots to T{}, so it never pins references.
  auto payload = std::make_shared<int>(42);
  SpscRing<std::shared_ptr<int>> ring(4);
  auto item = payload;
  ASSERT_TRUE(ring.try_push(item));
  std::shared_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  out.reset();
  EXPECT_EQ(payload.use_count(), 1);  // only our own reference remains
}

TEST(SpscRing, CrossThreadStressKeepsOrder) {
  SpscRing<int> ring(64);
  constexpr int kItems = 200000;
  std::thread consumer([&] {
    int expected = 0;
    int out = 0;
    while (expected < kItems) {
      if (ring.try_pop(out)) {
        ASSERT_EQ(out, expected);
        ++expected;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kItems; ++i) {
    int v = i;
    while (!ring.try_push(v)) std::this_thread::yield();
  }
  consumer.join();
}

// --- SpscRingHub ----------------------------------------------------------

TEST(SpscRingHub, SingleChannelFifo) {
  SpscRingHub<int> hub;
  auto channel = hub.open(8);
  channel->push(1);
  channel->push(2);
  int out = 0;
  ASSERT_TRUE(hub.pop(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(hub.pop(out));
  EXPECT_EQ(out, 2);
  channel->close();
  hub.close();
  EXPECT_FALSE(hub.pop(out));
}

TEST(SpscRingHub, CloseDrainsBeforeEnding) {
  SpscRingHub<int> hub;
  auto channel = hub.open(8);
  channel->push(7);
  channel->push(8);
  channel->close();
  hub.close();  // items pushed before close must still come out
  int out = 0;
  ASSERT_TRUE(hub.pop(out));
  EXPECT_EQ(out, 7);
  ASSERT_TRUE(hub.pop(out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(hub.pop(out));
  EXPECT_FALSE(hub.pop(out));  // stays ended
}

TEST(SpscRingHub, BlockedConsumerWakesOnPush) {
  SpscRingHub<int> hub;
  auto channel = hub.open(4);
  std::atomic<int> got{-1};
  std::thread consumer([&] {
    int out = 0;
    ASSERT_TRUE(hub.pop(out));  // parks: nothing pushed yet
    got.store(out, std::memory_order_release);
  });
  // Give the consumer a chance to reach the parked state, then push.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  channel->push(99);
  consumer.join();
  EXPECT_EQ(got.load(), 99);
}

struct Tagged {
  int producer = -1;
  int seq = -1;
};

TEST(SpscRingHub, ManyProducersEachStayFifo) {
  constexpr int kProducers = 4;
  constexpr int kItems = 50000;
  SpscRingHub<Tagged> hub;
  std::vector<std::shared_ptr<SpscRingHub<Tagged>::Channel>> channels;
  for (int p = 0; p < kProducers; ++p) channels.push_back(hub.open(64));

  std::thread consumer([&] {
    std::vector<int> next(kProducers, 0);
    Tagged item;
    long total = 0;
    while (total < static_cast<long>(kProducers) * kItems) {
      if (!hub.pop(item)) break;
      ASSERT_EQ(item.seq, next[item.producer])
          << "producer " << item.producer;
      ++next[item.producer];
      ++total;
    }
    EXPECT_EQ(total, static_cast<long>(kProducers) * kItems);
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < kItems; ++i) channels[p]->push({p, i});
    });
  for (auto& t : producers) t.join();
  for (auto& channel : channels) channel->close();
  consumer.join();
  hub.close();
}

TEST(SpscRingHub, ChannelChurnPrunesAndKeepsDelivering) {
  // Producers that open, stream, and close channels repeatedly — the
  // registration/prune path the engine hits on client connect/destroy.
  SpscRingHub<int> hub;
  constexpr int kGenerations = 60;
  constexpr int kPerGeneration = 200;
  std::thread consumer([&] {
    long sum = 0;
    int out = 0;
    while (hub.pop(out)) sum += out;
    EXPECT_EQ(sum, static_cast<long>(kGenerations) * kPerGeneration);
  });
  std::thread churner([&] {
    for (int g = 0; g < kGenerations; ++g) {
      auto channel = hub.open(16);
      for (int i = 0; i < kPerGeneration; ++i) channel->push(1);
      channel->close();
    }
  });
  churner.join();
  hub.close();
  consumer.join();
}

TEST(SpscRingHub, FullRingBackpressuresWithoutLoss) {
  // A 2-slot ring forces the producer through the spin-retry path while
  // the consumer drains slowly; every item must still arrive in order.
  SpscRingHub<int> hub;
  auto channel = hub.open(1);  // rounds up to 2 slots
  constexpr int kItems = 5000;
  std::thread consumer([&] {
    int out = 0;
    for (int expected = 0; expected < kItems; ++expected) {
      ASSERT_TRUE(hub.pop(out));
      ASSERT_EQ(out, expected);
    }
  });
  for (int i = 0; i < kItems; ++i) channel->push(i);
  consumer.join();
  channel->close();
  hub.close();
}

}  // namespace
}  // namespace dici::net
