#include "src/sim/cache.hpp"

#include <gtest/gtest.h>

#include "src/util/bytes.hpp"

namespace dici::sim {
namespace {

arch::CacheGeometry tiny_cache() {
  // 4 sets x 2 ways x 32 B lines = 256 B.
  return {256, 32, 2, 10.0};
}

TEST(Cache, ColdMissThenHit) {
  Cache c(tiny_cache());
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(31));   // same line
  EXPECT_FALSE(c.access(32));  // next line
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEvictionWithinSet) {
  Cache c(tiny_cache());
  // Three lines mapping to set 0 (stride = sets * line = 128).
  c.access(0);
  c.access(128);
  c.access(256);            // evicts line 0 (LRU)
  EXPECT_FALSE(c.contains(0));
  EXPECT_TRUE(c.contains(128));
  EXPECT_TRUE(c.contains(256));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, TouchRefreshesLru) {
  Cache c(tiny_cache());
  c.access(0);
  c.access(128);
  c.access(0);    // 0 becomes MRU
  c.access(256);  // evicts 128, not 0
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(128));
}

TEST(Cache, SetsAreIndependent) {
  Cache c(tiny_cache());
  c.access(0);    // set 0
  c.access(32);   // set 1
  c.access(64);   // set 2
  c.access(96);   // set 3
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(32));
  EXPECT_TRUE(c.contains(64));
  EXPECT_TRUE(c.contains(96));
  EXPECT_EQ(c.stats().evictions, 0u);
}

TEST(Cache, FillDoesNotCountDemand) {
  Cache c(tiny_cache());
  c.fill(0);
  EXPECT_EQ(c.stats().accesses(), 0u);
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.access(0));  // now a demand hit
  EXPECT_EQ(c.stats().hits, 1u);
}

TEST(Cache, FillReportsPriorResidency) {
  Cache c(tiny_cache());
  EXPECT_FALSE(c.fill(0));
  EXPECT_TRUE(c.fill(0));
}

TEST(Cache, ClearDropsContentsKeepsStats) {
  Cache c(tiny_cache());
  c.access(0);
  c.clear();
  EXPECT_FALSE(c.contains(0));
  EXPECT_EQ(c.stats().misses, 1u);
  c.reset_stats();
  EXPECT_EQ(c.stats().misses, 0u);
}

TEST(Cache, WorkingSetLargerThanCacheAlwaysMisses) {
  Cache c(tiny_cache());  // 8 lines total
  // Cycle through 16 lines twice: with LRU and a round-robin pattern
  // nothing survives until reuse.
  for (int round = 0; round < 2; ++round)
    for (laddr_t a = 0; a < 16 * 32; a += 32) c.access(a);
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.stats().misses, 32u);
}

TEST(Cache, WorkingSetSmallerThanCacheAllHitsAfterWarmup) {
  Cache c(tiny_cache());
  for (int round = 0; round < 3; ++round)
    for (laddr_t a = 0; a < 8 * 32; a += 32) c.access(a);
  EXPECT_EQ(c.stats().misses, 8u);   // cold only
  EXPECT_EQ(c.stats().hits, 16u);
}

TEST(Cache, MissRate) {
  Cache c(tiny_cache());
  c.access(0);
  c.access(0);
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.5);
}

// Pentium III-sized geometry sanity.
TEST(Cache, PaperGeometry) {
  Cache l2({512 * KiB, 32, 8, 110.0});
  // Touch a 3.2 MB "tree": far more lines than fit.
  const std::uint64_t lines = (3200 * KiB) / 32;
  for (std::uint64_t i = 0; i < lines; ++i) l2.access(i * 32);
  EXPECT_EQ(l2.stats().misses, lines);
  // Second pass: still ~all misses (LRU + sequential sweep).
  for (std::uint64_t i = 0; i < lines; ++i) l2.access(i * 32);
  EXPECT_EQ(l2.stats().hits, 0u);
}

struct GeometryCase {
  std::uint64_t size;
  std::uint32_t line;
  std::uint32_t ways;
};

class CacheGeometryParam : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(CacheGeometryParam, ResidencyNeverExceedsCapacity) {
  const auto& p = GetParam();
  Cache c({p.size, p.line, p.ways, 1.0});
  const std::uint64_t lines = p.size / p.line;
  // Touch 4x capacity, then count residents among all touched lines.
  for (std::uint64_t i = 0; i < 4 * lines; ++i) c.access(i * p.line);
  std::uint64_t resident = 0;
  for (std::uint64_t i = 0; i < 4 * lines; ++i)
    resident += c.contains(i * p.line);
  EXPECT_EQ(resident, lines);
}

TEST_P(CacheGeometryParam, RepeatedSingleLineAlwaysHits) {
  const auto& p = GetParam();
  Cache c({p.size, p.line, p.ways, 1.0});
  c.access(p.line * 3);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(c.access(p.line * 3));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheGeometryParam,
    ::testing::Values(GeometryCase{16 * KiB, 32, 4},   // P3 L1
                      GeometryCase{512 * KiB, 32, 8},  // P3 L2
                      GeometryCase{8 * KiB, 64, 4},    // P4 L1
                      GeometryCase{512 * KiB, 128, 8}, // P4 L2
                      GeometryCase{1 * KiB, 64, 1},    // direct-mapped
                      GeometryCase{2 * KiB, 32, 2}));

}  // namespace
}  // namespace dici::sim
