// Property sweeps over tree geometry: capacity, level structure, and
// footprint invariants across key counts, layouts and node sizes.
#include <gtest/gtest.h>

#include "src/index/geometry.hpp"
#include "src/util/bytes.hpp"

namespace dici::index {
namespace {

struct GeomCase {
  std::uint64_t keys;
  std::uint32_t node_bytes;
  TreeLayout layout;
  std::uint32_t leaf_entry;
};

class GeometryProperty : public ::testing::TestWithParam<GeomCase> {};

TEST_P(GeometryProperty, RootIsSingleAndLeavesCoverKeys) {
  const auto& p = GetParam();
  const auto g =
      compute_geometry(p.keys, {p.node_bytes, p.layout, p.leaf_entry});
  EXPECT_EQ(g.lines.front(), 1u);
  const std::uint64_t leaf_keys = p.node_bytes / p.leaf_entry;
  EXPECT_EQ(g.leaf_blocks(), (p.keys + leaf_keys - 1) / leaf_keys);
  // Leaf capacity covers all keys; one fewer block would not.
  EXPECT_GE(g.leaf_blocks() * leaf_keys, p.keys);
  EXPECT_LT((g.leaf_blocks() - 1) * leaf_keys, p.keys);
}

TEST_P(GeometryProperty, EveryLevelIsCeilOfTheOneBelow) {
  const auto& p = GetParam();
  const TreeConfig cfg{p.node_bytes, p.layout, p.leaf_entry};
  const auto g = compute_geometry(p.keys, cfg);
  const std::uint64_t b = cfg.branching();
  for (std::size_t l = 0; l + 1 < g.lines.size(); ++l)
    EXPECT_EQ(g.lines[l], (g.lines[l + 1] + b - 1) / b) << "level " << l;
}

TEST_P(GeometryProperty, DepthIsLogarithmic) {
  const auto& p = GetParam();
  const TreeConfig cfg{p.node_bytes, p.layout, p.leaf_entry};
  const auto g = compute_geometry(p.keys, cfg);
  // branching^(internal levels) must reach the leaf count, and not
  // overshoot by more than one extra level.
  std::uint64_t reach = 1;
  for (std::uint32_t l = 0; l < g.internal_levels(); ++l)
    reach *= cfg.branching();
  EXPECT_GE(reach, g.leaf_blocks());
  if (g.internal_levels() > 0) {
    EXPECT_LT(reach / cfg.branching(), g.leaf_blocks());
  }
}

TEST_P(GeometryProperty, FootprintAccounting) {
  const auto& p = GetParam();
  const TreeConfig cfg{p.node_bytes, p.layout, p.leaf_entry};
  const auto g = compute_geometry(p.keys, cfg);
  EXPECT_EQ(g.total_bytes(), g.arena_bytes() + g.leaf_bytes());
  EXPECT_EQ(g.arena_bytes(), g.internal_nodes() * p.node_bytes);
  EXPECT_EQ(g.leaf_bytes(), g.leaf_blocks() * p.node_bytes);
  EXPECT_EQ(g.total_lines() * p.node_bytes, g.total_bytes());
  // Internal overhead is a geometric series: strictly less than
  // leaf_count/(b-1) + levels nodes.
  EXPECT_LE(g.internal_nodes(),
            g.leaf_blocks() / (cfg.branching() - 1) + g.internal_levels());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeometryProperty,
    ::testing::Values(
        GeomCase{1, 32, TreeLayout::kExplicitPointers, 4},
        GeomCase{9, 32, TreeLayout::kCsbFirstChild, 4},
        GeomCase{64, 32, TreeLayout::kExplicitPointers, 8},
        GeomCase{1000, 32, TreeLayout::kCsbFirstChild, 4},
        GeomCase{327680, 32, TreeLayout::kExplicitPointers, 8},
        GeomCase{327680, 32, TreeLayout::kCsbFirstChild, 4},
        GeomCase{1 << 20, 64, TreeLayout::kExplicitPointers, 4},
        GeomCase{1 << 20, 64, TreeLayout::kCsbFirstChild, 8},
        GeomCase{1 << 23, 32, TreeLayout::kExplicitPointers, 8},
        GeomCase{12345677, 128, TreeLayout::kCsbFirstChild, 4}));

TEST(GeometryProperty, BiggerLeafEntriesGrowTheFootprint) {
  const auto packed =
      compute_geometry(100000, {32, TreeLayout::kExplicitPointers, 4});
  const auto paired =
      compute_geometry(100000, {32, TreeLayout::kExplicitPointers, 8});
  EXPECT_GT(paired.total_bytes(), packed.total_bytes());
  EXPECT_GE(paired.levels(), packed.levels());
}

TEST(GeometryProperty, PaperReplicatedTreeMatchesTable1Size) {
  // Table 1: "Index Tree Size 3.2 MB" for 327 K keys. Our derived
  // B+-style geometry lands within 10%.
  const auto g =
      compute_geometry(327680, {32, TreeLayout::kExplicitPointers, 8});
  EXPECT_NEAR(static_cast<double>(g.total_bytes()),
              3.2 * 1024 * 1024, 0.35 * 1024 * 1024);
}

}  // namespace
}  // namespace dici::index
