#include <gtest/gtest.h>

#include "src/arch/machine.hpp"
#include "src/sim/probe.hpp"
#include "src/sim/tlb.hpp"
#include "src/util/bytes.hpp"

namespace dici::sim {
namespace {

TEST(Tlb, HitAfterMiss) {
  Tlb tlb(4, 4096);
  EXPECT_FALSE(tlb.access(0));
  EXPECT_TRUE(tlb.access(100));    // same page
  EXPECT_FALSE(tlb.access(4096));  // next page
  EXPECT_EQ(tlb.stats().hits, 1u);
  EXPECT_EQ(tlb.stats().misses, 2u);
}

TEST(Tlb, LruEviction) {
  Tlb tlb(2, 4096);
  tlb.access(0 * 4096);
  tlb.access(1 * 4096);
  tlb.access(0 * 4096);   // refresh page 0
  tlb.access(2 * 4096);   // evicts page 1
  EXPECT_TRUE(tlb.access(0 * 4096));
  EXPECT_FALSE(tlb.access(1 * 4096));
}

TEST(Tlb, ClearForgets) {
  Tlb tlb(4, 4096);
  tlb.access(0);
  tlb.clear();
  EXPECT_FALSE(tlb.access(0));
}

class ProbeTest : public ::testing::Test {
 protected:
  arch::MachineSpec machine_ = arch::pentium3_cluster();
};

TEST_F(ProbeTest, ColdTouchChargesB2) {
  MemoryProbe probe(machine_);
  probe.touch(0, 4);
  EXPECT_EQ(probe.charged(), ns_to_ps(110.0));
  EXPECT_EQ(probe.breakdown().memory, ns_to_ps(110.0));
}

TEST_F(ProbeTest, RepeatTouchIsFree) {
  MemoryProbe probe(machine_);
  probe.touch(0, 4);
  const picos_t after_first = probe.charged();
  probe.touch(8, 4);  // same line, already in L1
  EXPECT_EQ(probe.charged(), after_first);
  EXPECT_EQ(probe.l1_stats().hits, 1u);
}

TEST_F(ProbeTest, TouchSpanningTwoLinesChargesTwice) {
  MemoryProbe probe(machine_);
  probe.touch(30, 4);  // crosses the 32-byte boundary
  EXPECT_EQ(probe.charged(), 2 * ns_to_ps(110.0));
}

TEST_F(ProbeTest, L2HitChargesB1) {
  MemoryProbe probe(machine_);
  probe.touch(0, 4);
  // Evict line 0 from L1 (4-way, 128 sets, stride 4 KiB) but not from
  // the much larger L2.
  for (int i = 1; i <= 4; ++i)
    probe.touch(static_cast<laddr_t>(i) * 16 * KiB, 4);
  const picos_t before = probe.charged();
  probe.touch(0, 4);  // L1 miss, L2 hit
  EXPECT_EQ(probe.charged() - before, ns_to_ps(16.25));
  EXPECT_EQ(probe.breakdown().l2_hit, ns_to_ps(16.25));
}

TEST_F(ProbeTest, StreamChargesBandwidth) {
  MemoryProbe probe(machine_);
  probe.charge_stream(647);  // 647 bytes at 647 MB/s = 1000 ns
  EXPECT_NEAR(ps_to_ns(probe.charged()), 1000.0, 1.0);
  EXPECT_EQ(probe.streamed_bytes(), 647u);
}

TEST_F(ProbeTest, StreamReadPollutesCacheWhenEnabled) {
  MemoryProbe probe(machine_, /*pollute_streams=*/true);
  probe.stream_read(0, 4 * KiB);
  const picos_t after_stream = probe.charged();
  probe.touch(0, 4);  // the streamed line is resident -> free
  EXPECT_EQ(probe.charged(), after_stream);
}

TEST_F(ProbeTest, StreamReadNoPollutionWhenDisabled) {
  MemoryProbe probe(machine_, /*pollute_streams=*/false);
  probe.stream_read(0, 4 * KiB);
  const picos_t after_stream = probe.charged();
  probe.touch(0, 4);  // cold: full B2 penalty
  EXPECT_EQ(probe.charged() - after_stream, ns_to_ps(110.0));
}

TEST_F(ProbeTest, DmaFillCostsNothingButWarms) {
  MemoryProbe probe(machine_);
  probe.dma_fill(0, 64);
  EXPECT_EQ(probe.charged(), 0u);
  probe.touch(0, 4);
  EXPECT_EQ(probe.charged(), 0u);  // warmed by the DMA
}

TEST_F(ProbeTest, ComputeAndCompareCharges) {
  MemoryProbe probe(machine_);
  probe.node_compare();
  EXPECT_EQ(probe.charged(), ns_to_ps(30.0));
  probe.key_compare();
  EXPECT_EQ(probe.charged(), ns_to_ps(30.0) + ns_to_ps(machine_.hot_compare_ns));
  probe.compute(5.5);
  EXPECT_EQ(probe.breakdown().compute,
            ns_to_ps(30.0) + ns_to_ps(machine_.hot_compare_ns) + ns_to_ps(5.5));
}

TEST_F(ProbeTest, TlbMissCountsButCostsZeroByDefault) {
  MemoryProbe probe(machine_);
  probe.touch(0, 4);
  probe.touch(8 * KiB, 4);
  EXPECT_EQ(probe.tlb_stats().misses, 2u);
  EXPECT_EQ(probe.breakdown().tlb, 0u);
}

TEST_F(ProbeTest, TlbPenaltyChargedWhenConfigured) {
  arch::MachineSpec m = machine_;
  m.tlb_miss_penalty_ns = 100.0;
  MemoryProbe probe(m);
  probe.touch(0, 4);
  EXPECT_EQ(probe.breakdown().tlb, ns_to_ps(100.0));
}

TEST_F(ProbeTest, ResetZeroesEverything) {
  MemoryProbe probe(machine_);
  probe.touch(0, 64);
  probe.charge_stream(100);
  probe.reset();
  EXPECT_EQ(probe.charged(), 0u);
  EXPECT_EQ(probe.l1_stats().accesses(), 0u);
  EXPECT_EQ(probe.l2_stats().accesses(), 0u);
  EXPECT_EQ(probe.streamed_bytes(), 0u);
  // And the caches are cold again.
  probe.touch(0, 4);
  EXPECT_EQ(probe.charged(), ns_to_ps(110.0));
}

TEST_F(ProbeTest, BreakdownTotalsMatchCharged) {
  MemoryProbe probe(machine_);
  probe.touch(0, 256);
  probe.charge_stream(1000);
  probe.node_compare();
  const auto& b = probe.breakdown();
  EXPECT_EQ(b.total(), probe.charged());
  EXPECT_EQ(b.total(), b.compute + b.l2_hit + b.memory + b.stream + b.tlb);
}

TEST(NullProbe, SatisfiesConceptAndDoesNothing) {
  static_assert(ProbeLike<NullProbe>);
  NullProbe probe;  // all calls compile and are no-ops
  probe.touch(0, 4);
  probe.stream_read(0, 4);
  probe.stream_write(0, 4);
  probe.charge_stream(4);
  probe.compute(1.0);
  probe.node_compare();
  probe.key_compare();
}

}  // namespace
}  // namespace dici::sim
