// The node <-> core map behind placement: discovery stays inside the
// allowed cpuset, simulation splits it deterministically, and
// node-scoped pinning degrades gracefully — the contract single-node CI
// machines rely on to still exercise every placement path.
#include "src/arch/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

#include "src/util/affinity.hpp"

namespace dici::arch {
namespace {

std::set<int> allowed_set() {
  const auto cpus = allowed_cpus();
  return {cpus.begin(), cpus.end()};
}

TEST(Topology, DiscoveryCoversAllowedCpusOnly) {
  const Topology topo = discover_topology();
  ASSERT_GE(topo.nodes(), 1u);
  const std::set<int> allowed = allowed_set();
  std::set<int> seen;
  for (std::uint32_t node = 0; node < topo.nodes(); ++node) {
    ASSERT_FALSE(topo.cpus_of(node).empty()) << "node " << node;
    for (const int cpu : topo.cpus_of(node)) {
      EXPECT_TRUE(allowed.count(cpu))
          << "cpu " << cpu << " is outside the allowed mask";
      EXPECT_TRUE(seen.insert(cpu).second)
          << "cpu " << cpu << " appears on two discovered nodes";
    }
  }
  // Discovery never loses an allowed CPU (every pinnable core belongs
  // to some node).
  EXPECT_EQ(seen, allowed);
}

TEST(Topology, NodeOfCpuRoundTrips) {
  const Topology topo = discover_topology();
  for (std::uint32_t node = 0; node < topo.nodes(); ++node)
    for (const int cpu : topo.cpus_of(node))
      EXPECT_EQ(topo.node_of_cpu(cpu), node);
  // Unknown CPUs fall back to node 0, never out of range.
  EXPECT_EQ(topo.node_of_cpu(1 << 20), 0u);
}

TEST(Topology, SimulatedSplitsAllowedCpus) {
  for (const std::uint32_t nodes : {1u, 2u, 3u, 8u}) {
    const Topology topo = simulated_topology(nodes);
    EXPECT_TRUE(topo.simulated);
    ASSERT_EQ(topo.nodes(), nodes);
    const std::set<int> allowed = allowed_set();
    std::set<int> seen;
    for (std::uint32_t node = 0; node < nodes; ++node) {
      // Every node is pinnable even when nodes outnumber CPUs (shared
      // CPUs are the documented degradation).
      ASSERT_FALSE(topo.cpus_of(node).empty());
      for (const int cpu : topo.cpus_of(node)) {
        EXPECT_TRUE(allowed.count(cpu));
        seen.insert(cpu);
      }
    }
    EXPECT_EQ(seen, allowed);  // no allowed CPU is dropped
  }
}

TEST(Topology, SimulatedIsDeterministic) {
  const Topology a = simulated_topology(4);
  const Topology b = simulated_topology(4);
  ASSERT_EQ(a.nodes(), b.nodes());
  for (std::uint32_t node = 0; node < a.nodes(); ++node)
    EXPECT_EQ(a.cpus_of(node), b.cpus_of(node));
}

TEST(Topology, MakeTopologySwitchesOnNodeCount) {
  EXPECT_FALSE(make_topology(0).simulated);
  const Topology sim = make_topology(3);
  EXPECT_TRUE(sim.simulated);
  EXPECT_EQ(sim.nodes(), 3u);
}

TEST(Topology, NodePinningIsBestEffort) {
  const Topology topo = simulated_topology(2);
  std::thread t([&] {
    const bool ok0 = pin_current_thread_to_node(topo, 0);
    const bool ok1 = pin_current_thread_to_node(topo, 1);
#if defined(__linux__)
    EXPECT_TRUE(ok0);
    EXPECT_TRUE(ok1);
#else
    (void)ok0;
    (void)ok1;
#endif
    // Out-of-range nodes fail cleanly instead of widening the mask.
    EXPECT_FALSE(pin_current_thread_to_node(topo, topo.nodes()));
  });
  t.join();
}

TEST(Topology, TotalCpusCountsEveryMapping) {
  const Topology topo = simulated_topology(2);
  std::size_t total = 0;
  for (std::uint32_t node = 0; node < topo.nodes(); ++node)
    total += topo.cpus_of(node).size();
  EXPECT_EQ(topo.total_cpus(), total);
}

}  // namespace
}  // namespace dici::arch
