// AdaptiveBatcher: the size-or-deadline boundaries, driven by a
// synthetic clock — no sleeps, every edge case exact.
#include "src/core/batcher.hpp"

#include <gtest/gtest.h>

namespace dici::core {
namespace {

TEST(AdaptiveBatcher, EmptyNeverFlushes) {
  AdaptiveBatcher b(4, 100.0);
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.should_flush(0.0));
  EXPECT_FALSE(b.should_flush(1e18));  // far past any deadline
}

TEST(AdaptiveBatcher, SizeTriggerExactlyAtCapacity) {
  AdaptiveBatcher b(4, 1e9);  // deadline far away: size is the trigger
  for (key_t k = 0; k < 3; ++k) {
    b.push(k, 0.0);
    EXPECT_FALSE(b.should_flush(1.0)) << "at " << b.size() << " keys";
  }
  b.push(3, 0.0);  // exactly max_keys
  EXPECT_TRUE(b.should_flush(1.0));
}

TEST(AdaptiveBatcher, DeadlineTriggerExactlyAtMaxDelay) {
  AdaptiveBatcher b(1000, 100.0);
  b.push(7, 50.0);  // oldest arrival at t = 50
  EXPECT_FALSE(b.should_flush(149.999));  // age just under max_delay
  EXPECT_TRUE(b.should_flush(150.0));     // age == max_delay: flush
  EXPECT_TRUE(b.should_flush(151.0));
}

TEST(AdaptiveBatcher, DeadlineIsTheOldestQuerys) {
  AdaptiveBatcher b(1000, 100.0);
  b.push(1, 10.0);
  b.push(2, 90.0);  // younger; must not extend the deadline
  EXPECT_DOUBLE_EQ(b.next_deadline_ns(), 110.0);
  EXPECT_FALSE(b.should_flush(109.0));
  EXPECT_TRUE(b.should_flush(110.0));
}

TEST(AdaptiveBatcher, TakeReportsPerQueryAccruedWait) {
  AdaptiveBatcher b(8, 100.0);
  b.push(11, 10.0);
  b.push(22, 40.0);
  b.push(33, 40.0);
  const auto batch = b.take(110.0);
  ASSERT_EQ(batch.keys.size(), 3u);
  EXPECT_EQ(batch.keys[0], 11u);
  ASSERT_EQ(batch.queued_ns.size(), 3u);
  EXPECT_DOUBLE_EQ(batch.queued_ns[0], 100.0);  // waited since t=10
  EXPECT_DOUBLE_EQ(batch.queued_ns[1], 70.0);
  EXPECT_DOUBLE_EQ(batch.queued_ns[2], 70.0);
  // take() resets: the next round starts empty with a fresh deadline.
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.should_flush(1e18));
  b.push(44, 200.0);
  EXPECT_DOUBLE_EQ(b.next_deadline_ns(), 300.0);
}

TEST(AdaptiveBatcher, SizeBeatsDeadlineUnderLoad) {
  // Under load the size trigger fires long before the deadline — the
  // throughput side of the trade-off.
  AdaptiveBatcher b(2, 1000.0);
  b.push(1, 0.0);
  b.push(2, 0.5);
  EXPECT_TRUE(b.should_flush(1.0));  // full at t=1, deadline was t=1000
}

TEST(AdaptiveBatcher, ZeroDelayDegeneratesToImmediateFlush) {
  // max_delay_ns = 0: every pending query is already due — the
  // batcher-less Method-A-style configuration.
  AdaptiveBatcher b(1000, 0.0);
  b.push(5, 42.0);
  EXPECT_TRUE(b.should_flush(42.0));
}

TEST(AdaptiveBatcherDeath, RejectsNonsenseKnobs) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(AdaptiveBatcher(0, 10.0), "max_keys = 0");
  EXPECT_DEATH(AdaptiveBatcher(4, -1.0), "max_delay_ns = -1");
}

}  // namespace
}  // namespace dici::core
