// Open-loop arrival schedules: deterministic by seed, shaped as
// declared — rate, monotonicity, and burstiness are all checkable
// without a clock because the schedule is data.
#include "src/workload/open_loop.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dici::workload {
namespace {

OpenLoopSpec poisson_spec() {
  OpenLoopSpec spec;
  spec.process = ArrivalProcess::kPoisson;
  spec.offered_qps = 1e6;
  spec.num_queries = 50000;
  spec.seed = 1234;
  return spec;
}

double mean_gap_ns(const std::vector<double>& schedule) {
  return schedule.back() / static_cast<double>(schedule.size());
}

/// Squared coefficient of variation of the inter-arrival gaps: ~1 for
/// Poisson, > 1 for anything bursty.
double gap_scv(const std::vector<double>& schedule) {
  double prev = 0, sum = 0, sum2 = 0;
  for (const double t : schedule) {
    const double gap = t - prev;
    prev = t;
    sum += gap;
    sum2 += gap * gap;
  }
  const double n = static_cast<double>(schedule.size());
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  return var / (mean * mean);
}

TEST(OpenLoop, SameSeedSameSchedule) {
  const auto a = make_arrival_schedule_ns(poisson_spec());
  const auto b = make_arrival_schedule_ns(poisson_spec());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i], b[i]) << "arrival " << i;  // bit-identical, not just near

  auto bursty = poisson_spec();
  bursty.process = ArrivalProcess::kBursty;
  const auto c = make_arrival_schedule_ns(bursty);
  const auto d = make_arrival_schedule_ns(bursty);
  for (std::size_t i = 0; i < c.size(); ++i) ASSERT_EQ(c[i], d[i]);
}

TEST(OpenLoop, DifferentSeedDifferentSchedule) {
  auto spec = poisson_spec();
  const auto a = make_arrival_schedule_ns(spec);
  spec.seed ^= 1;
  const auto b = make_arrival_schedule_ns(spec);
  EXPECT_NE(a, b);
}

TEST(OpenLoop, SchedulesAreNondecreasingAndPositive) {
  for (const auto process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kBursty}) {
    auto spec = poisson_spec();
    spec.process = process;
    const auto schedule = make_arrival_schedule_ns(spec);
    ASSERT_EQ(schedule.size(), spec.num_queries);
    double prev = 0;
    for (const double t : schedule) {
      EXPECT_GE(t, prev);
      prev = t;
    }
    EXPECT_GT(schedule.front(), 0.0);
  }
}

TEST(OpenLoop, PoissonHitsOfferedRate) {
  const auto schedule = make_arrival_schedule_ns(poisson_spec());
  // Offered 1e6 qps => 1000 ns mean gap; 50k draws pin the sample mean
  // within a few percent (stddev of the mean = 1000/sqrt(50000) ~ 4.5).
  EXPECT_NEAR(mean_gap_ns(schedule), 1000.0, 30.0);
  // Exponential gaps: squared CV ~ 1.
  EXPECT_NEAR(gap_scv(schedule), 1.0, 0.15);
}

TEST(OpenLoop, BurstyKeepsLongRunRateButBurstier) {
  auto spec = poisson_spec();
  spec.process = ArrivalProcess::kBursty;
  spec.burst_factor = 10.0;
  spec.burst_fraction = 0.1;
  spec.burst_mean_ns = 50e3;
  const auto schedule = make_arrival_schedule_ns(spec);
  // The MMPP's long-run average must still be the offered load (wider
  // tolerance: phase lengths add variance to the sample mean).
  EXPECT_NEAR(mean_gap_ns(schedule), 1000.0, 150.0);
  // And the whole point: gaps are overdispersed vs Poisson.
  EXPECT_GT(gap_scv(schedule), 1.5);
}

TEST(OpenLoop, NamesRoundTrip) {
  for (const ArrivalProcess process : all_arrival_processes()) {
    ArrivalProcess parsed{};
    EXPECT_TRUE(parse_arrival_process(arrival_process_name(process), &parsed));
    EXPECT_EQ(parsed, process);
  }
  ArrivalProcess out{};
  EXPECT_FALSE(parse_arrival_process("fractal", &out));
}

TEST(OpenLoopDeath, RejectsBadSpecsNamingFieldAndValue) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto closed = poisson_spec();
  closed.process = ArrivalProcess::kClosed;
  EXPECT_DEATH(make_arrival_schedule_ns(closed), "closed");
  auto no_rate = poisson_spec();
  no_rate.offered_qps = 0;
  EXPECT_DEATH(make_arrival_schedule_ns(no_rate), "offered_qps = 0");
  auto flat = poisson_spec();
  flat.process = ArrivalProcess::kBursty;
  flat.burst_factor = 1.0;
  EXPECT_DEATH(make_arrival_schedule_ns(flat), "burst_factor = 1");
  auto always_on = poisson_spec();
  always_on.process = ArrivalProcess::kBursty;
  always_on.burst_fraction = 1.0;
  EXPECT_DEATH(make_arrival_schedule_ns(always_on), "burst_fraction = 1");
}

}  // namespace
}  // namespace dici::workload
