// Wall-clock latency on the native backends: track_latency (once
// simulator-only) must fill RunReport::latency_ns with measured,
// per-query response times on NativeEngine and ParallelNativeEngine —
// counts exact, values positive, caller-declared queue wait added, and
// the submit-stamp plumbing race-free under concurrent clients (this
// file doubles as the TSan workout for the per-submission latency
// records).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/arch/machine.hpp"
#include "src/core/engine.hpp"
#include "src/core/parallel_engine.hpp"
#include "src/util/rng.hpp"
#include "src/workload/workload.hpp"

namespace dici::core {
namespace {

struct Fixture {
  std::vector<key_t> keys;
  std::vector<key_t> queries;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    Rng rng(271828);
    fx.keys = workload::make_sorted_unique_keys(20000, rng);
    fx.queries = workload::make_uniform_queries(30000, rng);
    return fx;
  }();
  return f;
}

ExperimentConfig tracked_config() {
  ExperimentConfig cfg;
  cfg.method = Method::kC3;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 4;
  cfg.track_latency = true;
  return cfg;
}

class NativeLatency : public ::testing::TestWithParam<Backend> {};

TEST_P(NativeLatency, EveryQueryGetsAPositiveWallClockSample) {
  const auto& fx = fixture();
  const auto engine = make_engine(GetParam(), tracked_config());
  const auto index = engine->build(fx.keys);
  const auto client = index->connect();
  // Two batches so the per-client total exercises the latency merge.
  const std::size_t half = fx.queries.size() / 2;
  std::vector<rank_t> ranks;
  const auto t1 = client->submit(std::span(fx.queries).subspan(0, half));
  const auto r1 = client->wait(t1);
  EXPECT_EQ(r1.latency_ns.count(), half);
  EXPECT_GT(r1.latency_ns.min(), 0.0);  // a measured time, never zero
  EXPECT_GE(r1.latency_ns.max(), r1.latency_ns.min());
  EXPECT_LE(r1.latency_ns.percentile(50), r1.latency_ns.percentile(99));
  client->submit(std::span(fx.queries).subspan(half), &ranks);
  const auto& total = client->drain();
  EXPECT_EQ(total.latency_ns.count(), fx.queries.size());
  EXPECT_GT(total.latency_ns.min(), 0.0);
}

TEST_P(NativeLatency, DeclaredQueueWaitShiftsEverySample) {
  const auto& fx = fixture();
  const auto engine = make_engine(GetParam(), tracked_config());
  const auto index = engine->build(fx.keys);

  // Same batch twice: once bare, once with a huge declared pre-submit
  // wait. The offset dwarfs any scheduling noise, so the shifted run's
  // MINIMUM must clear it — every sample carried its queued_ns.
  constexpr double kOffsetNs = 1e12;  // 1000 s, >> any real service time
  const std::span batch = std::span(fx.queries).subspan(0, 4096);
  const std::vector<double> queued(batch.size(), kOffsetNs);

  const auto client = index->connect();
  const auto bare = client->wait(client->submit(batch));
  const auto shifted =
      client->wait(client->submit(batch, nullptr, {.queued_ns = queued}));
  ASSERT_EQ(shifted.latency_ns.count(), batch.size());
  EXPECT_GE(shifted.latency_ns.min(), kOffsetNs);
  EXPECT_LT(bare.latency_ns.min(), kOffsetNs);
  // The shift is additive: mean moved by ~the offset, not to it.
  EXPECT_NEAR(shifted.latency_ns.mean() - bare.latency_ns.mean(), kOffsetNs,
              0.5 * kOffsetNs);
}

TEST_P(NativeLatency, QueuedSpanLengthMismatchDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto& fx = fixture();
  const auto engine = make_engine(GetParam(), tracked_config());
  const auto index = engine->build(fx.keys);
  const auto client = index->connect();
  const std::vector<double> wrong(3, 0.0);
  EXPECT_DEATH(client->submit(std::span(fx.queries).subspan(0, 8), nullptr,
                              {.queued_ns = wrong}),
               "queued_ns");
}

INSTANTIATE_TEST_SUITE_P(Backends, NativeLatency,
                         ::testing::Values(Backend::kNative,
                                           Backend::kParallelNative),
                         [](const auto& info) {
                           return std::string(
                               info.param == Backend::kNative
                                   ? "native"
                                   : "parallel_native");
                         });

// The raced test TSan runs in CI: many clients of one shared parallel
// index submit concurrently with track_latency on. Submit stamps live
// in per-submission records and resolve stamps in per-worker Summary
// slots — any missing synchronization between the submitting threads,
// the stealing workers, and the awaiting threads is a TSan report here.
TEST(NativeLatencyRace, ConcurrentClientsStampIndependently) {
  const auto& fx = fixture();
  ParallelConfig cfg;
  cfg.num_threads = 3;
  cfg.num_shards = 6;
  cfg.track_latency = true;
  cfg.pin_threads = false;  // CI runners may not allow affinity
  const ParallelNativeEngine engine(cfg);
  const auto index = engine.build(fx.keys);

  constexpr int kClients = 4;
  constexpr int kBatches = 8;
  std::atomic<bool> go{false};
  std::vector<std::thread> fleet;
  std::vector<std::uint64_t> counts(kClients, 0);
  std::vector<double> mins(kClients, 0);
  for (int c = 0; c < kClients; ++c)
    fleet.emplace_back([&, c] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const auto client = index->connect();
      const std::vector<double> queued(fx.queries.size() / kBatches, 1.0);
      for (int b = 0; b < kBatches; ++b) {
        const std::size_t begin = static_cast<std::size_t>(b) *
                                  fx.queries.size() / kBatches;
        const std::size_t end = static_cast<std::size_t>(b + 1) *
                                fx.queries.size() / kBatches;
        client->submit(
            std::span(fx.queries).subspan(begin, end - begin), nullptr,
            {.queued_ns = b % 2 ? std::span<const double>(queued)
                                : std::span<const double>{}});
      }
      const auto& total = client->drain();
      counts[static_cast<std::size_t>(c)] = total.latency_ns.count();
      mins[static_cast<std::size_t>(c)] = total.latency_ns.min();
    });
  go.store(true, std::memory_order_release);
  for (auto& t : fleet) t.join();
  for (int c = 0; c < kClients; ++c) {
    // Every client accounts every one of its own queries, exactly once,
    // however the shared fleet interleaved (or stole) the work.
    EXPECT_EQ(counts[static_cast<std::size_t>(c)], fx.queries.size())
        << "client " << c;
    EXPECT_GT(mins[static_cast<std::size_t>(c)], 0.0);
  }
}

}  // namespace
}  // namespace dici::core
