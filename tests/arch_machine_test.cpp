#include "src/arch/machine.hpp"

#include <gtest/gtest.h>

#include "src/util/bytes.hpp"

namespace dici::arch {
namespace {

TEST(CacheGeometry, DerivedCounts) {
  const CacheGeometry g{512 * KiB, 32, 8, 110.0};
  EXPECT_EQ(g.num_lines(), 16384u);
  EXPECT_EQ(g.num_sets(), 2048u);
  g.validate();
}

TEST(CacheGeometryDeath, RejectsNonPowerOfTwoLine) {
  CacheGeometry g{1024, 48, 4, 1.0};
  EXPECT_DEATH(g.validate(), "power of two");
}

TEST(MachineSpec, Pentium3MatchesTable2) {
  const MachineSpec m = pentium3_cluster();
  EXPECT_EQ(m.l2.size_bytes, 512 * KiB);
  EXPECT_EQ(m.l1.size_bytes, 16 * KiB);
  EXPECT_EQ(m.l2.line_bytes, 32u);
  EXPECT_EQ(m.l1.line_bytes, 32u);
  EXPECT_DOUBLE_EQ(m.l2.miss_penalty_ns, 110.0);
  EXPECT_DOUBLE_EQ(m.l1.miss_penalty_ns, 16.25);
  EXPECT_EQ(m.tlb_entries, 64u);
  EXPECT_DOUBLE_EQ(m.comp_cost_node_ns, 30.0);
  EXPECT_DOUBLE_EQ(m.mem_seq_bw_mbs, 647.0);
  EXPECT_DOUBLE_EQ(m.mem_rand_bw_mbs, 48.0);
  EXPECT_DOUBLE_EQ(m.net_bw_mbs, 138.0);
  EXPECT_DOUBLE_EQ(m.net_latency_us, 7.0);
}

TEST(MachineSpec, BandwidthUnitHelpers) {
  const MachineSpec m = pentium3_cluster();
  EXPECT_NEAR(m.mem_seq_bytes_per_ns(), 0.647, 1e-9);
  EXPECT_NEAR(m.net_bytes_per_ns(), 0.138, 1e-9);
}

TEST(MachineSpec, Pentium4HasWideLines) {
  const MachineSpec m = pentium4_cluster();
  EXPECT_EQ(m.l2.line_bytes, 128u);   // Sec. 2.2: degradation factor 32
  EXPECT_DOUBLE_EQ(m.l2.miss_penalty_ns, 150.0);  // Sec. 2.1
}

TEST(MachineSpec, ModernValidates) { modern_cluster().validate(); }

TEST(ScaleYears, YearZeroIsIdentity) {
  const MachineSpec base = pentium3_cluster();
  const MachineSpec same = scale_years(base, 0.0);
  EXPECT_DOUBLE_EQ(same.comp_cost_node_ns, base.comp_cost_node_ns);
  EXPECT_DOUBLE_EQ(same.net_bw_mbs, base.net_bw_mbs);
  EXPECT_DOUBLE_EQ(same.mem_seq_bw_mbs, base.mem_seq_bw_mbs);
  EXPECT_NEAR(same.l2.miss_penalty_ns, base.l2.miss_penalty_ns, 1e-9);
}

TEST(ScaleYears, CpuDoublesIn18Months) {
  const MachineSpec base = pentium3_cluster();
  const MachineSpec m = scale_years(base, 1.5);
  EXPECT_NEAR(m.comp_cost_node_ns, base.comp_cost_node_ns / 2.0, 1e-3);
  EXPECT_NEAR(m.hot_compare_ns, base.hot_compare_ns / 2.0, 1e-3);
}

TEST(ScaleYears, NetworkDoublesInThreeYears) {
  const MachineSpec base = pentium3_cluster();
  const MachineSpec m = scale_years(base, 3.0);
  EXPECT_NEAR(m.net_bw_mbs, base.net_bw_mbs * 2.0, 0.2);
}

TEST(ScaleYears, MemoryBandwidthGrows20PercentPerYear) {
  const MachineSpec base = pentium3_cluster();
  const MachineSpec m = scale_years(base, 1.0);
  EXPECT_NEAR(m.mem_seq_bw_mbs, base.mem_seq_bw_mbs * 1.2, 1e-6);
}

TEST(ScaleYears, MissPenaltyLatencyComponentPersists) {
  // The B2 penalty's latency share must NOT improve (the paper's core
  // assumption); only the line-transfer share shrinks with bandwidth.
  const MachineSpec base = pentium3_cluster();
  const MachineSpec m = scale_years(base, 5.0);
  const double xfer0 = base.l2.line_bytes / base.mem_seq_bytes_per_ns();
  const double latency = base.l2.miss_penalty_ns - xfer0;
  EXPECT_GT(m.l2.miss_penalty_ns, latency);          // latency floor holds
  EXPECT_LT(m.l2.miss_penalty_ns, base.l2.miss_penalty_ns);
}

TEST(ScaleYears, FiveYearCompoundOrdering) {
  // After 5 years CPU gained ~10x, network ~3.2x, memory BW ~2.5x: the
  // compute share of any method shrinks fastest — the trend behind
  // Figure 4.
  const MachineSpec base = pentium3_cluster();
  const MachineSpec m = scale_years(base, 5.0);
  const double cpu_gain = base.comp_cost_node_ns / m.comp_cost_node_ns;
  const double net_gain = m.net_bw_mbs / base.net_bw_mbs;
  const double mem_gain = m.mem_seq_bw_mbs / base.mem_seq_bw_mbs;
  EXPECT_GT(cpu_gain, net_gain);
  EXPECT_GT(net_gain, mem_gain);
  EXPECT_NEAR(cpu_gain, 10.08, 0.1);
  EXPECT_NEAR(net_gain, 3.17, 0.05);
  EXPECT_NEAR(mem_gain, 2.49, 0.01);
}

}  // namespace
}  // namespace dici::arch
