// Integration tests: every method on the simulated cluster must return
// exactly std::upper_bound's answer for every query, and the reports
// must be internally consistent and reproduce the paper's qualitative
// shape.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/sim_engine.hpp"
#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"
#include "src/workload/workload.hpp"

namespace dici::core {
namespace {

struct Fixture {
  std::vector<key_t> keys;
  std::vector<key_t> queries;
  std::vector<rank_t> expected;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    Rng rng(20050101);
    fx.keys = workload::make_sorted_unique_keys(65536, rng);
    fx.queries = workload::make_uniform_queries(100000, rng);
    fx.expected = workload::reference_ranks(fx.keys, fx.queries);
    return fx;
  }();
  return f;
}

ExperimentConfig base_config(Method m, std::uint64_t batch = 64 * KiB) {
  ExperimentConfig cfg;
  cfg.method = m;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 11;
  cfg.batch_bytes = batch;
  return cfg;
}

struct SimCase {
  Method method;
  std::uint64_t batch;
};

class SimMethodParam : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimMethodParam, ExactResults) {
  const auto& fx = fixture();
  const SimCluster cluster(base_config(GetParam().method, GetParam().batch));
  std::vector<rank_t> ranks;
  const auto report = cluster.run(fx.keys, fx.queries, &ranks);
  ASSERT_EQ(ranks.size(), fx.expected.size());
  for (std::size_t i = 0; i < ranks.size(); ++i)
    ASSERT_EQ(ranks[i], fx.expected[i]) << "query index " << i;
  EXPECT_EQ(report.num_queries, fx.queries.size());
  EXPECT_GT(report.makespan, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndBatches, SimMethodParam,
    ::testing::Values(SimCase{Method::kA, 64 * KiB},
                      SimCase{Method::kB, 8 * KiB},
                      SimCase{Method::kB, 256 * KiB},
                      SimCase{Method::kC1, 8 * KiB},
                      SimCase{Method::kC1, 256 * KiB},
                      SimCase{Method::kC2, 64 * KiB},
                      SimCase{Method::kC3, 8 * KiB},
                      SimCase{Method::kC3, 64 * KiB},
                      SimCase{Method::kC3, 1 * MiB}),
    [](const auto& info) {
      std::string name = method_name(info.param.method);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "_" + std::to_string(info.param.batch / 1024) + "KB";
    });

TEST(SimCluster, DeterministicAcrossRuns) {
  const auto& fx = fixture();
  const SimCluster cluster(base_config(Method::kC3));
  const auto r1 = cluster.run(fx.keys, fx.queries);
  const auto r2 = cluster.run(fx.keys, fx.queries);
  EXPECT_EQ(r1.raw_makespan, r2.raw_makespan);
  EXPECT_EQ(r1.messages, r2.messages);
  EXPECT_EQ(r1.wire_bytes, r2.wire_bytes);
}

TEST(SimCluster, NormalizationDividesByNodes) {
  const auto& fx = fixture();
  auto cfg = base_config(Method::kA);
  const auto normalized = SimCluster(cfg).run(fx.keys, fx.queries);
  cfg.normalize_replicated = false;
  const auto raw = SimCluster(cfg).run(fx.keys, fx.queries);
  EXPECT_EQ(raw.raw_makespan, normalized.raw_makespan);
  EXPECT_EQ(normalized.makespan, normalized.raw_makespan / 11);
  EXPECT_EQ(raw.makespan, raw.raw_makespan);
}

TEST(SimCluster, DistributedReportShape) {
  const auto& fx = fixture();
  const auto report =
      SimCluster(base_config(Method::kC3)).run(fx.keys, fx.queries);
  ASSERT_EQ(report.nodes.size(), 11u);
  // Master routed everything; slaves partition the queries exactly.
  EXPECT_EQ(report.nodes[0].queries, fx.queries.size());
  std::uint64_t slave_total = 0;
  for (std::size_t s = 1; s < report.nodes.size(); ++s) {
    slave_total += report.nodes[s].queries;
    EXPECT_LE(report.nodes[s].busy, report.raw_makespan);
    EXPECT_LE(report.nodes[s].finish, report.raw_makespan);
  }
  EXPECT_EQ(slave_total, fx.queries.size());
  EXPECT_GE(report.slave_idle_fraction, 0.0);
  EXPECT_LE(report.slave_idle_fraction, 1.0);
  // Each round sends at most one message per slave, each batch is
  // answered once, and every message carries the header.
  EXPECT_GT(report.messages, 0u);
  EXPECT_EQ(report.messages % 2, 0u);  // request + reply pairs
  EXPECT_GT(report.wire_bytes,
            2 * fx.queries.size() * sizeof(key_t));  // keys out + ranks back
}

TEST(SimCluster, ReplicatedHasNoNetworkTraffic) {
  const auto& fx = fixture();
  const auto report =
      SimCluster(base_config(Method::kB)).run(fx.keys, fx.queries);
  EXPECT_EQ(report.messages, 0u);
  EXPECT_EQ(report.wire_bytes, 0u);
  EXPECT_EQ(report.slave_idle_fraction, 0.0);
}

TEST(SimCluster, MasterBreakdownHasNoTreeMisses) {
  // The master only touches the (tiny, hot) delimiter array: its memory
  // charge must be negligible next to the slaves'.
  const auto& fx = fixture();
  const auto report =
      SimCluster(base_config(Method::kC3)).run(fx.keys, fx.queries);
  const auto& master = report.nodes[0].charges;
  EXPECT_LT(ps_to_ns(master.memory), 0.05 * ps_to_ns(master.total()));
}

TEST(SimCluster, MethodAInsensitiveToBatchSize) {
  const auto& fx = fixture();
  const auto small =
      SimCluster(base_config(Method::kA, 8 * KiB)).run(fx.keys, fx.queries);
  const auto large =
      SimCluster(base_config(Method::kA, 4 * MiB)).run(fx.keys, fx.queries);
  EXPECT_EQ(small.makespan, large.makespan);
}

TEST(SimCluster, MethodBImprovesWithBatchSize) {
  const auto& fx = fixture();
  const auto small =
      SimCluster(base_config(Method::kB, 8 * KiB)).run(fx.keys, fx.queries);
  const auto large =
      SimCluster(base_config(Method::kB, 512 * KiB)).run(fx.keys, fx.queries);
  EXPECT_LT(large.makespan, small.makespan);
}

// Paper-scale workload (Table 1: 327 K index keys, larger than L2), used
// by the shape assertions — at the small fixture's 65 K keys the tree
// fits in cache and Method A legitimately wins, which is exactly the
// regime the paper excludes.
const Fixture& paper_fixture() {
  static const Fixture f = [] {
    Fixture fx;
    Rng rng(9);
    fx.keys = workload::make_sorted_unique_keys(327680, rng);
    fx.queries = workload::make_uniform_queries(1 << 19, rng);
    fx.expected = workload::reference_ranks(fx.keys, fx.queries);
    return fx;
  }();
  return f;
}

TEST(SimCluster, Figure3OrderingAtMidBatch) {
  // Sec. 4.1: at 32-64 KB batches the distributed in-cache methods beat
  // both replicated baselines ("a 22% reduction in run time").
  const auto& fx = paper_fixture();
  const auto a =
      SimCluster(base_config(Method::kA, 64 * KiB)).run(fx.keys, fx.queries);
  const auto b =
      SimCluster(base_config(Method::kB, 64 * KiB)).run(fx.keys, fx.queries);
  const auto c3 =
      SimCluster(base_config(Method::kC3, 64 * KiB)).run(fx.keys, fx.queries);
  EXPECT_LT(c3.makespan, a.makespan);
  EXPECT_LT(c3.makespan, b.makespan);
  EXPECT_GT(static_cast<double>(a.makespan) /
                static_cast<double>(c3.makespan),
            1.15);
}

TEST(SimCluster, Figure3CrossoverAtSmallBatch) {
  // Sec. 4.1: "If a batch size is 16 KB or less, Methods C-1, C-2, and
  // C-3 are worse than method B and method A." Our crossover sits at
  // ~8 KB (see EXPERIMENTS.md): per-message MPI/OS overhead dominates.
  const auto& fx = paper_fixture();
  const auto a =
      SimCluster(base_config(Method::kA, 8 * KiB)).run(fx.keys, fx.queries);
  const auto c3 =
      SimCluster(base_config(Method::kC3, 8 * KiB)).run(fx.keys, fx.queries);
  EXPECT_GT(c3.makespan, a.makespan);
}

TEST(SimCluster, SlaveIdleShrinksWithBatchSize) {
  // Sec. 4.1: slaves idle ~50% at 8 KB, ~20% at 4 MB — idle shrinks as
  // per-message overheads amortize (within the pipelined regime; batches
  // comparable to the whole workload degenerate, see EXPERIMENTS.md).
  const auto& fx = fixture();
  const auto small =
      SimCluster(base_config(Method::kC3, 8 * KiB)).run(fx.keys, fx.queries);
  const auto large =
      SimCluster(base_config(Method::kC3, 32 * KiB)).run(fx.keys, fx.queries);
  EXPECT_GT(small.slave_idle_fraction, large.slave_idle_fraction);
}

TEST(SimCluster, FewerMessagesWithBiggerBatches) {
  const auto& fx = fixture();
  const auto small =
      SimCluster(base_config(Method::kC3, 8 * KiB)).run(fx.keys, fx.queries);
  const auto large =
      SimCluster(base_config(Method::kC3, 256 * KiB)).run(fx.keys, fx.queries);
  EXPECT_GT(small.messages, large.messages);
}

TEST(SimCluster, WorksWithTwoNodes) {
  // Degenerate cluster: one master, one slave.
  const auto& fx = fixture();
  auto cfg = base_config(Method::kC3);
  cfg.num_nodes = 2;
  std::vector<rank_t> ranks;
  SimCluster(cfg).run(fx.keys, fx.queries, &ranks);
  EXPECT_EQ(ranks, fx.expected);
}

TEST(SimCluster, PollutionFlagsChangeTiming) {
  const auto& fx = fixture();
  auto cfg = base_config(Method::kC3, 256 * KiB);
  const auto with = SimCluster(cfg).run(fx.keys, fx.queries);
  cfg.pollute_streams = false;
  cfg.dma_pollution = false;
  const auto without = SimCluster(cfg).run(fx.keys, fx.queries);
  // Pollution can only hurt (or not matter); it must never help.
  EXPECT_LE(without.makespan, with.makespan);
}

TEST(SimCluster, ZipfSkewStillExact) {
  Rng rng(77);
  const auto& fx = fixture();
  const auto skewed = workload::make_zipf_queries(50000, 10, 1.1, rng);
  const auto expected = workload::reference_ranks(fx.keys, skewed);
  std::vector<rank_t> ranks;
  SimCluster(base_config(Method::kC3)).run(fx.keys, skewed, &ranks);
  EXPECT_EQ(ranks, expected);
}

TEST(SimCluster, PaperScaleMethodCHeadline) {
  // The abstract's headline: "the new approach is shown to be 50%
  // faster". Our simulated gap at 128 KB batches is ~1.3x (the paper's
  // own Figure 3 reads ~1.2x there, ~1.5x at its plateau).
  const auto& fx = paper_fixture();
  const auto a = SimCluster(base_config(Method::kA, 128 * KiB))
                     .run(fx.keys, fx.queries);
  const auto c3 = SimCluster(base_config(Method::kC3, 128 * KiB))
                      .run(fx.keys, fx.queries);
  EXPECT_LT(c3.makespan, a.makespan);
  EXPECT_GT(static_cast<double>(a.makespan) /
                static_cast<double>(c3.makespan),
            1.2);
}

}  // namespace
}  // namespace dici::core
