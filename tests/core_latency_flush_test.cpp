// Response-time tracking and flush-policy semantics.
#include <gtest/gtest.h>

#include "src/core/sim_engine.hpp"
#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"
#include "src/workload/workload.hpp"

namespace dici::core {
namespace {

struct Fixture {
  std::vector<key_t> keys;
  std::vector<key_t> queries;
  std::vector<rank_t> expected;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    Rng rng(33033);
    fx.keys = workload::make_sorted_unique_keys(80000, rng);
    fx.queries = workload::make_uniform_queries(150000, rng);
    fx.expected = workload::reference_ranks(fx.keys, fx.queries);
    return fx;
  }();
  return f;
}

ExperimentConfig cfg(Method m, std::uint64_t batch) {
  ExperimentConfig c;
  c.method = m;
  c.machine = arch::pentium3_cluster();
  c.num_nodes = 11;
  c.batch_bytes = batch;
  c.track_latency = true;
  return c;
}

TEST(Latency, TrackedForEveryQuery) {
  const auto& fx = fixture();
  for (const auto m : {Method::kA, Method::kB, Method::kC3}) {
    const auto report =
        SimCluster(cfg(m, 32 * KiB)).run(fx.keys, fx.queries);
    EXPECT_EQ(report.latency_ns.count(), fx.queries.size())
        << method_name(m);
    EXPECT_GT(report.latency_ns.min(), 0.0);
  }
}

TEST(Latency, OffByDefault) {
  const auto& fx = fixture();
  auto c = cfg(Method::kC3, 32 * KiB);
  c.track_latency = false;
  const auto report = SimCluster(c).run(fx.keys, fx.queries);
  EXPECT_EQ(report.latency_ns.count(), 0u);
}

TEST(Latency, MethodARespondsFastest) {
  // Sec. 4.1: "Method A has a much faster response time, since it
  // processes search keys individually."
  const auto& fx = fixture();
  const auto a = SimCluster(cfg(Method::kA, 64 * KiB)).run(fx.keys,
                                                           fx.queries);
  const auto b = SimCluster(cfg(Method::kB, 64 * KiB)).run(fx.keys,
                                                           fx.queries);
  const auto c3 = SimCluster(cfg(Method::kC3, 64 * KiB)).run(fx.keys,
                                                             fx.queries);
  EXPECT_LT(a.latency_ns.percentile(50), b.latency_ns.percentile(50));
  EXPECT_LT(a.latency_ns.percentile(50), c3.latency_ns.percentile(50));
}

TEST(Latency, C3BeatsBAtEqualBatch) {
  // The both-worlds claim: at the same batch size C-3's queries wait
  // less than B's (B holds a batch through the whole buffered pass).
  const auto& fx = fixture();
  const auto b = SimCluster(cfg(Method::kB, 128 * KiB)).run(fx.keys,
                                                            fx.queries);
  const auto c3 = SimCluster(cfg(Method::kC3, 128 * KiB)).run(fx.keys,
                                                              fx.queries);
  EXPECT_LT(c3.latency_ns.percentile(50), b.latency_ns.percentile(50));
}

TEST(Latency, GrowsWithBatchSize) {
  const auto& fx = fixture();
  const auto small =
      SimCluster(cfg(Method::kC3, 16 * KiB)).run(fx.keys, fx.queries);
  const auto large =
      SimCluster(cfg(Method::kC3, 256 * KiB)).run(fx.keys, fx.queries);
  EXPECT_LT(small.latency_ns.percentile(50),
            large.latency_ns.percentile(50));
}

TEST(FlushPolicy, BothPoliciesAreExact) {
  const auto& fx = fixture();
  for (const auto policy :
       {FlushPolicy::kMasterRound, FlushPolicy::kPerSlaveThreshold}) {
    auto c = cfg(Method::kC3, 32 * KiB);
    c.flush_policy = policy;
    std::vector<rank_t> ranks;
    SimCluster(c).run(fx.keys, fx.queries, &ranks);
    EXPECT_EQ(ranks, fx.expected) << flush_policy_name(policy);
  }
}

TEST(FlushPolicy, ThresholdSendsFewerBiggerMessages) {
  const auto& fx = fixture();
  auto c = cfg(Method::kC3, 32 * KiB);
  const auto round = SimCluster(c).run(fx.keys, fx.queries);
  c.flush_policy = FlushPolicy::kPerSlaveThreshold;
  const auto thresh = SimCluster(c).run(fx.keys, fx.queries);
  EXPECT_LT(thresh.messages, round.messages);
  // Same keys cross the wire either way (headers differ with count).
  EXPECT_LT(thresh.wire_bytes, round.wire_bytes);
}

TEST(FlushPolicy, ThresholdStarvesSlavesAtHugeBatches) {
  // batch ~ workload/slaves: threshold staging only fills at the end.
  const auto& fx = fixture();
  auto c = cfg(Method::kC3, 64 * KiB);  // 16 K keys ~ queries/slaves
  c.flush_policy = FlushPolicy::kPerSlaveThreshold;
  const auto thresh = SimCluster(c).run(fx.keys, fx.queries);
  c.flush_policy = FlushPolicy::kMasterRound;
  const auto round = SimCluster(c).run(fx.keys, fx.queries);
  EXPECT_GT(thresh.slave_idle_fraction, round.slave_idle_fraction);
  EXPECT_GT(thresh.makespan, round.makespan);
}

TEST(FlushPolicy, Names) {
  EXPECT_STREQ(flush_policy_name(FlushPolicy::kMasterRound),
               "master-round");
  EXPECT_STREQ(flush_policy_name(FlushPolicy::kPerSlaveThreshold),
               "per-slave-threshold");
}

}  // namespace
}  // namespace dici::core
