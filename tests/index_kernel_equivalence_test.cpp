// Every search kernel is an exact drop-in for std::upper_bound — the
// invariant the whole kernel menu rests on. Swept here across all five
// scenario distributions, a ladder of sizes, every interleave width
// class, and the documented edge inputs (empty, size-1, all-equal keys,
// duplicate runs, queries below/above the key range).
#include "src/index/batched_search.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/index/eytzinger.hpp"
#include "src/index/fast_search.hpp"
#include "src/index/partitioner.hpp"
#include "src/index/placement.hpp"
#include "src/util/rng.hpp"
#include "src/workload/scenario.hpp"
#include "src/workload/workload.hpp"

namespace dici::index {
namespace {

rank_t reference(std::span<const key_t> keys, key_t q) {
  return static_cast<rank_t>(
      std::upper_bound(keys.begin(), keys.end(), q) - keys.begin());
}

/// Run every kernel over the whole query stream and compare each rank.
void expect_all_kernels_agree(std::span<const key_t> sorted_keys,
                              std::span<const key_t> queries,
                              std::uint32_t width = kDefaultInterleave) {
  const EytzingerLayout layout(sorted_keys);
  std::vector<rank_t> expected(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i)
    expected[i] = reference(sorted_keys, queries[i]);
  std::vector<rank_t> out(queries.size());
  for (const SearchKernel kernel : all_search_kernels()) {
    std::fill(out.begin(), out.end(), rank_t{0xDEADBEEF});
    resolve_batch(kernel, sorted_keys, &layout, queries, out.data(), width);
    for (std::size_t i = 0; i < queries.size(); ++i)
      ASSERT_EQ(out[i], expected[i])
          << search_kernel_name(kernel) << " at query " << i << " (q="
          << queries[i] << ", n=" << sorted_keys.size() << ", W=" << width
          << ")";
  }
}

// --- The five scenario distributions x a size ladder ----------------------

class KernelDistributions
    : public ::testing::TestWithParam<workload::Distribution> {};

TEST_P(KernelDistributions, AllKernelsMatchStdUpperBound) {
  for (const std::size_t n : {std::size_t{1023}, std::size_t{4096},
                              std::size_t{65536}}) {
    workload::ScenarioSpec spec;
    spec.name = "equiv";
    spec.distribution = GetParam();
    spec.index_keys = n;
    spec.num_queries = 6000;
    const auto index = workload::make_scenario_index(spec);
    const auto queries = workload::make_scenario_queries(spec, index);
    expect_all_kernels_agree(index, queries);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, KernelDistributions,
    ::testing::ValuesIn(workload::all_distributions().begin(),
                        workload::all_distributions().end()),
    [](const auto& info) {
      std::string name = workload::distribution_name(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// --- Edge inputs the contract documents -----------------------------------

TEST(KernelEquivalence, EmptyIndex) {
  const std::vector<key_t> queries{0, 1, 7, 0xFFFFFFFFu};
  expect_all_kernels_agree({}, queries);
}

TEST(KernelEquivalence, SingleKey) {
  const std::vector<key_t> keys{10};
  const std::vector<key_t> queries{0, 9, 10, 11, 0xFFFFFFFFu};
  expect_all_kernels_agree(keys, queries);
}

TEST(KernelEquivalence, AllEqualKeys) {
  const std::vector<key_t> keys(37, 7);  // duplicates everywhere
  const std::vector<key_t> queries{0, 6, 7, 8, 0xFFFFFFFFu};
  expect_all_kernels_agree(keys, queries);
}

TEST(KernelEquivalence, DuplicateRuns) {
  std::vector<key_t> keys{1, 2, 2, 2, 3, 5, 5, 8, 8, 8, 8, 9};
  std::vector<key_t> queries;
  for (key_t q = 0; q <= 10; ++q) queries.push_back(q);
  expect_all_kernels_agree(keys, queries);
}

TEST(KernelEquivalence, QueriesBelowAndAboveTheRange) {
  Rng rng(77);
  // Keys confined to the middle of the space, so below/above both exist.
  std::vector<key_t> keys;
  for (int i = 0; i < 1000; ++i)
    keys.push_back(static_cast<key_t>((1u << 20) + rng.below(1u << 20)));
  std::sort(keys.begin(), keys.end());
  const std::vector<key_t> queries{0, 1, (1u << 20) - 1, (1u << 21) + 1,
                                   0xFFFFFFFEu, 0xFFFFFFFFu};
  expect_all_kernels_agree(keys, queries);
}

TEST(KernelEquivalence, ExtremeKeyValues) {
  const std::vector<key_t> keys{0, 1, 0xFFFFFFFEu, 0xFFFFFFFFu};
  const std::vector<key_t> queries{0, 1, 2, 0xFFFFFFFEu, 0xFFFFFFFFu};
  expect_all_kernels_agree(keys, queries);
}

// --- Interleave widths, including ragged tails ----------------------------

TEST(KernelEquivalence, EveryInterleaveWidthClass) {
  Rng rng(123);
  const auto keys = workload::make_sorted_unique_keys(10000, rng);
  // 1005 queries: never a multiple of any width, so the tail group is
  // always ragged (m < W) — the lane-clamp path.
  const auto queries = workload::make_uniform_queries(1005, rng);
  for (const std::uint32_t width : {2u, 3u, 8u, 16u, kMaxInterleave})
    expect_all_kernels_agree(keys, queries, width);
}

// --- Eytzinger layout invariants ------------------------------------------

TEST(EytzingerLayout, IsAPermutationWithExactRanks) {
  Rng rng(5);
  const auto keys = workload::make_sorted_unique_keys(1000, rng);
  const EytzingerLayout layout(keys);
  ASSERT_EQ(layout.size(), keys.size());
  // Every slot holds the sorted element its rank entry names, and the
  // ranks 0..n-1 each appear exactly once.
  std::vector<bool> seen(keys.size(), false);
  for (std::size_t k = 1; k <= layout.size(); ++k) {
    const rank_t r = layout.rank_of_slot(k);
    ASSERT_LT(r, keys.size());
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
    EXPECT_EQ(layout.slots()[k], keys[r]);
  }
  // Slot 0 resolves the "every key <= q" descent to the end rank.
  EXPECT_EQ(layout.rank_of_slot(0), keys.size());
  // The BFS array is 64-byte aligned so the 4-level prefetch is one line.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(layout.slots()) % 64, 0u);
}

TEST(EytzingerLayout, LevelsMatchBitWidth) {
  EXPECT_EQ(EytzingerLayout::levels_for(0), 0u);
  EXPECT_EQ(EytzingerLayout::levels_for(1), 1u);
  EXPECT_EQ(EytzingerLayout::levels_for(2), 2u);
  EXPECT_EQ(EytzingerLayout::levels_for(7), 3u);
  EXPECT_EQ(EytzingerLayout::levels_for(8), 4u);
}

// --- Placement views: every (mode, node, shard) view is still exact -------

/// Partition `keys`, build every placement's copies, and check that
/// resolve_batch through each (node, shard) view agrees with the global
/// std::upper_bound rank on every query routed to that shard — the
/// engine's probe path, placement included, in miniature.
void expect_all_placements_agree(std::span<const key_t> keys,
                                 std::span<const key_t> queries,
                                 std::uint32_t parts, std::uint32_t nodes) {
  const RangePartitioner partitioner(keys, parts);
  for (const Placement placement : all_placements()) {
    PlacedShards placed(placement, /*build_eytzinger=*/true, partitioner,
                        nodes);
    placed.build_all();
    for (std::uint32_t node = 0; node < nodes; ++node) {
      for (std::uint32_t s = 0; s < partitioner.parts(); ++s) {
        // Every view must be byte-identical to the partition slice...
        const auto view = placed.sorted_of(node, s);
        const auto slice = partitioner.keys_of(s);
        ASSERT_EQ(view.size(), slice.size());
        EXPECT_TRUE(std::equal(view.begin(), view.end(), slice.begin()))
            << placement_name(placement) << " node " << node << " shard "
            << s;
        // ...and every kernel through it must give the global rank.
        std::vector<key_t> routed;
        for (const key_t q : queries)
          if (partitioner.route(q) == s) routed.push_back(q);
        std::vector<rank_t> out(routed.size());
        for (const SearchKernel kernel : all_search_kernels()) {
          std::fill(out.begin(), out.end(), rank_t{0xDEADBEEF});
          resolve_batch(kernel, view, placed.layout_of(node, s), routed,
                        out.data(), 4);
          for (std::size_t i = 0; i < routed.size(); ++i)
            ASSERT_EQ(partitioner.start_of(s) + out[i],
                      reference(keys, routed[i]))
                << placement_name(placement) << " node " << node << " shard "
                << s << " kernel " << search_kernel_name(kernel) << " q="
                << routed[i];
        }
      }
    }
  }
}

TEST(PlacementEquivalence, SkewedPartitionsAcrossNodes) {
  // Keys bunched into a narrow band, so partitioning is as skewed as
  // the range cut allows and most queries route to the band's shards.
  Rng rng(314);
  std::vector<key_t> keys;
  for (int i = 0; i < 3000; ++i)
    keys.push_back(static_cast<key_t>((1u << 24) + rng.below(1u << 16)));
  std::sort(keys.begin(), keys.end());
  std::vector<key_t> queries{0, 0xFFFFFFFFu};
  for (int i = 0; i < 2000; ++i)
    queries.push_back(static_cast<key_t>((1u << 24) + rng.below(1u << 17)));
  expect_all_placements_agree(keys, queries, /*parts=*/7, /*nodes=*/3);
}

TEST(PlacementEquivalence, SizeOnePartitions) {
  // parts == keys: every shard holds exactly one key — the smallest
  // non-empty partition a skewed cut can produce.
  const std::vector<key_t> keys{5, 10, 20, 40};
  std::vector<key_t> queries;
  for (key_t q = 0; q <= 45; ++q) queries.push_back(q);
  expect_all_placements_agree(keys, queries, /*parts=*/4, /*nodes=*/2);
}

TEST(PlacementEquivalence, AllDuplicateKeys) {
  // Every key equal: delimiters collapse, route() sends every matching
  // query to the last shard, and each shard's Eytzinger copy is an
  // all-equal run — the duplicate edge of the upper_bound contract.
  const std::vector<key_t> keys(23, 7);
  const std::vector<key_t> queries{0, 6, 7, 8, 0xFFFFFFFFu};
  expect_all_placements_agree(keys, queries, /*parts=*/5, /*nodes=*/3);
}

TEST(PlacementEquivalence, EmptyShardView) {
  // An empty slice through every placement view (the degenerate shard a
  // skewed partitioner could hand a worker): resolve_batch over the
  // empty span must answer rank 0 for everything, layouts included.
  const std::vector<key_t> keys{1, 2, 3};
  const RangePartitioner partitioner(keys, 3);
  for (const Placement placement : all_placements()) {
    PlacedShards placed(placement, true, partitioner, 2);
    placed.build_all();
    for (std::uint32_t node = 0; node < 2; ++node) {
      const auto view = placed.sorted_of(node, 1);
      const std::span<const key_t> empty = view.subspan(0, 0);
      const EytzingerLayout empty_layout(empty);
      const std::vector<key_t> queries{0, 2, 0xFFFFFFFFu};
      std::vector<rank_t> out(queries.size(), 99);
      for (const SearchKernel kernel : all_search_kernels()) {
        resolve_batch(kernel, empty, &empty_layout, queries, out.data(), 2);
        for (const rank_t r : out)
          EXPECT_EQ(r, 0u) << placement_name(placement) << " "
                           << search_kernel_name(kernel);
      }
    }
  }
}

// --- Exhaustive small-n sweep: every size x every query -------------------

TEST(KernelEquivalence, ExhaustiveSmallSizes) {
  Rng rng(9);
  for (std::size_t n = 0; n <= 33; ++n) {
    std::vector<key_t> keys;
    key_t next = 0;
    for (std::size_t i = 0; i < n; ++i) {
      next += 1 + static_cast<key_t>(rng.below(3));  // sorted, some gaps
      keys.push_back(next);
    }
    std::vector<key_t> queries;
    for (key_t q = 0; q <= next + 2; ++q) queries.push_back(q);
    expect_all_kernels_agree(keys, queries, 4);
  }
}

}  // namespace
}  // namespace dici::index
