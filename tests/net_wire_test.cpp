// Wire format totality: every message round-trips bit-exactly, and
// every malformed input — truncated, oversized, garbage magic, future
// version, length-field lies — is REJECTED with a diagnostic, never an
// out-of-bounds read, huge allocation, or abort. Plus the transport
// seam: ring, socket, fork, and tcp endpoints carry identical
// encode_frame bytes, survive a two-thread race under TSan, and
// convert close() into explicit results instead of hangs.
#include "src/net/wire.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/net/transport.hpp"

namespace dici::net {
namespace {

using namespace std::chrono_literals;

/// All four kinds as in-process pairs (make_transport_pair gives kFork
/// its socketpair and kTcp its loopback connection without spawning
/// anything, so the byte-level contract is testable right here).
constexpr TransportKind kAllKinds[] = {TransportKind::kRing,
                                       TransportKind::kSocket,
                                       TransportKind::kFork,
                                       TransportKind::kTcp};

// --- Round trips ----------------------------------------------------------

TEST(Wire, HeaderRoundTrip) {
  FrameHeader header;
  header.type = static_cast<std::uint16_t>(MsgType::kQueryBatch);
  header.src = 7;
  header.payload_bytes = 1234;
  header.seq = 0xdeadbeefcafeull;
  std::uint8_t buf[kFrameHeaderBytes];
  encode_frame_header(header, buf);
  FrameHeader out;
  std::string error;
  ASSERT_TRUE(decode_frame_header(buf, &out, &error)) << error;
  EXPECT_EQ(out.magic, kWireMagic);
  EXPECT_EQ(out.version, kWireVersion);
  EXPECT_EQ(out.msg_type(), MsgType::kQueryBatch);
  EXPECT_EQ(out.src, 7u);
  EXPECT_EQ(out.payload_bytes, 1234u);
  EXPECT_EQ(out.seq, 0xdeadbeefcafeull);
}

TEST(Wire, EveryMessageTypeRoundTrips) {
  std::string error;
  {
    const Frame f = encode_join_request(3, {.node_id = 3});
    JoinRequestMsg m;
    ASSERT_TRUE(decode_join_request(f, &m, &error)) << error;
    EXPECT_EQ(m.node_id, 3u);
    EXPECT_EQ(f.header.src, 3u);
  }
  {
    const Frame f =
        encode_join_ack(kCoordinatorId, {.node_id = 2, .num_nodes = 8});
    JoinAckMsg m;
    ASSERT_TRUE(decode_join_ack(f, &m, &error)) << error;
    EXPECT_EQ(m.node_id, 2u);
    EXPECT_EQ(m.num_nodes, 8u);
  }
  {
    ClusterInfoMsg info;
    info.nodes = {{0, 3, 2}, {1, 4, 0}, {2, 1, 5}};
    const Frame f = encode_cluster_info(kCoordinatorId, info);
    ClusterInfoMsg m;
    ASSERT_TRUE(decode_cluster_info(f, &m, &error)) << error;
    ASSERT_EQ(m.nodes.size(), 3u);
    EXPECT_EQ(m.nodes[1].node_id, 1u);
    EXPECT_EQ(m.nodes[1].status, 4);
    EXPECT_EQ(m.nodes[2].shards, 5u);
  }
  {
    const Frame f = encode_heartbeat(4, {.send_ns = 99'000'001});
    HeartbeatMsg m;
    ASSERT_TRUE(decode_heartbeat(f, &m, &error)) << error;
    EXPECT_EQ(m.send_ns, 99'000'001u);
  }
  {
    BuildShardMsg msg;
    msg.shard = 6;
    msg.global_offset = 40'000;
    msg.chunk = 3;
    msg.last = true;
    msg.keys = {1, 5, 9, 1u << 30};
    const Frame f = encode_build_shard(kCoordinatorId, msg);
    BuildShardMsg m;
    ASSERT_TRUE(decode_build_shard(f, &m, &error)) << error;
    EXPECT_EQ(m.shard, 6u);
    EXPECT_EQ(m.global_offset, 40'000u);
    EXPECT_EQ(m.chunk, 3u);
    EXPECT_TRUE(m.last);
    EXPECT_EQ(m.keys, msg.keys);
  }
  {
    const Frame f =
        encode_build_ack(5, {.shards_received = 2, .replica_keys = 777});
    BuildAckMsg m;
    ASSERT_TRUE(decode_build_ack(f, &m, &error)) << error;
    EXPECT_EQ(m.shards_received, 2u);
    EXPECT_EQ(m.replica_keys, 777u);
  }
  {
    QueryBatchMsg msg;
    msg.submission = 41;
    msg.shard = kGlobalShard;
    msg.chunk = 17;
    msg.keys = {10, 20, 30};
    msg.ids = {2, 0, 1};
    const Frame f = encode_query_batch(kCoordinatorId, msg);
    QueryBatchMsg m;
    ASSERT_TRUE(decode_query_batch(f, &m, &error)) << error;
    EXPECT_EQ(m.submission, 41u);
    EXPECT_EQ(m.shard, kGlobalShard);
    EXPECT_EQ(m.chunk, 17u);
    EXPECT_EQ(m.keys, msg.keys);
    EXPECT_EQ(m.ids, msg.ids);
  }
  {
    RankBatchMsg msg;
    msg.submission = 41;
    msg.shard = 3;
    msg.chunk = 17;
    msg.busy_ns = 5555;
    msg.ids = {2, 0, 1};
    msg.ranks = {7, 8, 9};
    const Frame f = encode_rank_batch(1, msg);
    RankBatchMsg m;
    ASSERT_TRUE(decode_rank_batch(f, &m, &error)) << error;
    EXPECT_EQ(m.chunk, 17u);
    EXPECT_EQ(m.busy_ns, 5555u);
    EXPECT_EQ(m.ids, msg.ids);
    EXPECT_EQ(m.ranks, msg.ranks);
  }
  {
    const Frame f = encode_shutdown(kCoordinatorId);
    EXPECT_EQ(f.header.msg_type(), MsgType::kShutdown);
    EXPECT_TRUE(f.payload.empty());
  }
  {
    NodeConfigMsg msg;
    msg.kernel = 2;
    msg.interleave_width = 8;
    msg.heartbeat_interval_ms = 15;
    msg.num_nodes = 6;
    const Frame f = encode_node_config(kCoordinatorId, msg);
    EXPECT_EQ(f.header.msg_type(), MsgType::kNodeConfig);
    NodeConfigMsg m;
    ASSERT_TRUE(decode_node_config(f, &m, &error)) << error;
    EXPECT_EQ(m.kernel, 2);
    EXPECT_EQ(m.interleave_width, 8u);
    EXPECT_EQ(m.heartbeat_interval_ms, 15u);
    EXPECT_EQ(m.num_nodes, 6u);
  }
}

TEST(Wire, NodeConfigRejectsTruncationAndTrailingBytes) {
  NodeConfigMsg msg;
  msg.kernel = 1;
  msg.num_nodes = 4;
  std::string error;
  {
    Frame f = encode_node_config(kCoordinatorId, msg);
    f.payload.pop_back();  // truncated mid-field
    f.header.payload_bytes = static_cast<std::uint32_t>(f.payload.size());
    NodeConfigMsg out;
    EXPECT_FALSE(decode_node_config(f, &out, &error));
    EXPECT_FALSE(error.empty());
  }
  {
    Frame f = encode_node_config(kCoordinatorId, msg);
    f.payload.push_back(0xcd);  // stray byte after a valid message
    f.header.payload_bytes = static_cast<std::uint32_t>(f.payload.size());
    NodeConfigMsg out;
    EXPECT_FALSE(decode_node_config(f, &out, &error));
    EXPECT_NE(error.find("trailing"), std::string::npos) << error;
  }
}

TEST(Wire, WholeFrameBufferRoundTrip) {
  QueryBatchMsg msg;
  msg.submission = 9;
  msg.keys = {1, 2, 3, 4, 5};
  msg.ids = {0, 1, 2, 3, 4};
  const Frame f = encode_query_batch(kCoordinatorId, msg);
  const std::vector<std::uint8_t> bytes = encode_frame(f);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes + f.payload.size());
  Frame out;
  std::string error;
  ASSERT_TRUE(decode_frame(bytes, &out, &error)) << error;
  EXPECT_EQ(out.header.msg_type(), MsgType::kQueryBatch);
  EXPECT_EQ(out.payload, f.payload);
}

// --- Rejections (the totality contract) -----------------------------------

TEST(Wire, RejectsShortHeader) {
  std::uint8_t buf[kFrameHeaderBytes] = {};
  FrameHeader h;
  std::string error;
  EXPECT_FALSE(decode_frame_header({buf, kFrameHeaderBytes - 1}, &h, &error));
  EXPECT_NE(error.find("header"), std::string::npos) << error;
}

TEST(Wire, RejectsGarbageMagic) {
  Frame f = encode_heartbeat(0, {});
  std::vector<std::uint8_t> bytes = encode_frame(f);
  bytes[0] ^= 0xff;  // corrupt the magic
  Frame out;
  std::string error;
  EXPECT_FALSE(decode_frame(bytes, &out, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(Wire, RejectsVersionMismatchNamingBothVersions) {
  Frame f = encode_heartbeat(0, {});
  std::vector<std::uint8_t> bytes = encode_frame(f);
  bytes[4] = 0x7f;  // version low byte
  Frame out;
  std::string error;
  EXPECT_FALSE(decode_frame(bytes, &out, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
  EXPECT_NE(error.find("127"), std::string::npos) << error;  // theirs
  EXPECT_NE(error.find("2"), std::string::npos) << error;    // ours
}

TEST(Wire, RejectsUnknownMessageType) {
  Frame f = encode_heartbeat(0, {});
  std::vector<std::uint8_t> bytes = encode_frame(f);
  bytes[6] = 0x66;  // type low byte -> unknown
  Frame out;
  std::string error;
  EXPECT_FALSE(decode_frame(bytes, &out, &error));
  EXPECT_NE(error.find("type"), std::string::npos) << error;
}

TEST(Wire, RejectsOversizedPayloadLength) {
  Frame f = encode_heartbeat(0, {});
  std::vector<std::uint8_t> bytes = encode_frame(f);
  // Lie in the length prefix: 256 MiB payload.
  const std::uint32_t huge = 256u << 20;
  bytes[12] = static_cast<std::uint8_t>(huge);
  bytes[13] = static_cast<std::uint8_t>(huge >> 8);
  bytes[14] = static_cast<std::uint8_t>(huge >> 16);
  bytes[15] = static_cast<std::uint8_t>(huge >> 24);
  FrameHeader h;
  std::string error;
  EXPECT_FALSE(
      decode_frame_header({bytes.data(), kFrameHeaderBytes}, &h, &error));
  EXPECT_NE(error.find("payload"), std::string::npos) << error;
}

TEST(Wire, RejectsTruncatedPayload) {
  QueryBatchMsg msg;
  msg.keys = {1, 2, 3, 4};
  msg.ids = {0, 1, 2, 3};
  Frame f = encode_query_batch(0, msg);
  f.payload.resize(f.payload.size() - 3);  // truncate mid-array
  f.header.payload_bytes = static_cast<std::uint32_t>(f.payload.size());
  QueryBatchMsg out;
  std::string error;
  EXPECT_FALSE(decode_query_batch(f, &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Wire, RejectsLyingElementCountWithoutAllocating) {
  // A count field claiming 1 billion keys inside a 30-byte payload must
  // be rejected by arithmetic (remaining/4 < count), not by attempting
  // a 4 GB resize.
  QueryBatchMsg msg;
  msg.keys = {1, 2};
  msg.ids = {0, 1};
  Frame f = encode_query_batch(0, msg);
  // keys count lives right after submission(8) + shard(4) + chunk(4).
  const std::uint32_t lie = 1'000'000'000;
  f.payload[16] = static_cast<std::uint8_t>(lie);
  f.payload[17] = static_cast<std::uint8_t>(lie >> 8);
  f.payload[18] = static_cast<std::uint8_t>(lie >> 16);
  f.payload[19] = static_cast<std::uint8_t>(lie >> 24);
  QueryBatchMsg out;
  std::string error;
  EXPECT_FALSE(decode_query_batch(f, &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Wire, RejectsTrailingBytes) {
  Frame f = encode_build_ack(1, {.shards_received = 1, .replica_keys = 10});
  f.payload.push_back(0xab);  // one stray byte after a valid message
  f.header.payload_bytes = static_cast<std::uint32_t>(f.payload.size());
  BuildAckMsg out;
  std::string error;
  EXPECT_FALSE(decode_build_ack(f, &out, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(Wire, RejectsWrongTypeForDecoder) {
  const Frame f = encode_heartbeat(0, {});
  JoinAckMsg out;
  std::string error;
  EXPECT_FALSE(decode_join_ack(f, &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Wire, RejectsHeaderPayloadLengthDisagreement) {
  Frame f = encode_heartbeat(0, {});
  f.header.payload_bytes += 4;  // header lies about the payload size
  HeartbeatMsg out;
  std::string error;
  EXPECT_FALSE(decode_heartbeat(f, &out, &error));
  EXPECT_FALSE(error.empty());
}

// --- Checksums and epochs (wire v2) ---------------------------------------

TEST(Wire, EncodersSealAVerifiableChecksum) {
  QueryBatchMsg msg;
  msg.submission = 11;
  msg.keys = {4, 8, 15, 16, 23, 42};
  msg.ids = {0, 1, 2, 3, 4, 5};
  Frame f = encode_query_batch(kCoordinatorId, msg);
  EXPECT_EQ(f.header.checksum, wire_checksum(f.payload));
  EXPECT_TRUE(frame_checksum_ok(f));
  // seq and epoch are stamped OUTSIDE the sum: changing them must not
  // invalidate a sealed frame (the transport stamps seq per send, the
  // coordinator re-stamps epoch per retry).
  f.header.seq = 999;
  f.header.epoch = 7;
  EXPECT_TRUE(frame_checksum_ok(f));
  // One flipped payload bit is caught.
  f.payload[f.payload.size() / 2] ^= 0x01;
  EXPECT_FALSE(frame_checksum_ok(f));
}

TEST(Wire, EmptyPayloadChecksumHolds) {
  const Frame f = encode_shutdown(kCoordinatorId);
  EXPECT_TRUE(frame_checksum_ok(f));
}

TEST(Transport, EpochSurvivesTheWireAndSeqIsStamped) {
  for (const TransportKind kind : kAllKinds) {
    auto [coordinator, node] = make_transport_pair(kind, 16);
    Frame f = encode_heartbeat(3, {.send_ns = 1});
    f.header.epoch = 42;
    ASSERT_EQ(coordinator->send(f, 1s), Endpoint::SendResult::kOk);
    Frame got;
    std::string error;
    ASSERT_EQ(node->recv(&got, 1s, &error), Endpoint::RecvResult::kFrame)
        << transport_name(kind) << ": " << error;
    // The endpoint stamps ONLY seq; the caller's epoch and the sealed
    // checksum cross untouched.
    EXPECT_EQ(got.header.epoch, 42u) << transport_name(kind);
    EXPECT_EQ(got.header.seq, 0u) << transport_name(kind);
    EXPECT_TRUE(frame_checksum_ok(got)) << transport_name(kind);
  }
}

// --- Transports carry identical bytes -------------------------------------

Frame test_frame(std::uint64_t i) {
  QueryBatchMsg msg;
  msg.submission = i;
  msg.shard = static_cast<std::uint32_t>(i % 5);
  for (std::uint32_t j = 0; j < 16; ++j) {
    msg.keys.push_back(static_cast<key_t>(i * 16 + j));
    msg.ids.push_back(j);
  }
  return encode_query_batch(kCoordinatorId, msg);
}

TEST(Transport, BothKindsCarryIdenticalFrames) {
  for (const TransportKind kind : kAllKinds) {
    auto [coordinator, node] = make_transport_pair(kind, 16);
    for (std::uint64_t i = 0; i < 100; ++i) {
      ASSERT_EQ(coordinator->send(test_frame(i), 1s),
                Endpoint::SendResult::kOk)
          << transport_name(kind);
      Frame got;
      std::string error;
      ASSERT_EQ(node->recv(&got, 1s, &error), Endpoint::RecvResult::kFrame)
          << transport_name(kind) << ": " << error;
      // The received frame re-encodes to the same bytes the sender
      // serialized (with the endpoint's seq stamped in).
      Frame sent = test_frame(i);
      sent.header.seq = got.header.seq;
      EXPECT_EQ(encode_frame(sent), encode_frame(got));
      EXPECT_EQ(got.header.seq, i);  // monotonic from 0
      QueryBatchMsg m;
      ASSERT_TRUE(decode_query_batch(got, &m, &error)) << error;
      EXPECT_EQ(m.submission, i);
    }
    const SendStats stats = coordinator->send_stats();
    EXPECT_EQ(stats.messages, 100u);
    EXPECT_GT(stats.bytes, 100 * kFrameHeaderBytes);
  }
}

TEST(Transport, CorruptPayloadIsReportedAndStreamStaysClean) {
  // A frame whose payload was damaged after sealing (what the fault
  // injector's corrupt mode does) must surface as kCorrupt — consumed,
  // diagnosed, and the NEXT frame must arrive intact.
  for (const TransportKind kind : kAllKinds) {
    auto [coordinator, node] = make_transport_pair(kind, 16);
    Frame damaged = test_frame(0);
    damaged.payload[3] ^= 0xff;  // post-seal damage
    ASSERT_EQ(coordinator->send(damaged, 1s), Endpoint::SendResult::kOk);
    ASSERT_EQ(coordinator->send(test_frame(1), 1s), Endpoint::SendResult::kOk);
    Frame got;
    std::string error;
    EXPECT_EQ(node->recv(&got, 1s, &error), Endpoint::RecvResult::kCorrupt)
        << transport_name(kind);
    ASSERT_EQ(node->recv(&got, 1s, &error), Endpoint::RecvResult::kFrame)
        << transport_name(kind) << ": " << error;
    QueryBatchMsg m;
    ASSERT_TRUE(decode_query_batch(got, &m, &error)) << error;
    EXPECT_EQ(m.submission, 1u) << transport_name(kind);
  }
}

TEST(Transport, RecvTimesOutOnSilence) {
  for (const TransportKind kind : kAllKinds) {
    auto [coordinator, node] = make_transport_pair(kind, 4);
    Frame frame;
    std::string error;
    EXPECT_EQ(node->recv(&frame, 10ms, &error),
              Endpoint::RecvResult::kTimeout)
        << transport_name(kind);
  }
}

TEST(Transport, CloseUnblocksPeerAndDrainsBufferedFrames) {
  for (const TransportKind kind : kAllKinds) {
    auto [coordinator, node] = make_transport_pair(kind, 16);
    ASSERT_EQ(coordinator->send(test_frame(0), 1s), Endpoint::SendResult::kOk);
    coordinator->close();
    // The frame sent before the close still arrives (ordered drain)...
    Frame frame;
    std::string error;
    ASSERT_EQ(node->recv(&frame, 1s, &error), Endpoint::RecvResult::kFrame)
        << transport_name(kind) << ": " << error;
    // ...then the close is observed.
    EXPECT_EQ(node->recv(&frame, 1s, &error), Endpoint::RecvResult::kClosed)
        << transport_name(kind);
    // And sending into a closed link reports closed, not a hang. TCP
    // may accept a frame or two into the socket buffer before the
    // peer's RST lands, so "closed" is eventual, never more than a few
    // sends away.
    Endpoint::SendResult result = Endpoint::SendResult::kOk;
    for (int i = 0; i < 64 && result == Endpoint::SendResult::kOk; ++i) {
      result = node->send(test_frame(1), 10ms);
      if (result == Endpoint::SendResult::kOk)
        std::this_thread::sleep_for(1ms);
    }
    EXPECT_NE(result, Endpoint::SendResult::kOk) << transport_name(kind);
  }
}

TEST(Transport, RingBackpressureTimesOutWhenReceiverStalls) {
  auto [coordinator, node] = make_transport_pair(TransportKind::kRing, 2);
  // Nobody ever receives: the ring fills, then send must time out (the
  // dead-node case — without this, a wedged node would hang the
  // dispatcher forever).
  Endpoint::SendResult result = Endpoint::SendResult::kOk;
  for (int i = 0; i < 8 && result == Endpoint::SendResult::kOk; ++i)
    result = coordinator->send(test_frame(i), 20ms);
  EXPECT_EQ(result, Endpoint::SendResult::kTimeout);
}

TEST(Transport, RacedBidirectionalTrafficStaysOrderedAndIntact) {
  // The TSan case: four threads (one sender + one receiver per side)
  // hammer one link in both directions. Per direction, frames must
  // arrive in order with payloads intact.
  for (const TransportKind kind : kAllKinds) {
    auto [coordinator, node] = make_transport_pair(kind, 8);
    constexpr std::uint64_t kFrames = 2000;
    std::atomic<bool> fail{false};

    auto sender = [&](Endpoint* endpoint) {
      for (std::uint64_t i = 0; i < kFrames; ++i) {
        if (endpoint->send(test_frame(i), 5s) != Endpoint::SendResult::kOk) {
          fail.store(true);
          return;
        }
      }
    };
    auto receiver = [&](Endpoint* endpoint) {
      std::string error;
      for (std::uint64_t i = 0; i < kFrames; ++i) {
        Frame frame;
        if (endpoint->recv(&frame, 5s, &error) !=
            Endpoint::RecvResult::kFrame) {
          fail.store(true);
          return;
        }
        QueryBatchMsg msg;
        if (!decode_query_batch(frame, &msg, &error) || msg.submission != i ||
            frame.header.seq != i) {
          fail.store(true);
          return;
        }
      }
    };
    std::thread t1(sender, coordinator.get());
    std::thread t2(receiver, node.get());
    std::thread t3(sender, node.get());
    std::thread t4(receiver, coordinator.get());
    t1.join();
    t2.join();
    t3.join();
    t4.join();
    EXPECT_FALSE(fail.load()) << transport_name(kind);
  }
}

TEST(Transport, ParseAndNameRoundTrip) {
  for (const TransportKind kind : kAllKinds) {
    TransportKind parsed{};
    EXPECT_TRUE(transport_parse(transport_name(kind), &parsed))
        << transport_name(kind);
    EXPECT_EQ(parsed, kind) << transport_name(kind);
  }
  TransportKind kind{};
  EXPECT_FALSE(transport_parse("carrier-pigeon", &kind));
  EXPECT_STREQ(transport_name(TransportKind::kRing), "ring");
  EXPECT_STREQ(transport_name(TransportKind::kSocket), "socket");
  EXPECT_STREQ(transport_name(TransportKind::kFork), "fork");
  EXPECT_STREQ(transport_name(TransportKind::kTcp), "tcp");
  EXPECT_FALSE(transport_is_process(TransportKind::kRing));
  EXPECT_FALSE(transport_is_process(TransportKind::kSocket));
  EXPECT_TRUE(transport_is_process(TransportKind::kFork));
  EXPECT_TRUE(transport_is_process(TransportKind::kTcp));
}

}  // namespace
}  // namespace dici::net
