// FaultInjectingEndpoint contract: deterministic per-seed schedules,
// each failure mode observable from the receiving end exactly as a real
// flaky link would present it (drop = silence, corrupt = kCorrupt with
// a clean stream after, duplicate = two arrivals, delay = late
// arrival), and the FaultController switchboard (arm/heal/partition)
// flipping injection at runtime.
#include "src/net/fault.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/net/transport.hpp"
#include "src/net/wire.hpp"

namespace dici::net {
namespace {

using namespace std::chrono_literals;

Frame ping(std::uint64_t i) {
  QueryBatchMsg msg;
  msg.submission = i;
  msg.chunk = static_cast<std::uint32_t>(i);
  msg.keys = {static_cast<key_t>(i), static_cast<key_t>(i + 1)};
  msg.ids = {0, 1};
  return encode_query_batch(kCoordinatorId, msg);
}

/// One ring link whose coordinator->node direction is decorated.
struct Rig {
  std::shared_ptr<FaultController> controller;
  std::unique_ptr<Endpoint> sender;  ///< decorated
  std::unique_ptr<Endpoint> receiver;

  Rig(const FaultRates& rates, std::uint64_t seed, bool armed = true) {
    auto [coordinator, node] = make_transport_pair(TransportKind::kRing, 4096);
    controller = std::make_shared<FaultController>();
    if (armed) controller->arm();
    sender = std::make_unique<FaultInjectingEndpoint>(
        std::move(coordinator), controller,
        FaultInjectingEndpoint::Direction::kToNode, rates, seed);
    receiver = std::move(node);
  }
};

TEST(Fault, SameSeedSameSchedule) {
  const FaultRates rates{.drop = 0.2, .delay = 0.0, .duplicate = 0.1,
                         .corrupt = 0.15};
  FaultStats stats[2];
  for (int run = 0; run < 2; ++run) {
    Rig rig(rates, /*seed=*/0xabcdef);
    for (std::uint64_t i = 0; i < 500; ++i)
      ASSERT_EQ(rig.sender->send(ping(i), 1s), Endpoint::SendResult::kOk);
    stats[run] = rig.controller->stats();
  }
  EXPECT_EQ(stats[0].dropped, stats[1].dropped);
  EXPECT_EQ(stats[0].duplicated, stats[1].duplicated);
  EXPECT_EQ(stats[0].corrupted, stats[1].corrupted);
  EXPECT_EQ(stats[0].forwarded, stats[1].forwarded);
  EXPECT_GT(stats[0].dropped, 0u);  // the schedule actually fired
  EXPECT_GT(stats[0].corrupted, 0u);
}

TEST(Fault, DifferentSeedsDifferentSchedules) {
  const FaultRates rates{.drop = 0.5};
  std::vector<std::uint64_t> first_drop;
  for (const std::uint64_t seed : {1ull, 2ull}) {
    Rig rig(rates, seed);
    std::string error;
    for (std::uint64_t i = 0; i < 64; ++i) {
      ASSERT_EQ(rig.sender->send(ping(i), 1s), Endpoint::SendResult::kOk);
      Frame got;
      if (rig.receiver->recv(&got, 10ms, &error) ==
          Endpoint::RecvResult::kTimeout) {
        first_drop.push_back(i);
        break;
      }
    }
  }
  ASSERT_EQ(first_drop.size(), 2u);
  EXPECT_NE(first_drop[0], first_drop[1]);
}

TEST(Fault, DropRateIsStatisticallyHonored) {
  const FaultRates rates{.drop = 0.3};
  Rig rig(rates, 7);
  constexpr std::uint64_t kFrames = 2000;
  for (std::uint64_t i = 0; i < kFrames; ++i)
    ASSERT_EQ(rig.sender->send(ping(i), 1s), Endpoint::SendResult::kOk);
  const FaultStats stats = rig.controller->stats();
  // Binomial(2000, 0.3): mean 600, sd ~20. Six sigma on either side.
  EXPECT_GT(stats.dropped, 480u);
  EXPECT_LT(stats.dropped, 720u);
  // Everything not dropped arrived.
  std::uint64_t arrived = 0;
  Frame got;
  std::string error;
  while (rig.receiver->recv(&got, 10ms, &error) ==
         Endpoint::RecvResult::kFrame)
    ++arrived;
  EXPECT_EQ(arrived, kFrames - stats.dropped);
}

TEST(Fault, CorruptAlwaysSurfacesAsCorruptFrames) {
  const FaultRates rates{.corrupt = 1.0};
  Rig rig(rates, 11);
  constexpr std::uint64_t kFrames = 50;
  for (std::uint64_t i = 0; i < kFrames; ++i)
    ASSERT_EQ(rig.sender->send(ping(i), 1s), Endpoint::SendResult::kOk);
  std::string error;
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    Frame got;
    EXPECT_EQ(rig.receiver->recv(&got, 1s, &error),
              Endpoint::RecvResult::kCorrupt)
        << "frame " << i;
  }
  EXPECT_EQ(rig.controller->stats().corrupted, kFrames);
}

TEST(Fault, DuplicateDeliversTwice) {
  const FaultRates rates{.duplicate = 1.0};
  Rig rig(rates, 13);
  ASSERT_EQ(rig.sender->send(ping(0), 1s), Endpoint::SendResult::kOk);
  std::string error;
  for (int copy = 0; copy < 2; ++copy) {
    Frame got;
    ASSERT_EQ(rig.receiver->recv(&got, 1s, &error),
              Endpoint::RecvResult::kFrame)
        << "copy " << copy << ": " << error;
    QueryBatchMsg m;
    ASSERT_TRUE(decode_query_batch(got, &m, &error)) << error;
    EXPECT_EQ(m.submission, 0u);
  }
  Frame got;
  EXPECT_EQ(rig.receiver->recv(&got, 20ms, &error),
            Endpoint::RecvResult::kTimeout);
  EXPECT_EQ(rig.controller->stats().duplicated, 1u);
}

TEST(Fault, DelayedFramesStillArrive) {
  const FaultRates rates{.delay = 1.0, .delay_ns = 5'000'000};  // <= 5ms late
  Rig rig(rates, 17);
  constexpr std::uint64_t kFrames = 20;
  for (std::uint64_t i = 0; i < kFrames; ++i)
    ASSERT_EQ(rig.sender->send(ping(i), 1s), Endpoint::SendResult::kOk);
  std::string error;
  std::uint64_t arrived = 0;
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    Frame got;
    if (rig.receiver->recv(&got, 1s, &error) == Endpoint::RecvResult::kFrame)
      ++arrived;
  }
  EXPECT_EQ(arrived, kFrames);
  EXPECT_EQ(rig.controller->stats().delayed, kFrames);
}

TEST(Fault, HealedInjectorPassesEverythingThrough) {
  const FaultRates rates{.drop = 1.0};  // would eat every frame if armed
  Rig rig(rates, 19, /*armed=*/false);
  ASSERT_EQ(rig.sender->send(ping(0), 1s), Endpoint::SendResult::kOk);
  Frame got;
  std::string error;
  EXPECT_EQ(rig.receiver->recv(&got, 1s, &error),
            Endpoint::RecvResult::kFrame)
      << error;
  EXPECT_EQ(rig.controller->stats().dropped, 0u);

  // arm() turns the faucet: now the same rate eats the frame.
  rig.controller->arm();
  ASSERT_EQ(rig.sender->send(ping(1), 1s), Endpoint::SendResult::kOk);
  EXPECT_EQ(rig.receiver->recv(&got, 20ms, &error),
            Endpoint::RecvResult::kTimeout);

  // heal() restores the clean wire.
  rig.controller->heal();
  ASSERT_EQ(rig.sender->send(ping(2), 1s), Endpoint::SendResult::kOk);
  EXPECT_EQ(rig.receiver->recv(&got, 1s, &error),
            Endpoint::RecvResult::kFrame)
      << error;
}

TEST(Fault, PartitionBlackHolesEvenWhenHealed) {
  // Partition cuts the wire regardless of armed(): zero rates, healed
  // controller — and still nothing gets through until the partition
  // lifts.
  Rig rig(FaultRates{}, 23, /*armed=*/false);
  rig.controller->partition(true);
  ASSERT_EQ(rig.sender->send(ping(0), 1s), Endpoint::SendResult::kOk);
  Frame got;
  std::string error;
  EXPECT_EQ(rig.receiver->recv(&got, 20ms, &error),
            Endpoint::RecvResult::kTimeout);
  EXPECT_EQ(rig.controller->stats().dropped, 1u);

  rig.controller->partition(false);
  ASSERT_EQ(rig.sender->send(ping(1), 1s), Endpoint::SendResult::kOk);
  EXPECT_EQ(rig.receiver->recv(&got, 1s, &error),
            Endpoint::RecvResult::kFrame)
      << error;

  // heal() also lifts a partition (the one-call "make it all stop").
  rig.controller->partition(true);
  rig.controller->heal();
  EXPECT_FALSE(rig.controller->partitioned());
}

TEST(Fault, FaultyPairDecoratesBothDirections) {
  FaultConfig config;
  config.seed = 31;
  config.to_node.corrupt = 1.0;
  config.to_coordinator.drop = 1.0;
  FaultyPair pair = make_faulty_transport_pair(TransportKind::kRing, config);
  ASSERT_NE(pair.controller, nullptr);
  EXPECT_TRUE(pair.controller->armed());

  // coordinator -> node: corrupted.
  ASSERT_EQ(pair.coordinator->send(ping(0), 1s), Endpoint::SendResult::kOk);
  Frame got;
  std::string error;
  EXPECT_EQ(pair.node->recv(&got, 1s, &error), Endpoint::RecvResult::kCorrupt);

  // node -> coordinator: dropped.
  ASSERT_EQ(pair.node->send(ping(1), 1s), Endpoint::SendResult::kOk);
  EXPECT_EQ(pair.coordinator->recv(&got, 20ms, &error),
            Endpoint::RecvResult::kTimeout);

  const FaultStats stats = pair.controller->stats();
  EXPECT_EQ(stats.corrupted, 1u);
  EXPECT_EQ(stats.dropped, 1u);
}

// --- Recv-side mode (process links: only one end lives here) --------------

/// One link whose RECEIVING end is decorated in Mode::kRecvSide — the
/// shape the coordinator uses for a fork/tcp link, where the node's end
/// of the wire lives in another process and can't be wrapped.
struct RecvRig {
  std::shared_ptr<FaultController> controller;
  std::unique_ptr<Endpoint> sender;  ///< raw (the "remote process")
  std::unique_ptr<Endpoint> receiver;  ///< decorated at intake

  explicit RecvRig(const FaultRates& rates, std::uint64_t seed = 101) {
    auto [coordinator, node] = make_transport_pair(TransportKind::kRing, 4096);
    controller = std::make_shared<FaultController>();
    controller->arm();
    receiver = std::make_unique<FaultInjectingEndpoint>(
        std::move(coordinator), controller,
        FaultInjectingEndpoint::Direction::kToCoordinator, rates, seed,
        FaultInjectingEndpoint::Mode::kRecvSide);
    sender = std::move(node);
  }
};

TEST(Fault, RecvSideDropSwallowsArrivals) {
  RecvRig rig(FaultRates{.drop = 1.0});
  ASSERT_EQ(rig.sender->send(ping(0), 1s), Endpoint::SendResult::kOk);
  Frame got;
  std::string error;
  EXPECT_EQ(rig.receiver->recv(&got, 30ms, &error),
            Endpoint::RecvResult::kTimeout);
  EXPECT_EQ(rig.controller->stats().dropped, 1u);
}

TEST(Fault, RecvSideCorruptSurfacesAndStreamStaysClean) {
  RecvRig rig(FaultRates{.corrupt = 1.0});
  ASSERT_EQ(rig.sender->send(ping(0), 1s), Endpoint::SendResult::kOk);
  Frame got;
  std::string error;
  EXPECT_EQ(rig.receiver->recv(&got, 1s, &error),
            Endpoint::RecvResult::kCorrupt);
  EXPECT_FALSE(error.empty());
  // Heal: the next frame arrives intact — intake damage never wedges
  // the framing.
  rig.controller->heal();
  ASSERT_EQ(rig.sender->send(ping(1), 1s), Endpoint::SendResult::kOk);
  ASSERT_EQ(rig.receiver->recv(&got, 1s, &error),
            Endpoint::RecvResult::kFrame)
      << error;
  QueryBatchMsg m;
  ASSERT_TRUE(decode_query_batch(got, &m, &error)) << error;
  EXPECT_EQ(m.submission, 1u);
}

TEST(Fault, RecvSideDuplicateDeliversTwice) {
  RecvRig rig(FaultRates{.duplicate = 1.0});
  ASSERT_EQ(rig.sender->send(ping(0), 1s), Endpoint::SendResult::kOk);
  std::string error;
  for (int copy = 0; copy < 2; ++copy) {
    Frame got;
    ASSERT_EQ(rig.receiver->recv(&got, 1s, &error),
              Endpoint::RecvResult::kFrame)
        << "copy " << copy << ": " << error;
    QueryBatchMsg m;
    ASSERT_TRUE(decode_query_batch(got, &m, &error)) << error;
    EXPECT_EQ(m.submission, 0u);
  }
  Frame got;
  EXPECT_EQ(rig.receiver->recv(&got, 20ms, &error),
            Endpoint::RecvResult::kTimeout);
  EXPECT_EQ(rig.controller->stats().duplicated, 1u);
}

TEST(Fault, RecvSideDelayedFramesStillArrive) {
  RecvRig rig(FaultRates{.delay = 1.0, .delay_ns = 5'000'000});
  constexpr std::uint64_t kFrames = 20;
  for (std::uint64_t i = 0; i < kFrames; ++i)
    ASSERT_EQ(rig.sender->send(ping(i), 1s), Endpoint::SendResult::kOk);
  std::string error;
  std::uint64_t arrived = 0;
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    Frame got;
    if (rig.receiver->recv(&got, 1s, &error) == Endpoint::RecvResult::kFrame)
      ++arrived;
  }
  EXPECT_EQ(arrived, kFrames);
  EXPECT_EQ(rig.controller->stats().delayed, kFrames);
}

TEST(Fault, RecvSideLeavesSendsAlone) {
  // The recv-side decorator injects at INTAKE only: its own sends are a
  // passthrough (the send-side decoration for the other direction is a
  // separate wrapper in the real double-decorated stack).
  RecvRig rig(FaultRates{.drop = 1.0});
  ASSERT_EQ(rig.receiver->send(ping(0), 1s), Endpoint::SendResult::kOk);
  Frame got;
  std::string error;
  EXPECT_EQ(rig.sender->recv(&got, 1s, &error), Endpoint::RecvResult::kFrame)
      << error;
  EXPECT_EQ(rig.controller->stats().dropped, 0u);
}

TEST(Fault, RecvSidePartitionBlackHolesArrivals) {
  RecvRig rig(FaultRates{});
  rig.controller->partition(true);
  ASSERT_EQ(rig.sender->send(ping(0), 1s), Endpoint::SendResult::kOk);
  Frame got;
  std::string error;
  EXPECT_EQ(rig.receiver->recv(&got, 30ms, &error),
            Endpoint::RecvResult::kTimeout);
  rig.controller->partition(false);
  ASSERT_EQ(rig.sender->send(ping(1), 1s), Endpoint::SendResult::kOk);
  EXPECT_EQ(rig.receiver->recv(&got, 1s, &error),
            Endpoint::RecvResult::kFrame)
      << error;
}

TEST(Fault, StatsCountPerDirectionIntoOneTotal) {
  const FaultRates rates{.drop = 1.0};
  Rig rig(rates, 37);
  for (std::uint64_t i = 0; i < 5; ++i)
    ASSERT_EQ(rig.sender->send(ping(i), 1s), Endpoint::SendResult::kOk);
  const FaultStats stats = rig.controller->stats();
  EXPECT_EQ(stats.dropped, 5u);
  EXPECT_EQ(stats.forwarded, 0u);
  EXPECT_EQ(stats.corrupted, 0u);
}

}  // namespace
}  // namespace dici::net
