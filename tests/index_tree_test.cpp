#include "src/index/static_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/arch/machine.hpp"
#include "src/index/geometry.hpp"
#include "src/sim/probe.hpp"
#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"
#include "src/workload/workload.hpp"

namespace dici::index {
namespace {

rank_t reference(const std::vector<key_t>& keys, key_t q) {
  return static_cast<rank_t>(
      std::upper_bound(keys.begin(), keys.end(), q) - keys.begin());
}

TEST(TreeConfig, BranchingFromLayout) {
  const TreeConfig explicit32{32, TreeLayout::kExplicitPointers};
  EXPECT_EQ(explicit32.branching(), 4u);   // 3 separators + 4 pointers
  EXPECT_EQ(explicit32.leaf_keys(), 8u);
  const TreeConfig csb32{32, TreeLayout::kCsbFirstChild};
  EXPECT_EQ(csb32.branching(), 8u);        // 7 separators + 1 pointer
  const TreeConfig explicit64{64, TreeLayout::kExplicitPointers};
  EXPECT_EQ(explicit64.branching(), 8u);
  const TreeConfig csb64{64, TreeLayout::kCsbFirstChild};
  EXPECT_EQ(csb64.branching(), 16u);
}

TEST(Geometry, SingleLeafBlock) {
  const auto g = compute_geometry(5, {32, TreeLayout::kExplicitPointers});
  EXPECT_EQ(g.levels(), 1u);
  EXPECT_EQ(g.internal_levels(), 0u);
  EXPECT_EQ(g.leaf_blocks(), 1u);
  EXPECT_EQ(g.arena_bytes(), 0u);
}

TEST(Geometry, LevelWidthsShrinkByBranching) {
  const auto g =
      compute_geometry(100000, {32, TreeLayout::kExplicitPointers});
  ASSERT_GE(g.levels(), 3u);
  EXPECT_EQ(g.lines.front(), 1u);  // root
  for (std::size_t i = 1; i < g.lines.size(); ++i) {
    EXPECT_GT(g.lines[i], g.lines[i - 1]);
    EXPECT_EQ(g.lines[i - 1], (g.lines[i] + 3) / 4);  // ceil(next/branching)
  }
  EXPECT_EQ(g.lines.back(), (100000 + 7) / 8u);
}

TEST(Geometry, PaperScaleFootprint) {
  // 327 K keys (Table 1). The explicit-pointer tree must overflow a
  // 512 KB L2 (that is the paper's premise for Methods A/B).
  const auto g =
      compute_geometry(327680, {32, TreeLayout::kExplicitPointers});
  EXPECT_GT(g.total_bytes(), 512 * KiB);
  // The CSB tree of one slave partition (1/10th) must fit in L2.
  const auto slave = compute_geometry(32768, {32, TreeLayout::kCsbFirstChild});
  EXPECT_LT(slave.total_bytes(), 512 * KiB);
}

TEST(Geometry, CsbIsShallowerThanExplicit) {
  const auto e = compute_geometry(1 << 20, {32, TreeLayout::kExplicitPointers});
  const auto c = compute_geometry(1 << 20, {32, TreeLayout::kCsbFirstChild});
  EXPECT_LT(c.levels(), e.levels());
  EXPECT_LT(c.arena_bytes(), e.arena_bytes());
}

struct TreeCase {
  std::size_t num_keys;
  TreeLayout layout;
  std::uint32_t node_bytes;
};

class StaticTreeParam : public ::testing::TestWithParam<TreeCase> {};

TEST_P(StaticTreeParam, MatchesUpperBoundOnRandomQueries) {
  const auto& p = GetParam();
  Rng rng(p.num_keys * 31 + static_cast<int>(p.layout));
  const auto keys = workload::make_sorted_unique_keys(p.num_keys, rng);
  const StaticTree tree(keys, {p.node_bytes, p.layout});
  for (int i = 0; i < 4000; ++i) {
    const key_t q = static_cast<key_t>(rng.next());
    ASSERT_EQ(tree.lookup(q), reference(keys, q)) << "q=" << q;
  }
}

TEST_P(StaticTreeParam, MatchesUpperBoundOnBoundaryQueries) {
  const auto& p = GetParam();
  Rng rng(p.num_keys * 17 + static_cast<int>(p.layout));
  const auto keys = workload::make_sorted_unique_keys(p.num_keys, rng);
  const StaticTree tree(keys, {p.node_bytes, p.layout});
  // Exact keys, keys +- 1, and the type extremes: the places where an
  // off-by-one in separators would show.
  const std::size_t step = keys.size() / 200 + 1;
  for (std::size_t i = 0; i < keys.size(); i += step) {
    for (const key_t q : {keys[i], static_cast<key_t>(keys[i] - 1),
                          static_cast<key_t>(keys[i] + 1)}) {
      ASSERT_EQ(tree.lookup(q), reference(keys, q)) << "q=" << q;
    }
  }
  EXPECT_EQ(tree.lookup(0u), reference(keys, 0));
  EXPECT_EQ(tree.lookup(0xFFFFFFFFu), reference(keys, 0xFFFFFFFFu));
}

TEST_P(StaticTreeParam, GeometryMatchesBuiltTree) {
  const auto& p = GetParam();
  Rng rng(5);
  const auto keys = workload::make_sorted_unique_keys(p.num_keys, rng);
  const StaticTree tree(keys, {p.node_bytes, p.layout});
  const auto g = compute_geometry(p.num_keys, {p.node_bytes, p.layout});
  EXPECT_EQ(tree.internal_levels(), g.internal_levels());
  EXPECT_EQ(tree.num_leaf_blocks(), g.leaf_blocks());
  EXPECT_EQ(tree.arena_bytes(), g.arena_bytes());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StaticTreeParam,
    ::testing::Values(
        TreeCase{1, TreeLayout::kExplicitPointers, 32},
        TreeCase{7, TreeLayout::kExplicitPointers, 32},
        TreeCase{8, TreeLayout::kExplicitPointers, 32},
        TreeCase{9, TreeLayout::kCsbFirstChild, 32},
        TreeCase{100, TreeLayout::kExplicitPointers, 32},
        TreeCase{100, TreeLayout::kCsbFirstChild, 32},
        TreeCase{4096, TreeLayout::kExplicitPointers, 32},
        TreeCase{4097, TreeLayout::kCsbFirstChild, 32},
        TreeCase{50000, TreeLayout::kExplicitPointers, 32},
        TreeCase{50000, TreeLayout::kCsbFirstChild, 32},
        TreeCase{50000, TreeLayout::kExplicitPointers, 64},
        TreeCase{50000, TreeLayout::kCsbFirstChild, 64},
        TreeCase{327680, TreeLayout::kExplicitPointers, 32},
        TreeCase{327680, TreeLayout::kCsbFirstChild, 32}));

TEST(StaticTree, DescendPlusLeafRankEqualsLookup) {
  Rng rng(23);
  const auto keys = workload::make_sorted_unique_keys(20000, rng);
  const StaticTree tree(keys, {32, TreeLayout::kExplicitPointers});
  sim::NullProbe probe;
  ASSERT_GE(tree.internal_levels(), 2u);
  for (int i = 0; i < 1000; ++i) {
    const key_t q = static_cast<key_t>(rng.next());
    // Descend in two hops of arbitrary split.
    const std::uint32_t split = tree.internal_levels() / 2;
    const std::uint32_t mid = tree.descend(0, 0, q, split, probe);
    const std::uint32_t leaf =
        tree.descend(split, mid, q, tree.internal_levels() - split, probe);
    ASSERT_EQ(tree.leaf_rank(leaf, q, probe), tree.lookup(q));
  }
}

TEST(StaticTree, InstrumentedTouchesOneLinePerLevel) {
  Rng rng(29);
  const auto keys = workload::make_sorted_unique_keys(100000, rng);
  sim::AddressSpace space(32);
  const StaticTree tree(keys, {32, TreeLayout::kExplicitPointers}, &space);
  sim::MemoryProbe probe(arch::pentium3_cluster());
  tree.lookup(static_cast<key_t>(rng.next()), probe);
  // Cold caches: every level's line is a memory miss, plus the leaf.
  const auto levels = tree.internal_levels() + 1;
  EXPECT_EQ(probe.l1_stats().misses, levels);
  EXPECT_EQ(probe.breakdown().memory,
            levels * ns_to_ps(arch::pentium3_cluster().l2.miss_penalty_ns));
  // And exactly one node_compare per level.
  EXPECT_EQ(probe.breakdown().compute,
            levels * ns_to_ps(arch::pentium3_cluster().comp_cost_node_ns));
}

TEST(StaticTree, LogicalAddressesAreDisjoint) {
  Rng rng(31);
  const auto keys = workload::make_sorted_unique_keys(10000, rng);
  sim::AddressSpace space(32);
  const StaticTree tree(keys, {32, TreeLayout::kCsbFirstChild}, &space);
  EXPECT_NE(tree.arena_logical_base(), tree.keys_logical_base());
  EXPECT_GE(tree.keys_logical_base(),
            tree.arena_logical_base() + tree.arena_bytes());
}

TEST(StaticTreeDeath, RejectsEmptyAndUnsorted) {
  const std::vector<key_t> empty;
  EXPECT_DEATH(StaticTree(empty, {32, TreeLayout::kExplicitPointers}),
               "empty");
  const std::vector<key_t> unsorted{3, 1};
  EXPECT_DEATH(StaticTree(unsorted, {32, TreeLayout::kExplicitPointers}),
               "sorted");
}

TEST(StaticTree, DuplicateQueriesOnDenseKeys) {
  // Dense consecutive keys: every query value is a key.
  std::vector<key_t> keys(1000);
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = static_cast<key_t>(i + 100);
  const StaticTree tree(keys, {32, TreeLayout::kExplicitPointers});
  for (key_t q = 0; q < 1300; ++q)
    ASSERT_EQ(tree.lookup(q), reference(keys, q));
}

}  // namespace
}  // namespace dici::index
