// End-to-end open-loop serving: arrivals -> AdaptiveBatcher ->
// submit(queued_ns) -> ready()-polled completions, with every rank
// still equal to the std::upper_bound reference — the serving layer
// changes WHEN work happens, never the answers.
#include "src/workload/serving.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/parallel_engine.hpp"
#include "src/util/rng.hpp"
#include "src/workload/scenario.hpp"
#include "src/workload/workload.hpp"

namespace dici::workload {
namespace {

struct Fixture {
  std::vector<key_t> keys;
  std::vector<key_t> queries;
  std::vector<rank_t> expected;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    Rng rng(314159);
    fx.keys = workload::make_sorted_unique_keys(10000, rng);
    fx.queries = workload::make_uniform_queries(20000, rng);
    fx.expected = workload::reference_ranks(fx.keys, fx.queries);
    return fx;
  }();
  return f;
}

ServingConfig fast_config(ArrivalProcess process) {
  ServingConfig config;
  config.arrivals.process = process;
  // High offered load so the test finishes in tens of milliseconds;
  // the engine won't keep up, which exercises the queueing path too.
  config.arrivals.offered_qps = 2e6;
  config.arrivals.seed = 77;
  config.batch_max_keys = 512;
  config.batch_max_delay_ns = 100e3;
  config.collect_ranks = true;
  return config;
}

TEST(Serving, OpenLoopServesEveryQueryWithCorrectRanks) {
  const auto& fx = fixture();
  core::ParallelConfig cfg;
  cfg.num_threads = 2;
  cfg.track_latency = true;
  cfg.pin_threads = false;
  const core::ParallelNativeEngine engine(cfg);
  const auto index = engine.build(fx.keys);

  for (const auto process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kBursty}) {
    const auto client = index->connect();
    const auto result =
        run_open_loop(*client, fx.queries, fast_config(process));

    EXPECT_EQ(result.num_queries, fx.queries.size());
    EXPECT_EQ(result.batches,
              result.size_flushes + result.deadline_flushes);
    EXPECT_GT(result.batches, 1u);
    EXPECT_GT(result.wall_seconds, 0.0);
    EXPECT_GT(result.achieved_qps, 0.0);

    // Caller-observed latency: one sample per query, all positive
    // (arrival precedes completion by construction).
    EXPECT_EQ(result.observed_latency_ns.count(), fx.queries.size());
    EXPECT_GT(result.observed_latency_ns.min(), 0.0);
    EXPECT_LE(result.observed_latency_ns.percentile(50),
              result.observed_latency_ns.percentile(99));

    // Engine-side latency (arrival->resolve via queued_ns): same count,
    // and never exceeds what the caller observed at the median (the
    // caller's stamp includes ticket-poll slack on top).
    EXPECT_EQ(result.engine_total.latency_ns.count(), fx.queries.size());
    EXPECT_GT(result.engine_total.latency_ns.min(), 0.0);
    EXPECT_EQ(result.engine_total.num_queries, fx.queries.size());

    // The serving layer never changes answers.
    ASSERT_EQ(result.ranks.size(), fx.expected.size());
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < result.ranks.size(); ++i)
      if (result.ranks[i] != fx.expected[i]) ++mismatches;
    EXPECT_EQ(mismatches, 0u) << arrival_process_name(process);
  }
}

TEST(Serving, BackPressureBoundsInFlightRounds) {
  const auto& fx = fixture();
  core::ParallelConfig cfg;
  cfg.num_threads = 2;
  cfg.pin_threads = false;
  const core::ParallelNativeEngine engine(cfg);
  const auto index = engine.build(fx.keys);
  const auto client = index->connect();
  auto config = fast_config(ArrivalProcess::kPoisson);
  config.max_in_flight = 1;  // strictest: every round waits its elder
  config.collect_ranks = false;
  const auto result = run_open_loop(*client, fx.queries, config);
  EXPECT_EQ(result.observed_latency_ns.count(), fx.queries.size());
  EXPECT_EQ(client->in_flight(), 0u);  // everything retired
}

TEST(Serving, ConfigFromScenarioSpecCarriesTheKnobs) {
  ScenarioSpec spec;
  spec.name = "serving-cell";
  spec.num_queries = 4096;
  spec.batch_bytes = 8192;
  spec.seed = 5;
  spec.arrival = ArrivalProcess::kBursty;
  spec.offered_qps = 3e5;
  const auto config = serving_config_from(spec);
  EXPECT_EQ(config.arrivals.process, ArrivalProcess::kBursty);
  EXPECT_DOUBLE_EQ(config.arrivals.offered_qps, 3e5);
  EXPECT_EQ(config.arrivals.num_queries, 4096u);
  EXPECT_EQ(config.batch_max_keys, 8192 / sizeof(key_t));
  EXPECT_NE(config.arrivals.seed, spec.seed);  // decorrelated from draws
}

TEST(ServingDeath, ClosedLoopSpecHasNoServingConfig) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ScenarioSpec spec;
  spec.name = "closed-cell";
  EXPECT_DEATH(serving_config_from(spec), "closed");
}

}  // namespace
}  // namespace dici::workload
