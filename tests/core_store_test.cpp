// Engine API v3 (core/store.hpp): write path, generation swaps, and
// the read-equivalence contract — every rank a Store serves must equal
// std::upper_bound over (base \ erased) ∪ inserted as of the reader's
// submit. Includes the raced teardown test the TSan CI job runs:
// clients stream and are destroyed mid-flight while the background
// rebuild keeps publishing fresh generations.
#include "src/core/store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/arch/machine.hpp"
#include "src/core/parallel_engine.hpp"
#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"
#include "src/workload/scenario.hpp"
#include "src/workload/update_stream.hpp"
#include "src/workload/workload.hpp"

namespace dici::core {
namespace {

ExperimentConfig sim_config() {
  ExperimentConfig cfg;
  cfg.method = Method::kC3;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 4;
  return cfg;
}

/// `n` sorted unique keys strictly below `bound` (so tests can confine
/// the write stream to the other half of the key space).
std::vector<key_t> keys_below(std::size_t n, key_t bound, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<key_t> keys = workload::make_sorted_unique_keys(4 * n, rng);
  keys.erase(std::lower_bound(keys.begin(), keys.end(), bound), keys.end());
  DICI_CHECK(keys.size() >= n);
  keys.resize(n);
  return keys;
}

// --- Visibility and epochs ------------------------------------------------

TEST(StoreV3, FlushIsTheVisibilityBarrier) {
  // Even keys 0..1998 in the base; odd keys arrive as writes. Sizes are
  // far below the rebuild trigger, so publication happens exactly at
  // flush() and the test is deterministic.
  std::vector<key_t> base(1000);
  for (std::size_t i = 0; i < base.size(); ++i)
    base[i] = static_cast<key_t>(2 * i);
  const auto store = make_store(Backend::kSim, sim_config(), base);
  EXPECT_EQ(store->epoch(), 1u);
  EXPECT_EQ(store->live_keys(), base.size());

  const auto client = store->connect();
  const auto writer = store->writer();
  const std::vector<key_t> odd = {1, 101, 1001};
  EXPECT_EQ(writer->insert(odd), odd.size());
  EXPECT_EQ(store->delta_keys(), odd.size());

  // Unflushed writes are invisible: ranks are pure base ranks.
  std::vector<rank_t> ranks;
  const std::vector<key_t> probes = {1, 101, 1001, 1998};
  client->wait(client->submit(probes, &ranks));
  const std::vector<rank_t> base_ranks =
      workload::reference_ranks(base, probes);
  EXPECT_EQ(ranks, base_ranks);
  EXPECT_EQ(store->epoch(), 1u);

  // flush() publishes: same probes now count the odd keys at/below them.
  EXPECT_EQ(writer->flush(), 2u);
  EXPECT_EQ(store->epoch(), 2u);
  EXPECT_EQ(store->live_keys(), base.size() + odd.size());
  client->wait(client->submit(probes, &ranks));
  ASSERT_EQ(ranks.size(), probes.size());
  EXPECT_EQ(ranks[0], base_ranks[0] + 1);  // key 1 itself
  EXPECT_EQ(ranks[1], base_ranks[1] + 2);  // 1 and 101
  EXPECT_EQ(ranks[2], base_ranks[2] + 3);  // all three
  EXPECT_EQ(ranks[3], base_ranks[3] + 3);

  // Erase round-trips the same way, and a no-op flush keeps the epoch.
  EXPECT_EQ(writer->erase(std::vector<key_t>{1, 101, 1001}), 3u);
  writer->flush();
  const std::uint64_t settled = store->epoch();
  EXPECT_EQ(writer->flush(), settled);  // nothing pending
  client->wait(client->submit(probes, &ranks));
  EXPECT_EQ(ranks, base_ranks);
}

TEST(StoreV3, NoOpWritesChangeNothing) {
  const std::vector<key_t> base = {10, 20, 30};
  const auto store = make_store(Backend::kSim, sim_config(), base);
  const auto writer = store->writer();
  EXPECT_EQ(writer->insert(base), 0u);  // already live
  EXPECT_EQ(writer->erase(std::vector<key_t>{11, 21}), 0u);  // never live
  EXPECT_EQ(store->delta_keys(), 0u);
  EXPECT_EQ(writer->flush(), 1u);  // nothing pending: epoch stays 1
}

// --- The background rebuild ----------------------------------------------

TEST(StoreV3, RebuildFoldsDeltaAndPinsOldGeneration) {
  const std::vector<key_t> base = keys_below(8000, 1u << 31, 20260808);
  StoreOptions opts;
  opts.max_delta_keys = 512;
  opts.rebuild_trigger_fraction = 0.5;
  opts.writer_threads = 2;
  ParallelConfig pcfg;
  pcfg.num_threads = 3;
  pcfg.batch_bytes = 4 * KiB;
  const auto store = Store::create(
      std::make_unique<ParallelNativeEngine>(pcfg), base, opts);

  const auto pinned = store->current();  // generation 1, held across swaps

  // Enough inserts to cross the trigger several times over.
  Rng rng(7);
  workload::LiveSetReference mirror(base);
  const auto writer = store->writer();
  for (int round = 0; round < 4; ++round) {
    std::vector<key_t> fresh(300);
    for (auto& k : fresh)
      k = static_cast<key_t>((1u << 31) + rng.below(1u << 31));
    writer->insert(fresh);
    mirror.insert(fresh);
    writer->flush();
  }
  store->wait_rebuilds_idle();
  EXPECT_GE(store->rebuilds(), 1u);
  EXPECT_EQ(store->live_keys(), mirror.size());
  // The fold really moved keys into the base: the delta is below max.
  EXPECT_LT(store->delta_keys(), opts.max_delta_keys);

  // Fresh reads resolve against the new generation and match the mirror.
  const auto gen = store->current();
  EXPECT_GT(gen->epoch(), pinned->epoch());
  EXPECT_NE(gen->base().get(), pinned->base().get());
  const auto client = store->connect();
  Rng qrng(9);
  const std::vector<key_t> probes = workload::make_uniform_queries(5000, qrng);
  std::vector<rank_t> ranks;
  client->wait(client->submit(probes, &ranks));
  for (std::size_t i = 0; i < probes.size(); ++i)
    ASSERT_EQ(ranks[i], mirror.rank(probes[i])) << "probe " << i;

  // The pinned generation 1 is still fully serviceable: its base Index
  // (and worker fleet) answered with pre-write ranks.
  const auto old_client = pinned->base()->connect();
  std::vector<rank_t> old_ranks;
  old_client->wait(old_client->submit(probes, &old_ranks));
  const std::vector<rank_t> want = workload::reference_ranks(base, probes);
  EXPECT_EQ(old_ranks, want);
}

TEST(StoreV3, BackpressureChunksOversizedWriteBatches) {
  const std::vector<key_t> base = keys_below(4000, 1u << 31, 5);
  StoreOptions opts;
  opts.max_delta_keys = 128;  // one write batch is several folds' worth
  const auto store = Store::create(
      std::make_unique<ParallelNativeEngine>(ParallelConfig{}), base, opts);
  const auto writer = store->writer();
  Rng rng(13);
  std::vector<key_t> fresh(1000);
  for (auto& k : fresh)
    k = static_cast<key_t>((1u << 31) + rng.below(1u << 31));
  std::sort(fresh.begin(), fresh.end());
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());

  // A single insert() far beyond max_delta_keys must block-and-chunk
  // through background folds rather than overrun the bound.
  EXPECT_EQ(writer->insert(fresh), fresh.size());
  writer->flush();
  store->wait_rebuilds_idle();
  EXPECT_GE(store->rebuilds(), 1u);
  EXPECT_LE(store->delta_keys(), opts.max_delta_keys);
  EXPECT_EQ(store->live_keys(), base.size() + fresh.size());
}

TEST(StoreV3, EraseEverythingThenRepopulate) {
  const std::vector<key_t> base = {5, 6, 7, 8};
  const auto store = make_store(Backend::kSim, sim_config(), base);
  const auto writer = store->writer();
  const auto client = store->connect();

  EXPECT_EQ(writer->erase(base), base.size());
  writer->flush();
  EXPECT_EQ(store->live_keys(), 0u);
  std::vector<rank_t> ranks;
  client->wait(client->submit(std::vector<key_t>{5, 8, 100}, &ranks));
  EXPECT_EQ(ranks, (std::vector<rank_t>{0, 0, 0}));

  // An all-erased store must accept inserts (nothing live to fold, so
  // the writer cannot rely on the rebuild for room).
  EXPECT_EQ(writer->insert(std::vector<key_t>{6, 100}), 2u);
  writer->flush();
  EXPECT_EQ(store->live_keys(), 2u);
  client->wait(client->submit(std::vector<key_t>{5, 6, 100, 200}, &ranks));
  EXPECT_EQ(ranks, (std::vector<rank_t>{0, 1, 2, 2}));
}

// --- Equivalence across the whole matrix ----------------------------------

TEST(StoreMatrix, MixedCellsVerifyAcrossDistributionsAndBackends) {
  // Every workload shape x every backend x read-only, 95/5 and 80/20
  // mixes, each batch's expected ranks priced from the live-set mirror
  // at submit time. run_scenario_matrix sizes the delta so mixed cells
  // cross the rebuild trigger mid-stream.
  workload::MatrixOptions options;
  options.write_fractions = {0.0, 0.05, 0.2};
  options.numa_nodes = 2;
  const auto cells = workload::run_scenario_matrix(
      workload::default_scenarios(1 << 12, 1 << 13), options);
  EXPECT_TRUE(workload::all_cells_ok(cells));
  std::size_t mixed = 0;
  for (const auto& cell : cells) {
    EXPECT_TRUE(cell.verified);
    EXPECT_EQ(cell.mismatches, 0u) << cell.scenario << " " << cell.backend;
    if (cell.write_fraction > 0) {
      ++mixed;
      EXPECT_GT(cell.writes, 0u);
    }
  }
  EXPECT_GT(mixed, 0u);
}

// --- The raced teardown (ASan/TSan CI target) -----------------------------

TEST(StoreV3, DestroyClientsUnderLoadWhileRebuildPublishes) {
  // Extends EngineV2.DestroyClientsUnderLoadWhileOthersStream with an
  // active write path: a writer streams inserts/erases that keep the
  // background rebuild publishing generations, churner threads destroy
  // clients WITH tickets in flight (drains race channel close against
  // the fleets of retiring generations), and a steady client verifies
  // every rank at full rate. All writes land ABOVE the query range, so
  // every read has one invariant expected rank across all generations —
  // exact verification without knowing which generation served it.
  constexpr key_t kBoundary = 1u << 31;
  const std::vector<key_t> base = keys_below(16000, kBoundary, 20260801);
  Rng qrng(20260802);
  std::vector<key_t> queries(24000);
  for (auto& q : queries) q = static_cast<key_t>(qrng.below(kBoundary - 1));
  const std::vector<rank_t> expected =
      workload::reference_ranks(base, queries);

  StoreOptions opts;
  opts.max_delta_keys = 1024;
  opts.rebuild_trigger_fraction = 0.25;
  opts.writer_threads = 2;
  ParallelConfig pcfg;
  pcfg.num_threads = 4;
  pcfg.num_shards = 6;
  pcfg.batch_bytes = 4 * KiB;
  pcfg.kernel = SearchKernel::kBatchedEytzinger;
  const auto store = Store::create(
      std::make_unique<ParallelNativeEngine>(pcfg), base, opts);

  std::atomic<std::uint64_t> mismatches{0};
  auto verify = [&](std::span<const rank_t> ranks, std::size_t begin) {
    for (std::size_t i = 0; i < ranks.size(); ++i)
      if (ranks[i] != expected[begin + i])
        mismatches.fetch_add(1, std::memory_order_relaxed);
  };

  std::atomic<bool> stop_writes{false};
  std::thread churn_writer([&] {
    Rng wrng(77);
    const auto writer = store->writer();
    std::vector<key_t> alive;
    while (!stop_writes.load(std::memory_order_acquire)) {
      std::vector<key_t> fresh(200);
      for (auto& k : fresh)
        k = static_cast<key_t>(kBoundary + wrng.below(kBoundary));
      writer->insert(fresh);
      alive.insert(alive.end(), fresh.begin(), fresh.end());
      if (alive.size() > 2000) {  // erase an old slab, keep churn two-sided
        writer->erase(std::span(alive.data(), 1000));
        alive.erase(alive.begin(), alive.begin() + 1000);
      }
      writer->flush();
    }
  });

  std::vector<std::thread> churners;
  for (int t = 0; t < 3; ++t) {
    churners.emplace_back([&, t] {
      for (int g = 0; g < 15; ++g) {
        const std::size_t begin = static_cast<std::size_t>(t) * 997 +
                                  static_cast<std::size_t>(g) * 13;
        std::vector<std::vector<rank_t>> ranks(4);
        {
          const auto client = store->connect();
          for (std::size_t b = 0; b < ranks.size(); ++b)
            client->submit(std::span(queries.data() + begin + b * 400, 400),
                           &ranks[b]);
          // NO wait: destruction drains mid-swap, exercising the
          // GenCompletion pins on whichever generations it straddled.
        }
        for (std::size_t b = 0; b < ranks.size(); ++b)
          verify(ranks[b], begin + b * 400);
      }
    });
  }
  {
    const auto steady = store->connect();
    std::vector<rank_t> ranks;
    for (int b = 0; b < 120; ++b) {
      const std::size_t begin = static_cast<std::size_t>(b) * 151;
      steady->wait(
          steady->submit(std::span(queries.data() + begin, 600), &ranks));
      verify(ranks, begin);
    }
  }
  for (auto& t : churners) t.join();
  stop_writes.store(true, std::memory_order_release);
  churn_writer.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GE(store->rebuilds(), 1u);  // the race actually swapped generations
}

}  // namespace
}  // namespace dici::core
