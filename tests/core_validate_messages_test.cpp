// Config-validation diagnostics: a bad ExperimentConfig must die naming
// the offending FIELD and its VALUE, not just a bare DICI_CHECK
// expression — the difference between a five-second fix and a debugger
// session for whoever wired the config.
#include <gtest/gtest.h>

#include "src/arch/machine.hpp"
#include "src/core/engine.hpp"
#include "src/core/native_engine.hpp"
#include "src/core/parallel_engine.hpp"
#include "src/core/store.hpp"
#include "src/util/bytes.hpp"

namespace dici::core {
namespace {

ExperimentConfig good_config() {
  ExperimentConfig cfg;
  cfg.method = Method::kC3;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 5;
  return cfg;
}

class ValidateDeath : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(ValidateDeath, TooFewNodesNamesFieldAndValue) {
  auto cfg = good_config();
  cfg.num_nodes = 1;
  cfg.num_masters = 0;
  EXPECT_DEATH(validate(cfg), "num_nodes = 1");
}

TEST_F(ValidateDeath, TinyBatchNamesFieldAndValue) {
  auto cfg = good_config();
  cfg.batch_bytes = 2;
  EXPECT_DEATH(validate(cfg), "batch_bytes = 2");
}

TEST_F(ValidateDeath, BufferFractionNamesFieldAndValue) {
  auto cfg = good_config();
  cfg.buffer_fraction = 1.5;
  EXPECT_DEATH(validate(cfg), "buffer_fraction = 1.5");
}

TEST_F(ValidateDeath, ZeroMastersNamesField) {
  auto cfg = good_config();
  cfg.num_masters = 0;
  EXPECT_DEATH(validate(cfg), "num_masters = 0");
}

TEST_F(ValidateDeath, AllMastersNoSlaveNamesBothFields) {
  auto cfg = good_config();
  cfg.num_nodes = 3;
  cfg.num_masters = 3;
  EXPECT_DEATH(validate(cfg), "num_nodes = 3 with num_masters = 3");
}

TEST_F(ValidateDeath, RetryKnobsNameFieldAndValue) {
  auto cfg = good_config();
  cfg.max_retries = 1001;
  EXPECT_DEATH(validate(cfg), "max_retries = 1001");
  auto low = good_config();
  low.retry_backoff_us = 50;
  EXPECT_DEATH(validate(low), "retry_backoff_us = 50");
  auto high = good_config();
  high.retry_backoff_us = 20'000'000;
  EXPECT_DEATH(validate(high), "retry_backoff_us = 20000000");
}

TEST_F(ValidateDeath, NativeFlushPolicyNamesFieldAndValue) {
  auto cfg = good_config();
  cfg.flush_policy = FlushPolicy::kPerSlaveThreshold;
  EXPECT_DEATH(check_native_supported(cfg),
               "flush_policy = per-slave-threshold");
}

TEST(ValidateAccepts, TrackLatencyOnEveryNativeBackend) {
  // Once simulator-only (check_native_supported aborted on it),
  // track_latency is now a first-class knob on every backend: the
  // native engines fill RunReport::latency_ns with measured wall time.
  ExperimentConfig cfg;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 4;
  cfg.track_latency = true;
  check_native_supported(cfg);  // must not abort
  EXPECT_TRUE(native_config_from(cfg).track_latency);
  EXPECT_TRUE(parallel_config_from(cfg).track_latency);
}

TEST_F(ValidateDeath, ParallelWrongMethodNamesFieldAndValue) {
  auto cfg = good_config();
  cfg.method = Method::kA;
  EXPECT_DEATH(parallel_config_from(cfg), "method = A");
}

TEST_F(ValidateDeath, ParallelConfigKnobsNameFieldAndValue) {
  ParallelConfig cfg;
  cfg.num_threads = 0;
  EXPECT_DEATH(ParallelNativeEngine{cfg}, "num_threads = 0");
  ParallelConfig tiny;
  tiny.batch_bytes = 1;
  EXPECT_DEATH(ParallelNativeEngine{tiny}, "batch_bytes = 1");
}

TEST_F(ValidateDeath, BadKernelEnumNamesFieldAndValue) {
  auto cfg = good_config();
  cfg.kernel = static_cast<SearchKernel>(42);
  EXPECT_DEATH(validate(cfg), "kernel = 42");
  // The same miscast dies the same way through every backend factory.
  for (const Backend backend :
       {Backend::kSim, Backend::kNative, Backend::kParallelNative}) {
    EXPECT_DEATH(make_engine(backend, cfg), "kernel = 42")
        << backend_name(backend);
  }
}

TEST_F(ValidateDeath, ParallelKernelKnobsNameFieldAndValue) {
  ParallelConfig bad_kernel;
  bad_kernel.kernel = static_cast<SearchKernel>(9);
  EXPECT_DEATH(ParallelNativeEngine{bad_kernel}, "kernel = 9");
  ParallelConfig narrow;
  narrow.interleave_width = 1;
  EXPECT_DEATH(ParallelNativeEngine{narrow}, "interleave_width = 1");
  ParallelConfig wide;
  wide.interleave_width = 64;
  EXPECT_DEATH(ParallelNativeEngine{wide}, "interleave_width = 64");
  ParallelConfig no_ring;
  no_ring.ring_slots = 0;
  EXPECT_DEATH(ParallelNativeEngine{no_ring}, "ring_slots = 0");
}

TEST_F(ValidateDeath, BadPlacementEnumNamesFieldAndValue) {
  auto cfg = good_config();
  cfg.placement = static_cast<Placement>(17);
  EXPECT_DEATH(validate(cfg), "placement = 17");
  for (const Backend backend :
       {Backend::kSim, Backend::kNative, Backend::kParallelNative}) {
    EXPECT_DEATH(make_engine(backend, cfg), "placement = 17")
        << backend_name(backend);
  }
}

TEST_F(ValidateDeath, ParallelNumaKnobsNameFieldAndValue) {
  ParallelConfig bad_placement;
  bad_placement.placement = static_cast<Placement>(8);
  EXPECT_DEATH(ParallelNativeEngine{bad_placement}, "placement = 8");
  ParallelConfig too_many_nodes;
  too_many_nodes.numa_nodes = 5000;
  EXPECT_DEATH(ParallelNativeEngine{too_many_nodes}, "numa_nodes = 5000");
  ParallelConfig no_threshold;
  no_threshold.steal_threshold = 0;
  EXPECT_DEATH(ParallelNativeEngine{no_threshold}, "steal_threshold = 0");
}

TEST_F(ValidateDeath, WritePathKnobsNameFieldAndValue) {
  auto no_room = good_config();
  no_room.max_delta_keys = 0;
  EXPECT_DEATH(validate(no_room), "max_delta_keys = 0");
  auto zero_trigger = good_config();
  zero_trigger.rebuild_trigger_fraction = 0.0;
  EXPECT_DEATH(validate(zero_trigger), "rebuild_trigger_fraction = 0");
  auto over_trigger = good_config();
  over_trigger.rebuild_trigger_fraction = 1.5;
  EXPECT_DEATH(validate(over_trigger), "rebuild_trigger_fraction = 1.5");
  auto no_threads = good_config();
  no_threads.writer_threads = 0;
  EXPECT_DEATH(validate(no_threads), "writer_threads = 0");
  auto too_many_threads = good_config();
  too_many_threads.writer_threads = 1000;
  EXPECT_DEATH(validate(too_many_threads), "writer_threads = 1000");
}

// StoreOptions repeats the gate with its own field names, so a bad
// store config is attributed to the right struct.
TEST_F(ValidateDeath, StoreOptionsNameFieldAndValue) {
  StoreOptions no_room;
  no_room.max_delta_keys = 0;
  EXPECT_DEATH(validate(no_room), "StoreOptions::max_delta_keys = 0");
  StoreOptions bad_fraction;
  bad_fraction.rebuild_trigger_fraction = -0.25;
  EXPECT_DEATH(validate(bad_fraction),
               "StoreOptions::rebuild_trigger_fraction = -0.25");
  StoreOptions no_threads;
  no_threads.writer_threads = 0;
  EXPECT_DEATH(validate(no_threads), "StoreOptions::writer_threads = 0");
}

TEST_F(ValidateDeath, ClusterHeartbeatKnobsNameFieldAndValue) {
  // The failure detector's cadence: a zero interval means no beats at
  // all, and a timeout under twice the interval means one delayed beat
  // kills a healthy node.
  auto cfg = good_config();
  cfg.heartbeat_interval_ms = 0;
  EXPECT_DEATH(validate(cfg), "heartbeat_interval_ms = 0");
  auto tight = good_config();
  tight.heartbeat_interval_ms = 25;
  tight.heartbeat_timeout_ms = 25;
  EXPECT_DEATH(validate(tight),
               "heartbeat_timeout_ms = 25 with heartbeat_interval_ms = 25");
}

TEST_F(ValidateDeath, BadTransportFlagNamesValueAndChoices) {
  // The CLI-facing transport parse: a typo'd flag dies naming the bad
  // VALUE and enumerating the full valid set, so the fix is a
  // copy-paste away.
  EXPECT_DEATH(net::transport_from_flag("carrier-pigeon", "--transport"),
               "--transport = \"carrier-pigeon\" is not a transport "
               "\\(want ring\\|socket\\|fork\\|tcp\\)");
}

TEST(ValidateAccepts, EveryTransportFlagParses) {
  EXPECT_EQ(net::transport_from_flag("ring", "--transport"),
            net::TransportKind::kRing);
  EXPECT_EQ(net::transport_from_flag("socket", "--transport"),
            net::TransportKind::kSocket);
  EXPECT_EQ(net::transport_from_flag("fork", "--transport"),
            net::TransportKind::kFork);
  EXPECT_EQ(net::transport_from_flag("tcp", "--transport"),
            net::TransportKind::kTcp);
}

// The messages gate configs the same way through make_engine, whatever
// the backend.
TEST_F(ValidateDeath, MakeEngineFunnelsThroughValidate) {
  auto cfg = good_config();
  cfg.num_nodes = 1;
  cfg.num_masters = 0;
  for (const Backend backend :
       {Backend::kSim, Backend::kNative, Backend::kParallelNative,
        Backend::kCluster}) {
    EXPECT_DEATH(make_engine(backend, cfg), "num_nodes = 1")
        << backend_name(backend);
  }
}

}  // namespace
}  // namespace dici::core
