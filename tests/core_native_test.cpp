// Native-engine and public-facade tests: the threaded implementations
// must agree bit-for-bit with std::upper_bound, like the simulator.
#include <gtest/gtest.h>

#include "src/core/distributed_index.hpp"
#include "src/core/native_engine.hpp"
#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"
#include "src/workload/workload.hpp"

namespace dici::core {
namespace {

struct Fixture {
  std::vector<key_t> keys;
  std::vector<key_t> queries;
  std::vector<rank_t> expected;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    Rng rng(424242);
    fx.keys = workload::make_sorted_unique_keys(50000, rng);
    fx.queries = workload::make_uniform_queries(80000, rng);
    fx.expected = workload::reference_ranks(fx.keys, fx.queries);
    return fx;
  }();
  return f;
}

class NativeMethodParam : public ::testing::TestWithParam<Method> {};

TEST_P(NativeMethodParam, ExactResults) {
  const auto& fx = fixture();
  NativeConfig cfg;
  cfg.method = GetParam();
  cfg.num_nodes = 4;
  cfg.batch_bytes = 16 * KiB;
  std::vector<rank_t> ranks;
  const auto report = NativeCluster(cfg).run(fx.keys, fx.queries, &ranks);
  ASSERT_EQ(ranks.size(), fx.expected.size());
  for (std::size_t i = 0; i < ranks.size(); ++i)
    ASSERT_EQ(ranks[i], fx.expected[i]) << "query index " << i;
  EXPECT_EQ(report.num_queries, fx.queries.size());
  EXPECT_GT(report.seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, NativeMethodParam,
                         ::testing::Values(Method::kA, Method::kB,
                                           Method::kC1, Method::kC2,
                                           Method::kC3),
                         [](const auto& info) {
                           std::string n = method_name(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST(NativeCluster, SingleSlave) {
  const auto& fx = fixture();
  NativeConfig cfg;
  cfg.method = Method::kC3;
  cfg.num_nodes = 2;
  std::vector<rank_t> ranks;
  NativeCluster(cfg).run(fx.keys, fx.queries, &ranks);
  EXPECT_EQ(ranks, fx.expected);
}

TEST(NativeCluster, ManySlaves) {
  const auto& fx = fixture();
  NativeConfig cfg;
  cfg.method = Method::kC3;
  cfg.num_nodes = 17;
  std::vector<rank_t> ranks;
  const auto report = NativeCluster(cfg).run(fx.keys, fx.queries, &ranks);
  EXPECT_EQ(ranks, fx.expected);
  EXPECT_GT(report.messages, 0u);
}

TEST(NativeCluster, TinyBatches) {
  const auto& fx = fixture();
  NativeConfig cfg;
  cfg.method = Method::kC3;
  cfg.num_nodes = 3;
  cfg.batch_bytes = sizeof(key_t);  // one key per round
  std::vector<rank_t> ranks;
  NativeCluster(cfg).run(fx.keys, std::span(fx.queries.data(), 500), &ranks);
  for (std::size_t i = 0; i < 500; ++i)
    ASSERT_EQ(ranks[i], fx.expected[i]);
}

TEST(DistributedIndex, SortsAndDeduplicates) {
  DistributedInCacheIndex index({5, 3, 3, 1, 5}, 2);
  EXPECT_EQ(index.size(), 3u);
  EXPECT_EQ(index.lookup(0), 0u);
  EXPECT_EQ(index.lookup(1), 1u);
  EXPECT_EQ(index.lookup(3), 2u);
  EXPECT_EQ(index.lookup(4), 2u);
  EXPECT_EQ(index.lookup(5), 3u);
}

TEST(DistributedIndex, ContainsExactKeysOnly) {
  DistributedInCacheIndex index({10, 20, 30}, 2);
  EXPECT_TRUE(index.contains(10));
  EXPECT_TRUE(index.contains(30));
  EXPECT_FALSE(index.contains(11));
  EXPECT_FALSE(index.contains(0));
}

TEST(DistributedIndex, RouteAgreesWithPartitioner) {
  Rng rng(5);
  auto keys = workload::make_sorted_unique_keys(10000, rng);
  DistributedInCacheIndex index(keys, 8);
  for (int i = 0; i < 1000; ++i) {
    const key_t q = static_cast<key_t>(rng.next());
    EXPECT_EQ(index.route(q), index.partitioner().route(q));
  }
}

TEST(DistributedIndex, LookupBatchMatchesReference) {
  Rng rng(6);
  auto keys = workload::make_sorted_unique_keys(30000, rng);
  const auto queries = workload::make_uniform_queries(50000, rng);
  const auto expected = workload::reference_ranks(
      std::span<const key_t>(keys), queries);
  DistributedInCacheIndex index(std::move(keys), 6);
  EXPECT_EQ(index.lookup_batch(queries), expected);
}

TEST(DistributedIndex, PartitionsForCache) {
  EXPECT_EQ(DistributedInCacheIndex::partitions_for_cache(1000, MiB), 1u);
  // 327,680 keys x 4 B = 1.25 MB over 512 KB caches -> 3 partitions.
  EXPECT_EQ(
      DistributedInCacheIndex::partitions_for_cache(327680, 512 * KiB), 3u);
  EXPECT_EQ(DistributedInCacheIndex::partitions_for_cache(1 << 23, 512 * KiB),
            64u);
}

TEST(DistributedIndex, SingleKeyIndex) {
  DistributedInCacheIndex index({42}, 1);
  EXPECT_EQ(index.lookup(41), 0u);
  EXPECT_EQ(index.lookup(42), 1u);
  EXPECT_TRUE(index.contains(42));
}

}  // namespace
}  // namespace dici::core
