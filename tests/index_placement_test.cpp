// PlacedShards invariants: the placement vocabulary round-trips, every
// mode's views are byte-identical to the partition slices (placement
// moves bytes, never answers), Eytzinger copies exist exactly when
// asked for, the replicate mode really is per-node storage, and the
// memory rent is accounted.
#include "src/index/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/index/partitioner.hpp"
#include "src/util/rng.hpp"
#include "src/workload/workload.hpp"

namespace dici::index {
namespace {

std::vector<key_t> some_keys(std::size_t n, std::uint64_t seed = 99) {
  Rng rng(seed);
  return workload::make_sorted_unique_keys(n, rng);
}

TEST(PlacementNames, RoundTrip) {
  ASSERT_EQ(all_placements().size(), 3u);
  for (const Placement placement : all_placements()) {
    Placement parsed{};
    ASSERT_TRUE(parse_placement(placement_name(placement), &parsed));
    EXPECT_EQ(parsed, placement);
    EXPECT_TRUE(placement_valid(placement));
  }
  Placement parsed{};
  EXPECT_FALSE(parse_placement("numa-magic", &parsed));
  EXPECT_FALSE(placement_valid(static_cast<Placement>(42)));
}

TEST(PlacedShards, ViewsMatchPartitionSlicesInEveryMode) {
  const auto keys = some_keys(5000);
  const RangePartitioner partitioner(keys, 6);
  for (const Placement placement : all_placements()) {
    PlacedShards placed(placement, /*build_eytzinger=*/false, partitioner, 3);
    placed.build_all();
    EXPECT_EQ(placed.placement(), placement);
    EXPECT_EQ(placed.nodes(), 3u);
    for (std::uint32_t node = 0; node < 3; ++node)
      for (std::uint32_t s = 0; s < partitioner.parts(); ++s) {
        const auto view = placed.sorted_of(node, s);
        const auto slice = partitioner.keys_of(s);
        ASSERT_EQ(view.size(), slice.size());
        EXPECT_TRUE(std::equal(view.begin(), view.end(), slice.begin()))
            << placement_name(placement) << " node " << node << " shard "
            << s;
        // No Eytzinger requested: no layout handed out.
        EXPECT_EQ(placed.layout_of(node, s), nullptr);
      }
  }
}

TEST(PlacedShards, LayoutsBuiltExactlyWhenRequested) {
  const auto keys = some_keys(2000);
  const RangePartitioner partitioner(keys, 4);
  for (const Placement placement : all_placements()) {
    PlacedShards placed(placement, /*build_eytzinger=*/true, partitioner, 2);
    placed.build_all();
    for (std::uint32_t node = 0; node < 2; ++node)
      for (std::uint32_t s = 0; s < partitioner.parts(); ++s) {
        const EytzingerLayout* layout = placed.layout_of(node, s);
        ASSERT_NE(layout, nullptr);
        ASSERT_EQ(layout->size(), partitioner.size_of(s));
        // The layout's slots permute exactly this shard's view.
        const auto view = placed.sorted_of(node, s);
        for (std::size_t k = 1; k <= layout->size(); ++k) {
          const rank_t r = layout->rank_of_slot(k);
          ASSERT_LT(r, view.size());
          EXPECT_EQ(layout->slots()[k], view[r]);
        }
      }
  }
}

TEST(PlacedShards, ReplicateViewsAreDistinctStoragePerNode) {
  const auto keys = some_keys(1000);
  const RangePartitioner partitioner(keys, 4);
  PlacedShards placed(Placement::kReplicate, true, partitioner, 3);
  placed.build_all();
  // Different nodes hand out different memory (that is the point)...
  EXPECT_NE(placed.sorted_of(0, 0).data(), placed.sorted_of(1, 0).data());
  EXPECT_NE(placed.layout_of(0, 0), placed.layout_of(1, 0));
  // ...while within one node the shard views tile one contiguous copy.
  EXPECT_EQ(placed.sorted_of(0, 0).data() + partitioner.size_of(0),
            placed.sorted_of(0, 1).data());
}

TEST(PlacedShards, NonReplicateModesShareAcrossNodes) {
  const auto keys = some_keys(1000);
  const RangePartitioner partitioner(keys, 4);
  for (const Placement placement :
       {Placement::kInterleave, Placement::kNodeLocal}) {
    PlacedShards placed(placement, true, partitioner, 3);
    placed.build_all();
    // The node argument is structural only: one copy per shard.
    EXPECT_EQ(placed.sorted_of(0, 2).data(), placed.sorted_of(2, 2).data());
    EXPECT_EQ(placed.layout_of(0, 2), placed.layout_of(2, 2));
  }
  // Interleave serves the partitioner's storage; node-local copies it.
  PlacedShards inter(Placement::kInterleave, false, partitioner, 2);
  inter.build_all();
  EXPECT_EQ(inter.sorted_of(0, 1).data(), partitioner.keys_of(1).data());
  PlacedShards local(Placement::kNodeLocal, false, partitioner, 2);
  local.build_all();
  EXPECT_NE(local.sorted_of(0, 1).data(), partitioner.keys_of(1).data());
}

TEST(PlacedShards, PlacedBytesAccountTheRent) {
  const auto keys = some_keys(4096);
  const RangePartitioner partitioner(keys, 8);
  const std::uint64_t key_bytes = keys.size() * sizeof(key_t);
  PlacedShards inter(Placement::kInterleave, false, partitioner, 4);
  EXPECT_EQ(inter.placed_key_bytes(), 0u);
  PlacedShards local(Placement::kNodeLocal, false, partitioner, 4);
  EXPECT_EQ(local.placed_key_bytes(), key_bytes);
  // Replicate charges only replicas actually reserved: none before
  // allocation, one per allocated node after (the engine skips nodes
  // that own no worker).
  PlacedShards repl(Placement::kReplicate, false, partitioner, 4);
  EXPECT_EQ(repl.placed_key_bytes(), 0u);
  repl.allocate_replica(1);
  EXPECT_EQ(repl.placed_key_bytes(), key_bytes);
  PlacedShards full(Placement::kReplicate, false, partitioner, 4);
  full.build_all();
  EXPECT_EQ(full.placed_key_bytes(), 4 * key_bytes);
}

TEST(PlacedShards, SplitShareBuildMatchesBuildAll) {
  // The engine's cooperative build (several workers, disjoint shares)
  // must produce exactly the views the single-threaded build does.
  const auto keys = some_keys(3000);
  const RangePartitioner partitioner(keys, 5);
  for (const Placement placement : all_placements()) {
    PlacedShards reference(placement, true, partitioner, 2);
    reference.build_all();
    PlacedShards split(placement, true, partitioner, 2);
    // 4 workers, 2 per node, exactly as ParallelIndex would call it.
    for (std::uint32_t node = 0; node < 2; ++node)
      split.allocate_replica(node);
    for (std::uint32_t w = 0; w < 4; ++w)
      split.build_share(/*node=*/w % 2, /*worker=*/w, /*total_workers=*/4,
                        /*worker_on_node=*/w / 2, /*workers_on_node=*/2);
    for (std::uint32_t node = 0; node < 2; ++node)
      for (std::uint32_t s = 0; s < partitioner.parts(); ++s) {
        const auto a = reference.sorted_of(node, s);
        const auto b = split.sorted_of(node, s);
        ASSERT_EQ(a.size(), b.size());
        EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()))
            << placement_name(placement) << " node " << node << " shard "
            << s;
        ASSERT_NE(split.layout_of(node, s), nullptr);
        EXPECT_EQ(split.layout_of(node, s)->size(), a.size());
      }
  }
}

}  // namespace
}  // namespace dici::index
