// Adversarial and degenerate workloads: every engine must stay exact
// when all the load lands on one partition, one leaf, or one key.
#include <gtest/gtest.h>

#include "src/core/native_engine.hpp"
#include "src/core/sim_engine.hpp"
#include "src/index/buffered.hpp"
#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"
#include "src/workload/workload.hpp"

namespace dici {
namespace {

std::vector<key_t> fixture_keys() {
  Rng rng(555);
  return workload::make_sorted_unique_keys(40000, rng);
}

core::ExperimentConfig sim_config(core::Method m) {
  core::ExperimentConfig cfg;
  cfg.method = m;
  cfg.machine = arch::pentium3_cluster();
  cfg.num_nodes = 5;
  cfg.batch_bytes = 16 * KiB;
  return cfg;
}

class AdversarialSim : public ::testing::TestWithParam<core::Method> {};

TEST_P(AdversarialSim, AllQueriesIdentical) {
  const auto keys = fixture_keys();
  const std::vector<key_t> queries(20000, keys[keys.size() / 2]);
  const auto expected = workload::reference_ranks(keys, queries);
  std::vector<rank_t> ranks;
  core::SimCluster(sim_config(GetParam())).run(keys, queries, &ranks);
  EXPECT_EQ(ranks, expected);
}

TEST_P(AdversarialSim, AllQueriesBelowEveryKey) {
  auto keys = fixture_keys();
  keys.front() = 100;  // keep keys sorted but leave room below
  const std::vector<key_t> queries(5000, 0);
  std::vector<rank_t> ranks;
  core::SimCluster(sim_config(GetParam())).run(keys, queries, &ranks);
  for (const auto r : ranks) ASSERT_EQ(r, 0u);
}

TEST_P(AdversarialSim, AllQueriesAboveEveryKey) {
  const auto keys = fixture_keys();
  const std::vector<key_t> queries(5000, 0xFFFFFFFFu);
  std::vector<rank_t> ranks;
  core::SimCluster(sim_config(GetParam())).run(keys, queries, &ranks);
  for (const auto r : ranks)
    ASSERT_EQ(r, static_cast<rank_t>(keys.size()));
}

TEST_P(AdversarialSim, SingleQuery) {
  const auto keys = fixture_keys();
  const std::vector<key_t> queries{keys[7]};
  std::vector<rank_t> ranks;
  core::SimCluster(sim_config(GetParam())).run(keys, queries, &ranks);
  ASSERT_EQ(ranks.size(), 1u);
  EXPECT_EQ(ranks[0], 8u);
}

TEST_P(AdversarialSim, QueriesAreEveryKeyInOrder) {
  // The full key set as the query stream: rank of keys[i] must be i+1.
  const auto keys = fixture_keys();
  std::vector<rank_t> ranks;
  core::SimCluster(sim_config(GetParam())).run(keys, keys, &ranks);
  for (std::size_t i = 0; i < keys.size(); ++i)
    ASSERT_EQ(ranks[i], static_cast<rank_t>(i + 1));
}

INSTANTIATE_TEST_SUITE_P(AllMethods, AdversarialSim,
                         ::testing::Values(core::Method::kA, core::Method::kB,
                                           core::Method::kC1,
                                           core::Method::kC2,
                                           core::Method::kC3),
                         [](const auto& info) {
                           std::string n = core::method_name(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST(AdversarialNative, HotPartitionStillExact) {
  // Every query routes to one slave: the worst load imbalance.
  const auto keys = fixture_keys();
  std::vector<key_t> queries(30000);
  Rng rng(8);
  for (auto& q : queries)
    q = keys[rng.below(keys.size() / 8)];  // first partition only
  const auto expected = workload::reference_ranks(keys, queries);
  core::NativeConfig cfg;
  cfg.method = core::Method::kC3;
  cfg.num_nodes = 9;
  std::vector<rank_t> ranks;
  core::NativeCluster(cfg).run(keys, queries, &ranks);
  EXPECT_EQ(ranks, expected);
}

TEST(AdversarialBuffered, SingleBucketBatch) {
  // All keys land in one subtree: one buffer receives the whole batch.
  const auto keys = fixture_keys();
  const index::StaticTree tree(keys,
                               {32, index::TreeLayout::kExplicitPointers});
  std::vector<index::BufferedItem> items;
  for (std::uint32_t i = 0; i < 5000; ++i)
    items.push_back({keys[3], i});
  index::BufferedConfig cfg;
  cfg.target_cache_bytes = 1 * KiB;  // many small groups
  sim::NullProbe probe;
  index::BufferedResults results;
  index::buffered_lookup(tree, items, cfg, probe, results);
  ASSERT_EQ(results.size(), items.size());
  for (const auto& [id, rank] : results) EXPECT_EQ(rank, 4u);
}

TEST(AdversarialSim, DenseConsecutiveKeySpace) {
  // Index = [1000, 1000+n): every query is within one of the keys.
  std::vector<key_t> keys(30000);
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = static_cast<key_t>(1000 + i);
  std::vector<key_t> queries;
  Rng rng(12);
  for (int i = 0; i < 20000; ++i)
    queries.push_back(static_cast<key_t>(rng.below(32000)));
  const auto expected = workload::reference_ranks(keys, queries);
  for (const auto method : {core::Method::kB, core::Method::kC3}) {
    std::vector<rank_t> ranks;
    core::SimCluster(sim_config(method)).run(keys, queries, &ranks);
    ASSERT_EQ(ranks, expected);
  }
}

TEST(AdversarialSim, TinyIndexManyNodes) {
  // Fewer keys per partition than leaf capacity.
  std::vector<key_t> keys{5, 10, 15, 20, 25, 30, 35, 40};
  std::vector<key_t> queries;
  for (key_t q = 0; q < 45; ++q) queries.push_back(q);
  const auto expected = workload::reference_ranks(keys, queries);
  auto cfg = sim_config(core::Method::kC3);
  cfg.num_nodes = 5;  // 4 slaves, 2 keys each
  std::vector<rank_t> ranks;
  core::SimCluster(cfg).run(keys, queries, &ranks);
  EXPECT_EQ(ranks, expected);
}

}  // namespace
}  // namespace dici
